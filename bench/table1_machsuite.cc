/**
 * @file
 * Regenerates Table I: the MachSuite benchmarks selected for the
 * evaluation, with their complexity, data sizes and available loop
 * parallelism.
 */

#include <cstdio>

#include "accel/machsuite/workloads.h"
#include "common/bench_cli.h"

int
main(int argc, char **argv)
{
    // Static table, no Simulator to cli.instrument(); --perf-json
    // still records wall time and peak RSS (sim_cycles stays 0, so
    // perf_compare judges this bench on wall time only).
    beethoven::BenchCli cli(argc, argv);
    using namespace beethoven::machsuite;
    std::printf("# Table I — MachSuite benchmarks selected for the "
                "evaluation\n");
    std::printf("%-10s | %-38s | %-16s | %s\n", "Benchmark",
                "Description", "Data Size", "Parallelism");
    std::printf("%.10s-+-%.38s-+-%.16s-+-%.11s\n",
                "----------------------------------------",
                "----------------------------------------",
                "----------------------------------------",
                "----------------------------------------");
    for (const auto &w : table1Workloads()) {
        std::printf("%-10s | %-38s | %-16s | %s\n", w.name.c_str(),
                    w.complexity.c_str(), w.dataSize.c_str(),
                    parallelismName(w.parallelism));
    }
    return cli.finish();
}
