/**
 * @file
 * Regenerates Fig. 5: annotated AXI transaction timelines for a 4 KB
 * memcpy under each methodology:
 *
 *   (a) HLS       — 4 requests @ 16 beats, all on one AXI ID
 *   (b) Beethoven — 4 requests @ 16 beats on distinct AXI IDs
 *   (c) Hand-HDL  — 1 request @ 64 beats
 *
 * The rendered rows show request acceptance (A), data beats (=) and
 * completion (#) against a shared cycle axis. The paper's observations
 * to verify: HLS transactions on one ID serialize (each request's data
 * starts only after the previous completes); Beethoven's distinct-ID
 * transactions overlap and its writes finish early; the HDL variant
 * moves the same bytes in one long burst per direction.
 */

#include <cstdio>
#include <iostream>

#include "accel/memcpy_core.h"
#include "base/log.h"
#include "baselines/raw_memcpy.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;

namespace
{

void
runRaw(const char *title, const RawAxiMemcpy::Params &params,
       BenchCli &cli, const char *label)
{
    Simulator sim;
    FunctionalMemory mem;
    DramController::Config cfg;
    cfg.axi = AwsF1Platform().memoryConfig();
    cfg.timing = AwsF1Platform().dramTiming();
    DramController ctrl(sim, "ddr", cfg, mem);
    RawAxiMemcpy engine(sim, "memcpy", params, ctrl);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(label);
        sim.attachTrace(sink);
    }
    cli.instrument(sim);

    // Pre-warm with a dummy copy so row state resembles steady
    // operation, then record the 4 KB copy of interest.
    engine.start(0x800000, 0x900000, 4096);
    sim.runUntil([&] { return engine.done(); }, 1'000'000ULL);

    ctrl.timeline().setEnabled(true);
    engine.start(0x100000, 0x400000, 4096);
    if (!sim.runUntil([&] { return engine.done(); }, 1'000'000ULL))
        fatal("copy did not complete");
    std::printf("\n%s\n", title);
    ctrl.timeline().render(std::cout, 100);
    cli.recordStats(label, sim);
}

void
runBeethoven(const char *title, const MemcpyCore::Variant &variant,
             BenchCli &cli, const char *label)
{
    AwsF1Platform platform;
    AcceleratorConfig cfg(MemcpyCore::systemConfig(1, variant));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(label);
        soc.sim().attachTrace(sink);
    }
    cli.instrument(soc.sim());

    remote_ptr src = handle.malloc(4096);
    remote_ptr dst = handle.malloc(4096);
    for (u64 i = 0; i < 4096; ++i)
        src.getHostAddr()[i] = static_cast<u8>(i);
    handle.copy_to_fpga(src);

    soc.dram().timeline().setEnabled(true);
    handle
        .invoke("MemcpySystem", "do_memcpy", 0,
                {src.getFpgaAddr(), dst.getFpgaAddr(), 4096})
        .get();
    soc.dram().timeline().setEnabled(false);
    std::printf("\n%s\n", title);
    soc.dram().timeline().render(std::cout, 100);
    cli.recordStats(label, soc.sim());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);

    RawAxiMemcpy::Params hls;
    hls.burstBeats = 16;
    hls.maxInflightReads = 4;
    hls.maxInflightWrites = 4;
    hls.distinctIds = false;
    runRaw("(a) HLS: 4 requests @ 16 beats, one AXI ID", hls, cli,
           "hls");

    MemcpyCore::Variant bthvn; // 16-beat transactions across AXI IDs
    runBeethoven("(b) Beethoven: 4 requests @ 16 beats, distinct AXI IDs",
                 bthvn, cli, "beethoven");

    RawAxiMemcpy::Params hdl;
    hdl.burstBeats = 64;
    hdl.maxInflightReads = 1;
    hdl.maxInflightWrites = 1;
    hdl.distinctIds = false;
    runRaw("(c) Hand-written RTL: 1 request @ 64 beats", hdl, cli,
           "hdl");

    std::printf("\n# Shape check (paper, Fig. 5): same-ID HLS "
                "transactions serialize; Beethoven's distinct-ID\n"
                "# transactions overlap and writes complete early; HDL "
                "uses one long burst per direction.\n");
    return cli.finish();
}
