/**
 * @file
 * Shared command-line plumbing for the bench/ executables.
 *
 * Every bench main constructs a BenchCli, which strips the
 * observability flags from argv before the bench (or google-benchmark)
 * sees them:
 *
 *   --trace=FILE        attachable Chrome-trace sink; FILE gets the
 *                       trace_event JSON, and a text summary + cycle
 *                       profile are printed after the run
 *   --stats-json=FILE   machine-readable stats: one JSON object per
 *                       recordStats() label
 *   --stall-report=FILE bottleneck analysis of the stall-attribution
 *                       stats: ranked table on stdout, JSON to FILE
 *   --perf-json=FILE    run-level host KPIs (schema beethoven-perf-1):
 *                       wall_ms, sim_cycles, cycles_per_sec,
 *                       peak_rss_kb, allocation churn, cycles/sec
 *                       heartbeat — the per-bench record tools/soc_perf
 *                       aggregates into BENCH_<label>.json
 *   --host-profile[=M]  attribute wall-clock per module in the step
 *                       loop; M is "scoped", or "sample:N" (measure
 *                       every Nth cycle; bare --host-profile means
 *                       sample:64). Breakdown prints to stderr and
 *                       lands in --perf-json output
 *   --power-trace=FILE  Chrome trace of windowed per-component watt
 *                       counter-tracks ("power/<component>"), sampled
 *                       from the SoC's PowerLedger
 *   --power-json=FILE   power/energy telemetry (schema
 *                       beethoven-power-1): per recorded run the total
 *                       joules, avg/peak watts, static floor, per-SLR
 *                       and per-component breakdown, and — when the
 *                       bench reports an operation count — energy per
 *                       op. tools/power_report renders these files
 *   --power-window=N    cycles between power samples (default 1024;
 *                       the --power-trace overhead knob)
 *   --watchdog=N        arm the simulator hang watchdog (abort after N
 *                       cycles without forward progress; 0 = off)
 *   --sim-kernel=K      simulation kernel: "event" (default; quiescent
 *                       modules sleep until a queue event re-arms
 *                       them), "tick" (the plain tick-everything
 *                       reference kernel), or "parallel" (sharded
 *                       multi-threaded execution with epoch barriers
 *                       at the NoC/AXI boundaries; refuses traces and
 *                       power meters). All three produce bit-identical
 *                       stats digests
 *   --sim-threads=N     worker threads for --sim-kernel=parallel
 *                       (0 = one per execution group, the default;
 *                       ignored by the serial kernels)
 *   --no-invariants     detach the live SocInvariants observers (AXI
 *                       legality, response accounting, NoC occupancy);
 *                       they are on by default and abort the bench on
 *                       the first violation
 *   --quick             benches that honor it shrink their sweep (used
 *                       by the ctest observability fixture)
 *
 * Output paths are probe-opened at startup: a path that cannot be
 * written (missing directory, no permission) is a fatal usage error
 * (exit 2) before any simulation runs, not a surprise after it.
 *
 * The sink is owned here; benches attach it per-run with
 * `soc.sim().attachTrace(cli.sink())` (a nullptr attach is a no-op
 * path, so unconditional attachment keeps call sites branch-free).
 */

#ifndef BEETHOVEN_BENCH_COMMON_BENCH_CLI_H
#define BEETHOVEN_BENCH_COMMON_BENCH_CLI_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.h"
#include "trace/trace.h"

namespace beethoven
{

class AcceleratorSoc;
class HostProfiler;
class PowerMeter;
class Simulator;
class SocInvariants;
enum class SimKernel;

class BenchCli
{
  public:
    /** Parse and remove recognized flags from @p argc / @p argv. */
    BenchCli(int &argc, char **argv);

    ~BenchCli(); // out of line: HostProfiler is incomplete here

    /** The trace sink, or nullptr when --trace was not given. */
    TraceSink *sink() { return _sink.get(); }

    bool quick() const { return _quick; }
    bool tracing() const { return _sink != nullptr; }

    /** The --sim-kernel selection (default SimKernel::Event). */
    SimKernel simKernel() const;

    /** Arm @p sim's hang watchdog when --watchdog=N was given. */
    void armWatchdog(Simulator &sim) const;

    /**
     * Attach the observability this invocation asked for to @p sim:
     * the hang watchdog (--watchdog) and the host profiler
     * (--host-profile / --perf-json). Benches call this once per
     * constructed Simulator, right after elaboration; the profiler
     * accumulates across all instrumented simulators in the process.
     */
    void instrument(Simulator &sim) const;

    /** The host profiler, or nullptr when neither perf flag was given. */
    HostProfiler *profiler() const { return _profiler.get(); }

    /** The power meter, or nullptr when neither power flag was given. */
    PowerMeter *powerMeter() const { return _powerMeter.get(); }

    bool invariantsEnabled() const { return _invariants; }

    /**
     * Attach the live invariant observers (verify/invariants.h) to
     * @p soc, unless --no-invariants was given. The returned guard
     * must not outlive the SoC; destroy (or checkFinal()) it before
     * tearing the SoC down.
     */
    std::unique_ptr<SocInvariants> armInvariants(AcceleratorSoc &soc) const;

    /**
     * Snapshot @p stats as JSON under @p label. Serializes immediately
     * so the caller may destroy the SoC afterwards.
     */
    void recordStats(const std::string &label, const StatGroup &stats);

    /**
     * Publish @p sim's stall accounts into its stats tree, then
     * snapshot them under @p label. Benches use this overload so the
     * stall-attribution scalars land in --stats-json / --stall-report
     * output.
     */
    void recordStats(const std::string &label, Simulator &sim);

    /**
     * Like recordStats(label, sim), but also tells the power meter how
     * many operations the run performed, so --power-json output gets
     * an energy-per-op figure for this run.
     */
    void recordStats(const std::string &label, Simulator &sim,
                     double ops);

    /**
     * Add an analytic reference row (published watts + throughput) to
     * the --power-json report; no-op when no power flag was given.
     */
    void addPowerReference(const std::string &label, double watts,
                           double ops_per_sec);

    /**
     * Write the trace, stats and stall-report files (if requested) and
     * print the trace summary + cycle profile. @return process exit
     * code.
     */
    int finish();

  private:
    std::string combinedStatsJson() const;

    std::string _benchName;
    std::string _tracePath;
    std::string _statsPath;
    std::string _stallReportPath;
    std::string _perfPath;
    std::string _powerTracePath;
    std::string _powerJsonPath;
    u64 _powerWindow = 1024;
    bool _quick = false;
    bool _invariants = true;
    /** --sim-kernel selection: 0 tick, 1 event (default), 2 parallel.
     *  Stored as an int so the header needn't see the SimKernel enum. */
    int _kernel = 1;
    unsigned _simThreads = 0; ///< --sim-threads (parallel kernel)
    u64 _watchdog = 0;
    u64 _startNs = 0;
    std::unique_ptr<TraceSink> _sink;
    std::unique_ptr<TraceSink> _powerSink; ///< --power-trace events
    std::unique_ptr<HostProfiler> _profiler;
    std::unique_ptr<PowerMeter> _powerMeter;
    std::vector<std::pair<std::string, std::string>> _statsJson;
};

} // namespace beethoven

#endif // BEETHOVEN_BENCH_COMMON_BENCH_CLI_H
