#include "common/bench_cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "base/json.h"
#include "base/log.h"
#include "perf/host_clock.h"
#include "perf/host_profiler.h"
#include "perf/kpi.h"
#include "power/power.h"
#include "sim/simulator.h"
#include "trace/bottleneck.h"
#include "verify/invariants.h"

namespace beethoven
{

namespace
{

/** argv[0] without directories, for the perf-json bench field. */
std::string
benchBasename(const char *argv0)
{
    std::string s = argv0 != nullptr ? argv0 : "bench";
    const std::size_t slash = s.find_last_of('/');
    return slash == std::string::npos ? s : s.substr(slash + 1);
}

/**
 * Parse a --host-profile mode spec: "" (bare flag) and "sample:N"
 * select sampling, "scoped" measures every cycle. Anything else is a
 * usage error (exit 2, consistent with bad output paths).
 */
std::unique_ptr<HostProfiler>
makeProfiler(const std::string &spec)
{
    if (spec.empty())
        return std::make_unique<HostProfiler>(
            HostProfiler::Mode::Sampling);
    if (spec == "scoped")
        return std::make_unique<HostProfiler>(
            HostProfiler::Mode::Scoped);
    if (spec.rfind("sample:", 0) == 0) {
        const unsigned long n =
            std::strtoul(spec.c_str() + 7, nullptr, 10);
        if (n >= 1)
            return std::make_unique<HostProfiler>(
                HostProfiler::Mode::Sampling, static_cast<u32>(n));
    }
    std::cerr << "bad --host-profile mode '" << spec
              << "' (expected scoped or sample:N)\n";
    std::exit(2);
}

} // namespace

BenchCli::BenchCli(int &argc, char **argv)
    : _benchName(benchBasename(argc > 0 ? argv[0] : nullptr)),
      _startNs(hostNowNs())
{
    bool host_profile = false;
    std::string profile_spec;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            _tracePath = arg + 8;
        } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            _statsPath = arg + 13;
        } else if (std::strncmp(arg, "--stall-report=", 15) == 0) {
            _stallReportPath = arg + 15;
        } else if (std::strncmp(arg, "--perf-json=", 12) == 0) {
            _perfPath = arg + 12;
        } else if (std::strncmp(arg, "--power-trace=", 14) == 0) {
            _powerTracePath = arg + 14;
        } else if (std::strncmp(arg, "--power-json=", 13) == 0) {
            _powerJsonPath = arg + 13;
        } else if (std::strncmp(arg, "--power-window=", 15) == 0) {
            _powerWindow = std::strtoull(arg + 15, nullptr, 10);
            if (_powerWindow == 0) {
                std::cerr << "bad --power-window (expected N >= 1)\n";
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--host-profile") == 0) {
            host_profile = true;
        } else if (std::strncmp(arg, "--host-profile=", 15) == 0) {
            host_profile = true;
            profile_spec = arg + 15;
        } else if (std::strncmp(arg, "--sim-kernel=", 13) == 0) {
            const char *k = arg + 13;
            if (std::strcmp(k, "event") == 0) {
                _kernel = 1;
            } else if (std::strcmp(k, "tick") == 0) {
                _kernel = 0;
            } else if (std::strcmp(k, "parallel") == 0) {
                _kernel = 2;
            } else {
                std::cerr << "bad --sim-kernel '" << k
                          << "' (expected tick, event or parallel)\n";
                std::exit(2);
            }
        } else if (std::strncmp(arg, "--sim-threads=", 14) == 0) {
            _simThreads = static_cast<unsigned>(
                std::strtoul(arg + 14, nullptr, 10));
        } else if (std::strncmp(arg, "--watchdog=", 11) == 0) {
            _watchdog = std::strtoull(arg + 11, nullptr, 10);
        } else if (std::strcmp(arg, "--quick") == 0) {
            _quick = true;
        } else if (std::strcmp(arg, "--no-invariants") == 0) {
            _invariants = false;
        } else if (std::strcmp(arg, "--invariants") == 0) {
            _invariants = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;

    if (host_profile)
        _profiler = makeProfiler(profile_spec);
    else if (!_perfPath.empty())
        // KPIs only: heartbeat without per-component timing.
        _profiler = std::make_unique<HostProfiler>(
            HostProfiler::Mode::KpiOnly);

    // The parallel kernel refuses serial-only observability; fail the
    // combination as a usage error before elaboration rather than as
    // a ConfigError mid-run.
    if (_kernel == 2) {
        if (!_tracePath.empty() || !_powerTracePath.empty() ||
            !_powerJsonPath.empty()) {
            std::cerr << "--sim-kernel=parallel does not support "
                         "--trace / --power-trace / --power-json "
                         "(serial-kernel observability)\n";
            std::exit(2);
        }
        if (host_profile) {
            std::cerr << "--sim-kernel=parallel supports only KPI "
                         "profiling (--perf-json), not "
                         "--host-profile\n";
            std::exit(2);
        }
    }

    // Fail unwritable output paths before any simulation runs. The
    // append-mode probe creates missing files but never truncates an
    // existing one another process might still be reading.
    auto probe = [](const std::string &path, const char *what) {
        if (path.empty())
            return;
        std::ofstream f(path, std::ios::app);
        if (!f) {
            std::cerr << "cannot open " << what << " file " << path
                      << " for writing\n";
            std::exit(2);
        }
    };
    probe(_tracePath, "trace");
    probe(_statsPath, "stats");
    probe(_stallReportPath, "stall report");
    probe(_perfPath, "perf json");
    probe(_powerTracePath, "power trace");
    probe(_powerJsonPath, "power json");

    if (!_tracePath.empty())
        _sink = std::make_unique<TraceSink>();
    if (!_powerTracePath.empty() || !_powerJsonPath.empty()) {
        _powerMeter = std::make_unique<PowerMeter>(_powerWindow);
        if (!_powerTracePath.empty()) {
            _powerSink = std::make_unique<TraceSink>();
            _powerMeter->attachTrace(_powerSink.get());
        }
    }
}

BenchCli::~BenchCli() = default;

void
BenchCli::armWatchdog(Simulator &sim) const
{
    if (_watchdog != 0)
        sim.setWatchdog(_watchdog);
}

SimKernel
BenchCli::simKernel() const
{
    switch (_kernel) {
      case 0:
        return SimKernel::Tick;
      case 2:
        return SimKernel::Parallel;
      default:
        return SimKernel::Event;
    }
}

void
BenchCli::instrument(Simulator &sim) const
{
    sim.setKernel(simKernel());
    sim.setParallelThreads(_simThreads);
    armWatchdog(sim);
    if (_profiler != nullptr)
        sim.attachHostProfiler(_profiler.get());
    if (_powerMeter != nullptr)
        sim.attachPowerMeter(_powerMeter.get());
}

std::unique_ptr<SocInvariants>
BenchCli::armInvariants(AcceleratorSoc &soc) const
{
    if (!_invariants)
        return nullptr;
    return std::make_unique<SocInvariants>(soc);
}

void
BenchCli::recordStats(const std::string &label, const StatGroup &stats)
{
    if (_statsPath.empty() && _stallReportPath.empty())
        return;
    std::ostringstream oss;
    stats.dumpJson(oss);
    _statsJson.emplace_back(label, oss.str());
}

void
BenchCli::recordStats(const std::string &label, Simulator &sim)
{
    recordStats(label, sim, 0.0);
}

void
BenchCli::recordStats(const std::string &label, Simulator &sim,
                      double ops)
{
    // The power snapshot must happen regardless of whether a stats
    // path was given: --power-json alone is a valid invocation.
    if (_powerMeter != nullptr)
        _powerMeter->recordRun(sim, label, ops);
    sim.publishStallStats();
    recordStats(label, sim.stats());
}

void
BenchCli::addPowerReference(const std::string &label, double watts,
                            double ops_per_sec)
{
    if (_powerMeter != nullptr)
        _powerMeter->addReference(label, watts, ops_per_sec);
}

std::string
BenchCli::combinedStatsJson() const
{
    std::ostringstream oss;
    oss << "{";
    bool first = true;
    for (const auto &[label, json] : _statsJson) {
        if (!first)
            oss << ",\n";
        first = false;
        oss << "\"";
        for (char c : label) {
            if (c == '"' || c == '\\')
                oss << '\\';
            oss << c;
        }
        oss << "\":" << json;
    }
    oss << "}\n";
    return oss.str();
}

int
BenchCli::finish()
{
    int rc = 0;
    if (_sink != nullptr) {
        std::ofstream f(_tracePath);
        if (!f) {
            std::cerr << "cannot open trace file " << _tracePath << "\n";
            rc = 1;
        } else {
            _sink->writeChromeTrace(f);
            std::cerr << "wrote " << _sink->numEvents() << " events to "
                      << _tracePath << "\n";
            _sink->writeSummary(std::cerr);
            _sink->writeProfile(std::cerr);
        }
    }
    if (!_statsPath.empty()) {
        std::ofstream f(_statsPath);
        if (!f) {
            std::cerr << "cannot open stats file " << _statsPath << "\n";
            rc = 1;
        } else {
            f << combinedStatsJson();
        }
    }
    if (!_perfPath.empty()) {
        std::ofstream f(_perfPath);
        if (!f) {
            std::cerr << "cannot open perf json file " << _perfPath
                      << "\n";
            rc = 1;
        } else {
            writePerfJson(f, _benchName, _quick,
                          hostNowNs() - _startNs, globalSimCycles(),
                          globalModuleTicks(), _profiler.get());
        }
    }
    if (!_powerTracePath.empty() && _powerSink != nullptr) {
        std::ofstream f(_powerTracePath);
        if (!f) {
            std::cerr << "cannot open power trace file "
                      << _powerTracePath << "\n";
            rc = 1;
        } else {
            _powerSink->writeChromeTrace(f);
            std::cerr << "wrote " << _powerSink->numEvents()
                      << " power samples to " << _powerTracePath << "\n";
        }
    }
    if (!_powerJsonPath.empty() && _powerMeter != nullptr) {
        std::ofstream f(_powerJsonPath);
        if (!f) {
            std::cerr << "cannot open power json file " << _powerJsonPath
                      << "\n";
            rc = 1;
        } else {
            writePowerReportJson(f, _powerMeter->report());
        }
    }
    if (_profiler != nullptr &&
        _profiler->mode() != HostProfiler::Mode::KpiOnly)
        _profiler->writeReport(std::cerr);
    if (!_stallReportPath.empty()) {
        try {
            const std::vector<RunStallReport> runs =
                analyzeStallStats(parseJson(combinedStatsJson()));
            writeBottleneckTable(std::cout, runs, /*top_n=*/5);
            std::ofstream f(_stallReportPath);
            if (!f) {
                std::cerr << "cannot open stall report file "
                          << _stallReportPath << "\n";
                rc = 1;
            } else {
                writeBottleneckJson(f, runs);
            }
        } catch (const ConfigError &e) {
            std::cerr << "stall report failed: " << e.what() << "\n";
            rc = 1;
        }
    }
    return rc;
}

} // namespace beethoven
