#include "common/bench_cli.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

namespace beethoven
{

BenchCli::BenchCli(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            _tracePath = arg + 8;
        } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            _statsPath = arg + 13;
        } else if (std::strcmp(arg, "--quick") == 0) {
            _quick = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (!_tracePath.empty())
        _sink = std::make_unique<TraceSink>();
}

void
BenchCli::recordStats(const std::string &label, const StatGroup &stats)
{
    if (_statsPath.empty())
        return;
    std::ostringstream oss;
    stats.dumpJson(oss);
    _statsJson.emplace_back(label, oss.str());
}

int
BenchCli::finish()
{
    int rc = 0;
    if (_sink != nullptr) {
        std::ofstream f(_tracePath);
        if (!f) {
            std::cerr << "cannot open trace file " << _tracePath << "\n";
            rc = 1;
        } else {
            _sink->writeChromeTrace(f);
            std::cerr << "wrote " << _sink->numEvents() << " events to "
                      << _tracePath << "\n";
            _sink->writeSummary(std::cerr);
            _sink->writeProfile(std::cerr);
        }
    }
    if (!_statsPath.empty()) {
        std::ofstream f(_statsPath);
        if (!f) {
            std::cerr << "cannot open stats file " << _statsPath << "\n";
            rc = 1;
        } else {
            f << "{";
            bool first = true;
            for (const auto &[label, json] : _statsJson) {
                if (!first)
                    f << ",\n";
                first = false;
                f << "\"";
                for (char c : label) {
                    if (c == '"' || c == '\\')
                        f << '\\';
                    f << c;
                }
                f << "\":" << json;
            }
            f << "}\n";
        }
    }
    return rc;
}

} // namespace beethoven
