/**
 * @file
 * Regenerates Fig. 6: MachSuite speedups over Vitis HLS for Spatial,
 * Beethoven (Ideal) and Beethoven (Measured), with the instantiated
 * core count for each Beethoven accelerator.
 *
 * Methodology mirrors Section III-B:
 *  - Vitis HLS / Spatial come from the documented tool-flow models
 *    (baselines/toolflow_models.h);
 *  - Beethoven(Ideal) = measured single-core throughput x core count;
 *  - Beethoven(Measured) = wall-clock multi-core throughput through
 *    the full runtime (MMIO dispatch, response polling, shared memory
 *    system), so host-side contention shows up exactly as in the
 *    paper: "the difference between ideal and measured throughput is
 *    greatest when the kernel's latency is low".
 *
 * Core counts are what the floorplanner fits on the VU9P (the paper's
 * BRAM/LUT limits); a per-kernel simulation cap keeps host run time
 * tractable and is reported alongside the device capacity.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "accel/machsuite/gemm.h"
#include "accel/machsuite/md_knn.h"
#include "accel/machsuite/nw.h"
#include "accel/machsuite/stencil.h"
#include "base/rng.h"
#include "baselines/toolflow_models.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"
#include "verify/invariants.h"

using namespace beethoven;
using namespace beethoven::machsuite;

namespace
{

struct KernelDriver
{
    std::string name;
    unsigned simCoreCap;
    unsigned opsPerCore;
    std::function<AcceleratorSystemConfig(unsigned)> makeConfig;
    std::string systemName;
    /** Allocate & fill this core's buffers; returns invoke args. */
    std::function<std::vector<u64>(fpga_handle_t &, unsigned)> prepare;
    std::string commandName;
    std::function<Cycle(AcceleratorCore &)> kernelCycles;
};

unsigned
maxCoresThatFit(const KernelDriver &driver, const Platform &platform,
                unsigned limit = 256)
{
    unsigned lo = 1, hi = limit;
    // Exponential probe then binary search on elaboration success.
    auto fits = [&](unsigned n) {
        try {
            AcceleratorSoc soc(AcceleratorConfig(driver.makeConfig(n)),
                               platform);
            return true;
        } catch (const ConfigError &) {
            return false;
        }
    };
    if (!fits(1))
        return 0;
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (fits(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

struct Result
{
    double hlsOps;
    double spatialOps;
    double idealOps;
    double measuredOps;
    unsigned coresSimulated;
    unsigned coresFit;
};

Result
runKernel(const KernelDriver &driver,
          const baselines::ToolflowPoint &hls,
          const baselines::ToolflowPoint &spatial, BenchCli &cli)
{
    AwsF1Platform platform;
    // MachSuite Beethoven designs run at the default 125 MHz clock
    // (Section III-B), unlike the 250 MHz memcpy study.
    platform.setClockMHz(125);
    const unsigned fit = maxCoresThatFit(driver, platform);
    const unsigned n_cores =
        std::min(fit, cli.quick() ? std::min(driver.simCoreCap, 4u)
                                  : driver.simCoreCap);

    AcceleratorSoc soc(AcceleratorConfig(driver.makeConfig(n_cores)),
                       platform);
    auto invariants = cli.armInvariants(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(driver.name);
        soc.sim().attachTrace(sink);
    }
    cli.instrument(soc.sim());

    // Per-core operand buffers.
    std::vector<std::vector<u64>> args;
    for (unsigned c = 0; c < n_cores; ++c)
        args.push_back(driver.prepare(handle, c));

    // Single-core throughput (device-side kernel time).
    handle.invoke(driver.systemName, driver.commandName, 0, args[0])
        .get();
    const Cycle single_cycles =
        driver.kernelCycles(soc.core(driver.systemName, 0));
    const double clock_hz = platform.clockMHz() * 1e6;
    const double single_ops = clock_hz / double(single_cycles);

    // Multi-core measured throughput: wall clock over the full stack.
    const Cycle start = soc.sim().cycle();
    std::vector<response_handle<u64>> pending;
    for (unsigned op = 0; op < driver.opsPerCore; ++op) {
        for (unsigned c = 0; c < n_cores; ++c) {
            pending.push_back(handle.invoke(
                driver.systemName, driver.commandName, c, args[c]));
        }
    }
    for (auto &h : pending)
        h.get();
    const Cycle wall = soc.sim().cycle() - start;
    const double total_ops = double(driver.opsPerCore) * n_cores;

    Result r;
    r.hlsOps = hls.opsPerSecond();
    r.spatialOps = spatial.opsPerSecond();
    r.idealOps = single_ops * n_cores;
    r.measuredOps = total_ops * clock_hz / double(wall);
    r.coresSimulated = n_cores;
    r.coresFit = fit;
    if (invariants)
        invariants->checkFinal();
    cli.recordStats(driver.name, soc.sim());
    return r;
}

std::vector<u64>
prepGemm(fpga_handle_t &handle, unsigned seed)
{
    const unsigned n = 256;
    Rng rng(seed + 1);
    remote_ptr a = handle.malloc(n * n * 4);
    remote_ptr bt = handle.malloc(n * n * 4);
    remote_ptr c = handle.malloc(n * n * 4);
    auto *pa = a.as<i32>();
    auto *pbt = bt.as<i32>();
    for (unsigned i = 0; i < n * n; ++i) {
        pa[i] = static_cast<i32>(rng.nextRange(0, 200)) - 100;
        pbt[i] = static_cast<i32>(rng.nextRange(0, 200)) - 100;
    }
    handle.copy_to_fpga(a);
    handle.copy_to_fpga(bt);
    return {a.getFpgaAddr(), bt.getFpgaAddr(), c.getFpgaAddr(), n};
}

std::vector<u64>
prepNw(fpga_handle_t &handle, unsigned seed)
{
    const unsigned n = 256;
    Rng rng(seed + 11);
    remote_ptr a = handle.malloc(n);
    remote_ptr b = handle.malloc(n);
    remote_ptr out = handle.malloc((n + 1) * 4);
    for (unsigned i = 0; i < n; ++i) {
        a.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
        b.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
    }
    handle.copy_to_fpga(a);
    handle.copy_to_fpga(b);
    return {a.getFpgaAddr(), b.getFpgaAddr(), out.getFpgaAddr(), n};
}

std::vector<u64>
prepStencil2d(fpga_handle_t &handle, unsigned seed)
{
    const unsigned n = 256;
    Rng rng(seed + 21);
    remote_ptr in = handle.malloc(n * n * 4);
    remote_ptr out = handle.malloc(n * n * 4);
    auto *p = in.as<i32>();
    for (unsigned i = 0; i < n * n; ++i)
        p[i] = static_cast<i32>(rng.nextRange(0, 100));
    handle.copy_to_fpga(in);
    return {in.getFpgaAddr(), out.getFpgaAddr(), n, n};
}

std::vector<u64>
prepStencil3d(fpga_handle_t &handle, unsigned seed)
{
    const unsigned n = 32;
    Rng rng(seed + 31);
    remote_ptr in = handle.malloc(n * n * n * 4);
    remote_ptr out = handle.malloc(n * n * n * 4);
    auto *p = in.as<i32>();
    for (unsigned i = 0; i < n * n * n; ++i)
        p[i] = static_cast<i32>(rng.nextRange(0, 100));
    handle.copy_to_fpga(in);
    return {in.getFpgaAddr(), out.getFpgaAddr(), n};
}

std::vector<u64>
prepMdKnn(fpga_handle_t &handle, unsigned seed)
{
    const unsigned n = 1024, k = 32;
    Rng rng(seed + 41);
    remote_ptr pos = handle.malloc(n * 32);
    remote_ptr nl = handle.malloc(n * k * 4);
    remote_ptr force = handle.malloc(n * 32);
    for (unsigned i = 0; i < n; ++i) {
        double xyz[3];
        for (double &v : xyz)
            v = 1.0 + rng.nextDouble() * 10.0;
        std::memcpy(pos.getHostAddr() + i * 32, xyz, 24);
    }
    auto *pnl = nl.as<i32>();
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < k; ++j) {
            u32 nb;
            do {
                nb = static_cast<u32>(rng.nextBounded(n));
            } while (nb == i);
            pnl[i * k + j] = static_cast<i32>(nb);
        }
    }
    handle.copy_to_fpga(pos);
    handle.copy_to_fpga(nl);
    return {pos.getFpgaAddr(), nl.getFpgaAddr(), force.getFpgaAddr(),
            n, k};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);

    std::vector<KernelDriver> drivers;
    drivers.push_back(
        {"GeMM", 16, 1,
         [](unsigned nc) { return GemmCore::systemConfig(nc); },
         "GemmSystem", prepGemm, "gemm", [](AcceleratorCore &c) {
             return static_cast<GemmCore &>(c).lastKernelCycles();
         }});
    drivers.push_back(
        {"NW", 32, 2,
         [](unsigned nc) { return NwCore::systemConfig(nc); },
         "NwSystem", prepNw, "nw", [](AcceleratorCore &c) {
             return static_cast<NwCore &>(c).lastKernelCycles();
         }});
    drivers.push_back(
        {"Stencil2D", 28, 1,
         [](unsigned nc) { return Stencil2dCore::systemConfig(nc); },
         "Stencil2dSystem", prepStencil2d, "stencil2d",
         [](AcceleratorCore &c) {
             return static_cast<Stencil2dCore &>(c).lastKernelCycles();
         }});
    drivers.push_back(
        {"Stencil3D", 24, 2,
         [](unsigned nc) { return Stencil3dCore::systemConfig(nc); },
         "Stencil3dSystem", prepStencil3d, "stencil3d",
         [](AcceleratorCore &c) {
             return static_cast<Stencil3dCore &>(c).lastKernelCycles();
         }});
    drivers.push_back(
        {"MD-KNN", 16, 2,
         [](unsigned nc) { return MdKnnCore::systemConfig(nc); },
         "MdKnnSystem", prepMdKnn, "md_knn", [](AcceleratorCore &c) {
             return static_cast<MdKnnCore &>(c).lastKernelCycles();
         }});

    const struct { unsigned n, k; } sizes[] = {
        {256, 0}, {256, 0}, {256, 0}, {32, 0}, {1024, 32}};

    std::printf("# Fig. 6 — MachSuite speedup normalized to Vitis HLS "
                "(AWS F1)\n");
    std::printf("%-10s %9s %9s %13s %16s %7s %9s\n", "kernel",
                "HLS", "Spatial", "Bthvn(Ideal)", "Bthvn(Measured)",
                "cores", "fit-limit");

    for (std::size_t i = 0; i < drivers.size(); ++i) {
        const auto hls = baselines::vitisHlsModel(drivers[i].name,
                                                  sizes[i].n,
                                                  sizes[i].k);
        const auto spatial = baselines::spatialModel(drivers[i].name,
                                                     sizes[i].n,
                                                     sizes[i].k);
        const Result r = runKernel(drivers[i], hls, spatial, cli);
        std::printf("%-10s %9.2f %9.2f %13.2f %16.2f %7u %9u\n",
                    drivers[i].name.c_str(), 1.0,
                    r.spatialOps / r.hlsOps, r.idealOps / r.hlsOps,
                    r.measuredOps / r.hlsOps, r.coresSimulated,
                    r.coresFit);
        std::fflush(stdout);
    }

    std::printf(
        "\n# Shape check (paper, Section III-B): Beethoven(Measured) "
        ">= baselines on every kernel;\n"
        "# NW single-core alone is ~2x the baselines; the "
        "ideal-vs-measured gap is largest for the\n"
        "# lowest-latency kernels (runtime-server dispatch "
        "contention).\n");
    return cli.finish();
}
