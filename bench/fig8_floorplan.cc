/**
 * @file
 * Regenerates Fig. 8: the floorplan of the multi-core A3 accelerator
 * across the VU9P's three SLRs, plus the Vivado-style placement
 * constraint file Beethoven emits ("Beethoven produces constraint
 * files that enforce the placement of all components onto the
 * intended SLRs").
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "accel/a3/a3_core.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"

using namespace beethoven;
using namespace beethoven::a3;

namespace
{

unsigned
maxA3Cores(const Platform &platform)
{
    unsigned lo = 1, hi = 64;
    auto fits = [&](unsigned n) {
        try {
            AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n)),
                               platform);
            return true;
        } catch (const ConfigError &) {
            return false;
        }
    };
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (fits(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);
    AwsF1Platform platform;
    const unsigned n_cores = maxA3Cores(platform);
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n_cores)),
                       platform);
    cli.instrument(soc.sim());

    const auto slrs = soc.coreSlrs("A3System");
    std::vector<std::vector<unsigned>> by_slr(
        soc.floorplan().numSlrs());
    for (unsigned c = 0; c < slrs.size(); ++c)
        by_slr[slrs[c]].push_back(c);

    std::printf("# Fig. 8 — Floorplan for the %u-core A3 accelerator "
                "(VU9P / AWS F1)\n\n",
                n_cores);
    // The paper draws SLR2 | SLR1 | SLR0 left to right.
    for (int s = static_cast<int>(by_slr.size()) - 1; s >= 0; --s) {
        std::printf("+---------------- %s ----------------+\n",
                    soc.floorplan().slr(s).name.c_str());
        std::printf("| cores:");
        for (unsigned c : by_slr[s])
            std::printf(" %2u", c);
        std::printf("\n");
        const char *extras = "";
        if (soc.floorplan().slr(s).hasHostInterface)
            extras = "| shell: host (PCIe MMIO/DMA)";
        else if (soc.floorplan().slr(s).hasMemoryInterface)
            extras = "| shell: DDR controller";
        std::printf("%s\n", extras);
        std::printf("| CLB %4.1f%%  BRAM %4.1f%%  URAM %4.1f%%\n",
                    100 * soc.floorplan().clbUtilization(s),
                    100 * soc.floorplan().bramUtilization(s),
                    100 * soc.floorplan().uramUtilization(s));
        std::printf("+--------------------------------------+\n");
    }

    std::printf("\n# Beethoven-emitted placement constraints:\n");
    std::ostringstream constraints;
    soc.floorplan().emitConstraints(constraints);
    std::cout << constraints.str();

    std::printf("\n# Shape check (paper, Fig. 8): cores spread over "
                "all three SLRs, with more cores on the\n"
                "# shell-free SLR2 (\"the shell consumed significant "
                "resources only on SLR0/1\").\n");
    cli.recordStats("floorplan", soc.sim());
    return cli.finish();
}
