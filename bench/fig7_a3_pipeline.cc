/**
 * @file
 * Regenerates Fig. 7: the A3 core's three-stage pipeline structure,
 * annotated with measured per-stage occupancy from a live run — the
 * two global reductions and the FIFO staging the paper describes:
 * "the outputs of the dot product module are staged in a FIFO queue
 * ... The second stage of the algorithm performs a softmax operation,
 * which requires yet another global reduction."
 */

#include <cstdio>
#include <cstring>

#include "accel/a3/a3_core.h"
#include "base/rng.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;
using namespace beethoven::a3;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);
    AwsF1Platform platform;
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(1)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess("a3");
        soc.sim().attachTrace(sink);
    }
    cli.instrument(soc.sim());

    const unsigned n_keys = 320, n_queries = 128;
    Rng rng(3);
    remote_ptr keys = handle.malloc(n_keys * 64);
    remote_ptr values = handle.malloc(n_keys * 64);
    remote_ptr qbuf = handle.malloc(n_queries * 64);
    remote_ptr obuf = handle.malloc(n_queries * 64);
    for (std::size_t i = 0; i < n_keys * 64ull; ++i) {
        keys.getHostAddr()[i] = static_cast<u8>(rng.next());
        values.getHostAddr()[i] = static_cast<u8>(rng.next());
    }
    for (std::size_t i = 0; i < n_queries * 64ull; ++i)
        qbuf.getHostAddr()[i] = static_cast<u8>(rng.next());
    handle.copy_to_fpga(keys);
    handle.copy_to_fpga(values);
    handle.copy_to_fpga(qbuf);

    handle
        .invoke("A3System", "load_matrices", 0,
                {keys.getFpgaAddr(), values.getFpgaAddr(), n_keys})
        .get();
    handle
        .invoke("A3System", "attend", 0,
                {qbuf.getFpgaAddr(), obuf.getFpgaAddr(), n_queries})
        .get();

    auto &core = static_cast<A3Core &>(soc.core("A3System", 0));
    const Cycle kernel = core.lastKernelCycles();

    std::printf("# Fig. 7 — A3 approximate attention pipeline "
                "(BERT: %u keys, 64-dim, int8 operands)\n\n",
                n_keys);
    std::printf(
        "  query stream (Reader, 64 B/query)\n"
        "        |\n"
        "        v\n"
        "  [S1: dot product]   64 int8 MAC lanes x 1 key row/cycle\n"
        "        |             global reduction #1: running max score\n"
        "        v\n"
        "  (score FIFO)        scores wait for the reduction\n"
        "        |\n"
        "        v\n"
        "  [S2: exp/softmax]   LUT exponent, 1/cycle\n"
        "        |             global reduction #2: weight sum\n"
        "        v\n"
        "  (weight FIFO)\n"
        "        |\n"
        "        v\n"
        "  [S3: output]        64 weighted accumulators x 1 value "
        "row/cycle,\n"
        "        |             reciprocal-multiply normalize, int8 "
        "quantize\n"
        "        v\n"
        "  output stream (Writer, 64 B/query)\n\n");

    std::printf("Measured over a %u-query batch on AWS F1 @%0.0f "
                "MHz:\n",
                n_queries, platform.clockMHz());
    std::printf("  kernel cycles            : %llu\n",
                static_cast<unsigned long long>(kernel));
    std::printf("  cycles per query         : %.1f (ideal = n_keys = "
                "%u)\n",
                double(kernel) / n_queries, n_keys);
    std::printf("  stage 1 (dot)   occupancy: %5.1f%%\n",
                100.0 * double(core.stage1Busy()) / kernel);
    std::printf("  stage 2 (exp)   occupancy: %5.1f%%\n",
                100.0 * double(core.stage2Busy()) / kernel);
    std::printf("  stage 3 (output) occupancy: %4.1f%%\n",
                100.0 * double(core.stage3Busy()) / kernel);
    std::printf("  throughput (1 core)      : %.2f M attention ops/s\n",
                platform.clockMHz() * 1e6 / (double(kernel) / n_queries)
                    / 1e6);
    std::printf("\n# Shape check: all three stages stay near-fully "
                "occupied (they overlap across queries),\n"
                "# and steady-state cost approaches one key row per "
                "cycle.\n");
    cli.recordStats("a3", soc.sim());
    return cli.finish();
}
