/**
 * @file
 * Regenerates Table II: resource utilization of the multi-core A3
 * design on the VU9P (AWS F1), broken down the way the paper reports
 * it — totals with the shell, the Beethoven partition, the
 * interconnect, and a per-core decomposition whose scratchpad/reader
 * memories show the BRAM-vs-URAM *mixed mapping* produced by the
 * per-SLR 80 % spill rule ("some of the Value Scratchpads, for
 * instance, used 15 BRAMs ... whereas other Value Scratchpads
 * implemented 16 URAMs").
 */

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "accel/a3/a3_core.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;
using namespace beethoven::a3;

namespace
{

unsigned
maxA3Cores(const Platform &platform)
{
    unsigned lo = 1, hi = 64;
    auto fits = [&](unsigned n) {
        try {
            AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n)),
                               platform);
            return true;
        } catch (const ConfigError &) {
            return false;
        }
    };
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (fits(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

void
printRow(const char *name, const ResourceVec &r, const ResourceVec &cap)
{
    auto pct = [](double used, double cap_v) {
        return cap_v > 0 ? 100.0 * used / cap_v : 0.0;
    };
    std::printf("%-14s %9.0fK(%4.1f%%) %8.0fK(%4.1f%%) "
                "%8.0fK(%4.1f%%) %7.1f(%4.1f%%) %7.0f(%4.1f%%)\n",
                name, r.clb / 1000, pct(r.clb, cap.clb), r.lut / 1000,
                pct(r.lut, cap.lut), r.ff / 1000, pct(r.ff, cap.ff),
                r.bram, pct(r.bram, cap.bram), r.uram,
                pct(r.uram, cap.uram));
}

/** "a / b" summary of the distinct mapped variants of one memory. */
std::string
variantString(const std::map<std::string, unsigned> &variants)
{
    std::string out;
    for (const auto &[desc, count] : variants) {
        if (!out.empty())
            out += "  |  ";
        out += desc + " x" + std::to_string(count);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);
    AwsF1Platform platform;
    const unsigned n_cores = maxA3Cores(platform);

    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n_cores)),
                       platform);
    cli.instrument(soc.sim());
    auto &fp = soc.floorplan();

    const ResourceVec cap = fp.totalCapacity();
    const ResourceVec shell = fp.totalShell();
    const ResourceVec used = fp.totalUsed();
    const ResourceVec total = used + shell;
    const ResourceVec interconnect = soc.interconnectResources();

    std::printf("# Table II — Resource utilization of the %u-core A3 "
                "design (VU9P)\n\n",
                n_cores);
    std::printf("%-14s %16s %15s %15s %13s %13s\n", "", "CLB", "CLB LUT",
                "CLB Reg", "BRAM", "URAM");
    printRow("Total(w/Shell)", total, cap);
    printRow("Beethoven", used, cap);
    printRow("Interconnect", interconnect, cap);

    // Per-core breakdown: Beethoven-generated logic around one core
    // plus the memory mappings of core 0 and the cross-core variants.
    const ResourceVec core_logic = soc.coreLogicResources("A3System");
    std::printf("\nCore (x%u), logic per core: %.1fK CLB, %.1fK LUT, "
                "%.1fK Reg\n",
                n_cores, core_logic.clb / 1000, core_logic.lut / 1000,
                core_logic.ff / 1000);

    // Collect the distinct BRAM/URAM mappings of each memory role
    // across all cores — Table II's "45/15" and "0/32" variants.
    std::map<std::string, std::map<std::string, unsigned>> variants;
    std::map<std::string, std::pair<double, double>> core0;
    for (const auto &rec : soc.memoryMappings()) {
        const std::string key = rec.owner + " (" + rec.role + ")";
        char desc[64];
        if (rec.mapping.resources.bram > 0) {
            std::snprintf(desc, sizeof(desc), "%.1f BRAM",
                          rec.mapping.resources.bram);
        } else {
            std::snprintf(desc, sizeof(desc), "%.0f URAM",
                          rec.mapping.resources.uram);
        }
        ++variants[key][desc];
        if (rec.core == 0) {
            core0[key] = {rec.mapping.resources.bram,
                          rec.mapping.resources.uram};
        }
    }

    std::printf("\nPer-memory mappings across the %u cores (mixed "
                "BRAM/URAM from the 80%% spill rule):\n",
                n_cores);
    for (const auto &[key, vs] : variants)
        std::printf("  %-28s %s\n", key.c_str(),
                    variantString(vs).c_str());

    std::printf("\nPer-SLR utilization after placement:\n");
    for (unsigned s = 0; s < fp.numSlrs(); ++s) {
        std::printf("  %s: CLB %4.1f%%  LUT %4.1f%%  BRAM %4.1f%%  "
                    "URAM %4.1f%%\n",
                    fp.slr(s).name.c_str(),
                    100 * fp.clbUtilization(s),
                    100 * fp.lutUtilization(s),
                    100 * fp.bramUtilization(s),
                    100 * fp.uramUtilization(s));
    }

    std::printf("\n# Shape check (paper, Table II): interconnect is a "
                "small LUT fraction with zero BRAM/URAM;\n"
                "# scratchpad/reader memories split between ~7.5-BRAM "
                "and ~8-URAM variants across cores;\n"
                "# the paper's design: 23 cores, 94.3%% CLB total, "
                "Beethoven 737K LUT / 518 BRAM / 576 URAM.\n");
    cli.recordStats("a3-resources", soc.sim());
    return cli.finish();
}
