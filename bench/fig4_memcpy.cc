/**
 * @file
 * Regenerates Fig. 4: "Performance of Memcpy microbenchmarks on an AWS
 * F1 FPGA platform" — achieved copy bandwidth for four methodologies:
 *
 *   HLS              16-beat bursts, all transactions on one AXI ID
 *   Pure-HDL         64-beat bursts, one transaction per ID, 1 ID
 *   Beethoven        config-driven Reader/Writer with TLP (split
 *                    transactions across distinct AXI IDs)
 *   Beethoven No-TLP same core, single AXI ID
 *
 * Also reproduces the paper's 16-beat control experiment: "we compiled
 * a Beethoven memcpy implementation with 16-beat bursts and found no
 * degradation."
 *
 * Expected shape (Section III-A): pure-HDL, Beethoven and Beethoven
 * No-TLP perform similarly (HDL ahead by a few percent); HLS is
 * clearly lower; Beethoven@16-beat tracks Beethoven@64-beat.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "accel/memcpy_core.h"
#include "base/log.h"
#include "baselines/raw_memcpy.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"
#include "verify/invariants.h"

using namespace beethoven;

namespace
{

/** Device-side kernel cycles for one Beethoven-configured copy. */
Cycle
beethovenCopyCycles(const MemcpyCore::Variant &variant, u64 len,
                    BenchCli &cli, const std::string &label)
{
    AwsF1Platform platform;
    AcceleratorConfig cfg(MemcpyCore::systemConfig(1, variant));
    AcceleratorSoc soc(std::move(cfg), platform);
    auto invariants = cli.armInvariants(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(label);
        soc.sim().attachTrace(sink);
    }
    cli.instrument(soc.sim());

    remote_ptr src = handle.malloc(len);
    remote_ptr dst = handle.malloc(len);
    for (u64 i = 0; i < len; ++i)
        src.getHostAddr()[i] = static_cast<u8>(i);
    handle.copy_to_fpga(src);
    handle
        .invoke("MemcpySystem", "do_memcpy", 0,
                {src.getFpgaAddr(), dst.getFpgaAddr(), len})
        .get();
    auto &core =
        static_cast<MemcpyCore &>(soc.core("MemcpySystem", 0));
    if (invariants)
        invariants->checkFinal();
    cli.recordStats(label, soc.sim());
    return core.lastKernelCycles();
}

/** Device-side cycles for a raw-AXI (HLS / pure-HDL model) copy. */
Cycle
rawCopyCycles(const RawAxiMemcpy::Params &params, u64 len, BenchCli &cli,
              const std::string &label)
{
    Simulator sim;
    FunctionalMemory mem;
    DramController::Config cfg;
    cfg.axi = AwsF1Platform().memoryConfig();
    cfg.timing = AwsF1Platform().dramTiming();
    DramController ctrl(sim, "ddr", cfg, mem);
    RawAxiMemcpy engine(sim, "memcpy", params, ctrl);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(label);
        sim.attachTrace(sink);
    }
    cli.instrument(sim);
    engine.start(0x100000, 0x4000000, len);
    const Cycle start = sim.cycle();
    if (!sim.runUntil([&] { return engine.done(); }, 100'000'000ULL))
        fatal("raw copy did not complete");
    cli.recordStats(label, sim);
    return sim.cycle() - start;
}

double
gbps(u64 len, Cycle cycles, double clock_mhz)
{
    // Copy bandwidth counts the payload once (bytes copied per second).
    return static_cast<double>(len) / cycles * clock_mhz * 1e6 / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);
    const double f1_mhz = AwsF1Platform().clockMHz();
    // The HLS kernel compiles at 500 MHz but is "performance-limited by
    // the 250MHz DDR controller frequency" — its cycle counts are
    // controller cycles, so it reports at the controller clock too.

    RawAxiMemcpy::Params hls;
    hls.burstBeats = 16;
    hls.maxInflightReads = 4;
    hls.maxInflightWrites = 4;
    hls.distinctIds = false;

    RawAxiMemcpy::Params hdl;
    hdl.burstBeats = 64;
    hdl.maxInflightReads = 1;
    hdl.maxInflightWrites = 1;
    hdl.distinctIds = false;

    MemcpyCore::Variant tlp; // 16-beat transactions across AXI IDs
    MemcpyCore::Variant no_tlp;
    no_tlp.useTlp = false;
    no_tlp.burstBeats = 64;
    MemcpyCore::Variant tlp64;
    tlp64.burstBeats = 64;

    std::printf("# Fig. 4 — Memcpy bandwidth on AWS F1 (GB/s, device-"
                "side kernel time @%0.0f MHz)\n",
                f1_mhz);
    std::printf("%10s %10s %10s %12s %14s %16s\n", "size", "HLS",
                "Pure-HDL", "Beethoven", "Bthvn-NoTLP", "Bthvn-16beat");

    const std::vector<u64> sizes =
        cli.quick() ? std::vector<u64>{4096, 16384}
                    : std::vector<u64>{4096,   16384,   65536,
                                       262144, 1048576, 4194304};
    for (u64 len : sizes) {
        const std::string kb = std::to_string(len / 1024) + "KB";
        const Cycle c_hls = rawCopyCycles(hls, len, cli, "hls-" + kb);
        const Cycle c_hdl = rawCopyCycles(hdl, len, cli, "hdl-" + kb);
        const Cycle c_tlp64 =
            beethovenCopyCycles(tlp64, len, cli, "beethoven-" + kb);
        const Cycle c_notlp =
            beethovenCopyCycles(no_tlp, len, cli, "no-tlp-" + kb);
        const Cycle c_tlp16 =
            beethovenCopyCycles(tlp, len, cli, "tlp16-" + kb);
        std::printf("%8lluKB %10.2f %10.2f %12.2f %14.2f %16.2f\n",
                    static_cast<unsigned long long>(len / 1024),
                    gbps(len, c_hls, f1_mhz), gbps(len, c_hdl, f1_mhz),
                    gbps(len, c_tlp64, f1_mhz),
                    gbps(len, c_notlp, f1_mhz),
                    gbps(len, c_tlp16, f1_mhz));
    }

    std::printf("\n# Shape check (paper, Section III-A): pure-HDL ~7%% "
                "above Beethoven; HLS clearly lower;\n# Beethoven "
                "16-beat shows no degradation vs 64-beat.\n");
    return cli.finish();
}
