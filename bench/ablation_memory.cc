/**
 * @file
 * Ablations over the memory-system design choices DESIGN.md calls out.
 * Each sweep isolates one knob with everything else at the platform
 * defaults, using the memcpy kernel (bandwidth-bound) as the probe:
 *
 *   1. Reader/Writer inflight depth (how much TLP is enough?)
 *   2. AXI burst length with and without TLP
 *   3. the DRAM scheduler's write-drain watermark
 *   4. the same-ID reorder-slot recycle penalty
 *   5. SLR-crossing latency (the NoC buffering knob)
 */

#include <cstdio>

#include <string>

#include "accel/memcpy_core.h"
#include "base/log.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;

namespace
{

/** An F1 variant whose elaboration knobs this bench can override. */
class TunedF1 : public AwsF1Platform
{
  public:
    unsigned crossingLatency = 4;

    NocParams
    nocParams() const override
    {
        NocParams p = AwsF1Platform::nocParams();
        p.slrCrossingLatency = crossingLatency;
        return p;
    }
};

Cycle
copyCycles(const Platform &platform, const MemcpyCore::Variant &variant,
           u64 len, BenchCli &cli, const std::string &label)
{
    AcceleratorConfig cfg(MemcpyCore::systemConfig(1, variant));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(label);
        soc.sim().attachTrace(sink);
    }
    cli.instrument(soc.sim());
    remote_ptr src = handle.malloc(len);
    remote_ptr dst = handle.malloc(len);
    for (u64 i = 0; i < len; ++i)
        src.getHostAddr()[i] = static_cast<u8>(i * 11);
    handle.copy_to_fpga(src);
    handle
        .invoke("MemcpySystem", "do_memcpy", 0,
                {src.getFpgaAddr(), dst.getFpgaAddr(), len})
        .get();
    cli.recordStats(label, soc.sim());
    return static_cast<MemcpyCore &>(soc.core("MemcpySystem", 0))
        .lastKernelCycles();
}

double
gbps(u64 len, Cycle cycles, double mhz)
{
    return double(len) / cycles * mhz * 1e6 / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);
    const u64 len = cli.quick() ? 64_KiB : 1_MiB;
    AwsF1Platform f1;
    const double mhz = f1.clockMHz();

    std::printf("# Ablations — 1 MiB memcpy bandwidth (GB/s) on AWS "
                "F1 @%0.0f MHz\n\n",
                mhz);

    std::printf("[1] Transaction-level parallelism depth (16-beat "
                "bursts, distinct IDs):\n");
    for (unsigned inflight : {1u, 2u, 4u, 8u, 16u}) {
        MemcpyCore::Variant v;
        v.burstBeats = 16;
        v.maxInflight = inflight;
        v.useTlp = true;
        std::printf("    maxInflight=%2u : %6.2f\n", inflight,
                    gbps(len,
                         copyCycles(f1, v, len, cli,
                                    "inflight-" + std::to_string(inflight)),
                         mhz));
    }

    std::printf("\n[2] Burst length x TLP:\n");
    for (bool tlp : {true, false}) {
        for (unsigned burst : {4u, 8u, 16u, 32u, 64u}) {
            MemcpyCore::Variant v;
            v.burstBeats = burst;
            v.maxInflight = 4;
            v.useTlp = tlp;
            std::printf("    %s burst=%2u : %6.2f\n",
                        tlp ? "TLP   " : "no-TLP", burst,
                        gbps(len,
                             copyCycles(f1, v, len, cli,
                                        std::string(tlp ? "tlp" : "no-tlp") +
                                            "-burst" + std::to_string(burst)),
                             mhz));
        }
    }

    std::printf("\n[3] SLR-crossing buffering latency (platform "
                "elaboration knob):\n");
    for (unsigned crossing : {1u, 2u, 4u, 8u, 16u}) {
        TunedF1 tuned;
        tuned.crossingLatency = crossing;
        MemcpyCore::Variant v;
        std::printf("    crossing=%2u cycles : %6.2f\n", crossing,
                    gbps(len,
                         copyCycles(tuned, v, len, cli,
                                    "crossing-" + std::to_string(crossing)),
                         mhz));
    }

    std::printf(
        "\n# Expected shapes:\n"
        "# [1] bandwidth saturates by ~4 inflight transactions (the\n"
        "#     platform default) — deeper TLP buys nothing but buffer "
        "BRAM.\n"
        "# [2] with TLP, short bursts barely hurt (the Fig. 4 '16-beat "
        "no degradation'\n"
        "#     result); without TLP, short bursts pay the same-ID "
        "recycle per txn.\n"
        "# [3] steady-state streaming hides crossing latency; only "
        "extreme values dent it.\n");
    return cli.finish();
}
