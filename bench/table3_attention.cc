/**
 * @file
 * Regenerates Table III: throughput, energy-per-operation and average
 * power for the BERT attention workload on four platforms:
 *
 *   CPU         — FP32 attention *actually executed and timed* on the
 *                 build host (paper: 12-core i7-12700K, 84.8K ops/s at
 *                 75 W; see DESIGN.md substitution table);
 *   GPU         — analytic reference pinned to the paper's measured
 *                 NVIDIA 3090 numbers (5.0M ops/s, 320 W);
 *   Beethoven   — the multi-core FPGA design, fully simulated at
 *                 250 MHz with power from the resource-based model;
 *   1-Core ASIC — the same A3 core elaborated on the ASAP7 platform at
 *                 1 GHz (the original publication's ideal per-core
 *                 throughput was 2.94M ops/s).
 */

#include <cstdio>
#include <cstring>

#include "accel/a3/a3_core.h"
#include "base/rng.h"
#include "baselines/attention_sw.h"
#include "common/bench_cli.h"
#include "platform/asap7.h"
#include "platform/aws_f1.h"
#include "power/power.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;
using namespace beethoven::a3;

namespace
{

unsigned
maxA3Cores(const Platform &platform)
{
    unsigned lo = 1, hi = 64;
    auto fits = [&](unsigned n) {
        try {
            AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n)),
                               platform);
            return true;
        } catch (const ConfigError &) {
            return false;
        }
    };
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (fits(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

/** Simulated attention throughput (ops/s) on @p platform. */
double
simulatedOpsPerSecond(const Platform &platform, unsigned n_cores,
                      unsigned queries_per_core, double *out_watts,
                      BenchCli &cli, const char *label)
{
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n_cores)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    if (TraceSink *sink = cli.sink()) {
        sink->beginProcess(label);
        soc.sim().attachTrace(sink);
    }
    cli.instrument(soc.sim());

    const unsigned n_keys = 320;
    Rng rng(17);
    remote_ptr keys = handle.malloc(n_keys * 64);
    remote_ptr values = handle.malloc(n_keys * 64);
    for (std::size_t i = 0; i < n_keys * 64ull; ++i) {
        keys.getHostAddr()[i] = static_cast<u8>(rng.next());
        values.getHostAddr()[i] = static_cast<u8>(rng.next());
    }
    handle.copy_to_fpga(keys);
    handle.copy_to_fpga(values);

    std::vector<response_handle<u64>> loads;
    for (unsigned c = 0; c < n_cores; ++c) {
        loads.push_back(handle.invoke(
            "A3System", "load_matrices", c,
            {keys.getFpgaAddr(), values.getFpgaAddr(), n_keys}));
    }
    for (auto &l : loads)
        l.get();

    std::vector<remote_ptr> qbufs, obufs;
    for (unsigned c = 0; c < n_cores; ++c) {
        remote_ptr q = handle.malloc(queries_per_core * 64);
        remote_ptr o = handle.malloc(queries_per_core * 64);
        for (std::size_t i = 0; i < queries_per_core * 64ull; ++i)
            q.getHostAddr()[i] = static_cast<u8>(rng.next());
        handle.copy_to_fpga(q);
        qbufs.push_back(q);
        obufs.push_back(o);
    }

    // Scope the power run record to the same attend window the
    // throughput is computed over (matrix-load DMA excluded), so the
    // measured energy/op shares a basis with the static estimate.
    if (PowerMeter *pm = cli.powerMeter())
        pm->markRunStart(soc.sim());
    const Cycle start = soc.sim().cycle();
    std::vector<response_handle<u64>> batches;
    for (unsigned c = 0; c < n_cores; ++c) {
        batches.push_back(handle.invoke(
            "A3System", "attend", c,
            {qbufs[c].getFpgaAddr(), obufs[c].getFpgaAddr(),
             queries_per_core}));
    }
    for (auto &b : batches)
        b.get();
    const Cycle wall = soc.sim().cycle() - start;

    if (out_watts != nullptr) {
        const ResourceVec design =
            soc.floorplan().totalUsed() + soc.floorplan().totalShell();
        *out_watts = platform.powerModel().watts(design);
    }
    const double total_ops = double(queries_per_core) * n_cores;
    cli.recordStats(label, soc.sim(), total_ops);
    return total_ops * platform.clockMHz() * 1e6 / double(wall);
}

void
printRow(const char *name, double ops, double watts)
{
    std::printf("%-14s %14.3g %12.2f %12.1f\n", name, ops,
                watts / ops * 1e6, watts);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    setInformEnabled(false);

    std::printf("# Table III — BERT attention (320 keys, 64-dim): "
                "throughput / energy / power\n\n");
    std::printf("%-14s %14s %12s %12s\n", "", "Thrpt (ops/s)",
                "E/op (uJ)", "Power (W)");

    // CPU: measured on this host, single thread (documented
    // substitution for the paper's i7-12700K).
    const double cpu_ops = measureCpuAttentionOpsPerSecond(320, 64);
    printRow("CPU (host)", cpu_ops, 75.0);
    printRow("CPU (paper)", 84.8e3, 75.0);

    // GPU: the paper's measured 3090 reference. Also recorded into the
    // --power-json report so Table III's efficiency ratios are
    // regression-testable from the file alone (tools/power_report).
    printRow("GPU (paper)", 5.0e6, 320.0);
    cli.addPowerReference("GPU (paper)", 320.0, 5.0e6);

    // Beethoven: full multi-core FPGA simulation.
    AwsF1Platform f1;
    const unsigned n_cores = maxA3Cores(f1);
    double f1_watts = 0.0;
    const unsigned queries = cli.quick() ? 48 : 192;
    const double f1_ops =
        simulatedOpsPerSecond(f1, n_cores, queries, &f1_watts, cli, "f1");
    char label[64];
    std::snprintf(label, sizeof(label), "Beethoven(%uc)", n_cores);
    printRow(label, f1_ops, f1_watts);

    // 1-core ASIC at 1 GHz on ASAP7.
    Asap7Platform asic;
    const double asic_ops =
        simulatedOpsPerSecond(asic, 1, queries, nullptr, cli, "asap7");
    std::printf("%-14s %14.3g %12s %12s\n", "1-Core ASIC", asic_ops,
                "-", "-");
    std::printf("%-14s %14.3g %12s %12s   (paper, @1 GHz)\n",
                "1-Core ASIC*", 2.94e6, "-", "-");

    std::printf("\nBeethoven vs GPU: %.1fx throughput, %.0fx lower "
                "energy/op (paper: 3.3x, 34x)\n",
                f1_ops / 5.0e6,
                (320.0 / 5.0e6) / (f1_watts / f1_ops));
    if (const PowerMeter *pm = cli.powerMeter()) {
        // Measured (activity-driven) energy/op next to the static
        // estimate above; the coefficients are calibrated so the two
        // ratios track each other (shape preservation, DESIGN.md §4f).
        const PowerRunRecord *f1_run = pm->report().find("f1");
        if (f1_run != nullptr && f1_run->energyPerOpUj() > 0.0) {
            const double gpu_uj = 320.0 / 5.0e6 * 1e6;
            std::printf("Measured energy/op: %.3f uJ (avg %.2f W); "
                        "vs GPU: %.0fx lower\n",
                        f1_run->energyPerOpUj(), f1_run->avgWatts,
                        gpu_uj / f1_run->energyPerOpUj());
        }
    }
    std::printf("\n# Shape check (paper, Table III): the multi-core "
                "FPGA design beats the GPU on throughput\n"
                "# by ~3x and on energy/op by >1 order of magnitude; "
                "the single ASIC core lands near the\n"
                "# original A3 publication's 2.94M ops/s.\n");
    return cli.finish();
}
