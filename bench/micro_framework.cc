/**
 * @file
 * Framework microbenchmarks (google-benchmark): the host-side costs of
 * Beethoven's own machinery — RoCC packing, allocator operations,
 * simulation-kernel throughput, and elaboration time. These are not a
 * paper figure; they quantify the simulator substrate itself so users
 * can budget experiment run times.
 */

#include <benchmark/benchmark.h>

#include "accel/vecadd.h"
#include "cmd/command_spec.h"
#include "common/bench_cli.h"
#include "platform/aws_f1.h"
#include "platform/sim_platform.h"
#include "runtime/allocator.h"
#include "runtime/fpga_handle.h"
#include "trace/trace.h"

using namespace beethoven;

namespace
{

void
BM_RoccPackUnpack(benchmark::State &state)
{
    CommandSpec spec("bench", {CommandField::uint("a", 32),
                               CommandField::address("b", 34),
                               CommandField::uint("c", 20),
                               CommandField::uint("d", 64)});
    std::vector<u64> values = {0xABCD, 0x123456789ull, 0x7FFFF,
                               0xDEADBEEFCAFEF00Dull};
    for (auto _ : state) {
        auto beats = spec.pack(3, 17, 1, 9, values);
        auto back = spec.unpack(beats);
        benchmark::DoNotOptimize(back);
    }
}
BENCHMARK(BM_RoccPackUnpack);

void
BM_AllocatorChurn(benchmark::State &state)
{
    DeviceAllocator alloc(4096, 1ull << 30);
    std::vector<Addr> live;
    u64 i = 0;
    for (auto _ : state) {
        if (live.size() < 64) {
            auto a = alloc.allocate(4096 + (i++ % 7) * 512);
            if (a)
                live.push_back(*a);
        } else {
            alloc.release(live.back());
            live.pop_back();
        }
    }
}
BENCHMARK(BM_AllocatorChurn);

void
BM_SimulatorCycleThroughput(benchmark::State &state)
{
    // Host nanoseconds per simulated SoC cycle for an idle vecadd
    // accelerator of the given core count.
    AwsF1Platform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(
        static_cast<unsigned>(state.range(0))));
    AcceleratorSoc soc(std::move(cfg), platform);
    for (auto _ : state)
        soc.sim().step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCycleThroughput)->Arg(1)->Arg(4)->Arg(16);

void
BM_SimulatorCycleThroughputTraced(benchmark::State &state)
{
    // Same idle SoC as BM_SimulatorCycleThroughput but with a trace
    // sink attached, so the delta against that benchmark is the cost
    // of live instrumentation. The untraced variant doubles as the
    // null-sink fast-path check: it runs the instrumented build with
    // no sink, and must stay within noise of pre-instrumentation
    // numbers.
    AwsF1Platform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(
        static_cast<unsigned>(state.range(0))));
    AcceleratorSoc soc(std::move(cfg), platform);
    TraceSink sink;
    // Bound the event buffer so long benchmark runs measure steady
    // admission cost, not allocation growth.
    sink.setMaxEvents(1u << 16);
    soc.sim().attachTrace(&sink);
    for (auto _ : state)
        soc.sim().step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCycleThroughputTraced)->Arg(1)->Arg(4);

void
BM_TraceSpanRecord(benchmark::State &state)
{
    // Raw cost of recording one duration span (the hot path every
    // instrumented module pays when a sink is attached).
    TraceSink sink;
    sink.setMaxEvents(1u << 20);
    Cycle c = 0;
    for (auto _ : state) {
        sink.span("bench", "span", "t", c, c + 4, {{"arg", c}});
        ++c;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanRecord);

void
BM_Elaboration(benchmark::State &state)
{
    AwsF1Platform platform;
    for (auto _ : state) {
        AcceleratorConfig cfg(VecAddCore::systemConfig(
            static_cast<unsigned>(state.range(0))));
        AcceleratorSoc soc(std::move(cfg), platform);
        benchmark::DoNotOptimize(soc.numCores());
    }
}
BENCHMARK(BM_Elaboration)->Arg(1)->Arg(16);

void
BM_EndToEndVecAdd(benchmark::State &state)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    remote_ptr mem = handle.malloc(1024);
    handle.copy_to_fpga(mem);
    for (auto _ : state) {
        handle
            .invoke("MyAcceleratorSystem", "my_accel", 0,
                    {1, mem.getFpgaAddr(), 256})
            .get();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndVecAdd);

} // namespace

int
main(int argc, char **argv)
{
    // Strip --trace/--stats-json/--perf-json/--quick (and the rest of
    // the shared observability flags) before google-benchmark sees
    // them: it rejects unrecognized flags outright. The sims inside
    // the benchmark bodies are not cli.instrument()ed — host-profiling
    // a microbenchmark would measure the profiler — but --perf-json
    // still reports process KPIs from the global cycle counters.
    BenchCli cli(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return cli.finish();
}
