# Run a command and require an exact exit code.
#
# CTest's PASS/FAIL only distinguishes zero from non-zero; the CLI
# tools document distinct non-zero codes (1 = check failed, 2 = usage
# or IO error, 3 = fuzzer found a failure) and the tests below pin the
# exact one. Usage:
#
#   cmake -DCMD="json_check missing.json" -DEXPECTED=1
#         -P expect_exit.cmake
#
# Optional: -DSTDOUT_FILE=path captures the command's stdout to a file
# (for fixture chains that validate a tool's emitted document).

if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
    message(FATAL_ERROR "expect_exit.cmake needs -DCMD=... -DEXPECTED=N")
endif()

separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(COMMAND ${cmd_list}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(DEFINED STDOUT_FILE)
    file(WRITE "${STDOUT_FILE}" "${out}")
endif()

if(NOT rc EQUAL "${EXPECTED}")
    message(FATAL_ERROR
        "command [${CMD}] exited with '${rc}', expected ${EXPECTED}\n"
        "stdout:\n${out}\nstderr:\n${err}")
endif()
