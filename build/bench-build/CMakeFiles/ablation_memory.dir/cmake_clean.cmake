file(REMOVE_RECURSE
  "../bench/ablation_memory"
  "../bench/ablation_memory.pdb"
  "CMakeFiles/ablation_memory.dir/ablation_memory.cc.o"
  "CMakeFiles/ablation_memory.dir/ablation_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
