# Empty dependencies file for fig7_a3_pipeline.
# This may be replaced when dependencies are built.
