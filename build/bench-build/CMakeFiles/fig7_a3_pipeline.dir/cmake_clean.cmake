file(REMOVE_RECURSE
  "../bench/fig7_a3_pipeline"
  "../bench/fig7_a3_pipeline.pdb"
  "CMakeFiles/fig7_a3_pipeline.dir/fig7_a3_pipeline.cc.o"
  "CMakeFiles/fig7_a3_pipeline.dir/fig7_a3_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_a3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
