file(REMOVE_RECURSE
  "../bench/fig8_floorplan"
  "../bench/fig8_floorplan.pdb"
  "CMakeFiles/fig8_floorplan.dir/fig8_floorplan.cc.o"
  "CMakeFiles/fig8_floorplan.dir/fig8_floorplan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
