# Empty compiler generated dependencies file for fig8_floorplan.
# This may be replaced when dependencies are built.
