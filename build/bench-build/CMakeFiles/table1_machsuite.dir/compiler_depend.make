# Empty compiler generated dependencies file for table1_machsuite.
# This may be replaced when dependencies are built.
