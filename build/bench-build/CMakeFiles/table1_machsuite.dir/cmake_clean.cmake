file(REMOVE_RECURSE
  "../bench/table1_machsuite"
  "../bench/table1_machsuite.pdb"
  "CMakeFiles/table1_machsuite.dir/table1_machsuite.cc.o"
  "CMakeFiles/table1_machsuite.dir/table1_machsuite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_machsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
