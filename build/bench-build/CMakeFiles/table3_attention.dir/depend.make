# Empty dependencies file for table3_attention.
# This may be replaced when dependencies are built.
