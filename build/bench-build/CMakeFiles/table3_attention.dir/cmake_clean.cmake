file(REMOVE_RECURSE
  "../bench/table3_attention"
  "../bench/table3_attention.pdb"
  "CMakeFiles/table3_attention.dir/table3_attention.cc.o"
  "CMakeFiles/table3_attention.dir/table3_attention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
