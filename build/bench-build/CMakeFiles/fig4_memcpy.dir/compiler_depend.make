# Empty compiler generated dependencies file for fig4_memcpy.
# This may be replaced when dependencies are built.
