file(REMOVE_RECURSE
  "../bench/fig4_memcpy"
  "../bench/fig4_memcpy.pdb"
  "CMakeFiles/fig4_memcpy.dir/fig4_memcpy.cc.o"
  "CMakeFiles/fig4_memcpy.dir/fig4_memcpy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_memcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
