# Empty dependencies file for fig6_machsuite.
# This may be replaced when dependencies are built.
