file(REMOVE_RECURSE
  "../bench/fig6_machsuite"
  "../bench/fig6_machsuite.pdb"
  "CMakeFiles/fig6_machsuite.dir/fig6_machsuite.cc.o"
  "CMakeFiles/fig6_machsuite.dir/fig6_machsuite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_machsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
