# Empty compiler generated dependencies file for micro_framework.
# This may be replaced when dependencies are built.
