
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/a3_sweep_test.cc" "tests/CMakeFiles/beethoven_tests.dir/a3_sweep_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/a3_sweep_test.cc.o.d"
  "/root/repo/tests/a3_test.cc" "tests/CMakeFiles/beethoven_tests.dir/a3_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/a3_test.cc.o.d"
  "/root/repo/tests/allocator_test.cc" "tests/CMakeFiles/beethoven_tests.dir/allocator_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/allocator_test.cc.o.d"
  "/root/repo/tests/axi_checker_test.cc" "tests/CMakeFiles/beethoven_tests.dir/axi_checker_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/axi_checker_test.cc.o.d"
  "/root/repo/tests/base_test.cc" "tests/CMakeFiles/beethoven_tests.dir/base_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/base_test.cc.o.d"
  "/root/repo/tests/bindgen_test.cc" "tests/CMakeFiles/beethoven_tests.dir/bindgen_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/bindgen_test.cc.o.d"
  "/root/repo/tests/bits_test.cc" "tests/CMakeFiles/beethoven_tests.dir/bits_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/bits_test.cc.o.d"
  "/root/repo/tests/cmd_test.cc" "tests/CMakeFiles/beethoven_tests.dir/cmd_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/cmd_test.cc.o.d"
  "/root/repo/tests/core_api_test.cc" "tests/CMakeFiles/beethoven_tests.dir/core_api_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/core_api_test.cc.o.d"
  "/root/repo/tests/dram_sweep_test.cc" "tests/CMakeFiles/beethoven_tests.dir/dram_sweep_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/dram_sweep_test.cc.o.d"
  "/root/repo/tests/dram_test.cc" "tests/CMakeFiles/beethoven_tests.dir/dram_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/dram_test.cc.o.d"
  "/root/repo/tests/floorplan_test.cc" "tests/CMakeFiles/beethoven_tests.dir/floorplan_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/floorplan_test.cc.o.d"
  "/root/repo/tests/functional_memory_test.cc" "tests/CMakeFiles/beethoven_tests.dir/functional_memory_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/functional_memory_test.cc.o.d"
  "/root/repo/tests/intra_core_test.cc" "tests/CMakeFiles/beethoven_tests.dir/intra_core_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/intra_core_test.cc.o.d"
  "/root/repo/tests/machsuite_test.cc" "tests/CMakeFiles/beethoven_tests.dir/machsuite_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/machsuite_test.cc.o.d"
  "/root/repo/tests/memcpy_test.cc" "tests/CMakeFiles/beethoven_tests.dir/memcpy_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/memcpy_test.cc.o.d"
  "/root/repo/tests/memory_compiler_test.cc" "tests/CMakeFiles/beethoven_tests.dir/memory_compiler_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/memory_compiler_test.cc.o.d"
  "/root/repo/tests/multi_process_test.cc" "tests/CMakeFiles/beethoven_tests.dir/multi_process_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/multi_process_test.cc.o.d"
  "/root/repo/tests/noc_test.cc" "tests/CMakeFiles/beethoven_tests.dir/noc_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/noc_test.cc.o.d"
  "/root/repo/tests/probe_test.cc" "tests/CMakeFiles/beethoven_tests.dir/probe_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/probe_test.cc.o.d"
  "/root/repo/tests/queue_test.cc" "tests/CMakeFiles/beethoven_tests.dir/queue_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/queue_test.cc.o.d"
  "/root/repo/tests/reader_writer_test.cc" "tests/CMakeFiles/beethoven_tests.dir/reader_writer_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/reader_writer_test.cc.o.d"
  "/root/repo/tests/resource_model_test.cc" "tests/CMakeFiles/beethoven_tests.dir/resource_model_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/resource_model_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/beethoven_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/scratchpad_test.cc" "tests/CMakeFiles/beethoven_tests.dir/scratchpad_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/scratchpad_test.cc.o.d"
  "/root/repo/tests/shape_regression_test.cc" "tests/CMakeFiles/beethoven_tests.dir/shape_regression_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/shape_regression_test.cc.o.d"
  "/root/repo/tests/soc_test.cc" "tests/CMakeFiles/beethoven_tests.dir/soc_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/soc_test.cc.o.d"
  "/root/repo/tests/strided_test.cc" "tests/CMakeFiles/beethoven_tests.dir/strided_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/strided_test.cc.o.d"
  "/root/repo/tests/toolflow_test.cc" "tests/CMakeFiles/beethoven_tests.dir/toolflow_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/toolflow_test.cc.o.d"
  "/root/repo/tests/vecadd_e2e_test.cc" "tests/CMakeFiles/beethoven_tests.dir/vecadd_e2e_test.cc.o" "gcc" "tests/CMakeFiles/beethoven_tests.dir/vecadd_e2e_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/beethoven.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
