# Empty compiler generated dependencies file for beethoven_tests.
# This may be replaced when dependencies are built.
