file(REMOVE_RECURSE
  "libbeethoven.a"
)
