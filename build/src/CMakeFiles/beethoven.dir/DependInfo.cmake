
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/a3/a3_core.cc" "src/CMakeFiles/beethoven.dir/accel/a3/a3_core.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/a3/a3_core.cc.o.d"
  "/root/repo/src/accel/machsuite/gemm.cc" "src/CMakeFiles/beethoven.dir/accel/machsuite/gemm.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/machsuite/gemm.cc.o.d"
  "/root/repo/src/accel/machsuite/md_knn.cc" "src/CMakeFiles/beethoven.dir/accel/machsuite/md_knn.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/machsuite/md_knn.cc.o.d"
  "/root/repo/src/accel/machsuite/nw.cc" "src/CMakeFiles/beethoven.dir/accel/machsuite/nw.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/machsuite/nw.cc.o.d"
  "/root/repo/src/accel/machsuite/stencil.cc" "src/CMakeFiles/beethoven.dir/accel/machsuite/stencil.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/machsuite/stencil.cc.o.d"
  "/root/repo/src/accel/machsuite/workloads.cc" "src/CMakeFiles/beethoven.dir/accel/machsuite/workloads.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/machsuite/workloads.cc.o.d"
  "/root/repo/src/accel/memcpy_core.cc" "src/CMakeFiles/beethoven.dir/accel/memcpy_core.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/memcpy_core.cc.o.d"
  "/root/repo/src/accel/vecadd.cc" "src/CMakeFiles/beethoven.dir/accel/vecadd.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/accel/vecadd.cc.o.d"
  "/root/repo/src/axi/axi.cc" "src/CMakeFiles/beethoven.dir/axi/axi.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/axi/axi.cc.o.d"
  "/root/repo/src/axi/timeline.cc" "src/CMakeFiles/beethoven.dir/axi/timeline.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/axi/timeline.cc.o.d"
  "/root/repo/src/base/bits.cc" "src/CMakeFiles/beethoven.dir/base/bits.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/base/bits.cc.o.d"
  "/root/repo/src/base/log.cc" "src/CMakeFiles/beethoven.dir/base/log.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/base/log.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/beethoven.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/base/stats.cc.o.d"
  "/root/repo/src/baselines/attention_sw.cc" "src/CMakeFiles/beethoven.dir/baselines/attention_sw.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/baselines/attention_sw.cc.o.d"
  "/root/repo/src/baselines/machsuite_golden.cc" "src/CMakeFiles/beethoven.dir/baselines/machsuite_golden.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/baselines/machsuite_golden.cc.o.d"
  "/root/repo/src/baselines/raw_memcpy.cc" "src/CMakeFiles/beethoven.dir/baselines/raw_memcpy.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/baselines/raw_memcpy.cc.o.d"
  "/root/repo/src/baselines/toolflow_models.cc" "src/CMakeFiles/beethoven.dir/baselines/toolflow_models.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/baselines/toolflow_models.cc.o.d"
  "/root/repo/src/bindgen/bindgen.cc" "src/CMakeFiles/beethoven.dir/bindgen/bindgen.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/bindgen/bindgen.cc.o.d"
  "/root/repo/src/cmd/command_spec.cc" "src/CMakeFiles/beethoven.dir/cmd/command_spec.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/cmd/command_spec.cc.o.d"
  "/root/repo/src/cmd/mmio.cc" "src/CMakeFiles/beethoven.dir/cmd/mmio.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/cmd/mmio.cc.o.d"
  "/root/repo/src/cmd/rocc.cc" "src/CMakeFiles/beethoven.dir/cmd/rocc.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/cmd/rocc.cc.o.d"
  "/root/repo/src/core/accelerator_core.cc" "src/CMakeFiles/beethoven.dir/core/accelerator_core.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/core/accelerator_core.cc.o.d"
  "/root/repo/src/core/soc.cc" "src/CMakeFiles/beethoven.dir/core/soc.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/core/soc.cc.o.d"
  "/root/repo/src/dram/controller.cc" "src/CMakeFiles/beethoven.dir/dram/controller.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/dram/controller.cc.o.d"
  "/root/repo/src/dram/functional_memory.cc" "src/CMakeFiles/beethoven.dir/dram/functional_memory.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/dram/functional_memory.cc.o.d"
  "/root/repo/src/floorplan/floorplan.cc" "src/CMakeFiles/beethoven.dir/floorplan/floorplan.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/floorplan/floorplan.cc.o.d"
  "/root/repo/src/mem/memory_compiler.cc" "src/CMakeFiles/beethoven.dir/mem/memory_compiler.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/mem/memory_compiler.cc.o.d"
  "/root/repo/src/mem/reader.cc" "src/CMakeFiles/beethoven.dir/mem/reader.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/mem/reader.cc.o.d"
  "/root/repo/src/mem/resource_model.cc" "src/CMakeFiles/beethoven.dir/mem/resource_model.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/mem/resource_model.cc.o.d"
  "/root/repo/src/mem/scratchpad.cc" "src/CMakeFiles/beethoven.dir/mem/scratchpad.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/mem/scratchpad.cc.o.d"
  "/root/repo/src/mem/strided.cc" "src/CMakeFiles/beethoven.dir/mem/strided.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/mem/strided.cc.o.d"
  "/root/repo/src/mem/writer.cc" "src/CMakeFiles/beethoven.dir/mem/writer.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/mem/writer.cc.o.d"
  "/root/repo/src/platform/aws_f1.cc" "src/CMakeFiles/beethoven.dir/platform/aws_f1.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/platform/aws_f1.cc.o.d"
  "/root/repo/src/runtime/allocator.cc" "src/CMakeFiles/beethoven.dir/runtime/allocator.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/runtime/allocator.cc.o.d"
  "/root/repo/src/runtime/fpga_handle.cc" "src/CMakeFiles/beethoven.dir/runtime/fpga_handle.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/runtime/fpga_handle.cc.o.d"
  "/root/repo/src/runtime/host_interface.cc" "src/CMakeFiles/beethoven.dir/runtime/host_interface.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/runtime/host_interface.cc.o.d"
  "/root/repo/src/runtime/runtime_server.cc" "src/CMakeFiles/beethoven.dir/runtime/runtime_server.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/runtime/runtime_server.cc.o.d"
  "/root/repo/src/sim/probe.cc" "src/CMakeFiles/beethoven.dir/sim/probe.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/sim/probe.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/beethoven.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/beethoven.dir/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
