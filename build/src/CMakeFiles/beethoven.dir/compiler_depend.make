# Empty compiler generated dependencies file for beethoven.
# This may be replaced when dependencies are built.
