# Empty compiler generated dependencies file for example_attention_inference.
# This may be replaced when dependencies are built.
