file(REMOVE_RECURSE
  "../examples/example_attention_inference"
  "../examples/example_attention_inference.pdb"
  "CMakeFiles/example_attention_inference.dir/attention_inference.cc.o"
  "CMakeFiles/example_attention_inference.dir/attention_inference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attention_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
