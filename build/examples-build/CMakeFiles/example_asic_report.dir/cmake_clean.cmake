file(REMOVE_RECURSE
  "../examples/example_asic_report"
  "../examples/example_asic_report.pdb"
  "CMakeFiles/example_asic_report.dir/asic_report.cc.o"
  "CMakeFiles/example_asic_report.dir/asic_report.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_asic_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
