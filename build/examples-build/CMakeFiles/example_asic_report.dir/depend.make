# Empty dependencies file for example_asic_report.
# This may be replaced when dependencies are built.
