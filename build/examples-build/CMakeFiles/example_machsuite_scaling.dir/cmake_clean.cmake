file(REMOVE_RECURSE
  "../examples/example_machsuite_scaling"
  "../examples/example_machsuite_scaling.pdb"
  "CMakeFiles/example_machsuite_scaling.dir/machsuite_scaling.cc.o"
  "CMakeFiles/example_machsuite_scaling.dir/machsuite_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_machsuite_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
