# Empty compiler generated dependencies file for example_machsuite_scaling.
# This may be replaced when dependencies are built.
