file(REMOVE_RECURSE
  "../examples/example_beethoven_build"
  "../examples/example_beethoven_build.pdb"
  "CMakeFiles/example_beethoven_build.dir/beethoven_build.cc.o"
  "CMakeFiles/example_beethoven_build.dir/beethoven_build.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_beethoven_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
