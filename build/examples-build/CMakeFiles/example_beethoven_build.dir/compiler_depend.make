# Empty compiler generated dependencies file for example_beethoven_build.
# This may be replaced when dependencies are built.
