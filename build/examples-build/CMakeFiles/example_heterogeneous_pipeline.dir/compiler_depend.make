# Empty compiler generated dependencies file for example_heterogeneous_pipeline.
# This may be replaced when dependencies are built.
