file(REMOVE_RECURSE
  "../examples/example_heterogeneous_pipeline"
  "../examples/example_heterogeneous_pipeline.pdb"
  "CMakeFiles/example_heterogeneous_pipeline.dir/heterogeneous_pipeline.cc.o"
  "CMakeFiles/example_heterogeneous_pipeline.dir/heterogeneous_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
