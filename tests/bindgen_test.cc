/**
 * @file
 * Tests for the binding generator: signatures, argument typing,
 * remote_ptr handling for Address() fields, and multi-system output.
 */

#include <gtest/gtest.h>

#include "accel/vecadd.h"
#include "bindgen/bindgen.h"

namespace beethoven
{
namespace
{

TEST(Bindgen, FieldTypesFollowWidths)
{
    EXPECT_EQ(fieldArgType(CommandField::uint("a", 1)), "uint8_t");
    EXPECT_EQ(fieldArgType(CommandField::uint("a", 8)), "uint8_t");
    EXPECT_EQ(fieldArgType(CommandField::uint("a", 9)), "uint16_t");
    EXPECT_EQ(fieldArgType(CommandField::uint("a", 20)), "uint32_t");
    EXPECT_EQ(fieldArgType(CommandField::uint("a", 33)), "uint64_t");
    EXPECT_EQ(fieldArgType(CommandField::address("a")),
              "const ::beethoven::remote_ptr &");
}

TEST(Bindgen, HeaderMatchesFig3b)
{
    const auto sys = VecAddCore::systemConfig(1);
    const std::string header = generateBindingsHeader(sys);
    // namespace MyAcceleratorSystem { response_handle<...> my_accel(...) }
    EXPECT_NE(header.find("namespace MyAcceleratorSystem"),
              std::string::npos);
    EXPECT_NE(header.find("my_accel"), std::string::npos);
    EXPECT_NE(header.find("int16_t core_idx"), std::string::npos);
    EXPECT_NE(header.find("uint32_t addend"), std::string::npos);
    EXPECT_NE(header.find("const ::beethoven::remote_ptr & vec_addr"),
              std::string::npos);
    EXPECT_NE(header.find("uint32_t n_eles"), std::string::npos);
    EXPECT_NE(header.find("response_handle<uint64_t>"),
              std::string::npos);
}

TEST(Bindgen, SourcePacksThroughInvoke)
{
    const auto sys = VecAddCore::systemConfig(1);
    const std::string source =
        generateBindingsSource(sys, "bindings.h");
    EXPECT_NE(source.find("#include \"bindings.h\""),
              std::string::npos);
    EXPECT_NE(source.find("handle.invoke(\"MyAcceleratorSystem\", "
                          "\"my_accel\""),
              std::string::npos);
    EXPECT_NE(source.find("vec_addr.getFpgaAddr()"),
              std::string::npos);
    EXPECT_NE(source.find("static_cast<uint64_t>(addend)"),
              std::string::npos);
}

TEST(Bindgen, MultiSystemConfigsEmitAllNamespaces)
{
    AcceleratorConfig cfg;
    auto a = VecAddCore::systemConfig(1);
    a.name = "SystemA";
    auto b = VecAddCore::systemConfig(1);
    b.name = "SystemB";
    cfg.systems.push_back(a);
    cfg.systems.push_back(b);
    cfg.name = "Duo";
    const auto out = generateBindings(cfg);
    EXPECT_EQ(out.headerName, "Duo_bindings.h");
    EXPECT_NE(out.header.find("namespace SystemA"), std::string::npos);
    EXPECT_NE(out.header.find("namespace SystemB"), std::string::npos);
    EXPECT_NE(out.source.find("\"SystemA\""), std::string::npos);
    EXPECT_NE(out.source.find("\"SystemB\""), std::string::npos);
}

TEST(Bindgen, MultipleCommandsPerSystem)
{
    AcceleratorSystemConfig sys;
    sys.name = "Multi";
    sys.nCores = 1;
    sys.commands.push_back(
        CommandSpec("first", {CommandField::uint("x", 16)}));
    sys.commands.push_back(
        CommandSpec("second", {CommandField::address("p")}));
    const std::string header = generateBindingsHeader(sys);
    EXPECT_NE(header.find("first"), std::string::npos);
    EXPECT_NE(header.find("second"), std::string::npos);
}

} // namespace
} // namespace beethoven
