/**
 * @file
 * Tests for the AcceleratorCore API surface: accessor error messages,
 * response plumbing, command dispatch across multiple command IDs and
 * multiple systems sharing the fabric.
 */

#include <gtest/gtest.h>

#include "core/accelerator_core.h"
#include "core/soc.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

/** A core that misuses an accessor in its constructor. */
class BadReaderCore : public AcceleratorCore
{
  public:
    explicit BadReaderCore(const CoreContext &ctx) : AcceleratorCore(ctx)
    {
        getReaderModule("does_not_exist");
    }
    void tick() override {}
};

TEST(CoreApi, MissingReaderNameIsActionable)
{
    SimulationPlatform platform;
    AcceleratorSystemConfig sys;
    sys.name = "Bad";
    sys.nCores = 1;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<BadReaderCore>(ctx);
    };
    try {
        AcceleratorSoc soc(AcceleratorConfig(sys), platform);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("does_not_exist"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("ReadChannelConfig"),
                  std::string::npos)
            << "error should point at the fix";
    }
}

/** Implements two commands with different IDs and payload shapes. */
class TwoCommandCore : public AcceleratorCore
{
  public:
    explicit TwoCommandCore(const CoreContext &ctx)
        : AcceleratorCore(ctx)
    {}

    void
    tick() override
    {
        if (_respond) {
            if (respond(_cmd, _value))
                _respond = false;
            return;
        }
        if (auto cmd = pollCommand()) {
            _cmd = *cmd;
            if (cmd->commandId == 0) {
                _value = cmd->args[0] + cmd->args[1];
            } else {
                // The wide command: three 64-bit fields (two beats).
                _value = cmd->args[0] ^ cmd->args[1] ^ cmd->args[2];
            }
            _respond = true;
        }
    }

  private:
    DecodedCommand _cmd;
    u64 _value = 0;
    bool _respond = false;
};

AcceleratorConfig
twoCommandConfig()
{
    AcceleratorSystemConfig sys;
    sys.name = "Two";
    sys.nCores = 2;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<TwoCommandCore>(ctx);
    };
    sys.commands.push_back(CommandSpec(
        "add", {CommandField::uint("a", 32), CommandField::uint("b", 32)},
        64));
    sys.commands.push_back(CommandSpec(
        "xor3",
        {CommandField::uint("x", 64), CommandField::uint("y", 64),
         CommandField::uint("z", 64)},
        64));
    return AcceleratorConfig(sys);
}

TEST(CoreApi, MultipleCommandIdsDispatchCorrectly)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(twoCommandConfig(), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    EXPECT_EQ(handle.invoke("Two", "add", 0, {40, 2}).get(), 42u);
    EXPECT_EQ(handle
                  .invoke("Two", "xor3", 0,
                          {0xFF00FF00FF00FF00ull,
                           0x0F0F0F0F0F0F0F0Full, 0x1ull})
                  .get(),
              (0xFF00FF00FF00FF00ull ^ 0x0F0F0F0F0F0F0F0Full ^ 1ull));
}

TEST(CoreApi, MultiBeatCommandsInterleaveAcrossCores)
{
    // Two cores each receive a two-beat command; beats are routed by
    // core ID through the shared fabric, so the assemblers must not
    // mix payloads.
    SimulationPlatform platform;
    AcceleratorSoc soc(twoCommandConfig(), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    auto h0 = handle.invoke("Two", "xor3", 0, {1, 2, 4});
    auto h1 = handle.invoke("Two", "xor3", 1, {8, 16, 32});
    EXPECT_EQ(h0.get(), 7u);
    EXPECT_EQ(h1.get(), 56u);
}

TEST(CoreApi, HeterogeneousSystemsShareTheFabric)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg = twoCommandConfig();
    AcceleratorSystemConfig second;
    second.name = "Echo";
    second.nCores = 1;
    struct EchoCore : AcceleratorCore
    {
        explicit EchoCore(const CoreContext &ctx)
            : AcceleratorCore(ctx)
        {}
        void
        tick() override
        {
            if (_respond) {
                if (respond(_cmd, _cmd.args[0]))
                    _respond = false;
                return;
            }
            if (auto cmd = pollCommand()) {
                _cmd = *cmd;
                _respond = true;
            }
        }
        DecodedCommand _cmd;
        bool _respond = false;
    };
    second.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<EchoCore>(ctx);
    };
    second.commands.push_back(
        CommandSpec("echo", {CommandField::uint("v", 48)}, 64));
    cfg.systems.push_back(std::move(second));

    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    auto a = handle.invoke("Two", "add", 1, {5, 6});
    auto b = handle.invoke("Echo", "echo", 0, {0xBEEF});
    EXPECT_EQ(b.get(), 0xBEEFu);
    EXPECT_EQ(a.get(), 11u);
}

TEST(CoreApi, ResponsesCarry64BitPayloads)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(twoCommandConfig(), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    const u64 big = 0xFFFFFFFF00000001ull;
    EXPECT_EQ(handle.invoke("Two", "xor3", 0, {big, 0, 0}).get(), big);
}

} // namespace
} // namespace beethoven
