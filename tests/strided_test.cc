/**
 * @file
 * Tests for the strided access primitives: matrix-column tiles through
 * a StridedReader, tiled writes through a StridedWriter, parameter
 * validation, and back-to-back patterns.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "dram/controller.h"
#include "mem/strided.h"

namespace beethoven
{
namespace
{

struct StridedHarness
{
    Simulator sim;
    FunctionalMemory mem;
    DramController ctrl;
    Reader reader;
    Writer writer;
    StridedReader sreader;
    StridedWriter swriter;

    StridedHarness()
        : ctrl(sim, "ddr", makeConfig(), mem),
          reader(sim, "rd", makeReaderParams(), ctrl.config().axi, 0,
                 &ctrl.arPort(), &ctrl.rPort()),
          writer(sim, "wr", makeWriterParams(), ctrl.config().axi, 0,
                 &ctrl.wPort(), &ctrl.bPort()),
          sreader(sim, "srd", reader),
          swriter(sim, "swr", writer)
    {}

    static DramController::Config
    makeConfig()
    {
        DramController::Config cfg;
        cfg.axi.dataBytes = 64;
        return cfg;
    }

    static ReaderParams
    makeReaderParams()
    {
        ReaderParams p;
        p.dataBytes = 4;
        // Row commands arrive back to back; allow queueing.
        p.cmdQueueDepth = 8;
        return p;
    }

    static WriterParams
    makeWriterParams()
    {
        WriterParams p;
        p.dataBytes = 4;
        p.cmdQueueDepth = 8;
        p.doneQueueDepth = 8;
        return p;
    }
};

TEST(StridedReader, GathersMatrixColumnTile)
{
    StridedHarness h;
    // A 64x64 int32 matrix; gather a 64-row x 16-byte column tile.
    const unsigned n = 64, pitch = n * 4;
    Rng rng(5);
    std::vector<u8> matrix(n * pitch);
    for (auto &b : matrix)
        b = static_cast<u8>(rng.next());
    h.mem.write(0x10000, matrix.size(), matrix.data());

    StridedCommand cmd;
    cmd.base = 0x10000 + 32; // column offset 8 (ints 8..11)
    cmd.rowBytes = 16;
    cmd.strideBytes = pitch;
    cmd.nRows = n;
    h.sreader.cmdPort().push(cmd);

    std::vector<u8> out;
    const Cycle start = h.sim.cycle();
    while (out.size() < cmd.totalBytes()) {
        if (h.sreader.dataPort().canPop()) {
            const auto w = h.sreader.dataPort().pop();
            out.insert(out.end(), w.data.begin(), w.data.end());
        } else {
            h.sim.step();
            ASSERT_LT(h.sim.cycle() - start, 100000u) << "hung";
        }
    }
    for (unsigned r = 0; r < n; ++r) {
        for (unsigned b = 0; b < 16; ++b) {
            ASSERT_EQ(out[r * 16 + b], matrix[r * pitch + 32 + b])
                << "row " << r << " byte " << b;
        }
    }
}

TEST(StridedWriter, ScattersTileWithoutClobbering)
{
    StridedHarness h;
    const unsigned n = 32, pitch = 256;
    const auto original = [&] {
        Rng rng(6);
        std::vector<u8> v(n * pitch);
        for (auto &b : v)
            b = static_cast<u8>(rng.next());
        return v;
    }();
    h.mem.write(0x20000, original.size(), original.data());

    StridedCommand cmd;
    cmd.base = 0x20000 + 64;
    cmd.rowBytes = 32;
    cmd.strideBytes = pitch;
    cmd.nRows = n;
    h.swriter.cmdPort().push(cmd);

    Rng rng(7);
    std::vector<u8> tile(cmd.totalBytes());
    for (auto &b : tile)
        b = static_cast<u8>(rng.next());

    std::size_t sent = 0;
    const Cycle start = h.sim.cycle();
    while (!h.swriter.donePort().canPop()) {
        if (sent < tile.size() && h.swriter.dataPort().canPush()) {
            StreamWord w;
            w.data.assign(tile.begin() + sent,
                          tile.begin() + sent + 4);
            h.swriter.dataPort().push(std::move(w));
            sent += 4;
        }
        h.sim.step();
        ASSERT_LT(h.sim.cycle() - start, 200000u) << "hung";
    }
    h.swriter.donePort().pop();

    std::vector<u8> now(original.size());
    h.mem.read(0x20000, now.size(), now.data());
    for (unsigned r = 0; r < n; ++r) {
        for (unsigned b = 0; b < pitch; ++b) {
            const std::size_t idx = r * pitch + b;
            const bool in_tile = b >= 64 && b < 96;
            const u8 expected =
                in_tile ? tile[r * 32 + (b - 64)] : original[idx];
            ASSERT_EQ(now[idx], expected)
                << "row " << r << " byte " << b;
        }
    }
}

TEST(StridedReader, ContiguousDegenerateCase)
{
    // stride == rowBytes degenerates to a flat stream.
    StridedHarness h;
    std::vector<u8> data(1024);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i);
    h.mem.write(0x40000, data.size(), data.data());

    StridedCommand cmd;
    cmd.base = 0x40000;
    cmd.rowBytes = 128;
    cmd.strideBytes = 128;
    cmd.nRows = 8;
    h.sreader.cmdPort().push(cmd);

    std::vector<u8> out;
    const Cycle start = h.sim.cycle();
    while (out.size() < 1024) {
        if (h.sreader.dataPort().canPop()) {
            const auto w = h.sreader.dataPort().pop();
            out.insert(out.end(), w.data.begin(), w.data.end());
        } else {
            h.sim.step();
            ASSERT_LT(h.sim.cycle() - start, 100000u);
        }
    }
    EXPECT_EQ(out, data);
}

TEST(StridedReader, OverlappingStrideIsFatal)
{
    StridedHarness h;
    StridedCommand cmd;
    cmd.base = 0;
    cmd.rowBytes = 64;
    cmd.strideBytes = 32; // rows overlap
    cmd.nRows = 4;
    h.sreader.cmdPort().push(cmd);
    EXPECT_THROW(h.sim.run(4), ConfigError);
}

TEST(StridedWriter, EmptyPatternCompletes)
{
    StridedHarness h;
    StridedCommand cmd;
    cmd.nRows = 0;
    h.swriter.cmdPort().push(cmd);
    EXPECT_TRUE(h.sim.runUntil(
        [&] { return h.swriter.donePort().canPop(); }, 1000));
}

} // namespace
} // namespace beethoven
