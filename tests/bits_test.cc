/**
 * @file
 * Unit and property tests for bit utilities and BitVector — the
 * foundation of RoCC payload packing.
 */

#include <gtest/gtest.h>

#include "base/bits.h"
#include "base/rng.h"

namespace beethoven
{
namespace
{

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xFFu);
    EXPECT_EQ(mask(32), 0xFFFFFFFFull);
    EXPECT_EQ(mask(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(mask(64), ~u64(0));
}

TEST(Bits, ExtractInsert)
{
    const u64 v = 0xDEADBEEFCAFEF00Dull;
    EXPECT_EQ(bits(v, 0, 16), 0xF00Dull);
    EXPECT_EQ(bits(v, 16, 16), 0xCAFEull);
    EXPECT_EQ(bits(v, 32, 32), 0xDEADBEEFull);
    EXPECT_EQ(insertBits(0, 8, 8, 0xAB), 0xAB00ull);
    // Inserting must not disturb neighbours.
    EXPECT_EQ(insertBits(v, 16, 16, 0x1234),
              0xDEADBEEF1234F00Dull);
    // Oversized fields are truncated to the field width.
    EXPECT_EQ(insertBits(0, 0, 4, 0xFF), 0xFull);
}

TEST(Bits, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(divCeil(0, 3), 0u);
    EXPECT_EQ(divCeil(1, 3), 1u);
    EXPECT_EQ(divCeil(3, 3), 1u);
    EXPECT_EQ(divCeil(4, 3), 2u);
}

TEST(BitVector, BasicSetGet)
{
    BitVector bv(100);
    bv.setBits(0, 8, 0xAB);
    bv.setBits(90, 10, 0x3FF);
    EXPECT_EQ(bv.getBits(0, 8), 0xABull);
    EXPECT_EQ(bv.getBits(90, 10), 0x3FFull);
    EXPECT_EQ(bv.getBits(8, 16), 0ull);
}

TEST(BitVector, CrossWordBoundary)
{
    BitVector bv(128);
    bv.setBits(60, 16, 0xBEEF);
    EXPECT_EQ(bv.getBits(60, 16), 0xBEEFull);
    // The straddle must land in both words consistently.
    EXPECT_EQ(bv.word(0) >> 60, 0xBEEFull & 0xF);
    EXPECT_EQ(bv.word(1) & mask(12), 0xBEEFull >> 4);
}

TEST(BitVector, FullWidth64BitField)
{
    BitVector bv(200);
    bv.setBits(70, 64, 0x0123456789ABCDEFull);
    EXPECT_EQ(bv.getBits(70, 64), 0x0123456789ABCDEFull);
}

TEST(BitVector, ResizePreservesAndTruncates)
{
    BitVector bv(64);
    bv.setBits(0, 64, ~u64(0));
    bv.resize(40);
    EXPECT_EQ(bv.getBits(0, 40), mask(40));
    bv.resize(64);
    EXPECT_EQ(bv.getBits(0, 64), mask(40));
}

TEST(BitVector, WordAccess)
{
    BitVector bv(130);
    bv.setWord(0, 0x1111111111111111ull);
    bv.setWord(1, 0x2222222222222222ull);
    bv.setWord(2, ~u64(0)); // truncated to 2 bits
    EXPECT_EQ(bv.word(0), 0x1111111111111111ull);
    EXPECT_EQ(bv.word(2), 0x3ull);
    EXPECT_EQ(bv.word(5), 0ull); // out-of-range words read as zero
}

TEST(BitVector, Equality)
{
    BitVector a(70), b(70);
    EXPECT_TRUE(a == b);
    a.setBits(69, 1, 1);
    EXPECT_FALSE(a == b);
    b.setBits(69, 1, 1);
    EXPECT_TRUE(a == b);
}

/** Property: random non-overlapping fields round-trip exactly. */
class BitVectorFuzz : public ::testing::TestWithParam<u64>
{};

TEST_P(BitVectorFuzz, RandomFieldRoundTrip)
{
    Rng rng(GetParam());
    const std::size_t total = 64 + rng.nextBounded(512);
    BitVector bv(total);

    struct Field
    {
        std::size_t offset;
        unsigned bits;
        u64 value;
    };
    std::vector<Field> fields;
    std::size_t offset = 0;
    while (offset < total) {
        const unsigned width = static_cast<unsigned>(
            1 + rng.nextBounded(std::min<u64>(64, total - offset)));
        const u64 value = rng.next() & mask(width);
        bv.setBits(offset, width, value);
        fields.push_back({offset, width, value});
        offset += width;
    }
    for (const auto &f : fields)
        ASSERT_EQ(bv.getBits(f.offset, f.bits), f.value)
            << "offset=" << f.offset << " bits=" << f.bits;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

} // namespace
} // namespace beethoven
