/**
 * @file
 * Determinism regression tests: the simulator derives everything from
 * seeds and cycle counts (never wall clock), so two runs of the same
 * seed + configuration must agree bit-for-bit — same stats JSON, same
 * cycle counts, same AXI event stream length.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "accel/vecadd.h"
#include "base/rng.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"
#include "verify/fuzz.h"
#include "verify/random_soc.h"
#include "verify/traffic.h"

namespace beethoven
{
namespace
{

/**
 * Run the canonical vecadd workload and return the full stats-tree
 * JSON dump (including the published stall accounts) as the digest.
 */
std::string
vecAddStatsDigest(u64 seed)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(2));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    Rng rng(seed);
    const unsigned n = 128;
    std::vector<remote_ptr> bufs;
    for (unsigned c = 0; c < 2; ++c) {
        remote_ptr mem = handle.malloc(n * sizeof(u32));
        auto *vals = mem.as<u32>();
        for (unsigned i = 0; i < n; ++i)
            vals[i] = static_cast<u32>(rng.next());
        handle.copy_to_fpga(mem);
        bufs.push_back(mem);
    }
    std::vector<response_handle<u64>> handles;
    for (unsigned c = 0; c < 2; ++c) {
        handles.push_back(handle.invoke(
            "MyAcceleratorSystem", "my_accel", c,
            {seed & 0xFFFF, bufs[c].getFpgaAddr(), n}));
    }
    for (auto &h : handles)
        h.get();

    soc.sim().publishStallStats();
    std::ostringstream os;
    soc.sim().stats().dumpJson(os);
    // Fold the final cycle count in so schedule drift is also caught.
    os << "@" << soc.sim().cycle();
    return os.str();
}

TEST(Determinism, IdenticalSeedGivesIdenticalStatsDigest)
{
    const std::string first = vecAddStatsDigest(0xD5EED);
    const std::string second = vecAddStatsDigest(0xD5EED);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(Determinism, DifferentSeedsGiveDifferentData)
{
    // Sanity check that the digest actually depends on the workload
    // (different payloads, same schedule shape is fine — the digest
    // includes data-independent stats, so just require the runs ran).
    const std::string a = vecAddStatsDigest(1);
    EXPECT_FALSE(a.empty());
}

TEST(Determinism, FuzzCaseReplaysBitIdentical)
{
    using namespace verify;
    RandomSocBuilder builder(0xBEE7);
    FuzzCase c = builder.sample();
    RandomTrafficGen traffic(0xBEE7 ^ 0xFF);
    traffic.generate(c, 5);

    FuzzOptions opt;
    const FuzzResult a = runFuzzCase(c, opt);
    const FuzzResult b = runFuzzCase(c, opt);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.axiEvents, b.axiEvents);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.kind, FailKind::None) << a.message;
}

} // namespace
} // namespace beethoven
