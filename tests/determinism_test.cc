/**
 * @file
 * Determinism regression tests: the simulator derives everything from
 * seeds and cycle counts (never wall clock), so two runs of the same
 * seed + configuration must agree bit-for-bit — same stats JSON, same
 * cycle counts, same AXI event stream length.
 *
 * The cross-kernel section is the differential gate for the
 * event-driven and parallel kernels: the tick kernel is the reference
 * semantics, and every workload here must produce a bit-identical
 * stats digest, final cycle count, and power-ledger energy under all
 * three kernels — and under the parallel kernel, at every worker
 * thread count.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "accel/machsuite/gemm.h"
#include "accel/memcpy_core.h"
#include "accel/vecadd.h"
#include "base/rng.h"
#include "baselines/machsuite_golden.h"
#include "platform/sim_platform.h"
#include "power/power.h"
#include "runtime/fpga_handle.h"
#include "verify/fuzz.h"
#include "verify/random_soc.h"
#include "verify/traffic.h"

namespace beethoven
{
namespace
{

/** Digest of one finished run: everything a kernel may not perturb. */
struct RunDigest
{
    std::string stats; ///< stats-tree JSON + "@" + final cycle
    Cycle cycles = 0;
    double joules = 0.0; ///< power-ledger total energy
};

/** Snapshot @p soc's observable end state as a RunDigest. */
RunDigest
digestOf(AcceleratorSoc &soc)
{
    RunDigest d;
    soc.sim().publishStallStats();
    std::ostringstream os;
    soc.sim().stats().dumpJson(os);
    os << "@" << soc.sim().cycle();
    d.stats = os.str();
    d.cycles = soc.sim().cycle();
    d.joules = soc.power().totalJoules(soc.sim().cycle());
    return d;
}

/**
 * Run the canonical vecadd workload under @p kernel and digest the
 * full stats tree (including the published stall accounts).
 * @p threads only matters for SimKernel::Parallel (0 = one per group).
 */
RunDigest
vecAddDigest(u64 seed, SimKernel kernel, unsigned threads = 0)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(2));
    AcceleratorSoc soc(std::move(cfg), platform);
    soc.sim().setKernel(kernel);
    soc.sim().setParallelThreads(threads);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    Rng rng(seed);
    const unsigned n = 128;
    std::vector<remote_ptr> bufs;
    for (unsigned c = 0; c < 2; ++c) {
        remote_ptr mem = handle.malloc(n * sizeof(u32));
        auto *vals = mem.as<u32>();
        for (unsigned i = 0; i < n; ++i)
            vals[i] = static_cast<u32>(rng.next());
        handle.copy_to_fpga(mem);
        bufs.push_back(mem);
    }
    std::vector<response_handle<u64>> handles;
    for (unsigned c = 0; c < 2; ++c) {
        handles.push_back(handle.invoke(
            "MyAcceleratorSystem", "my_accel", c,
            {seed & 0xFFFF, bufs[c].getFpgaAddr(), n}));
    }
    for (auto &h : handles)
        h.get();
    return digestOf(soc);
}

/** Run one memcpy stream under @p kernel and digest the end state. */
RunDigest
memcpyDigest(SimKernel kernel, unsigned threads = 0)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(
        MemcpyCore::systemConfig(1, MemcpyCore::Variant{}));
    AcceleratorSoc soc(std::move(cfg), platform);
    soc.sim().setKernel(kernel);
    soc.sim().setParallelThreads(threads);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const u64 len = 4096;
    remote_ptr src = handle.malloc(len);
    remote_ptr dst = handle.malloc(len);
    for (u64 i = 0; i < len; ++i)
        src.getHostAddr()[i] = static_cast<u8>(i * 31);
    handle.copy_to_fpga(src);
    handle
        .invoke("MemcpySystem", "do_memcpy", 0,
                {src.getFpgaAddr(), dst.getFpgaAddr(), len})
        .get();
    handle.copy_from_fpga(dst);
    for (u64 i = 0; i < len; ++i)
        EXPECT_EQ(dst.getHostAddr()[i], static_cast<u8>(i * 31));
    return digestOf(soc);
}

/** Run one MachSuite gemm end to end under @p kernel and digest it. */
RunDigest
gemmDigest(SimKernel kernel, unsigned threads = 0)
{
    using machsuite::GemmCore;
    SimulationPlatform platform;
    AcceleratorConfig cfg(GemmCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    soc.sim().setKernel(kernel);
    soc.sim().setParallelThreads(threads);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const unsigned n = 16;
    Rng rng(n);
    std::vector<i32> a(n * n), bt(n * n);
    for (auto &v : a)
        v = static_cast<i32>(rng.nextRange(0, 2000)) - 1000;
    for (auto &v : bt)
        v = static_cast<i32>(rng.nextRange(0, 2000)) - 1000;
    remote_ptr a_mem = handle.malloc(n * n * 4);
    remote_ptr bt_mem = handle.malloc(n * n * 4);
    remote_ptr c_mem = handle.malloc(n * n * 4);
    std::memcpy(a_mem.getHostAddr(), a.data(), n * n * 4);
    std::memcpy(bt_mem.getHostAddr(), bt.data(), n * n * 4);
    handle.copy_to_fpga(a_mem);
    handle.copy_to_fpga(bt_mem);
    handle
        .invoke("GemmSystem", "gemm", 0,
                {a_mem.getFpgaAddr(), bt_mem.getFpgaAddr(),
                 c_mem.getFpgaAddr(), n})
        .get();
    handle.copy_from_fpga(c_mem);

    const auto golden = machsuite::goldenGemm(a, bt, n);
    const i32 *c = c_mem.as<i32>();
    for (unsigned i = 0; i < n * n; ++i)
        EXPECT_EQ(c[i], golden[i]) << "idx=" << i;
    return digestOf(soc);
}

TEST(Determinism, IdenticalSeedGivesIdenticalStatsDigest)
{
    const RunDigest first = vecAddDigest(0xD5EED, SimKernel::Tick);
    const RunDigest second = vecAddDigest(0xD5EED, SimKernel::Tick);
    EXPECT_EQ(first.stats, second.stats);
    EXPECT_FALSE(first.stats.empty());
}

TEST(Determinism, DifferentSeedsGiveDifferentData)
{
    // Sanity check that the digest actually depends on the workload
    // (different payloads, same schedule shape is fine — the digest
    // includes data-independent stats, so just require the runs ran).
    const RunDigest a = vecAddDigest(1, SimKernel::Tick);
    EXPECT_FALSE(a.stats.empty());
}

TEST(Determinism, FuzzCaseReplaysBitIdentical)
{
    using namespace verify;
    RandomSocBuilder builder(0xBEE7);
    FuzzCase c = builder.sample();
    RandomTrafficGen traffic(0xBEE7 ^ 0xFF);
    traffic.generate(c, 5);

    FuzzOptions opt;
    const FuzzResult a = runFuzzCase(c, opt);
    const FuzzResult b = runFuzzCase(c, opt);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.axiEvents, b.axiEvents);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.statsDigest, b.statsDigest);
    EXPECT_EQ(a.kind, FailKind::None) << a.message;
}

// --- Cross-kernel differential gate -----------------------------------

/** Both kernels must agree on every field of the digest. */
void
expectKernelsAgree(const RunDigest &tick, const RunDigest &event,
                   const char *workload)
{
    EXPECT_EQ(tick.cycles, event.cycles) << workload;
    EXPECT_EQ(tick.stats, event.stats) << workload;
    EXPECT_EQ(tick.joules, event.joules) << workload;
    EXPECT_FALSE(tick.stats.empty()) << workload;
}

TEST(CrossKernel, VecAddBitIdentical)
{
    const RunDigest tick = vecAddDigest(0xD5EED, SimKernel::Tick);
    expectKernelsAgree(tick, vecAddDigest(0xD5EED, SimKernel::Event),
                       "vecadd event");
    expectKernelsAgree(tick, vecAddDigest(0xD5EED, SimKernel::Parallel),
                       "vecadd parallel");
}

TEST(CrossKernel, MemcpyBitIdentical)
{
    const RunDigest tick = memcpyDigest(SimKernel::Tick);
    expectKernelsAgree(tick, memcpyDigest(SimKernel::Event),
                       "memcpy event");
    expectKernelsAgree(tick, memcpyDigest(SimKernel::Parallel),
                       "memcpy parallel");
}

TEST(CrossKernel, MachSuiteGemmBitIdentical)
{
    const RunDigest tick = gemmDigest(SimKernel::Tick);
    expectKernelsAgree(tick, gemmDigest(SimKernel::Event),
                       "gemm event");
    expectKernelsAgree(tick, gemmDigest(SimKernel::Parallel),
                       "gemm parallel");
}

TEST(CrossKernel, ParallelThreadCountDoesNotChangeDigest)
{
    // The mailbox drain order is fixed by queue registration, not by
    // which worker got there first — so the digest may not depend on
    // how groups are packed onto threads (1 = fully serialized
    // coordinator, 2 = split packing, 4 = one thread per group with
    // spares idle).
    const RunDigest one = vecAddDigest(0xD5EED, SimKernel::Parallel, 1);
    const RunDigest two = vecAddDigest(0xD5EED, SimKernel::Parallel, 2);
    const RunDigest four = vecAddDigest(0xD5EED, SimKernel::Parallel, 4);
    expectKernelsAgree(one, two, "vecadd threads 1 vs 2");
    expectKernelsAgree(one, four, "vecadd threads 1 vs 4");
    expectKernelsAgree(memcpyDigest(SimKernel::Parallel, 1),
                       memcpyDigest(SimKernel::Parallel, 4),
                       "memcpy threads 1 vs 4");
}

TEST(CrossKernel, EventKernelFuzzReplayDeterministic)
{
    // The event kernel must be as deterministic as the tick kernel:
    // replaying one fuzz composition twice under it gives the same
    // digest, and that digest equals the tick kernel's.
    using namespace verify;
    RandomSocBuilder builder(0xBEE7);
    FuzzCase c = builder.sample();
    RandomTrafficGen traffic(0xBEE7 ^ 0xFF);
    traffic.generate(c, 5);

    FuzzOptions opt;
    opt.kernel = SimKernel::Event;
    const FuzzResult a = runFuzzCase(c, opt);
    const FuzzResult b = runFuzzCase(c, opt);
    EXPECT_EQ(a.kind, FailKind::None) << a.message;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.statsDigest, b.statsDigest);

    FuzzOptions tick_opt;
    const FuzzResult t = runFuzzCase(c, tick_opt);
    EXPECT_EQ(t.cycles, a.cycles);
    EXPECT_EQ(t.statsDigest, a.statsDigest);
}

TEST(CrossKernel, ParallelKernelFuzzReplayDeterministic)
{
    // Same property for the parallel kernel: replaying one fuzz
    // composition twice gives the same digest, and it matches tick.
    using namespace verify;
    RandomSocBuilder builder(0xBEE7);
    FuzzCase c = builder.sample();
    RandomTrafficGen traffic(0xBEE7 ^ 0xFF);
    traffic.generate(c, 5);

    FuzzOptions opt;
    opt.kernel = SimKernel::Parallel;
    const FuzzResult a = runFuzzCase(c, opt);
    const FuzzResult b = runFuzzCase(c, opt);
    EXPECT_EQ(a.kind, FailKind::None) << a.message;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.statsDigest, b.statsDigest);

    FuzzOptions tick_opt;
    const FuzzResult t = runFuzzCase(c, tick_opt);
    EXPECT_EQ(t.cycles, a.cycles);
    EXPECT_EQ(t.statsDigest, a.statsDigest);
}

} // namespace
} // namespace beethoven
