/**
 * @file
 * Functional and ordering tests for the memcpy kernels (Beethoven core
 * plus the raw-AXI HLS/HDL baseline engines) and the AXI protocol
 * checker run over the recorded controller timeline.
 */

#include <gtest/gtest.h>

#include "accel/memcpy_core.h"
#include "baselines/raw_memcpy.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"
#include "soc_check.h"

namespace beethoven
{
namespace
{

struct RawHarness
{
    Simulator sim;
    FunctionalMemory mem;
    DramController ctrl;
    RawAxiMemcpy engine;

    explicit RawHarness(const RawAxiMemcpy::Params &params)
        : ctrl(sim, "ddr", makeCtrlConfig(), mem),
          engine(sim, "memcpy", params, ctrl)
    {}

    static DramController::Config
    makeCtrlConfig()
    {
        DramController::Config cfg;
        cfg.axi.dataBytes = 64;
        return cfg;
    }

    Cycle
    runCopy(Addr src, Addr dst, u64 len)
    {
        engine.start(src, dst, len);
        const Cycle start = sim.cycle();
        const bool ok = sim.runUntil([&] { return engine.done(); },
                                     10'000'000ULL);
        EXPECT_TRUE(ok) << "copy did not complete";
        return sim.cycle() - start;
    }
};

void
fillPattern(FunctionalMemory &mem, Addr base, u64 len, u64 seed)
{
    std::vector<u8> data(len);
    for (u64 i = 0; i < len; ++i)
        data[i] = static_cast<u8>((i * 131 + seed) & 0xFF);
    mem.write(base, len, data.data());
}

bool
checkPattern(FunctionalMemory &mem, Addr base, u64 len, u64 seed)
{
    std::vector<u8> data(len);
    mem.read(base, len, data.data());
    for (u64 i = 0; i < len; ++i) {
        if (data[i] != static_cast<u8>((i * 131 + seed) & 0xFF))
            return false;
    }
    return true;
}

RawAxiMemcpy::Params
pureHdlParams()
{
    RawAxiMemcpy::Params p;
    p.burstBeats = 64;
    p.maxInflightReads = 1;
    p.maxInflightWrites = 1;
    p.distinctIds = false;
    return p;
}

RawAxiMemcpy::Params
hlsParams()
{
    RawAxiMemcpy::Params p;
    p.burstBeats = 16; // the compiler only produced 16-beat bursts
    p.maxInflightReads = 4;
    p.maxInflightWrites = 4;
    p.distinctIds = false; // all transactions share one AXI ID
    return p;
}

RawAxiMemcpy::Params
tlpParams()
{
    RawAxiMemcpy::Params p;
    p.burstBeats = 16;
    p.maxInflightReads = 4;
    p.maxInflightWrites = 4;
    p.distinctIds = true;
    return p;
}

TEST(RawMemcpy, PureHdlFunctional)
{
    RawHarness h(pureHdlParams());
    fillPattern(h.mem, 0x10000, 16384, 5);
    h.runCopy(0x10000, 0x40000, 16384);
    EXPECT_TRUE(checkPattern(h.mem, 0x40000, 16384, 5));
}

TEST(RawMemcpy, HlsFunctional)
{
    RawHarness h(hlsParams());
    fillPattern(h.mem, 0x10000, 16384, 9);
    h.runCopy(0x10000, 0x40000, 16384);
    EXPECT_TRUE(checkPattern(h.mem, 0x40000, 16384, 9));
}

TEST(RawMemcpy, TlpFunctional)
{
    RawHarness h(tlpParams());
    fillPattern(h.mem, 0x10000, 16384, 13);
    h.runCopy(0x10000, 0x40000, 16384);
    EXPECT_TRUE(checkPattern(h.mem, 0x40000, 16384, 13));
}

TEST(RawMemcpy, TimelineIsAxiLegal)
{
    for (auto params : {pureHdlParams(), hlsParams(), tlpParams()}) {
        RawHarness h(params);
        h.ctrl.timeline().setEnabled(true);
        fillPattern(h.mem, 0x10000, 8192, 3);
        h.runCopy(0x10000, 0x40000, 8192);
        const std::string err =
            checkAxiProtocol(h.ctrl.timeline().events());
        EXPECT_EQ(err, "") << "protocol violation";
    }
}

TEST(RawMemcpy, TlpBeatsSameIdUnderLoad)
{
    // The Fig. 4 ordering claim: with equal burst sizes and inflight
    // depth, distinct AXI IDs must not be slower than a single ID.
    const u64 len = 256 * 1024;
    RawHarness hls(hlsParams());
    fillPattern(hls.mem, 0x10000, len, 1);
    const Cycle hls_cycles = hls.runCopy(0x10000, 0x200000, len);

    RawHarness tlp(tlpParams());
    fillPattern(tlp.mem, 0x10000, len, 1);
    const Cycle tlp_cycles = tlp.runCopy(0x10000, 0x200000, len);

    EXPECT_LT(tlp_cycles, hls_cycles);
}

TEST(RawMemcpy, LongBurstsBeatShortSingleId)
{
    const u64 len = 256 * 1024;
    RawHarness hdl(pureHdlParams());
    fillPattern(hdl.mem, 0x10000, len, 1);
    const Cycle hdl_cycles = hdl.runCopy(0x10000, 0x200000, len);

    RawHarness hls(hlsParams());
    fillPattern(hls.mem, 0x10000, len, 1);
    const Cycle hls_cycles = hls.runCopy(0x10000, 0x200000, len);

    EXPECT_LT(hdl_cycles, hls_cycles);
}

TEST(BeethovenMemcpy, EndToEnd)
{
    AwsF1Platform platform;
    MemcpyCore::Variant variant;
    AcceleratorConfig cfg(MemcpyCore::systemConfig(1, variant));
    AcceleratorSoc soc(std::move(cfg), platform);
    ScopedSocCheck check(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const u64 len = 32 * 1024;
    remote_ptr src = handle.malloc(len);
    remote_ptr dst = handle.malloc(len);
    for (u64 i = 0; i < len; ++i)
        src.getHostAddr()[i] = static_cast<u8>(i * 17);
    handle.copy_to_fpga(src);
    handle
        .invoke("MemcpySystem", "do_memcpy", 0,
                {src.getFpgaAddr(), dst.getFpgaAddr(), len})
        .get();
    handle.copy_from_fpga(dst);
    for (u64 i = 0; i < len; ++i)
        ASSERT_EQ(dst.getHostAddr()[i], static_cast<u8>(i * 17));
    check.finish();
}

TEST(BeethovenMemcpy, NoTlpVariantWorks)
{
    AwsF1Platform platform;
    MemcpyCore::Variant variant;
    variant.useTlp = false;
    variant.burstBeats = 64;
    AcceleratorConfig cfg(MemcpyCore::systemConfig(1, variant));
    AcceleratorSoc soc(std::move(cfg), platform);
    ScopedSocCheck check(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const u64 len = 8192;
    remote_ptr src = handle.malloc(len);
    remote_ptr dst = handle.malloc(len);
    for (u64 i = 0; i < len; ++i)
        src.getHostAddr()[i] = static_cast<u8>(255 - (i & 0xFF));
    handle.copy_to_fpga(src);
    handle
        .invoke("MemcpySystem", "do_memcpy", 0,
                {src.getFpgaAddr(), dst.getFpgaAddr(), len})
        .get();
    handle.copy_from_fpga(dst);
    for (u64 i = 0; i < len; ++i)
        ASSERT_EQ(dst.getHostAddr()[i], static_cast<u8>(255 - (i & 0xFF)));
    check.finish();
}

} // namespace
} // namespace beethoven
