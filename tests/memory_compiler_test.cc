/**
 * @file
 * Tests for the memory compiler: cell selection, cascade/banking
 * geometry, port replication, resource accounting, and error handling.
 */

#include <gtest/gtest.h>

#include "base/log.h"
#include "mem/memory_compiler.h"

namespace beethoven
{
namespace
{

TEST(MemoryCompiler, A3ScratchpadMapsTo7Point5Bram)
{
    // The Table II signature: a 512-bit x 320 scratchpad maps to 15
    // half BRAM36s (7.5 blocks) using the 36x512 BRAM18 shape.
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    const auto m =
        compileMemory(lib, MemoryCellKind::Bram, 512, 320, 1);
    EXPECT_DOUBLE_EQ(m.resources.bram, 7.5);
    EXPECT_EQ(m.cellsDeep, 1u);
}

TEST(MemoryCompiler, A3ScratchpadMapsTo8Uram)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    const auto m =
        compileMemory(lib, MemoryCellKind::Uram, 512, 320, 1);
    EXPECT_DOUBLE_EQ(m.resources.uram, 8.0);
    EXPECT_EQ(m.cellsWide, 8u);
    EXPECT_EQ(m.cellsDeep, 1u);
}

TEST(MemoryCompiler, DeepMemoriesBank)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    // 32 bits x 65536 rows: must cascade in depth.
    const auto m =
        compileMemory(lib, MemoryCellKind::Uram, 32, 65536, 1);
    EXPECT_GE(m.cellsDeep, 16u);
    EXPECT_GT(m.resources.lut, 0.0) << "banking needs output muxes";
}

TEST(MemoryCompiler, NarrowDeepPrefersNarrowShapes)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    const auto m =
        compileMemory(lib, MemoryCellKind::Bram, 1, 32768, 1);
    EXPECT_DOUBLE_EQ(m.resources.bram, 1.0)
        << "a 1x32768 memory fits one BRAM36 in 1-bit mode";
}

TEST(MemoryCompiler, PortReplication)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    const auto one =
        compileMemory(lib, MemoryCellKind::Bram, 72, 512, 2);
    const auto four =
        compileMemory(lib, MemoryCellKind::Bram, 72, 512, 4);
    EXPECT_EQ(one.replicas, 1u) << "BRAM is natively dual-ported";
    EXPECT_EQ(four.replicas, 2u);
    EXPECT_DOUBLE_EQ(four.resources.bram, 2 * one.resources.bram);
}

TEST(MemoryCompiler, AsicUsesSramMacrosAndArea)
{
    const auto lib = MemoryCellLibrary::asap7();
    const auto m =
        compileMemory(lib, MemoryCellKind::AsicSram, 256, 1024, 1);
    EXPECT_GT(m.resources.sramMacros, 0.0);
    EXPECT_GT(m.resources.areaUm2, 0.0);
    EXPECT_DOUBLE_EQ(m.resources.bram, 0.0);
    // ASIC macros are single-ported: two read ports replicate.
    const auto two =
        compileMemory(lib, MemoryCellKind::AsicSram, 256, 1024, 2);
    EXPECT_EQ(two.replicas, 2u);
}

TEST(MemoryCompiler, CapacityCoversRequest)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    for (unsigned width : {1u, 9u, 30u, 72u, 100u, 512u}) {
        for (unsigned depth : {1u, 100u, 511u, 512u, 5000u}) {
            const auto m = compileMemory(lib, MemoryCellKind::Bram,
                                         width, depth, 1);
            const u64 capacity = u64(m.cell.widthBits) * m.cell.depth *
                                 m.cellsWide * m.cellsDeep;
            ASSERT_GE(capacity, u64(width) * depth)
                << width << "x" << depth;
        }
    }
}

TEST(MemoryCompiler, RejectsDegenerateRequests)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    EXPECT_THROW(compileMemory(lib, MemoryCellKind::Bram, 0, 100),
                 ConfigError);
    EXPECT_THROW(compileMemory(lib, MemoryCellKind::Bram, 32, 0),
                 ConfigError);
}

TEST(MemoryCompiler, RejectsMissingCellFamily)
{
    MemoryCellLibrary empty;
    EXPECT_THROW(compileMemory(empty, MemoryCellKind::Bram, 32, 100),
                 ConfigError);
    const auto asic = MemoryCellLibrary::asap7();
    EXPECT_THROW(compileMemory(asic, MemoryCellKind::Uram, 32, 100),
                 ConfigError);
}

TEST(MemoryCellLibrary, ShapeFiltering)
{
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    EXPECT_FALSE(lib.shapesOf(MemoryCellKind::Bram).empty());
    EXPECT_EQ(lib.shapesOf(MemoryCellKind::Uram).size(), 1u);
    EXPECT_TRUE(lib.shapesOf(MemoryCellKind::AsicSram).empty());
}

} // namespace
} // namespace beethoven
