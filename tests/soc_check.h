/**
 * @file
 * Shared end-to-end checking harness for tests that elaborate a full
 * AcceleratorSoc: arms the live SocInvariants observers and AXI
 * timeline recording for the duration of the test, and finish()
 * replays the recorded timeline through the post-hoc checkAxiProtocol
 * in addition to the final quiescence check. Live and post-hoc
 * checkers are independent implementations, so each cross-checks the
 * other.
 */

#ifndef BEETHOVEN_TESTS_SOC_CHECK_H
#define BEETHOVEN_TESTS_SOC_CHECK_H

#include <gtest/gtest.h>

#include "axi/timeline.h"
#include "core/soc.h"
#include "verify/invariants.h"

namespace beethoven
{

class ScopedSocCheck
{
  public:
    explicit ScopedSocCheck(AcceleratorSoc &soc) : _soc(soc), _inv(soc)
    {
        _soc.dram().timeline().setEnabled(true);
    }

    /**
     * Call once all responses have been collected. Any invariant
     * violation during the run has already thrown; this adds the
     * post-hoc timeline replay and end-state quiescence.
     */
    void
    finish()
    {
        EXPECT_EQ("", checkAxiProtocol(_soc.dram().timeline().events()))
            << "post-hoc AXI protocol replay failed";
        _inv.checkFinal();
    }

    const SocInvariants &invariants() const { return _inv; }

  private:
    AcceleratorSoc &_soc;
    SocInvariants _inv;
};

} // namespace beethoven

#endif // BEETHOVEN_TESTS_SOC_CHECK_H
