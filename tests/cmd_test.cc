/**
 * @file
 * Tests for the command subsystem: RoCC field packing, CommandSpec
 * payload round-trips (including multi-beat commands), the core-side
 * assembler, and the MMIO front-end register protocol.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "cmd/command_spec.h"
#include "cmd/mmio.h"

namespace beethoven
{
namespace
{

TEST(RoccCommand, FieldRoundTrips)
{
    RoccCommand cmd;
    cmd.setOpcode(RoccCommand::customOpcode);
    cmd.setRd(17);
    cmd.setXd(true);
    cmd.setSystemId(9);
    cmd.setCommandId(5);
    cmd.setCoreId(777);
    EXPECT_EQ(cmd.opcode(), RoccCommand::customOpcode);
    EXPECT_EQ(cmd.rd(), 17u);
    EXPECT_TRUE(cmd.xd());
    EXPECT_EQ(cmd.systemId(), 9u);
    EXPECT_EQ(cmd.commandId(), 5u);
    EXPECT_EQ(cmd.coreId(), 777u);
}

TEST(RoccCommand, FieldsDoNotInterfere)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        RoccCommand cmd;
        const u32 rd = static_cast<u32>(rng.nextBounded(32));
        const u32 sys = static_cast<u32>(
            rng.nextBounded(RoccCommand::maxSystems));
        const u32 cid = static_cast<u32>(
            rng.nextBounded(RoccCommand::maxCommands));
        const u32 core = static_cast<u32>(
            rng.nextBounded(RoccCommand::maxCores));
        cmd.setOpcode(RoccCommand::customOpcode);
        cmd.setRd(rd);
        cmd.setSystemId(sys);
        cmd.setCommandId(cid);
        cmd.setCoreId(core);
        cmd.setXd(core % 2 == 0);
        ASSERT_EQ(cmd.rd(), rd);
        ASSERT_EQ(cmd.systemId(), sys);
        ASSERT_EQ(cmd.commandId(), cid);
        ASSERT_EQ(cmd.coreId(), core);
        ASSERT_EQ(cmd.xd(), core % 2 == 0);
    }
}

TEST(CommandSpec, SingleBeatForSmallPayloads)
{
    CommandSpec spec("small",
                     {CommandField::uint("a", 32),
                      CommandField::uint("b", 20)});
    EXPECT_EQ(spec.payloadBits(), 52u);
    EXPECT_EQ(spec.numBeats(), 1u);
}

TEST(CommandSpec, MultiBeatForLargePayloads)
{
    // 3 x 64 = 192 bits > 128: two beats.
    CommandSpec spec("large",
                     {CommandField::uint("a", 64),
                      CommandField::uint("b", 64),
                      CommandField::uint("c", 64)});
    EXPECT_EQ(spec.numBeats(), 2u);
    // Only the final beat carries xd.
    const auto beats = spec.pack(1, 2, 3, 4, {1, 2, 3});
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_FALSE(beats[0].xd());
    EXPECT_TRUE(beats[1].xd());
    // Routing is stamped on every beat.
    for (const auto &b : beats) {
        EXPECT_EQ(b.systemId(), 1u);
        EXPECT_EQ(b.coreId(), 2u);
        EXPECT_EQ(b.commandId(), 3u);
        EXPECT_EQ(b.rd(), 4u);
    }
}

TEST(CommandSpec, EmptyPayloadStillOneBeat)
{
    CommandSpec spec("empty", {});
    EXPECT_EQ(spec.numBeats(), 1u);
    const auto beats = spec.pack(0, 0, 0, 0, {});
    ASSERT_EQ(beats.size(), 1u);
    EXPECT_TRUE(beats[0].xd());
}

TEST(CommandSpec, PackUnpackRoundTrip)
{
    Rng rng(21);
    for (int iter = 0; iter < 100; ++iter) {
        // Random field layout up to 4 beats.
        std::vector<CommandField> fields;
        unsigned total = 0;
        while (total < 300 && fields.size() < 12) {
            const unsigned width =
                1 + static_cast<unsigned>(rng.nextBounded(64));
            fields.push_back(CommandField::uint(
                "f" + std::to_string(fields.size()), width));
            total += width;
        }
        CommandSpec spec("fuzz", fields);
        std::vector<u64> values;
        for (const auto &f : fields)
            values.push_back(rng.next() & mask(f.bits));
        const auto beats = spec.pack(3, 7, 1, 9, values);
        ASSERT_EQ(beats.size(), spec.numBeats());
        ASSERT_EQ(spec.unpack(beats), values) << "iteration " << iter;
    }
}

TEST(CommandSpec, RejectsBadConfigs)
{
    EXPECT_THROW(CommandSpec("", {}), ConfigError);
    EXPECT_THROW(
        CommandSpec("x", {CommandField::uint("huge", 65)}),
        ConfigError);
    EXPECT_THROW(
        CommandSpec("x", {CommandField::uint("zero", 0)}),
        ConfigError);
    EXPECT_THROW(CommandSpec("x", {}, /*resp_bits=*/65), ConfigError);
}

TEST(CommandSpec, RejectsBadPackArguments)
{
    CommandSpec spec("s", {CommandField::uint("a", 8)});
    EXPECT_THROW(spec.pack(0, 0, 0, 0, {}), ConfigError);
    EXPECT_THROW(spec.pack(0, 0, 0, 0, {0x100}), ConfigError);
    EXPECT_THROW(spec.pack(99, 0, 0, 0, {1}), ConfigError);
    EXPECT_THROW(spec.pack(0, 0, 99, 0, {1}), ConfigError);
    EXPECT_THROW(spec.pack(0, 9999, 0, 0, {1}), ConfigError);
}

TEST(CommandAssembler, AccumulatesMultiBeatCommands)
{
    CommandSpec spec("big", {CommandField::uint("a", 64),
                             CommandField::uint("b", 64),
                             CommandField::uint("c", 40)});
    CommandAssembler assembler(spec);
    const std::vector<u64> values = {0xAAAAAAAAAAAAAAAAull,
                                     0x5555555555555555ull, 0x123456789ull};
    const auto beats = spec.pack(0, 0, 0, 11, values);
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_FALSE(assembler.feed(beats[0]));
    ASSERT_TRUE(assembler.feed(beats[1]));
    EXPECT_EQ(assembler.args(), values);
    EXPECT_EQ(assembler.rd(), 11u);
    EXPECT_TRUE(assembler.expectsResponse());

    // The assembler resets for the next command.
    const auto again = spec.pack(0, 0, 0, 12, values);
    EXPECT_FALSE(assembler.feed(again[0]));
    EXPECT_TRUE(assembler.feed(again[1]));
    EXPECT_EQ(assembler.rd(), 12u);
}

// --- MMIO front-end ---------------------------------------------------

struct MmioHarness
{
    Simulator sim;
    MmioCommandSystem mmio{sim, "mmio"};
};

TEST(Mmio, CommandSubmissionProtocol)
{
    MmioHarness h;
    EXPECT_EQ(h.mmio.read32(mmio_regs::cmdReady), 1u);

    RoccCommand cmd;
    cmd.setOpcode(RoccCommand::customOpcode);
    cmd.setSystemId(2);
    cmd.setCoreId(5);
    cmd.rs1 = 0x1122334455667788ull;
    cmd.rs2 = 0x99AABBCCDDEEFF00ull;

    h.mmio.write32(mmio_regs::cmdBits, cmd.inst);
    h.mmio.write32(mmio_regs::cmdBits, static_cast<u32>(cmd.rs1));
    h.mmio.write32(mmio_regs::cmdBits,
                   static_cast<u32>(cmd.rs1 >> 32));
    h.mmio.write32(mmio_regs::cmdBits, static_cast<u32>(cmd.rs2));
    h.mmio.write32(mmio_regs::cmdBits,
                   static_cast<u32>(cmd.rs2 >> 32));
    h.mmio.write32(mmio_regs::cmdValid, 1);
    h.sim.run(3);

    ASSERT_TRUE(h.mmio.cmdOut().canPop());
    const RoccCommand out = h.mmio.cmdOut().pop();
    EXPECT_EQ(out.inst, cmd.inst);
    EXPECT_EQ(out.rs1, cmd.rs1);
    EXPECT_EQ(out.rs2, cmd.rs2);
}

TEST(Mmio, IncompleteStageIsDropped)
{
    MmioHarness h;
    h.mmio.write32(mmio_regs::cmdBits, 123);
    h.mmio.write32(mmio_regs::cmdValid, 1); // only 1/5 words staged
    h.sim.run(3);
    EXPECT_FALSE(h.mmio.cmdOut().canPop());
    EXPECT_EQ(h.mmio.read32(mmio_regs::cmdReady), 1u);
}

TEST(Mmio, ResponseDrainProtocol)
{
    MmioHarness h;
    EXPECT_EQ(h.mmio.read32(mmio_regs::respValid), 0u);
    RoccResponse resp;
    resp.systemId = 3;
    resp.coreId = 17;
    resp.rd = 4;
    resp.data = 0xCAFEF00D12345678ull;
    h.mmio.respIn().push(resp);
    h.sim.run(3);

    ASSERT_EQ(h.mmio.read32(mmio_regs::respValid), 1u);
    const u32 lo = h.mmio.read32(mmio_regs::respBits);
    const u32 hi = h.mmio.read32(mmio_regs::respBits);
    const u32 route = h.mmio.read32(mmio_regs::respBits);
    EXPECT_EQ(u64(lo) | (u64(hi) << 32), resp.data);
    EXPECT_EQ(route >> 16, 3u);
    EXPECT_EQ((route >> 5) & 0x3FF, 17u);
    EXPECT_EQ(route & 0x1F, 4u);
    h.mmio.write32(mmio_regs::respReady, 1);
    EXPECT_EQ(h.mmio.read32(mmio_regs::respValid), 0u);
}

TEST(Mmio, BackpressureWhenCommandQueueFull)
{
    MmioHarness h;
    // Fill the command queue without draining it.
    auto submit = [&] {
        for (int w = 0; w < 5; ++w)
            h.mmio.write32(mmio_regs::cmdBits, w);
        h.mmio.write32(mmio_regs::cmdValid, 1);
        h.sim.run(2);
    };
    unsigned accepted = 0;
    while (h.mmio.read32(mmio_regs::cmdReady) == 1 && accepted < 20) {
        submit();
        ++accepted;
    }
    EXPECT_GT(accepted, 0u);
    EXPECT_LT(accepted, 20u) << "CMD_READY never deasserted";
}

} // namespace
} // namespace beethoven
