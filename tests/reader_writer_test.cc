/**
 * @file
 * Tests for the Reader/Writer streaming primitives against a live DRAM
 * controller: data correctness under TLP reordering, width conversion,
 * sub-bus-beat strobes, command sequencing, and parameter sweeps.
 */

#include <gtest/gtest.h>

#include "base/bits.h"
#include "base/rng.h"
#include "dram/controller.h"
#include "mem/reader.h"
#include "mem/writer.h"

namespace beethoven
{
namespace
{

struct StreamHarness
{
    Simulator sim;
    FunctionalMemory mem;
    DramController ctrl;
    std::unique_ptr<Reader> reader;
    std::unique_ptr<Writer> writer;

    explicit StreamHarness(const ReaderParams &rp,
                           const WriterParams &wp)
        : ctrl(sim, "ddr", makeConfig(), mem)
    {
        reader = std::make_unique<Reader>(sim, "reader", rp,
                                          ctrl.config().axi, 0,
                                          &ctrl.arPort(),
                                          &ctrl.rPort());
        writer = std::make_unique<Writer>(sim, "writer", wp,
                                          ctrl.config().axi, 0,
                                          &ctrl.wPort(),
                                          &ctrl.bPort());
    }

    static DramController::Config
    makeConfig()
    {
        DramController::Config cfg;
        cfg.axi.dataBytes = 64;
        return cfg;
    }

    std::vector<u8>
    readStream(Addr addr, u64 len)
    {
        reader->cmdPort().push({addr, len});
        std::vector<u8> out;
        const Cycle start = sim.cycle();
        while (out.size() < len) {
            if (reader->dataPort().canPop()) {
                const StreamWord w = reader->dataPort().pop();
                out.insert(out.end(), w.data.begin(), w.data.end());
            } else {
                sim.step();
                if (sim.cycle() - start > 1000000u) {
                    ADD_FAILURE() << "read stream hung";
                    return out;
                }
            }
        }
        return out;
    }

    void
    writeStream(Addr addr, const std::vector<u8> &bytes,
                unsigned port_bytes)
    {
        writer->cmdPort().push({addr, bytes.size()});
        std::size_t sent = 0;
        const Cycle start = sim.cycle();
        while (!writer->donePort().canPop()) {
            if (sent < bytes.size() &&
                writer->dataPort().canPush()) {
                StreamWord w;
                w.data.assign(bytes.begin() + sent,
                              bytes.begin() + sent + port_bytes);
                writer->dataPort().push(std::move(w));
                sent += port_bytes;
            }
            sim.step();
            if (sim.cycle() - start > 1000000u) {
                ADD_FAILURE() << "write stream hung";
                return;
            }
        }
        writer->donePort().pop();
    }
};

std::vector<u8>
pattern(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<u8> v(len);
    for (auto &b : v)
        b = static_cast<u8>(rng.next());
    return v;
}

/** Parameter sweep: (portBytes, burstBeats, maxInflight, useTlp). */
using StreamParam = std::tuple<unsigned, unsigned, unsigned, bool>;

class ReaderSweep : public ::testing::TestWithParam<StreamParam>
{};

TEST_P(ReaderSweep, StreamsExactBytes)
{
    const auto [port, burst, inflight, tlp] = GetParam();
    ReaderParams rp;
    rp.dataBytes = port;
    rp.burstBeats = burst;
    rp.maxInflight = inflight;
    rp.useTlp = tlp;
    StreamHarness h(rp, WriterParams{});

    const u64 len = 3 * port * 37; // odd multiple of the port width
    const auto data = pattern(len, port * 131 + burst);
    // The stream start must be port-aligned (non-power-of-two ports
    // like 24 B need an explicit multiple).
    const Addr base = roundUp(0x40000, port);
    h.mem.write(base, len, data.data());
    EXPECT_EQ(h.readStream(base, len), data);
}

INSTANTIATE_TEST_SUITE_P(
    Params, ReaderSweep,
    ::testing::Values(StreamParam{4, 16, 4, true},
                      StreamParam{4, 64, 1, false},
                      StreamParam{8, 16, 8, true},
                      StreamParam{64, 64, 4, true},
                      StreamParam{64, 16, 2, false},
                      StreamParam{32, 8, 4, true},
                      StreamParam{1, 16, 4, true},
                      StreamParam{24, 16, 4, true}));

class WriterSweep : public ::testing::TestWithParam<StreamParam>
{};

TEST_P(WriterSweep, LandsExactBytes)
{
    const auto [port, burst, inflight, tlp] = GetParam();
    WriterParams wp;
    wp.dataBytes = port;
    wp.burstBeats = burst;
    wp.maxInflight = inflight;
    wp.useTlp = tlp;
    StreamHarness h(ReaderParams{}, wp);

    const u64 len = u64(port) * 53;
    const auto data = pattern(len, port * 7 + burst);
    const Addr base = roundUp(0x80000, port);
    // Sentinels around the landing zone.
    const auto before = pattern(64, 1), after = pattern(64, 2);
    h.mem.write(base - 64, 64, before.data());
    h.mem.write(base + len, 64, after.data());

    h.writeStream(base, data, port);
    std::vector<u8> out(len), b2(64), a2(64);
    h.mem.read(base, len, out.data());
    h.mem.read(base - 64, 64, b2.data());
    h.mem.read(base + len, 64, a2.data());
    EXPECT_EQ(out, data);
    EXPECT_EQ(b2, before) << "writer clobbered preceding bytes";
    EXPECT_EQ(a2, after) << "writer clobbered following bytes";
}

INSTANTIATE_TEST_SUITE_P(
    Params, WriterSweep,
    ::testing::Values(StreamParam{4, 16, 4, true},
                      StreamParam{4, 64, 1, false},
                      StreamParam{8, 32, 2, true},
                      StreamParam{64, 64, 4, true},
                      StreamParam{32, 16, 4, false},
                      StreamParam{1, 16, 4, true},
                      StreamParam{24, 16, 4, true}));

TEST(Reader, SequentialCommandsDoNotBleed)
{
    StreamHarness h(ReaderParams{}, WriterParams{});
    const auto a = pattern(256, 10), b = pattern(256, 20);
    h.mem.write(0x1000, 256, a.data());
    h.mem.write(0x9000, 256, b.data());
    EXPECT_EQ(h.readStream(0x1000, 256), a);
    EXPECT_EQ(h.readStream(0x9000, 256), b);
}

TEST(Reader, UnalignedStartWithinBusBeat)
{
    // Port-aligned but not bus-beat-aligned: the reader must discard
    // the beat prefix.
    ReaderParams rp;
    rp.dataBytes = 4;
    StreamHarness h(rp, WriterParams{});
    const auto data = pattern(512, 33);
    h.mem.write(0x7000, 512, data.data());
    const auto out = h.readStream(0x7000 + 12, 100);
    EXPECT_EQ(out, std::vector<u8>(data.begin() + 12,
                                   data.begin() + 112));
}

TEST(Writer, UnalignedStartUsesStrobes)
{
    WriterParams wp;
    wp.dataBytes = 4;
    StreamHarness h(ReaderParams{}, wp);
    const auto original = pattern(128, 44);
    h.mem.write(0x3000, 128, original.data());
    const auto data = pattern(40, 55);
    h.writeStream(0x3000 + 20, data, 4);
    std::vector<u8> out(128);
    h.mem.read(0x3000, 128, out.data());
    for (unsigned i = 0; i < 128; ++i) {
        const u8 expected = (i >= 20 && i < 60) ? data[i - 20]
                                                : original[i];
        ASSERT_EQ(out[i], expected) << "byte " << i;
    }
}

TEST(Reader, MisalignedCommandIsFatal)
{
    ReaderParams rp;
    rp.dataBytes = 8;
    StreamHarness h(rp, WriterParams{});
    h.reader->cmdPort().push({3, 64}); // addr % 8 != 0
    EXPECT_THROW(h.sim.run(4), ConfigError);
}

TEST(Writer, MisalignedLengthIsFatal)
{
    WriterParams wp;
    wp.dataBytes = 8;
    StreamHarness h(ReaderParams{}, wp);
    h.writer->cmdPort().push({0, 12}); // len % 8 != 0
    EXPECT_THROW(h.sim.run(4), ConfigError);
}

TEST(Writer, ZeroLengthCompletesWithDoneToken)
{
    StreamHarness h(ReaderParams{}, WriterParams{});
    h.writer->cmdPort().push({0x5000, 0});
    const bool done = h.sim.runUntil(
        [&] { return h.writer->donePort().canPop(); }, 1000);
    EXPECT_TRUE(done);
}

TEST(Reader, IdleReflectsActivity)
{
    StreamHarness h(ReaderParams{}, WriterParams{});
    EXPECT_TRUE(h.reader->idle());
    h.mem.writeValue<u64>(0x100, 1);
    h.reader->cmdPort().push({0x100, 64});
    h.sim.step();
    EXPECT_FALSE(h.reader->idle());
}

TEST(Reader, TlpUsesDistinctIdsNoTlpUsesOne)
{
    Simulator sim;
    TimedQueue<ReadRequest> ar(sim, 2);
    TimedQueue<ReadBeat> r(sim, 2);
    ReaderParams tlp;
    tlp.useTlp = true;
    tlp.maxInflight = 4;
    Reader with_tlp(sim, "tlp", tlp, AxiConfig{}, 0, &ar, &r);
    EXPECT_EQ(with_tlp.numIds(), 4u);
    ReaderParams no_tlp = tlp;
    no_tlp.useTlp = false;
    Reader without(sim, "no_tlp", no_tlp, AxiConfig{}, 8, &ar, &r);
    EXPECT_EQ(without.numIds(), 1u);
}

} // namespace
} // namespace beethoven
