/**
 * @file
 * Tests for the DRAM controller: address mapping, protocol legality
 * under random traffic, same-ID ordering, row-hit timing benefits,
 * TLP bandwidth behaviour and write-data integrity.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/rng.h"
#include "dram/controller.h"

namespace beethoven
{
namespace
{

TEST(DramMapping, RotatesBanksAcrossBeats)
{
    DramGeometry g;
    std::set<unsigned> banks;
    for (unsigned beat = 0; beat < g.numBanks(); ++beat)
        banks.insert(mapAddress(g, beat * g.interleaveBytes).bank);
    EXPECT_EQ(banks.size(), g.numBanks())
        << "consecutive beats must hit distinct banks";
}

TEST(DramMapping, RowCoversContiguousSpan)
{
    DramGeometry g;
    const auto first = mapAddress(g, 0);
    // Same bank, next column: one full rotation later.
    const auto next_col =
        mapAddress(g, u64(g.numBanks()) * g.interleaveBytes);
    EXPECT_EQ(next_col.bank, first.bank);
    EXPECT_EQ(next_col.row, first.row);
    EXPECT_EQ(next_col.column, first.column + 1);
    // Past the row: row increments.
    const u64 row_span = u64(g.numBanks()) * g.rowBytesPerBank;
    const auto next_row = mapAddress(g, row_span);
    EXPECT_EQ(next_row.bank, first.bank);
    EXPECT_EQ(next_row.row, first.row + 1);
}

struct CtrlHarness
{
    Simulator sim;
    FunctionalMemory mem;
    DramController ctrl;

    explicit CtrlHarness(unsigned data_bytes = 64)
        : ctrl(sim, "ddr", makeConfig(data_bytes), mem)
    {
        ctrl.timeline().setEnabled(true);
    }

    static DramController::Config
    makeConfig(unsigned data_bytes)
    {
        DramController::Config cfg;
        cfg.axi.dataBytes = data_bytes;
        return cfg;
    }

    /** Issue a read and wait for all beats; returns (latency, data). */
    std::pair<Cycle, std::vector<u8>>
    blockingRead(u32 id, Addr addr, u32 beats)
    {
        ReadRequest req{id, addr, beats, nextGlobalTag()};
        while (!ctrl.arPort().canPush())
            sim.step();
        ctrl.arPort().push(req);
        const Cycle start = sim.cycle();
        std::vector<u8> data;
        u32 got = 0;
        while (got < beats) {
            if (ctrl.rPort().canPop()) {
                ReadBeat b = ctrl.rPort().pop();
                EXPECT_EQ(b.tag, req.tag);
                data.insert(data.end(), b.data.begin(), b.data.end());
                ++got;
                EXPECT_EQ(b.last, got == beats);
            } else {
                sim.step();
                if (sim.cycle() - start > 100000u) {
                    ADD_FAILURE() << "read hung";
                    return {0, {}};
                }
            }
        }
        return {sim.cycle() - start, data};
    }

    /** Issue a full write burst and wait for B. */
    void
    blockingWrite(u32 id, Addr addr, const std::vector<u8> &bytes)
    {
        const unsigned bus = ctrl.config().axi.dataBytes;
        const u32 beats = static_cast<u32>(bytes.size() / bus);
        const u64 tag = nextGlobalTag();
        for (u32 b = 0; b < beats; ++b) {
            WriteFlit flit;
            if (b == 0) {
                flit.hasHeader = true;
                flit.header = {id, addr, beats, tag};
            }
            flit.beat.data.assign(bytes.begin() + b * bus,
                                  bytes.begin() + (b + 1) * bus);
            flit.beat.last = b + 1 == beats;
            while (!ctrl.wPort().canPush())
                sim.step();
            ctrl.wPort().push(std::move(flit));
            sim.step();
        }
        const Cycle start = sim.cycle();
        while (true) {
            if (ctrl.bPort().canPop()) {
                EXPECT_EQ(ctrl.bPort().pop().tag, tag);
                return;
            }
            sim.step();
            ASSERT_LT(sim.cycle() - start, 100000u) << "write hung";
        }
    }
};

TEST(DramController, ReadReturnsWrittenData)
{
    CtrlHarness h;
    std::vector<u8> bytes(4096);
    Rng rng(3);
    for (auto &b : bytes)
        b = static_cast<u8>(rng.next());
    h.mem.write(0x10000, bytes.size(), bytes.data());
    auto [latency, data] = h.blockingRead(0, 0x10000, 64);
    EXPECT_EQ(data, bytes);
}

TEST(DramController, WriteLandsInMemoryExactly)
{
    CtrlHarness h;
    std::vector<u8> bytes(1024);
    Rng rng(4);
    for (auto &b : bytes)
        b = static_cast<u8>(rng.next());
    // Surround with sentinels to catch overwrites.
    std::vector<u8> sentinel(64, 0x5A);
    h.mem.write(0x20000 - 64, 64, sentinel.data());
    h.mem.write(0x20000 + 1024, 64, sentinel.data());

    h.blockingWrite(1, 0x20000, bytes);
    std::vector<u8> out(1024);
    h.mem.read(0x20000, 1024, out.data());
    EXPECT_EQ(out, bytes);
    std::vector<u8> before(64), after(64);
    h.mem.read(0x20000 - 64, 64, before.data());
    h.mem.read(0x20000 + 1024, 64, after.data());
    EXPECT_EQ(before, sentinel);
    EXPECT_EQ(after, sentinel);
}

TEST(DramController, RowHitFasterThanRowMiss)
{
    CtrlHarness h;
    const DramGeometry g = h.ctrl.config().geometry;
    // Warm a row. Use distinct AXI IDs and idle gaps so the same-ID
    // reorder-slot recycle does not contaminate the comparison.
    h.blockingRead(0, 0, 1);
    h.sim.run(64);
    const auto [hit_latency, d1] = h.blockingRead(1, 0, 1);
    // Different row in the same bank.
    h.sim.run(64);
    const Addr other_row = u64(g.numBanks()) * g.rowBytesPerBank * 7;
    ASSERT_EQ(mapAddress(g, other_row).bank, mapAddress(g, 0ull).bank);
    const auto [miss_latency, d2] = h.blockingRead(2, other_row, 1);
    EXPECT_LT(hit_latency, miss_latency);
}

TEST(DramController, SameIdReadsReturnInRequestOrder)
{
    CtrlHarness h;
    // Queue several reads on one ID to scattered rows; responses must
    // come back in request order regardless of row state.
    std::vector<u64> tags;
    Rng rng(8);
    for (int i = 0; i < 6; ++i) {
        ReadRequest req;
        req.id = 3;
        req.addr = (rng.nextBounded(64)) * 1_MiB;
        req.beats = 4;
        req.tag = nextGlobalTag();
        while (!h.ctrl.arPort().canPush())
            h.sim.step();
        h.ctrl.arPort().push(req);
        tags.push_back(req.tag);
        h.sim.step();
    }
    std::vector<u64> seen;
    const Cycle start = h.sim.cycle();
    while (seen.size() < tags.size()) {
        if (h.ctrl.rPort().canPop()) {
            ReadBeat b = h.ctrl.rPort().pop();
            if (b.last)
                seen.push_back(b.tag);
        } else {
            h.sim.step();
        }
        ASSERT_LT(h.sim.cycle() - start, 100000u);
    }
    EXPECT_EQ(seen, tags);
}

TEST(DramController, RandomTrafficIsAxiLegal)
{
    CtrlHarness h;
    Rng rng(123);
    for (int i = 0; i < 40; ++i) {
        if (rng.nextBounded(2) == 0) {
            h.blockingRead(static_cast<u32>(rng.nextBounded(8)),
                           rng.nextBounded(256) * 4096,
                           1 + static_cast<u32>(rng.nextBounded(16)));
        } else {
            std::vector<u8> data(
                64 * (1 + rng.nextBounded(8)));
            for (auto &b : data)
                b = static_cast<u8>(rng.next());
            h.blockingWrite(static_cast<u32>(rng.nextBounded(8)),
                            rng.nextBounded(256) * 4096, data);
        }
    }
    EXPECT_EQ(checkAxiProtocol(h.ctrl.timeline().events()), "");
}

TEST(DramController, DistinctIdsOverlapSameIdsSerialize)
{
    // Aggregate bandwidth with 4 outstanding reads: distinct IDs must
    // beat one shared ID (the paper's central TLP claim).
    auto run = [](bool distinct) {
        CtrlHarness h;
        h.ctrl.timeline().setEnabled(false);
        const unsigned txns = 64, beats = 16;
        unsigned issued = 0, retired = 0;
        const Cycle start = h.sim.cycle();
        std::map<u64, u32> outstanding;
        while (retired < txns) {
            if (issued < txns && outstanding.size() < 4 &&
                h.ctrl.arPort().canPush()) {
                ReadRequest req;
                req.id = distinct ? (issued % 4) : 0;
                req.addr = Addr(issued) * 1024;
                req.beats = beats;
                req.tag = nextGlobalTag();
                h.ctrl.arPort().push(req);
                outstanding[req.tag] = 0;
                ++issued;
            }
            if (h.ctrl.rPort().canPop()) {
                ReadBeat b = h.ctrl.rPort().pop();
                if (b.last) {
                    outstanding.erase(b.tag);
                    ++retired;
                }
            }
            h.sim.step();
        }
        return h.sim.cycle() - start;
    };
    const Cycle distinct = run(true);
    const Cycle same = run(false);
    EXPECT_LT(distinct * 5, same * 4)
        << "TLP should be >25% faster (distinct=" << distinct
        << " same=" << same << ")";
}

TEST(DramController, RejectsOversizedBursts)
{
    CtrlHarness h;
    ReadRequest req{0, 0, 65, nextGlobalTag()}; // max is 64
    h.ctrl.arPort().push(req);
    EXPECT_DEATH({ h.sim.run(4); }, "illegal read burst");
}

} // namespace
} // namespace beethoven
