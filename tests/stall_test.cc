/**
 * @file
 * Stall-attribution tests: the conservation invariant (every module's
 * class counts sum to the elapsed cycle count), command-rate shifts in
 * attribution, and the bottleneck analyzer's ranking on a saturating
 * memcpy run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/memcpy_core.h"
#include "base/json.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"
#include "trace/bottleneck.h"
#include "trace/stall.h"

namespace beethoven
{
namespace
{

struct MemcpyHarness
{
    AwsF1Platform platform;
    AcceleratorSoc soc;
    RuntimeServer server;
    fpga_handle_t handle;

    MemcpyHarness()
        : soc(AcceleratorConfig(
                  MemcpyCore::systemConfig(1, MemcpyCore::Variant{})),
              platform),
          server(soc),
          handle(server)
    {}

    void
    copy(u64 len)
    {
        remote_ptr src = handle.malloc(len);
        remote_ptr dst = handle.malloc(len);
        for (u64 i = 0; i < len; ++i)
            src.getHostAddr()[i] = static_cast<u8>(i * 31);
        handle.copy_to_fpga(src);
        handle
            .invoke("MemcpySystem", "do_memcpy", 0,
                    {src.getFpgaAddr(), dst.getFpgaAddr(), len})
            .get();
    }
};

/** Recursively verify every "stall" group sums to @p cycles. */
void
checkConservation(const JsonValue &tree, const std::string &path,
                  u64 cycles, int &checked)
{
    const JsonValue *groups = tree.find("groups");
    if (groups == nullptr || !groups->isObject())
        return;
    for (const auto &[name, child] : groups->object) {
        if (name == "stall") {
            const JsonValue *scalars = child.find("scalars");
            ASSERT_NE(scalars, nullptr) << path;
            u64 sum = 0;
            for (std::size_t i = 0; i < kNumStallClasses; ++i) {
                const JsonValue *v = scalars->find(
                    stallClassName(static_cast<StallClass>(i)));
                ASSERT_NE(v, nullptr) << path;
                sum += static_cast<u64>(v->number);
            }
            EXPECT_EQ(sum, cycles) << "conservation violated at " << path;
            ++checked;
            continue;
        }
        checkConservation(child, path + "." + name, cycles, checked);
    }
}

TEST(Stall, ConservationAcrossAllModules)
{
    MemcpyHarness h;
    h.copy(32 * 1024);
    h.soc.sim().publishStallStats();

    std::ostringstream oss;
    h.soc.sim().stats().dumpJson(oss);
    const JsonValue root = parseJson(oss.str());

    const JsonValue *scalars = root.find("scalars");
    ASSERT_NE(scalars, nullptr);
    const JsonValue *cycles = scalars->find("cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_EQ(static_cast<u64>(cycles->number), h.soc.sim().cycle());

    int checked = 0;
    checkConservation(root, "", static_cast<u64>(cycles->number),
                      checked);
    // Core, reader, writer, DRAM, MMIO, and a forest of NoC nodes.
    EXPECT_GE(checked, 10) << "expected many instrumented modules";
}

TEST(Stall, PublishIsIdempotent)
{
    MemcpyHarness h;
    h.copy(4096);
    h.soc.sim().publishStallStats();
    std::ostringstream first;
    h.soc.sim().stats().dumpJson(first);
    h.soc.sim().publishStallStats();
    std::ostringstream second;
    h.soc.sim().stats().dumpJson(second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(Stall, CommandStarvationShiftsToStallCmd)
{
    // Saturating: back-to-back copies. Trickle: long idle gaps between
    // the same copies. The core's stall_cmd share must rise sharply
    // with the gaps.
    auto cmd_share = [](bool trickle) {
        MemcpyHarness h;
        for (int i = 0; i < 3; ++i) {
            // Large enough that kernel time dominates the MMIO
            // dispatch overhead in the saturating case.
            h.copy(256 * 1024);
            if (trickle)
                h.soc.sim().run(50000);
        }
        const StallAccount *core = nullptr;
        for (const StallAccount *a : h.soc.sim().stallAccounts()) {
            if (a->name() == "MemcpySystem.core0")
                core = a;
        }
        EXPECT_NE(core, nullptr);
        return double(core->count(StallClass::StallCmd)) /
               double(h.soc.sim().cycle());
    };
    const double saturating = cmd_share(false);
    const double trickle = cmd_share(true);
    EXPECT_GT(trickle, saturating + 0.3)
        << "saturating=" << saturating << " trickle=" << trickle;
}

TEST(Stall, AnalyzerRanksDramAsTopSinkWhenSaturated)
{
    MemcpyHarness h;
    h.copy(256 * 1024);
    h.soc.sim().publishStallStats();

    std::ostringstream oss;
    oss << "{\"run\":";
    h.soc.sim().stats().dumpJson(oss);
    oss << "}";
    const std::vector<RunStallReport> runs =
        analyzeStallStats(parseJson(oss.str()));
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].label, "run");
    EXPECT_EQ(runs[0].cycles, h.soc.sim().cycle());
    ASSERT_FALSE(runs[0].modules.empty());
    EXPECT_EQ(runs[0].modules.front().module, "ddr")
        << "top sink was " << runs[0].modules.front().module;
    // Every ranked module obeys conservation too.
    for (const StallBreakdown &m : runs[0].modules)
        EXPECT_EQ(m.total(), runs[0].cycles) << m.module;
}

TEST(Stall, AnalyzerToleratesUninstrumentedStats)
{
    const JsonValue root = parseJson(
        "{\"plain\":{\"scalars\":{\"cycles\":100},"
        "\"groups\":{\"m\":{\"scalars\":{\"x\":1}}}}}");
    const std::vector<RunStallReport> runs = analyzeStallStats(root);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].cycles, 100u);
    EXPECT_TRUE(runs[0].modules.empty());
}

} // namespace
} // namespace beethoven
