/**
 * @file
 * Hang-watchdog tests: a genuinely deadlocked design must be caught
 * within the configured bound and the diagnostics must name the stuck
 * module; a disarmed watchdog must let the same deadlock spin freely.
 */

#include <gtest/gtest.h>

#include "base/log.h"
#include "mem/writer.h"
#include "sim/simulator.h"

namespace beethoven
{
namespace
{

/** Drains W flits but never produces B responses: a dead slave. */
class WriteBlackhole : public Module
{
  public:
    WriteBlackhole(Simulator &sim, TimedQueue<WriteFlit> *w)
        : Module(sim, "blackhole"), _w(w)
    {}

    void
    tick() override
    {
        if (_w->canPop())
            _w->pop();
    }

  private:
    TimedQueue<WriteFlit> *_w;
};

/** A Writer wired to a slave that accepts data but never acks it. */
struct DeadlockHarness
{
    Simulator sim;
    TimedQueue<WriteFlit> wQ;
    TimedQueue<WriteResponse> bQ;
    WriteBlackhole sink;
    std::unique_ptr<Writer> writer;

    DeadlockHarness() : wQ(sim, 4), bQ(sim, 2), sink(sim, &wQ)
    {
        WriterParams wp;
        wp.dataBytes = 8;
        wp.burstBeats = 1;
        wp.maxInflight = 2;
        AxiConfig bus;
        bus.dataBytes = 8;
        writer = std::make_unique<Writer>(sim, "deadwriter", wp, bus, 0,
                                          &wQ, &bQ);
        writer->cmdPort().push({0, 16});
        writer->dataPort().push(StreamWord::fromUint(0x1111, 8));
        writer->dataPort().push(StreamWord::fromUint(0x2222, 8));
    }
};

TEST(Watchdog, CatchesDeadlockWithinBound)
{
    DeadlockHarness h;
    h.sim.setWatchdog(256);
    EXPECT_THROW(h.sim.run(100000), ConfigError);
    // The writer stages and emits for a handful of cycles, then makes
    // no further progress; the trip point must be close to the limit.
    EXPECT_LT(h.sim.cycle(), 2000u);
    EXPECT_GT(h.sim.cycle(), 256u);
}

TEST(Watchdog, DiagnosticsNameTheStuckModule)
{
    DeadlockHarness h;
    h.sim.setWatchdog(128);
    testing::internal::CaptureStderr();
    EXPECT_THROW(h.sim.run(100000), ConfigError);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("hang diagnostics"), std::string::npos) << err;
    EXPECT_NE(err.find("deadwriter"), std::string::npos) << err;
    // The writer is waiting on B acks that never come.
    EXPECT_NE(err.find("stall_mem"), std::string::npos) << err;
}

TEST(Watchdog, DisarmedByDefault)
{
    DeadlockHarness h;
    EXPECT_NO_THROW(h.sim.run(5000));
    EXPECT_EQ(h.sim.cycle(), 5000u);
}

TEST(Watchdog, QuietSimulationDoesNotTrip)
{
    // An armed watchdog on a design that is merely *idle* (no work at
    // all, not a deadlock) must still trip: no progress is no progress.
    // But re-arming resets the progress baseline.
    Simulator sim;
    TimedQueue<WriteFlit> w_q(sim, 4);
    WriteBlackhole sink(sim, &w_q);
    sim.setWatchdog(64);
    EXPECT_THROW(sim.run(1000), ConfigError);
    const Cycle tripped_at = sim.cycle();
    sim.setWatchdog(64); // reset baseline
    EXPECT_THROW(sim.run(1000), ConfigError);
    EXPECT_GT(sim.cycle(), tripped_at);
}

} // namespace
} // namespace beethoven
