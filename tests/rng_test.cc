/**
 * @file
 * Edge-range unit tests for the SplitMix64 Rng helpers: degenerate
 * bounds, single-element and reversed ranges, the full 64-bit span,
 * inclusivity of both endpoints, and freedom from gross modulo bias.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "base/rng.h"

namespace beethoven
{
namespace
{

constexpr u64 kU64Max = std::numeric_limits<u64>::max();

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, NextBoundedDegenerate)
{
    Rng rng(1);
    // bound 0 and 1 both have a single legal result: 0.
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rng.nextBounded(0), 0u);
        EXPECT_EQ(rng.nextBounded(1), 0u);
    }
}

TEST(Rng, NextBoundedStaysBelowBound)
{
    Rng rng(7);
    for (u64 bound : {u64(2), u64(3), u64(7), u64(100), kU64Max}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound) << "bound " << bound;
    }
}

TEST(Rng, NextRangeSingleElement)
{
    Rng rng(3);
    for (u64 v : {u64(0), u64(5), kU64Max}) {
        EXPECT_EQ(rng.nextRange(v, v), v);
    }
}

TEST(Rng, NextRangeReversedIsEmpty)
{
    Rng rng(3);
    // A reversed (empty) range collapses to lo rather than wrapping.
    EXPECT_EQ(rng.nextRange(7, 3), 7u);
    EXPECT_EQ(rng.nextRange(kU64Max, 0), kU64Max);
}

TEST(Rng, NextRangeInclusiveEndpoints)
{
    Rng rng(11);
    // Two-element range: both endpoints must appear, nothing else.
    std::set<u64> seen;
    for (int i = 0; i < 200; ++i) {
        const u64 v = rng.nextRange(10, 11);
        ASSERT_TRUE(v == 10 || v == 11) << v;
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST(Rng, NextRangeBoundsHonored)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const u64 v = rng.nextRange(100, 107);
        ASSERT_GE(v, 100u);
        ASSERT_LE(v, 107u);
    }
}

TEST(Rng, NextRangeFullWidth)
{
    Rng rng(17);
    // [0, 2^64-1] would compute span == 0; it must not get stuck on a
    // single value (and certainly must not divide by zero).
    std::set<u64> seen;
    for (int i = 0; i < 64; ++i)
        seen.insert(rng.nextRange(0, kU64Max));
    EXPECT_GT(seen.size(), 32u);
}

TEST(Rng, NextRangeHighEdge)
{
    Rng rng(19);
    // Range pinned against the top of the u64 space.
    for (int i = 0; i < 200; ++i) {
        const u64 v = rng.nextRange(kU64Max - 1, kU64Max);
        ASSERT_GE(v, kU64Max - 1);
    }
}

TEST(Rng, NextBoundedNoGrossModuloBias)
{
    // With rejection sampling each residue class of a small bound is
    // equally likely; a plain modulo over a biased generator would
    // already pass this, but a broken rejection loop (e.g. inverted
    // condition) would starve some classes entirely.
    Rng rng(23);
    const u64 bound = 3;
    u64 counts[3] = {0, 0, 0};
    const int draws = 3000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(bound)];
    for (u64 c : counts) {
        EXPECT_GT(c, draws / 3 - 200);
        EXPECT_LT(c, draws / 3 + 200);
    }
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

} // namespace
} // namespace beethoven
