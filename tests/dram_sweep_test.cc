/**
 * @file
 * Parameterized property sweeps over the DRAM controller: data
 * integrity and AXI legality must hold across timing presets,
 * geometries, scheduler windows, and watermark settings.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "dram/controller.h"

namespace beethoven
{
namespace
{

struct SweepParam
{
    const char *name;
    DramController::Config cfg;
};

SweepParam
makeParam(const char *name,
          std::function<void(DramController::Config &)> tweak)
{
    SweepParam p;
    p.name = name;
    p.cfg.axi.dataBytes = 64;
    tweak(p.cfg);
    return p;
}

class DramSweep : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(DramSweep, RandomTrafficIntegrityAndLegality)
{
    Simulator sim;
    FunctionalMemory mem;
    DramController ctrl(sim, "ddr", GetParam().cfg, mem);
    ctrl.timeline().setEnabled(true);
    const unsigned bus = ctrl.config().axi.dataBytes;

    Rng rng(0xBEE7 + bus);
    // Shadow model of expected memory contents.
    FunctionalMemory shadow;

    // Mixed random reads/writes, checked against the shadow.
    for (int iter = 0; iter < 30; ++iter) {
        const Addr addr = rng.nextBounded(64) * 4096;
        const u32 beats = 1 + static_cast<u32>(rng.nextBounded(8));
        const u32 id = static_cast<u32>(rng.nextBounded(4));
        if (rng.nextBounded(2) == 0) {
            // Write a random burst, mirror into the shadow.
            std::vector<u8> data(beats * bus);
            for (auto &b : data)
                b = static_cast<u8>(rng.next());
            shadow.write(addr, data.size(), data.data());
            const u64 tag = nextGlobalTag();
            for (u32 b = 0; b < beats; ++b) {
                WriteFlit flit;
                if (b == 0) {
                    flit.hasHeader = true;
                    flit.header = {id, addr, beats, tag};
                }
                flit.beat.data.assign(data.begin() + b * bus,
                                      data.begin() + (b + 1) * bus);
                flit.beat.last = b + 1 == beats;
                while (!ctrl.wPort().canPush())
                    sim.step();
                ctrl.wPort().push(std::move(flit));
                sim.step();
            }
            const Cycle start = sim.cycle();
            while (!ctrl.bPort().canPop()) {
                sim.step();
                ASSERT_LT(sim.cycle() - start, 200000u);
            }
            ctrl.bPort().pop();
        } else {
            ReadRequest req{id, addr, beats, nextGlobalTag()};
            while (!ctrl.arPort().canPush())
                sim.step();
            ctrl.arPort().push(req);
            std::vector<u8> got;
            const Cycle start = sim.cycle();
            while (got.size() < u64(beats) * bus) {
                if (ctrl.rPort().canPop()) {
                    const ReadBeat beat = ctrl.rPort().pop();
                    got.insert(got.end(), beat.data.begin(),
                               beat.data.end());
                } else {
                    sim.step();
                    ASSERT_LT(sim.cycle() - start, 200000u);
                }
            }
            std::vector<u8> expected(got.size());
            shadow.read(addr, expected.size(), expected.data());
            ASSERT_EQ(got, expected)
                << GetParam().name << " iter " << iter;
        }
    }
    EXPECT_EQ(checkAxiProtocol(ctrl.timeline().events()), "")
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DramSweep,
    ::testing::Values(
        makeParam("default", [](auto &) {}),
        makeParam("lpddr",
                  [](auto &c) {
                      c.timing = DramTiming::lpddr4_embedded();
                  }),
        makeParam("tinyWindow",
                  [](auto &c) { c.schedulerWindow = 1; }),
        makeParam("hugeWindow",
                  [](auto &c) { c.schedulerWindow = 64; }),
        makeParam("eagerWrites",
                  [](auto &c) { c.writeDrainHighWatermark = 1; }),
        makeParam("lazyWrites",
                  [](auto &c) { c.writeDrainHighWatermark = 512; }),
        makeParam("noRecycle",
                  [](auto &c) { c.sameIdRecycleCycles = 0; }),
        makeParam("frequentRefresh",
                  [](auto &c) {
                      c.timing.tREFI = 200;
                      c.timing.tRFC = 50;
                  }),
        makeParam("smallGeometry",
                  [](auto &c) {
                      c.geometry.nBankGroups = 1;
                      c.geometry.banksPerGroup = 2;
                      c.geometry.rowBytesPerBank = 1024;
                  }),
        makeParam("fewOutstanding",
                  [](auto &c) {
                      c.maxOutstandingReads = 2;
                      c.maxOutstandingWrites = 2;
                  })),
    [](const auto &info) { return std::string(info.param.name); });

TEST(DramRefresh, PeriodicRefreshHappens)
{
    Simulator sim;
    FunctionalMemory mem;
    DramController::Config cfg;
    cfg.timing.tREFI = 100;
    cfg.timing.tRFC = 20;
    DramController ctrl(sim, "ddr", cfg, mem);
    sim.run(1000);
    const StatScalar *refreshes =
        sim.stats().findScalar("ddr.refreshes");
    ASSERT_NE(refreshes, nullptr);
    EXPECT_GE(refreshes->value(), 9.0);
    EXPECT_LE(refreshes->value(), 11.0);
}

TEST(DramRefresh, ThroughputTaxMatchesDutyCycle)
{
    // Streaming bandwidth with and without refresh should differ by
    // roughly tRFC/tREFI.
    auto stream_cycles = [](unsigned trefi, unsigned trfc) {
        Simulator sim;
        FunctionalMemory mem;
        DramController::Config cfg;
        cfg.timing.tREFI = trefi;
        cfg.timing.tRFC = trfc;
        DramController ctrl(sim, "ddr", cfg, mem);
        // 256 sequential 16-beat reads on rotating IDs.
        unsigned issued = 0, retired = 0;
        while (retired < 256) {
            if (issued < 256 && ctrl.arPort().canPush()) {
                ReadRequest req;
                req.id = issued % 8;
                req.addr = Addr(issued) * 1024;
                req.beats = 16;
                req.tag = nextGlobalTag();
                ctrl.arPort().push(req);
                ++issued;
            }
            if (ctrl.rPort().canPop()) {
                if (ctrl.rPort().pop().last)
                    ++retired;
            }
            sim.step();
        }
        return sim.cycle();
    };
    const Cycle without = stream_cycles(1000000, 1);
    const Cycle with = stream_cycles(1950, 88);
    const double tax = double(with) / double(without) - 1.0;
    EXPECT_GT(tax, 0.02);
    EXPECT_LT(tax, 0.12);
}

} // namespace
} // namespace beethoven
