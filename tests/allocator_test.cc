/**
 * @file
 * Tests for the device memory allocator: alignment, exhaustion,
 * coalescing, error handling, and a randomized no-overlap property.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/log.h"
#include "base/rng.h"
#include "runtime/allocator.h"

namespace beethoven
{
namespace
{

TEST(Allocator, ReturnsAlignedAddresses)
{
    DeviceAllocator alloc(4096, 1_MiB, 64);
    for (int i = 0; i < 20; ++i) {
        const auto addr = alloc.allocate(1 + i * 13);
        ASSERT_TRUE(addr.has_value());
        EXPECT_EQ(*addr % 64, 0u);
        EXPECT_GE(*addr, 4096u);
    }
}

TEST(Allocator, ZeroByteRequestStillDistinct)
{
    DeviceAllocator alloc(0, 1_MiB);
    const auto a = alloc.allocate(0);
    const auto b = alloc.allocate(0);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
}

TEST(Allocator, ExhaustionReturnsNullopt)
{
    DeviceAllocator alloc(0, 1024, 64);
    EXPECT_TRUE(alloc.allocate(512).has_value());
    EXPECT_TRUE(alloc.allocate(512).has_value());
    EXPECT_FALSE(alloc.allocate(64).has_value());
}

TEST(Allocator, ReleaseMakesSpaceReusable)
{
    DeviceAllocator alloc(0, 1024, 64);
    const auto a = alloc.allocate(1024);
    ASSERT_TRUE(a);
    EXPECT_FALSE(alloc.allocate(64).has_value());
    alloc.release(*a);
    EXPECT_TRUE(alloc.allocate(1024).has_value());
}

TEST(Allocator, CoalescingRestoresSingleFreeBlock)
{
    DeviceAllocator alloc(0, 4096, 64);
    std::vector<Addr> blocks;
    for (int i = 0; i < 8; ++i)
        blocks.push_back(*alloc.allocate(512));
    EXPECT_EQ(alloc.numFreeBlocks(), 0u);
    // Free in a scrambled order; coalescing must merge everything.
    for (int idx : {3, 0, 7, 1, 5, 2, 6, 4})
        alloc.release(blocks[idx]);
    EXPECT_EQ(alloc.numFreeBlocks(), 1u);
    EXPECT_EQ(alloc.bytesAllocated(), 0u);
    EXPECT_TRUE(alloc.allocate(4096).has_value());
}

TEST(Allocator, DoubleFreeIsFatal)
{
    DeviceAllocator alloc(0, 4096);
    const auto a = alloc.allocate(128);
    alloc.release(*a);
    EXPECT_THROW(alloc.release(*a), ConfigError);
}

TEST(Allocator, WildFreeIsFatal)
{
    DeviceAllocator alloc(0, 4096);
    EXPECT_THROW(alloc.release(12345), ConfigError);
}

TEST(Allocator, RejectsBadConstruction)
{
    EXPECT_THROW(DeviceAllocator(0, 1024, 63), ConfigError);
    EXPECT_THROW(DeviceAllocator(32, 1024, 64), ConfigError);
    EXPECT_THROW(DeviceAllocator(0, 0), ConfigError);
}

TEST(Allocator, TracksAllocationSizes)
{
    DeviceAllocator alloc(0, 4096, 64);
    const auto a = alloc.allocate(100);
    EXPECT_EQ(alloc.allocationSize(*a), 128u); // rounded to alignment
    EXPECT_EQ(alloc.allocationSize(*a + 64), 0u);
    EXPECT_EQ(alloc.numAllocations(), 1u);
}

TEST(Allocator, RandomizedNoOverlapProperty)
{
    DeviceAllocator alloc(4096, 8_MiB, 64);
    Rng rng(31);
    std::map<Addr, u64> live; // start -> size
    for (int iter = 0; iter < 3000; ++iter) {
        if (live.empty() || rng.nextBounded(3) != 0) {
            const u64 size = 1 + rng.nextBounded(64_KiB);
            const auto addr = alloc.allocate(size);
            if (!addr)
                continue;
            const u64 actual = alloc.allocationSize(*addr);
            // Check no overlap with any live block.
            auto next = live.lower_bound(*addr);
            if (next != live.end()) {
                ASSERT_LE(*addr + actual, next->first);
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->first + prev->second, *addr);
            }
            live[*addr] = actual;
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            alloc.release(it->first);
            live.erase(it);
        }
    }
    // Cleanup: everything frees and coalesces.
    for (const auto &[addr, size] : live)
        alloc.release(addr);
    EXPECT_EQ(alloc.bytesAllocated(), 0u);
    EXPECT_EQ(alloc.numFreeBlocks(), 1u);
}

} // namespace
} // namespace beethoven
