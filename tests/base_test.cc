/**
 * @file
 * Tests for statistics, RNG determinism, logging behaviour, and type
 * literals.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/log.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/types.h"

namespace beethoven
{
namespace
{

TEST(SizeLiterals, Values)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(2_GiB, 2147483648ull);
}

TEST(Stats, ScalarAccumulates)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s++;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    s.set(1.0);
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(Stats, HistogramBuckets)
{
    StatHistogram h;
    h.configure(4, 10.0);
    for (double v : {1.0, 5.0, 15.0, 25.0, 35.0, 1000.0})
        h.sample(v);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    const auto &b = h.buckets();
    ASSERT_EQ(b.size(), 5u); // 4 + overflow
    EXPECT_EQ(b[0], 2u);     // 1, 5
    EXPECT_EQ(b[1], 1u);     // 15
    EXPECT_EQ(b[2], 1u);     // 25
    EXPECT_EQ(b[3], 1u);     // 35
    EXPECT_EQ(b[4], 1u);     // 1000 overflows
}

TEST(Stats, GroupHierarchyAndLookup)
{
    StatGroup root("soc");
    root.group("dram").scalar("rowHits") += 3;
    root.group("dram").scalar("rowHits") += 2;
    root.group("core0").group("reader").scalar("bytes") += 64;

    const StatScalar *hits = root.findScalar("dram.rowHits");
    ASSERT_NE(hits, nullptr);
    EXPECT_DOUBLE_EQ(hits->value(), 5.0);
    const StatScalar *bytes = root.findScalar("core0.reader.bytes");
    ASSERT_NE(bytes, nullptr);
    EXPECT_DOUBLE_EQ(bytes->value(), 64.0);
    EXPECT_EQ(root.findScalar("nope.nothing"), nullptr);
    EXPECT_EQ(root.findScalar("dram.missing"), nullptr);
}

TEST(Stats, DumpContainsDottedPaths)
{
    StatGroup root("soc");
    root.group("mem").scalar("reads") += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("soc.mem.reads = 7"), std::string::npos);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2u);
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const u64 v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
    EXPECT_EQ(rng.nextBounded(0), 0u);
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RoughlyUniform)
{
    Rng rng(99);
    std::array<unsigned, 8> buckets{};
    for (int i = 0; i < 8000; ++i)
        ++buckets[rng.nextBounded(8)];
    for (unsigned count : buckets) {
        EXPECT_GT(count, 800u);
        EXPECT_LT(count, 1200u);
    }
}

TEST(Log, FatalThrowsConfigError)
{
    EXPECT_THROW(fatal("user misconfigured %s", "something"),
                 ConfigError);
    try {
        fatal("value %d too large", 99);
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("value 99 too large"),
                  std::string::npos);
    }
}

TEST(Log, AssertPassesOnTrue)
{
    beethoven_assert(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

} // namespace
} // namespace beethoven
