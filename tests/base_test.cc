/**
 * @file
 * Tests for statistics, RNG determinism, logging behaviour, and type
 * literals.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/json.h"
#include "base/log.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/types.h"

namespace beethoven
{
namespace
{

TEST(SizeLiterals, Values)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(2_GiB, 2147483648ull);
}

TEST(Stats, ScalarAccumulates)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s++;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    s.set(1.0);
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(Stats, HistogramBuckets)
{
    StatHistogram h;
    h.configure(4, 10.0);
    for (double v : {1.0, 5.0, 15.0, 25.0, 35.0, 1000.0})
        h.sample(v);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    const auto &b = h.buckets();
    ASSERT_EQ(b.size(), 5u); // 4 + overflow
    EXPECT_EQ(b[0], 2u);     // 1, 5
    EXPECT_EQ(b[1], 1u);     // 15
    EXPECT_EQ(b[2], 1u);     // 25
    EXPECT_EQ(b[3], 1u);     // 35
    EXPECT_EQ(b[4], 1u);     // 1000 overflows
}

TEST(Stats, HistogramNegativeSampleKeepsMin)
{
    // Regression: a single negative sample must report its own value
    // as the minimum (and land in the first bucket), not 0.
    StatHistogram h;
    h.configure(4, 10.0);
    h.sample(-3.0);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), -3.0);
    EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(Stats, HistogramEmptyMinMax)
{
    StatHistogram h;
    h.configure(4, 10.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Stats, HistogramPercentileEmptyReturnsZero)
{
    // Regression: percentile() on a histogram with no samples (or one
    // never configured) must return 0, not divide by zero or index an
    // empty bucket vector.
    StatHistogram unconfigured;
    EXPECT_DOUBLE_EQ(unconfigured.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(unconfigured.percentile(99.0), 0.0);

    StatHistogram empty;
    empty.configure(8, 4.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);
}

TEST(Stats, HistogramPercentiles)
{
    StatHistogram h;
    h.configure(10, 10.0);
    // 100 samples, one per unit, 0.5 .. 99.5.
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    // Bucketed percentiles resolve to bucket upper edges...
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
    // ...clamped to the observed maximum in the last occupied bucket.
    EXPECT_DOUBLE_EQ(h.percentile(95), 99.5);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.5);
    EXPECT_DOUBLE_EQ(h.percentile(100), 99.5);
}

TEST(Stats, HistogramPercentileOverflowBucket)
{
    StatHistogram h;
    h.configure(2, 10.0);
    h.sample(5.0);
    h.sample(500.0);
    // The overflow bucket reports the observed max.
    EXPECT_DOUBLE_EQ(h.percentile(99), 500.0);
}

TEST(Stats, FindHistogramByDottedPath)
{
    StatGroup root("soc");
    StatHistogram &h = root.group("ddr").histogram("readLatency");
    h.configure(8, 16.0);
    h.sample(12.0);
    const StatHistogram *found =
        root.findHistogram("ddr.readLatency");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->samples(), 1u);
    EXPECT_EQ(root.findHistogram("ddr.nope"), nullptr);
    EXPECT_EQ(root.findHistogram("nope.readLatency"), nullptr);
}

TEST(Stats, GroupByPathNestsDottedNames)
{
    StatGroup root("soc");
    root.groupByPath("noc.ar").scalar("flits") += 9;
    // The dotted path creates real nesting, so dotted lookup works.
    const StatScalar *flits = root.findScalar("noc.ar.flits");
    ASSERT_NE(flits, nullptr);
    EXPECT_DOUBLE_EQ(flits->value(), 9.0);
    // Same path returns the same group.
    EXPECT_EQ(&root.groupByPath("noc.ar"), &root.group("noc").group("ar"));
}

TEST(Stats, DumpJsonParsesBackWithPercentiles)
{
    StatGroup root("soc");
    root.scalar("cycles") += 123;
    StatHistogram &h = root.group("ddr").histogram("readLatency");
    h.configure(8, 16.0);
    for (int i = 0; i < 32; ++i)
        h.sample(i * 4.0);
    std::ostringstream os;
    root.dumpJson(os);

    const JsonValue v = parseJson(os.str());
    const JsonValue *scalars = v.find("scalars");
    ASSERT_NE(scalars, nullptr);
    const JsonValue *cycles = scalars->find("cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_DOUBLE_EQ(cycles->number, 123.0);

    const JsonValue *groups = v.find("groups");
    ASSERT_NE(groups, nullptr);
    const JsonValue *ddr = groups->find("ddr");
    ASSERT_NE(ddr, nullptr);
    const JsonValue *hists = ddr->find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *lat = hists->find("readLatency");
    ASSERT_NE(lat, nullptr);
    for (const char *key : {"samples", "mean", "min", "max", "p50",
                            "p95", "p99"}) {
        ASSERT_NE(lat->find(key), nullptr) << key;
    }
    EXPECT_DOUBLE_EQ(lat->find("samples")->number, 32.0);
    EXPECT_LE(lat->find("p50")->number, lat->find("p95")->number);
    EXPECT_LE(lat->find("p95")->number, lat->find("p99")->number);
}

TEST(Json, ParsesNestedStructures)
{
    const JsonValue v = parseJson(
        R"({"a": [1, 2.5, -3e2], "b": {"c": "x\"y\n"}, "d": true,)"
        R"( "e": null})");
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
    const JsonValue *c = v.find("b")->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->string, "x\"y\n");
    EXPECT_TRUE(v.find("d")->boolean);
    EXPECT_EQ(v.find("e")->type, JsonValue::Type::Null);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), ConfigError);
    EXPECT_THROW(parseJson("[1, ]"), ConfigError);
    EXPECT_THROW(parseJson("{\"a\": 1} trailing"), ConfigError);
    EXPECT_THROW(parseJson("\"unterminated"), ConfigError);
}

TEST(Stats, GroupHierarchyAndLookup)
{
    StatGroup root("soc");
    root.group("dram").scalar("rowHits") += 3;
    root.group("dram").scalar("rowHits") += 2;
    root.group("core0").group("reader").scalar("bytes") += 64;

    const StatScalar *hits = root.findScalar("dram.rowHits");
    ASSERT_NE(hits, nullptr);
    EXPECT_DOUBLE_EQ(hits->value(), 5.0);
    const StatScalar *bytes = root.findScalar("core0.reader.bytes");
    ASSERT_NE(bytes, nullptr);
    EXPECT_DOUBLE_EQ(bytes->value(), 64.0);
    EXPECT_EQ(root.findScalar("nope.nothing"), nullptr);
    EXPECT_EQ(root.findScalar("dram.missing"), nullptr);
}

TEST(Stats, DumpContainsDottedPaths)
{
    StatGroup root("soc");
    root.group("mem").scalar("reads") += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("soc.mem.reads = 7"), std::string::npos);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2u);
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const u64 v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
    EXPECT_EQ(rng.nextBounded(0), 0u);
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RoughlyUniform)
{
    Rng rng(99);
    std::array<unsigned, 8> buckets{};
    for (int i = 0; i < 8000; ++i)
        ++buckets[rng.nextBounded(8)];
    for (unsigned count : buckets) {
        EXPECT_GT(count, 800u);
        EXPECT_LT(count, 1200u);
    }
}

TEST(Log, FatalThrowsConfigError)
{
    EXPECT_THROW(fatal("user misconfigured %s", "something"),
                 ConfigError);
    try {
        fatal("value %d too large", 99);
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("value 99 too large"),
                  std::string::npos);
    }
}

TEST(Log, AssertPassesOnTrue)
{
    beethoven_assert(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

} // namespace
} // namespace beethoven
