/**
 * @file
 * Shape-regression tests: cheap, fast guards that the paper's headline
 * relationships keep holding as the framework evolves. The full
 * figures live in bench/; these are the invariants a refactor must not
 * silently break.
 */

#include <gtest/gtest.h>

#include "accel/a3/a3_core.h"
#include "accel/machsuite/nw.h"
#include "base/rng.h"
#include "baselines/toolflow_models.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

using namespace machsuite;

Cycle
runNwOnce(fpga_handle_t &handle, AcceleratorSoc &soc, unsigned core,
          unsigned n)
{
    Rng rng(core + 1);
    remote_ptr a = handle.malloc(n);
    remote_ptr b = handle.malloc(n);
    remote_ptr out = handle.malloc((n + 1) * 4);
    for (unsigned i = 0; i < n; ++i) {
        a.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
        b.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
    }
    handle.copy_to_fpga(a);
    handle.copy_to_fpga(b);
    handle
        .invoke("NwSystem", "nw", core,
                {a.getFpgaAddr(), b.getFpgaAddr(), out.getFpgaAddr(),
                 n})
        .get();
    return static_cast<NwCore &>(soc.core("NwSystem", core))
        .lastKernelCycles();
}

TEST(ShapeRegression, NwSingleCoreIsTwiceHls)
{
    // Fig. 6 anchor: "Our implementation achieved 2x higher throughput
    // over the other baselines, even for a single core."
    AwsF1Platform platform;
    platform.setClockMHz(125);
    AcceleratorSoc soc(AcceleratorConfig(NwCore::systemConfig(1)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    const Cycle cycles = runNwOnce(handle, soc, 0, 256);
    const double beethoven_ops = 125e6 / double(cycles);
    const double hls_ops =
        baselines::vitisHlsModel("NW", 256, 0).opsPerSecond();
    const double ratio = beethoven_ops / hls_ops;
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}

TEST(ShapeRegression, DispatchContentionShowsAtLowLatency)
{
    // Fig. 6's ideal-vs-measured gap: multi-core wall clock must trail
    // perfect scaling because MMIO dispatch serializes.
    AwsF1Platform platform;
    const unsigned n_cores = 8;
    AcceleratorSoc soc(AcceleratorConfig(NwCore::systemConfig(n_cores)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const Cycle single = runNwOnce(handle, soc, 0, 256);

    std::vector<std::vector<u64>> args;
    for (unsigned c = 0; c < n_cores; ++c) {
        Rng rng(c + 77);
        remote_ptr a = handle.malloc(256);
        remote_ptr b = handle.malloc(256);
        remote_ptr out = handle.malloc(257 * 4);
        for (unsigned i = 0; i < 256; ++i) {
            a.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
            b.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
        }
        handle.copy_to_fpga(a);
        handle.copy_to_fpga(b);
        args.push_back({a.getFpgaAddr(), b.getFpgaAddr(),
                        out.getFpgaAddr(), 256});
    }
    const Cycle start = soc.sim().cycle();
    std::vector<response_handle<u64>> pending;
    for (unsigned c = 0; c < n_cores; ++c)
        pending.push_back(handle.invoke("NwSystem", "nw", c, args[c]));
    for (auto &h : pending)
        h.get();
    const Cycle wall = soc.sim().cycle() - start;

    // Perfect scaling would finish all 8 ops in ~`single` cycles.
    EXPECT_GT(wall, single + 1000)
        << "dispatch serialization should be visible";
    EXPECT_LT(wall, 2 * single)
        << "but the cores must still run concurrently";
}

TEST(ShapeRegression, A3ThroughputNearOneKeyPerCycle)
{
    // Table III anchor: the A3 core sustains ~n_keys cycles/query, so
    // 23-24 cores at 250 MHz land in the paper's 15-17 M ops/s range.
    AwsF1Platform platform;
    AcceleratorSoc soc(
        AcceleratorConfig(a3::A3Core::systemConfig(1)), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const unsigned n_keys = 320, n_queries = 32;
    Rng rng(11);
    remote_ptr kmem = handle.malloc(n_keys * 64);
    remote_ptr vmem = handle.malloc(n_keys * 64);
    remote_ptr qmem = handle.malloc(n_queries * 64);
    remote_ptr omem = handle.malloc(n_queries * 64);
    for (unsigned i = 0; i < n_keys * 64; ++i) {
        kmem.getHostAddr()[i] = static_cast<u8>(rng.next());
        vmem.getHostAddr()[i] = static_cast<u8>(rng.next());
    }
    handle.copy_to_fpga(kmem);
    handle.copy_to_fpga(vmem);
    handle.copy_to_fpga(qmem);
    handle
        .invoke("A3System", "load_matrices", 0,
                {kmem.getFpgaAddr(), vmem.getFpgaAddr(), n_keys})
        .get();
    handle
        .invoke("A3System", "attend", 0,
                {qmem.getFpgaAddr(), omem.getFpgaAddr(), n_queries})
        .get();
    const Cycle cycles =
        static_cast<a3::A3Core &>(soc.core("A3System", 0))
            .lastKernelCycles();
    const double per_query = double(cycles) / n_queries;
    EXPECT_LT(per_query, 1.25 * n_keys);
    // 23 cores at this rate clear 15M ops/s @ 250 MHz.
    EXPECT_GT(23 * 250e6 / per_query, 14e6);
}

TEST(ShapeRegression, MemoryFabricSharesBandwidthFairly)
{
    // Two identical NW cores streaming through the shared fabric must
    // finish within a few percent of each other.
    AwsF1Platform platform;
    AcceleratorSoc soc(AcceleratorConfig(NwCore::systemConfig(2)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    const Cycle a = runNwOnce(handle, soc, 0, 256);
    const Cycle b = runNwOnce(handle, soc, 1, 256);
    EXPECT_NEAR(double(a), double(b), 0.05 * double(a));
}

} // namespace
} // namespace beethoven
