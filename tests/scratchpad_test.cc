/**
 * @file
 * Tests for the Scratchpad: port semantics, read latency, writes,
 * init-from-memory through a live Reader + DRAM controller, multiple
 * ports, and intra-core write ports.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "dram/controller.h"
#include "mem/scratchpad.h"

namespace beethoven
{
namespace
{

TEST(Scratchpad, PeekPokeRoundTrip)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 32;
    p.nDatas = 64;
    p.supportsInit = false;
    Scratchpad spad(sim, "spad", p, nullptr);
    spad.pokeUint(5, 0xDEADBEEF);
    EXPECT_EQ(spad.peekUint(5), 0xDEADBEEFull);
    EXPECT_EQ(spad.peekUint(6), 0ull);
}

TEST(Scratchpad, PortReadAfterLatency)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 32;
    p.nDatas = 16;
    p.latency = 3;
    p.supportsInit = false;
    Scratchpad spad(sim, "spad", p, nullptr);
    spad.pokeUint(7, 1234);

    SpadRequest req;
    req.row = 7;
    spad.reqPort(0).push(req);
    Cycle waited = 0;
    while (!spad.respPort(0).canPop()) {
        sim.step();
        ++waited;
        ASSERT_LT(waited, 50u);
    }
    // 1 cycle for the request queue + the configured read latency.
    EXPECT_GE(waited, 3u);
    const SpadResponse resp = spad.respPort(0).pop();
    EXPECT_EQ(resp.row, 7u);
    u64 v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= u64(resp.data[i]) << (8 * i);
    EXPECT_EQ(v, 1234u);
}

TEST(Scratchpad, PipelinedReadsSustainOnePerCycle)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 32;
    p.nDatas = 256;
    p.latency = 1;
    p.supportsInit = false;
    Scratchpad spad(sim, "spad", p, nullptr);
    for (u32 i = 0; i < 256; ++i)
        spad.pokeUint(i, i * 3);

    u32 issued = 0, received = 0;
    const Cycle start = sim.cycle();
    while (received < 200) {
        if (issued < 200 && spad.reqPort(0).canPush()) {
            SpadRequest req;
            req.row = issued++;
            spad.reqPort(0).push(req);
        }
        if (spad.respPort(0).canPop()) {
            const auto resp = spad.respPort(0).pop();
            u64 v = 0;
            for (unsigned i = 0; i < 4; ++i)
                v |= u64(resp.data[i]) << (8 * i);
            ASSERT_EQ(v, u64(received) * 3);
            ++received;
        }
        sim.step();
        ASSERT_LT(sim.cycle() - start, 2000u);
    }
    // Steady state must be close to one response per cycle.
    EXPECT_LT(sim.cycle() - start, 230u);
}

TEST(Scratchpad, PortWrites)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 64;
    p.nDatas = 8;
    p.supportsInit = false;
    Scratchpad spad(sim, "spad", p, nullptr);

    SpadRequest w;
    w.row = 3;
    w.write = true;
    w.data.assign(8, 0);
    w.data[0] = 0x42;
    spad.reqPort(0).push(w);
    sim.run(3);
    EXPECT_EQ(spad.peekUint(3), 0x42ull);
}

TEST(Scratchpad, MultiplePortsServeConcurrently)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 32;
    p.nDatas = 8;
    p.nPorts = 2;
    p.supportsInit = false;
    Scratchpad spad(sim, "spad", p, nullptr);
    spad.pokeUint(1, 11);
    spad.pokeUint(2, 22);

    SpadRequest r1, r2;
    r1.row = 1;
    r2.row = 2;
    spad.reqPort(0).push(r1);
    spad.reqPort(1).push(r2);
    sim.run(5);
    ASSERT_TRUE(spad.respPort(0).canPop());
    ASSERT_TRUE(spad.respPort(1).canPop());
    EXPECT_EQ(spad.respPort(0).pop().data[0], 11);
    EXPECT_EQ(spad.respPort(1).pop().data[0], 22);
}

TEST(Scratchpad, IntraCoreWritePort)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 32;
    p.nDatas = 8;
    p.supportsInit = false;
    Scratchpad spad(sim, "spad", p, nullptr);
    auto &port = spad.addIntraCoreWritePort();
    SpadRequest w;
    w.row = 2;
    w.write = true;
    w.data = {9, 0, 0, 0};
    port.push(w);
    sim.run(3);
    EXPECT_EQ(spad.peekUint(2), 9ull);
}

TEST(Scratchpad, InitFromMemoryThroughReader)
{
    Simulator sim;
    FunctionalMemory mem;
    DramController::Config cfg;
    cfg.axi.dataBytes = 64;
    DramController ctrl(sim, "ddr", cfg, mem);

    ScratchpadParams p;
    p.dataWidthBits = 128; // 16-byte rows
    p.nDatas = 64;
    p.supportsInit = true;

    ReaderParams rp;
    rp.dataBytes = 16;
    Reader init_reader(sim, "init", rp, cfg.axi, 0, &ctrl.arPort(),
                       &ctrl.rPort());
    Scratchpad spad(sim, "spad", p, &init_reader);

    Rng rng(9);
    std::vector<u8> rows(48 * 16);
    for (auto &b : rows)
        b = static_cast<u8>(rng.next());
    mem.write(0x10000, rows.size(), rows.data());

    spad.initPort().push({0x10000, 4, 48});
    const bool done = sim.runUntil(
        [&] { return spad.initDonePort().canPop(); }, 100000);
    ASSERT_TRUE(done);
    spad.initDonePort().pop();

    for (u32 r = 0; r < 48; ++r) {
        const auto row = spad.peek(4 + r);
        for (unsigned b = 0; b < 16; ++b)
            ASSERT_EQ(row[b], rows[r * 16 + b])
                << "row " << r << " byte " << b;
    }
    // Rows outside the init range stay zero.
    EXPECT_EQ(spad.peekUint(0), 0ull);
    EXPECT_EQ(spad.peekUint(63), 0ull);
}

TEST(Scratchpad, InitRangeValidation)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 32;
    p.nDatas = 8;
    p.supportsInit = true;
    ReaderParams rp;
    rp.dataBytes = 4;
    TimedQueue<ReadRequest> ar(sim, 2);
    TimedQueue<ReadBeat> r(sim, 2);
    Reader init_reader(sim, "init", rp, AxiConfig{}, 0, &ar, &r);
    Scratchpad spad(sim, "spad", p, &init_reader);
    spad.initPort().push({0, 4, 8}); // 4 + 8 > 8 rows
    EXPECT_DEATH({ sim.run(3); }, "init range");
}

TEST(Scratchpad, WidthMismatchedInitReaderPanics)
{
    Simulator sim;
    ScratchpadParams p;
    p.dataWidthBits = 64;
    p.nDatas = 8;
    p.supportsInit = true;
    ReaderParams rp;
    rp.dataBytes = 4; // != 8-byte rows
    TimedQueue<ReadRequest> ar(sim, 2);
    TimedQueue<ReadBeat> r(sim, 2);
    Reader init_reader(sim, "init", rp, AxiConfig{}, 0, &ar, &r);
    EXPECT_DEATH(Scratchpad(sim, "spad", p, &init_reader),
                 "init reader port width");
}

} // namespace
} // namespace beethoven
