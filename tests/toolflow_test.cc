/**
 * @file
 * Tests for the documented HLS/Spatial baseline models: every Table I
 * kernel has a model, the models encode the behaviours the paper
 * describes, and unknown kernels are rejected.
 */

#include <gtest/gtest.h>

#include "accel/machsuite/workloads.h"
#include "base/log.h"
#include "baselines/toolflow_models.h"

namespace beethoven
{
namespace
{

using baselines::spatialModel;
using baselines::vitisHlsModel;

TEST(ToolflowModels, EveryTable1KernelHasBothModels)
{
    for (const auto &w : machsuite::table1Workloads()) {
        const auto hls = vitisHlsModel(w.name, w.n, w.k);
        const auto spatial = spatialModel(w.name, w.n, w.k);
        EXPECT_GT(hls.opsPerSecond(), 0.0) << w.name;
        EXPECT_GT(spatial.opsPerSecond(), 0.0) << w.name;
        EXPECT_FALSE(hls.notes.empty()) << w.name;
        EXPECT_FALSE(spatial.notes.empty()) << w.name;
    }
}

TEST(ToolflowModels, SpatialRunsAtDefaultClock)
{
    // Section III-B: "Spatial and Beethoven implementations are
    // clocked at the default 125MHz clock rate".
    for (const auto &w : machsuite::table1Workloads())
        EXPECT_DOUBLE_EQ(spatialModel(w.name, w.n, w.k).clockMHz,
                         125.0);
}

TEST(ToolflowModels, NwIsLoopCarryLimited)
{
    // The NW cell chain prevents useful unrolling in both tools; the
    // HLS II must exceed 1.
    const auto hls = vitisHlsModel("NW", 256, 0);
    EXPECT_GE(hls.cyclesPerOp, 2.0 * 256 * 256);
}

TEST(ToolflowModels, StencilsAreTheHlsSweetSpot)
{
    // Line-buffered stencils reach II=1 — one output per cycle.
    const auto hls = vitisHlsModel("Stencil2D", 256, 0);
    EXPECT_LT(hls.cyclesPerOp, 1.1 * 256 * 256);
}

TEST(ToolflowModels, GemmScalesWithCube)
{
    const auto small = vitisHlsModel("GeMM", 64, 0);
    const auto large = vitisHlsModel("GeMM", 128, 0);
    EXPECT_NEAR(large.cyclesPerOp / small.cyclesPerOp, 8.0, 0.5);
}

TEST(ToolflowModels, UnknownKernelIsFatal)
{
    EXPECT_THROW(vitisHlsModel("NotAKernel", 10, 0), ConfigError);
    EXPECT_THROW(spatialModel("NotAKernel", 10, 0), ConfigError);
}

} // namespace
} // namespace beethoven
