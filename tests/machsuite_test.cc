/**
 * @file
 * Functional tests for the MachSuite accelerator cores against the
 * golden software references, end-to-end through the runtime stack.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/machsuite/gemm.h"
#include "accel/machsuite/md_knn.h"
#include "accel/machsuite/nw.h"
#include "accel/machsuite/stencil.h"
#include "accel/machsuite/workloads.h"
#include "base/rng.h"
#include "baselines/machsuite_golden.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"
#include "soc_check.h"

namespace beethoven
{
namespace
{

using namespace machsuite;

struct Harness
{
    SimulationPlatform platform;
    AcceleratorSoc soc;
    ScopedSocCheck check;
    RuntimeServer server;
    fpga_handle_t handle;

    explicit Harness(AcceleratorSystemConfig sys)
        : soc(AcceleratorConfig(std::move(sys)), platform),
          check(soc),
          server(soc),
          handle(server)
    {}
};

TEST(MachSuiteGemm, MatchesGolden)
{
    for (unsigned n : {16u, 32u, 64u}) {
        Harness h(GemmCore::systemConfig(1));
        Rng rng(n);
        std::vector<i32> a(n * n), bt(n * n);
        for (auto &v : a)
            v = static_cast<i32>(rng.nextRange(0, 2000)) - 1000;
        for (auto &v : bt)
            v = static_cast<i32>(rng.nextRange(0, 2000)) - 1000;

        remote_ptr a_mem = h.handle.malloc(n * n * 4);
        remote_ptr bt_mem = h.handle.malloc(n * n * 4);
        remote_ptr c_mem = h.handle.malloc(n * n * 4);
        std::memcpy(a_mem.getHostAddr(), a.data(), n * n * 4);
        std::memcpy(bt_mem.getHostAddr(), bt.data(), n * n * 4);
        h.handle.copy_to_fpga(a_mem);
        h.handle.copy_to_fpga(bt_mem);

        h.handle
            .invoke("GemmSystem", "gemm", 0,
                    {a_mem.getFpgaAddr(), bt_mem.getFpgaAddr(),
                     c_mem.getFpgaAddr(), n})
            .get();
        h.handle.copy_from_fpga(c_mem);

        const auto golden = goldenGemm(a, bt, n);
        const i32 *c = c_mem.as<i32>();
        for (unsigned i = 0; i < n * n; ++i)
            ASSERT_EQ(c[i], golden[i]) << "n=" << n << " idx=" << i;
        h.check.finish();
    }
}

TEST(MachSuiteNw, MatchesGolden)
{
    for (unsigned n : {4u, 16u, 64u, 256u}) {
        Harness h(NwCore::systemConfig(1));
        Rng rng(n * 7 + 1);
        std::vector<u8> a(n), b(n);
        const char alphabet[] = "ACGT";
        for (auto &ch : a)
            ch = alphabet[rng.nextBounded(4)];
        for (auto &ch : b)
            ch = alphabet[rng.nextBounded(4)];

        remote_ptr a_mem = h.handle.malloc(n);
        remote_ptr b_mem = h.handle.malloc(n);
        remote_ptr out_mem = h.handle.malloc((n + 1) * 4);
        std::memcpy(a_mem.getHostAddr(), a.data(), n);
        std::memcpy(b_mem.getHostAddr(), b.data(), n);
        h.handle.copy_to_fpga(a_mem);
        h.handle.copy_to_fpga(b_mem);

        h.handle
            .invoke("NwSystem", "nw", 0,
                    {a_mem.getFpgaAddr(), b_mem.getFpgaAddr(),
                     out_mem.getFpgaAddr(), n})
            .get();
        h.handle.copy_from_fpga(out_mem);

        const auto golden = goldenNw(a, b, n);
        const i32 *out = out_mem.as<i32>();
        for (unsigned j = 0; j <= n; ++j)
            ASSERT_EQ(out[j], golden[j]) << "n=" << n << " j=" << j;
        h.check.finish();
    }
}

TEST(MachSuiteStencil2d, MatchesGolden)
{
    const unsigned rows = 24, cols = 32;
    Harness h(Stencil2dCore::systemConfig(1));
    Rng rng(42);
    std::vector<i32> in(rows * cols);
    for (auto &v : in)
        v = static_cast<i32>(rng.nextRange(0, 200)) - 100;

    remote_ptr in_mem = h.handle.malloc(rows * cols * 4);
    remote_ptr out_mem = h.handle.malloc(rows * cols * 4);
    std::memcpy(in_mem.getHostAddr(), in.data(), rows * cols * 4);
    h.handle.copy_to_fpga(in_mem);

    h.handle
        .invoke("Stencil2dSystem", "stencil2d", 0,
                {in_mem.getFpgaAddr(), out_mem.getFpgaAddr(), rows,
                 cols})
        .get();
    h.handle.copy_from_fpga(out_mem);

    const auto golden = goldenStencil2d(in, rows, cols);
    const i32 *out = out_mem.as<i32>();
    for (unsigned i = 0; i < rows * cols; ++i)
        ASSERT_EQ(out[i], golden[i]) << "idx=" << i;
    h.check.finish();
}

TEST(MachSuiteStencil3d, MatchesGolden)
{
    const unsigned n = 8;
    Harness h(Stencil3dCore::systemConfig(1));
    Rng rng(7);
    std::vector<i32> in(n * n * n);
    for (auto &v : in)
        v = static_cast<i32>(rng.nextRange(0, 200)) - 100;

    remote_ptr in_mem = h.handle.malloc(n * n * n * 4);
    remote_ptr out_mem = h.handle.malloc(n * n * n * 4);
    std::memcpy(in_mem.getHostAddr(), in.data(), n * n * n * 4);
    h.handle.copy_to_fpga(in_mem);

    h.handle
        .invoke("Stencil3dSystem", "stencil3d", 0,
                {in_mem.getFpgaAddr(), out_mem.getFpgaAddr(), n})
        .get();
    h.handle.copy_from_fpga(out_mem);

    const auto golden = goldenStencil3d(in, n);
    const i32 *out = out_mem.as<i32>();
    for (unsigned i = 0; i < n * n * n; ++i)
        ASSERT_EQ(out[i], golden[i]) << "idx=" << i;
    h.check.finish();
}

TEST(MachSuiteMdKnn, MatchesGolden)
{
    const unsigned n = 64, k = 8;
    Harness h(MdKnnCore::systemConfig(1));
    Rng rng(99);
    std::vector<double> pos(3 * n);
    for (auto &v : pos)
        v = 1.0 + rng.nextDouble() * 10.0;
    std::vector<i32> nl(n * k);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < k; ++j) {
            u32 nb;
            do {
                nb = static_cast<u32>(rng.nextBounded(n));
            } while (nb == i);
            nl[i * k + j] = static_cast<i32>(nb);
        }
    }

    // Positions are stored one atom per 32-byte row.
    remote_ptr pos_mem = h.handle.malloc(n * 32);
    remote_ptr nl_mem = h.handle.malloc(n * k * 4);
    remote_ptr force_mem = h.handle.malloc(n * 32);
    for (unsigned i = 0; i < n; ++i) {
        std::memcpy(pos_mem.getHostAddr() + i * 32, &pos[3 * i], 24);
    }
    std::memcpy(nl_mem.getHostAddr(), nl.data(), n * k * 4);
    h.handle.copy_to_fpga(pos_mem);
    h.handle.copy_to_fpga(nl_mem);

    h.handle
        .invoke("MdKnnSystem", "md_knn", 0,
                {pos_mem.getFpgaAddr(), nl_mem.getFpgaAddr(),
                 force_mem.getFpgaAddr(), n, k})
        .get();
    h.handle.copy_from_fpga(force_mem);

    const auto golden = goldenMdKnn(pos, nl, n, k);
    for (unsigned i = 0; i < n; ++i) {
        double fx, fy, fz;
        std::memcpy(&fx, force_mem.getHostAddr() + i * 32, 8);
        std::memcpy(&fy, force_mem.getHostAddr() + i * 32 + 8, 8);
        std::memcpy(&fz, force_mem.getHostAddr() + i * 32 + 16, 8);
        ASSERT_EQ(fx, golden[3 * i]) << "atom " << i;
        ASSERT_EQ(fy, golden[3 * i + 1]) << "atom " << i;
        ASSERT_EQ(fz, golden[3 * i + 2]) << "atom " << i;
    }
    h.check.finish();
}

TEST(MachSuiteWorkloads, Table1Registry)
{
    const auto &w = table1Workloads();
    ASSERT_EQ(w.size(), 5u);
    EXPECT_EQ(w[0].name, "GeMM");
    EXPECT_EQ(w[0].n, 256u);
    EXPECT_EQ(w[1].name, "NW");
    EXPECT_EQ(w[1].parallelism, Parallelism::None);
    EXPECT_EQ(w[4].name, "MD-KNN");
    EXPECT_EQ(w[4].k, 32u);
}

} // namespace
} // namespace beethoven
