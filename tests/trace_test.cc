/**
 * @file
 * Tests for the tracing subsystem: span/instant/counter recording,
 * Chrome trace_event serialization (validated by parsing it back),
 * process/track bookkeeping, the event cap, and the TraceProbe's
 * busy-interval and counter sampling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/json.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace beethoven
{
namespace
{

/** Parse the sink's Chrome trace output and return the event array. */
JsonValue
parsedEvents(const TraceSink &sink)
{
    std::ostringstream os;
    sink.writeChromeTrace(os);
    JsonValue root = parseJson(os.str());
    const JsonValue *events = root.find("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    return *events;
}

const JsonValue *
findByName(const JsonValue &events, const std::string &name)
{
    for (const JsonValue &e : events.array) {
        const JsonValue *n = e.find("name");
        if (n != nullptr && n->string == name)
            return &e;
    }
    return nullptr;
}

TEST(TraceSink, RecordsNestedSpans)
{
    TraceSink sink;
    // An outer transaction span with a nested sub-operation on the
    // same track, the way cmd dispatch wraps memory streams.
    sink.span("cmd", "outer", "core0", 10, 100);
    sink.span("mem", "inner", "core0", 20, 60);
    EXPECT_EQ(sink.numEvents(), 2u);
    EXPECT_TRUE(sink.hasCategory("cmd"));
    EXPECT_TRUE(sink.hasCategory("mem"));
    EXPECT_FALSE(sink.hasCategory("axi"));

    const JsonValue events = parsedEvents(sink);
    const JsonValue *outer = findByName(events, "outer");
    const JsonValue *inner = findByName(events, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->find("ph")->string, "X");
    EXPECT_DOUBLE_EQ(outer->find("ts")->number, 10.0);
    EXPECT_DOUBLE_EQ(outer->find("dur")->number, 90.0);
    // Same track -> same thread lane in the viewer.
    EXPECT_DOUBLE_EQ(outer->find("tid")->number,
                     inner->find("tid")->number);
    // Nesting holds: inner lies within outer.
    EXPECT_GE(inner->find("ts")->number, outer->find("ts")->number);
    EXPECT_LE(inner->find("ts")->number + inner->find("dur")->number,
              outer->find("ts")->number + outer->find("dur")->number);
}

TEST(TraceSink, SpanArgsAndInstantsSerialize)
{
    TraceSink sink;
    sink.span("axi", "rd", "ddr.id0", 5, 25,
              {{"addr", 0x1000}, {"beats", 16}});
    sink.instant("cmd", "drop", "host", 7);

    const JsonValue events = parsedEvents(sink);
    const JsonValue *rd = findByName(events, "rd");
    ASSERT_NE(rd, nullptr);
    const JsonValue *args = rd->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("addr")->number, double(0x1000));
    EXPECT_DOUBLE_EQ(args->find("beats")->number, 16.0);

    const JsonValue *drop = findByName(events, "drop");
    ASSERT_NE(drop, nullptr);
    EXPECT_EQ(drop->find("ph")->string, "i");
    EXPECT_DOUBLE_EQ(drop->find("ts")->number, 7.0);
}

TEST(TraceSink, CounterTracksCarryValues)
{
    TraceSink sink;
    sink.counter("noc", "ar.occ", 0, 0.0);
    sink.counter("noc", "ar.occ", 32, 3.0);
    sink.counter("noc", "ar.occ", 64, 1.0);

    const JsonValue events = parsedEvents(sink);
    unsigned samples = 0;
    double at32 = -1.0;
    for (const JsonValue &e : events.array) {
        const JsonValue *ph = e.find("ph");
        if (ph == nullptr || ph->string != "C")
            continue;
        ++samples;
        EXPECT_EQ(e.find("name")->string, "ar.occ");
        if (e.find("ts")->number == 32.0)
            at32 = e.find("args")->find("value")->number;
    }
    EXPECT_EQ(samples, 3u);
    EXPECT_DOUBLE_EQ(at32, 3.0);
}

TEST(TraceSink, ProcessScopesSeparatePids)
{
    TraceSink sink;
    sink.beginProcess("run-a");
    sink.span("cmd", "a", "t", 0, 1);
    sink.beginProcess("run-b");
    sink.span("cmd", "b", "t", 0, 1);

    const JsonValue events = parsedEvents(sink);
    const JsonValue *a = findByName(events, "a");
    const JsonValue *b = findByName(events, "b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a->find("pid")->number, b->find("pid")->number);

    // Both process names appear as metadata.
    unsigned names = 0;
    for (const JsonValue &e : events.array) {
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        if (ph != nullptr && ph->string == "M" && name != nullptr &&
            name->string == "process_name")
            ++names;
    }
    EXPECT_GE(names, 2u);
}

TEST(TraceSink, EventCapCountsDrops)
{
    TraceSink sink;
    sink.setMaxEvents(2);
    for (int i = 0; i < 5; ++i)
        sink.span("cmd", "s", "t", i, i + 1);
    EXPECT_EQ(sink.numEvents(), 2u);
    EXPECT_EQ(sink.droppedEvents(), 3u);
    std::ostringstream os;
    sink.writeSummary(os);
    EXPECT_NE(os.str().find("dropped"), std::string::npos);
}

TEST(TraceSink, ProfileAggregatesPerTrack)
{
    TraceSink sink;
    sink.span("axi", "rd", "ddr", 0, 10);
    sink.span("axi", "rd", "ddr", 10, 40);
    std::ostringstream os;
    sink.writeProfile(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("ddr"), std::string::npos);
    EXPECT_NE(out.find("20.0"), std::string::npos); // mean duration
}

TEST(Simulator, TraceDefaultsToNull)
{
    Simulator sim;
    EXPECT_EQ(sim.trace(), nullptr);
    TraceSink sink;
    sim.attachTrace(&sink);
    EXPECT_EQ(sim.trace(), &sink);
}

TEST(TraceProbe, InertWithoutSink)
{
    Simulator sim;
    TraceProbe probe(sim, "probe", 1);
    std::size_t calls = 0;
    probe.addBusyTrack("q", [&] {
        ++calls;
        return std::size_t(1);
    });
    sim.run(10);
    // The null-sink fast path never evaluates the occupancy hook.
    EXPECT_EQ(calls, 0u);
}

TEST(TraceProbe, EmitsBusySpansAndCounterSamples)
{
    Simulator sim;
    TraceSink sink;
    sim.attachTrace(&sink);
    TraceProbe probe(sim, "probe", 4);
    std::size_t occ = 0;
    probe.addBusyTrack("q", [&] { return occ; });
    probe.addCounterSampler([&](TraceSink &ts, Cycle at) {
        ts.counter("noc", "q.occ", at, double(occ));
    });

    sim.run(2); // idle: cycles 0-1
    occ = 3;
    sim.run(5); // busy: cycles 2-6
    occ = 0;
    sim.run(3); // idle again; the busy interval closes at cycle 7

    const JsonValue events = parsedEvents(sink);
    const JsonValue *busy = findByName(events, "q.busy");
    ASSERT_NE(busy, nullptr);
    EXPECT_EQ(busy->find("cat")->string, "noc");
    EXPECT_DOUBLE_EQ(busy->find("ts")->number, 2.0);
    EXPECT_DOUBLE_EQ(busy->find("dur")->number, 5.0);

    // Counter samples land every period (cycles 0, 4, 8).
    unsigned samples = 0;
    for (const JsonValue &e : events.array) {
        const JsonValue *ph = e.find("ph");
        if (ph != nullptr && ph->string == "C")
            ++samples;
    }
    EXPECT_EQ(samples, 3u);
}

} // namespace
} // namespace beethoven
