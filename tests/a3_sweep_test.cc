/**
 * @file
 * Parameterized sweeps over the A3 attention core: bit-exactness holds
 * across key counts, batch sizes and platforms, and the exp LUT obeys
 * its mathematical contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "accel/a3/a3_core.h"
#include "base/rng.h"
#include "baselines/attention_sw.h"
#include "platform/kria.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

using namespace a3;

TEST(A3ExpTable, MonotoneDecreasingFromFullScale)
{
    const auto &t = expTable();
    EXPECT_EQ(t[0], 65535u); // exp(0) at full scale
    for (unsigned i = 1; i < A3Params::lutEntries; ++i)
        EXPECT_LE(t[i], t[i - 1]) << "entry " << i;
    EXPECT_LT(t[A3Params::lutEntries - 1], 4u) << "tail ~ zero";
}

TEST(A3ExpTable, MatchesExpWithinQuantization)
{
    const auto &t = expTable();
    for (unsigned i = 0; i < A3Params::lutEntries; i += 17) {
        const double x = double(i << A3Params::expShift) / 32.0;
        EXPECT_NEAR(t[i] / 65535.0, std::exp(-x), 1.0 / 65535.0 + 1e-9)
            << "entry " << i;
    }
}

struct A3SweepParam
{
    unsigned nKeys;
    unsigned nQueries;
};

class A3Sweep : public ::testing::TestWithParam<A3SweepParam>
{};

TEST_P(A3Sweep, BitExactAcrossShapes)
{
    const auto [n_keys, n_queries] = GetParam();
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(1)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    Rng rng(n_keys * 131 + n_queries);
    std::vector<i8> keys(n_keys * A3Params::dim);
    std::vector<i8> values(n_keys * A3Params::dim);
    for (auto &v : keys)
        v = static_cast<i8>(rng.nextRange(0, 255) - 128);
    for (auto &v : values)
        v = static_cast<i8>(rng.nextRange(0, 255) - 128);

    remote_ptr kmem = handle.malloc(keys.size());
    remote_ptr vmem = handle.malloc(values.size());
    std::memcpy(kmem.getHostAddr(), keys.data(), keys.size());
    std::memcpy(vmem.getHostAddr(), values.data(), values.size());
    handle.copy_to_fpga(kmem);
    handle.copy_to_fpga(vmem);
    handle
        .invoke("A3System", "load_matrices", 0,
                {kmem.getFpgaAddr(), vmem.getFpgaAddr(), n_keys})
        .get();

    remote_ptr qbuf = handle.malloc(n_queries * 64);
    remote_ptr obuf = handle.malloc(n_queries * 64);
    std::vector<std::vector<i8>> queries;
    for (unsigned q = 0; q < n_queries; ++q) {
        std::vector<i8> query(A3Params::dim);
        for (auto &v : query)
            v = static_cast<i8>(rng.nextRange(0, 255) - 128);
        std::memcpy(qbuf.getHostAddr() + q * 64, query.data(),
                    A3Params::dim);
        queries.push_back(std::move(query));
    }
    handle.copy_to_fpga(qbuf);
    handle
        .invoke("A3System", "attend", 0,
                {qbuf.getFpgaAddr(), obuf.getFpgaAddr(), n_queries})
        .get();
    handle.copy_from_fpga(obuf);

    for (unsigned q = 0; q < n_queries; ++q) {
        const auto golden = goldenAttention(keys, values, queries[q],
                                            n_keys, A3Params::dim);
        for (unsigned d = 0; d < A3Params::dim; ++d) {
            ASSERT_EQ(static_cast<i8>(obuf.getHostAddr()[q * 64 + d]),
                      golden[d])
                << "keys=" << n_keys << " q=" << q << " d=" << d;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, A3Sweep,
    ::testing::Values(A3SweepParam{1, 1}, A3SweepParam{2, 3},
                      A3SweepParam{17, 5}, A3SweepParam{64, 8},
                      A3SweepParam{319, 2}, A3SweepParam{320, 6}),
    [](const auto &info) {
        return "k" + std::to_string(info.param.nKeys) + "_q" +
               std::to_string(info.param.nQueries);
    });

TEST(A3Core, MatrixReloadChangesResults)
{
    // Loading new matrices must fully replace the stationary state.
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(1)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const unsigned n_keys = 32;
    auto run_once = [&](u64 seed) {
        Rng rng(seed);
        std::vector<i8> keys(n_keys * 64), values(n_keys * 64);
        for (auto &v : keys)
            v = static_cast<i8>(rng.nextRange(0, 255) - 128);
        for (auto &v : values)
            v = static_cast<i8>(rng.nextRange(0, 255) - 128);
        std::vector<i8> query(64);
        for (auto &v : query)
            v = static_cast<i8>(rng.nextRange(0, 255) - 128);

        remote_ptr kmem = handle.malloc(keys.size());
        remote_ptr vmem = handle.malloc(values.size());
        remote_ptr qmem = handle.malloc(64);
        remote_ptr omem = handle.malloc(64);
        std::memcpy(kmem.getHostAddr(), keys.data(), keys.size());
        std::memcpy(vmem.getHostAddr(), values.data(), values.size());
        std::memcpy(qmem.getHostAddr(), query.data(), 64);
        handle.copy_to_fpga(kmem);
        handle.copy_to_fpga(vmem);
        handle.copy_to_fpga(qmem);
        handle
            .invoke("A3System", "load_matrices", 0,
                    {kmem.getFpgaAddr(), vmem.getFpgaAddr(), n_keys})
            .get();
        handle
            .invoke("A3System", "attend", 0,
                    {qmem.getFpgaAddr(), omem.getFpgaAddr(), 1})
            .get();
        handle.copy_from_fpga(omem);
        const auto golden =
            goldenAttention(keys, values, query, n_keys, 64);
        for (unsigned d = 0; d < 64; ++d) {
            EXPECT_EQ(static_cast<i8>(omem.getHostAddr()[d]),
                      golden[d]);
        }
        std::vector<i8> out(64);
        std::memcpy(out.data(), omem.getHostAddr(), 64);
        return out;
    };
    const auto first = run_once(1);
    const auto second = run_once(2);
    EXPECT_NE(first, second);
}

TEST(A3Core, WorksOnEmbeddedPlatform)
{
    KriaPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(1)),
                       platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    // Just prove elaboration + a tiny batch on the 16-byte-bus
    // embedded memory system.
    const unsigned n_keys = 16;
    Rng rng(4);
    remote_ptr kmem = handle.malloc(n_keys * 64);
    remote_ptr vmem = handle.malloc(n_keys * 64);
    remote_ptr qmem = handle.malloc(64);
    remote_ptr omem = handle.malloc(64);
    for (unsigned i = 0; i < n_keys * 64; ++i) {
        kmem.getHostAddr()[i] = static_cast<u8>(rng.next());
        vmem.getHostAddr()[i] = static_cast<u8>(rng.next());
    }
    for (unsigned i = 0; i < 64; ++i)
        qmem.getHostAddr()[i] = static_cast<u8>(rng.next());
    handle.copy_to_fpga(kmem);
    handle.copy_to_fpga(vmem);
    handle.copy_to_fpga(qmem);
    handle
        .invoke("A3System", "load_matrices", 0,
                {kmem.getFpgaAddr(), vmem.getFpgaAddr(), n_keys})
        .get();
    handle
        .invoke("A3System", "attend", 0,
                {qmem.getFpgaAddr(), omem.getFpgaAddr(), 1})
        .get();
    SUCCEED();
}

} // namespace
} // namespace beethoven
