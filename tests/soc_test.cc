/**
 * @file
 * Tests for SoC elaboration: configuration validation (failure
 * injection), placement/mapping records, accessors, AXI ID budgeting,
 * and fit enforcement.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/vecadd.h"
#include "base/json.h"
#include "platform/aws_f1.h"
#include "platform/kria.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"
#include "trace/trace.h"

namespace beethoven
{
namespace
{

AcceleratorSystemConfig
minimalSystem(const std::string &name = "Sys")
{
    auto sys = VecAddCore::systemConfig(1);
    sys.name = name;
    return sys;
}

TEST(SocValidation, RejectsEmptyConfig)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg;
    EXPECT_THROW(AcceleratorSoc(cfg, platform), ConfigError);
}

TEST(SocValidation, RejectsDuplicateSystemNames)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg;
    cfg.systems.push_back(minimalSystem("Same"));
    cfg.systems.push_back(minimalSystem("Same"));
    EXPECT_THROW(AcceleratorSoc(std::move(cfg), platform), ConfigError);
}

TEST(SocValidation, RejectsZeroCores)
{
    SimulationPlatform platform;
    auto sys = minimalSystem();
    sys.nCores = 0;
    EXPECT_THROW(AcceleratorSoc(AcceleratorConfig(sys), platform),
                 ConfigError);
}

TEST(SocValidation, RejectsMissingConstructor)
{
    SimulationPlatform platform;
    auto sys = minimalSystem();
    sys.moduleConstructor = nullptr;
    EXPECT_THROW(AcceleratorSoc(AcceleratorConfig(sys), platform),
                 ConfigError);
}

TEST(SocValidation, RejectsDuplicateChannelNames)
{
    SimulationPlatform platform;
    auto sys = minimalSystem();
    sys.readChannels.push_back(sys.readChannels[0]);
    EXPECT_THROW(AcceleratorSoc(AcceleratorConfig(sys), platform),
                 ConfigError);
}

TEST(SocValidation, RejectsDanglingIntraCoreTarget)
{
    SimulationPlatform platform;
    auto sys = minimalSystem();
    sys.intraMemoryOuts.push_back({"out", "NoSuchSystem", "inbox", 1});
    EXPECT_THROW(AcceleratorSoc(AcceleratorConfig(sys), platform),
                 ConfigError);
}

TEST(SocValidation, RejectsMissingIntraCorePort)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg;
    auto a = minimalSystem("A");
    a.intraMemoryOuts.push_back({"out", "B", "missing_port", 1});
    cfg.systems.push_back(a);
    cfg.systems.push_back(minimalSystem("B"));
    EXPECT_THROW(AcceleratorSoc(std::move(cfg), platform), ConfigError);
}

TEST(SocValidation, RejectsAxiIdExhaustion)
{
    // Kria has 6 ID bits = 64 IDs; each vecadd core's TLP reader
    // claims 4 read IDs, so 17 cores demand 68 > 64 and must be
    // rejected with an actionable error.
    KriaPlatform platform;
    auto sixteen = minimalSystem();
    sixteen.nCores = 16;
    EXPECT_NO_THROW(
        AcceleratorSoc(AcceleratorConfig(sixteen), platform));
    auto seventeen = minimalSystem();
    seventeen.nCores = 17;
    try {
        AcceleratorSoc soc(AcceleratorConfig(seventeen), platform);
        FAIL() << "expected AXI ID exhaustion";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("AXI IDs"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SocValidation, RejectsDesignsTooBigForDevice)
{
    AwsF1Platform platform;
    auto sys = minimalSystem();
    sys.kernelResources.lut = 5e6; // bigger than the whole device
    EXPECT_THROW(AcceleratorSoc(AcceleratorConfig(sys), platform),
                 ConfigError);
}

TEST(Soc, AccessorsAndIds)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg;
    auto a = minimalSystem("First");
    a.nCores = 2;
    cfg.systems.push_back(a);
    cfg.systems.push_back(minimalSystem("Second"));
    AcceleratorSoc soc(std::move(cfg), platform);

    EXPECT_EQ(soc.systemIdOf("First"), 0u);
    EXPECT_EQ(soc.systemIdOf("Second"), 1u);
    EXPECT_THROW(soc.systemIdOf("Nope"), ConfigError);
    EXPECT_EQ(soc.numCores(), 3u);
    EXPECT_EQ(soc.core("First", 1).coreIdx(), 1u);
    EXPECT_EQ(soc.core("Second", 0).systemId(), 1u);
    EXPECT_EQ(soc.coreSlrs("First").size(), 2u);
}

TEST(Soc, RecordsMemoryMappingsForEveryBuffer)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(minimalSystem()), platform);
    // vecadd: one reader buffer + one writer stage.
    unsigned readers = 0, writers = 0;
    for (const auto &rec : soc.memoryMappings()) {
        if (rec.role == "reader-buffer")
            ++readers;
        if (rec.role == "writer-stage")
            ++writers;
        EXPECT_GT(rec.mapping.totalCells(), 0u);
    }
    EXPECT_EQ(readers, 1u);
    EXPECT_EQ(writers, 1u);
}

TEST(Soc, InterconnectResourcesAreAccounted)
{
    AwsF1Platform platform;
    auto sys = minimalSystem();
    sys.nCores = 8;
    AcceleratorSoc soc(AcceleratorConfig(sys), platform);
    EXPECT_GT(soc.interconnectResources().lut, 0.0);
    EXPECT_DOUBLE_EQ(soc.interconnectResources().bram, 0.0)
        << "Table II: the interconnect uses no memory blocks";
}

TEST(Soc, MultiSystemCoresSpanSlrs)
{
    AwsF1Platform platform;
    auto sys = minimalSystem();
    sys.nCores = 12;
    sys.kernelResources.lut = 60000;
    sys.kernelResources.clb = 9000;
    AcceleratorSoc soc(AcceleratorConfig(sys), platform);
    const auto slrs = soc.coreSlrs("Sys");
    const std::set<unsigned> used(slrs.begin(), slrs.end());
    EXPECT_GT(used.size(), 1u) << "large designs must span SLRs";
}

TEST(Soc, PureComputeAcceleratorHasNoMemoryFabric)
{
    // A system with no channels or scratchpads elaborates and runs.
    SimulationPlatform platform;
    AcceleratorSystemConfig sys;
    sys.name = "Compute";
    sys.nCores = 1;
    struct EchoCore : AcceleratorCore
    {
        explicit EchoCore(const CoreContext &ctx)
            : AcceleratorCore(ctx)
        {}
        void
        tick() override
        {
            if (auto cmd = pollCommand())
                _pending.push_back(*cmd);
            if (!_pending.empty() &&
                respond(_pending.front(),
                        _pending.front().args[0] * 2)) {
                _pending.erase(_pending.begin());
            }
        }
        std::vector<DecodedCommand> _pending;
    };
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<EchoCore>(ctx);
    };
    sys.commands.push_back(CommandSpec(
        "double_it", {CommandField::uint("x", 32)}, 64));
    AcceleratorSoc soc(AcceleratorConfig(sys), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    EXPECT_EQ(handle.invoke("Compute", "double_it", 0, {21}).get(),
              42u);
}

TEST(Soc, TraceRecordsEndToEndCommandSpan)
{
    // Dispatch one vecadd command with a sink attached and check the
    // recorded cmd span against the wall-clock cycle delta observed
    // through the Simulator itself.
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(minimalSystem()), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    remote_ptr mem = handle.malloc(1024);
    for (u64 i = 0; i < 1024; ++i)
        mem.getHostAddr()[i] = static_cast<u8>(i);
    handle.copy_to_fpga(mem);

    TraceSink sink;
    soc.sim().attachTrace(&sink);
    const Cycle before = soc.sim().cycle();
    handle.invoke("Sys", "my_accel", 0, {1, mem.getFpgaAddr(), 256})
        .get();
    const Cycle after = soc.sim().cycle();
    soc.sim().attachTrace(nullptr);
    ASSERT_GT(after, before);
    ASSERT_TRUE(sink.hasCategory("cmd"));

    std::ostringstream os;
    sink.writeChromeTrace(os);
    const JsonValue root = parseJson(os.str());
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // The MMIO-level dispatch->completion span must lie inside the
    // invoke's cycle window and cover most of it: the handle returns
    // only after the response crosses back over MMIO.
    const JsonValue *cmd_span = nullptr;
    for (const JsonValue &e : events->array) {
        const JsonValue *cat = e.find("cat");
        const JsonValue *ph = e.find("ph");
        if (cat != nullptr && cat->string == "cmd" && ph != nullptr &&
            ph->string == "X" && e.find("name")->string == "cmd")
            cmd_span = &e;
    }
    ASSERT_NE(cmd_span, nullptr);
    const double ts = cmd_span->find("ts")->number;
    const double dur = cmd_span->find("dur")->number;
    EXPECT_GT(dur, 0.0);
    EXPECT_GE(ts, double(before));
    EXPECT_LE(ts + dur, double(after));
    EXPECT_GT(dur, 0.5 * double(after - before));

    // The same run also produced core-exec and memory-stream spans.
    EXPECT_TRUE(sink.hasCategory("mem"));
}

} // namespace
} // namespace beethoven
