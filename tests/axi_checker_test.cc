/**
 * @file
 * Tests for the AXI protocol checker itself: it must catch each class
 * of violation (fabricated illegal streams) and accept legal ones.
 */

#include <gtest/gtest.h>

#include "axi/timeline.h"

namespace beethoven
{
namespace
{

AxiEvent
ev(Cycle c, AxiChannel ch, u32 id, u64 tag, u32 beats = 0,
   bool last = false)
{
    AxiEvent e;
    e.cycle = c;
    e.channel = ch;
    e.id = id;
    e.tag = tag;
    e.beats = beats;
    e.last = last;
    return e;
}

TEST(AxiChecker, AcceptsLegalRead)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AR, 1, 100, 2),
        ev(5, AxiChannel::R, 1, 100, 0, false),
        ev(6, AxiChannel::R, 1, 100, 0, true),
    };
    EXPECT_EQ(checkAxiProtocol(events), "");
}

TEST(AxiChecker, AcceptsLegalWrite)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AW, 2, 200, 2),
        ev(0, AxiChannel::W, 2, 200, 0, false),
        ev(1, AxiChannel::W, 2, 200, 0, true),
        ev(9, AxiChannel::B, 2, 200),
    };
    EXPECT_EQ(checkAxiProtocol(events), "");
}

TEST(AxiChecker, CatchesOrphanReadBeat)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::R, 1, 100, 0, true),
    };
    EXPECT_NE(checkAxiProtocol(events), "");
}

TEST(AxiChecker, CatchesSameIdReorder)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AR, 1, 100, 1),
        ev(1, AxiChannel::AR, 1, 101, 1),
        // Younger transaction's data first: illegal on one ID.
        ev(5, AxiChannel::R, 1, 101, 0, true),
        ev(6, AxiChannel::R, 1, 100, 0, true),
    };
    const std::string err = checkAxiProtocol(events);
    EXPECT_NE(err.find("same-ID ordering"), std::string::npos) << err;
}

TEST(AxiChecker, AllowsCrossIdReorder)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AR, 1, 100, 1),
        ev(1, AxiChannel::AR, 2, 101, 1),
        ev(5, AxiChannel::R, 2, 101, 0, true),
        ev(6, AxiChannel::R, 1, 100, 0, true),
    };
    EXPECT_EQ(checkAxiProtocol(events), "");
}

TEST(AxiChecker, CatchesWrongLastFlag)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AR, 1, 100, 2),
        ev(5, AxiChannel::R, 1, 100, 0, true), // last too early
    };
    EXPECT_NE(checkAxiProtocol(events).find("last"),
              std::string::npos);
}

TEST(AxiChecker, CatchesMissingLastFlag)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AR, 1, 100, 1),
        ev(5, AxiChannel::R, 1, 100, 0, false), // should be last
    };
    EXPECT_NE(checkAxiProtocol(events), "");
}

TEST(AxiChecker, CatchesEarlyWriteResponse)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::AW, 2, 200, 2),
        ev(0, AxiChannel::W, 2, 200, 0, false),
        ev(1, AxiChannel::B, 2, 200), // before the final W beat
    };
    EXPECT_NE(checkAxiProtocol(events).find("before final W"),
              std::string::npos);
}

TEST(AxiChecker, CatchesOrphanWriteBeat)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::W, 2, 999, 0, true),
    };
    EXPECT_NE(checkAxiProtocol(events), "");
}

TEST(AxiChecker, CatchesOrphanB)
{
    std::vector<AxiEvent> events = {
        ev(0, AxiChannel::B, 2, 999),
    };
    EXPECT_NE(checkAxiProtocol(events), "");
}

TEST(AxiTimeline, RenderProducesRowsPerTransaction)
{
    AxiTimeline tl;
    tl.setEnabled(true);
    tl.record(ev(0, AxiChannel::AR, 1, 100, 2));
    tl.record(ev(5, AxiChannel::R, 1, 100, 0, false));
    tl.record(ev(6, AxiChannel::R, 1, 100, 0, true));
    tl.record(ev(2, AxiChannel::AW, 2, 200, 1));
    tl.record(ev(2, AxiChannel::W, 2, 200, 0, true));
    tl.record(ev(8, AxiChannel::B, 2, 200));
    std::ostringstream os;
    tl.render(os, 60);
    const std::string out = os.str();
    EXPECT_NE(out.find("RD id=1"), std::string::npos);
    EXPECT_NE(out.find("WR id=2"), std::string::npos);
    EXPECT_NE(out.find('A'), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AxiTimeline, DisabledRecordsNothing)
{
    AxiTimeline tl;
    tl.record(ev(0, AxiChannel::AR, 1, 100, 1));
    EXPECT_TRUE(tl.events().empty());
}

} // namespace
} // namespace beethoven
