/**
 * @file
 * Tests for the simulation-platform probing utility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/probe.h"
#include "sim/queue.h"

namespace beethoven
{
namespace
{

TEST(ProbeSet, SamplesEveryPeriod)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 4);
    Cycle ticks = 0;
    probe.add("ramp", [&] { return double(ticks++); });
    sim.run(17);
    // Samples at cycles 0, 4, 8, 12, 16.
    EXPECT_EQ(probe.numSamples(), 5u);
    EXPECT_EQ(probe.trace(0).size(), 5u);
    EXPECT_DOUBLE_EQ(probe.trace(0)[0], 0.0);
    EXPECT_DOUBLE_EQ(probe.trace(0)[4], 4.0);
}

TEST(ProbeSet, TracksQueueOccupancy)
{
    Simulator sim;
    TimedQueue<int> q(sim, 8);
    ProbeSet probe(sim, "probe", 1);
    probe.add("q.occupancy", [&] { return double(q.occupancy()); });
    for (int i = 0; i < 4; ++i)
        q.push(i);
    sim.run(3);
    while (q.canPop())
        q.pop();
    sim.run(3);
    const auto &trace = probe.trace(0);
    EXPECT_DOUBLE_EQ(*std::max_element(trace.begin(), trace.end()),
                     4.0);
    EXPECT_DOUBLE_EQ(trace.back(), 0.0);
}

TEST(ProbeSet, CsvRoundTrip)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 1);
    probe.add("a", [&] { return 1.5; });
    probe.add("b", [&] { return double(sim.cycle()); });
    sim.run(3);
    std::ostringstream os;
    probe.writeCsv(os);
    EXPECT_EQ(os.str(), "cycle,a,b\n0,1.5,0\n1,1.5,1\n2,1.5,2\n");
}

TEST(ProbeSet, SparklinesRenderEverySignal)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 1);
    probe.add("sine-ish", [&] {
        return double((sim.cycle() % 10 < 5) ? sim.cycle() % 10 : 10 -
                      sim.cycle() % 10);
    });
    probe.add("flat", [] { return 3.0; });
    sim.run(100);
    std::ostringstream os;
    probe.renderSparklines(os, 40);
    const std::string out = os.str();
    EXPECT_NE(out.find("sine-ish"), std::string::npos);
    EXPECT_NE(out.find("flat"), std::string::npos);
    EXPECT_NE(out.find("max"), std::string::npos);
}

TEST(ProbeSet, ClearKeepsSignals)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 1);
    probe.add("x", [] { return 1.0; });
    sim.run(5);
    EXPECT_EQ(probe.numSamples(), 5u);
    probe.clear();
    EXPECT_EQ(probe.numSamples(), 0u);
    EXPECT_EQ(probe.numSignals(), 1u);
    sim.run(2);
    EXPECT_EQ(probe.numSamples(), 2u);
}

} // namespace
} // namespace beethoven
