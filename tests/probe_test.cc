/**
 * @file
 * Tests for the simulation-platform probing utility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/probe.h"
#include "sim/queue.h"

namespace beethoven
{
namespace
{

TEST(ProbeSet, SamplesEveryPeriod)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 4);
    Cycle ticks = 0;
    probe.add("ramp", [&] { return double(ticks++); });
    sim.run(17);
    // Samples at cycles 0, 4, 8, 12, 16.
    EXPECT_EQ(probe.numSamples(), 5u);
    EXPECT_EQ(probe.trace(0).size(), 5u);
    EXPECT_DOUBLE_EQ(probe.trace(0)[0], 0.0);
    EXPECT_DOUBLE_EQ(probe.trace(0)[4], 4.0);
}

TEST(ProbeSet, TracksQueueOccupancy)
{
    Simulator sim;
    TimedQueue<int> q(sim, 8);
    ProbeSet probe(sim, "probe", 1);
    probe.add("q.occupancy", [&] { return double(q.occupancy()); });
    for (int i = 0; i < 4; ++i)
        q.push(i);
    sim.run(3);
    while (q.canPop())
        q.pop();
    sim.run(3);
    const auto &trace = probe.trace(0);
    EXPECT_DOUBLE_EQ(*std::max_element(trace.begin(), trace.end()),
                     4.0);
    EXPECT_DOUBLE_EQ(trace.back(), 0.0);
}

TEST(ProbeSet, CsvRoundTrip)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 1);
    probe.add("a", [&] { return 1.5; });
    probe.add("b", [&] { return double(sim.cycle()); });
    sim.run(3);
    std::ostringstream os;
    probe.writeCsv(os);
    EXPECT_EQ(os.str(),
              "# period=1\ncycle,a,b\n0,1.5,0\n1,1.5,1\n2,1.5,2\n");
}

TEST(ProbeSet, CsvEscapesSignalNames)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 2);
    // Names with commas and quotes must round-trip through the CSV
    // header unambiguously: quoted, with embedded quotes doubled.
    probe.add("queue,depth", [] { return 1.0; });
    probe.add("busy \"pct\"", [] { return 2.0; });
    sim.run(1);
    std::ostringstream os;
    probe.writeCsv(os);
    const std::string out = os.str();
    EXPECT_EQ(out, "# period=2\n"
                   "cycle,\"queue,depth\",\"busy \"\"pct\"\"\"\n"
                   "0,1,2\n");

    // Parse the header back with a minimal quote-aware splitter and
    // check the original names reappear.
    std::string header = out.substr(out.find('\n') + 1);
    header = header.substr(0, header.find('\n'));
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < header.size(); ++i) {
        const char c = header[i];
        if (quoted) {
            if (c == '"' && i + 1 < header.size() &&
                header[i + 1] == '"') {
                cur += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                cur += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(cur);
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "cycle");
    EXPECT_EQ(fields[1], "queue,depth");
    EXPECT_EQ(fields[2], "busy \"pct\"");
}

TEST(ProbeSet, SparklinesRenderEverySignal)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 1);
    probe.add("sine-ish", [&] {
        return double((sim.cycle() % 10 < 5) ? sim.cycle() % 10 : 10 -
                      sim.cycle() % 10);
    });
    probe.add("flat", [] { return 3.0; });
    sim.run(100);
    std::ostringstream os;
    probe.renderSparklines(os, 40);
    const std::string out = os.str();
    EXPECT_NE(out.find("sine-ish"), std::string::npos);
    EXPECT_NE(out.find("flat"), std::string::npos);
    EXPECT_NE(out.find("max"), std::string::npos);
}

TEST(ProbeSet, ClearKeepsSignals)
{
    Simulator sim;
    ProbeSet probe(sim, "probe", 1);
    probe.add("x", [] { return 1.0; });
    sim.run(5);
    EXPECT_EQ(probe.numSamples(), 5u);
    probe.clear();
    EXPECT_EQ(probe.numSamples(), 0u);
    EXPECT_EQ(probe.numSignals(), 1u);
    sim.run(2);
    EXPECT_EQ(probe.numSamples(), 2u);
}

} // namespace
} // namespace beethoven
