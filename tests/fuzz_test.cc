/**
 * @file
 * Unit tests for the verification subsystem (src/verify/): random SoC
 * sampling legality, repro JSON round-tripping, the planted-violation
 * catch/shrink/replay loop, and golden-model agreement on hand-built
 * cases for every fuzz kind.
 */

#include <gtest/gtest.h>

#include "verify/fuzz.h"
#include "verify/random_soc.h"
#include "verify/traffic.h"

namespace beethoven
{
namespace
{

using namespace verify;

FuzzCase
tinyCase(FuzzKind kind)
{
    FuzzCase c;
    c.seed = 5;
    FuzzSystem sys;
    sys.kind = kind;
    sys.nCores = 1;
    c.systems.push_back(sys);
    FuzzOp op;
    op.system = 0;
    op.core = 0;
    op.dataSeed = 99;
    op.size = 2;
    c.ops.push_back(op);
    return c;
}

TEST(FuzzHarness, EveryKindMatchesGolden)
{
    FuzzOptions opt;
    for (FuzzKind kind : {FuzzKind::VecAdd, FuzzKind::Memcpy,
                          FuzzKind::SpadLoop, FuzzKind::Gemm}) {
        const FuzzResult r = runFuzzCase(tinyCase(kind), opt);
        EXPECT_EQ(r.kind, FailKind::None)
            << fuzzKindName(kind) << ": " << r.message;
        EXPECT_EQ(r.responses, 1u);
        EXPECT_GT(r.axiEvents, 0u) << fuzzKindName(kind);
    }
}

TEST(FuzzHarness, SampledCasesAreLegal)
{
    // Every sampled composition must elaborate and run clean; this is
    // a miniature of the soc_fuzz smoke with per-case assertions.
    FuzzOptions opt;
    for (u64 seed = 100; seed < 105; ++seed) {
        RandomSocBuilder builder(seed);
        FuzzCase c = builder.sample();
        RandomTrafficGen traffic(seed * 31 + 7);
        traffic.generate(c, /*max_ops=*/4);
        const FuzzResult r = runFuzzCase(c, opt);
        EXPECT_EQ(r.kind, FailKind::None)
            << "seed " << seed << ": " << r.message;
    }
}

TEST(FuzzHarness, JsonRoundTrip)
{
    RandomSocBuilder builder(0xFACE);
    FuzzCase c = builder.sample();
    RandomTrafficGen traffic(0xFACE ^ 1);
    traffic.generate(c, 6);
    // Exercise the extremes the double-based JSON parser cannot hold.
    c.seed = 0xFFFFFFFFFFFFFFFFULL;
    c.ops[0].dataSeed = 0x8000000000000001ULL;

    const std::string json = fuzzCaseToJson(c);
    const FuzzCase back = fuzzCaseFromJson(json);
    EXPECT_EQ(fuzzCaseToJson(back), json);
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.ops[0].dataSeed, c.ops[0].dataSeed);
    EXPECT_EQ(back.systems.size(), c.systems.size());
    EXPECT_EQ(back.ops.size(), c.ops.size());
}

TEST(FuzzHarness, MalformedJsonRejected)
{
    EXPECT_THROW(fuzzCaseFromJson("not json"), ConfigError);
    EXPECT_THROW(fuzzCaseFromJson("{}"), ConfigError);
    EXPECT_THROW(loadReproFile("/nonexistent/repro.json"), ConfigError);
}

TEST(FuzzHarness, PlantedViolationCaughtShrunkAndReplayed)
{
    FuzzOptions opt;
    FuzzCase c = tinyCase(FuzzKind::VecAdd);
    // Some extra bulk for the shrinker to chew through.
    c.ops.push_back(c.ops[0]);
    c.ops.push_back(c.ops[0]);
    c.plantViolation = true;

    const FuzzResult r = runFuzzCase(c, opt);
    ASSERT_EQ(r.kind, FailKind::Violation) << r.message;
    EXPECT_NE(r.message.find("invariant violation"), std::string::npos)
        << r.message;

    unsigned attempts = 0;
    const FuzzCase minimal =
        shrink(c, opt, r.kind, /*max_attempts=*/100, &attempts);
    EXPECT_LE(minimal.systems.size(), c.systems.size());
    EXPECT_LT(minimal.ops.size(), c.ops.size());
    EXPECT_LT(attempts, 100u) << "shrinker failed to converge";

    // The minimized case — and its JSON round-trip, as a replay from a
    // repro file would see it — must reproduce the same failure kind.
    const FuzzResult again = runFuzzCase(minimal, opt);
    EXPECT_EQ(again.kind, FailKind::Violation) << again.message;
    const FuzzResult replay =
        runFuzzCase(fuzzCaseFromJson(fuzzCaseToJson(minimal)), opt);
    EXPECT_EQ(replay.kind, FailKind::Violation) << replay.message;
}

TEST(FuzzHarness, ShrinkPreservesFailureKindNotJustAnyFailure)
{
    // A clean case must shrink to itself: no pass may "find" a failure
    // where none existed.
    FuzzOptions opt;
    FuzzCase c = tinyCase(FuzzKind::Memcpy);
    const FuzzResult r = runFuzzCase(c, opt);
    ASSERT_EQ(r.kind, FailKind::None) << r.message;
    // (shrink() is only defined for failing kinds; nothing to do here —
    // this documents the contract.)
}

TEST(FuzzHarness, BuildErrorClassified)
{
    FuzzOptions opt;
    FuzzCase c; // no systems: elaboration must reject it
    c.seed = 1;
    const FuzzResult r = runFuzzCase(c, opt);
    EXPECT_EQ(r.kind, FailKind::BuildError);
    EXPECT_FALSE(r.message.empty());
}

} // namespace
} // namespace beethoven
