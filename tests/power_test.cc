/**
 * @file
 * Power/energy telemetry tests (DESIGN.md §4f): exact component-to-SoC
 * energy conservation, the zero-activity static floor against the
 * resource-based PowerModel, per-SLR aggregation against the
 * floorplan placement, the beethoven-power-1 schema round-trip, the
 * planted-leak oracle, and the non-interference guarantee (a metered
 * run's stats digest is bit-identical to an unmetered one).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/vecadd.h"
#include "base/json.h"
#include "base/log.h"
#include "base/rng.h"
#include "core/soc.h"
#include "platform/aws_f1.h"
#include "platform/sim_platform.h"
#include "power/power.h"
#include "power/power_json.h"
#include "runtime/fpga_handle.h"
#include "trace/trace.h"

namespace beethoven
{
namespace
{

/** Run the canonical two-core vecadd workload on @p soc. */
void
runVecAdd(AcceleratorSoc &soc, u64 seed)
{
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    Rng rng(seed);
    const unsigned n = 128;
    std::vector<remote_ptr> bufs;
    for (unsigned c = 0; c < 2; ++c) {
        remote_ptr mem = handle.malloc(n * sizeof(u32));
        auto *vals = mem.as<u32>();
        for (unsigned i = 0; i < n; ++i)
            vals[i] = static_cast<u32>(rng.next());
        handle.copy_to_fpga(mem);
        bufs.push_back(mem);
    }
    std::vector<response_handle<u64>> handles;
    for (unsigned c = 0; c < 2; ++c) {
        handles.push_back(handle.invoke(
            "MyAcceleratorSystem", "my_accel", c,
            {seed & 0xFFFF, bufs[c].getFpgaAddr(), n}));
    }
    for (auto &h : handles)
        h.get();
}

double
componentSum(const PowerLedger &ledger, Cycle cycle)
{
    double j = 0.0;
    for (std::size_t i = 0; i < ledger.numComponents(); ++i)
        j += ledger.componentJoules(i, cycle);
    return j;
}

// ---- conservation --------------------------------------------------

TEST(PowerLedger, ComponentEnergiesSumExactlyToSocTotal)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(2)),
                       platform);
    runVecAdd(soc, 0xC0FFEE);
    const Cycle end = soc.sim().cycle();
    ASSERT_GT(end, 0u);
    PowerLedger &ledger = soc.power();
    ASSERT_GT(ledger.numComponents(), 0u);

    // Bit-exact, not approximate: totalJoules is defined as the
    // ordered sum of the component energies.
    EXPECT_EQ(ledger.totalJoules(end), componentSum(ledger, end));
    EXPECT_EQ(ledger.totalJoules(end / 2), componentSum(ledger, end / 2));
    EXPECT_EQ(ledger.totalJoules(0), componentSum(ledger, 0));

    // The run did real work, so dynamic energy exceeds the floor.
    EXPECT_GT(ledger.totalJoules(end),
              ledger.staticWatts() * ledger.seconds(end));
}

TEST(PowerLedger, ZeroActivityEqualsStaticFloor)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(2)),
                       platform);
    const PowerLedger &ledger = soc.power();

    // Before anything ticks there is no energy at all.
    EXPECT_EQ(ledger.totalJoules(0), 0.0);

    // The static floor reproduces the resource-based estimate every
    // bench prints: watts(totalUsed + totalShell). The tolerance only
    // absorbs floating-point summation order.
    const double floor_watts = ledger.staticWatts();
    const double model_watts = platform.powerModel().watts(
        soc.floorplan().totalUsed() + soc.floorplan().totalShell());
    EXPECT_NEAR(floor_watts, model_watts, 1e-9 * model_watts);
}

TEST(PowerLedger, PlantedLeakTripsConservationInvariant)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(1)),
                       platform);
    PowerLedger &ledger = soc.power();
    EnergyConservationInvariant inv(ledger);
    soc.sim().run(300);
    EXPECT_NO_THROW(inv.check(soc.sim().cycle()));

    ledger.plantEnergyLeak(0.5);
    EXPECT_EQ(ledger.plantedLeakJoules(), 0.5);
    EXPECT_THROW(inv.check(soc.sim().cycle()), ConfigError);
}

// ---- per-SLR aggregation -------------------------------------------

TEST(PowerLedger, PerSlrAggregationMatchesFloorplanPlacement)
{
    // F1 has three SLRs; eight cores spread across them.
    AwsF1Platform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(8)),
                       platform);
    const PowerLedger &ledger = soc.power();
    const auto &placed = soc.floorplan().placedCores();
    ASSERT_EQ(placed.size(), 8u);

    // The first 8 ledger components are the cores, in placement order;
    // each carries the SLR the floorplanner chose for it. The ledger
    // names cores "Sys.coreN" where the floorplan uses "Sys_coreN".
    for (std::size_t i = 0; i < placed.size(); ++i) {
        std::string name = ledger.component(i).name;
        for (char &ch : name)
            if (ch == '.')
                ch = '_';
        EXPECT_EQ(name, placed[i].name);
        EXPECT_EQ(ledger.component(i).slr, placed[i].slr);
    }

    // A recorded run's per-SLR watts are exactly the per-component
    // watts regrouped by SLR.
    soc.sim().run(4096);
    PowerMeter meter(1024);
    soc.sim().attachPowerMeter(&meter);
    meter.recordRun(soc.sim(), "slr-agg");
    ASSERT_EQ(meter.runs().size(), 1u);
    const PowerRunRecord &run = meter.runs()[0];
    ASSERT_EQ(run.slrWatts.size(), 3u);
    std::vector<double> expect(run.slrWatts.size(), 0.0);
    for (const PowerComponentRecord &c : run.components) {
        ASSERT_LT(c.slr, expect.size());
        expect[c.slr] += c.avgWatts;
    }
    for (std::size_t s = 0; s < expect.size(); ++s)
        EXPECT_EQ(run.slrWatts[s], expect[s]) << "slr " << s;
    // Multi-die placement really happened: more than one SLR draws
    // core power.
    unsigned populated = 0;
    for (double w : expect)
        populated += w > 0.0 ? 1 : 0;
    EXPECT_GT(populated, 1u);
}

// ---- windowed sampling ---------------------------------------------

TEST(PowerMeter, EmitsWindowedCounterTracks)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(1)),
                       platform);
    TraceSink sink;
    PowerMeter meter(256);
    meter.attachTrace(&sink);
    soc.sim().attachPowerMeter(&meter);
    soc.sim().run(1024);
    // The meter baselines itself on its first onCycle (cycle 1), so a
    // 1024-cycle run with a 256-cycle window samples at cycles 257,
    // 513 and 769: three windows of (components + soc total) tracks.
    const std::size_t per_window = soc.power().numComponents() + 1;
    EXPECT_EQ(sink.numEvents(), 3 * per_window);
}

TEST(PowerMeter, RecordRunCapturesEnergyPerOp)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(2)),
                       platform);
    PowerMeter meter;
    soc.sim().attachPowerMeter(&meter);
    runVecAdd(soc, 0xBEEF);
    meter.recordRun(soc.sim(), "vecadd", /*ops=*/256.0);
    meter.addReference("ref", 320.0, 5.0e6);

    const PowerRunRecord *run = meter.report().find("vecadd");
    ASSERT_NE(run, nullptr);
    EXPECT_GT(run->joules, 0.0);
    EXPECT_GT(run->avgWatts, 0.0);
    EXPECT_GE(run->peakWatts, run->avgWatts);
    EXPECT_EQ(run->energyPerOpUj(), run->joules / 256.0 * 1e6);

    const PowerRunRecord *ref = meter.report().find("ref");
    ASSERT_NE(ref, nullptr);
    EXPECT_TRUE(ref->reference);
    EXPECT_EQ(ref->energyPerOpUj(), 320.0 / 5.0e6 * 1e6);
}

// ---- schema round-trip ---------------------------------------------

TEST(PowerJson, SchemaRoundTripIsExact)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(2)),
                       platform);
    PowerMeter meter(512);
    soc.sim().attachPowerMeter(&meter);
    runVecAdd(soc, 0xF00D);
    meter.recordRun(soc.sim(), "rt", /*ops=*/256.0);
    meter.addReference("GPU (paper)", 320.0, 5.0e6);

    std::ostringstream os;
    writePowerReportJson(os, meter.report());
    const PowerReport parsed = parsePowerReport(parseJson(os.str()));

    const PowerReport &orig = meter.report();
    EXPECT_EQ(parsed.windowCycles, 512.0);
    ASSERT_EQ(parsed.runs.size(), orig.runs.size());
    for (std::size_t i = 0; i < orig.runs.size(); ++i) {
        const PowerRunRecord &a = orig.runs[i];
        const PowerRunRecord &b = parsed.runs[i];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.reference, b.reference);
        EXPECT_EQ(a.clockMhz, b.clockMhz);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.joules, b.joules);
        EXPECT_EQ(a.avgWatts, b.avgWatts);
        EXPECT_EQ(a.peakWatts, b.peakWatts);
        EXPECT_EQ(a.staticWatts, b.staticWatts);
        EXPECT_EQ(a.ops, b.ops);
        EXPECT_EQ(a.opsPerSec, b.opsPerSec);
        ASSERT_EQ(a.slrWatts.size(), b.slrWatts.size());
        for (std::size_t s = 0; s < a.slrWatts.size(); ++s)
            EXPECT_EQ(a.slrWatts[s], b.slrWatts[s]);
        ASSERT_EQ(a.components.size(), b.components.size());
        for (std::size_t c = 0; c < a.components.size(); ++c) {
            EXPECT_EQ(a.components[c].name, b.components[c].name);
            EXPECT_EQ(a.components[c].slr, b.components[c].slr);
            EXPECT_EQ(a.components[c].joules, b.components[c].joules);
            EXPECT_EQ(a.components[c].avgWatts,
                      b.components[c].avgWatts);
            EXPECT_EQ(a.components[c].peakWatts,
                      b.components[c].peakWatts);
        }
    }
}

TEST(PowerJson, ParserRejectsWrongSchema)
{
    EXPECT_THROW(parsePowerReport(parseJson("{\"schema\":\"bogus\"}")),
                 ConfigError);
    EXPECT_THROW(parsePowerReport(parseJson("{}")), ConfigError);
    EXPECT_THROW(parsePowerReport(parseJson("[1,2]")), ConfigError);
}

// ---- non-interference ----------------------------------------------

/** Stats-tree JSON + final cycle, with or without a metered run. */
std::string
vecAddStatsDigest(u64 seed, bool with_meter)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(AcceleratorConfig(VecAddCore::systemConfig(2)),
                       platform);
    // A small window so even this short run crosses several samples.
    TraceSink power_sink;
    PowerMeter meter(16);
    if (with_meter) {
        meter.attachTrace(&power_sink);
        soc.sim().attachPowerMeter(&meter);
    }
    runVecAdd(soc, seed);
    if (with_meter) {
        meter.recordRun(soc.sim(), "digest", 256.0);
        // The meter really sampled the run.
        EXPECT_GT(power_sink.numEvents(), 0u);
    }
    soc.sim().publishStallStats();
    std::ostringstream os;
    soc.sim().stats().dumpJson(os);
    os << "@" << soc.sim().cycle();
    return os.str();
}

TEST(PowerMeter, MeteredRunIsBitIdenticalToUnmetered)
{
    const std::string plain = vecAddStatsDigest(0xD5EED, false);
    const std::string metered = vecAddStatsDigest(0xD5EED, true);
    EXPECT_FALSE(plain.empty());
    EXPECT_EQ(plain, metered);
}

} // namespace
} // namespace beethoven
