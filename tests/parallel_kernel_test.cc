/**
 * @file
 * Parallel-kernel unit tests: split-queue mailbox semantics (pushes
 * park until the barrier, pop credits return exactly there, the
 * producer mirror keeps canPush() exact so an epoch can never tear),
 * epoch sizing from the minimum cross-group queue latency, the
 * host/SLR/memory partition on the paper's AWS F1 composition, worker
 * thread clamping, serial-fence merged cycles, and the observability
 * gates (trace/power refuse to start multi-threaded).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "accel/machsuite/gemm.h"
#include "base/log.h"
#include "base/rng.h"
#include "baselines/machsuite_golden.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"
#include "sim/parallel.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace beethoven
{
namespace
{

/** Inert module: split queues only need producer/consumer identity. */
class Dummy : public Module
{
  public:
    Dummy(Simulator &sim, std::string name)
        : Module(sim, std::move(name))
    {}
    void tick() override {}
};

/** Recording SplitDrainHost standing in for the epoch coordinator. */
class FakeDrainHost : public SplitDrainHost
{
  public:
    explicit FakeDrainHost(Cycle barrier) : _barrier(barrier) {}

    Cycle barrierCycle() const override { return _barrier; }
    void
    armWake(Module *m, Cycle at) override
    {
        wakes.emplace_back(m, at);
    }
    void noteSlack(std::size_t s) override { slack = s; }

    std::vector<std::pair<Module *, Cycle>> wakes;
    std::size_t slack = static_cast<std::size_t>(-1);

  private:
    Cycle _barrier;
};

// --- Split-queue mailbox semantics ---------------------------------

TEST(SplitQueue, MailboxParksPushesUntilBarrier)
{
    Simulator sim;
    Dummy consumer(sim, "consumer");
    TimedQueue<int> q(sim, /*capacity=*/8, /*latency=*/4);
    q.setWakeOnPush(&consumer);
    ASSERT_TRUE(q.enterSplitMode());

    // The push is held on the producer's side: occupancy (the mirror)
    // grows immediately, but nothing is poppable before the drain.
    q.push(42);
    EXPECT_EQ(q.occupancy(), 1u);
    EXPECT_FALSE(q.canPop());

    FakeDrainHost host(/*barrier=*/4);
    q.drainSplit(host);

    // Identical visibility to the serial commit: pushed at cycle 0
    // with latency 4 means poppable at cycle 4, and the consumer's
    // wake is armed for exactly that cycle.
    ASSERT_EQ(host.wakes.size(), 1u);
    EXPECT_EQ(host.wakes[0].first, &consumer);
    EXPECT_EQ(host.wakes[0].second, 4u);
    EXPECT_EQ(host.slack, 7u);

    sim.run(4);
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 42);
}

TEST(SplitQueue, DrainDeliversInPushOrderWithPerPushVisibility)
{
    Simulator sim;
    Dummy consumer(sim, "consumer");
    TimedQueue<int> q(sim, /*capacity=*/8, /*latency=*/2);
    q.setWakeOnPush(&consumer);
    ASSERT_TRUE(q.enterSplitMode());

    // One push per cycle (the split-mode contract) across an epoch of
    // length 2: each entry keeps its own push-cycle + latency ready
    // time, not the barrier's.
    q.push(1);
    sim.run(1);
    q.push(2);
    sim.run(1); // now at cycle 2

    FakeDrainHost host(/*barrier=*/2);
    q.drainSplit(host);
    ASSERT_EQ(host.wakes.size(), 2u);
    EXPECT_EQ(host.wakes[0].second, 2u); // pushed @0, ready @2
    EXPECT_EQ(host.wakes[1].second, 3u); // pushed @1, ready @3

    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.canPop()) << "second entry must wait for cycle 3";
    sim.run(1);
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 2);
}

TEST(SplitQueue, PopCreditsReturnAtBarrierAndWakeProducer)
{
    Simulator sim;
    Dummy producer(sim, "producer");
    TimedQueue<int> q(sim, /*capacity=*/2, /*latency=*/2);
    q.setWakeOnPop(&producer);
    ASSERT_TRUE(q.enterSplitMode());

    q.push(7);
    sim.run(1);
    q.push(8);
    // Mirror is exact: the queue is full from the producer's view the
    // instant of the second push, with no barrier in between. This is
    // the torn-epoch regression — a stale occupancy here would let a
    // third push overflow the capacity-2 queue mid-epoch.
    EXPECT_FALSE(q.canPush());

    sim.run(1); // cycle 2: both entries delivered by the drain below
    FakeDrainHost deliver(/*barrier=*/2);
    q.drainSplit(deliver);
    EXPECT_EQ(deliver.slack, 0u) << "full queue must report zero slack";

    // Consumer-side pops stay epoch-local; the credit (and the
    // producer's pop wake) crosses back at the next barrier only.
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 7);
    EXPECT_FALSE(q.canPush()) << "credit must not cross mid-epoch";

    sim.run(1);
    FakeDrainHost credit(/*barrier=*/3);
    q.drainSplit(credit);
    EXPECT_TRUE(q.canPush());
    EXPECT_EQ(credit.slack, 1u);
    ASSERT_EQ(credit.wakes.size(), 1u);
    EXPECT_EQ(credit.wakes[0].first, &producer);
    EXPECT_EQ(credit.wakes[0].second, 3u);
}

// --- Whole-SoC partition, epoch sizing, and gates ------------------

/**
 * The paper's fig. 6 shape: four gemm cores floorplanned across the
 * AWS F1 SLRs. Runs one gemm end to end under the parallel kernel and
 * returns the SoC so the test can inspect the runtime's partition.
 */
void
runGemmOnF1(AcceleratorSoc &soc)
{
    using machsuite::GemmCore;
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    const unsigned n = 16;
    Rng rng(n);
    std::vector<i32> a(n * n), bt(n * n);
    for (auto &v : a)
        v = static_cast<i32>(rng.nextRange(0, 200)) - 100;
    for (auto &v : bt)
        v = static_cast<i32>(rng.nextRange(0, 200)) - 100;
    remote_ptr a_mem = handle.malloc(n * n * 4);
    remote_ptr bt_mem = handle.malloc(n * n * 4);
    remote_ptr c_mem = handle.malloc(n * n * 4);
    std::memcpy(a_mem.getHostAddr(), a.data(), n * n * 4);
    std::memcpy(bt_mem.getHostAddr(), bt.data(), n * n * 4);
    handle.copy_to_fpga(a_mem);
    handle.copy_to_fpga(bt_mem);
    handle
        .invoke("GemmSystem", "gemm", 0,
                {a_mem.getFpgaAddr(), bt_mem.getFpgaAddr(),
                 c_mem.getFpgaAddr(), n})
        .get();
    handle.copy_from_fpga(c_mem);

    const auto golden = machsuite::goldenGemm(a, bt, n);
    const i32 *c = c_mem.as<i32>();
    for (unsigned i = 0; i < n * n; ++i)
        EXPECT_EQ(c[i], golden[i]) << "idx=" << i;
}

TEST(ParallelKernel, F1PartitionEpochSizingAndMergedFences)
{
    using machsuite::GemmCore;
    AwsF1Platform platform;
    AcceleratorConfig cfg;
    cfg.systems.push_back(GemmCore::systemConfig(4));
    AcceleratorSoc soc(std::move(cfg), platform);
    soc.sim().setKernel(SimKernel::Parallel);
    soc.sim().setParallelThreads(2);
    runGemmOnF1(soc);

    const ParallelRuntime *rt = soc.sim().parallelRuntime();
    ASSERT_NE(rt, nullptr) << "first parallel step must build the runtime";

    // Host, SLR fabric, and memory shards partition into execution
    // groups; sub-2-cycle edges merge their endpoints, everything else
    // stays separate and communicates through split queues.
    EXPECT_GE(rt->groupCount(), 2u);
    EXPECT_GT(rt->splitQueueCount(), 0u);
    EXPECT_EQ(rt->workerCount(), 2u);

    // Epoch quantum = min latency over cross-group queues. Every
    // cross-group edge must be epoch-bufferable (latency >= 2), and on
    // AWS F1 no crossing is slower than the SLR hop.
    const NocParams noc = platform.nocParams();
    EXPECT_GE(rt->epochQuantum(), 2u);
    EXPECT_LE(rt->epochQuantum(), noc.slrCrossingLatency);
    EXPECT_GE(rt->lastEpochLength(), 1u);
    EXPECT_LE(rt->lastEpochLength(), rt->epochQuantum());

    // Host DMA raised the serial fence, so part of the run stepped in
    // merged single-cycle mode — and the fence must have released
    // (the gemm completed above), so not all of it did.
    EXPECT_GT(rt->mergedCycleCount(), 0u);
    EXPECT_LT(rt->mergedCycleCount(), soc.sim().cycle());
}

TEST(ParallelKernel, ThreadCountClampsToGroupCount)
{
    using machsuite::GemmCore;
    AwsF1Platform platform;
    AcceleratorConfig cfg;
    cfg.systems.push_back(GemmCore::systemConfig(4));
    AcceleratorSoc soc(std::move(cfg), platform);
    soc.sim().setKernel(SimKernel::Parallel);
    soc.sim().setParallelThreads(64);
    runGemmOnF1(soc);

    const ParallelRuntime *rt = soc.sim().parallelRuntime();
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->workerCount(), rt->groupCount())
        << "threads beyond the group count must be clamped away";
}

TEST(ParallelKernel, UnstampedGraphRunsAsSingleGroup)
{
    // A bare Simulator (no AcceleratorSoc, so no shard stamps at all)
    // must degenerate to one group — the event kernel on a single
    // worker — rather than fatal. Only partial stamping is an error.
    Simulator sim;
    Dummy a(sim, "a");
    Dummy b(sim, "b");
    sim.setKernel(SimKernel::Parallel);
    sim.setParallelThreads(4);
    sim.run(16);

    const ParallelRuntime *rt = sim.parallelRuntime();
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->groupCount(), 1u);
    EXPECT_EQ(rt->workerCount(), 1u);
    EXPECT_EQ(rt->splitQueueCount(), 0u);
    EXPECT_EQ(sim.cycle(), 16u);
}

TEST(ParallelKernel, RefusesSerialOnlyObservability)
{
    // A TraceSink appends to one buffer from every group; the runtime
    // must refuse to start rather than race on it.
    using machsuite::GemmCore;
    AwsF1Platform platform;
    AcceleratorConfig cfg;
    cfg.systems.push_back(GemmCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    TraceSink sink;
    soc.sim().attachTrace(&sink);
    soc.sim().setKernel(SimKernel::Parallel);
    EXPECT_THROW(soc.sim().run(1), ConfigError);
}

} // namespace
} // namespace beethoven
