/**
 * @file
 * End-to-end integration test: the Fig. 2/3 vector-add accelerator,
 * elaborated and driven through the full software stack (allocator,
 * DMA, RoCC command packing, MMIO dispatch, response polling).
 */

#include <gtest/gtest.h>

#include "accel/vecadd.h"
#include "platform/aws_f1.h"
#include "platform/kria.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"
#include "soc_check.h"

namespace beethoven
{
namespace
{

void
runVecAdd(const Platform &platform, unsigned n_cores, unsigned n_eles)
{
    AcceleratorConfig cfg(VecAddCore::systemConfig(n_cores));
    AcceleratorSoc soc(std::move(cfg), platform);
    ScopedSocCheck check(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    std::vector<remote_ptr> bufs;
    for (unsigned c = 0; c < n_cores; ++c) {
        remote_ptr mem = handle.malloc(n_eles * sizeof(u32));
        auto *vals = mem.as<u32>();
        for (unsigned i = 0; i < n_eles; ++i)
            vals[i] = i * 7 + c;
        handle.copy_to_fpga(mem);
        bufs.push_back(mem);
    }

    std::vector<response_handle<u64>> handles;
    for (unsigned c = 0; c < n_cores; ++c) {
        handles.push_back(handle.invoke(
            "MyAcceleratorSystem", "my_accel", c,
            {0xCAFE, bufs[c].getFpgaAddr(), n_eles}));
    }
    for (auto &h : handles)
        h.get();

    for (unsigned c = 0; c < n_cores; ++c) {
        handle.copy_from_fpga(bufs[c]);
        const auto *vals = bufs[c].as<u32>();
        for (unsigned i = 0; i < n_eles; ++i) {
            ASSERT_EQ(vals[i], i * 7 + c + 0xCAFE)
                << "core " << c << " element " << i;
        }
    }
    check.finish();
}

TEST(VecAddE2E, SingleCoreSimulationPlatform)
{
    SimulationPlatform platform;
    runVecAdd(platform, 1, 256);
}

TEST(VecAddE2E, SingleCoreKria)
{
    KriaPlatform platform;
    runVecAdd(platform, 1, 128);
}

TEST(VecAddE2E, FourCoresAwsF1)
{
    AwsF1Platform platform;
    runVecAdd(platform, 4, 256);
}

TEST(VecAddE2E, OddLengths)
{
    SimulationPlatform platform;
    // Exercise non-power-of-two and sub-burst lengths.
    for (unsigned n : {1u, 3u, 15u, 17u, 63u, 65u, 255u})
        runVecAdd(platform, 1, n);
}

TEST(VecAddE2E, MultipleSequentialCommands)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    ScopedSocCheck check(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    remote_ptr mem = handle.malloc(64 * sizeof(u32));
    auto *vals = mem.as<u32>();
    for (unsigned i = 0; i < 64; ++i)
        vals[i] = i;
    handle.copy_to_fpga(mem);

    // Three accumulating rounds on the same buffer.
    for (unsigned round = 0; round < 3; ++round) {
        handle
            .invoke("MyAcceleratorSystem", "my_accel", 0,
                    {100, mem.getFpgaAddr(), 64})
            .get();
    }
    handle.copy_from_fpga(mem);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(mem.as<u32>()[i], i + 300);
    check.finish();
}

TEST(VecAddE2E, TryGetEventuallySucceeds)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    ScopedSocCheck check(soc);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    remote_ptr mem = handle.malloc(1024);
    handle.copy_to_fpga(mem);
    auto h = handle.invoke("MyAcceleratorSystem", "my_accel", 0,
                           {1, mem.getFpgaAddr(), 256});
    std::size_t polls = 0;
    for (;;) {
        if (h.try_get())
            break;
        ++polls;
        ASSERT_LT(polls, 100000u) << "response never arrived";
        soc.sim().run(100);
    }
    check.finish();
}

} // namespace
} // namespace beethoven
