/**
 * @file
 * Tests for the runtime's multi-tenancy behaviour (Section II-C1/C2):
 * "This separation between the FPGA interfaces and user processes
 * helps ensure correctness" and "ensures that separate processes can
 * utilize the FPGA kernels and make allocations without memory
 * conflicts." Two fpga_handle_t instances (modeling two processes)
 * share one RuntimeServer: their allocations must not overlap and
 * their commands must interleave correctly through the arbitration
 * point.
 */

#include <gtest/gtest.h>

#include "accel/vecadd.h"
#include "core/config.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

TEST(MultiProcess, AllocationsNeverOverlap)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t proc_a(server);
    fpga_handle_t proc_b(server);

    std::vector<std::pair<Addr, std::size_t>> spans;
    for (int i = 0; i < 16; ++i) {
        remote_ptr pa = proc_a.malloc(1000 + i * 64);
        remote_ptr pb = proc_b.malloc(500 + i * 128);
        spans.emplace_back(pa.getFpgaAddr(), pa.size());
        spans.emplace_back(pb.getFpgaAddr(), pb.size());
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
        for (std::size_t j = i + 1; j < spans.size(); ++j) {
            const bool disjoint =
                spans[i].first + spans[i].second <= spans[j].first ||
                spans[j].first + spans[j].second <= spans[i].first;
            ASSERT_TRUE(disjoint) << "allocations " << i << " and "
                                  << j << " overlap";
        }
    }
}

TEST(MultiProcess, InterleavedCommandsResolveToTheRightCaller)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(2));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t proc_a(server);
    fpga_handle_t proc_b(server);

    remote_ptr buf_a = proc_a.malloc(256);
    remote_ptr buf_b = proc_b.malloc(256);
    auto *va = buf_a.as<u32>();
    auto *vb = buf_b.as<u32>();
    for (unsigned i = 0; i < 64; ++i) {
        va[i] = i;
        vb[i] = 1000 + i;
    }
    proc_a.copy_to_fpga(buf_a);
    proc_b.copy_to_fpga(buf_b);

    // Each "process" drives its own core; responses must route back to
    // the issuing handle even though the MMIO path is shared.
    auto ha = proc_a.invoke("MyAcceleratorSystem", "my_accel", 0,
                            {10, buf_a.getFpgaAddr(), 64});
    auto hb = proc_b.invoke("MyAcceleratorSystem", "my_accel", 1,
                            {20, buf_b.getFpgaAddr(), 64});
    hb.get();
    ha.get();
    proc_a.copy_from_fpga(buf_a);
    proc_b.copy_from_fpga(buf_b);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(va[i], i + 10);
        EXPECT_EQ(vb[i], 1000 + i + 20);
    }
}

TEST(MultiProcess, FreeFromOneHandleServesTheOther)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t proc_a(server);
    fpga_handle_t proc_b(server);

    const u64 before = server.allocator().bytesAllocated();
    remote_ptr big = proc_a.malloc(8_MiB);
    EXPECT_GE(server.allocator().bytesAllocated(), before + 8_MiB);
    proc_a.free(big);
    EXPECT_EQ(server.allocator().bytesAllocated(), before);
    remote_ptr other = proc_b.malloc(8_MiB);
    EXPECT_GE(other.size(), 8_MiB);
}

TEST(AppendixMemory, ManualMemoryMapsToScratchpad)
{
    // Appendix A's Memory(latency, dataWidth, nRows, ...) signature.
    const ScratchpadConfig cfg = Memory("lut", 2, 36, 4096, 1, 1);
    EXPECT_EQ(cfg.name, "lut");
    EXPECT_EQ(cfg.latency, 2u);
    EXPECT_EQ(cfg.dataWidthBits, 36u);
    EXPECT_EQ(cfg.nDatas, 4096u);
    EXPECT_EQ(cfg.nPorts, 2u);
    EXPECT_FALSE(cfg.supportsInit);
}

} // namespace
} // namespace beethoven
