/**
 * @file
 * Tests for the SLR-aware tree networks: delivery, fairness, write
 * burst locking, routing, crossing latency, and construction stats.
 */

#include <gtest/gtest.h>

#include <map>

#include "axi/axi_types.h"
#include "noc/tree.h"

namespace beethoven
{
namespace
{

struct Flit
{
    std::size_t src = 0;
    std::size_t dst = 0;
    unsigned seq = 0;
};

TEST(MuxTree, DeliversEverythingFromManyEndpoints)
{
    Simulator sim;
    TimedQueue<Flit> out(sim, 4);
    const std::vector<unsigned> slrs = {0, 0, 1, 1, 2, 2, 2, 1};
    NocParams params;
    MuxTree<Flit> tree(sim, "mux", slrs, 1, params, &out);

    std::map<std::size_t, unsigned> sent;
    std::size_t received = 0;
    std::map<std::size_t, unsigned> last_seen;
    const Cycle start = sim.cycle();
    // Interleave pushing and draining: the root output must be popped
    // or the tree backpressures all the way to the endpoints.
    while (received < slrs.size() * 5 &&
           sim.cycle() - start < 10000) {
        for (std::size_t e = 0; e < slrs.size(); ++e) {
            if (sent[e] < 5 && tree.endpointPort(e).canPush())
                tree.endpointPort(e).push({e, 0, sent[e]++});
        }
        if (out.canPop()) {
            const Flit f = out.pop();
            // Per-source order must be preserved.
            auto it = last_seen.find(f.src);
            if (it != last_seen.end()) {
                EXPECT_GT(f.seq, it->second);
            }
            last_seen[f.src] = f.seq;
            ++received;
        }
        sim.step();
    }
    EXPECT_EQ(received, slrs.size() * 5);
}

TEST(MuxTree, RoundRobinIsFair)
{
    Simulator sim;
    TimedQueue<Flit> out(sim, 2);
    const std::vector<unsigned> slrs = {0, 0, 0, 0};
    NocParams params;
    MuxTree<Flit> tree(sim, "mux", slrs, 0, params, &out);

    // Saturate all endpoints and count deliveries per source.
    std::map<std::size_t, unsigned> sent, delivered;
    for (Cycle c = 0; c < 400; ++c) {
        for (std::size_t e = 0; e < slrs.size(); ++e) {
            if (tree.endpointPort(e).canPush()) {
                tree.endpointPort(e).push({e, 0, sent[e]++});
            }
        }
        if (out.canPop())
            ++delivered[out.pop().src];
        sim.step();
    }
    unsigned min = ~0u, max = 0;
    for (std::size_t e = 0; e < slrs.size(); ++e) {
        min = std::min(min, delivered[e]);
        max = std::max(max, delivered[e]);
    }
    EXPECT_GT(min, 0u);
    EXPECT_LE(max - min, max / 4 + 2) << "arbitration is unfair";
}

TEST(MuxTree, WriteFlitBurstsStayContiguous)
{
    Simulator sim;
    TimedQueue<WriteFlit> out(sim, 2);
    const std::vector<unsigned> slrs = {0, 0};
    NocParams params;
    MuxTree<WriteFlit, WriteFlitLock> tree(sim, "wmux", slrs, 0, params,
                                           &out, WriteFlitLock{});

    // Two endpoints each stream a 4-beat burst concurrently.
    auto push_burst = [&](std::size_t e, u64 tag, unsigned &beat) {
        if (beat >= 4 || !tree.endpointPort(e).canPush())
            return;
        WriteFlit f;
        if (beat == 0) {
            f.hasHeader = true;
            f.header.tag = tag;
            f.header.beats = 4;
        }
        f.beat.last = beat == 3;
        f.beat.data.assign(1, static_cast<u8>(tag));
        tree.endpointPort(e).push(std::move(f));
        ++beat;
    };
    unsigned beats0 = 0, beats1 = 0;
    std::vector<u8> arrival;
    for (Cycle c = 0; c < 200; ++c) {
        push_burst(0, 10, beats0);
        push_burst(1, 20, beats1);
        if (out.canPop())
            arrival.push_back(out.pop().beat.data[0]);
        sim.step();
    }
    ASSERT_EQ(arrival.size(), 8u);
    // All four beats of one burst must be contiguous.
    for (unsigned i = 1; i < 4; ++i)
        EXPECT_EQ(arrival[i], arrival[0]);
    for (unsigned i = 5; i < 8; ++i)
        EXPECT_EQ(arrival[i], arrival[4]);
    EXPECT_NE(arrival[0], arrival[4]);
}

TEST(DemuxTree, RoutesByKey)
{
    Simulator sim;
    const std::vector<unsigned> slrs = {0, 1, 2, 2, 1};
    NocParams params;
    DemuxTree<Flit> tree(sim, "demux", slrs, 0, params,
                         [](const Flit &f) { return f.dst; });
    for (std::size_t d = 0; d < slrs.size(); ++d) {
        while (!tree.rootPort().canPush())
            sim.step();
        tree.rootPort().push({0, d, static_cast<unsigned>(d)});
        sim.step();
    }
    std::size_t received = 0;
    const Cycle start = sim.cycle();
    while (received < slrs.size() && sim.cycle() - start < 1000) {
        for (std::size_t e = 0; e < slrs.size(); ++e) {
            if (tree.endpointPort(e).canPop()) {
                EXPECT_EQ(tree.endpointPort(e).pop().dst, e);
                ++received;
            }
        }
        sim.step();
    }
    EXPECT_EQ(received, slrs.size());
}

TEST(Trees, CrossSlrPathIsSlower)
{
    // Endpoint on the root SLR vs endpoint across a crossing: the
    // remote one must see strictly higher latency.
    auto latency_to = [](unsigned endpoint_slr) {
        Simulator sim;
        TimedQueue<Flit> out(sim, 4);
        NocParams params;
        params.slrCrossingLatency = 6;
        const std::vector<unsigned> slrs = {endpoint_slr};
        MuxTree<Flit> tree(sim, "mux", slrs, 0, params, &out);
        tree.endpointPort(0).push({0, 0, 1});
        const Cycle start = sim.cycle();
        while (!out.canPop()) {
            sim.step();
            if (sim.cycle() - start > 100)
                break;
        }
        return sim.cycle() - start;
    };
    EXPECT_LT(latency_to(0), latency_to(2));
    EXPECT_GE(latency_to(2), 6u);
}

TEST(Trees, StatsCountNodesAndCrossings)
{
    Simulator sim;
    TimedQueue<Flit> out(sim, 4);
    NocParams params;
    params.fanout = 2;
    const std::vector<unsigned> slrs = {0, 0, 0, 0, 1, 1, 2};
    MuxTree<Flit> tree(sim, "mux", slrs, 0, params, &out);
    // Root + per-SLR subtrees; SLR1 and SLR2 cross to root SLR0.
    EXPECT_EQ(tree.stats().slrCrossings, 2u);
    EXPECT_GE(tree.stats().nodes, 4u);
    EXPECT_GE(tree.stats().links, slrs.size());
}

TEST(Trees, LargeFanoutRespectsLimit)
{
    Simulator sim;
    TimedQueue<Flit> out(sim, 4);
    NocParams params;
    params.fanout = 3;
    std::vector<unsigned> slrs(30, 0);
    MuxTree<Flit> tree(sim, "mux", slrs, 0, params, &out);
    // 30 endpoints at fanout 3 needs at least ceil(log3(30)) levels.
    EXPECT_GE(tree.stats().nodes, 10u);
    // Everything still delivers.
    for (std::size_t e = 0; e < slrs.size(); ++e)
        tree.endpointPort(e).push({e, 0, 0});
    unsigned received = 0;
    for (Cycle c = 0; c < 500 && received < 30; ++c) {
        if (out.canPop()) {
            out.pop();
            ++received;
        }
        sim.step();
    }
    EXPECT_EQ(received, 30u);
}

TEST(QueuePump, MovesOneFlitPerCycle)
{
    Simulator sim;
    TimedQueue<int> a(sim, 8), b(sim, 8);
    QueuePump<int> pump(sim, "pump", &a, &b);
    for (int i = 0; i < 5; ++i)
        a.push(i);
    sim.run(12);
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(b.canPop());
        EXPECT_EQ(b.pop(), i);
    }
}

} // namespace
} // namespace beethoven
