/**
 * @file
 * Event-driven kernel unit tests: wake-wheel delivery order (ring and
 * overflow heap, modulo aliasing), the queue wake/re-arm contract under
 * both registration orders, self-scheduled wakes out of full
 * quiescence, the watchdog's interaction with an emptied active set,
 * and stall conservation when slept gaps are backfilled with the
 * class the module went quiescent in.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "base/log.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "sim/wake_wheel.h"
#include "trace/stall.h"

namespace beethoven
{
namespace
{

/** Inert module: the wheel stores pointers, it never ticks these. */
class Dummy : public Module
{
  public:
    Dummy(Simulator &sim, std::string name)
        : Module(sim, std::move(name))
    {}
    void tick() override {}
};

TEST(WakeWheel, DeliversInCycleOrder)
{
    Simulator sim;
    Dummy a(sim, "a"), b(sim, "b"), c(sim, "c");
    WakeWheel wheel(/*slots=*/4);

    // b twice at 2 (duplicates allowed), a at 3, c far out at 11: the
    // 4-slot ring holds 2 and 3; 11 overflows into the heap. Cycles 3
    // and 11 alias to the same ring slot — the heap entry must not be
    // delivered at 3 nor the ring entry re-delivered at 11.
    wheel.schedule(0, 2, &b);
    wheel.schedule(0, 2, &b);
    wheel.schedule(0, 3, &a);
    wheel.schedule(0, 11, &c);
    EXPECT_EQ(wheel.pending(), 4u);

    std::vector<std::pair<Cycle, Module *>> delivered;
    for (Cycle now = 1; now <= 12; ++now)
        wheel.drain(now, [&](Module *m) { delivered.push_back({now, m}); });

    ASSERT_EQ(delivered.size(), 4u);
    EXPECT_EQ(delivered[0], (std::pair<Cycle, Module *>{2, &b}));
    EXPECT_EQ(delivered[1], (std::pair<Cycle, Module *>{2, &b}));
    EXPECT_EQ(delivered[2], (std::pair<Cycle, Module *>{3, &a}));
    EXPECT_EQ(delivered[3], (std::pair<Cycle, Module *>{11, &c}));
    EXPECT_EQ(wheel.pending(), 0u);
}

TEST(WakeWheel, HeapHoldsMultipleRevolutions)
{
    Simulator sim;
    Dummy a(sim, "a"), b(sim, "b");
    WakeWheel wheel(/*slots=*/4);
    wheel.schedule(0, 9, &b);  // two revolutions out
    wheel.schedule(0, 5, &a);  // one revolution out
    std::vector<std::pair<Cycle, Module *>> delivered;
    for (Cycle now = 1; now <= 9; ++now)
        wheel.drain(now, [&](Module *m) { delivered.push_back({now, m}); });
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], (std::pair<Cycle, Module *>{5, &a}));
    EXPECT_EQ(delivered[1], (std::pair<Cycle, Module *>{9, &b}));
}

/** Pushes one token every @p period cycles, then sleeps in between. */
class PulseProducer : public Module
{
  public:
    PulseProducer(Simulator &sim, TimedQueue<int> &out, Cycle period,
                  int count)
        : Module(sim, "producer"), _out(out), _period(period),
          _left(count)
    {
        declareSleepable();
        declareSelfWake();
    }

    void
    tick() override
    {
        if (_left > 0 && sim().cycle() % _period == 0 &&
            _out.canPush()) {
            _out.push(int(_left));
            --_left;
        }
        if (_left == 0) {
            requestSleep();
        } else {
            // Self-schedule the next pulse edge and sleep until then.
            const Cycle next =
                (sim().cycle() / _period + 1) * _period;
            requestWakeAt(next);
            requestSleep();
        }
    }

    int left() const { return _left; }

  private:
    TimedQueue<int> &_out;
    Cycle _period;
    int _left;
};

/** Pops whenever possible; sleeps instantly when the queue is dry. */
class SleepyConsumer : public Module
{
  public:
    SleepyConsumer(Simulator &sim, TimedQueue<int> &in)
        : Module(sim, "consumer"), _in(in)
    {
        declareSleepable();
        _in.setWakeOnPush(this);
    }

    void
    tick() override
    {
        if (_in.canPop()) {
            _in.pop();
            ++_popped;
        } else {
            requestSleep();
        }
    }

    int popped() const { return _popped; }

  private:
    TimedQueue<int> &_in;
    int _popped = 0;
};

/**
 * The push→wake re-arm must lose no event regardless of whether the
 * consumer is registered before the producer (wakeNow defers to the
 * next cycle: the consumer already ticked) or after it (the consumer
 * ticks later the same cycle). Run both orders to completion and
 * require the identical delivery count as the tick kernel.
 */
TEST(EventKernel, SameCycleRearmLosesNoEvents)
{
    for (const bool consumer_first : {true, false}) {
        for (const SimKernel kernel :
             {SimKernel::Tick, SimKernel::Event}) {
            Simulator sim;
            TimedQueue<int> q(sim, 2);
            std::unique_ptr<SleepyConsumer> cons;
            std::unique_ptr<PulseProducer> prod;
            if (consumer_first)
                cons = std::make_unique<SleepyConsumer>(sim, q);
            prod = std::make_unique<PulseProducer>(sim, q, 7, 10);
            if (!consumer_first)
                cons = std::make_unique<SleepyConsumer>(sim, q);
            sim.setKernel(kernel);
            sim.run(200);
            EXPECT_EQ(cons->popped(), 10)
                << "consumer_first=" << consumer_first << " kernel="
                << simKernelName(kernel);
            EXPECT_EQ(prod->left(), 0);
        }
    }
}

TEST(EventKernel, WakeOutOfFullQuiescence)
{
    // A module that sleeps with only a far-future self-wake armed: the
    // whole active set empties, and the wheel alone revives it.
    class Beacon : public Module
    {
      public:
        explicit Beacon(Simulator &sim) : Module(sim, "beacon")
        {
            declareSleepable();
            declareSelfWake();
        }
        void
        tick() override
        {
            ticks.push_back(sim().cycle());
            requestWakeAt(sim().cycle() + 100);
            requestSleep();
        }
        std::vector<Cycle> ticks;
    };

    Simulator sim;
    Beacon beacon(sim);
    sim.setKernel(SimKernel::Event);
    sim.run(5);
    EXPECT_EQ(sim.activeModules(), 0u);
    EXPECT_GE(sim.pendingWakes(), 1u);
    sim.run(245); // through cycle 250: wakes due at 100 and 200
    ASSERT_EQ(beacon.ticks.size(), 3u);
    EXPECT_EQ(beacon.ticks[0], 0u);
    EXPECT_EQ(beacon.ticks[1], 100u);
    EXPECT_EQ(beacon.ticks[2], 200u);
}

TEST(EventKernel, WatchdogFiresWhenActiveSetEmpties)
{
    // Quiescence is not progress: a design that goes to sleep forever
    // with work notionally outstanding must still trip the armed
    // watchdog — the event kernel keeps stepping cycles and the
    // watchdog check runs every cycle regardless of the active set.
    class Stuck : public Module
    {
      public:
        explicit Stuck(Simulator &sim) : Module(sim, "stuck")
        {
            declareSleepable();
        }
        void
        tick() override
        {
            requestSleep(); // never wakes again, never signals Busy
        }
    };

    Simulator sim;
    Stuck stuck(sim);
    sim.setKernel(SimKernel::Event);
    sim.setWatchdog(64);
    EXPECT_THROW(sim.run(10000), ConfigError);
    EXPECT_EQ(sim.activeModules(), 0u);
    EXPECT_LT(sim.cycle(), 10000u);
}

TEST(EventKernel, SleptGapBackfillsWithGapClass)
{
    // A module quiescing mid-stream attributes the slept span to the
    // class it went to sleep in (here StallUpstream), not Idle — the
    // same taxonomy the tick kernel produces by re-accounting that
    // class every cycle.
    class Waiter : public Module
    {
      public:
        explicit Waiter(Simulator &sim)
            : Module(sim, "waiter"), _stall(sim, "waiter")
        {
            declareSleepable();
            declareSelfWake();
        }
        void
        tick() override
        {
            if (sim().cycle() == 0 || sim().cycle() == 100) {
                _stall.account(StallClass::Busy);
                if (sim().cycle() == 0)
                    requestWakeAt(100);
                return;
            }
            _stall.account(StallClass::StallUpstream);
            sleepWith(_stall, StallClass::StallUpstream);
        }
        StallAccount _stall;
    };

    Simulator sim;
    Waiter w(sim);
    sim.setKernel(SimKernel::Event);
    sim.run(200);
    sim.publishStallStats();
    // Cycles 0 and 100 are Busy; 1 and 101 classify StallUpstream and
    // sleep; the slept spans [2,100) and [102,200) backfill as
    // StallUpstream. Nothing may land in Idle, and conservation holds.
    EXPECT_EQ(w._stall.count(StallClass::Busy), 2u);
    EXPECT_EQ(w._stall.count(StallClass::StallUpstream), 198u);
    EXPECT_EQ(w._stall.count(StallClass::Idle), 0u);
    u64 sum = 0;
    for (std::size_t i = 0; i < kNumStallClasses; ++i)
        sum += w._stall.count(static_cast<StallClass>(i));
    EXPECT_EQ(sum, sim.cycle());
}

TEST(EventKernel, PlantedLostWakeStallsTheConsumer)
{
    // The fault-injection hook behind soc_fuzz --plant-lost-wake:
    // dropping wake schedules must produce an observable difference
    // (here: lost deliveries), which is exactly what the differential
    // harness exists to catch.
    Simulator sim;
    TimedQueue<int> q(sim, 2);
    SleepyConsumer cons(sim, q);
    PulseProducer prod(sim, q, 7, 10);
    sim.setKernel(SimKernel::Event);
    sim.plantLostWakes(2); // drop every 2nd scheduled wake
    sim.run(200);
    EXPECT_LT(cons.popped(), 10);
}

} // namespace
} // namespace beethoven
