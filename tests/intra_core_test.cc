/**
 * @file
 * Tests for intra-core memory ports (Appendix A): point-to-point and
 * broadcast delivery across Systems, SLR-crossing latency, and the
 * configuration errors elaboration must catch.
 */

#include <gtest/gtest.h>

#include "core/accelerator_core.h"
#include "core/soc.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

/** Sender: command(value, row) writes value into the out port. */
class SenderCore : public AcceleratorCore
{
  public:
    explicit SenderCore(const CoreContext &ctx)
        : AcceleratorCore(ctx), _out(getIntraCoreMemOut("link"))
    {}

    void
    tick() override
    {
        if (_pending) {
            if (_out.canPush()) {
                SpadRequest w;
                w.row = static_cast<u32>(_cmd.args[1]);
                w.write = true;
                w.data.resize(4);
                for (unsigned b = 0; b < 4; ++b)
                    w.data[b] =
                        static_cast<u8>(_cmd.args[0] >> (8 * b));
                _out.push(std::move(w));
                _pending = false;
                _respond = true;
            }
            return;
        }
        if (_respond) {
            if (respond(_cmd))
                _respond = false;
            return;
        }
        if (auto cmd = pollCommand()) {
            _cmd = *cmd;
            _pending = true;
        }
    }

  private:
    TimedQueue<SpadRequest> &_out;
    DecodedCommand _cmd;
    bool _pending = false;
    bool _respond = false;
};

/** Receiver: command(row) responds with inbox[row]. */
class ReceiverCore : public AcceleratorCore
{
  public:
    explicit ReceiverCore(const CoreContext &ctx)
        : AcceleratorCore(ctx), _inbox(getScratchpad("inbox"))
    {}

    void
    tick() override
    {
        if (_respond) {
            if (respond(_cmd, _inbox.peekUint(
                                  static_cast<u32>(_cmd.args[0]))))
                _respond = false;
            return;
        }
        if (auto cmd = pollCommand()) {
            _cmd = *cmd;
            _respond = true;
        }
    }

  private:
    Scratchpad &_inbox;
    DecodedCommand _cmd;
    bool _respond = false;
};

AcceleratorConfig
linkedConfig(unsigned senders, unsigned receivers,
             CommunicationDegree degree)
{
    AcceleratorSystemConfig tx;
    tx.name = "Tx";
    tx.nCores = senders;
    tx.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<SenderCore>(ctx);
    };
    tx.intraMemoryOuts.push_back({"link", "Rx", "inbox", 1});
    tx.commands.push_back(CommandSpec(
        "send",
        {CommandField::uint("value", 32), CommandField::uint("row", 16)}));

    AcceleratorSystemConfig rx;
    rx.name = "Rx";
    rx.nCores = receivers;
    rx.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<ReceiverCore>(ctx);
    };
    IntraCoreMemoryPortInConfig inbox;
    inbox.name = "inbox";
    inbox.dataWidthBits = 32;
    inbox.nDatas = 256;
    inbox.commDeg = degree;
    rx.intraMemoryIns.push_back(inbox);
    rx.commands.push_back(
        CommandSpec("peek", {CommandField::uint("row", 16)}, 32));

    AcceleratorConfig cfg;
    cfg.name = "Linked";
    cfg.systems.push_back(std::move(tx));
    cfg.systems.push_back(std::move(rx));
    return cfg;
}

TEST(IntraCore, PointToPointDeliversToMatchingCore)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(
        linkedConfig(2, 2, CommunicationDegree::PointToPoint),
        platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    handle.invoke("Tx", "send", 0, {0x1111, 5}).get();
    handle.invoke("Tx", "send", 1, {0x2222, 5}).get();
    soc.sim().run(50); // let the bridges drain

    EXPECT_EQ(handle.invoke("Rx", "peek", 0, {5}).get(), 0x1111u);
    EXPECT_EQ(handle.invoke("Rx", "peek", 1, {5}).get(), 0x2222u);
}

TEST(IntraCore, BroadcastReachesAllCores)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(
        linkedConfig(1, 3, CommunicationDegree::Broadcast), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    handle.invoke("Tx", "send", 0, {0xABCD, 9}).get();
    soc.sim().run(50);
    for (unsigned c = 0; c < 3; ++c)
        EXPECT_EQ(handle.invoke("Rx", "peek", c, {9}).get(), 0xABCDu)
            << "receiver " << c;
}

TEST(IntraCore, PointToPointCountMismatchIsFatal)
{
    SimulationPlatform platform;
    EXPECT_THROW(
        AcceleratorSoc(
            linkedConfig(2, 3, CommunicationDegree::PointToPoint),
            platform),
        ConfigError);
}

TEST(IntraCore, InboxMemoryIsAccountedInMappings)
{
    SimulationPlatform platform;
    AcceleratorSoc soc(
        linkedConfig(2, 2, CommunicationDegree::PointToPoint),
        platform);
    unsigned inboxes = 0;
    for (const auto &rec : soc.memoryMappings()) {
        if (rec.owner == "inbox")
            ++inboxes;
    }
    EXPECT_EQ(inboxes, 2u) << "one inbox memory per receiver core";
}

} // namespace
} // namespace beethoven
