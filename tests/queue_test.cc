/**
 * @file
 * Tests for the TimedQueue channel primitive — the semantics the whole
 * simulation's determinism rests on.
 */

#include <gtest/gtest.h>

#include "sim/queue.h"

namespace beethoven
{
namespace
{

/** A module-free driver: we tick/commit by stepping the simulator. */
struct QueueHarness
{
    Simulator sim;
};

TEST(TimedQueue, PushVisibleAfterLatency)
{
    QueueHarness h;
    TimedQueue<int> q(h.sim, 4, 1);
    q.push(42);
    EXPECT_FALSE(q.canPop()) << "pushes must not be visible same cycle";
    h.sim.step();
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.front(), 42);
}

class QueueLatency : public ::testing::TestWithParam<unsigned>
{};

TEST_P(QueueLatency, VisibilityDelayedExactly)
{
    const unsigned latency = GetParam();
    QueueHarness h;
    TimedQueue<int> q(h.sim, 8, latency);
    q.push(7);
    h.sim.step(); // commit happens at the end of the push cycle
    for (unsigned c = 1; c < latency; ++c) {
        EXPECT_FALSE(q.canPop()) << "visible too early at +" << c;
        h.sim.step();
    }
    EXPECT_TRUE(q.canPop());
}

INSTANTIATE_TEST_SUITE_P(Latencies, QueueLatency,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(TimedQueue, CapacityIncludesPending)
{
    QueueHarness h;
    TimedQueue<int> q(h.sim, 2);
    q.push(1);
    EXPECT_TRUE(q.canPush());
    q.push(2);
    EXPECT_FALSE(q.canPush()) << "pending pushes occupy space";
}

TEST(TimedQueue, PopFreesSpaceNextCycleOnly)
{
    QueueHarness h;
    TimedQueue<int> q(h.sim, 1);
    q.push(1);
    h.sim.step();
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.pop(), 1);
    // Registered occupancy: space frees only after commit.
    EXPECT_FALSE(q.canPush());
    h.sim.step();
    EXPECT_TRUE(q.canPush());
}

TEST(TimedQueue, FifoOrder)
{
    QueueHarness h;
    TimedQueue<int> q(h.sim, 16);
    for (int i = 0; i < 10; ++i)
        q.push(i);
    h.sim.step();
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(q.canPop());
        EXPECT_EQ(q.pop(), i);
    }
    EXPECT_FALSE(q.canPop());
}

TEST(TimedQueue, VisibleSizeTracksLatency)
{
    QueueHarness h;
    TimedQueue<int> q(h.sim, 8, 2);
    q.push(1);
    h.sim.step();
    q.push(2);
    h.sim.step();
    // First push now visible (latency 2), second not yet.
    EXPECT_EQ(q.visibleSize(), 1u);
    EXPECT_EQ(q.occupancy(), 2u);
    h.sim.step();
    EXPECT_EQ(q.visibleSize(), 2u);
}

TEST(TimedQueue, MoveOnlyPayloads)
{
    QueueHarness h;
    TimedQueue<std::unique_ptr<int>> q(h.sim, 2);
    q.push(std::make_unique<int>(9));
    h.sim.step();
    auto p = q.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 9);
}

/**
 * Determinism: two producer/consumer module pairs with opposite
 * registration orders must produce identical traces.
 */
struct Producer : Module
{
    TimedQueue<int> &out;
    int next = 0;
    Producer(Simulator &s, TimedQueue<int> &q)
        : Module(s, "producer"), out(q)
    {}
    void
    tick() override
    {
        if (out.canPush())
            out.push(next++);
    }
};

struct Consumer : Module
{
    TimedQueue<int> &in;
    std::vector<std::pair<Cycle, int>> trace;
    Consumer(Simulator &s, TimedQueue<int> &q)
        : Module(s, "consumer"), in(q)
    {}
    void
    tick() override
    {
        if (in.canPop())
            trace.emplace_back(sim().cycle(), in.pop());
    }
};

TEST(TimedQueue, TickOrderIndependence)
{
    std::vector<std::pair<Cycle, int>> trace_a, trace_b;
    {
        Simulator sim;
        TimedQueue<int> q(sim, 2);
        Producer p(sim, q); // producer registered first
        Consumer c(sim, q);
        sim.run(50);
        trace_a = c.trace;
    }
    {
        Simulator sim;
        TimedQueue<int> q(sim, 2);
        Consumer c(sim, q); // consumer registered first
        Producer p(sim, q);
        sim.run(50);
        trace_b = c.trace;
    }
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_GT(trace_a.size(), 20u) << "pipeline should stream";
}

TEST(Simulator, RunUntilStopsExactlyWhenSatisfied)
{
    Simulator sim;
    EXPECT_TRUE(sim.runUntil([&] { return sim.cycle() >= 10; }, 100));
    EXPECT_EQ(sim.cycle(), 10u);
    EXPECT_FALSE(sim.runUntil([] { return false; }, 5));
    EXPECT_EQ(sim.cycle(), 15u);
}

} // namespace
} // namespace beethoven
