/**
 * @file
 * End-to-end tests for the A3 attention accelerator: bit-exact
 * agreement with the golden fixed-point reference, batch processing,
 * multi-core operation, and cross-platform elaboration (FPGA + ASIC).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/a3/a3_core.h"
#include "base/rng.h"
#include "baselines/attention_sw.h"
#include "platform/asap7.h"
#include "platform/aws_f1.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

using namespace a3;

struct A3Harness
{
    AcceleratorSoc soc;
    RuntimeServer server;
    fpga_handle_t handle;

    A3Harness(const Platform &platform, unsigned n_cores)
        : soc(AcceleratorConfig(A3Core::systemConfig(n_cores)),
              platform),
          server(soc),
          handle(server)
    {}
};

struct Operands
{
    std::vector<i8> keys, values;
    std::vector<std::vector<i8>> queries;
};

Operands
makeOperands(unsigned n_keys, unsigned n_queries, u64 seed)
{
    Operands ops;
    Rng rng(seed);
    ops.keys.resize(std::size_t(n_keys) * A3Params::dim);
    ops.values.resize(std::size_t(n_keys) * A3Params::dim);
    for (auto &v : ops.keys)
        v = static_cast<i8>(rng.nextRange(0, 255) - 128);
    for (auto &v : ops.values)
        v = static_cast<i8>(rng.nextRange(0, 255) - 128);
    for (unsigned q = 0; q < n_queries; ++q) {
        std::vector<i8> query(A3Params::dim);
        for (auto &v : query)
            v = static_cast<i8>(rng.nextRange(0, 255) - 128);
        ops.queries.push_back(std::move(query));
    }
    return ops;
}

void
runAttention(const Platform &platform, unsigned n_cores,
             unsigned n_keys, unsigned n_queries)
{
    A3Harness h(platform, n_cores);
    const Operands ops = makeOperands(n_keys, n_queries, n_keys * 31);

    remote_ptr keys = h.handle.malloc(ops.keys.size());
    remote_ptr values = h.handle.malloc(ops.values.size());
    std::memcpy(keys.getHostAddr(), ops.keys.data(), ops.keys.size());
    std::memcpy(values.getHostAddr(), ops.values.data(),
                ops.values.size());
    h.handle.copy_to_fpga(keys);
    h.handle.copy_to_fpga(values);

    // Load the stationary matrices into every core.
    std::vector<response_handle<u64>> loads;
    for (unsigned c = 0; c < n_cores; ++c) {
        loads.push_back(h.handle.invoke(
            "A3System", "load_matrices", c,
            {keys.getFpgaAddr(), values.getFpgaAddr(), n_keys}));
    }
    for (auto &l : loads)
        l.get();

    // One attend batch per core, round-robin over the query set.
    remote_ptr qbuf = h.handle.malloc(n_queries * 64);
    remote_ptr obuf = h.handle.malloc(n_queries * 64);
    for (unsigned q = 0; q < n_queries; ++q) {
        std::memcpy(qbuf.getHostAddr() + q * 64,
                    ops.queries[q].data(), A3Params::dim);
    }
    h.handle.copy_to_fpga(qbuf);

    std::vector<response_handle<u64>> batches;
    // Split queries contiguously across cores.
    const unsigned per = n_queries / n_cores;
    ASSERT_GT(per, 0u);
    for (unsigned c = 0; c < n_cores; ++c) {
        const unsigned count =
            c + 1 == n_cores ? n_queries - per * c : per;
        batches.push_back(h.handle.invoke(
            "A3System", "attend", c,
            {qbuf.getFpgaAddr() + u64(per) * c * 64,
             obuf.getFpgaAddr() + u64(per) * c * 64, count}));
    }
    for (auto &b : batches)
        b.get();
    h.handle.copy_from_fpga(obuf);

    for (unsigned q = 0; q < n_queries; ++q) {
        const auto golden = goldenAttention(ops.keys, ops.values,
                                            ops.queries[q], n_keys,
                                            A3Params::dim);
        for (unsigned d = 0; d < A3Params::dim; ++d) {
            ASSERT_EQ(
                static_cast<i8>(obuf.getHostAddr()[q * 64 + d]),
                golden[d])
                << "query " << q << " dim " << d;
        }
    }
}

TEST(A3Attention, SingleCoreMatchesGolden)
{
    SimulationPlatform platform;
    runAttention(platform, 1, 320, 8);
}

TEST(A3Attention, SmallKeyCounts)
{
    SimulationPlatform platform;
    for (unsigned n_keys : {1u, 7u, 64u})
        runAttention(platform, 1, n_keys, 4);
}

TEST(A3Attention, MultiCoreF1)
{
    AwsF1Platform platform;
    runAttention(platform, 4, 320, 16);
}

TEST(A3Attention, AsicPlatformElaborates)
{
    Asap7Platform platform;
    runAttention(platform, 1, 128, 4);
}

TEST(A3Attention, PipelineOverlapsStages)
{
    // With a long batch, steady-state throughput should approach one
    // query per n_keys cycles — proof the three stages overlap.
    SimulationPlatform platform;
    A3Harness h(platform, 1);
    const unsigned n_keys = 320, n_queries = 64;
    const Operands ops = makeOperands(n_keys, n_queries, 5);

    remote_ptr keys = h.handle.malloc(ops.keys.size());
    remote_ptr values = h.handle.malloc(ops.values.size());
    std::memcpy(keys.getHostAddr(), ops.keys.data(), ops.keys.size());
    std::memcpy(values.getHostAddr(), ops.values.data(),
                ops.values.size());
    h.handle.copy_to_fpga(keys);
    h.handle.copy_to_fpga(values);
    h.handle
        .invoke("A3System", "load_matrices", 0,
                {keys.getFpgaAddr(), values.getFpgaAddr(), n_keys})
        .get();

    remote_ptr qbuf = h.handle.malloc(n_queries * 64);
    remote_ptr obuf = h.handle.malloc(n_queries * 64);
    for (unsigned q = 0; q < n_queries; ++q) {
        std::memcpy(qbuf.getHostAddr() + q * 64,
                    ops.queries[q].data(), A3Params::dim);
    }
    h.handle.copy_to_fpga(qbuf);
    h.handle
        .invoke("A3System", "attend", 0,
                {qbuf.getFpgaAddr(), obuf.getFpgaAddr(), n_queries})
        .get();

    auto &core = static_cast<A3Core &>(h.soc.core("A3System", 0));
    const double cycles_per_query =
        double(core.lastKernelCycles()) / n_queries;
    // Perfectly serialized stages would need ~3*n_keys cycles/query.
    EXPECT_LT(cycles_per_query, 1.6 * n_keys)
        << "stages are not overlapping";
    EXPECT_GT(cycles_per_query, 0.9 * n_keys);
}

TEST(A3Attention, GoldenMatchesF32Shape)
{
    // The fixed-point pipeline should approximate true softmax
    // attention: compare against FP32 with a generous tolerance.
    const unsigned n_keys = 320;
    const Operands ops = makeOperands(n_keys, 1, 77);
    const auto fx = goldenAttention(ops.keys, ops.values,
                                    ops.queries[0], n_keys,
                                    A3Params::dim);

    std::vector<float> q(A3Params::dim), k(ops.keys.size()),
        v(ops.values.size()), out(A3Params::dim);
    // Scale scores so the fixed-point LUT regime matches: the LUT
    // divides (max-score) by 32.
    for (std::size_t i = 0; i < k.size(); ++i)
        k[i] = ops.keys[i];
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = ops.values[i];
    for (unsigned d = 0; d < A3Params::dim; ++d)
        q[d] = ops.queries[0][d] / 32.0f;
    a3::softwareAttentionF32(q.data(), k.data(), v.data(), out.data(),
                             n_keys, A3Params::dim);
    double err = 0;
    for (unsigned d = 0; d < A3Params::dim; ++d)
        err += std::abs(out[d] - fx[d]);
    err /= A3Params::dim;
    EXPECT_LT(err, 24.0) << "approximate attention diverges from FP32";
}

} // namespace
} // namespace beethoven
