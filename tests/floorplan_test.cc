/**
 * @file
 * Tests for the SLR-aware floorplanner: placement balance, shell
 * affinity, capacity enforcement, the 80 % spill rule (with and
 * without congestion derating), and constraint emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "floorplan/floorplan.h"
#include "platform/aws_f1.h"

namespace beethoven
{
namespace
{

std::vector<SlrDescriptor>
threeCleanSlrs()
{
    std::vector<SlrDescriptor> slrs(3);
    for (unsigned s = 0; s < 3; ++s) {
        slrs[s].name = "SLR" + std::to_string(s);
        slrs[s].capacity = {10000, 100000, 200000, 100, 50, 0, 0};
    }
    return slrs;
}

TEST(Floorplanner, BalancesAcrossIdenticalSlrs)
{
    Floorplanner fp(threeCleanSlrs());
    ResourceVec core;
    core.lut = 10000;
    core.clb = 1000;
    std::array<unsigned, 3> count{};
    for (int i = 0; i < 9; ++i)
        ++count[fp.placeCore("c" + std::to_string(i), core)];
    EXPECT_EQ(count[0], 3u);
    EXPECT_EQ(count[1], 3u);
    EXPECT_EQ(count[2], 3u);
}

TEST(Floorplanner, AvoidsShellOccupiedSlrs)
{
    auto slrs = threeCleanSlrs();
    slrs[0].shellFootprint.lut = 60000;
    slrs[0].shellFootprint.clb = 6000;
    Floorplanner fp(slrs);
    ResourceVec core;
    core.lut = 10000;
    core.clb = 1000;
    std::array<unsigned, 3> count{};
    for (int i = 0; i < 9; ++i)
        ++count[fp.placeCore("c" + std::to_string(i), core)];
    EXPECT_LT(count[0], count[2])
        << "shell-occupied SLR should receive fewer cores";
}

TEST(Floorplanner, FatalWhenNothingFits)
{
    Floorplanner fp(threeCleanSlrs());
    ResourceVec huge;
    huge.lut = 200000;
    EXPECT_THROW(fp.placeCore("giant", huge), ConfigError);
}

TEST(Floorplanner, FillsToCapacityThenFails)
{
    Floorplanner fp(threeCleanSlrs());
    ResourceVec core;
    core.lut = 50000; // two per SLR
    for (int i = 0; i < 6; ++i)
        fp.placeCore("c" + std::to_string(i), core);
    EXPECT_THROW(fp.placeCore("extra", core), ConfigError);
}

TEST(Floorplanner, SpillRuleSwitchesToUramPast80Percent)
{
    auto slrs = threeCleanSlrs();
    Floorplanner fp({slrs[0]}); // single SLR: 100 BRAM, 50 URAM
    const auto lib = MemoryCellLibrary::ultrascalePlus();

    // Each 512x320 memory costs 7.5 BRAM; 80% of 100 = 80 blocks.
    unsigned bram_mapped = 0, uram_mapped = 0;
    for (int i = 0; i < 12; ++i) {
        const auto m = fp.mapMemory(0, lib, MemoryCellKind::Bram, 512,
                                    320, 1);
        if (m.resources.bram > 0)
            ++bram_mapped;
        else
            ++uram_mapped;
    }
    // 10 fit under 80% (75 blocks), the 11th would cross -> URAM.
    EXPECT_EQ(bram_mapped, 10u);
    EXPECT_EQ(uram_mapped, 2u);
}

TEST(Floorplanner, DerateLowersTheSpillPoint)
{
    auto slrs = threeCleanSlrs();
    Floorplanner fp({slrs[0]}, /*memory_derate=*/0.5);
    const auto lib = MemoryCellLibrary::ultrascalePlus();
    // 80% of the derated 50 blocks = 40 -> exactly 5 x 7.5-block
    // memories map to BRAM before the first spill to URAM. (Once both
    // families run hot the rule alternates toward the lower relative
    // utilization, so we only check the first six mappings.)
    for (int i = 0; i < 5; ++i) {
        const auto m = fp.mapMemory(0, lib, MemoryCellKind::Bram, 512,
                                    320, 1);
        EXPECT_GT(m.resources.bram, 0.0) << "mapping " << i;
    }
    const auto sixth =
        fp.mapMemory(0, lib, MemoryCellKind::Bram, 512, 320, 1);
    EXPECT_GT(sixth.resources.uram, 0.0)
        << "sixth mapping must spill to URAM under derating";
}

TEST(Floorplanner, AsicMappingUsesSram)
{
    SlrDescriptor die;
    die.name = "DIE0";
    die.capacity.sramMacros = 100;
    die.capacity.lut = 1e6;
    die.capacity.clb = 1e6;
    die.capacity.ff = 1e6;
    Floorplanner fp({die});
    const auto lib = MemoryCellLibrary::asap7();
    const auto m =
        fp.mapMemory(0, lib, MemoryCellKind::AsicSram, 128, 512, 1);
    EXPECT_GT(m.resources.sramMacros, 0.0);
    EXPECT_GT(fp.used(0).sramMacros, 0.0);
}

TEST(Floorplanner, UtilizationAccessors)
{
    Floorplanner fp(threeCleanSlrs());
    ResourceVec r;
    r.bram = 50;
    r.lut = 50000;
    r.clb = 5000;
    fp.charge(1, r);
    EXPECT_DOUBLE_EQ(fp.bramUtilization(1), 0.5);
    EXPECT_DOUBLE_EQ(fp.lutUtilization(1), 0.5);
    EXPECT_DOUBLE_EQ(fp.clbUtilization(1), 0.5);
    EXPECT_DOUBLE_EQ(fp.bramUtilization(0), 0.0);
    EXPECT_DOUBLE_EQ(fp.totalUsed().bram, 50.0);
}

TEST(Floorplanner, EmitsConstraintsForEveryCore)
{
    Floorplanner fp(threeCleanSlrs());
    ResourceVec core;
    core.lut = 1000;
    fp.placeCore("sys_core0", core);
    fp.placeCore("sys_core1", core);
    std::ostringstream os;
    fp.emitConstraints(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("create_pblock pblock_SLR0"),
              std::string::npos);
    EXPECT_NE(text.find("sys_core0"), std::string::npos);
    EXPECT_NE(text.find("sys_core1"), std::string::npos);
    EXPECT_NE(text.find("add_cells_to_pblock"), std::string::npos);
}

TEST(Platforms, DescriptorsAreSane)
{
    AwsF1Platform f1;
    const auto slrs = f1.slrs();
    ASSERT_EQ(slrs.size(), 3u);
    for (const auto &slr : slrs) {
        EXPECT_GT(slr.capacity.lut, 0.0);
        EXPECT_TRUE(slr.available().fitsWithin(slr.capacity));
    }
    EXPECT_TRUE(slrs[0].hasHostInterface);
    EXPECT_GT(f1.clockMHz(), 0.0);
    EXPECT_GT(f1.memoryConfig().dataBytes, 0u);
    EXPECT_GT(f1.powerModel().watts(slrs[0].capacity), 0.0);
}

} // namespace
} // namespace beethoven
