/**
 * @file
 * Host-performance observability tests (DESIGN.md 4e): profiler
 * conservation and sampling accuracy, the non-interference guarantee
 * (profiled runs are bit-identical to unprofiled ones), run-level KPI
 * sources, the BENCH_<label>.json schema round-trip, and the
 * perf_compare verdict rules.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "accel/vecadd.h"
#include "base/json.h"
#include "base/log.h"
#include "base/rng.h"
#include "perf/bench_json.h"
#include "perf/compare.h"
#include "perf/host_clock.h"
#include "perf/host_profiler.h"
#include "perf/kpi.h"
#include "perf/trend.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"
#include "sim/module.h"
#include "sim/simulator.h"

namespace beethoven
{
namespace
{

/** A module that burns a calibrated amount of host time per tick. */
class SpinModule : public Module
{
  public:
    SpinModule(Simulator &sim, std::string name, unsigned spins)
        : Module(sim, std::move(name)), _spins(spins)
    {
        // Module's constructor registered us with the simulator.
    }

    void tick() override
    {
        // Data-dependent loop the optimizer can't delete; the volatile
        // sink keeps the host-time cost roughly proportional to _spins.
        volatile u64 acc = 0;
        for (unsigned i = 0; i < _spins; ++i)
            acc = acc + i;
        _sink = acc;
    }

    u64 result() const { return _sink; }

  private:
    unsigned _spins;
    u64 _sink = 0;
};

// ---- profiler: conservation & attribution --------------------------

TEST(HostProfiler, ScopedComponentTimesSumToAtMostTotal)
{
    Simulator sim;
    SpinModule heavy(sim, "heavy", 4000);
    SpinModule light(sim, "light", 100);
    HostProfiler prof(HostProfiler::Mode::Scoped);
    sim.attachHostProfiler(&prof);

    for (int i = 0; i < 2000; ++i)
        sim.step();

    // Every cycle was measured, per-component slices are disjoint
    // sub-intervals of the step-loop total, so the sum is conserved.
    ASSERT_EQ(prof.sampledCycles(), 2000u);
    EXPECT_EQ(prof.seenCycles(), 2000u);
    u64 sum = 0;
    for (const auto &c : prof.components())
        sum += c.ns;
    EXPECT_LE(sum, prof.totalNs());
    EXPECT_GT(prof.totalNs(), 0u);

    // The heavy module must dominate the breakdown, and the builtin
    // commit bucket must exist (empty here: no Committables).
    const auto top = prof.top(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].name, "heavy");
    EXPECT_GT(prof.share(top[0]), 0.5);
}

TEST(HostProfiler, SamplingAgreesWithScopedShares)
{
    // Same two-module workload measured both ways; the sampled share
    // estimate must land near the exhaustive one. Tolerance is
    // generous (15 points) because a 1-in-8 sample of 4000 cycles is
    // noisy under CI scheduling.
    auto measure = [](HostProfiler::Mode mode, u32 period) {
        Simulator sim;
        SpinModule heavy(sim, "heavy", 4000);
        SpinModule light(sim, "light", 400);
        HostProfiler prof(mode, period);
        sim.attachHostProfiler(&prof);
        for (int i = 0; i < 4000; ++i)
            sim.step();
        for (const auto &c : prof.components())
            if (c.name == "heavy")
                return prof.share(c);
        return 0.0;
    };

    // The two passes are timed back to back, so a scheduler preemption
    // landing in just one of them skews the comparison. Retry a few
    // times and require one clean agreement instead of widening the
    // tolerance until the assertion is vacuous.
    double scoped = 0.0, sampled = 0.0;
    for (int attempt = 0; attempt < 5; ++attempt) {
        scoped = measure(HostProfiler::Mode::Scoped, 1);
        sampled = measure(HostProfiler::Mode::Sampling, 8);
        if (scoped > 0.5 && std::abs(sampled - scoped) <= 0.15)
            break;
    }
    EXPECT_GT(scoped, 0.5);
    EXPECT_GT(sampled, 0.0);
    EXPECT_NEAR(sampled, scoped, 0.15);
}

TEST(HostProfiler, SamplingMeasuresOneInPeriodCycles)
{
    Simulator sim;
    SpinModule m(sim, "m", 10);
    HostProfiler prof(HostProfiler::Mode::Sampling, 64);
    sim.attachHostProfiler(&prof);
    for (int i = 0; i < 6400; ++i)
        sim.step();
    EXPECT_EQ(prof.seenCycles(), 6400u);
    EXPECT_EQ(prof.sampledCycles(), 6400u / 64);
}

TEST(HostProfiler, KpiOnlyModeNeverTimesComponents)
{
    Simulator sim;
    SpinModule m(sim, "m", 10);
    HostProfiler prof(HostProfiler::Mode::KpiOnly);
    sim.attachHostProfiler(&prof);
    for (int i = 0; i < 1000; ++i)
        sim.step();
    EXPECT_EQ(prof.seenCycles(), 1000u);
    EXPECT_EQ(prof.sampledCycles(), 0u);
    EXPECT_EQ(prof.totalNs(), 0u);
}

TEST(HostProfiler, HeartbeatStaysBoundedOnLongRuns)
{
    // hb_period=1 records a point every cycle until the coalescing
    // kicks in: past kMaxHeartbeatPoints the window doubles and every
    // other point is dropped, so the series stays bounded no matter
    // how long the run is.
    HostProfiler prof(HostProfiler::Mode::KpiOnly, 64, 1);
    for (u64 i = 0; i < 100000; ++i)
        prof.onCycle();
    EXPECT_FALSE(prof.heartbeat().empty());
    EXPECT_LE(prof.heartbeat().size(), HostProfiler::kMaxHeartbeatPoints);
    EXPECT_GT(prof.heartbeatPeriod(), 1u);
    // Cumulative series: cycle counts strictly increase.
    const auto &hb = prof.heartbeat();
    for (std::size_t i = 1; i < hb.size(); ++i)
        EXPECT_LT(hb[i - 1].cycles, hb[i].cycles);
}

TEST(HostProfiler, ComponentsAccumulateAcrossAttachments)
{
    // Benches build one SoC per configuration but reuse the profiler;
    // same-named components must merge rather than duplicate.
    HostProfiler prof(HostProfiler::Mode::Scoped);
    for (int round = 0; round < 2; ++round) {
        Simulator sim;
        SpinModule m(sim, "ddr", 100);
        sim.attachHostProfiler(&prof);
        for (int i = 0; i < 100; ++i)
            sim.step();
    }
    unsigned ddr_count = 0;
    for (const auto &c : prof.components())
        if (c.name == "ddr")
            ++ddr_count;
    EXPECT_EQ(ddr_count, 1u);
    EXPECT_EQ(prof.seenCycles(), 200u);
}

// ---- non-interference ----------------------------------------------

/**
 * Canonical vecadd workload; returns the full stats-tree JSON plus the
 * final cycle count as a digest (same shape as determinism_test.cc).
 * When @p prof is non-null the run is profiled.
 */
std::string
vecAddStatsDigest(u64 seed, HostProfiler *prof)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(2));
    AcceleratorSoc soc(std::move(cfg), platform);
    if (prof != nullptr)
        soc.sim().attachHostProfiler(prof);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    Rng rng(seed);
    const unsigned n = 128;
    std::vector<remote_ptr> bufs;
    for (unsigned c = 0; c < 2; ++c) {
        remote_ptr mem = handle.malloc(n * sizeof(u32));
        auto *vals = mem.as<u32>();
        for (unsigned i = 0; i < n; ++i)
            vals[i] = static_cast<u32>(rng.next());
        handle.copy_to_fpga(mem);
        bufs.push_back(mem);
    }
    std::vector<response_handle<u64>> handles;
    for (unsigned c = 0; c < 2; ++c) {
        handles.push_back(handle.invoke(
            "MyAcceleratorSystem", "my_accel", c,
            {seed & 0xFFFF, bufs[c].getFpgaAddr(), n}));
    }
    for (auto &h : handles)
        h.get();

    soc.sim().publishStallStats();
    std::ostringstream os;
    soc.sim().stats().dumpJson(os);
    os << "@" << soc.sim().cycle();
    return os.str();
}

TEST(HostProfiler, ProfiledRunIsBitIdenticalToUnprofiled)
{
    const std::string plain = vecAddStatsDigest(0xD5EED, nullptr);
    HostProfiler scoped(HostProfiler::Mode::Scoped);
    const std::string profiled = vecAddStatsDigest(0xD5EED, &scoped);
    EXPECT_EQ(plain, profiled);
    EXPECT_FALSE(plain.empty());
    // And the profiler really ran: it saw every simulated cycle.
    EXPECT_GT(scoped.sampledCycles(), 0u);
    EXPECT_GT(scoped.totalNs(), 0u);
}

// ---- run-level KPI sources -----------------------------------------

TEST(Kpi, PeakRssIsPositive)
{
    // VmHWM (or the getrusage fallback) must report something for a
    // live process.
    EXPECT_GT(peakRssKb(), 0u);
}

TEST(Kpi, AllocCountersTrackHeapChurn)
{
    const AllocCounters before = allocCounters();
    {
        std::vector<std::string> v;
        for (int i = 0; i < 256; ++i)
            v.emplace_back(128, 'x');
    }
    const AllocCounters after = allocCounters();
    EXPECT_GT(after.allocs, before.allocs);
    EXPECT_GT(after.frees, before.frees);
    EXPECT_GT(after.bytes, before.bytes);
}

TEST(Kpi, HostClockIsMonotonic)
{
    const u64 a = hostNowNs();
    const u64 b = hostNowNs();
    EXPECT_LE(a, b);
}

TEST(Kpi, PerfJsonIsParseableAndCarriesKpis)
{
    HostProfiler prof(HostProfiler::Mode::Scoped);
    Simulator sim;
    SpinModule m(sim, "m", 50);
    sim.attachHostProfiler(&prof);
    for (int i = 0; i < 100; ++i)
        sim.step();

    std::ostringstream os;
    writePerfJson(os, "unit_bench", true, 1000000, 100, 100, &prof);
    const JsonValue v = parseJson(os.str());
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.find("schema"), nullptr);
    EXPECT_EQ(v.find("schema")->string, "beethoven-perf-1");
    EXPECT_EQ(v.find("bench")->string, "unit_bench");
    EXPECT_DOUBLE_EQ(v.find("sim_cycles")->number, 100.0);
    EXPECT_GT(v.find("cycles_per_sec")->number, 0.0);
    ASSERT_NE(v.find("host_profile"), nullptr);
    EXPECT_EQ(v.find("host_profile")->find("mode")->string, "scoped");
}

// ---- BENCH suite schema round-trip ---------------------------------

BenchSuite
sampleSuite()
{
    BenchSuite s;
    s.label = "unit \"quoted\" label";
    s.quick = true;
    s.runs = 3;
    BenchPerfRecord r;
    r.name = "fig4_memcpy";
    r.wallMs = 123.5;
    r.simCycles = 500000;
    r.cyclesPerSec = 4048582.9;
    r.peakRssKb = 20480;
    r.moduleTicks = 9000000;
    r.hostTop.push_back({"ddr", 400000, 0.4});
    r.hostTop.push_back({"(commit)", 100000, 0.1});
    s.benches.push_back(r);
    BenchPerfRecord zero;
    zero.name = "table1_machsuite";
    zero.wallMs = 5.0;
    s.benches.push_back(zero);
    return s;
}

TEST(BenchJson, WriteParseRoundTrip)
{
    const BenchSuite in = sampleSuite();
    std::ostringstream os;
    writeBenchSuiteJson(os, in);

    const BenchSuite out = parseBenchSuite(parseJson(os.str()));
    EXPECT_EQ(out.label, in.label);
    EXPECT_EQ(out.quick, in.quick);
    EXPECT_EQ(out.runs, in.runs);
    ASSERT_EQ(out.benches.size(), in.benches.size());
    const BenchPerfRecord *r = out.find("fig4_memcpy");
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->wallMs, 123.5);
    EXPECT_EQ(r->simCycles, 500000u);
    EXPECT_EQ(r->peakRssKb, 20480u);
    EXPECT_EQ(r->moduleTicks, 9000000u);
    ASSERT_EQ(r->hostTop.size(), 2u);
    EXPECT_EQ(r->hostTop[0].component, "ddr");
    EXPECT_EQ(r->hostTop[0].ns, 400000u);
    EXPECT_DOUBLE_EQ(r->hostTop[1].share, 0.1);
    EXPECT_NE(out.find("table1_machsuite"), nullptr);
    EXPECT_EQ(out.find("no_such_bench"), nullptr);
}

TEST(BenchJson, ParserRejectsWrongSchema)
{
    EXPECT_THROW(parseBenchSuite(parseJson("{\"schema\":\"other\"}")),
                 ConfigError);
    EXPECT_THROW(parseBenchSuite(parseJson("{\"p95\": 3}")), ConfigError);
    // Missing required per-bench key.
    EXPECT_THROW(
        parseBenchSuite(parseJson(
            "{\"schema\":\"beethoven-bench-1\",\"label\":\"x\","
            "\"quick\":false,\"runs\":1,"
            "\"benches\":[{\"name\":\"b\"}]}")),
        ConfigError);
}

TEST(BenchJson, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---- compare verdict rules -----------------------------------------

BenchPerfRecord
cpsRecord(const std::string &name, double cps, double wall_ms)
{
    BenchPerfRecord r;
    r.name = name;
    r.cyclesPerSec = cps;
    r.wallMs = wall_ms;
    r.simCycles = cps > 0.0 ? 1000000 : 0;
    return r;
}

TEST(PerfCompare, FlagsSlowdownsPastToleranceOnly)
{
    BenchSuite base, cand;
    base.benches.push_back(cpsRecord("fast_enough", 1000.0, 500));
    cand.benches.push_back(cpsRecord("fast_enough", 950.0, 520));
    base.benches.push_back(cpsRecord("too_slow", 1000.0, 500));
    cand.benches.push_back(cpsRecord("too_slow", 800.0, 640));

    CompareOptions opt;
    opt.tolerance = 0.10;
    const CompareResult res = compareSuites(base, cand, opt);
    ASSERT_EQ(res.deltas.size(), 2u);
    EXPECT_EQ(res.deltas[0].verdict, BenchVerdict::Ok);
    EXPECT_EQ(res.deltas[1].verdict, BenchVerdict::Regressed);
    EXPECT_NEAR(res.deltas[1].deltaPct, -20.0, 0.01);
    EXPECT_TRUE(res.regressed());
}

TEST(PerfTrend, SeriesAlignAcrossCommitsWithAbsenceSentinel)
{
    BenchSuite a, b, c;
    a.label = "seed";
    b.label = "pr1";
    c.label = "pr2";
    a.benches.push_back(cpsRecord("steady", 1000.0, 500));
    b.benches.push_back(cpsRecord("steady", 1100.0, 450));
    c.benches.push_back(cpsRecord("steady", 1200.0, 400));
    // Coverage added at pr1: the seed point records the sentinel and
    // the delta spans pr1 -> pr2 only.
    b.benches.push_back(cpsRecord("late", 2000.0, 100));
    c.benches.push_back(cpsRecord("late", 1000.0, 200));

    const TrendReport rep = buildTrend({a, b, c});
    ASSERT_EQ(rep.labels.size(), 3u);
    ASSERT_EQ(rep.benches.size(), 2u);
    EXPECT_EQ(rep.benches[0].name, "steady");
    EXPECT_NEAR(rep.benches[0].deltaPct, 20.0, 0.01);
    EXPECT_EQ(rep.benches[1].cps[0], BenchTrend::kAbsent);
    EXPECT_NEAR(rep.benches[1].deltaPct, -50.0, 0.01);
    EXPECT_NEAR(rep.worstDropPct(), 50.0, 0.01);
}

TEST(PerfTrend, ElaborationOnlyBenchesNeverFeedTheDelta)
{
    BenchSuite a, b;
    a.label = "seed";
    b.label = "pr1";
    a.benches.push_back(cpsRecord("elab", 0.0, 5));
    b.benches.push_back(cpsRecord("elab", 0.0, 9));
    const TrendReport rep = buildTrend({a, b});
    ASSERT_EQ(rep.benches.size(), 1u);
    EXPECT_EQ(rep.benches[0].deltaPct, 0.0);
    EXPECT_EQ(rep.worstDropPct(), 0.0);
}

TEST(PerfTrend, JsonCarriesSchemaAndNullsAbsences)
{
    BenchSuite a, b;
    a.label = "seed";
    b.label = "pr1";
    a.benches.push_back(cpsRecord("only_seed", 1000.0, 500));
    b.benches.push_back(cpsRecord("only_pr1", 2000.0, 250));
    std::ostringstream os;
    writeTrendJson(os, buildTrend({a, b}));
    const std::string doc = os.str();
    EXPECT_NE(doc.find("beethoven-perf-trend-1"), std::string::npos);
    EXPECT_NE(doc.find("null"), std::string::npos);
    // The document must round-trip through the project's own parser.
    EXPECT_NO_THROW(parseJson(doc));
}

TEST(PerfCompare, FasterCandidateIsNeverARegression)
{
    BenchSuite base, cand;
    base.benches.push_back(cpsRecord("b", 1000.0, 500));
    cand.benches.push_back(cpsRecord("b", 5000.0, 100));
    EXPECT_FALSE(compareSuites(base, cand, {}).regressed());
}

TEST(PerfCompare, MissingBenchCountsAsRegression)
{
    BenchSuite base, cand;
    base.benches.push_back(cpsRecord("gone", 1000.0, 500));
    const CompareResult res = compareSuites(base, cand, {});
    ASSERT_EQ(res.deltas.size(), 1u);
    EXPECT_EQ(res.deltas[0].verdict, BenchVerdict::Missing);
    EXPECT_TRUE(res.regressed());
}

TEST(PerfCompare, NewBenchIsInformationalOnly)
{
    BenchSuite base, cand;
    cand.benches.push_back(cpsRecord("fresh", 1000.0, 500));
    const CompareResult res = compareSuites(base, cand, {});
    ASSERT_EQ(res.deltas.size(), 1u);
    EXPECT_EQ(res.deltas[0].verdict, BenchVerdict::New);
    EXPECT_FALSE(res.regressed());
}

TEST(PerfCompare, ZeroCycleBenchUsesWallTimeAboveFloor)
{
    BenchSuite base, cand;
    base.benches.push_back(cpsRecord("elab", 0.0, 500));
    cand.benches.push_back(cpsRecord("elab", 0.0, 900));
    CompareOptions opt;
    opt.tolerance = 0.10;
    const CompareResult res = compareSuites(base, cand, opt);
    ASSERT_EQ(res.deltas.size(), 1u);
    EXPECT_EQ(res.deltas[0].verdict, BenchVerdict::Regressed);
    EXPECT_EQ(res.deltas[0].note, "wall-time basis");
}

TEST(PerfCompare, ZeroCycleBenchBelowFloorIsAlwaysOk)
{
    // A 5ms elaboration bench tripling to 15ms is scheduler noise,
    // not a regression.
    BenchSuite base, cand;
    base.benches.push_back(cpsRecord("tiny", 0.0, 5));
    cand.benches.push_back(cpsRecord("tiny", 0.0, 15));
    const CompareResult res = compareSuites(base, cand, {});
    ASSERT_EQ(res.deltas.size(), 1u);
    EXPECT_EQ(res.deltas[0].verdict, BenchVerdict::Ok);
    EXPECT_FALSE(res.regressed());
}

// ---- global KPI counters -------------------------------------------

TEST(Kpi, GlobalCycleCountersAdvanceWithSteps)
{
    const u64 cycles_before = globalSimCycles();
    const u64 ticks_before = globalModuleTicks();
    Simulator sim;
    SpinModule a(sim, "a", 1);
    SpinModule b(sim, "b", 1);
    for (int i = 0; i < 50; ++i)
        sim.step();
    EXPECT_EQ(globalSimCycles() - cycles_before, 50u);
    EXPECT_EQ(globalModuleTicks() - ticks_before, 100u);
}

} // namespace
} // namespace beethoven
