/**
 * @file
 * Unit tests for the simulation-graph static analyzer (src/analysis/):
 * one positive and one negative case per BTH1xx code over hand-built
 * SimGraph IR, the graph lowering of a real elaborated SoC, the
 * planted-wake catch path (a lost-wake bug flagged WITHOUT running a
 * single cycle), the static/dynamic pairing with the differential fuzz
 * harness, and the shard-readiness report's content on the paper's
 * compositions.
 */

#include <gtest/gtest.h>

#include "accel/machsuite/gemm.h"
#include "accel/memcpy_core.h"
#include "analysis/analyze.h"
#include "analysis/sim_graph.h"
#include "base/log.h"
#include "core/soc.h"
#include "lint/lint.h"
#include "platform/aws_f1.h"
#include "sim/graph_record.h"
#include "verify/fuzz.h"
#include "verify/random_soc.h"
#include "verify/traffic.h"

namespace beethoven
{
namespace
{

using analysis::GraphEdge;
using analysis::GraphModule;
using analysis::GraphShard;
using analysis::GraphSharedState;
using analysis::kNoIndex;
using analysis::kNoShard;
using analysis::SimGraph;
using verify::FuzzCase;
using verify::FuzzKind;
using verify::FuzzSystem;

/** Minimal two-module graph: producer feeds consumer over one queue. */
SimGraph
pairGraph()
{
    SimGraph g;
    GraphModule prod;
    prod.name = "prod";
    GraphModule cons;
    cons.name = "cons";
    g.modules = {prod, cons};
    GraphEdge e;
    e.site = "tests/synthetic:1";
    e.capacity = 4;
    e.latency = 1;
    e.producer = 0;
    e.consumer = 1;
    e.pushWakeArmed = true;
    e.pushWakeTarget = 1;
    g.edges = {e};
    return g;
}

// --- BTH100: sleepable consumer without an armed push-wake ----------

TEST(GraphRules, Bth100FiresOnSleepableConsumerWithoutPushWake)
{
    SimGraph g = pairGraph();
    g.modules[1].sleepable = true;
    g.modules[1].sleepSite = "tests/synthetic:2";
    g.edges[0].pushWakeArmed = false;
    g.edges[0].pushWakeTarget = kNoIndex;
    // Keep the module reachable through a pop-wake so only BTH100
    // (not BTH102) is under test.
    g.edges[0].popWakeArmed = true;
    g.edges[0].producer = 1;
    const auto rep = analysis::analyzeGraph(g);
    EXPECT_TRUE(rep.has("BTH100"));
}

TEST(GraphRules, Bth100SilentWhenPushWakeArmedOrConsumerPolls)
{
    SimGraph g = pairGraph();
    g.modules[1].sleepable = true;
    EXPECT_FALSE(analysis::analyzeGraph(g).has("BTH100"));

    // A poll-driven (never-sleeping) consumer needs no push-wake.
    SimGraph g2 = pairGraph();
    g2.edges[0].pushWakeArmed = false;
    g2.edges[0].pushWakeTarget = kNoIndex;
    EXPECT_FALSE(analysis::analyzeGraph(g2).has("BTH100"));
}

// --- BTH101: push-wake armed at a module that is not the consumer --

TEST(GraphRules, Bth101FiresOnMisdirectedPushWake)
{
    SimGraph g = pairGraph();
    g.edges[0].pushWakeTarget = 0; // armed at the producer, not 'cons'
    const auto rep = analysis::analyzeGraph(g);
    EXPECT_TRUE(rep.has("BTH101"));
}

TEST(GraphRules, Bth101SilentWhenWakeTargetsTheConsumer)
{
    EXPECT_FALSE(analysis::analyzeGraph(pairGraph()).has("BTH101"));
}

// --- BTH102: sleepable module with no reachable wake source --------

TEST(GraphRules, Bth102FiresOnUnwakeableSleeper)
{
    SimGraph g;
    GraphModule m;
    m.name = "stuck";
    m.sleepable = true;
    m.sleepSite = "tests/synthetic:3";
    g.modules = {m};
    const auto rep = analysis::analyzeGraph(g);
    EXPECT_TRUE(rep.has("BTH102"));
    EXPECT_TRUE(rep.hasErrors());
}

TEST(GraphRules, Bth102SilentWithPushWakePopWakeOrSelfWake)
{
    // Push-wake reachable.
    EXPECT_FALSE([] {
        SimGraph g = pairGraph();
        g.modules[1].sleepable = true;
        return analysis::analyzeGraph(g).has("BTH102");
    }());
    // Pop-wake reachable (producer side).
    EXPECT_FALSE([] {
        SimGraph g = pairGraph();
        g.modules[0].sleepable = true;
        g.edges[0].popWakeArmed = true;
        return analysis::analyzeGraph(g).has("BTH102");
    }());
    // Self-wake (e.g. the DRAM refresh timer).
    EXPECT_FALSE([] {
        SimGraph g;
        GraphModule m;
        m.name = "timer";
        m.sleepable = true;
        m.selfWake = true;
        g.modules = {m};
        return analysis::analyzeGraph(g).has("BTH102");
    }());
}

// --- BTH103: self-wake declared without a sleep site ---------------

TEST(GraphRules, Bth103FiresOnSelfWakeWithoutSleep)
{
    SimGraph g;
    GraphModule m;
    m.name = "dead-arm";
    m.selfWake = true;
    m.selfWakeSite = "tests/synthetic:4";
    g.modules = {m};
    EXPECT_TRUE(analysis::analyzeGraph(g).has("BTH103"));
}

TEST(GraphRules, Bth103SilentWhenPaired)
{
    SimGraph g;
    GraphModule m;
    m.name = "timer";
    m.selfWake = true;
    m.sleepable = true;
    g.modules = {m};
    EXPECT_FALSE(analysis::analyzeGraph(g).has("BTH103"));
}

// --- BTH104: zero-latency wake cycles ------------------------------

TEST(GraphRules, Bth104FiresOnZeroLatencyCycle)
{
    // a -> b -> a, both hops armed push-wakes through latency-0 queues.
    SimGraph g;
    GraphModule a, b;
    a.name = "a";
    b.name = "b";
    g.modules = {a, b};
    GraphEdge ab, ba;
    ab.producer = 0;
    ab.consumer = 1;
    ab.pushWakeArmed = true;
    ab.pushWakeTarget = 1;
    ab.latency = 0;
    ba.producer = 1;
    ba.consumer = 0;
    ba.pushWakeArmed = true;
    ba.pushWakeTarget = 0;
    ba.latency = 0;
    g.edges = {ab, ba};
    const auto rep = analysis::analyzeGraph(g);
    EXPECT_TRUE(rep.has("BTH104"));
    EXPECT_TRUE(rep.hasErrors());
}

TEST(GraphRules, Bth104SilentWhenAnyHopHasLatency)
{
    SimGraph g;
    GraphModule a, b;
    a.name = "a";
    b.name = "b";
    g.modules = {a, b};
    GraphEdge ab, ba;
    ab.producer = 0;
    ab.consumer = 1;
    ab.pushWakeArmed = true;
    ab.pushWakeTarget = 1;
    ab.latency = 0;
    ba.producer = 1;
    ba.consumer = 0;
    ba.pushWakeArmed = true;
    ba.pushWakeTarget = 0;
    ba.latency = 1; // a real TimedQueue: breaks the same-cycle loop
    g.edges = {ab, ba};
    EXPECT_FALSE(analysis::analyzeGraph(g).has("BTH104"));
}

// --- BTH105: producer is its own push-wake target ------------------

TEST(GraphRules, Bth105FiresOnSelfWakeLoop)
{
    SimGraph g = pairGraph();
    g.edges[0].pushWakeTarget = 0; // producer wakes itself on push
    EXPECT_TRUE(analysis::analyzeGraph(g).has("BTH105"));
}

TEST(GraphRules, Bth105SilentOnNormalWiring)
{
    EXPECT_FALSE(analysis::analyzeGraph(pairGraph()).has("BTH105"));
}

// --- BTH110/BTH111/BTH112: shard-readiness audit -------------------

SimGraph
shardedGraph()
{
    SimGraph g = pairGraph();
    g.shards = {{0, "host"}, {1, "mem"}};
    g.modules[0].shard = 0;
    g.modules[1].shard = 1;
    return g;
}

TEST(ShardRules, Bth110FiresOnCrossShardStateAndSpansAll)
{
    SimGraph g = shardedGraph();
    GraphSharedState st;
    st.name = "stats.shared";
    st.kind = "stat";
    st.site = "tests/synthetic:5";
    st.accessors = {0, 1};
    g.sharedStates = {st};
    EXPECT_TRUE(analysis::analyzeGraph(g).has("BTH110"));

    GraphSharedState all;
    all.name = "sim.global";
    all.kind = "sim";
    all.spansAllShards = true;
    g.sharedStates = {all};
    EXPECT_TRUE(analysis::analyzeGraph(g).has("BTH110"));
}

TEST(ShardRules, Bth110SilentForShardLocalStateOrNoPartition)
{
    SimGraph g = shardedGraph();
    GraphSharedState st;
    st.name = "stats.local";
    st.kind = "stat";
    st.accessors = {0}; // one shard only
    g.sharedStates = {st};
    EXPECT_FALSE(analysis::analyzeGraph(g).has("BTH110"));

    // No partition defined: nothing to audit.
    SimGraph g2 = pairGraph();
    GraphSharedState wide;
    wide.name = "stats.wide";
    wide.kind = "stat";
    wide.accessors = {0, 1};
    g2.sharedStates = {wide};
    EXPECT_FALSE(analysis::analyzeGraph(g2).has("BTH110"));
}

TEST(ShardRules, Bth111ReportsCrossingEdgesPerShardPair)
{
    const auto rep = analysis::analyzeGraph(shardedGraph());
    EXPECT_TRUE(rep.has("BTH111"));

    // Same-shard edge: no crossing.
    SimGraph g = shardedGraph();
    g.modules[1].shard = 0;
    EXPECT_FALSE(analysis::analyzeGraph(g).has("BTH111"));
}

TEST(ShardRules, Bth112FiresOnUncoveredModule)
{
    SimGraph g = shardedGraph();
    g.modules[1].shard = kNoShard;
    EXPECT_TRUE(analysis::analyzeGraph(g).has("BTH112"));
    EXPECT_FALSE(analysis::analyzeGraph(shardedGraph()).has("BTH112"));
}

// --- Real-SoC lowering, census, and the planted-wake catch ---------

FuzzCase
memcpyCase()
{
    FuzzCase c;
    c.seed = 7;
    FuzzSystem sys;
    sys.kind = FuzzKind::Memcpy;
    sys.nCores = 1;
    c.systems.push_back(sys);
    return c;
}

TEST(SocAnalysis, ElaboratedSocIsAnalyzeClean)
{
    const verify::FuzzPlatform platform(memcpyCase().platform);
    const AcceleratorSoc soc(verify::buildAcceleratorConfig(memcpyCase()),
                             platform);
    const auto rep = soc.analyzeGraph();
    EXPECT_FALSE(rep.hasErrors()) << rep.format();
    // Every cross-shard state carries a resolution (the parallel
    // kernel depends on it), so the audit reports resolved notes and
    // crossing edges but zero BTH110 warnings.
    EXPECT_FALSE(rep.has("BTH110")) << rep.format();
    EXPECT_TRUE(rep.has("BTH113"));
    EXPECT_TRUE(rep.has("BTH111"));
    EXPECT_EQ(rep.warningCount(), 0u) << rep.format();
}

TEST(SocAnalysis, CensusMatchesCompositionModel)
{
    const verify::FuzzPlatform platform(memcpyCase().platform);
    const AcceleratorSoc soc(verify::buildAcceleratorConfig(memcpyCase()),
                             platform);
    EXPECT_FALSE(soc.analyzeGraph().has("BTH106"));

    // Against a DIFFERENT composition's model the census must flag
    // the role-count skew (positive case for BTH106).
    FuzzCase bigger = memcpyCase();
    bigger.systems[0].nCores = 2;
    const auto model = lint::buildCompositionModel(
        verify::buildAcceleratorConfig(bigger), platform);
    const analysis::SimGraph g = analysis::buildSimGraph(soc.sim());
    EXPECT_TRUE(analysis::analyzeGraph(g, &model).has("BTH106"));
}

TEST(SocAnalysis, PlantedMissingPushWakeIsCaughtStatically)
{
    // The bug --plant-lost-wake=N plants dynamically (a wake that
    // never arrives) is planted here at its root cause — an unarmed
    // push-wake — and must be flagged BEFORE a single cycle runs.
    analysis::ScopedDeferGraphValidation defer;
    plantMissingPushWake(1);
    const verify::FuzzPlatform platform(memcpyCase().platform);
    const AcceleratorSoc soc(verify::buildAcceleratorConfig(memcpyCase()),
                             platform);
    plantMissingPushWake(0);
    EXPECT_EQ(soc.sim().cycle(), 0u) << "analysis must not simulate";
    const auto rep = soc.analyzeGraph();
    EXPECT_TRUE(rep.has("BTH100")) << rep.format();
    EXPECT_TRUE(rep.hasErrors());
}

TEST(SocAnalysis, PlantedMissingPushWakeFailsElaboration)
{
    // Without the deferral the constructor-tail validation must
    // reject the planted graph outright.
    plantMissingPushWake(1);
    const verify::FuzzPlatform platform(memcpyCase().platform);
    EXPECT_THROW(
        {
            const AcceleratorSoc soc(
                verify::buildAcceleratorConfig(memcpyCase()), platform);
        },
        ConfigError);
    plantMissingPushWake(0);
}

TEST(SocAnalysis, StaticAndDynamicCatchesPairUp)
{
    // The differential harness catches the planted lost wake at run
    // time; the analyzer catches the same bug class at build time.
    FuzzCase c = memcpyCase();
    verify::RandomTrafficGen traffic(99);
    traffic.generate(c, 1);
    c.plantLostWake = 7;
    verify::FuzzOptions opt;
    opt.differential = true;
    const verify::FuzzResult dynamic_catch = verify::runFuzzCase(c, opt);
    EXPECT_NE(dynamic_catch.kind, verify::FailKind::None);

    c.plantLostWake = 0;
    c.plantWakeViolation = 1;
    lint::DiagnosticReport static_rep;
    {
        analysis::ScopedDeferGraphValidation defer;
        plantMissingPushWake(c.plantWakeViolation);
        const verify::FuzzPlatform platform(c.platform);
        const AcceleratorSoc soc(verify::buildAcceleratorConfig(c),
                                 platform);
        plantMissingPushWake(0);
        static_rep = soc.analyzeGraph();
    }
    EXPECT_TRUE(static_rep.has("BTH100"));
}

// --- Shard-readiness report on the paper's compositions ------------

TEST(ShardReport, Fig4AndFig6EnumerateCrossShardState)
{
    for (const bool fig6 : {false, true}) {
        AwsF1Platform platform;
        AcceleratorConfig cfg;
        if (fig6) {
            platform.setClockMHz(125.0);
            cfg.systems.push_back(machsuite::GemmCore::systemConfig(4));
        } else {
            cfg.systems.push_back(
                MemcpyCore::systemConfig(1, MemcpyCore::Variant{}));
        }
        const AcceleratorSoc soc(std::move(cfg), platform);
        const analysis::SimGraph g = analysis::buildSimGraph(soc.sim());
        const std::string report = analysis::shardReportJson(g);

        EXPECT_NE(report.find("beethoven-shard-report-1"),
                  std::string::npos);
        // Every known cross-boundary shared-state family must appear,
        // with file:line provenance.
        for (const char *expect :
             {"sim.wake-wheel", "power.ddr", "power.noc",
              "ddr.in-flight", "\"site\": \"src/",
              "\"crossing_edges\"", "\"shards\""}) {
            EXPECT_NE(report.find(expect), std::string::npos)
                << expect << " missing from shard report (fig6="
                << fig6 << ")";
        }
        // The partition covers every module on these compositions.
        EXPECT_NE(report.find("\"uncovered_modules\": 0"),
                  std::string::npos);
    }
}

TEST(ShardReport, EveryAnalyzerCodeIsRegisteredWithStableLayer)
{
    for (const char *code :
         {"BTH100", "BTH101", "BTH102", "BTH103", "BTH104", "BTH105",
          "BTH106", "BTH110", "BTH111", "BTH112"}) {
        const auto *info = lint::findDiagnosticCode(code);
        ASSERT_NE(info, nullptr) << code;
        const std::string layer = info->layer;
        EXPECT_TRUE(layer == "graph" || layer == "shard") << code;
    }
}

} // namespace
} // namespace beethoven
