/**
 * @file
 * Tests for the elaboration-time composition linter (src/lint/):
 * the diagnostic registry, one positive and one negative case per
 * diagnostic code, all-findings-at-once collection, and the rewired
 * AcceleratorSoc::validate() failure report.
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/vecadd.h"
#include "core/elab_params.h"
#include "core/soc.h"
#include "lint/lint.h"
#include "platform/sim_platform.h"

namespace beethoven
{
namespace
{

using lint::DiagnosticReport;
using lint::Severity;

/** SimulationPlatform with every lint-relevant knob overridable. */
class LintTestPlatform : public SimulationPlatform
{
  public:
    unsigned nSlrs = 1;
    unsigned hostSlrIdx = 0;
    unsigned memorySlrIdx = 0;
    NocParams noc;
    unsigned idBits = 8;
    double derate = 1.0;

    std::string name() const override { return "LintTest"; }

    AxiConfig
    memoryConfig() const override
    {
        AxiConfig cfg = SimulationPlatform::memoryConfig();
        cfg.idBits = idBits;
        return cfg;
    }

    std::vector<SlrDescriptor>
    slrs() const override
    {
        const SlrDescriptor proto = SimulationPlatform::slrs().at(0);
        std::vector<SlrDescriptor> out;
        for (unsigned i = 0; i < nSlrs; ++i) {
            SlrDescriptor s = proto;
            s.name = "SLR" + std::to_string(i);
            s.hasHostInterface = i == hostSlrIdx;
            s.hasMemoryInterface = i == memorySlrIdx;
            out.push_back(s);
        }
        return out;
    }

    unsigned hostSlr() const override { return hostSlrIdx; }
    unsigned memorySlr() const override { return memorySlrIdx; }
    NocParams nocParams() const override { return noc; }
    double memoryCongestionDerate() const override { return derate; }
};

AcceleratorConfig
baseConfig(unsigned n_cores = 1)
{
    auto sys = VecAddCore::systemConfig(n_cores);
    sys.name = "Base";
    return AcceleratorConfig(sys);
}

DiagnosticReport
lintWith(const AcceleratorConfig &cfg,
         const Platform &platform = LintTestPlatform())
{
    return lint::lintComposition(cfg, platform);
}

// --- registry ---------------------------------------------------------

TEST(LintRegistry, CoversAllLayersWithStableUniqueCodes)
{
    const auto &reg = lint::diagnosticRegistry();
    EXPECT_GE(reg.size(), 12u);
    std::set<std::string> codes, layers;
    for (const auto &info : reg) {
        EXPECT_TRUE(codes.insert(info.code).second)
            << "duplicate code " << info.code;
        layers.insert(info.layer);
        EXPECT_EQ(std::string(info.code).rfind("BTH", 0), 0u)
            << info.code;
    }
    const std::set<std::string> expect_layers = {
        "config", "memory", "axi", "noc", "placement",
        // Simulation-graph analyzer layers (src/analysis/, BTH1xx).
        "graph", "shard"};
    EXPECT_EQ(layers, expect_layers);
    EXPECT_NE(lint::findDiagnosticCode("BTH001"), nullptr);
    EXPECT_EQ(lint::findDiagnosticCode("BTH999"), nullptr);
}

TEST(LintRegistry, RuleTablesSpanEveryLayer)
{
    std::set<std::string> layers;
    for (const auto &rule : lint::lintRules())
        layers.insert(rule.layer);
    EXPECT_EQ(layers.size(), 5u);
}

TEST(LintRegistry, ReportStampsSeverityFromRegistry)
{
    DiagnosticReport rep;
    rep.add("BTH004", "p", "m");
    rep.add("BTH032", "p", "m");
    ASSERT_EQ(rep.diagnostics().size(), 2u);
    EXPECT_EQ(rep.diagnostics()[0].severity, Severity::Error);
    EXPECT_EQ(rep.diagnostics()[1].severity, Severity::Warning);
    EXPECT_EQ(rep.errorCount(), 1u);
    EXPECT_EQ(rep.warningCount(), 1u);
    EXPECT_TRUE(rep.hasErrors());
}

// --- baseline ---------------------------------------------------------

TEST(Lint, CleanConfigHasNoFindings)
{
    const DiagnosticReport rep = lintWith(baseConfig());
    EXPECT_TRUE(rep.empty()) << rep.format();
}

// --- config layer: BTH001-BTH012 --------------------------------------

TEST(LintConfig, Bth001NoSystems)
{
    AcceleratorConfig cfg;
    EXPECT_TRUE(lintWith(cfg).has("BTH001"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH001"));
}

TEST(LintConfig, Bth002EmptySystemName)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].name = "";
    EXPECT_TRUE(lintWith(cfg).has("BTH002"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH002"));
}

TEST(LintConfig, Bth003DuplicateSystemName)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems.push_back(cfg.systems[0]);
    EXPECT_TRUE(lintWith(cfg).has("BTH003"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH003"));
}

TEST(LintConfig, Bth004ZeroCores)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].nCores = 0;
    EXPECT_TRUE(lintWith(cfg).has("BTH004"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH004"));
}

TEST(LintConfig, Bth005RoccRoutingOverflow)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].nCores = 2000; // > 1024-core routing space
    EXPECT_TRUE(lintWith(cfg).has("BTH005"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH005"));
}

TEST(LintConfig, Bth006MissingConstructor)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].moduleConstructor = nullptr;
    EXPECT_TRUE(lintWith(cfg).has("BTH006"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH006"));
}

TEST(LintConfig, Bth007ZeroChannels)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].nChannels = 0;
    EXPECT_TRUE(lintWith(cfg).has("BTH007"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH007"));
}

TEST(LintConfig, Bth008DuplicateChannelName)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels.push_back(
        cfg.systems[0].readChannels[0]);
    EXPECT_TRUE(lintWith(cfg).has("BTH008"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH008"));
}

TEST(LintConfig, Bth009DuplicateMemoryName)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].scratchpads.push_back({"sp", 32, 64, 1, 1, false});
    cfg.systems[0].scratchpads.push_back({"sp", 32, 64, 1, 1, false});
    EXPECT_TRUE(lintWith(cfg).has("BTH009"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH009"));
}

TEST(LintConfig, Bth010DanglingIntraPort)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].intraMemoryOuts.push_back(
        {"out", "NoSuchSystem", "nope", 1});
    EXPECT_TRUE(lintWith(cfg).has("BTH010"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH010"));
}

TEST(LintConfig, Bth011PointToPointCoreMismatch)
{
    AcceleratorConfig cfg = baseConfig(2);
    auto consumer = VecAddCore::systemConfig(3);
    consumer.name = "Consumer";
    IntraCoreMemoryPortInConfig pin;
    pin.name = "inbox";
    pin.commDeg = CommunicationDegree::PointToPoint;
    consumer.intraMemoryIns.push_back(pin);
    cfg.systems.push_back(consumer);
    cfg.systems[0].intraMemoryOuts.push_back(
        {"out", "Consumer", "inbox", 1});

    EXPECT_TRUE(lintWith(cfg).has("BTH011"));

    // Matching core counts are fine.
    cfg.systems[1].nCores = 2;
    EXPECT_FALSE(lintWith(cfg).has("BTH011"));
}

TEST(LintConfig, Bth012BindingCollision)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].commands.push_back(cfg.systems[0].commands[0]);
    EXPECT_TRUE(lintWith(cfg).has("BTH012"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH012"));

    // A command name that is not a valid C++ identifier also breaks
    // the generated bindings.
    AcceleratorConfig bad = baseConfig();
    bad.systems[0].commands[0] =
        CommandSpec("9lives", {CommandField::uint("x", 8)});
    EXPECT_TRUE(lintWith(bad).has("BTH012"));
}

TEST(Lint, Bth013UncalibratedPowerModel)
{
    // A platform that leaves Platform::powerModel() at the base-class
    // default elaborates with generic power coefficients: warn, never
    // block.
    class UncalibratedPlatform : public LintTestPlatform
    {
      public:
        PowerModel powerModel() const override { return PowerModel{}; }
    };
    const DiagnosticReport rep =
        lintWith(baseConfig(), UncalibratedPlatform());
    EXPECT_TRUE(rep.has("BTH013"));
    EXPECT_FALSE(rep.hasErrors()) << rep.format();
    EXPECT_EQ(rep.warningCount(), 1u);

    // Every calibrated platform (including the test/fuzz simulation
    // platform) stays BTH013-free.
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH013"));
}

// --- memory layer: BTH020-BTH023 ---------------------------------------

TEST(LintMemory, Bth020NonConvertibleWidth)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].dataBytes = 24; // 64 % 24 != 0
    EXPECT_TRUE(lintWith(cfg).has("BTH020"));

    // Wide-over-narrow with an integral ratio is legal (the fabric
    // packs/splits beats), as is narrow-over-wide.
    AcceleratorConfig wide = baseConfig();
    wide.systems[0].readChannels[0].dataBytes = 128;
    EXPECT_FALSE(lintWith(wide).has("BTH020"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH020"));
}

TEST(LintMemory, Bth021ZeroSizedMemory)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].scratchpads.push_back({"sp", 32, 0, 1, 1, false});
    EXPECT_TRUE(lintWith(cfg).has("BTH021"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH021"));
}

TEST(LintMemory, Bth022ScratchpadOverCapacity)
{
    AcceleratorConfig cfg = baseConfig();
    // ~2 Gbit in one core: no SLR (8000 BRAM / 4000 URAM) can hold it
    // in either cell family.
    cfg.systems[0].scratchpads.push_back(
        {"huge", 1024, 1u << 21, 1, 1, false});
    EXPECT_TRUE(lintWith(cfg).has("BTH022"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH022"));

    // A modest scratchpad is clean.
    AcceleratorConfig small = baseConfig();
    small.systems[0].scratchpads.push_back(
        {"small", 32, 1024, 1, 1, false});
    EXPECT_FALSE(lintWith(small).has("BTH022"));
}

TEST(LintMemory, Bth023BurstBeyondBusLimit)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].burstBeats = 128; // bus limit 64
    EXPECT_TRUE(lintWith(cfg).has("BTH023"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH023"));
}

// --- axi layer: BTH030-BTH032 ------------------------------------------

TEST(LintAxi, Bth030IdExhaustion)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].maxInflight = 300; // > 256 IDs
    const DiagnosticReport rep = lintWith(cfg);
    EXPECT_TRUE(rep.has("BTH030"));
    // The message stays actionable ("AXI IDs" is the grep handle the
    // existing soc tests rely on).
    EXPECT_NE(rep.format().find("AXI IDs"), std::string::npos);
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH030"));
}

TEST(LintAxi, Bth030ExactFitIsClean)
{
    // 64 TLP readers x 4 IDs == the full 256-ID space: legal.
    AcceleratorConfig cfg = baseConfig(64);
    EXPECT_FALSE(lintWith(cfg).has("BTH030"));
    // One more endpoint tips it over.
    AcceleratorConfig over = baseConfig(65);
    EXPECT_TRUE(lintWith(over).has("BTH030"));
}

TEST(LintAxi, Bth031ControllerOversubscription)
{
    // 25 cores x (4 read + 4 write) in-flight = 200 > 8 x 16 banks.
    AcceleratorConfig cfg = baseConfig(25);
    const DiagnosticReport rep = lintWith(cfg);
    EXPECT_TRUE(rep.has("BTH031"));
    EXPECT_EQ(rep.errorCount(), 0u) << rep.format();
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH031"));
}

TEST(LintAxi, Bth032InflightWithoutTlp)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].useTlp = false;
    cfg.systems[0].readChannels[0].maxInflight = 4;
    const DiagnosticReport rep = lintWith(cfg);
    EXPECT_TRUE(rep.has("BTH032"));
    EXPECT_EQ(rep.errorCount(), 0u);

    // Non-TLP with a single transaction in flight is the intended
    // low-cost configuration.
    AcceleratorConfig ok = baseConfig();
    ok.systems[0].readChannels[0].useTlp = false;
    ok.systems[0].readChannels[0].maxInflight = 1;
    EXPECT_FALSE(lintWith(ok).has("BTH032"));
}

// --- noc layer: BTH040-BTH042 ------------------------------------------

TEST(LintNoc, Bth040RootSlrOutOfRange)
{
    LintTestPlatform p;
    p.nSlrs = 1;
    p.hostSlrIdx = 5;
    EXPECT_TRUE(lintWith(baseConfig(), p).has("BTH040"));

    LintTestPlatform mem_oob;
    mem_oob.memorySlrIdx = 3;
    EXPECT_TRUE(lintWith(baseConfig(), mem_oob).has("BTH040"));

    LintTestPlatform dead;
    dead.noc.queueDepth = 0;
    EXPECT_TRUE(lintWith(baseConfig(), dead).has("BTH040"));

    EXPECT_FALSE(lintWith(baseConfig()).has("BTH040"));
}

TEST(LintNoc, Bth041UnderBufferedCrossing)
{
    LintTestPlatform p;
    p.nSlrs = 2;
    p.noc.queueDepth = 2;
    p.noc.slrCrossingLatency = 4;
    const DiagnosticReport rep = lintWith(baseConfig(), p);
    EXPECT_TRUE(rep.has("BTH041"));
    EXPECT_EQ(rep.errorCount(), 0u);

    // Deep-enough queues, or a single-SLR device, are clean.
    LintTestPlatform deep = p;
    deep.noc.queueDepth = 4;
    EXPECT_FALSE(lintWith(baseConfig(), deep).has("BTH041"));
    LintTestPlatform single;
    single.noc.queueDepth = 2;
    single.noc.slrCrossingLatency = 4;
    EXPECT_FALSE(lintWith(baseConfig(), single).has("BTH041"));
}

TEST(LintNoc, Bth042RootLinkOversubscription)
{
    // 64 cores x 8 B/cycle of stream demand = 512 > 4 x 64-byte root.
    AcceleratorConfig cfg = baseConfig(64);
    const DiagnosticReport rep = lintWith(cfg);
    EXPECT_TRUE(rep.has("BTH042"));
    EXPECT_EQ(rep.errorCount(), 0u) << rep.format();
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH042"));
}

// --- placement layer: BTH050-BTH051 ------------------------------------

TEST(LintPlacement, Bth050CoreFitsNoSlr)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].kernelResources.lut = 5e6; // SLR holds 3.2M
    const DiagnosticReport rep = lintWith(cfg);
    EXPECT_TRUE(rep.has("BTH050"));
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH050"));
}

TEST(LintPlacement, Bth051AggregateOverDevice)
{
    // Each core fits comfortably; eighty of them cannot.
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].nCores = 80;
    cfg.systems[0].kernelResources.lut = 50000;
    const DiagnosticReport rep = lintWith(cfg);
    EXPECT_TRUE(rep.has("BTH051"));
    EXPECT_FALSE(rep.has("BTH050")) << rep.format();
    // The worst offender is named.
    EXPECT_NE(rep.format().find("worst offender"), std::string::npos);
    EXPECT_FALSE(lintWith(baseConfig()).has("BTH051"));
}

// --- collection semantics ----------------------------------------------

TEST(Lint, CollectsFindingsAcrossAllLayersAtOnce)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].dataBytes = 24;   // BTH020
    cfg.systems[0].readChannels[0].burstBeats = 128; // BTH023
    auto bad = VecAddCore::systemConfig(0);          // BTH004
    bad.name = "Base";                               // BTH003
    cfg.systems.push_back(bad);

    const DiagnosticReport rep = lintWith(cfg);
    for (const char *code : {"BTH003", "BTH004", "BTH020", "BTH023"})
        EXPECT_TRUE(rep.has(code)) << code << "\n" << rep.format();
    EXPECT_GE(rep.errorCount(), 4u);
}

TEST(Lint, ElaborationReportsEveryViolationBeforeFailing)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].dataBytes = 24; // BTH020
    auto bad = VecAddCore::systemConfig(0);        // BTH004
    bad.name = "Base";                             // BTH003
    cfg.systems.push_back(bad);

    SimulationPlatform platform;
    try {
        AcceleratorSoc soc(cfg, platform);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        for (const char *code : {"BTH003", "BTH004", "BTH020"}) {
            EXPECT_NE(what.find(code), std::string::npos)
                << "missing " << code << " in:\n" << what;
        }
    }
}

TEST(Lint, WarningsAloneDoNotBlockElaboration)
{
    AcceleratorConfig cfg = baseConfig();
    cfg.systems[0].readChannels[0].useTlp = false;
    cfg.systems[0].readChannels[0].maxInflight = 4; // BTH032 warning
    ASSERT_TRUE(lintWith(cfg).has("BTH032"));
    SimulationPlatform platform;
    EXPECT_NO_THROW(AcceleratorSoc(cfg, platform));
}

TEST(Lint, JsonReportIsWellFormedEnoughToGrep)
{
    AcceleratorConfig cfg;
    const std::string json = lintWith(cfg).toJson();
    EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(json.find("\"BTH001\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

// --- shared parameter resolution ----------------------------------------

TEST(Lint, LinterAndElaborationShareKnobResolution)
{
    // The linter reasons over the same resolved parameters elaboration
    // uses; a zero-valued knob means "platform default" in both.
    SimulationPlatform platform;
    ReadChannelConfig rc;
    rc.dataBytes = 8;
    rc.burstBeats = 0;
    rc.maxInflight = 0;
    const ReaderParams p = resolveReaderParams(rc, platform);
    EXPECT_EQ(p.burstBeats, platform.defaultBurstBeats());
    EXPECT_EQ(p.maxInflight, platform.defaultMaxInflight());

    const AcceleratorConfig cfg = baseConfig();
    const auto model =
        lint::buildCompositionModel(cfg, platform);
    ASSERT_EQ(model.systemCoreLogic.size(), 1u);
    const AcceleratorSoc soc(cfg, platform);
    const ResourceVec via_soc = soc.coreLogicResources("Base");
    const ResourceVec &via_lint = model.systemCoreLogic[0];
    EXPECT_DOUBLE_EQ(via_soc.lut, via_lint.lut);
    EXPECT_DOUBLE_EQ(via_soc.ff, via_lint.ff);
    EXPECT_DOUBLE_EQ(via_soc.clb, via_lint.clb);
}

} // namespace
} // namespace beethoven
