/**
 * @file
 * Tests for the resource-estimation models: monotonicity in the knobs
 * that should matter, Table II calibration anchors, and interconnect
 * scaling with tree size.
 */

#include <gtest/gtest.h>

#include "mem/resource_model.h"

namespace beethoven
{
namespace
{

TEST(ResourceModel, ReaderLogicGrowsWithWidthAndDepth)
{
    AxiConfig bus;
    ReaderParams narrow;
    narrow.dataBytes = 4;
    ReaderParams wide = narrow;
    wide.dataBytes = 64;
    EXPECT_GT(readerLogicResources(wide, bus).lut,
              readerLogicResources(narrow, bus).lut);

    ReaderParams shallow = narrow;
    shallow.maxInflight = 1;
    ReaderParams deep = narrow;
    deep.maxInflight = 16;
    EXPECT_GT(readerLogicResources(deep, bus).lut,
              readerLogicResources(shallow, bus).lut);
}

TEST(ResourceModel, ReaderLogicNearTableII)
{
    // Table II reports ~2.3K LUT / ~2.6K FF for an A3 reader.
    AxiConfig bus;
    bus.dataBytes = 64;
    ReaderParams p;
    p.dataBytes = 64;
    const ResourceVec r = readerLogicResources(p, bus);
    EXPECT_GT(r.lut, 1200.0);
    EXPECT_LT(r.lut, 3500.0);
    EXPECT_GT(r.ff, r.lut) << "readers are register-heavy";
}

TEST(ResourceModel, ReaderBufferGeometryMatchesPrefetchDepth)
{
    AxiConfig bus;
    bus.dataBytes = 64;
    ReaderParams p;
    p.burstBeats = 64;
    p.maxInflight = 4;
    const MemoryRequest req = readerBufferRequest(p, bus);
    EXPECT_EQ(req.widthBits, 512u);
    EXPECT_EQ(req.depth, 256u); // 4 bursts of 64 beats
}

TEST(ResourceModel, WriterStageSmallerThanReaderBuffer)
{
    AxiConfig bus;
    bus.dataBytes = 64;
    ReaderParams rp;
    rp.burstBeats = 64;
    rp.maxInflight = 4;
    WriterParams wp;
    wp.burstBeats = 64;
    wp.maxInflight = 4;
    EXPECT_LT(writerBufferRequest(wp, bus).depth,
              readerBufferRequest(rp, bus).depth);
}

TEST(ResourceModel, ScratchpadControlScalesWithPortsAndWidth)
{
    ScratchpadParams one;
    one.dataWidthBits = 32;
    one.nPorts = 1;
    ScratchpadParams four = one;
    four.nPorts = 4;
    EXPECT_GT(scratchpadControlResources(four).lut,
              scratchpadControlResources(one).lut);
    ScratchpadParams wide = one;
    wide.dataWidthBits = 512;
    EXPECT_GT(scratchpadControlResources(wide).lut,
              scratchpadControlResources(one).lut);
}

TEST(ResourceModel, TreeResourcesScaleWithNodes)
{
    TreeStats small{4, 8, 1};
    TreeStats large{40, 80, 2};
    const ResourceVec s = treeResources(small, 64, 4);
    const ResourceVec l = treeResources(large, 64, 4);
    EXPECT_GT(l.lut, 5 * s.lut);
    EXPECT_DOUBLE_EQ(s.bram, 0.0);
    EXPECT_DOUBLE_EQ(l.uram, 0.0);
}

TEST(ResourceModel, WideFlitsCostMoreThanNarrow)
{
    TreeStats stats{10, 20, 1};
    EXPECT_GT(treeResources(stats, 64, 4).lut,
              treeResources(stats, 2, 4).lut);
}

TEST(ResourceModel, ClbTracksLuts)
{
    AxiConfig bus;
    ReaderParams p;
    const ResourceVec r = readerLogicResources(p, bus);
    EXPECT_GT(r.clb, 0.0);
    EXPECT_NEAR(r.clb, r.lut / 6.6, r.lut * 0.01);
}

} // namespace
} // namespace beethoven
