/**
 * @file
 * Tests for the host runtime: HostInterface serialization and latency,
 * DMA round trips, response-token allocation and matching, multiple
 * outstanding responses, and hung-accelerator timeouts.
 */

#include <gtest/gtest.h>

#include "accel/vecadd.h"
#include "platform/aws_f1.h"
#include "platform/sim_platform.h"
#include "runtime/fpga_handle.h"

namespace beethoven
{
namespace
{

TEST(HostInterface, OperationsSerializeWithLatency)
{
    AwsF1Platform platform; // 125-cycle reads, 62-cycle writes
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    HostInterface host(soc.sim(), "host", soc.mmio(), soc.memory(),
                       platform);

    std::vector<Cycle> completions;
    for (int i = 0; i < 3; ++i) {
        HostOp op;
        op.kind = HostOp::Kind::Read32;
        op.offset = mmio_regs::cmdReady;
        op.done = [&](u32) { completions.push_back(soc.sim().cycle()); };
        host.enqueue(std::move(op));
    }
    soc.sim().runUntil([&] { return completions.size() == 3; },
                       10000);
    ASSERT_EQ(completions.size(), 3u);
    // Each read occupies the link for its full latency.
    EXPECT_GE(completions[1] - completions[0], 124u);
    EXPECT_GE(completions[2] - completions[1], 124u);
}

TEST(HostInterface, DmaMovesExactBytes)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    HostInterface host(soc.sim(), "host", soc.mmio(), soc.memory(),
                       platform);

    std::vector<u8> src(1000);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<u8>(i * 7);
    bool done = false;
    HostOp out;
    out.kind = HostOp::Kind::DmaToDevice;
    out.devAddr = 0x7000;
    out.hostSrc = src.data();
    out.len = src.size();
    out.done = [&](u32) { done = true; };
    host.enqueue(std::move(out));
    soc.sim().runUntil([&] { return done; }, 10000);
    ASSERT_TRUE(done);

    std::vector<u8> back(1000);
    done = false;
    HostOp in;
    in.kind = HostOp::Kind::DmaFromDevice;
    in.devAddr = 0x7000;
    in.hostDst = back.data();
    in.len = back.size();
    in.done = [&](u32) { done = true; };
    host.enqueue(std::move(in));
    soc.sim().runUntil([&] { return done; }, 10000);
    ASSERT_TRUE(done);
    EXPECT_EQ(back, src);
}

TEST(HostInterface, DmaCostScalesWithSize)
{
    AwsF1Platform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    HostInterface host(soc.sim(), "host", soc.mmio(), soc.memory(),
                       platform);

    auto time_dma = [&](std::size_t len) {
        std::vector<u8> buf(len);
        bool done = false;
        HostOp op;
        op.kind = HostOp::Kind::DmaToDevice;
        op.devAddr = 0x9000;
        op.hostSrc = buf.data();
        op.len = len;
        op.done = [&](u32) { done = true; };
        const Cycle start = soc.sim().cycle();
        host.enqueue(std::move(op));
        soc.sim().runUntil([&] { return done; }, 10'000'000);
        return soc.sim().cycle() - start;
    };
    const Cycle small = time_dma(4096);
    const Cycle large = time_dma(1_MiB);
    EXPECT_GT(large, 4 * small);
}

TEST(RuntimeServer, RdTokensRotatePerCore)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(2));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    const u32 a0 = server.allocateRd(0, 0);
    const u32 a1 = server.allocateRd(0, 0);
    const u32 b0 = server.allocateRd(0, 1);
    EXPECT_NE(a0, a1);
    EXPECT_EQ(a0, b0) << "counters are per (system, core)";
    for (int i = 0; i < 40; ++i)
        EXPECT_LT(server.allocateRd(0, 0), 32u);
}

TEST(RuntimeServer, OutOfOrderCollection)
{
    // Issue to two cores, collect in reverse completion order.
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(2));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);

    remote_ptr small = handle.malloc(64);
    remote_ptr big = handle.malloc(64 * 1024);
    handle.copy_to_fpga(small);
    handle.copy_to_fpga(big);
    auto slow = handle.invoke("MyAcceleratorSystem", "my_accel", 0,
                              {1, big.getFpgaAddr(), 16384});
    auto fast = handle.invoke("MyAcceleratorSystem", "my_accel", 1,
                              {1, small.getFpgaAddr(), 16});
    // Wait for the slow one first even though fast finishes earlier.
    slow.get();
    fast.get();
    SUCCEED();
}

TEST(RuntimeServer, HungAcceleratorTimesOut)
{
    // A core that never responds: pollCommand consumed, no respond().
    SimulationPlatform platform;
    AcceleratorSystemConfig sys;
    sys.name = "BlackHole";
    sys.nCores = 1;
    struct SilentCore : AcceleratorCore
    {
        explicit SilentCore(const CoreContext &ctx)
            : AcceleratorCore(ctx)
        {}
        void
        tick() override
        {
            pollCommand(); // swallow and ignore
        }
    };
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<SilentCore>(ctx);
    };
    sys.commands.push_back(CommandSpec("void_call", {}));
    AcceleratorSoc soc(AcceleratorConfig(sys), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    auto h = handle.invoke("BlackHole", "void_call", 0, {});
    // Use a short timeout so the test is fast.
    EXPECT_THROW(
        server.waitFor({0, 0, 0}, /*timeout=*/20000), ConfigError);
    (void)h;
}

TEST(FpgaHandle, InvokeValidatesNames)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    EXPECT_THROW(handle.invoke("NoSystem", "my_accel", 0, {1, 0, 0}),
                 ConfigError);
    EXPECT_THROW(
        handle.invoke("MyAcceleratorSystem", "no_cmd", 0, {1, 0, 0}),
        ConfigError);
    EXPECT_THROW(
        handle.invoke("MyAcceleratorSystem", "my_accel", 7,
                      {1, 0, 0}),
        ConfigError);
}

TEST(FpgaHandle, MallocFreeCycle)
{
    SimulationPlatform platform;
    AcceleratorConfig cfg(VecAddCore::systemConfig(1));
    AcceleratorSoc soc(std::move(cfg), platform);
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    remote_ptr a = handle.malloc(4096);
    const u64 allocated = server.allocator().bytesAllocated();
    EXPECT_GE(allocated, 4096u);
    handle.free(a);
    EXPECT_EQ(server.allocator().bytesAllocated(), allocated - 4096);
}

TEST(RemotePtr, OffsetSharesHostBuffer)
{
    remote_ptr base(0x1000, 256);
    base.getHostAddr()[100] = 42;
    remote_ptr view = base.offset(100);
    EXPECT_EQ(view.getFpgaAddr(), 0x1064u);
    EXPECT_EQ(view.size(), 156u);
    EXPECT_EQ(view.getHostAddr()[0], 42);
    view.getHostAddr()[1] = 7;
    EXPECT_EQ(base.getHostAddr()[101], 7);
}

} // namespace
} // namespace beethoven
