/**
 * @file
 * Tests for the sparse functional backing store.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "dram/functional_memory.h"

namespace beethoven
{
namespace
{

TEST(FunctionalMemory, UnwrittenReadsAsZero)
{
    FunctionalMemory mem;
    u8 buf[16];
    std::fill(std::begin(buf), std::end(buf), 0xFF);
    mem.read(0x123456, sizeof(buf), buf);
    for (u8 b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.numPages(), 0u) << "reads must not materialize pages";
}

TEST(FunctionalMemory, WriteReadRoundTrip)
{
    FunctionalMemory mem;
    const std::vector<u8> data = {1, 2, 3, 4, 5};
    mem.write(100, data.size(), data.data());
    std::vector<u8> out(5);
    mem.read(100, 5, out.data());
    EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, CrossPageAccess)
{
    FunctionalMemory mem;
    // Span three pages.
    std::vector<u8> data(2 * FunctionalMemory::pageBytes + 100);
    Rng rng(5);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    const Addr base = FunctionalMemory::pageBytes - 50;
    mem.write(base, data.size(), data.data());
    std::vector<u8> out(data.size());
    mem.read(base, out.size(), out.data());
    EXPECT_EQ(out, data);
    EXPECT_EQ(mem.numPages(), 4u);
}

TEST(FunctionalMemory, TypedAccessors)
{
    FunctionalMemory mem;
    mem.writeValue<u64>(0x1000, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(mem.readValue<u64>(0x1000), 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(mem.readValue<u32>(0x1000), 0xCAFEF00Du);
    mem.writeValue<double>(0x2000, 3.25);
    EXPECT_EQ(mem.readValue<double>(0x2000), 3.25);
}

TEST(FunctionalMemory, MaskedWriteOnlyTouchesEnabledBytes)
{
    FunctionalMemory mem;
    const std::vector<u8> base(8, 0xAA);
    mem.write(64, base.size(), base.data());

    std::vector<u8> data = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<bool> strb = {true, false, true, false,
                              false, false, false, true};
    mem.writeMasked(64, data, strb);

    std::vector<u8> out(8);
    mem.read(64, 8, out.data());
    EXPECT_EQ(out, (std::vector<u8>{1, 0xAA, 3, 0xAA, 0xAA, 0xAA, 0xAA,
                                    8}));
}

TEST(FunctionalMemory, EmptyStrobeWritesEverything)
{
    FunctionalMemory mem;
    std::vector<u8> data = {9, 8, 7};
    mem.writeMasked(0, data, {});
    std::vector<u8> out(3);
    mem.read(0, 3, out.data());
    EXPECT_EQ(out, data);
}

TEST(FunctionalMemory, RandomSparseTraffic)
{
    FunctionalMemory mem;
    Rng rng(77);
    std::map<Addr, u8> model;
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.nextBounded(1ull << 30);
        const u8 v = static_cast<u8>(rng.next());
        mem.write(addr, 1, &v);
        model[addr] = v;
    }
    for (const auto &[addr, v] : model) {
        u8 got = 0;
        mem.read(addr, 1, &got);
        ASSERT_EQ(got, v) << "addr " << addr;
    }
}

} // namespace
} // namespace beethoven
