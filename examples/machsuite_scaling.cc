/**
 * @file
 * Multi-core scaling exploration — the Section III-B workflow in
 * miniature: take one MachSuite kernel (NW), sweep the System's core
 * count with a one-line configuration change ("Developers can create
 * multicore Systems by simply changing the assigned value of nCores"),
 * and report measured wall-clock scaling through the full runtime.
 */

#include <cstdio>
#include <vector>

#include "accel/machsuite/nw.h"
#include "base/rng.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;
using namespace beethoven::machsuite;

int
main()
{
    setInformEnabled(false);
    const unsigned n = 256;
    const unsigned ops_per_core = 2;

    std::printf("NW (N=%u) multi-core scaling on AWS F1:\n", n);
    std::printf("%6s %14s %12s %10s\n", "cores", "wall cycles",
                "ops/s", "scaling");

    double base_ops = 0.0;
    for (unsigned n_cores : {1u, 2u, 4u, 8u, 16u}) {
        AwsF1Platform platform;
        AcceleratorSoc soc(
            AcceleratorConfig(NwCore::systemConfig(n_cores)), platform);
        RuntimeServer runtime(soc);
        fpga_handle_t handle(runtime);

        Rng rng(n_cores);
        std::vector<std::vector<u64>> args;
        for (unsigned c = 0; c < n_cores; ++c) {
            remote_ptr a = handle.malloc(n);
            remote_ptr b = handle.malloc(n);
            remote_ptr out = handle.malloc((n + 1) * 4);
            for (unsigned i = 0; i < n; ++i) {
                a.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
                b.getHostAddr()[i] = "ACGT"[rng.nextBounded(4)];
            }
            handle.copy_to_fpga(a);
            handle.copy_to_fpga(b);
            args.push_back({a.getFpgaAddr(), b.getFpgaAddr(),
                            out.getFpgaAddr(), n});
        }

        const Cycle start = soc.sim().cycle();
        std::vector<response_handle<u64>> pending;
        for (unsigned op = 0; op < ops_per_core; ++op) {
            for (unsigned c = 0; c < n_cores; ++c)
                pending.push_back(
                    handle.invoke("NwSystem", "nw", c, args[c]));
        }
        for (auto &h : pending)
            h.get();
        const Cycle wall = soc.sim().cycle() - start;

        const double ops =
            double(ops_per_core) * n_cores * platform.clockMHz() *
            1e6 / double(wall);
        if (n_cores == 1)
            base_ops = ops;
        std::printf("%6u %14llu %12.0f %9.2fx\n", n_cores,
                    static_cast<unsigned long long>(wall), ops,
                    ops / base_ops);
    }
    std::printf("\nScaling bends away from linear as dispatch "
                "serializes on the host interface\n"
                "(the Fig. 6 ideal-vs-measured gap).\n");
    return 0;
}
