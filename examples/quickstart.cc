/**
 * @file
 * Quickstart — the paper's running example, end to end (Figs. 2/3).
 *
 * A vector-addition accelerator Core (one Reader + one Writer) is
 * composed into a System, elaborated for the Kria KV260 embedded
 * platform, and driven through the Beethoven software library exactly
 * as Fig. 3c shows:
 *
 *     fpga_handle_t handle;
 *     remote_ptr mem = handle.malloc(1024);
 *     my_init(mem.getHostAddr());
 *     handle.copy_to_fpga(mem);
 *     auto resp = my_accel(0, 0xCAFE, mem, 1024 / sizeof(uint32_t));
 *     resp.get();
 *     handle.copy_from_fpga(mem);
 *
 * It also prints the C++ bindings Beethoven generates for the
 * accelerator's command format (Fig. 3b).
 */

#include <cstdio>

#include "accel/vecadd.h"
#include "bindgen/bindgen.h"
#include "platform/kria.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;

int
main()
{
    // --- Fig. 3a: configuration + elaboration -----------------------
    KriaPlatform platform;
    AcceleratorConfig config(VecAddCore::systemConfig(/*n_cores=*/1));
    AcceleratorSoc soc(std::move(config), platform);
    RuntimeServer runtime(soc);

    // --- Fig. 3b: the generated C++ bindings -------------------------
    const auto bindings = generateBindings(soc.config());
    std::printf("=== Generated %s ===\n%s\n", bindings.headerName.c_str(),
                bindings.header.c_str());

    // --- Fig. 3c: the host program -----------------------------------
    fpga_handle_t handle(runtime);

    remote_ptr mem = handle.malloc(1024);
    auto *values = mem.as<u32>();
    const unsigned n_eles = 1024 / sizeof(u32);
    for (unsigned i = 0; i < n_eles; ++i)
        values[i] = i; // my_init()
    handle.copy_to_fpga(mem);

    auto resp = handle.invoke("MyAcceleratorSystem", "my_accel", 0,
                              {0xCAFE, mem.getFpgaAddr(), n_eles});
    resp.get(); // wait for the accelerator to complete
    handle.copy_from_fpga(mem);

    unsigned errors = 0;
    for (unsigned i = 0; i < n_eles; ++i) {
        if (values[i] != i + 0xCAFE)
            ++errors;
    }
    std::printf("vector add of %u elements on %s: %s (simulated %llu "
                "cycles)\n",
                n_eles, platform.name().c_str(),
                errors == 0 ? "PASS" : "FAIL",
                static_cast<unsigned long long>(soc.sim().cycle()));
    return errors == 0 ? 0 : 1;
}
