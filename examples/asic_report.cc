/**
 * @file
 * ASIC target flow (Section II-D, "ASIC Platforms"): elaborate the A3
 * attention core for the ASAP7 platform and report what a ChipKIT-
 * style test-chip integration consumes — compiled SRAM macros (the
 * memory-compiler cascade/banking output), gate-equivalent logic, die
 * area, and the projected 1 GHz throughput.
 */

#include <cstdio>

#include "accel/a3/a3_core.h"
#include "base/rng.h"
#include "platform/asap7.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;
using namespace beethoven::a3;

int
main()
{
    setInformEnabled(false);
    Asap7Platform platform;
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(1)),
                       platform);

    std::printf("# A3 single-core test chip on %s @%0.0f MHz\n\n",
                platform.name().c_str(), platform.clockMHz());

    std::printf("SRAM macros (memory compiler output):\n");
    double total_area = 0.0;
    for (const auto &rec : soc.memoryMappings()) {
        std::printf("  %-22s %-14s %2ux wide, %2ux deep, %u replicas "
                    "-> %3u x %s (%.0f um^2)\n",
                    rec.owner.c_str(), rec.role.c_str(),
                    rec.mapping.cellsWide, rec.mapping.cellsDeep,
                    rec.mapping.replicas, rec.mapping.totalCells(),
                    rec.mapping.cell.name.c_str(),
                    rec.mapping.resources.areaUm2);
        total_area += rec.mapping.resources.areaUm2;
    }
    const ResourceVec used = soc.floorplan().used(0);
    std::printf("\nlogic: %.0f gate-equivalents, %.0f flops\n",
                used.lut, used.ff);
    std::printf("total SRAM macros: %.0f, SRAM area: %.0f um^2\n",
                used.sramMacros, total_area);

    // Project throughput with a short measured batch.
    RuntimeServer server(soc);
    fpga_handle_t handle(server);
    const unsigned n_keys = 320, n_queries = 64;
    Rng rng(9);
    remote_ptr kmem = handle.malloc(n_keys * 64);
    remote_ptr vmem = handle.malloc(n_keys * 64);
    remote_ptr qmem = handle.malloc(n_queries * 64);
    remote_ptr omem = handle.malloc(n_queries * 64);
    for (unsigned i = 0; i < n_keys * 64; ++i) {
        kmem.getHostAddr()[i] = static_cast<u8>(rng.next());
        vmem.getHostAddr()[i] = static_cast<u8>(rng.next());
    }
    handle.copy_to_fpga(kmem);
    handle.copy_to_fpga(vmem);
    handle.copy_to_fpga(qmem);
    handle
        .invoke("A3System", "load_matrices", 0,
                {kmem.getFpgaAddr(), vmem.getFpgaAddr(), n_keys})
        .get();
    handle
        .invoke("A3System", "attend", 0,
                {qmem.getFpgaAddr(), omem.getFpgaAddr(), n_queries})
        .get();
    auto &core = static_cast<A3Core &>(soc.core("A3System", 0));
    const double per_query =
        double(core.lastKernelCycles()) / n_queries;
    std::printf("\nmeasured: %.1f cycles/query -> %.2f M attention "
                "ops/s at 1 GHz\n",
                per_query, 1000.0 / per_query);
    std::printf("(the original A3 ASIC publication reported 2.94 M "
                "ops/s ideal per core)\n");
    return 0;
}
