/**
 * @file
 * Attention inference — the Section III-C case study as an
 * application: a multi-core A3 accelerator on AWS F1 serving batched
 * BERT-shaped attention (320 keys, 64-dim, int8), checked against the
 * bit-exact software reference and reported as throughput.
 */

#include <cstdio>
#include <cstring>

#include "accel/a3/a3_core.h"
#include "base/rng.h"
#include "baselines/attention_sw.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;
using namespace beethoven::a3;

int
main()
{
    setInformEnabled(false);
    const unsigned n_cores = 8;
    const unsigned n_keys = 320;
    const unsigned queries_per_core = 32;

    AwsF1Platform platform;
    AcceleratorSoc soc(AcceleratorConfig(A3Core::systemConfig(n_cores)),
                       platform);
    RuntimeServer runtime(soc);
    fpga_handle_t handle(runtime);

    // Shared stationary matrices.
    Rng rng(1234);
    std::vector<i8> keys(n_keys * A3Params::dim);
    std::vector<i8> values(n_keys * A3Params::dim);
    for (auto &v : keys)
        v = static_cast<i8>(rng.nextRange(0, 255) - 128);
    for (auto &v : values)
        v = static_cast<i8>(rng.nextRange(0, 255) - 128);
    remote_ptr kmem = handle.malloc(keys.size());
    remote_ptr vmem = handle.malloc(values.size());
    std::memcpy(kmem.getHostAddr(), keys.data(), keys.size());
    std::memcpy(vmem.getHostAddr(), values.data(), values.size());
    handle.copy_to_fpga(kmem);
    handle.copy_to_fpga(vmem);

    std::vector<response_handle<u64>> loads;
    for (unsigned c = 0; c < n_cores; ++c) {
        loads.push_back(
            handle.invoke("A3System", "load_matrices", c,
                          {kmem.getFpgaAddr(), vmem.getFpgaAddr(),
                           n_keys}));
    }
    for (auto &l : loads)
        l.get();

    // Per-core query batches.
    std::vector<remote_ptr> qbufs, obufs;
    std::vector<std::vector<i8>> all_queries;
    for (unsigned c = 0; c < n_cores; ++c) {
        remote_ptr q = handle.malloc(queries_per_core * 64);
        remote_ptr o = handle.malloc(queries_per_core * 64);
        for (unsigned i = 0; i < queries_per_core; ++i) {
            std::vector<i8> query(A3Params::dim);
            for (auto &v : query)
                v = static_cast<i8>(rng.nextRange(0, 255) - 128);
            std::memcpy(q.getHostAddr() + i * 64, query.data(),
                        A3Params::dim);
            all_queries.push_back(std::move(query));
        }
        handle.copy_to_fpga(q);
        qbufs.push_back(q);
        obufs.push_back(o);
    }

    const Cycle start = soc.sim().cycle();
    std::vector<response_handle<u64>> batches;
    for (unsigned c = 0; c < n_cores; ++c) {
        batches.push_back(handle.invoke(
            "A3System", "attend", c,
            {qbufs[c].getFpgaAddr(), obufs[c].getFpgaAddr(),
             queries_per_core}));
    }
    for (auto &b : batches)
        b.get();
    const Cycle wall = soc.sim().cycle() - start;

    // Verify every output bit-exactly against the reference.
    unsigned errors = 0;
    for (unsigned c = 0; c < n_cores; ++c) {
        handle.copy_from_fpga(obufs[c]);
        for (unsigned i = 0; i < queries_per_core; ++i) {
            const auto golden = goldenAttention(
                keys, values, all_queries[c * queries_per_core + i],
                n_keys, A3Params::dim);
            for (unsigned d = 0; d < A3Params::dim; ++d) {
                if (static_cast<i8>(
                        obufs[c].getHostAddr()[i * 64 + d]) !=
                    golden[d]) {
                    ++errors;
                }
            }
        }
    }

    const double total_ops = double(n_cores) * queries_per_core;
    const double ops_per_s =
        total_ops * platform.clockMHz() * 1e6 / double(wall);
    std::printf("%u-core A3 on %s: %.0f attention ops in %llu cycles "
                "-> %.2f M ops/s, verification %s\n",
                n_cores, platform.name().c_str(), total_ops,
                static_cast<unsigned long long>(wall), ops_per_s / 1e6,
                errors == 0 ? "PASS" : "FAIL");
    return errors == 0 ? 0 : 1;
}
