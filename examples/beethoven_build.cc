/**
 * @file
 * The BeethovenBuild flow (Fig. 3a's `object MyAcceleratorKria extends
 * BeethovenBuild(...)`): elaborate an accelerator configuration for a
 * platform and emit the build artifacts a hardware team would consume:
 *
 *   <out>/MyAcceleratorSystem_bindings.h   generated C++ stubs
 *   <out>/MyAcceleratorSystem_bindings.cc  stub implementations
 *   <out>/constraints.xdc                  SLR placement constraints
 *   <out>/resource_report.txt              per-SLR utilization
 *
 * Usage: example_beethoven_build [output-dir]   (default ./bthvn-out)
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "accel/vecadd.h"
#include "bindgen/bindgen.h"
#include "platform/aws_f1.h"

using namespace beethoven;

int
main(int argc, char **argv)
{
    const std::filesystem::path out_dir =
        argc > 1 ? argv[1] : "bthvn-out";
    std::filesystem::create_directories(out_dir);

    AwsF1Platform platform;
    AcceleratorConfig config(VecAddCore::systemConfig(/*n_cores=*/4));
    config.name = "MyAccelerator";
    AcceleratorSoc soc(std::move(config), platform);

    // Generated software linkage (Fig. 3b).
    const auto bindings = generateBindings(soc.config());
    {
        std::ofstream h(out_dir / bindings.headerName);
        h << bindings.header;
        std::ofstream cc(out_dir / bindings.sourceName);
        cc << bindings.source;
    }

    // Placement constraints (Section II-B, Multi-Die Designs).
    {
        std::ofstream xdc(out_dir / "constraints.xdc");
        soc.floorplan().emitConstraints(xdc);
    }

    // Resource report.
    {
        std::ofstream report(out_dir / "resource_report.txt");
        report << "Beethoven resource report — platform "
               << platform.name() << "\n\n";
        for (unsigned s = 0; s < soc.floorplan().numSlrs(); ++s) {
            const auto &slr = soc.floorplan().slr(s);
            const auto &used = soc.floorplan().used(s);
            report << slr.name << ": " << used << " of "
                   << slr.available() << " available\n";
        }
        report << "\ninterconnect: " << soc.interconnectResources()
               << "\n\nmemory mappings:\n";
        for (const auto &rec : soc.memoryMappings()) {
            report << "  " << rec.system << ".core" << rec.core << "."
                   << rec.owner << " (" << rec.role << ") -> "
                   << rec.mapping.totalCells() << "x "
                   << rec.mapping.cell.name << " on SLR" << rec.slr
                   << "\n";
        }
    }

    std::printf("wrote %s, %s, constraints.xdc, resource_report.txt "
                "to %s\n",
                bindings.headerName.c_str(), bindings.sourceName.c_str(),
                out_dir.string().c_str());
    return 0;
}
