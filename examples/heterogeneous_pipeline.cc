/**
 * @file
 * Heterogeneous multi-system accelerator with core-to-core
 * communication.
 *
 * Demonstrates two Beethoven features beyond the quickstart:
 *
 *  1. multiple Systems in one accelerator ("The developer may
 *     instantiate multiple Beethoven Systems if they desire multiple
 *     functions on their accelerator", Section II-A);
 *  2. intra-core memory ports (Appendix A's IntraCoreMemoryPortIn/
 *     Out): a Producer system streams a scaled vector directly into
 *     the Reducer system's on-chip scratchpad, so the intermediate
 *     never touches DRAM.
 *
 * Pipeline: Producer reads a vector from memory, scales each element,
 * and writes it into the Reducer's "inbox" scratchpad; the Reducer
 * command then folds the inbox into a sum and returns it in the RoCC
 * response payload (a non-empty AccelResponse).
 */

#include <cstdio>

#include "core/accelerator_core.h"
#include "core/soc.h"
#include "platform/aws_f1.h"
#include "runtime/fpga_handle.h"

using namespace beethoven;

namespace
{

class ProducerCore : public AcceleratorCore
{
  public:
    explicit ProducerCore(const CoreContext &ctx)
        : AcceleratorCore(ctx),
          _reader(getReaderModule("vec")),
          _out(getIntraCoreMemOut("to_reducer"))
    {}

    void
    tick() override
    {
        switch (_state) {
          case State::Idle: {
            auto cmd = pollCommand();
            if (!cmd)
                return;
            _cmd = *cmd;
            _scale = static_cast<u32>(cmd->args[0]);
            _n = static_cast<u32>(cmd->args[2]);
            if (_n == 0) {
                _state = State::Respond;
                return;
            }
            if (_reader.cmdPort().canPush()) {
                _reader.cmdPort().push(
                    {_cmd.args[1], u64(_n) * sizeof(u32)});
                _row = 0;
                _state = State::Stream;
            }
            return;
          }
          case State::Stream: {
            if (_reader.dataPort().canPop() && _out.canPush()) {
                const u32 v = static_cast<u32>(
                    _reader.dataPort().pop().toUint());
                SpadRequest w;
                w.row = _row;
                w.write = true;
                w.data.resize(4);
                const u32 scaled = v * _scale;
                for (unsigned b = 0; b < 4; ++b)
                    w.data[b] = static_cast<u8>(scaled >> (8 * b));
                _out.push(std::move(w));
                if (++_row == _n)
                    _state = State::Respond;
            }
            return;
          }
          case State::Respond: {
            if (respond(_cmd))
                _state = State::Idle;
            return;
          }
        }
    }

  private:
    enum class State { Idle, Stream, Respond };
    Reader &_reader;
    TimedQueue<SpadRequest> &_out;
    State _state = State::Idle;
    DecodedCommand _cmd;
    u32 _scale = 1;
    u32 _n = 0;
    u32 _row = 0;
};

class ReducerCore : public AcceleratorCore
{
  public:
    explicit ReducerCore(const CoreContext &ctx)
        : AcceleratorCore(ctx), _inbox(getScratchpad("inbox"))
    {}

    void
    tick() override
    {
        switch (_state) {
          case State::Idle: {
            auto cmd = pollCommand();
            if (!cmd)
                return;
            _cmd = *cmd;
            _n = static_cast<u32>(cmd->args[0]);
            _sum = 0;
            _req = 0;
            _resp = 0;
            _state = _n == 0 ? State::Respond : State::Fold;
            return;
          }
          case State::Fold: {
            if (_req < _n && _inbox.reqPort(0).canPush()) {
                SpadRequest r;
                r.row = _req++;
                _inbox.reqPort(0).push(r);
            }
            if (_resp < _n && _inbox.respPort(0).canPop()) {
                const auto data = _inbox.respPort(0).pop().data;
                u32 v = 0;
                for (unsigned b = 0; b < 4; ++b)
                    v |= u32(data[b]) << (8 * b);
                _sum += v;
                if (++_resp == _n)
                    _state = State::Respond;
            }
            return;
          }
          case State::Respond: {
            if (respond(_cmd, _sum))
                _state = State::Idle;
            return;
          }
        }
    }

  private:
    enum class State { Idle, Fold, Respond };
    Scratchpad &_inbox;
    State _state = State::Idle;
    DecodedCommand _cmd;
    u32 _n = 0;
    u64 _sum = 0;
    u32 _req = 0;
    u32 _resp = 0;
};

AcceleratorConfig
pipelineConfig()
{
    AcceleratorSystemConfig producer;
    producer.name = "Producer";
    producer.nCores = 1;
    producer.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<ProducerCore>(ctx);
    };
    producer.readChannels.push_back({"vec", 4});
    producer.intraMemoryOuts.push_back(
        {"to_reducer", "Reducer", "inbox", 1});
    producer.commands.push_back(
        CommandSpec("produce",
                    {CommandField::uint("scale", 32),
                     CommandField::address("src"),
                     CommandField::uint("n", 16)}));
    producer.kernelResources.lut = 900;
    producer.kernelResources.ff = 1100;
    producer.kernelResources.clb = 150;

    AcceleratorSystemConfig reducer;
    reducer.name = "Reducer";
    reducer.nCores = 1;
    reducer.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<ReducerCore>(ctx);
    };
    IntraCoreMemoryPortInConfig inbox;
    inbox.name = "inbox";
    inbox.dataWidthBits = 32;
    inbox.nDatas = 4096;
    reducer.intraMemoryIns.push_back(inbox);
    reducer.commands.push_back(CommandSpec(
        "reduce", {CommandField::uint("n", 16)}, /*resp_bits=*/32));
    reducer.kernelResources.lut = 700;
    reducer.kernelResources.ff = 800;
    reducer.kernelResources.clb = 120;

    AcceleratorConfig config;
    config.name = "PipelineAccelerator";
    config.systems.push_back(std::move(producer));
    config.systems.push_back(std::move(reducer));
    return config;
}

} // namespace

int
main()
{
    AwsF1Platform platform;
    AcceleratorSoc soc(pipelineConfig(), platform);
    RuntimeServer runtime(soc);
    fpga_handle_t handle(runtime);

    const unsigned n = 1000;
    const u32 scale = 3;
    remote_ptr vec = handle.malloc(n * sizeof(u32));
    auto *p = vec.as<u32>();
    u64 expected = 0;
    for (unsigned i = 0; i < n; ++i) {
        p[i] = i + 1;
        expected += u64(p[i]) * scale;
    }
    expected &= 0xFFFFFFFFull; // the response payload is 32 bits
    handle.copy_to_fpga(vec);

    // Stage 1: stream + scale into the Reducer's scratchpad.
    handle
        .invoke("Producer", "produce", 0,
                {scale, vec.getFpgaAddr(), n})
        .get();
    // Stage 2: fold the scratchpad; the sum returns in the response.
    const u64 sum =
        handle.invoke("Reducer", "reduce", 0, {n}).get();

    std::printf("pipeline sum of %u scaled elements = %llu "
                "(expected %llu): %s\n",
                n, static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(expected),
                sum == expected ? "PASS" : "FAIL");
    return sum == expected ? 0 : 1;
}
