#!/bin/sh
# Measure the full benchmark suite and diff it against the newest
# committed trajectory file. Intended workflow:
#
#   tools/run_perf_suite.sh                 # quick suite, 3 runs
#   tools/run_perf_suite.sh --label=mybox   # name the output file
#   tools/run_perf_suite.sh --full --runs=5 # paper-scale inputs
#
# Builds the "release" preset (perf numbers from an un-sanitized -O3
# tree), runs tools/soc_perf over all ten benches, writes
# perf/BENCH_<label>.json, then runs tools/perf_compare against the
# lexicographically newest perf/BENCH_*.json already tracked by git.
# Exit code is perf_compare's verdict (0 ok, 2 regression) so the
# script can gate a local pre-push hook; with no committed baseline it
# measures, reports, and exits 0.
#
# Absolute cycles/sec are machine-scoped: only compare files produced
# on the same machine, and commit at most one BENCH_<label>.json per
# measured commit (see README "Performance trajectory").
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
label=$(cd "$repo_root" && git rev-parse --short HEAD 2>/dev/null || echo local)
runs=3
quick=--quick
tolerance=30

for arg in "$@"; do
    case "$arg" in
        --label=*) label=${arg#--label=} ;;
        --runs=*) runs=${arg#--runs=} ;;
        --tolerance=*) tolerance=${arg#--tolerance=} ;;
        --full) quick= ;;
        --help|-h)
            sed -n '2,18p' "$0" | sed 's/^# \{0,1\}//'
            exit 0 ;;
        *)
            echo "run_perf_suite: unknown option '$arg' (try --help)" >&2
            exit 2 ;;
    esac
done

build_dir=$repo_root/build-release
echo "run_perf_suite: building release preset"
cmake --preset release -S "$repo_root" >/dev/null
cmake --build --preset release >/dev/null

mkdir -p "$repo_root/perf"
out=$repo_root/perf/BENCH_$label.json
echo "run_perf_suite: measuring suite ($runs runs${quick:+, quick}) -> $out"
# shellcheck disable=SC2086
"$build_dir/tools/soc_perf" $quick --runs="$runs" --label="$label" \
    --bench-dir="$build_dir/bench" --out="$out"

# Newest committed baseline, excluding the file we just wrote.
baseline=$(cd "$repo_root" && git ls-files 'perf/BENCH_*.json' \
    | grep -v -F "perf/BENCH_$label.json" | sort | tail -n 1 || true)
if [ -z "$baseline" ]; then
    echo "run_perf_suite: no committed perf/BENCH_*.json baseline;" \
         "nothing to compare against"
    exit 0
fi

echo "run_perf_suite: comparing against $baseline" \
     "(tolerance ${tolerance}%)"
"$build_dir/tools/perf_compare" --tolerance="$tolerance" \
    "$repo_root/$baseline" "$out"
