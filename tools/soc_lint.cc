/**
 * @file
 * soc_lint — static composition linter CLI (see DESIGN.md §5c).
 *
 * Runs every registered lint rule over a serialized composition (the
 * same self-contained JSON format soc_fuzz writes for repro files:
 * platform shape + systems; any "ops" array is ignored) without
 * building the SoC, and prints the structured diagnostic report.
 *
 * Usage:
 *   soc_lint [--json] [--werror] [--list-codes] CASE.json
 *
 * Exit codes: 0 composition is clean (warnings alone are reported but
 * do not fail without --werror), 2 blocking findings, 3 usage error or
 * malformed/unreadable input.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/log.h"
#include "lint/lint.h"
#include "verify/fuzz.h"
#include "verify/random_soc.h"

using namespace beethoven;
using namespace beethoven::verify;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: soc_lint [--json] [--werror] [--list-codes] "
          "CASE.json\n"
          "\n"
          "  --json        emit the diagnostic report as JSON\n"
          "  --werror      treat warnings as blocking findings\n"
          "  --list-codes  print the diagnostic code registry and "
          "exit\n"
          "\n"
          "CASE.json uses the soc_fuzz repro format (platform shape +\n"
          "systems); traffic ops, if present, are ignored.\n";
}

void
listCodes(std::ostream &os)
{
    for (const auto &info : lint::diagnosticRegistry()) {
        os << info.code << "  " << lint::severityName(info.severity)
           << "  [" << info.layer << "] " << info.summary << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool as_json = false;
    bool werror = false;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            as_json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--list-codes") {
            listCodes(std::cout);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "soc_lint: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 3;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "soc_lint: more than one input file\n";
            usage(std::cerr);
            return 3;
        }
    }
    if (path.empty()) {
        std::cerr << "soc_lint: no input file\n";
        usage(std::cerr);
        return 3;
    }

    FuzzCase c;
    try {
        c = loadReproFile(path);
    } catch (const ConfigError &e) {
        std::cerr << "soc_lint: " << e.what() << "\n";
        return 3;
    }

    lint::DiagnosticReport report;
    try {
        const AcceleratorConfig cfg = buildAcceleratorConfig(c);
        const FuzzPlatform platform(c.platform);
        report = lint::lintComposition(cfg, platform);
    } catch (const ConfigError &e) {
        // buildAcceleratorConfig rejects cases the linter never sees
        // (e.g. no systems at all); treat that as malformed input.
        std::cerr << "soc_lint: " << e.what() << "\n";
        return 3;
    }

    if (as_json) {
        std::cout << report.toJson();
    } else {
        std::cout << report.format();
        std::cout << path << ": " << report.errorCount()
                  << " error(s), " << report.warningCount()
                  << " warning(s)\n";
    }

    const bool blocking =
        report.hasErrors() || (werror && report.warningCount() > 0);
    return blocking ? 2 : 0;
}
