/**
 * @file
 * perf_compare — the perf-trajectory regression gate (DESIGN.md §4e).
 *
 * Diffs two BENCH_<label>.json files written by soc_perf: every bench
 * in the baseline must hold its cycles/sec within a relative
 * tolerance in the candidate. Elaboration-only benches (zero
 * simulated cycles) are judged on wall time, and only above a noise
 * floor. A bench missing from the candidate counts as a regression
 * (the trajectory lost coverage).
 *
 * Usage:
 *   perf_compare [--tolerance=PCT] [--wall-floor-ms=N]
 *                BASELINE.json CANDIDATE.json
 *
 * Exit codes: 0 within tolerance, 2 regression detected, 3 usage
 * error or malformed/unreadable input — so a CI gate can distinguish
 * "slower" from "broken harness".
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/json.h"
#include "base/log.h"
#include "perf/compare.h"

using namespace beethoven;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: perf_compare [--tolerance=PCT] [--wall-floor-ms=N] "
          "BASELINE.json CANDIDATE.json\n"
          "\n"
          "  --tolerance=PCT     allowed relative slowdown in percent "
          "(default 10)\n"
          "  --wall-floor-ms=N   ignore wall-time noise below N ms for "
          "non-simulating benches (default 100)\n";
}

BenchSuite
loadSuite(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot read %s", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseBenchSuite(parseJson(ss.str()));
}

} // namespace

int
main(int argc, char **argv)
{
    CompareOptions opt;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--tolerance=", 0) == 0) {
            char *end = nullptr;
            const double pct =
                std::strtod(arg.c_str() + 12, &end);
            if (end == nullptr || *end != '\0' || pct < 0.0) {
                std::cerr << "perf_compare: bad --tolerance value\n";
                return 3;
            }
            opt.tolerance = pct / 100.0;
        } else if (arg.rfind("--wall-floor-ms=", 0) == 0) {
            opt.wallFloorMs = std::strtod(arg.c_str() + 16, nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "perf_compare: unknown argument '" << arg
                      << "'\n";
            usage(std::cerr);
            return 3;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        usage(std::cerr);
        return 3;
    }

    try {
        const BenchSuite base = loadSuite(files[0]);
        const BenchSuite cand = loadSuite(files[1]);
        std::cout << "baseline:  " << files[0] << " (label \""
                  << base.label << "\", " << base.benches.size()
                  << " benches)\n"
                  << "candidate: " << files[1] << " (label \""
                  << cand.label << "\", " << cand.benches.size()
                  << " benches)\n";
        const CompareResult result = compareSuites(base, cand, opt);
        writeCompareTable(std::cout, result, opt);
        return result.regressed() ? 2 : 0;
    } catch (const ConfigError &e) {
        std::cerr << "perf_compare: " << e.what() << "\n";
        return 3;
    }
}
