#!/bin/sh
# Unified pre-merge gate: chain every static and dynamic check the
# repo ships, in cheapest-first order, and stop at the first failure.
#
#   1. lint      soc_lint on the clean reference case (composition
#                contract, BTH0xx)
#   2. analyze   soc_analyze on the clean case and both paper presets
#                (wake contract + shard readiness, BTH1xx)
#   3. tidy      tools/run_tidy.sh --diff (new clang-tidy warnings in
#                changed files only; skips when LLVM is absent)
#   4. sanitize  ctest smoke in the tsan preset's build tree when it
#                exists (configure with `cmake --preset tsan` to opt
#                in; skipped otherwise so gcc-only images still pass),
#                including the parallel-kernel suites and a
#                multi-threaded soc_fuzz differential smoke — the one
#                place real cross-thread interleavings run under tsan
#
# Usage: tools/run_checks.sh [BUILD_DIR]
#   BUILD_DIR  build tree holding the tools (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
tools_dir="$build_dir/tools"
testdata="$repo_root/tools/testdata"

fail() {
    echo "run_checks: FAILED at stage '$1'" >&2
    exit 1
}

echo "== run_checks: 1/4 lint =="
"$tools_dir/soc_lint" "$testdata/lint_clean.json" || fail lint

echo "== run_checks: 2/4 analyze =="
"$tools_dir/soc_analyze" "$testdata/lint_clean.json" || fail analyze
"$tools_dir/soc_analyze" --preset=fig4 || fail analyze
"$tools_dir/soc_analyze" --preset=fig6 || fail analyze

echo "== run_checks: 3/4 tidy (diff) =="
"$repo_root/tools/run_tidy.sh" --diff "$build_dir" || fail tidy

echo "== run_checks: 4/4 sanitize (tsan smoke) =="
tsan_dir="$repo_root/build-tsan"
if [ -f "$tsan_dir/CTestTestfile.cmake" ]; then
    (cd "$tsan_dir" && ctest -R \
        'EventKernel|WakeWheel|Simulator|ParallelKernel|SplitQueue|CrossKernel' \
        --output-on-failure -j "$(nproc)") || fail sanitize
    # Drive real multi-threaded epochs under tsan: the three-way
    # differential at an oversubscribed thread count exercises the
    # barrier, mailbox drain, and merged-fence paths concurrently.
    "$tsan_dir/tools/soc_fuzz" --differential --sim-threads=4 \
        --seed=1 --iterations=3 || fail sanitize
else
    echo "run_checks: $tsan_dir not configured; skipping tsan smoke" \
         "(run 'cmake --preset tsan && cmake --build --preset tsan')"
fi

echo "run_checks: all stages passed"
