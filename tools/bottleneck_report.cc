/**
 * @file
 * Offline bottleneck analyzer for --stats-json exports.
 *
 * Usage: bottleneck_report [--top=N] [--json=FILE] stats.json
 *
 * Reads the stats file a bench wrote with --stats-json=, ranks every
 * stall-instrumented module as a cycle sink (busiest first, ties by
 * attributed stall), and prints one table per recorded run. With
 * --json=FILE the full per-class breakdown and shares are written as a
 * machine-readable report.
 *
 * Exit status: 0 on success, 1 when the stats file contains no
 * stall-instrumented modules at all, 2 on usage/IO/parse errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/json.h"
#include "base/log.h"
#include "trace/bottleneck.h"

using namespace beethoven;

int
main(int argc, char **argv)
{
    std::size_t top_n = 5;
    std::string json_path;
    std::string stats_path;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--top=", 6) == 0) {
            top_n = static_cast<std::size_t>(std::atol(arg + 6));
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            json_path = arg + 7;
        } else if (stats_path.empty()) {
            stats_path = arg;
        } else {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
    }
    if (stats_path.empty()) {
        std::fprintf(stderr, "usage: bottleneck_report [--top=N] "
                             "[--json=FILE] stats.json\n");
        return 2;
    }

    std::ifstream f(stats_path);
    if (!f) {
        std::fprintf(stderr, "%s: cannot open\n", stats_path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << f.rdbuf();

    std::vector<RunStallReport> runs;
    try {
        runs = analyzeStallStats(parseJson(buf.str()));
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: %s\n", stats_path.c_str(), e.what());
        return 2;
    }

    writeBottleneckTable(std::cout, runs, top_n);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot open for writing\n",
                         json_path.c_str());
            return 2;
        }
        writeBottleneckJson(out, runs);
    }

    bool any_modules = false;
    for (const RunStallReport &run : runs)
        any_modules |= !run.modules.empty();
    if (!any_modules) {
        std::fprintf(stderr,
                     "%s: no stall-instrumented modules found (was the "
                     "bench built with stall accounting?)\n",
                     stats_path.c_str());
        return 1;
    }
    return 0;
}
