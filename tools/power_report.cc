/**
 * @file
 * Offline analyzer for --power-json exports (schema beethoven-power-1).
 *
 * Usage: power_report [--top=N] power.json
 *
 * For every measured run: the run summary (joules, avg/peak watts,
 * static floor, energy-per-op and throughput-per-watt when the bench
 * reported an operation count), the per-SLR average power split, and
 * the top-N components ranked by energy. Reference rows (published
 * watts + throughput, e.g. Table III's GPU) are rendered last with the
 * efficiency ratio of every measured run that reported ops against
 * them — the paper's energy-per-op comparisons as live output.
 *
 * Exit status: 0 on success, 2 on usage/IO errors, 3 when the file
 * parses as JSON but is not a beethoven-power-1 report.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/log.h"
#include "power/power_json.h"

using namespace beethoven;

int
main(int argc, char **argv)
{
    std::size_t top_n = 8;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--top=", 6) == 0) {
            top_n = static_cast<std::size_t>(std::atol(arg + 6));
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "unexpected argument '%s'\n", arg);
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: power_report [--top=N] "
                             "power.json\n");
        return 2;
    }

    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << f.rdbuf();

    PowerReport report;
    try {
        report = parsePowerReport(parseJson(buf.str()));
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
        return 3;
    }

    std::vector<const PowerRunRecord *> refs;
    for (const PowerRunRecord &run : report.runs) {
        if (run.reference) {
            refs.push_back(&run);
            continue;
        }
        std::printf("== %s: %.6g J over %.4g cycles @ %.0f MHz ==\n",
                    run.label.c_str(), run.joules, run.cycles,
                    run.clockMhz);
        std::printf("  avg %.3f W  peak %.3f W  static floor %.3f W\n",
                    run.avgWatts, run.peakWatts, run.staticWatts);
        if (run.ops > 0.0) {
            const double secs = run.seconds();
            const double ops_per_sec =
                secs > 0.0 ? run.ops / secs : 0.0;
            std::printf("  %.4g ops: %.4f uJ/op, %.4g ops/s/W\n",
                        run.ops, run.energyPerOpUj(),
                        run.avgWatts > 0.0 ? ops_per_sec / run.avgWatts
                                           : 0.0);
        }
        if (!run.slrWatts.empty()) {
            std::printf("  per-SLR avg watts:");
            for (std::size_t s = 0; s < run.slrWatts.size(); ++s)
                std::printf(" slr%zu=%.3f", s, run.slrWatts[s]);
            std::printf("\n");
        }
        std::vector<const PowerComponentRecord *> comps;
        for (const PowerComponentRecord &c : run.components)
            comps.push_back(&c);
        std::sort(comps.begin(), comps.end(),
                  [](const PowerComponentRecord *a,
                     const PowerComponentRecord *b) {
                      return a->joules > b->joules;
                  });
        const std::size_t n = std::min(top_n, comps.size());
        std::printf("  %-28s %6s %12s %10s %10s\n", "component", "slr",
                    "joules", "avg W", "peak W");
        for (std::size_t i = 0; i < n; ++i) {
            const PowerComponentRecord &c = *comps[i];
            const double share =
                run.joules > 0.0 ? 100.0 * c.joules / run.joules : 0.0;
            std::printf("  %-28s %6u %12.6g %10.4f %10.4f  (%.1f%%)\n",
                        c.name.c_str(), c.slr, c.joules, c.avgWatts,
                        c.peakWatts, share);
        }
        if (comps.size() > n)
            std::printf("  ... %zu more components\n", comps.size() - n);
        std::printf("\n");
    }

    for (const PowerRunRecord *ref : refs) {
        std::printf("reference %s: %.1f W @ %.4g ops/s = %.4f uJ/op\n",
                    ref->label.c_str(), ref->avgWatts, ref->opsPerSec,
                    ref->energyPerOpUj());
        for (const PowerRunRecord &run : report.runs) {
            if (run.reference || run.ops <= 0.0)
                continue;
            const double run_uj = run.energyPerOpUj();
            if (run_uj <= 0.0 || ref->energyPerOpUj() <= 0.0)
                continue;
            std::printf("  %s: %.1fx lower energy/op\n",
                        run.label.c_str(),
                        ref->energyPerOpUj() / run_uj);
        }
    }
    return 0;
}
