/**
 * @file
 * soc_perf — the simulator-speed KPI suite runner (DESIGN.md §4e).
 *
 * Executes the ten bench binaries as subprocesses, each with
 * --perf-json so the child reports its own wall time, simulated
 * cycles, cycles/sec, and peak RSS; repeats each bench N times and
 * takes the median; then runs one extra --host-profile pass per bench
 * to capture the top host-time components plus a --power-json capture
 * of the modeled power summary (avg watts, energy/op — DESIGN.md §4f;
 * simulated activity is deterministic, so piggybacking on the
 * profiled pass costs no extra run). The result is one
 * schema-versioned BENCH_<label>.json — the perf-trajectory record
 * committed per measured commit under perf/ (see README).
 *
 * Usage:
 *   soc_perf [--quick] [--runs=N] [--label=STR] [--out=FILE]
 *            [--bench-dir=DIR] [--bench=a,b,...] [--no-host-profile]
 *            [--bench-args=STR]
 *
 *   --quick            pass --quick to every bench (the committed
 *                      trajectory uses this: absolute numbers are
 *                      machine-scoped either way, quick keeps the
 *                      suite under a minute)
 *   --runs=N           timed repetitions per bench (default 3; the
 *                      median of N wall times is recorded)
 *   --label=STR        trajectory label (default "local"); the
 *                      default output file is BENCH_<label>.json
 *   --out=FILE         output path (probe-opened at startup)
 *   --bench-dir=DIR    directory holding the bench binaries (default:
 *                      <this-binary's-dir>/../bench)
 *   --bench=a,b        run only the named benches (subset smoke runs;
 *                      the ctest perf label uses this)
 *   --no-host-profile  skip the profiled pass (host_top stays empty
 *                      and no power summary is captured)
 *   --bench-args=STR   extra flags appended verbatim to every bench
 *                      invocation (e.g. "--sim-kernel=parallel
 *                      --sim-threads=4" to record the sharded
 *                      kernel's trajectory; combine with
 *                      --no-host-profile, which the parallel kernel
 *                      requires)
 *
 * Exit codes: 0 suite recorded, 1 a bench failed or produced
 * unparseable KPIs, 2 usage error or unwritable output.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "base/json.h"
#include "base/log.h"
#include "perf/bench_json.h"
#include "power/power_json.h"

using namespace beethoven;

namespace
{

/** The suite, in the DESIGN.md experiment-index order. */
const char *const kBenches[] = {
    "fig4_memcpy",      "fig5_timeline",  "fig6_machsuite",
    "fig7_a3_pipeline", "fig8_floorplan", "table1_machsuite",
    "table2_resources", "table3_attention", "ablation_memory",
    "micro_framework",
};

void
usage(std::ostream &os)
{
    os << "usage: soc_perf [--quick] [--runs=N] [--label=STR] "
          "[--out=FILE]\n"
          "                [--bench-dir=DIR] [--bench=a,b,...] "
          "[--no-host-profile]\n"
          "                [--bench-args=STR]\n";
}

/** Directory of the running binary, for locating ../bench. */
std::string
selfDir()
{
#if defined(__linux__)
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string s(buf);
        const std::size_t slash = s.find_last_of('/');
        if (slash != std::string::npos)
            return s.substr(0, slash);
    }
#endif
    return ".";
}

/** Run @p cmd silently; returns the process exit code (-1 on spawn
 * failure or abnormal termination). */
int
runCommand(const std::string &cmd)
{
    const std::string full = cmd + " >/dev/null 2>&1";
    const int rc = std::system(full.c_str());
    if (rc == -1)
        return -1;
#if defined(__unix__) || defined(__APPLE__)
    if (WIFEXITED(rc))
        return WEXITSTATUS(rc);
    return -1;
#else
    return rc;
#endif
}

/** One child run's parsed --perf-json record. */
struct ChildKpis
{
    double wallMs = 0.0;
    u64 simCycles = 0;
    u64 moduleTicks = 0;
    u64 peakRssKb = 0;
    std::vector<HostTopEntry> hostTop;
};

double
numberOr(const JsonValue &obj, const char *key, double fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

ChildKpis
parseChildKpis(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("perf json %s was not produced", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    const JsonValue v = parseJson(ss.str());
    const JsonValue *schema = v.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != "beethoven-perf-1")
        fatal("%s: not a beethoven-perf-1 record", path.c_str());
    ChildKpis k;
    k.wallMs = numberOr(v, "wall_ms", 0.0);
    k.simCycles = static_cast<u64>(numberOr(v, "sim_cycles", 0.0));
    k.moduleTicks = static_cast<u64>(numberOr(v, "module_ticks", 0.0));
    k.peakRssKb = static_cast<u64>(numberOr(v, "peak_rss_kb", 0.0));
    if (const JsonValue *hp = v.find("host_profile");
        hp != nullptr && hp->isObject()) {
        if (const JsonValue *comps = hp->find("components");
            comps != nullptr && comps->isArray()) {
            for (const JsonValue &c : comps->array) {
                if (!c.isObject())
                    continue;
                HostTopEntry e;
                if (const JsonValue *n = c.find("name");
                    n != nullptr && n->isString())
                    e.component = n->string;
                e.ns = static_cast<u64>(numberOr(c, "ns", 0.0));
                e.share = numberOr(c, "share", 0.0);
                k.hostTop.push_back(std::move(e));
            }
        }
    }
    return k;
}

/** Lower median of @p v (sorted copy); 0 when empty. */
template <typename T>
T
median(std::vector<T> v)
{
    if (v.empty())
        return T{};
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) / 2];
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string item = s.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool host_profile = true;
    unsigned runs = 3;
    std::string label = "local";
    std::string out_path;
    std::string bench_dir = selfDir() + "/../bench";
    std::string bench_args;
    std::vector<std::string> selected;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--no-host-profile") {
            host_profile = false;
        } else if (arg.rfind("--runs=", 0) == 0) {
            runs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
            if (runs == 0) {
                std::cerr << "soc_perf: --runs must be >= 1\n";
                return 2;
            }
        } else if (arg.rfind("--label=", 0) == 0) {
            label = arg.substr(8);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--bench-dir=", 0) == 0) {
            bench_dir = arg.substr(12);
        } else if (arg.rfind("--bench=", 0) == 0) {
            selected = splitCommas(arg.substr(8));
        } else if (arg.rfind("--bench-args=", 0) == 0) {
            bench_args = arg.substr(13);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "soc_perf: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (out_path.empty())
        out_path = "BENCH_" + label + ".json";

    std::vector<std::string> benches;
    if (selected.empty()) {
        for (const char *b : kBenches)
            benches.push_back(b);
    } else {
        for (const std::string &b : selected) {
            if (std::find_if(std::begin(kBenches), std::end(kBenches),
                             [&](const char *k) { return b == k; }) ==
                std::end(kBenches)) {
                std::cerr << "soc_perf: unknown bench '" << b << "'\n";
                return 2;
            }
            benches.push_back(b);
        }
    }

    // Fail an unwritable trajectory path before an hour of runs, the
    // same startup probe contract bench_cli applies to its outputs.
    {
        std::ofstream probe(out_path, std::ios::app);
        if (!probe) {
            std::cerr << "soc_perf: cannot open " << out_path
                      << " for writing\n";
            return 2;
        }
    }

    BenchSuite suite;
    suite.label = label;
    suite.quick = quick;
    suite.runs = runs;
    const std::string tmp = out_path + ".child.json";

    for (std::size_t bi = 0; bi < benches.size(); ++bi) {
        const std::string &bench = benches[bi];
        std::string base_cmd = bench_dir + "/" + bench;
        if (!bench_args.empty())
            base_cmd += " " + bench_args;
        if (quick) {
            base_cmd += " --quick";
            // Keep the google-benchmark bench inside the quick budget.
            if (bench == "micro_framework")
                base_cmd += " --benchmark_min_time=0.01";
        }
        std::cerr << "[" << bi + 1 << "/" << benches.size() << "] "
                  << bench << ": " << runs << " timed run"
                  << (runs == 1 ? "" : "s")
                  << (host_profile ? " + 1 profiled" : "") << "\n";

        std::vector<double> walls;
        std::vector<u64> rss;
        ChildKpis first{};
        bool ok = true;
        for (unsigned r = 0; r < runs && ok; ++r) {
            const int rc =
                runCommand(base_cmd + " --perf-json=" + tmp);
            if (rc != 0) {
                std::cerr << "soc_perf: " << bench
                          << " exited with code " << rc << "\n";
                ok = false;
                break;
            }
            try {
                const ChildKpis k = parseChildKpis(tmp);
                if (r == 0)
                    first = k;
                else if (k.simCycles != first.simCycles)
                    std::cerr << "soc_perf: warning: " << bench
                              << " sim_cycles varied across runs ("
                              << first.simCycles << " vs "
                              << k.simCycles << ")\n";
                walls.push_back(k.wallMs);
                rss.push_back(k.peakRssKb);
            } catch (const ConfigError &e) {
                std::cerr << "soc_perf: " << e.what() << "\n";
                ok = false;
            }
        }
        if (!ok) {
            std::remove(tmp.c_str());
            return 1;
        }

        BenchPerfRecord rec;
        rec.name = bench;
        rec.wallMs = median(walls);
        rec.simCycles = first.simCycles;
        rec.moduleTicks = first.moduleTicks;
        rec.peakRssKb = median(rss);
        rec.cyclesPerSec =
            rec.wallMs > 0.0
                ? static_cast<double>(rec.simCycles) /
                      (rec.wallMs / 1000.0)
                : 0.0;

        if (host_profile) {
            const std::string tmp_power = out_path + ".power.json";
            const int rc = runCommand(
                base_cmd + " --host-profile --perf-json=" + tmp +
                " --power-json=" + tmp_power);
            if (rc != 0) {
                std::cerr << "soc_perf: profiled " << bench
                          << " run exited with code " << rc << "\n";
                std::remove(tmp.c_str());
                return 1;
            }
            try {
                ChildKpis k = parseChildKpis(tmp);
                if (k.hostTop.size() > 5)
                    k.hostTop.resize(5);
                rec.hostTop = std::move(k.hostTop);
            } catch (const ConfigError &e) {
                std::cerr << "soc_perf: " << e.what() << "\n";
                std::remove(tmp.c_str());
                return 1;
            }
            // Power is modeled from simulated activity, so one pass
            // is exact; a bench with no measured runs (e.g. the
            // google-benchmark harness) just records zeros, which the
            // suite writer omits.
            try {
                std::ifstream pf(tmp_power);
                if (pf) {
                    std::ostringstream ps;
                    ps << pf.rdbuf();
                    const PowerReport pr =
                        parsePowerReport(parseJson(ps.str()));
                    rec.avgWatts = pr.summaryAvgWatts();
                    rec.energyPerOpUj = pr.summaryEnergyPerOpUj();
                }
            } catch (const ConfigError &e) {
                std::cerr << "soc_perf: " << bench
                          << " power summary ignored: " << e.what()
                          << "\n";
            }
            std::remove(tmp_power.c_str());
        }
        suite.benches.push_back(std::move(rec));
    }
    std::remove(tmp.c_str());

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "soc_perf: cannot open " << out_path
                  << " for writing\n";
        return 2;
    }
    writeBenchSuiteJson(out, suite);
    std::cerr << "wrote " << suite.benches.size() << " bench record"
              << (suite.benches.size() == 1 ? "" : "s") << " to "
              << out_path << "\n";
    return 0;
}
