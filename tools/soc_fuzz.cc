/**
 * @file
 * soc_fuzz — randomized SoC composition fuzzer (see DESIGN.md §5).
 *
 * Samples random-but-legal accelerator compositions, drives seeded
 * traffic against them with live invariants armed, and differential-
 * checks the results against the golden model. On failure it shrinks
 * the case to a minimal reproduction and writes a self-contained JSON
 * repro file.
 *
 * Usage:
 *   soc_fuzz [--seed=N] [--iterations=N] [--max-cycles=N]
 *            [--max-ops=N] [--repro-out=PATH] [--no-shrink]
 *            [--plant-violation] [--plant-lint-violation]
 *            [--differential] [--sim-kernel=tick|event|parallel]
 *            [--sim-threads=N]
 *            [--plant-lost-wake=N] [--plant-wake-violation=N]
 *            [--replay=PATH] [--verbose]
 *
 * Every sampled case is cross-checked against the composition linter
 * (src/lint/) before it runs, and its elaborated simulation graph
 * against the static analyzer (src/analysis/); a sampled case with
 * error-severity findings means the sampler and a checker disagree and
 * is itself a failure.
 *
 * Exit codes: 0 all iterations clean, 3 a failure was found (repro
 * written if --repro-out), 2 usage or IO error.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/analyze.h"
#include "base/log.h"
#include "core/soc.h"
#include "lint/lint.h"
#include "sim/graph_record.h"
#include "verify/fuzz.h"
#include "verify/traffic.h"

using namespace beethoven;
using namespace beethoven::verify;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: soc_fuzz [--seed=N] [--iterations=N] [--max-cycles=N]\n"
          "                [--max-ops=N] [--repro-out=PATH] [--no-shrink]\n"
          "                [--plant-violation] [--plant-lint-violation]\n"
          "                [--plant-power-violation]\n"
          "                [--differential]\n"
          "                [--sim-kernel=tick|event|parallel]\n"
          "                [--sim-threads=N]\n"
          "                [--plant-lost-wake=N]\n"
          "                [--plant-wake-violation=N]\n"
          "                [--replay=PATH] [--verbose]\n"
          "\n"
          "  --seed=N            base RNG seed (default 1)\n"
          "  --iterations=N      cases to run (default 25)\n"
          "  --max-cycles=N      per-case simulated-cycle budget\n"
          "                      (default 2000000)\n"
          "  --max-ops=N         max commands per case (default 8)\n"
          "  --repro-out=PATH    write the shrunk failing case here\n"
          "  --no-shrink         report the raw failing case unshrunk\n"
          "  --plant-violation   inject a bogus AXI beat into every\n"
          "                      case (self-test of the catch path)\n"
          "  --plant-lint-violation\n"
          "                      append a defective system to every\n"
          "                      case (self-test of the composition\n"
          "                      linter's catch path)\n"
          "  --plant-power-violation\n"
          "                      plant a phantom energy leak in every\n"
          "                      case's power ledger (self-test of the\n"
          "                      energy-conservation invariant)\n"
          "  --differential      run every case under ALL simulation\n"
          "                      kernels (tick as reference, then\n"
          "                      event and parallel) and fail on any\n"
          "                      digest/cycle/outcome divergence\n"
          "  --sim-kernel=K      kernel for non-differential runs:\n"
          "                      tick (default), event or parallel\n"
          "  --sim-threads=N     worker threads for parallel-kernel\n"
          "                      runs (default 2; 0 = one per\n"
          "                      execution group)\n"
          "  --plant-lost-wake=N drop every Nth event-kernel wake\n"
          "                      schedule in every case (self-test of\n"
          "                      the differential catch path; implies\n"
          "                      nothing under the tick kernel)\n"
          "  --plant-wake-violation=N\n"
          "                      suppress the Nth push-wake arming at\n"
          "                      elaboration in every case (self-test\n"
          "                      of the static analyzer's BTH100 catch\n"
          "                      path)\n"
          "  --replay=PATH       run one case from a repro file instead\n"
          "                      of sampling\n"
          "  --verbose           per-iteration progress lines\n";
}

bool
parseU64Flag(const std::string &arg, const std::string &name, u64 &out)
{
    const std::string prefix = "--" + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
    return true;
}

bool
parseStringFlag(const std::string &arg, const std::string &name,
                std::string &out)
{
    const std::string prefix = "--" + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    u64 seed = 1;
    u64 iterations = 25;
    u64 max_ops = 8;
    FuzzOptions opt;
    std::string repro_out;
    std::string replay_path;
    bool do_shrink = true;
    bool plant = false;
    bool plant_lint = false;
    bool plant_power = false;
    u64 plant_lost_wake = 0;
    u64 plant_wake_violation = 0;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        u64 v = 0;
        std::string kernel_name;
        if (parseU64Flag(arg, "seed", seed) ||
            parseU64Flag(arg, "iterations", iterations) ||
            parseU64Flag(arg, "max-ops", max_ops) ||
            parseU64Flag(arg, "plant-lost-wake", plant_lost_wake) ||
            parseU64Flag(arg, "plant-wake-violation",
                         plant_wake_violation) ||
            parseStringFlag(arg, "repro-out", repro_out) ||
            parseStringFlag(arg, "replay", replay_path)) {
            continue;
        } else if (parseU64Flag(arg, "max-cycles", v)) {
            opt.maxCycles = v;
        } else if (parseU64Flag(arg, "sim-threads", v)) {
            opt.parallelThreads = static_cast<unsigned>(v);
        } else if (parseStringFlag(arg, "sim-kernel", kernel_name)) {
            if (kernel_name == "tick") {
                opt.kernel = SimKernel::Tick;
            } else if (kernel_name == "event") {
                opt.kernel = SimKernel::Event;
            } else if (kernel_name == "parallel") {
                opt.kernel = SimKernel::Parallel;
            } else {
                std::cerr << "soc_fuzz: bad --sim-kernel '"
                          << kernel_name
                          << "' (expected tick, event or parallel)\n";
                return 2;
            }
        } else if (arg == "--differential") {
            opt.differential = true;
        } else if (arg == "--no-shrink") {
            do_shrink = false;
        } else if (arg == "--plant-violation") {
            plant = true;
        } else if (arg == "--plant-lint-violation") {
            plant_lint = true;
        } else if (arg == "--plant-power-violation") {
            plant_power = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "soc_fuzz: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    // Replay mode: one case from disk, no sampling, no shrinking.
    if (!replay_path.empty()) {
        FuzzCase c;
        try {
            c = loadReproFile(replay_path);
        } catch (const ConfigError &e) {
            std::cerr << "soc_fuzz: " << e.what() << "\n";
            return 2;
        }
        const FuzzResult r = runFuzzCase(c, opt);
        std::cout << "replay " << replay_path << ": "
                  << failKindName(r.kind);
        if (!r.message.empty())
            std::cout << " (" << r.message << ")";
        std::cout << " after " << r.cycles << " cycles, " << r.axiEvents
                  << " AXI events checked\n";
        return r.kind == FailKind::None ? 0 : 3;
    }

    u64 total_cycles = 0, total_axi = 0, total_resps = 0;
    for (u64 it = 0; it < iterations; ++it) {
        const u64 case_seed = seed + it;
        RandomSocBuilder builder(case_seed);
        FuzzCase c = builder.sample();
        RandomTrafficGen traffic(case_seed ^ 0x74726166666963ULL);
        traffic.generate(c, static_cast<unsigned>(max_ops));
        c.plantViolation = plant;
        c.plantLintViolation = plant_lint;
        c.plantPowerViolation = plant_power;
        c.plantLostWake = plant_lost_wake;
        c.plantWakeViolation = plant_wake_violation;

        // Cross-check the sampler against the composition linter:
        // every sampled case must be lint-clean (no error-severity
        // findings). A finding here is a bug in RandomSocBuilder or a
        // lint rule drifting from what elaboration accepts.
        {
            const lint::DiagnosticReport lint_rep =
                lint::lintComposition(buildAcceleratorConfig(c),
                                      FuzzPlatform(c.platform));
            if (!plant_lint && lint_rep.hasErrors()) {
                std::cerr << "soc_fuzz: sampled case (seed " << case_seed
                          << ") is not lint-clean:\n"
                          << lint_rep.format();
                return 3;
            }
            if (plant_lint && !lint_rep.hasErrors()) {
                std::cerr << "soc_fuzz: planted lint violation was not "
                             "caught (seed "
                          << case_seed << ")\n";
                return 2;
            }
        }

        // Cross-check elaboration against the static analyzer: every
        // sampled case's simulation graph must be analyze-clean, and a
        // planted wake violation must surface as BTH100 — without
        // running a single cycle. Skipped when the linter already
        // rejects the case (nothing elaborable to analyze).
        if (!plant_lint) {
            analysis::ScopedDeferGraphValidation defer;
            lint::DiagnosticReport graph_rep;
            try {
                if (c.plantWakeViolation != 0)
                    plantMissingPushWake(c.plantWakeViolation);
                const FuzzPlatform platform(c.platform);
                const AcceleratorSoc soc(buildAcceleratorConfig(c),
                                         platform);
                plantMissingPushWake(0);
                graph_rep = soc.analyzeGraph();
            } catch (const ConfigError &e) {
                plantMissingPushWake(0);
                std::cerr << "soc_fuzz: sampled case (seed "
                          << case_seed
                          << ") failed to elaborate for analysis: "
                          << e.what() << "\n";
                return 3;
            }
            if (plant_wake_violation == 0 && graph_rep.hasErrors()) {
                std::cerr << "soc_fuzz: sampled case (seed " << case_seed
                          << ") is not analyze-clean:\n"
                          << graph_rep.format();
                return 3;
            }
            if (plant_wake_violation != 0 &&
                !graph_rep.has("BTH100")) {
                std::cerr << "soc_fuzz: planted wake violation was not "
                             "caught statically (seed "
                          << case_seed << ")\n";
                return 2;
            }
            // With the plant armed the case still falls through to the
            // run below, where the constructor-tail validation rejects
            // it (BuildError -> exit 3) — the same double-catch
            // contract as --plant-lint-violation.
        }

        const FuzzResult r = runFuzzCase(c, opt);
        total_cycles += r.cycles;
        total_axi += r.axiEvents;
        total_resps += r.responses;
        if (verbose) {
            std::cout << "iter " << it << " seed " << case_seed << ": "
                      << c.systems.size() << " systems, "
                      << c.ops.size() << " ops -> "
                      << failKindName(r.kind) << " in " << r.cycles
                      << " cycles\n";
        }
        if (r.kind == FailKind::None)
            continue;

        std::cerr << "soc_fuzz: seed " << case_seed << " failed ("
                  << failKindName(r.kind) << "): " << r.message << "\n";
        FuzzCase minimal = c;
        if (do_shrink) {
            unsigned attempts = 0;
            minimal = shrink(c, opt, r.kind, /*max_attempts=*/200,
                             &attempts);
            std::cerr << "soc_fuzz: shrunk to " << minimal.systems.size()
                      << " systems / " << minimal.ops.size()
                      << " ops in " << attempts << " replays\n";
        }
        if (!repro_out.empty()) {
            try {
                writeReproFile(minimal, repro_out);
                std::cerr << "soc_fuzz: repro written to " << repro_out
                          << "\n";
            } catch (const ConfigError &e) {
                std::cerr << "soc_fuzz: " << e.what() << "\n";
                return 2;
            }
        } else {
            std::cerr << fuzzCaseToJson(minimal);
        }
        return 3;
    }

    std::cout << "soc_fuzz: " << iterations << " iterations clean ("
              << total_cycles << " cycles, " << total_axi
              << " AXI events checked, " << total_resps
              << " responses)\n";
    return 0;
}
