#!/bin/sh
# Run clang-tidy over the Beethoven sources using the checks pinned in
# .clang-tidy. Skips cleanly (exit 0) when clang-tidy is unavailable,
# so CI images without LLVM — like the gcc-only container this repo
# usually builds in — don't fail spuriously.
#
# Usage: tools/run_tidy.sh [BUILD_DIR]
#   BUILD_DIR  a cmake build tree with compile_commands.json
#              (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy: clang-tidy not found; skipping (install LLVM to" \
         "enable static analysis)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: $build_dir/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
    exit 2
fi

cd "$repo_root"
files=$(find src tools -name '*.cc' | sort)
echo "run_tidy: checking $(echo "$files" | wc -l) files"
# shellcheck disable=SC2086
clang-tidy -p "$build_dir" --quiet $files
echo "run_tidy: clean"
