#!/bin/sh
# Run clang-tidy over the Beethoven sources using the checks pinned in
# .clang-tidy. Skips cleanly (exit 0) when clang-tidy is unavailable,
# so CI images without LLVM — like the gcc-only container this repo
# usually builds in — don't fail spuriously.
#
# Usage: tools/run_tidy.sh [--diff] [BUILD_DIR]
#   --diff     check only files touched relative to HEAD (staged,
#              unstaged, and untracked); exit non-zero on any warning
#              in those files. Intended as a pre-commit gate: the full
#              tree may carry accepted baseline warnings, but a diff
#              must not add new ones.
#   BUILD_DIR  a cmake build tree with compile_commands.json
#              (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
diff_only=0
build_dir=""
for arg in "$@"; do
    case "$arg" in
    --diff) diff_only=1 ;;
    *) build_dir=$arg ;;
    esac
done
build_dir=${build_dir:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy: clang-tidy not found; skipping (install LLVM to" \
         "enable static analysis)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: $build_dir/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
    exit 2
fi

cd "$repo_root"
if [ "$diff_only" -eq 1 ]; then
    files=$( (git diff --name-only HEAD; git ls-files --others \
             --exclude-standard) | grep -E '^(src|tools)/.*\.cc$' \
             | sort -u || true)
    if [ -z "$files" ]; then
        echo "run_tidy: no changed .cc files; nothing to check"
        exit 0
    fi
    echo "run_tidy: checking $(echo "$files" | wc -l) changed files"
    # shellcheck disable=SC2086
    clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' $files
else
    files=$(find src tools -name '*.cc' | sort)
    echo "run_tidy: checking $(echo "$files" | wc -l) files"
    # shellcheck disable=SC2086
    clang-tidy -p "$build_dir" --quiet $files
fi
echo "run_tidy: clean"
