/**
 * @file
 * soc_analyze — simulation-graph static analyzer CLI (DESIGN.md §5d).
 *
 * Where soc_lint checks the *configuration* before elaboration, this
 * tool elaborates the SoC (without running a single cycle), lowers the
 * simulator's registration record to the SimGraph IR, and proves the
 * event kernel's wake/sleep contract (BTH10x), livelock freedom, and
 * shard readiness (BTH11x). It also emits the machine-readable
 * shard-readiness report: the candidate partition, every cross-shard
 * shared-state site with file:line provenance, and the shard-crossing
 * queue census.
 *
 * Usage:
 *   soc_analyze [--json] [--werror] [--list-codes] CASE.json
 *   soc_analyze [--json] [--werror] --preset=fig4|fig6
 *
 * CASE.json uses the soc_fuzz repro format; a nonzero
 * "plant_wake_violation" count suppresses that push-wake arming so the
 * analyzer's catch path is testable. The presets elaborate the paper's
 * Fig. 4 (memcpy on AWS F1) and Fig. 6 (4-core GEMM at 125 MHz)
 * compositions.
 *
 * Exit codes mirror soc_lint: 0 clean (warnings alone do not fail
 * without --werror), 2 blocking findings, 3 usage error or
 * malformed/unreadable input.
 */

#include <iostream>
#include <optional>
#include <string>

#include "accel/machsuite/gemm.h"
#include "accel/memcpy_core.h"
#include "analysis/analyze.h"
#include "analysis/sim_graph.h"
#include "base/log.h"
#include "core/soc.h"
#include "lint/diagnostic.h"
#include "platform/aws_f1.h"
#include "sim/graph_record.h"
#include "verify/fuzz.h"
#include "verify/random_soc.h"

using namespace beethoven;
using namespace beethoven::verify;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: soc_analyze [--json] [--werror] [--list-codes] "
          "CASE.json\n"
          "       soc_analyze [--json] [--werror] --preset=fig4|fig6\n"
          "\n"
          "  --json          emit the diagnostic report and the "
          "shard-readiness\n"
          "                  report as one JSON document\n"
          "  --werror        treat warnings as blocking findings\n"
          "  --list-codes    print the analyzer's diagnostic codes and "
          "exit\n"
          "  --preset=NAME   analyze a built-in composition instead of "
          "a case\n"
          "                  file (fig4: memcpy on AWS F1; fig6: "
          "4-core GEMM)\n"
          "\n"
          "CASE.json uses the soc_fuzz repro format; a nonzero\n"
          "\"plant_wake_violation\" suppresses that push-wake arming "
          "so the\n"
          "planted bug must surface as BTH100.\n";
}

void
listCodes(std::ostream &os)
{
    // Only the analyzer's own layers; soc_lint --list-codes prints the
    // composition layers.
    for (const auto &info : lint::diagnosticRegistry()) {
        const std::string layer = info.layer;
        if (layer != "graph" && layer != "shard")
            continue;
        os << info.code << "  " << lint::severityName(info.severity)
           << "  [" << info.layer << "] " << info.summary << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool as_json = false;
    bool werror = false;
    std::string path;
    std::string preset;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            as_json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--list-codes") {
            listCodes(std::cout);
            return 0;
        } else if (arg.rfind("--preset=", 0) == 0) {
            preset = arg.substr(9);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "soc_analyze: unknown argument '" << arg
                      << "'\n";
            usage(std::cerr);
            return 3;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "soc_analyze: more than one input file\n";
            usage(std::cerr);
            return 3;
        }
    }
    if (path.empty() == preset.empty()) {
        std::cerr << "soc_analyze: need exactly one of CASE.json or "
                     "--preset\n";
        usage(std::cerr);
        return 3;
    }

    // Elaborate with constructor-tail validation deferred: this tool
    // wants the full DiagnosticReport (and must survive deliberately
    // planted violations), not the constructor's fatal().
    analysis::ScopedDeferGraphValidation defer;

    std::optional<FuzzPlatform> fuzz_platform;
    std::optional<AwsF1Platform> aws_platform;
    std::optional<AcceleratorSoc> soc;
    std::string label = path.empty() ? "--preset=" + preset : path;
    try {
        if (!preset.empty()) {
            AcceleratorConfig cfg;
            aws_platform.emplace();
            if (preset == "fig4") {
                cfg.systems.push_back(MemcpyCore::systemConfig(
                    1, MemcpyCore::Variant{}));
            } else if (preset == "fig6") {
                aws_platform->setClockMHz(125.0);
                cfg.systems.push_back(machsuite::GemmCore::systemConfig(4));
            } else {
                std::cerr << "soc_analyze: unknown preset '" << preset
                          << "'\n";
                return 3;
            }
            soc.emplace(std::move(cfg), *aws_platform);
        } else {
            const FuzzCase c = loadReproFile(path);
            if (c.plantWakeViolation != 0)
                plantMissingPushWake(c.plantWakeViolation);
            fuzz_platform.emplace(c.platform);
            soc.emplace(buildAcceleratorConfig(c), *fuzz_platform);
            plantMissingPushWake(0);
        }
    } catch (const ConfigError &e) {
        plantMissingPushWake(0);
        std::cerr << "soc_analyze: " << e.what() << "\n";
        return 3;
    }

    const analysis::SimGraph graph = analysis::buildSimGraph(soc->sim());
    const lint::DiagnosticReport report = soc->analyzeGraph();

    if (as_json) {
        std::cout << "{\n\"report\": " << report.toJson()
                  << ",\n\"shard_report\": "
                  << analysis::shardReportJson(graph) << "}\n";
    } else {
        std::cout << report.format();
        std::cout << label << ": " << report.errorCount()
                  << " error(s), " << report.warningCount()
                  << " warning(s)\n";
    }

    const bool blocking =
        report.hasErrors() || (werror && report.warningCount() > 0);
    return blocking ? 2 : 0;
}
