#!/usr/bin/env bash
# Assert the kernel-speed ordering the simulator claims, on one bench
# (best of N --quick runs per kernel):
#
#   1. event    >= tick   — the event kernel's skip-idle-modules win
#   2. parallel >= event  — the sharded kernel's multi-core win, at
#                           4 worker threads; only judged when the
#                           machine actually has the cores (coordinator
#                           + 4 workers), since on fewer cores the
#                           workers time-slice one CPU and the epoch
#                           barriers become pure overhead.
#
# Usage: perf_gate_kernels.sh BENCH_BINARY [RUNS]
#   BEETHOVEN_GATE_THREADS  worker threads for stage 2 (default 4)
#
# Exit codes: 0 ordering holds (or the parallel stage skipped for lack
# of cores), 1 a kernel is slower than its baseline, 2 usage/run
# failure. Wired behind the BEETHOVEN_PERF_GATE ctest option: absolute
# numbers are machine-scoped, but kernel-vs-kernel ratios on one
# machine in one build are exactly the claims the kernels make.
set -u

if [ $# -lt 1 ]; then
    echo "usage: $0 BENCH_BINARY [RUNS]" >&2
    exit 2
fi
bench="$1"
runs="${2:-3}"
parallel_threads="${BEETHOVEN_GATE_THREADS:-4}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

best_cps() {
    kernel="$1"
    shift
    best=0
    for _ in $(seq "$runs"); do
        if ! "$bench" --quick --sim-kernel="$kernel" "$@" \
            --perf-json="$tmpdir/perf.json" >/dev/null 2>&1; then
            echo "perf_gate_kernels: $bench --sim-kernel=$kernel failed" >&2
            exit 2
        fi
        v=$(grep -o '"cycles_per_sec":[0-9.e+]*' "$tmpdir/perf.json" |
            head -1 | cut -d: -f2)
        if [ -z "$v" ]; then
            echo "perf_gate_kernels: no cycles_per_sec in perf json" >&2
            exit 2
        fi
        best=$(awk -v a="$best" -v b="$v" 'BEGIN{print (b>a)?b:a}')
    done
    echo "$best"
}

tick_cps=$(best_cps tick) || exit 2
event_cps=$(best_cps event) || exit 2
echo "tick:  $tick_cps cycles/sec (best of $runs)"
echo "event: $event_cps cycles/sec (best of $runs)"
awk -v t="$tick_cps" -v e="$event_cps" 'BEGIN{
    printf "event/tick ratio: %.2fx\n", e / t
    exit (e >= t) ? 0 : 1
}'
status=$?
if [ "$status" -ne 0 ]; then
    echo "perf_gate_kernels: event kernel slower than tick kernel" >&2
    exit "$status"
fi

cores=$(nproc 2>/dev/null || echo 1)
need=$((parallel_threads + 1))
if [ "$cores" -lt "$need" ]; then
    echo "perf_gate_kernels: $cores core(s) < $need needed for the" \
         "parallel gate ($parallel_threads workers + coordinator);" \
         "skipping parallel>=event"
    exit 0
fi

parallel_cps=$(best_cps parallel \
    --sim-threads="$parallel_threads") || exit 2
echo "parallel($parallel_threads threads): $parallel_cps cycles/sec" \
     "(best of $runs)"
awk -v e="$event_cps" -v p="$parallel_cps" 'BEGIN{
    printf "parallel/event ratio: %.2fx\n", p / e
    exit (p >= e) ? 0 : 1
}'
status=$?
if [ "$status" -ne 0 ]; then
    echo "perf_gate_kernels: parallel kernel slower than event kernel" >&2
fi
exit "$status"
