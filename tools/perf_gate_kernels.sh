#!/usr/bin/env bash
# Assert the event-driven simulator kernel is at least as fast as the
# tick kernel on one bench (best of N --quick runs per kernel).
#
# Usage: perf_gate_kernels.sh BENCH_BINARY [RUNS]
#
# Exit codes: 0 event >= tick, 1 event slower, 2 usage/run failure.
# Wired behind the BEETHOVEN_PERF_GATE ctest option: absolute numbers
# are machine-scoped, but the tick-vs-event ratio on one machine in one
# build is exactly the claim the event kernel makes.
set -u

if [ $# -lt 1 ]; then
    echo "usage: $0 BENCH_BINARY [RUNS]" >&2
    exit 2
fi
bench="$1"
runs="${2:-3}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

best_cps() {
    kernel="$1"
    best=0
    for _ in $(seq "$runs"); do
        if ! "$bench" --quick --sim-kernel="$kernel" \
            --perf-json="$tmpdir/perf.json" >/dev/null 2>&1; then
            echo "perf_gate_kernels: $bench --sim-kernel=$kernel failed" >&2
            exit 2
        fi
        v=$(grep -o '"cycles_per_sec":[0-9.e+]*' "$tmpdir/perf.json" |
            head -1 | cut -d: -f2)
        if [ -z "$v" ]; then
            echo "perf_gate_kernels: no cycles_per_sec in perf json" >&2
            exit 2
        fi
        best=$(awk -v a="$best" -v b="$v" 'BEGIN{print (b>a)?b:a}')
    done
    echo "$best"
}

tick_cps=$(best_cps tick) || exit 2
event_cps=$(best_cps event) || exit 2
echo "tick:  $tick_cps cycles/sec (best of $runs)"
echo "event: $event_cps cycles/sec (best of $runs)"
awk -v t="$tick_cps" -v e="$event_cps" 'BEGIN{
    printf "ratio: %.2fx\n", e / t
    exit (e >= t) ? 0 : 1
}'
status=$?
if [ "$status" -ne 0 ]; then
    echo "perf_gate_kernels: event kernel slower than tick kernel" >&2
fi
exit "$status"
