/**
 * @file
 * CI helper: validate that files produced by the benches are
 * well-formed JSON, with optional structural requirements.
 *
 * Usage: json_check [options] file [[options] file ...]
 *
 * Options apply to the NEXT file argument:
 *   --require-categories=a,b,..  the file must be a Chrome trace whose
 *                                events cover every listed category
 *                                with at least one nonzero-duration
 *                                span per category (counter-only
 *                                categories like "noc" may instead
 *                                show any event)
 *   --require-key=KEY            some object in the file must contain
 *                                KEY (e.g. "p95" for stats exports)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/log.h"

using namespace beethoven;

namespace
{

bool
containsKey(const JsonValue &v, const std::string &key)
{
    if (v.isObject()) {
        for (const auto &[k, child] : v.object) {
            if (k == key || containsKey(child, key))
                return true;
        }
    } else if (v.isArray()) {
        for (const auto &child : v.array) {
            if (containsKey(child, key))
                return true;
        }
    }
    return false;
}

bool
checkCategories(const JsonValue &root, const std::string &csv,
                const std::string &path)
{
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        std::fprintf(stderr, "%s: no traceEvents array\n", path.c_str());
        return false;
    }
    std::set<std::string> seen;          // any event
    std::set<std::string> seen_spans;    // nonzero-duration spans
    std::set<std::string> seen_counters; // "C" (counter) events
    for (const JsonValue &e : events->array) {
        const JsonValue *cat = e.find("cat");
        if (cat == nullptr || !cat->isString())
            continue;
        seen.insert(cat->string);
        const JsonValue *ph = e.find("ph");
        const JsonValue *dur = e.find("dur");
        if (ph != nullptr && ph->isString() && ph->string == "X" &&
            dur != nullptr && dur->number > 0)
            seen_spans.insert(cat->string);
        if (ph != nullptr && ph->isString() && ph->string == "C")
            seen_counters.insert(cat->string);
    }
    bool ok = true;
    bool all_counters = true;
    std::stringstream ss(csv);
    std::string want;
    while (std::getline(ss, want, ',')) {
        if (want.empty())
            continue;
        if (!seen_counters.count(want))
            all_counters = false;
        if (seen_spans.count(want))
            continue;
        if (seen.count(want)) {
            // Counter-only categories pass on presence; still demand
            // that *some* category has real spans overall.
            continue;
        }
        std::fprintf(stderr, "%s: no events in category '%s'\n",
                     path.c_str(), want.c_str());
        ok = false;
    }
    // Counter-track files (e.g. --power-trace output) legitimately
    // contain no spans; only demand spans when a required category is
    // not itself a counter track.
    if (ok && seen_spans.empty() && !all_counters) {
        std::fprintf(stderr, "%s: no nonzero-duration spans at all\n",
                     path.c_str());
        ok = false;
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: json_check [--require-categories=a,b] "
                     "[--require-key=KEY] file ...\n");
        return 2;
    }
    std::string require_categories;
    std::string require_key;
    int failures = 0;
    int files = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--require-categories=", 21) == 0) {
            require_categories = arg + 21;
            continue;
        }
        if (std::strncmp(arg, "--require-key=", 14) == 0) {
            require_key = arg + 14;
            continue;
        }
        ++files;
        std::ifstream f(arg);
        if (!f) {
            std::fprintf(stderr, "%s: cannot open\n", arg);
            ++failures;
            continue;
        }
        std::stringstream buf;
        buf << f.rdbuf();
        try {
            const JsonValue root = parseJson(buf.str());
            bool ok = true;
            if (!require_categories.empty() &&
                !checkCategories(root, require_categories, arg))
                ok = false;
            if (!require_key.empty() && !containsKey(root, require_key)) {
                std::fprintf(stderr, "%s: key '%s' absent\n", arg,
                             require_key.c_str());
                ok = false;
            }
            if (ok)
                std::printf("%s: ok\n", arg);
            else
                ++failures;
        } catch (const ConfigError &e) {
            std::fprintf(stderr, "%s: %s\n", arg, e.what());
            ++failures;
        }
        require_categories.clear();
        require_key.clear();
    }
    if (files == 0) {
        std::fprintf(stderr, "json_check: no files given\n");
        return 2;
    }
    return failures == 0 ? 0 : 1;
}
