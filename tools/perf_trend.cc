/**
 * @file
 * perf_trend — the multi-commit perf trajectory (DESIGN.md §4e).
 *
 * Where perf_compare diffs exactly two BENCH_<label>.json files,
 * perf_trend folds the whole committed sequence into one per-bench
 * cycles/sec series: either the files given on the command line
 * (oldest first), or every perf/BENCH_*.json discovered under --dir
 * and ordered by git commit time (files git does not know about sort
 * last, lexicographically, so uncommitted candidates appear at the
 * end of the trajectory).
 *
 * Usage:
 *   perf_trend [--json] [--fail-on-drop=PCT] [--dir=PATH | FILE...]
 *
 * Exit codes: 0 rendered, 2 first-to-last decline beyond
 * --fail-on-drop, 3 usage error or malformed/unreadable input — the
 * same broken-vs-slower split perf_compare documents.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/log.h"
#include "perf/trend.h"

using namespace beethoven;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: perf_trend [--json] [--fail-on-drop=PCT] "
          "[--dir=PATH | FILE.json...]\n"
          "\n"
          "  --json              machine-readable trend document\n"
          "  --fail-on-drop=PCT  exit 2 when any bench's first-to-last\n"
          "                      cycles/sec decline exceeds PCT\n"
          "  --dir=PATH          discover PATH/BENCH_*.json in git\n"
          "                      commit order (default when no files\n"
          "                      are given: perf)\n";
}

BenchSuite
loadSuite(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot read %s", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseBenchSuite(parseJson(ss.str()));
}

/**
 * Unix commit time of the last commit touching @p path, or 0 when git
 * is unavailable or the file is untracked.
 */
long long
gitCommitTime(const std::string &path)
{
    const std::filesystem::path p(path);
    const std::string dir =
        p.has_parent_path() ? p.parent_path().string() : ".";
    std::string cmd = "git -C '" + dir + "' log -1 --format=%ct -- '" +
                      p.filename().string() + "' 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return 0;
    char buf[64] = {};
    const bool got = std::fgets(buf, sizeof buf, pipe) != nullptr;
    pclose(pipe);
    return got ? std::strtoll(buf, nullptr, 10) : 0;
}

/** All BENCH_*.json under @p dir, oldest commit first. */
std::vector<std::string>
discover(const std::string &dir)
{
    std::vector<std::pair<long long, std::string>> found;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) != 0 ||
            name.find(".json") == std::string::npos)
            continue;
        const long long t = gitCommitTime(entry.path().string());
        // Untracked files (t == 0) sort after every committed one.
        found.emplace_back(t == 0 ? std::numeric_limits<long long>::max()
                                  : t,
                           entry.path().string());
    }
    if (ec)
        fatal("cannot list %s: %s", dir.c_str(),
              ec.message().c_str());
    std::sort(found.begin(), found.end());
    std::vector<std::string> paths;
    for (auto &[t, p] : found)
        paths.push_back(std::move(p));
    return paths;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    double fail_on_drop = -1.0;
    std::string dir;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--fail-on-drop=", 0) == 0) {
            char *end = nullptr;
            fail_on_drop = std::strtod(arg.c_str() + 15, &end);
            if (end == nullptr || *end != '\0' || fail_on_drop < 0.0) {
                std::cerr << "perf_trend: bad --fail-on-drop value\n";
                return 3;
            }
        } else if (arg.rfind("--dir=", 0) == 0) {
            dir = arg.substr(6);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "perf_trend: unknown argument '" << arg
                      << "'\n";
            usage(std::cerr);
            return 3;
        } else {
            files.push_back(arg);
        }
    }
    if (!dir.empty() && !files.empty()) {
        std::cerr << "perf_trend: give --dir or files, not both\n";
        return 3;
    }

    try {
        if (files.empty())
            files = discover(dir.empty() ? "perf" : dir);
        if (files.size() < 2) {
            std::cerr << "perf_trend: need at least two BENCH files "
                         "for a trajectory\n";
            return 3;
        }
        std::vector<BenchSuite> suites;
        suites.reserve(files.size());
        for (const std::string &f : files)
            suites.push_back(loadSuite(f));
        const TrendReport report = buildTrend(suites);
        if (json)
            writeTrendJson(std::cout, report);
        else
            writeTrendTable(std::cout, report);
        if (fail_on_drop >= 0.0 &&
            report.worstDropPct() > fail_on_drop) {
            std::cerr << "perf_trend: worst decline "
                      << report.worstDropPct() << "% exceeds "
                      << fail_on_drop << "%\n";
            return 2;
        }
        return 0;
    } catch (const ConfigError &e) {
        std::cerr << "perf_trend: " << e.what() << "\n";
        return 3;
    }
}
