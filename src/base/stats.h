/**
 * @file
 * Lightweight statistics collection for the simulation substrate.
 *
 * Modules register named scalar counters and histograms against a
 * StatGroup; the elaborated SoC exposes the root group so benchmarks
 * can dump per-module statistics (queue occupancies, DRAM row hits,
 * reader throughput, ...) after a run.
 */

#ifndef BEETHOVEN_BASE_STATS_H
#define BEETHOVEN_BASE_STATS_H

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven
{

/** A named monotonically-updated scalar statistic. */
class StatScalar
{
  public:
    StatScalar() = default;

    void operator+=(double v) { _value += v; }
    void operator++() { _value += 1.0; }
    void operator++(int) { _value += 1.0; }
    void set(double v) { _value = v; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/** A simple fixed-bucket histogram (linear buckets plus overflow). */
class StatHistogram
{
  public:
    StatHistogram() = default;

    /** Configure @p nbuckets linear buckets of width @p bucket_width. */
    void configure(std::size_t nbuckets, double bucket_width);

    void sample(double v);

    std::size_t samples() const { return _samples; }
    double sum() const { return _sum; }
    double mean() const { return _samples ? _sum / _samples : 0.0; }
    double max() const { return _samples ? _max : 0.0; }
    double min() const { return _samples ? _min : 0.0; }
    const std::vector<u64> &buckets() const { return _buckets; }
    double bucketWidth() const { return _bucketWidth; }

    /**
     * Estimate the @p p-th percentile (0 < p <= 100) from the bucket
     * counts: the upper edge of the bucket holding the target sample,
     * clamped to the observed max (so the overflow bucket and sparse
     * tails do not overstate the value). Returns 0 with no samples.
     */
    double percentile(double p) const;

  private:
    std::vector<u64> _buckets;
    double _bucketWidth = 1.0;
    std::size_t _samples = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A hierarchical group of named statistics.
 *
 * Groups own their children; leaf statistics are owned by the group and
 * referenced by the registering module for the lifetime of the SoC.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "root") : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Get or create a child group. */
    StatGroup &group(const std::string &name);

    /**
     * Get or create a chain of nested child groups from a dotted path
     * ("noc.ar" -> child "noc" -> child "ar"), so registered stats
     * resolve through findScalar / findHistogram. Plain group() treats
     * the whole string, dots included, as a single level.
     */
    StatGroup &groupByPath(const std::string &dotted_path);

    /** Get or create a named scalar in this group. */
    StatScalar &scalar(const std::string &name);

    /** Get or create a named histogram in this group. */
    StatHistogram &histogram(const std::string &name);

    const std::string &name() const { return _name; }

    /** Recursively print "path.to.stat = value" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Recursively serialize as JSON: {"scalars": {...}, "histograms":
     * {name: {samples, mean, min, max, p50, p95, p99, bucketWidth,
     * buckets: [...]}}, "groups": {name: {...}}}. Empty sections are
     * omitted.
     */
    void dumpJson(std::ostream &os) const;

    /** Look up a scalar by dotted path; nullptr if absent. */
    const StatScalar *findScalar(const std::string &dotted_path) const;

    /** Look up a histogram by dotted path; nullptr if absent. */
    const StatHistogram *findHistogram(const std::string &dotted_path) const;

  private:
    std::string _name;
    std::map<std::string, std::unique_ptr<StatGroup>> _children;
    std::map<std::string, StatScalar> _scalars;
    std::map<std::string, StatHistogram> _histograms;
};

} // namespace beethoven

#endif // BEETHOVEN_BASE_STATS_H
