/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * All stochastic behaviour in the framework (workload generation, test
 * fuzzing) draws from explicitly seeded Rng instances so that every
 * simulation run and every test is exactly reproducible.
 */

#ifndef BEETHOVEN_BASE_RNG_H
#define BEETHOVEN_BASE_RNG_H

#include "base/types.h"

namespace beethoven
{

/** SplitMix64: tiny, fast, and statistically solid for test inputs. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) : _state(seed) {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound) for bound >= 1. */
    u64
    nextBounded(u64 bound)
    {
        return bound <= 1 ? 0 : next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    u64
    nextRange(u64 lo, u64 hi)
    {
        return lo + nextBounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    u64 _state;
};

} // namespace beethoven

#endif // BEETHOVEN_BASE_RNG_H
