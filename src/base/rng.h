/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * All stochastic behaviour in the framework (workload generation, test
 * fuzzing) draws from explicitly seeded Rng instances so that every
 * simulation run and every test is exactly reproducible.
 */

#ifndef BEETHOVEN_BASE_RNG_H
#define BEETHOVEN_BASE_RNG_H

#include "base/types.h"

namespace beethoven
{

/** SplitMix64: tiny, fast, and statistically solid for test inputs. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) : _state(seed) {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /**
     * Uniform value in [0, bound); 0 when bound <= 1.
     *
     * Uses rejection sampling: a plain `next() % bound` over-weights
     * the low residues whenever 2^64 is not a multiple of bound. The
     * rejection region is [0, 2^64 mod bound), so for the small bounds
     * used in tests a redraw is astronomically rare and the common-case
     * value matches the historical modulo result.
     */
    u64
    nextBounded(u64 bound)
    {
        if (bound <= 1)
            return 0;
        const u64 reject_below = (0 - bound) % bound; // 2^64 mod bound
        u64 x = next();
        while (x < reject_below)
            x = next();
        return x % bound;
    }

    /**
     * Uniform value in [lo, hi] inclusive. A reversed range (lo > hi)
     * is treated as empty and returns lo; the full 64-bit range
     * [0, 2^64-1] is supported (the span computation would otherwise
     * wrap to zero).
     */
    u64
    nextRange(u64 lo, u64 hi)
    {
        if (lo >= hi)
            return lo;
        const u64 span = hi - lo + 1;
        if (span == 0) // hi - lo spans all 2^64 values
            return next();
        return lo + nextBounded(span);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    u64 _state;
};

} // namespace beethoven

#endif // BEETHOVEN_BASE_RNG_H
