/**
 * @file
 * Bit-manipulation helpers and an arbitrary-width BitVector used for
 * packing custom accelerator command payloads into RoCC instruction
 * beats (Section II-B of the paper: "Custom commands are transparently
 * mapped onto the RoCC instruction format").
 */

#ifndef BEETHOVEN_BASE_BITS_H
#define BEETHOVEN_BASE_BITS_H

#include <cstddef>
#include <vector>

#include "base/log.h"
#include "base/types.h"

namespace beethoven
{

/** Mask with the low @p nbits bits set (nbits in [0, 64]). */
constexpr u64
mask(unsigned nbits)
{
    return nbits >= 64 ? ~u64(0) : ((u64(1) << nbits) - 1);
}

/** Extract bits [first, first+nbits) of @p value. */
constexpr u64
bits(u64 value, unsigned first, unsigned nbits)
{
    return (value >> first) & mask(nbits);
}

/** Insert the low @p nbits of @p field into @p value at bit @p first. */
constexpr u64
insertBits(u64 value, unsigned first, unsigned nbits, u64 field)
{
    const u64 m = mask(nbits) << first;
    return (value & ~m) | ((field << first) & m);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** ceil(log2(v)) for v >= 1. */
constexpr unsigned
ceilLog2(u64 v)
{
    unsigned n = 0;
    u64 p = 1;
    while (p < v) {
        p <<= 1;
        ++n;
    }
    return n;
}

/** Round @p v up to the next multiple of @p align (align > 0). */
constexpr u64
roundUp(u64 v, u64 align)
{
    return ((v + align - 1) / align) * align;
}

/** Ceiling division. */
constexpr u64
divCeil(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/**
 * A little-endian bit vector of arbitrary width.
 *
 * Bit 0 is the least-significant bit of word 0. Used as the staging
 * buffer when flattening a custom command's fields into the 128-bit
 * payload chunks carried by successive RoCC beats, and when unpacking
 * them again inside the accelerator core.
 */
class BitVector
{
  public:
    /** Construct an all-zero vector of @p nbits bits. */
    explicit BitVector(std::size_t nbits = 0);

    std::size_t numBits() const { return _numBits; }

    /** Widen (or shrink) to @p nbits, preserving low-order content. */
    void resize(std::size_t nbits);

    /**
     * Write the low @p nbits of @p field at bit offset @p first.
     * @pre first + nbits <= numBits() and nbits <= 64.
     */
    void setBits(std::size_t first, unsigned nbits, u64 field);

    /**
     * Read @p nbits bits starting at offset @p first.
     * @pre first + nbits <= numBits() and nbits <= 64.
     */
    u64 getBits(std::size_t first, unsigned nbits) const;

    /** Read one 64-bit word at word index @p idx (zero-padded). */
    u64 word(std::size_t idx) const;

    /** Write one 64-bit word at word index @p idx. */
    void setWord(std::size_t idx, u64 value);

    /** Number of 64-bit words needed to hold numBits(). */
    std::size_t numWords() const { return _words.size(); }

    bool operator==(const BitVector &other) const;

  private:
    std::size_t _numBits;
    std::vector<u64> _words;
};

} // namespace beethoven

#endif // BEETHOVEN_BASE_BITS_H
