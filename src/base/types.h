/**
 * @file
 * Fundamental type aliases shared across the Beethoven framework.
 */

#ifndef BEETHOVEN_BASE_TYPES_H
#define BEETHOVEN_BASE_TYPES_H

#include <cstddef>
#include <cstdint>

namespace beethoven
{

/** Simulation cycle count (accelerator clock domain). */
using Cycle = std::uint64_t;

/** Byte address in the accelerator-visible memory space. */
using Addr = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Binary size literals. */
constexpr std::size_t operator""_KiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 10;
}

constexpr std::size_t operator""_MiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 20;
}

constexpr std::size_t operator""_GiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 30;
}

} // namespace beethoven

#endif // BEETHOVEN_BASE_TYPES_H
