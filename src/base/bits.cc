#include "base/bits.h"

namespace beethoven
{

BitVector::BitVector(std::size_t nbits)
    : _numBits(nbits), _words((nbits + 63) / 64, 0)
{}

void
BitVector::resize(std::size_t nbits)
{
    _numBits = nbits;
    _words.resize((nbits + 63) / 64, 0);
    // Clear any bits beyond the new width in the top word.
    if (_numBits % 64 != 0 && !_words.empty())
        _words.back() &= mask(static_cast<unsigned>(_numBits % 64));
}

void
BitVector::setBits(std::size_t first, unsigned nbits, u64 field)
{
    beethoven_assert(nbits <= 64, "setBits width %u > 64", nbits);
    beethoven_assert(first + nbits <= _numBits,
                     "setBits out of range: [%zu, %zu) in %zu-bit vector",
                     first, first + nbits, _numBits);
    if (nbits == 0)
        return;
    field &= mask(nbits);
    const std::size_t w = first / 64;
    const unsigned off = static_cast<unsigned>(first % 64);
    _words[w] = insertBits(_words[w], off,
                           nbits < 64 - off ? nbits : 64 - off, field);
    if (off + nbits > 64) {
        const unsigned lo = 64 - off;
        _words[w + 1] = insertBits(_words[w + 1], 0, nbits - lo,
                                   field >> lo);
    }
}

u64
BitVector::getBits(std::size_t first, unsigned nbits) const
{
    beethoven_assert(nbits <= 64, "getBits width %u > 64", nbits);
    beethoven_assert(first + nbits <= _numBits,
                     "getBits out of range: [%zu, %zu) in %zu-bit vector",
                     first, first + nbits, _numBits);
    if (nbits == 0)
        return 0;
    const std::size_t w = first / 64;
    const unsigned off = static_cast<unsigned>(first % 64);
    u64 value = _words[w] >> off;
    if (off + nbits > 64)
        value |= _words[w + 1] << (64 - off);
    return value & mask(nbits);
}

u64
BitVector::word(std::size_t idx) const
{
    return idx < _words.size() ? _words[idx] : 0;
}

void
BitVector::setWord(std::size_t idx, u64 value)
{
    beethoven_assert(idx < _words.size(), "setWord index %zu out of range",
                     idx);
    _words[idx] = value;
    if (idx == _words.size() - 1 && _numBits % 64 != 0)
        _words[idx] &= mask(static_cast<unsigned>(_numBits % 64));
}

bool
BitVector::operator==(const BitVector &other) const
{
    return _numBits == other._numBits && _words == other._words;
}

} // namespace beethoven
