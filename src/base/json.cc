#include "base/json.h"

#include <cctype>
#include <cstdlib>

#include "base/log.h"

namespace beethoven
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _text.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw ConfigError("json: " + what + " at offset " +
                          std::to_string(_pos));
    }

    void skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    char peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (_text.compare(_pos, n, lit) != 0)
            return false;
        _pos += n;
        return true;
    }

    JsonValue parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (_pos >= _text.size())
                fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Validation-only use: keep BMP code points as UTF-8,
                // no surrogate-pair handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            fail("expected a value");
        const std::string tok = _text.substr(start, _pos - start);
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number '" + tok + "'");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = d;
        return v;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace beethoven
