#include "base/stats.h"

#include <cmath>
#include <memory>

namespace beethoven
{

void
StatHistogram::configure(std::size_t nbuckets, double bucket_width)
{
    _buckets.assign(nbuckets + 1, 0); // +1 overflow bucket
    _bucketWidth = bucket_width;
}

void
StatHistogram::sample(double v)
{
    if (_buckets.empty())
        configure(16, 1.0);
    if (_samples == 0) {
        _min = v;
        _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    ++_samples;
    _sum += v;
    // Negative samples land in bucket 0: the double->size_t cast below
    // is UB for negative values, and min()/mean() already carry the
    // signed information.
    std::size_t idx = v < 0.0
        ? 0
        : static_cast<std::size_t>(v / _bucketWidth);
    if (idx >= _buckets.size())
        idx = _buckets.size() - 1;
    ++_buckets[idx];
}

double
StatHistogram::percentile(double p) const
{
    if (_samples == 0 || _buckets.empty())
        return 0.0;
    if (p > 100.0)
        p = 100.0;
    // Rank of the target sample, 1-based (ceiling, so p99 of two
    // samples is the second); p <= 0 degenerates to the first sample.
    std::size_t target = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(_samples)));
    if (target < 1)
        target = 1;
    if (target > _samples)
        target = _samples;
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        cumulative += _buckets[i];
        if (cumulative >= target) {
            if (i + 1 == _buckets.size())
                return _max; // overflow bucket has no upper edge
            const double edge = static_cast<double>(i + 1) * _bucketWidth;
            return edge < _max ? edge : _max;
        }
    }
    return _max;
}

StatGroup &
StatGroup::group(const std::string &name)
{
    auto it = _children.find(name);
    if (it == _children.end())
        it = _children.emplace(name, std::make_unique<StatGroup>(name)).first;
    return *it->second;
}

StatGroup &
StatGroup::groupByPath(const std::string &dotted_path)
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos)
        return group(dotted_path);
    return group(dotted_path.substr(0, dot))
        .groupByPath(dotted_path.substr(dot + 1));
}

StatScalar &
StatGroup::scalar(const std::string &name)
{
    return _scalars[name];
}

StatHistogram &
StatGroup::histogram(const std::string &name)
{
    return _histograms[name];
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[name, s] : _scalars)
        os << base << "." << name << " = " << s.value() << "\n";
    for (const auto &[name, h] : _histograms) {
        os << base << "." << name << ".samples = " << h.samples() << "\n";
        os << base << "." << name << ".mean = " << h.mean() << "\n";
        os << base << "." << name << ".max = " << h.max() << "\n";
    }
    for (const auto &[name, child] : _children)
        child->dump(os, base);
}

const StatScalar *
StatGroup::findScalar(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        auto it = _scalars.find(dotted_path);
        return it == _scalars.end() ? nullptr : &it->second;
    }
    auto it = _children.find(dotted_path.substr(0, dot));
    if (it == _children.end())
        return nullptr;
    return it->second->findScalar(dotted_path.substr(dot + 1));
}

const StatHistogram *
StatGroup::findHistogram(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        auto it = _histograms.find(dotted_path);
        return it == _histograms.end() ? nullptr : &it->second;
    }
    auto it = _children.find(dotted_path.substr(0, dot));
    if (it == _children.end())
        return nullptr;
    return it->second->findHistogram(dotted_path.substr(dot + 1));
}

namespace
{

void
jsonQuote(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    auto section = [&](const char *key) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << key << "\":{";
    };
    if (!_scalars.empty()) {
        section("scalars");
        bool f = true;
        for (const auto &[name, s] : _scalars) {
            if (!f)
                os << ",";
            f = false;
            jsonQuote(os, name);
            os << ":" << s.value();
        }
        os << "}";
    }
    if (!_histograms.empty()) {
        section("histograms");
        bool f = true;
        for (const auto &[name, h] : _histograms) {
            if (!f)
                os << ",";
            f = false;
            jsonQuote(os, name);
            os << ":{\"samples\":" << h.samples()
               << ",\"mean\":" << h.mean()
               << ",\"min\":" << h.min()
               << ",\"max\":" << h.max()
               << ",\"p50\":" << h.percentile(50.0)
               << ",\"p95\":" << h.percentile(95.0)
               << ",\"p99\":" << h.percentile(99.0)
               << ",\"bucketWidth\":" << h.bucketWidth()
               << ",\"buckets\":[";
            bool bf = true;
            for (u64 b : h.buckets()) {
                if (!bf)
                    os << ",";
                bf = false;
                os << b;
            }
            os << "]}";
        }
        os << "}";
    }
    if (!_children.empty()) {
        section("groups");
        bool f = true;
        for (const auto &[name, child] : _children) {
            if (!f)
                os << ",";
            f = false;
            jsonQuote(os, name);
            os << ":";
            child->dumpJson(os);
        }
        os << "}";
    }
    os << "}";
}

} // namespace beethoven
