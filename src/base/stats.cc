#include "base/stats.h"

#include <memory>

namespace beethoven
{

void
StatHistogram::configure(std::size_t nbuckets, double bucket_width)
{
    _buckets.assign(nbuckets + 1, 0); // +1 overflow bucket
    _bucketWidth = bucket_width;
}

void
StatHistogram::sample(double v)
{
    if (_buckets.empty())
        configure(16, 1.0);
    if (_samples == 0) {
        _min = v;
        _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    ++_samples;
    _sum += v;
    std::size_t idx = static_cast<std::size_t>(v / _bucketWidth);
    if (idx >= _buckets.size())
        idx = _buckets.size() - 1;
    ++_buckets[idx];
}

StatGroup &
StatGroup::group(const std::string &name)
{
    auto it = _children.find(name);
    if (it == _children.end())
        it = _children.emplace(name, std::make_unique<StatGroup>(name)).first;
    return *it->second;
}

StatScalar &
StatGroup::scalar(const std::string &name)
{
    return _scalars[name];
}

StatHistogram &
StatGroup::histogram(const std::string &name)
{
    return _histograms[name];
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[name, s] : _scalars)
        os << base << "." << name << " = " << s.value() << "\n";
    for (const auto &[name, h] : _histograms) {
        os << base << "." << name << ".samples = " << h.samples() << "\n";
        os << base << "." << name << ".mean = " << h.mean() << "\n";
        os << base << "." << name << ".max = " << h.max() << "\n";
    }
    for (const auto &[name, child] : _children)
        child->dump(os, base);
}

const StatScalar *
StatGroup::findScalar(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        auto it = _scalars.find(dotted_path);
        return it == _scalars.end() ? nullptr : &it->second;
    }
    auto it = _children.find(dotted_path.substr(0, dot));
    if (it == _children.end())
        return nullptr;
    return it->second->findScalar(dotted_path.substr(dot + 1));
}

} // namespace beethoven
