/**
 * @file
 * A minimal JSON parser for validating the substrate's own output
 * (trace files, stats exports) in tests and tooling. Not a general
 * serialization layer: numbers are doubles, objects preserve insertion
 * order in a vector of pairs.
 */

#ifndef BEETHOVEN_BASE_JSON_H
#define BEETHOVEN_BASE_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace beethoven
{

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr if absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text as a single JSON value (trailing whitespace allowed).
 * @throws ConfigError on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace beethoven

#endif // BEETHOVEN_BASE_JSON_H
