#include "base/log.h"

#include <cstdarg>
#include <vector>

namespace beethoven
{

namespace detail
{

std::string
formatMessage(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // namespace detail

namespace
{
bool informEnabled = true;
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw ConfigError(detail::formatMessage("fatal: %s (at %s:%d)",
                                            msg.c_str(), file, line));
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (informEnabled)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace beethoven
