/**
 * @file
 * Status / error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — internal framework invariant violated (a Beethoven bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  — the *user's* configuration or input is invalid; throws a
 *            ConfigError so tests (and embedding applications) can catch
 *            and report it without tearing down the process.
 * warn()   — something works but is suspicious; execution continues.
 * inform() — plain status output.
 */

#ifndef BEETHOVEN_BASE_LOG_H
#define BEETHOVEN_BASE_LOG_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace beethoven
{

/** Error thrown by fatal() for invalid user configuration or input. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail
{

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Abort with a message. Use only for conditions that indicate a bug in
 * Beethoven itself, never for user error.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Raise a ConfigError for an invalid user configuration.
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stdout. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (quiet mode for benchmarks). */
void setInformEnabled(bool enabled);

#define panic(...) \
    ::beethoven::panicImpl(__FILE__, __LINE__, \
                           ::beethoven::detail::formatMessage(__VA_ARGS__))

#define fatal(...) \
    ::beethoven::fatalImpl(__FILE__, __LINE__, \
                           ::beethoven::detail::formatMessage(__VA_ARGS__))

#define warn(...) \
    ::beethoven::warnImpl(::beethoven::detail::formatMessage(__VA_ARGS__))

#define inform(...) \
    ::beethoven::informImpl(::beethoven::detail::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define beethoven_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::beethoven::panicImpl( \
                __FILE__, __LINE__, \
                std::string("assertion failed: " #cond " — ") + \
                    ::beethoven::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace beethoven

#endif // BEETHOVEN_BASE_LOG_H
