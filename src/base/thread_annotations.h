/**
 * @file
 * Clang thread-safety annotation macros (no-ops elsewhere).
 *
 * The simulator is single-threaded today, but ROADMAP item 2 shards
 * the SoC across threads. These macros let us state the ownership
 * contract now — which state belongs to the simulation thread — so
 * clang's -Wthread-safety analysis can check the sharded kernel
 * against the same declarations later. Under gcc (the default
 * toolchain) every macro expands to nothing.
 */

#ifndef BEETHOVEN_BASE_THREAD_ANNOTATIONS_H
#define BEETHOVEN_BASE_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BTH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BTH_THREAD_ANNOTATION
#define BTH_THREAD_ANNOTATION(x)
#endif

#define BTH_CAPABILITY(x) BTH_THREAD_ANNOTATION(capability(x))
#define BTH_GUARDED_BY(x) BTH_THREAD_ANNOTATION(guarded_by(x))
#define BTH_REQUIRES(...) \
    BTH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BTH_ACQUIRE(...) \
    BTH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BTH_RELEASE(...) \
    BTH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BTH_ASSERT_CAPABILITY(x) \
    BTH_THREAD_ANNOTATION(assert_capability(x))

namespace beethoven
{

/**
 * The simulation thread, modeled as a capability. Event-kernel state
 * (the wake wheel, the dirty-commit list, the tick cursor) is
 * GUARDED_BY this role; the public Simulator entry points assert it,
 * private phase helpers REQUIRE it. Today a process-wide token; the
 * sharded kernel will hold one per shard.
 */
class BTH_CAPABILITY("sim-thread") ThreadRole
{
  public:
    /** Entry-point assertion that the calling thread owns this role. */
    void assertHeld() const BTH_ASSERT_CAPABILITY(this) {}
};

/** The (single) simulation thread role; defined in sim/simulator.cc. */
extern ThreadRole gSimThreadRole;

} // namespace beethoven

#endif // BEETHOVEN_BASE_THREAD_ANNOTATIONS_H
