#include "runtime/allocator.h"

#include "base/bits.h"
#include "base/log.h"

namespace beethoven
{

DeviceAllocator::DeviceAllocator(Addr base, u64 size, u64 alignment)
    : _base(base), _size(size), _alignment(alignment)
{
    if (!isPowerOf2(alignment))
        fatal("allocator alignment %llu is not a power of two",
              static_cast<unsigned long long>(alignment));
    if (base % alignment != 0)
        fatal("allocator base 0x%llx not aligned to %llu",
              static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(alignment));
    if (size == 0)
        fatal("allocator with zero capacity");
    _free.emplace(base, size);
}

std::optional<Addr>
DeviceAllocator::allocate(u64 size)
{
    if (size == 0)
        size = 1;
    size = roundUp(size, _alignment);
    // First fit.
    for (auto it = _free.begin(); it != _free.end(); ++it) {
        if (it->second < size)
            continue;
        const Addr addr = it->first;
        const u64 remaining = it->second - size;
        _free.erase(it);
        if (remaining > 0)
            _free.emplace(addr + size, remaining);
        _allocated.emplace(addr, size);
        _bytesAllocated += size;
        return addr;
    }
    return std::nullopt;
}

void
DeviceAllocator::release(Addr addr)
{
    auto it = _allocated.find(addr);
    if (it == _allocated.end())
        fatal("release of 0x%llx which is not an active allocation",
              static_cast<unsigned long long>(addr));
    u64 start = it->first;
    u64 len = it->second;
    _bytesAllocated -= len;
    _allocated.erase(it);

    // Coalesce with the following free block.
    auto next = _free.lower_bound(start);
    if (next != _free.end() && next->first == start + len) {
        len += next->second;
        _free.erase(next);
    }
    // Coalesce with the preceding free block.
    auto prev = _free.lower_bound(start);
    if (prev != _free.begin()) {
        --prev;
        if (prev->first + prev->second == start) {
            start = prev->first;
            len += prev->second;
            _free.erase(prev);
        }
    }
    _free.emplace(start, len);
}

u64
DeviceAllocator::allocationSize(Addr addr) const
{
    auto it = _allocated.find(addr);
    return it == _allocated.end() ? 0 : it->second;
}

} // namespace beethoven
