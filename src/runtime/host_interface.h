/**
 * @file
 * HostInterface — the modeled host<->device link.
 *
 * Every MMIO register access and every DMA transfer issued by the
 * runtime crosses this single serialized interface, with per-operation
 * latency supplied by the Platform (PCIe-scale on discrete devices,
 * on-die-scale on embedded ones). The serialization *is* the
 * runtime-server arbitration point the paper describes in
 * Section II-C1 — command dispatch and response polling for all cores
 * contend here, which produces the ideal-vs-measured gap of Fig. 6.
 */

#ifndef BEETHOVEN_RUNTIME_HOST_INTERFACE_H
#define BEETHOVEN_RUNTIME_HOST_INTERFACE_H

#include <deque>
#include <functional>

#include "cmd/mmio.h"
#include "dram/functional_memory.h"
#include "platform/platform.h"
#include "sim/module.h"

namespace beethoven
{

/** One host-side operation crossing the link. */
struct HostOp
{
    enum class Kind { Read32, Write32, DmaToDevice, DmaFromDevice };

    Kind kind = Kind::Read32;
    u32 offset = 0; ///< MMIO register offset (Read32/Write32)
    u32 value = 0;  ///< write payload
    Addr devAddr = 0;
    u8 *hostDst = nullptr;       ///< DmaFromDevice destination
    const u8 *hostSrc = nullptr; ///< DmaToDevice source
    std::size_t len = 0;
    /** Invoked at completion; the argument is the read value (or 0). */
    std::function<void(u32)> done;
};

class HostInterface : public Module
{
  public:
    HostInterface(Simulator &sim, std::string name,
                  MmioCommandSystem &mmio, FunctionalMemory &mem,
                  const Platform &platform);

    /** Queue an operation; completes after its modeled latency. */
    void enqueue(HostOp op);

    bool idle() const { return !_inFlight && _queue.empty(); }
    std::size_t pending() const
    {
        return _queue.size() + (_inFlight ? 1 : 0);
    }

    /**
     * True while any queued or in-flight operation is a DMA transfer.
     * DMA writes the functional memory the DRAM model also reads, so
     * the parallel kernel serial-fences on this predicate and steps
     * merged single cycles until the transfer completes.
     */
    bool hasPendingDma() const { return _pendingDma != 0; }

    /** Total cycles the link spent busy (for utilization stats). */
    u64 busyCycles() const { return _busyCycles; }

    void tick() override;

  private:
    Cycle costOf(const HostOp &op) const;
    void perform(HostOp &op);

    MmioCommandSystem &_mmio;
    FunctionalMemory &_mem;
    const Platform &_platform;

    std::deque<HostOp> _queue;
    bool _inFlight = false;
    HostOp _current;
    Cycle _completesAt = 0;
    u64 _busyCycles = 0;
    unsigned _pendingDma = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_RUNTIME_HOST_INTERFACE_H
