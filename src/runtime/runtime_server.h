/**
 * @file
 * RuntimeServer — the FPGA management runtime (Section II-C1).
 *
 * "The FPGA management runtime operates as a userspace server
 * responsible for arbitrating fair access to the command-response bus
 * and managing the FPGA memory space. ... The runtime server polls the
 * MMIO interface for command responses when there are in-flight
 * commands."
 *
 * One RuntimeServer attaches to one elaborated SoC. It owns the
 * device-space allocator and the HostInterface; every fpga_handle_t
 * (user process / thread) funnels its MMIO traffic through it. Because
 * the HostInterface serializes operations, concurrent users contend
 * exactly as they do on the real runtime's command-bus lock.
 */

#ifndef BEETHOVEN_RUNTIME_RUNTIME_SERVER_H
#define BEETHOVEN_RUNTIME_RUNTIME_SERVER_H

#include <map>
#include <memory>
#include <optional>

#include "core/soc.h"
#include "runtime/allocator.h"
#include "runtime/host_interface.h"

namespace beethoven
{

class RuntimeServer
{
  public:
    explicit RuntimeServer(AcceleratorSoc &soc);

    AcceleratorSoc &soc() { return _soc; }
    HostInterface &hostIf() { return *_hostIf; }
    DeviceAllocator &allocator() { return *_allocator; }

    /** A pending-response key: (systemId, coreId, rd). */
    struct RespKey
    {
        u32 systemId;
        u32 coreId;
        u32 rd;
        auto operator<=>(const RespKey &) const = default;
    };

    /** Claim a response token for a command about to be sent. */
    u32 allocateRd(u32 system_id, u32 core_id);

    /**
     * Send one custom command. Blocks (steps the simulation) until all
     * of its RoCC beats have crossed the MMIO interface. The
     * accelerator runs concurrently during this time.
     */
    void sendCommand(const CommandSpec &spec, u32 system_id, u32 core_id,
                     u32 command_id, u32 rd,
                     const std::vector<u64> &values);

    /** Non-blocking: true (and the payload) if the response arrived. */
    std::optional<u64> tryCollect(const RespKey &key);

    /**
     * Block (stepping the simulation and polling the MMIO response
     * registers) until the response for @p key arrives.
     * @throws ConfigError on timeout — a hung accelerator.
     */
    u64 waitFor(const RespKey &key, Cycle timeout = 500'000'000ULL);

    /** Cycles between response-poll sequences when waiting. */
    void setPollInterval(Cycle cycles) { _pollInterval = cycles; }

    /** In-flight commands whose responses have not been collected. */
    std::size_t inFlight() const { return _inFlight; }

  private:
    /** Step the simulation until the host link drains its queue. */
    void drainHost();
    /** Run one response-poll sequence (costs MMIO operations). */
    void pollResponses();

    AcceleratorSoc &_soc;
    std::unique_ptr<HostInterface> _hostIf;
    std::unique_ptr<DeviceAllocator> _allocator;

    std::map<RespKey, u64> _arrived;
    std::map<std::pair<u32, u32>, u32> _rdCounters;
    std::size_t _inFlight = 0;
    Cycle _pollInterval = 50;
};

} // namespace beethoven

#endif // BEETHOVEN_RUNTIME_RUNTIME_SERVER_H
