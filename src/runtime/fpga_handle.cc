#include "runtime/fpga_handle.h"

#include "base/log.h"

namespace beethoven
{

remote_ptr
fpga_handle_t::malloc(std::size_t n_bytes)
{
    auto addr = _server->allocator().allocate(n_bytes);
    if (!addr) {
        fatal("device allocator exhausted: %zu bytes requested, %llu "
              "free",
              n_bytes,
              static_cast<unsigned long long>(
                  _server->allocator().bytesFree()));
    }
    return remote_ptr(*addr, n_bytes);
}

void
fpga_handle_t::free(const remote_ptr &ptr)
{
    _server->allocator().release(ptr.getFpgaAddr());
}

void
fpga_handle_t::copy_to_fpga(const remote_ptr &ptr)
{
    bool done = false;
    HostOp op;
    op.kind = HostOp::Kind::DmaToDevice;
    op.devAddr = ptr.getFpgaAddr();
    op.hostSrc = ptr.getHostAddr();
    op.len = ptr.size();
    op.done = [&done](u32) { done = true; };
    _server->hostIf().enqueue(std::move(op));
    if (!_server->soc().sim().runUntil([&] { return done; },
                                       1'000'000'000ULL))
        fatal("DMA to device timed out");
}

void
fpga_handle_t::copy_from_fpga(remote_ptr &ptr)
{
    bool done = false;
    HostOp op;
    op.kind = HostOp::Kind::DmaFromDevice;
    op.devAddr = ptr.getFpgaAddr();
    op.hostDst = ptr.getHostAddr();
    op.len = ptr.size();
    op.done = [&done](u32) { done = true; };
    _server->hostIf().enqueue(std::move(op));
    if (!_server->soc().sim().runUntil([&] { return done; },
                                       1'000'000'000ULL))
        fatal("DMA from device timed out");
}

response_handle<u64>
fpga_handle_t::invoke(const std::string &system,
                      const std::string &command, u32 core_idx,
                      const std::vector<u64> &args)
{
    const u32 system_id = _server->soc().systemIdOf(system);
    const auto &sys_cfg = _server->soc().systemConfig(system);
    if (core_idx >= sys_cfg.nCores) {
        fatal("core index %u out of range for system %s (%u cores)",
              core_idx, system.c_str(), sys_cfg.nCores);
    }
    for (u32 cmd_id = 0; cmd_id < sys_cfg.commands.size(); ++cmd_id) {
        const CommandSpec &spec = sys_cfg.commands[cmd_id];
        if (spec.name() != command)
            continue;
        const u32 rd = _server->allocateRd(system_id, core_idx);
        _server->sendCommand(spec, system_id, core_idx, cmd_id, rd,
                             args);
        RuntimeServer::RespKey key{system_id, core_idx, rd};
        return response_handle<u64>(_server, key,
                                    [](u64 v) { return v; });
    }
    fatal("system %s declares no command named '%s'", system.c_str(),
          command.c_str());
}

} // namespace beethoven
