#include "runtime/runtime_server.h"

#include "base/log.h"

namespace beethoven
{

RuntimeServer::RuntimeServer(AcceleratorSoc &soc) : _soc(soc)
{
    _hostIf = std::make_unique<HostInterface>(
        soc.sim(), "host", soc.mmio(), soc.memory(), soc.platform());
    // The host link services MMIO on the host shard (id 0, the
    // convention assignShards establishes). Its DMA transfers write
    // the functional memory the DRAM model reads on the mem shard, so
    // the parallel kernel must step merged single cycles while one is
    // pending; the fence predicate makes that window explicit.
    soc.sim().graphRecord().setShard(_hostIf.get(), 0);
    soc.sim().addSerialFence(
        [hi = _hostIf.get()] { return hi->hasPendingDma(); });
    // Reserve address 0 so user code can treat 0 as "null".
    const Addr base = 4096;
    _allocator = std::make_unique<DeviceAllocator>(
        base, soc.platform().memoryCapacityBytes() - base);
}

u32
RuntimeServer::allocateRd(u32 system_id, u32 core_id)
{
    u32 &counter = _rdCounters[{system_id, core_id}];
    const u32 rd = counter;
    counter = (counter + 1) % 32;
    return rd;
}

void
RuntimeServer::drainHost()
{
    const bool ok = _soc.sim().runUntil(
        [this] { return _hostIf->idle(); }, 100'000'000ULL);
    if (!ok)
        fatal("host interface failed to drain (modeling bug?)");
}

void
RuntimeServer::sendCommand(const CommandSpec &spec, u32 system_id,
                           u32 core_id, u32 command_id, u32 rd,
                           const std::vector<u64> &values)
{
    const auto beats =
        spec.pack(system_id, core_id, command_id, rd, values);
    for (const RoccCommand &beat : beats) {
        // Poll CMD_READY until the front-end can take a beat.
        for (;;) {
            bool got = false;
            u32 ready = 0;
            HostOp op;
            op.kind = HostOp::Kind::Read32;
            op.offset = mmio_regs::cmdReady;
            op.done = [&](u32 v) {
                ready = v;
                got = true;
            };
            _hostIf->enqueue(std::move(op));
            const bool ok = _soc.sim().runUntil([&] { return got; },
                                                100'000'000ULL);
            if (!ok)
                fatal("timeout polling CMD_READY");
            if (ready)
                break;
            _soc.sim().run(_pollInterval);
        }
        // Five CMD_BITS writes + CMD_VALID.
        const u32 words[5] = {
            beat.inst,
            static_cast<u32>(beat.rs1),
            static_cast<u32>(beat.rs1 >> 32),
            static_cast<u32>(beat.rs2),
            static_cast<u32>(beat.rs2 >> 32),
        };
        for (u32 w : words) {
            HostOp op;
            op.kind = HostOp::Kind::Write32;
            op.offset = mmio_regs::cmdBits;
            op.value = w;
            _hostIf->enqueue(std::move(op));
        }
        HostOp submit;
        submit.kind = HostOp::Kind::Write32;
        submit.offset = mmio_regs::cmdValid;
        submit.value = 1;
        _hostIf->enqueue(std::move(submit));
        drainHost();
    }
    ++_inFlight;
}

void
RuntimeServer::pollResponses()
{
    bool got = false;
    u32 valid = 0;
    HostOp probe;
    probe.kind = HostOp::Kind::Read32;
    probe.offset = mmio_regs::respValid;
    probe.done = [&](u32 v) {
        valid = v;
        got = true;
    };
    _hostIf->enqueue(std::move(probe));
    if (!_soc.sim().runUntil([&] { return got; }, 100'000'000ULL))
        fatal("timeout polling RESP_VALID");
    if (!valid)
        return;

    u32 words[3] = {0, 0, 0};
    unsigned received = 0;
    for (unsigned i = 0; i < 3; ++i) {
        HostOp rd;
        rd.kind = HostOp::Kind::Read32;
        rd.offset = mmio_regs::respBits;
        rd.done = [&words, &received, i](u32 v) {
            words[i] = v;
            ++received;
        };
        _hostIf->enqueue(std::move(rd));
    }
    HostOp ack;
    ack.kind = HostOp::Kind::Write32;
    ack.offset = mmio_regs::respReady;
    ack.value = 1;
    _hostIf->enqueue(std::move(ack));
    drainHost();
    beethoven_assert(received == 3, "response drain incomplete");

    RespKey key;
    key.rd = words[2] & 0x1F;
    key.coreId = (words[2] >> 5) & 0x3FF;
    key.systemId = words[2] >> 16;
    const u64 data = u64(words[0]) | (u64(words[1]) << 32);
    _arrived[key] = data;
    if (_inFlight > 0)
        --_inFlight;
}

std::optional<u64>
RuntimeServer::tryCollect(const RespKey &key)
{
    auto it = _arrived.find(key);
    if (it == _arrived.end()) {
        pollResponses();
        it = _arrived.find(key);
        if (it == _arrived.end())
            return std::nullopt;
    }
    const u64 v = it->second;
    _arrived.erase(it);
    return v;
}

u64
RuntimeServer::waitFor(const RespKey &key, Cycle timeout)
{
    const Cycle start = _soc.sim().cycle();
    for (;;) {
        if (auto v = tryCollect(key))
            return *v;
        if (_soc.sim().cycle() - start > timeout) {
            fatal("timed out after %llu cycles waiting for response "
                  "(system %u core %u rd %u) — accelerator hung?",
                  static_cast<unsigned long long>(timeout), key.systemId,
                  key.coreId, key.rd);
        }
        _soc.sim().run(_pollInterval);
    }
}

} // namespace beethoven
