#include "runtime/host_interface.h"

#include "base/bits.h"

namespace beethoven
{

HostInterface::HostInterface(Simulator &sim, std::string name,
                             MmioCommandSystem &mmio,
                             FunctionalMemory &mem,
                             const Platform &platform)
    : Module(sim, std::move(name)),
      _mmio(mmio),
      _mem(mem),
      _platform(platform)
{}

void
HostInterface::enqueue(HostOp op)
{
    if (op.kind == HostOp::Kind::DmaToDevice ||
        op.kind == HostOp::Kind::DmaFromDevice)
        ++_pendingDma;
    _queue.push_back(std::move(op));
}

Cycle
HostInterface::costOf(const HostOp &op) const
{
    switch (op.kind) {
      case HostOp::Kind::Read32:
        return std::max(1u, _platform.mmioReadCycles());
      case HostOp::Kind::Write32:
        return std::max(1u, _platform.mmioWriteCycles());
      case HostOp::Kind::DmaToDevice:
      case HostOp::Kind::DmaFromDevice: {
        const double bw = _platform.dmaBandwidthBytesPerCycle();
        const Cycle setup = 4ULL * _platform.mmioWriteCycles();
        return setup + static_cast<Cycle>(
                           divCeil(op.len, static_cast<u64>(bw)));
      }
    }
    return 1;
}

void
HostInterface::perform(HostOp &op)
{
    u32 result = 0;
    switch (op.kind) {
      case HostOp::Kind::Read32:
        result = _mmio.read32(op.offset);
        break;
      case HostOp::Kind::Write32:
        _mmio.write32(op.offset, op.value);
        break;
      case HostOp::Kind::DmaToDevice:
        _mem.write(op.devAddr, op.len, op.hostSrc);
        --_pendingDma;
        break;
      case HostOp::Kind::DmaFromDevice:
        _mem.read(op.devAddr, op.len, op.hostDst);
        --_pendingDma;
        break;
    }
    if (op.done)
        op.done(result);
}

void
HostInterface::tick()
{
    if (_inFlight) {
        ++_busyCycles;
        if (sim().cycle() + 1 >= _completesAt) {
            perform(_current);
            _inFlight = false;
        }
        return;
    }
    if (_queue.empty())
        return;
    _current = std::move(_queue.front());
    _queue.pop_front();
    _inFlight = true;
    _completesAt = sim().cycle() + costOf(_current);
    ++_busyCycles;
    if (sim().cycle() + 1 >= _completesAt) {
        perform(_current);
        _inFlight = false;
    }
}

} // namespace beethoven
