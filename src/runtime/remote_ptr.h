/**
 * @file
 * remote_ptr — a host handle to an accelerator-visible allocation
 * (Fig. 3c and Appendix B).
 *
 * Pairs the device address (what Readers/Writers consume) with a
 * host-side buffer used as the source/destination of DMA copies. On
 * embedded platforms the two views alias the same physical memory; the
 * runtime hides the difference (Section II-C2).
 */

#ifndef BEETHOVEN_RUNTIME_REMOTE_PTR_H
#define BEETHOVEN_RUNTIME_REMOTE_PTR_H

#include <memory>
#include <vector>

#include "base/log.h"
#include "base/types.h"

namespace beethoven
{

class remote_ptr
{
  public:
    remote_ptr() = default;

    remote_ptr(Addr fpga_addr, std::size_t len)
        : _fpgaAddr(fpga_addr), _len(len),
          _host(std::make_shared<std::vector<u8>>(len, 0))
    {}

    bool valid() const { return _host != nullptr; }
    Addr getFpgaAddr() const { return _fpgaAddr; }
    std::size_t size() const { return _len; }

    u8 *
    getHostAddr()
    {
        beethoven_assert(valid(), "getHostAddr() on invalid remote_ptr");
        return _host->data() + _hostOffset;
    }

    const u8 *
    getHostAddr() const
    {
        beethoven_assert(valid(), "getHostAddr() on invalid remote_ptr");
        return _host->data() + _hostOffset;
    }

    /** Typed host-side view. */
    template <typename T>
    T *
    as()
    {
        return reinterpret_cast<T *>(getHostAddr());
    }

    template <typename T>
    const T *
    as() const
    {
        return reinterpret_cast<const T *>(getHostAddr());
    }

    /** A view advanced by @p bytes (shares the host buffer). */
    remote_ptr
    offset(std::size_t bytes) const
    {
        beethoven_assert(bytes <= _len, "offset %zu beyond %zu-byte "
                         "allocation", bytes, _len);
        remote_ptr p;
        p._fpgaAddr = _fpgaAddr + bytes;
        p._len = _len - bytes;
        p._host = _host;
        p._hostOffset = _hostOffset + bytes;
        return p;
    }

  private:
    friend class fpga_handle_t;

    Addr _fpgaAddr = 0;
    std::size_t _len = 0;
    std::shared_ptr<std::vector<u8>> _host;
    std::size_t _hostOffset = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_RUNTIME_REMOTE_PTR_H
