/**
 * @file
 * fpga_handle_t and response_handle<T> — the Beethoven software
 * library (Section II-C3, Fig. 3c, Appendix B).
 *
 * "The library provides access to the allocator, DMA routines to FPGA
 * memory, and a command/response interface. ... Sending a command
 * returns a response handle, which the user may use to block while
 * waiting for the command to finish processing."
 */

#ifndef BEETHOVEN_RUNTIME_FPGA_HANDLE_H
#define BEETHOVEN_RUNTIME_FPGA_HANDLE_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runtime/remote_ptr.h"
#include "runtime/runtime_server.h"

namespace beethoven
{

/**
 * Handle to one in-flight command's eventual response.
 *
 * get() blocks (stepping the simulation and polling through the
 * runtime server); try_get() checks without blocking beyond one poll.
 */
template <typename T = u64>
class response_handle
{
  public:
    using Decoder = std::function<T(u64)>;

    response_handle() = default;

    response_handle(RuntimeServer *server, RuntimeServer::RespKey key,
                    Decoder decode)
        : _server(server), _key(key), _decode(std::move(decode))
    {}

    /** Block until the accelerator responds; returns the payload. */
    T
    get()
    {
        beethoven_assert(_server != nullptr,
                         "get() on empty response_handle");
        return _decode(_server->waitFor(_key));
    }

    /** One poll attempt; value if the response has arrived. */
    std::optional<T>
    try_get()
    {
        beethoven_assert(_server != nullptr,
                         "try_get() on empty response_handle");
        if (auto v = _server->tryCollect(_key))
            return _decode(*v);
        return std::nullopt;
    }

  private:
    RuntimeServer *_server = nullptr;
    RuntimeServer::RespKey _key{};
    Decoder _decode;
};

/**
 * The per-process handle to the Beethoven runtime (Fig. 3c's
 * `fpga_handle_t handle;`).
 */
class fpga_handle_t
{
  public:
    explicit fpga_handle_t(RuntimeServer &server) : _server(&server) {}

    /** Allocate accelerator-visible memory (Appendix B). */
    remote_ptr malloc(std::size_t n_bytes);

    /** Release an allocation. */
    void free(const remote_ptr &ptr);

    /** DMA the host-side buffer into accelerator memory. */
    void copy_to_fpga(const remote_ptr &ptr);

    /** DMA accelerator memory back into the host-side buffer. */
    void copy_from_fpga(remote_ptr &ptr);

    /**
     * Send a custom command by name — the dynamic equivalent of the
     * statically generated stub of Fig. 3b (bindgen emits the static
     * form; both share this packing path).
     *
     * @param system    System name from the AcceleratorConfig
     * @param command   CommandSpec name within that system
     * @param core_idx  target core
     * @param args      field values in CommandSpec order
     */
    response_handle<u64> invoke(const std::string &system,
                                const std::string &command, u32 core_idx,
                                const std::vector<u64> &args);

    RuntimeServer &server() { return *_server; }

  private:
    RuntimeServer *_server;
};

} // namespace beethoven

#endif // BEETHOVEN_RUNTIME_FPGA_HANDLE_H
