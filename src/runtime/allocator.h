/**
 * @file
 * Device memory allocator (Section II-C2, "Managing the FPGA Memory
 * Space").
 *
 * On discrete platforms "the Beethoven runtime provides an allocator
 * for this discrete address space and maintains all states in the
 * host's address space". The allocator is a first-fit free list with
 * coalescing on release; allocations are aligned so Readers/Writers
 * see bus-friendly addresses.
 */

#ifndef BEETHOVEN_RUNTIME_ALLOCATOR_H
#define BEETHOVEN_RUNTIME_ALLOCATOR_H

#include <cstddef>
#include <map>
#include <optional>

#include "base/types.h"

namespace beethoven
{

class DeviceAllocator
{
  public:
    /**
     * Manage [base, base+size). @p alignment must be a power of two;
     * every returned address is a multiple of it.
     */
    DeviceAllocator(Addr base, u64 size, u64 alignment = 64);

    /** Allocate @p size bytes; std::nullopt when space is exhausted. */
    std::optional<Addr> allocate(u64 size);

    /**
     * Release a block previously returned by allocate().
     * @throws ConfigError for addresses not currently allocated
     *         (double free / wild free).
     */
    void release(Addr addr);

    u64 bytesAllocated() const { return _bytesAllocated; }
    u64 bytesFree() const { return _size - _bytesAllocated; }
    std::size_t numAllocations() const { return _allocated.size(); }
    std::size_t numFreeBlocks() const { return _free.size(); }
    Addr base() const { return _base; }
    u64 size() const { return _size; }

    /** Size of the live allocation at @p addr (0 if none). */
    u64 allocationSize(Addr addr) const;

  private:
    Addr _base;
    u64 _size;
    u64 _alignment;
    u64 _bytesAllocated = 0;

    std::map<Addr, u64> _free;      ///< start -> length
    std::map<Addr, u64> _allocated; ///< start -> length
};

} // namespace beethoven

#endif // BEETHOVEN_RUNTIME_ALLOCATOR_H
