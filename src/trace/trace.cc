#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "base/log.h"

namespace beethoven
{

namespace
{

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

TraceSink::TraceSink()
{
    _processNames.push_back("sim");
}

void
TraceSink::beginProcess(const std::string &name)
{
    // pid 0 ("sim") is the implicit scope for sinks that never call
    // beginProcess; the first explicit process replaces it if unused.
    if (_events.empty() && _pid == 0 && _tracks.empty()) {
        _processNames[0] = name;
    } else {
        _processNames.push_back(name);
        _pid = static_cast<u32>(_processNames.size() - 1);
        _tracks.clear();
    }
}

bool
TraceSink::admit()
{
    if (_events.size() >= _maxEvents) {
        ++_dropped;
        return false;
    }
    return true;
}

u32
TraceSink::trackId(const std::string &name)
{
    auto it = _tracks.find(name);
    if (it != _tracks.end())
        return it->second;
    const u32 tid = _nextTid++;
    _tracks.emplace(name, tid);
    _trackNames.push_back({{_pid, tid}, name});
    return tid;
}

void
TraceSink::span(const char *category, const std::string &name,
                const std::string &track, Cycle begin, Cycle end,
                std::initializer_list<Arg> args)
{
    if (!admit())
        return;
    beethoven_assert(end >= begin,
                     "span %s on %s ends (%llu) before it begins (%llu)",
                     name.c_str(), track.c_str(),
                     static_cast<unsigned long long>(end),
                     static_cast<unsigned long long>(begin));
    Event e;
    e.kind = Kind::Span;
    e.pid = _pid;
    e.tid = trackId(track);
    e.start = begin;
    e.dur = end - begin;
    e.cat = category;
    e.name = name;
    for (const auto &[k, v] : args)
        e.args.emplace_back(k, v);
    _categories.insert(category);
    _events.push_back(std::move(e));
}

void
TraceSink::instant(const char *category, const std::string &name,
                   const std::string &track, Cycle at,
                   std::initializer_list<Arg> args)
{
    if (!admit())
        return;
    Event e;
    e.kind = Kind::Instant;
    e.pid = _pid;
    e.tid = trackId(track);
    e.start = at;
    e.cat = category;
    e.name = name;
    for (const auto &[k, v] : args)
        e.args.emplace_back(k, v);
    _categories.insert(category);
    _events.push_back(std::move(e));
}

void
TraceSink::counter(const char *category, const std::string &name,
                   Cycle at, double value)
{
    if (!admit())
        return;
    Event e;
    e.kind = Kind::Counter;
    e.pid = _pid;
    e.start = at;
    e.value = value;
    e.cat = category;
    e.name = name;
    _categories.insert(category);
    _events.push_back(std::move(e));
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (std::size_t pid = 0; pid < _processNames.size(); ++pid) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\""
           << jsonEscape(_processNames[pid]) << "\"}}";
    }
    for (const auto &[key, name] : _trackNames) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
           << key.first << ",\"tid\":" << key.second
           << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
    }
    for (const Event &e : _events) {
        sep();
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << jsonEscape(e.cat) << "\",\"pid\":" << e.pid;
        switch (e.kind) {
          case Kind::Span:
            os << ",\"tid\":" << e.tid << ",\"ph\":\"X\",\"ts\":"
               << e.start << ",\"dur\":" << e.dur;
            break;
          case Kind::Instant:
            os << ",\"tid\":" << e.tid
               << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.start;
            break;
          case Kind::Counter:
            os << ",\"tid\":0,\"ph\":\"C\",\"ts\":" << e.start;
            break;
        }
        if (e.kind == Kind::Counter) {
            os << ",\"args\":{\"value\":" << e.value << "}";
        } else if (!e.args.empty()) {
            os << ",\"args\":{";
            bool afirst = true;
            for (const auto &[k, v] : e.args) {
                if (!afirst)
                    os << ",";
                afirst = false;
                os << "\"" << jsonEscape(k) << "\":" << v;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceSink::writeSummary(std::ostream &os) const
{
    std::map<std::string, std::size_t> per_cat;
    std::map<std::string, std::size_t> per_track;
    Cycle lo = 0, hi = 0;
    bool any = false;
    for (const Event &e : _events) {
        ++per_cat[e.cat];
        if (e.kind != Kind::Counter)
            ++per_track[_trackNames.empty()
                            ? std::string("?")
                            : std::string()]; // replaced below
        if (!any) {
            lo = e.start;
            hi = e.start + e.dur;
            any = true;
        } else {
            lo = std::min(lo, e.start);
            hi = std::max(hi, e.start + e.dur);
        }
    }
    per_track.clear();
    for (const Event &e : _events) {
        if (e.kind == Kind::Counter)
            continue;
        for (const auto &[key, name] : _trackNames) {
            if (key.first == e.pid && key.second == e.tid) {
                ++per_track[name];
                break;
            }
        }
    }
    os << "trace: " << _events.size() << " events";
    if (_dropped)
        os << " (+" << _dropped << " dropped at cap)";
    if (any)
        os << ", cycles " << lo << " .. " << hi;
    os << "\n";
    for (const auto &[cat, n] : per_cat)
        os << "  category " << cat << ": " << n << " events\n";
    for (const auto &[track, n] : per_track)
        os << "  track " << track << ": " << n << " events\n";
}

void
TraceSink::writeProfile(std::ostream &os) const
{
    struct Agg
    {
        std::vector<Cycle> durs;
        u64 total = 0;
        Cycle maxDur = 0;
    };
    std::map<std::string, Agg> per_track;
    Cycle lo = 0, hi = 0;
    bool any = false;
    for (const Event &e : _events) {
        if (e.kind != Kind::Span)
            continue;
        std::string track = "?";
        for (const auto &[key, name] : _trackNames) {
            if (key.first == e.pid && key.second == e.tid) {
                track = name;
                break;
            }
        }
        Agg &a = per_track[track];
        a.durs.push_back(e.dur);
        a.total += e.dur;
        a.maxDur = std::max(a.maxDur, e.dur);
        if (!any) {
            lo = e.start;
            hi = e.start + e.dur;
            any = true;
        } else {
            lo = std::min(lo, e.start);
            hi = std::max(hi, e.start + e.dur);
        }
    }
    if (!any) {
        os << "(no spans recorded)\n";
        return;
    }
    const double run = static_cast<double>(hi - lo);
    os << "# cycle budget over cycles " << lo << " .. " << hi << "\n";
    os << std::left << std::setw(40) << "track" << std::right
       << std::setw(8) << "count" << std::setw(12) << "mean"
       << std::setw(12) << "p95" << std::setw(12) << "max"
       << std::setw(9) << "% run" << "\n";
    for (auto &[track, agg] : per_track) {
        std::sort(agg.durs.begin(), agg.durs.end());
        const std::size_t n = agg.durs.size();
        const Cycle p95 = agg.durs[std::min(n - 1, n * 95 / 100)];
        os << std::left << std::setw(40) << track << std::right
           << std::setw(8) << n << std::setw(12) << std::fixed
           << std::setprecision(1)
           << static_cast<double>(agg.total) / static_cast<double>(n)
           << std::setw(12) << p95 << std::setw(12) << agg.maxDur
           << std::setw(8) << std::setprecision(1)
           << (run > 0 ? 100.0 * static_cast<double>(agg.total) / run
                       : 0.0)
           << "%\n";
    }
}

TraceProbe::TraceProbe(Simulator &sim, std::string name, Cycle period)
    : Module(sim, std::move(name)), _period(std::max<Cycle>(1, period))
{
    declareRole("probe");
}

void
TraceProbe::addBusyTrack(std::string track,
                         std::function<std::size_t()> occupancy)
{
    beethoven_assert(occupancy != nullptr, "busy track %s: null hook",
                     track.c_str());
    _busy.push_back({std::move(track), std::move(occupancy), false, 0});
}

void
TraceProbe::addCounterSampler(CounterFn fn)
{
    beethoven_assert(fn != nullptr, "null counter sampler");
    _samplers.push_back(std::move(fn));
}

void
TraceProbe::tick()
{
    TraceSink *ts = sim().trace();
    if (ts == nullptr)
        return;
    const Cycle now = sim().cycle();
    for (BusyTrack &b : _busy) {
        const std::size_t occ = b.occupancy();
        if (occ > 0 && !b.busy) {
            b.busy = true;
            b.busySince = now;
        } else if (occ == 0 && b.busy) {
            b.busy = false;
            ts->span("noc", b.track + ".busy", b.track, b.busySince,
                     now);
        }
    }
    if (now % _period == 0) {
        for (const CounterFn &fn : _samplers)
            fn(*ts, now);
    }
}

} // namespace beethoven
