/**
 * @file
 * Event tracing for the simulation platform (Section II-D: the
 * simulation platform is where users "debug and predict performance"
 * of a composed SoC).
 *
 * A TraceSink records typed events — duration spans, instants, and
 * counter samples — keyed by (category, track, cycle) and serializes
 * them as Chrome trace_event JSON (loadable in chrome://tracing or
 * Perfetto), a compact text summary, and an aggregated cycle-budget
 * profile.
 *
 * Instrumented modules reach the sink through Simulator::trace(),
 * which is nullptr unless a bench or test attaches one; every call
 * site guards with `if (TraceSink *ts = sim().trace())` so the
 * un-traced hot path costs one pointer load and branch.
 *
 * Tracks model Perfetto threads: one lane per module (a reader, an
 * AXI ID, a NoC tree). Each attach-point can open a new process scope
 * (beginProcess) so multiple simulated SoCs in one bench render as
 * separate process groups instead of overlapping lanes.
 */

#ifndef BEETHOVEN_TRACE_TRACE_H
#define BEETHOVEN_TRACE_TRACE_H

#include <functional>
#include <initializer_list>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/types.h"
#include "sim/module.h"
#include "sim/simulator.h"

namespace beethoven
{

class TraceSink
{
  public:
    TraceSink();

    /**
     * Open a new process scope: subsequent events land under a fresh
     * Chrome-trace pid labeled @p name. Benches call this once per
     * simulated SoC so runs do not overlay each other's tracks.
     */
    void beginProcess(const std::string &name);

    /** A key/value annotation attached to a span or instant. */
    using Arg = std::pair<const char *, u64>;

    /**
     * Record a completed duration span on @p track.
     * Spans are recorded at completion because the emitting module
     * knows the begin cycle from its own transaction state.
     */
    void span(const char *category, const std::string &name,
              const std::string &track, Cycle begin, Cycle end,
              std::initializer_list<Arg> args = {});

    /** Record a zero-duration marker. */
    void instant(const char *category, const std::string &name,
                 const std::string &track, Cycle at,
                 std::initializer_list<Arg> args = {});

    /** Record one sample of a named counter series. */
    void counter(const char *category, const std::string &name,
                 Cycle at, double value);

    std::size_t numEvents() const { return _events.size(); }
    std::size_t droppedEvents() const { return _dropped; }

    /** Cap in-memory events; further records are counted but dropped. */
    void setMaxEvents(std::size_t n) { _maxEvents = n; }

    /** True if at least one event of @p category was recorded. */
    bool hasCategory(const std::string &category) const
    {
        return _categories.count(category) != 0;
    }

    /**
     * Serialize as Chrome trace_event JSON: an object with a
     * "traceEvents" array of "X" (span), "i" (instant), "C" (counter)
     * phases plus process_name / thread_name metadata. Cycles map 1:1
     * onto the viewer's microsecond timestamps.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Compact text summary: event counts per category and track. */
    void writeSummary(std::ostream &os) const;

    /**
     * Cycle-budget profile: one row per track with span count, mean,
     * p95 and max duration, and percent of the traced cycle range.
     */
    void writeProfile(std::ostream &os) const;

  private:
    enum class Kind { Span, Instant, Counter };

    struct Event
    {
        Kind kind;
        u32 pid = 0;
        u32 tid = 0; ///< unused for counters
        Cycle start = 0;
        Cycle dur = 0;     ///< spans only
        double value = 0;  ///< counters only
        const char *cat = "";
        std::string name;
        std::vector<std::pair<std::string, u64>> args;
    };

    bool admit();
    u32 trackId(const std::string &name);

    u32 _pid = 0;
    u32 _nextTid = 1;
    std::map<std::string, u32> _tracks; ///< current process only
    /** (pid, tid) -> track name, for thread_name metadata. */
    std::vector<std::pair<std::pair<u32, u32>, std::string>> _trackNames;
    std::vector<std::string> _processNames;
    std::set<std::string> _categories;
    std::vector<Event> _events;
    std::size_t _maxEvents = 4'000'000;
    std::size_t _dropped = 0;
};

/**
 * A Module that feeds a Simulator's attached TraceSink with periodic
 * counter samples and busy-interval spans from registered occupancy
 * hooks (type-erased, so templated NoC trees can register without the
 * probe knowing their flit types). Does nothing — beyond one branch
 * per cycle — when no sink is attached.
 */
class TraceProbe : public Module
{
  public:
    using CounterFn = std::function<void(TraceSink &, Cycle)>;

    TraceProbe(Simulator &sim, std::string name, Cycle period = 32);

    /**
     * Emit a span on @p track covering every interval during which
     * @p occupancy stays above zero (sampled every cycle while a sink
     * is attached).
     */
    void addBusyTrack(std::string track,
                      std::function<std::size_t()> occupancy);

    /** Invoke @p fn every sampling period to emit counter events. */
    void addCounterSampler(CounterFn fn);

    Cycle period() const { return _period; }

    void tick() override;

  private:
    struct BusyTrack
    {
        std::string track;
        std::function<std::size_t()> occupancy;
        bool busy = false;
        Cycle busySince = 0;
    };

    Cycle _period;
    std::vector<BusyTrack> _busy;
    std::vector<CounterFn> _samplers;
};

} // namespace beethoven

#endif // BEETHOVEN_TRACE_TRACE_H
