/**
 * @file
 * Offline analysis of stall-attribution stats.
 *
 * Consumes the JSON a bench writes with --stats-json= (one StatGroup
 * tree per recordStats() label) and extracts, per run, every module
 * that published a "stall" sub-group. Modules are ranked as cycle
 * sinks: busiest first, ties broken by total attributed stall, so the
 * module at the head of the list is the one limiting the run.
 *
 * Shared by the bottleneck_report CLI and BenchCli's --stall-report=
 * path; stall_test exercises it directly.
 */

#ifndef BEETHOVEN_TRACE_BOTTLENECK_H
#define BEETHOVEN_TRACE_BOTTLENECK_H

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.h"
#include "trace/stall.h"

namespace beethoven
{

struct JsonValue;

/** One module's per-class cycle counts, indexed by StallClass. */
struct StallBreakdown
{
    std::string module;
    std::array<u64, kNumStallClasses> counts{};

    u64 total() const;
    /** Every non-Busy, non-Idle cycle: the module wanted to work. */
    u64 attributedStall() const;
};

/** All instrumented modules of one recordStats() label. */
struct RunStallReport
{
    std::string label;
    u64 cycles = 0; ///< root "cycles" scalar (0 when absent)
    std::vector<StallBreakdown> modules; ///< ranked, top sink first
};

/**
 * Walk a parsed --stats-json document ({label: statsTree, ...}) and
 * build one ranked report per label. Labels without any stall groups
 * produce a report with an empty module list.
 */
std::vector<RunStallReport> analyzeStallStats(const JsonValue &root);

/** Human-readable ranked table, @p top_n modules per run (0 = all). */
void writeBottleneckTable(std::ostream &os,
                          const std::vector<RunStallReport> &runs,
                          std::size_t top_n);

/** Machine-readable report; class keys match stallClassName(). */
void writeBottleneckJson(std::ostream &os,
                         const std::vector<RunStallReport> &runs);

} // namespace beethoven

#endif // BEETHOVEN_TRACE_BOTTLENECK_H
