#include "trace/bottleneck.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "base/json.h"

namespace beethoven
{

u64
StallBreakdown::total() const
{
    u64 t = 0;
    for (u64 c : counts)
        t += c;
    return t;
}

u64
StallBreakdown::attributedStall() const
{
    u64 t = 0;
    for (std::size_t i = 0; i < kNumStallClasses; ++i) {
        const auto c = static_cast<StallClass>(i);
        if (c != StallClass::Busy && c != StallClass::Idle)
            t += counts[i];
    }
    return t;
}

namespace
{

/** Recursively collect groups that carry a "stall" sub-group. */
void
collectModules(const JsonValue &tree, const std::string &path,
               std::vector<StallBreakdown> &out)
{
    const JsonValue *groups = tree.find("groups");
    if (groups == nullptr || !groups->isObject())
        return;
    for (const auto &[name, child] : groups->object) {
        const std::string child_path =
            path.empty() ? name : path + "." + name;
        if (name == "stall") {
            const JsonValue *scalars = child.find("scalars");
            if (scalars == nullptr)
                continue;
            StallBreakdown b;
            b.module = path;
            for (std::size_t i = 0; i < kNumStallClasses; ++i) {
                const JsonValue *v = scalars->find(
                    stallClassName(static_cast<StallClass>(i)));
                if (v != nullptr && v->isNumber())
                    b.counts[i] = static_cast<u64>(v->number);
            }
            out.push_back(std::move(b));
            continue;
        }
        collectModules(child, child_path, out);
    }
}

void
rankModules(std::vector<StallBreakdown> &modules)
{
    std::stable_sort(
        modules.begin(), modules.end(),
        [](const StallBreakdown &a, const StallBreakdown &b) {
            const u64 ab = a.counts[size_t(StallClass::Busy)];
            const u64 bb = b.counts[size_t(StallClass::Busy)];
            if (ab != bb)
                return ab > bb;
            return a.attributedStall() > b.attributedStall();
        });
}

} // namespace

std::vector<RunStallReport>
analyzeStallStats(const JsonValue &root)
{
    std::vector<RunStallReport> runs;
    if (!root.isObject())
        return runs;
    for (const auto &[label, tree] : root.object) {
        RunStallReport run;
        run.label = label;
        const JsonValue *scalars = tree.find("scalars");
        if (scalars != nullptr) {
            const JsonValue *cycles = scalars->find("cycles");
            if (cycles != nullptr && cycles->isNumber())
                run.cycles = static_cast<u64>(cycles->number);
        }
        collectModules(tree, "", run.modules);
        rankModules(run.modules);
        runs.push_back(std::move(run));
    }
    return runs;
}

void
writeBottleneckTable(std::ostream &os,
                     const std::vector<RunStallReport> &runs,
                     std::size_t top_n)
{
    for (const RunStallReport &run : runs) {
        os << "=== " << run.label << " (" << run.cycles
           << " cycles) ===\n";
        if (run.modules.empty()) {
            os << "  (no stall-instrumented modules)\n";
            continue;
        }
        os << "  " << std::left << std::setw(40) << "module";
        for (std::size_t i = 0; i < kNumStallClasses; ++i) {
            os << std::right << std::setw(17)
               << stallClassName(static_cast<StallClass>(i));
        }
        os << std::right << std::setw(8) << "busy%" << "\n";
        std::size_t shown = 0;
        for (const StallBreakdown &m : run.modules) {
            if (top_n != 0 && shown++ >= top_n)
                break;
            os << "  " << std::left << std::setw(40) << m.module;
            for (u64 c : m.counts)
                os << std::right << std::setw(17) << c;
            const u64 total = m.total();
            const double pct =
                total == 0
                    ? 0.0
                    : 100.0 * double(m.counts[size_t(StallClass::Busy)]) /
                          double(total);
            os << std::right << std::setw(7) << std::fixed
               << std::setprecision(1) << pct << "%\n";
            os.unsetf(std::ios::fixed);
        }
        if (top_n != 0 && run.modules.size() > top_n) {
            os << "  ... " << (run.modules.size() - top_n)
               << " more modules\n";
        }
    }
}

void
writeBottleneckJson(std::ostream &os,
                    const std::vector<RunStallReport> &runs)
{
    auto quote = [&os](const std::string &s) {
        os << '"';
        for (char c : s) {
            if (c == '"' || c == '\\')
                os << '\\';
            os << c;
        }
        os << '"';
    };
    os << "{\"runs\":[";
    bool first_run = true;
    for (const RunStallReport &run : runs) {
        if (!first_run)
            os << ",";
        first_run = false;
        os << "{\"label\":";
        quote(run.label);
        os << ",\"cycles\":" << run.cycles << ",\"modules\":[";
        bool first_mod = true;
        for (const StallBreakdown &m : run.modules) {
            if (!first_mod)
                os << ",";
            first_mod = false;
            os << "{\"module\":";
            quote(m.module);
            os << ",\"classes\":{";
            const u64 total = m.total();
            for (std::size_t i = 0; i < kNumStallClasses; ++i) {
                if (i != 0)
                    os << ",";
                quote(stallClassName(static_cast<StallClass>(i)));
                os << ":" << m.counts[i];
            }
            os << "},\"share\":{";
            for (std::size_t i = 0; i < kNumStallClasses; ++i) {
                if (i != 0)
                    os << ",";
                quote(stallClassName(static_cast<StallClass>(i)));
                os << ":"
                   << (total == 0 ? 0.0
                                  : double(m.counts[i]) / double(total));
            }
            os << "}}";
        }
        os << "]}";
    }
    os << "]}\n";
}

} // namespace beethoven
