#include "trace/stall.h"

#include <ostream>

#include "base/stats.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace beethoven
{

const char *
stallClassName(StallClass c)
{
    switch (c) {
      case StallClass::Busy: return "busy";
      case StallClass::StallUpstream: return "stall_upstream";
      case StallClass::StallDownstream: return "stall_downstream";
      case StallClass::StallMem: return "stall_mem";
      case StallClass::StallCmd: return "stall_cmd";
      case StallClass::Idle: return "idle";
    }
    return "?";
}

StallAccount::StallAccount(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{
    sim.registerStallAccount(this);
}

void
StallAccount::account(StallClass c)
{
    const Cycle now = _sim.cycle();
    if (_nextUnaccounted == now + 1) {
        // Second classification of the same cycle: last call wins.
        if (c != _current) {
            --_counts[static_cast<std::size_t>(_current)];
            ++_counts[static_cast<std::size_t>(c)];
            _current = c;
        }
    } else {
        _counts[static_cast<std::size_t>(_gapClass)] +=
            now - _nextUnaccounted;
        _gapClass = StallClass::Idle;
        ++_counts[static_cast<std::size_t>(c)];
        _nextUnaccounted = now + 1;
        _current = c;
    }
    if (c == StallClass::Busy)
        _sim.noteProgress();
}

void
StallAccount::publish(StatGroup &module_group, Cycle now)
{
    if (now > _nextUnaccounted) {
        // Backfill up to now. While a module sleeps under the event
        // kernel _gapClass carries its parked classification; it stays
        // set because the module is still inside the same gap.
        _counts[static_cast<std::size_t>(_gapClass)] +=
            now - _nextUnaccounted;
        _nextUnaccounted = now;
    }
    StatGroup &g = module_group.group("stall");
    for (std::size_t i = 0; i < kNumStallClasses; ++i) {
        g.scalar(stallClassName(static_cast<StallClass>(i)))
            .set(static_cast<double>(_counts[i]));
    }
}

void
StallAccount::emitCounters(TraceSink &ts, Cycle now)
{
    for (std::size_t i = 0; i < kNumStallClasses; ++i) {
        if (_counts[i] == _emitted[i])
            continue; // skip flat tracks to keep the trace small
        ts.counter("stall",
                   _name + "." +
                       stallClassName(static_cast<StallClass>(i)),
                   now, static_cast<double>(_counts[i] - _emitted[i]));
        _emitted[i] = _counts[i];
    }
}

void
StallAccount::dumpState(std::ostream &os, Cycle now) const
{
    os << "  " << _name << ": last=" << stallClassName(_current);
    for (std::size_t i = 0; i < kNumStallClasses; ++i) {
        u64 n = _counts[i];
        if (static_cast<StallClass>(i) == _gapClass &&
            now > _nextUnaccounted) {
            n += now - _nextUnaccounted; // implied unaccounted tail
        }
        os << " " << stallClassName(static_cast<StallClass>(i)) << "="
           << n;
    }
    os << "\n";
}

} // namespace beethoven
