/**
 * @file
 * Per-module cycle accounting: where do the cycles go?
 *
 * Every instrumented module owns a StallAccount and classifies each
 * simulated cycle into a fixed taxonomy (see StallClass). Accounting is
 * cheap — one array increment per module per cycle — and lazy: cycles a
 * module never classifies are backfilled as Idle when the account is
 * published, so per-module class counts always sum to the total
 * simulated cycle count (the conservation invariant the stall tests
 * assert).
 *
 * Accounts register with the Simulator, which aggregates them into the
 * stats tree on publishStallStats(), emits them as Chrome-trace counter
 * tracks while tracing, and uses Busy classifications as the forward-
 * progress signal for the hang watchdog.
 */

#ifndef BEETHOVEN_TRACE_STALL_H
#define BEETHOVEN_TRACE_STALL_H

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "base/types.h"

namespace beethoven
{

class Simulator;
class StatGroup;
class TraceSink;

/**
 * The stall taxonomy (DESIGN.md §4d). Exactly one class per module per
 * cycle; when a module calls account() more than once in a cycle the
 * last classification wins.
 */
enum class StallClass : unsigned char
{
    Busy = 0,        ///< moved data / issued a command this cycle
    StallUpstream,   ///< valid-wait: input not presenting data
    StallDownstream, ///< ready-wait: output backpressured
    StallMem,        ///< waiting on outstanding memory transactions
    StallCmd,        ///< no command to work on
    Idle,            ///< nothing to do and nothing in flight
};

constexpr std::size_t kNumStallClasses = 6;

/** Stable snake_case name used in stats, reports, and trace tracks. */
const char *stallClassName(StallClass c);

class StallAccount
{
  public:
    /** Registers with @p sim; must outlive the simulator's use of it. */
    StallAccount(Simulator &sim, std::string name);

    StallAccount(const StallAccount &) = delete;
    StallAccount &operator=(const StallAccount &) = delete;

    /**
     * Classify the current cycle. Unclassified cycles since the last
     * call are backfilled as Idle; calling again in the same cycle
     * re-classifies it. A Busy classification notifies the simulator's
     * watchdog of forward progress.
     */
    void account(StallClass c);

    /**
     * Fold the counts into @p module_group under a "stall" child group,
     * backfilling Idle up to @p now first. Idempotent (scalars are
     * overwritten), so benches may publish after every run.
     */
    void publish(StatGroup &module_group, Cycle now);

    /** Emit per-class deltas since the last emission as counter tracks. */
    void emitCounters(TraceSink &ts, Cycle now);

    /** One-line state dump for hang diagnostics (no mutation). */
    void dumpState(std::ostream &os, Cycle now) const;

    /**
     * Class used to backfill unclassified gaps (default Idle). The
     * event kernel sets this when a module goes quiescent: the slept
     * cycles are attributed to the class the module was accounting
     * when it slept — exactly what the tick kernel, ticking the module
     * through the same uneventful span, would have accounted — so both
     * kernels publish identical taxonomies. account() resets it to
     * Idle after consuming a gap, matching the lazy-Idle default for
     * modules that classify sparsely while awake.
     */
    void setGapClass(StallClass c) { _gapClass = c; }
    StallClass gapClass() const { return _gapClass; }

    const std::string &name() const { return _name; }

    /** Raw count (excludes the not-yet-backfilled Idle tail). */
    u64 count(StallClass c) const
    {
        return _counts[static_cast<std::size_t>(c)];
    }

  private:
    Simulator &_sim;
    std::string _name;
    std::array<u64, kNumStallClasses> _counts{};
    std::array<u64, kNumStallClasses> _emitted{};
    Cycle _nextUnaccounted = 0; ///< first cycle not yet classified
    StallClass _current = StallClass::Idle;
    StallClass _gapClass = StallClass::Idle;
};

} // namespace beethoven

#endif // BEETHOVEN_TRACE_STALL_H
