#include "axi/axi_types.h"

#include <atomic>

namespace beethoven
{

u64
nextGlobalTag()
{
    static std::atomic<u64> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace beethoven
