/**
 * @file
 * AXI4-style transaction types used between Beethoven's memory fabric
 * and the external memory controller.
 *
 * The model is beat-accurate: read data and write data move through the
 * fabric one bus-width beat per cycle, and the controller enforces the
 * AXI ordering rule that matters for the paper's evaluation — beats of
 * one burst are returned in order, and *transactions sharing an AXI ID
 * are returned in request order* while transactions on different IDs
 * may complete out of order (Section III-A, Figs. 4 and 5).
 */

#ifndef BEETHOVEN_AXI_AXI_TYPES_H
#define BEETHOVEN_AXI_AXI_TYPES_H

#include <vector>

#include "base/types.h"

namespace beethoven
{

/** Static parameters of one AXI memory port. */
struct AxiConfig
{
    unsigned addrBits = 34;      ///< physical address width
    unsigned dataBytes = 64;     ///< bus width per beat (bytes)
    unsigned idBits = 8;         ///< transaction ID width
    unsigned maxBurstBeats = 64; ///< maximum beats per burst

    u64 numIds() const { return u64(1) << idBits; }
};

/** AR-channel flit: a read-burst request. */
struct ReadRequest
{
    u32 id = 0;     ///< AXI ID (selects the ordering stream)
    Addr addr = 0;  ///< byte address, beat-aligned
    u32 beats = 1;  ///< burst length in bus beats
    u64 tag = 0;    ///< framework-internal transaction tag (not AXI)
};

/** R-channel flit: one beat of read data. */
struct ReadBeat
{
    u32 id = 0;
    std::vector<u8> data; ///< dataBytes bytes
    bool last = false;    ///< final beat of the burst
    u64 tag = 0;
};

/** AW-channel flit: a write-burst request. */
struct WriteRequest
{
    u32 id = 0;
    Addr addr = 0;
    u32 beats = 1;
    u64 tag = 0;
};

/** W-channel flit: one beat of write data. */
struct WriteBeat
{
    std::vector<u8> data;   ///< dataBytes bytes
    std::vector<bool> strb; ///< per-byte write enable (empty = all on)
    bool last = false;
};

/** B-channel flit: write-burst completion. */
struct WriteResponse
{
    u32 id = 0;
    u64 tag = 0;
};

/**
 * Combined AW+W flit for fabric transport.
 *
 * AXI4 removed WID, so write-data bursts from different masters must
 * not interleave on a shared W channel; carrying the header with the
 * first beat lets fabric arbiters lock a burst end-to-end.
 */
struct WriteFlit
{
    bool hasHeader = false;
    WriteRequest header; ///< valid when hasHeader
    WriteBeat beat;
};

/**
 * Fabric arbiter lock policy keeping write bursts contiguous: a header
 * flit locks the arbiter to its input for the burst's remaining beats.
 */
struct WriteFlitLock
{
    unsigned
    operator()(const WriteFlit &f) const
    {
        return f.hasHeader ? f.header.beats - 1 : 0;
    }
};

/**
 * Process-wide unique transaction tag source. Tags are a framework
 * modeling convenience (they let monitors and timelines associate
 * request and response beats); they are not part of the AXI protocol
 * and carry no hardware cost.
 */
u64 nextGlobalTag();

} // namespace beethoven

#endif // BEETHOVEN_AXI_AXI_TYPES_H
