/**
 * @file
 * AXI transaction timeline recorder — regenerates the Fig. 5 style
 * annotated timing diagrams and feeds the protocol-legality checker
 * used in tests.
 */

#ifndef BEETHOVEN_AXI_TIMELINE_H
#define BEETHOVEN_AXI_TIMELINE_H

#include <ostream>
#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven
{

/** Which AXI channel an event occurred on. */
enum class AxiChannel { AR, R, AW, W, B };

const char *axiChannelName(AxiChannel c);

/** One observed channel beat. */
struct AxiEvent
{
    Cycle cycle = 0;
    AxiChannel channel = AxiChannel::AR;
    u32 id = 0;
    u64 tag = 0;
    Addr addr = 0;     ///< meaningful for AR/AW
    u32 beats = 0;     ///< burst length, meaningful for AR/AW
    bool last = false; ///< meaningful for R/W
};

/**
 * Records AXI channel activity at a memory port and renders it.
 *
 * The DRAM controller calls record() as it accepts requests and moves
 * data beats; benches render the trace as an ASCII timing diagram and
 * tests replay it through AxiProtocolChecker.
 */
class AxiTimeline
{
  public:
    void setEnabled(bool enabled) { _enabled = enabled; }
    bool enabled() const { return _enabled; }

    void
    record(const AxiEvent &e)
    {
        if (_enabled)
            _events.push_back(e);
    }

    const std::vector<AxiEvent> &events() const { return _events; }
    void clear() { _events.clear(); }

    /**
     * Render one row per transaction: request issue point, then data
     * beat activity, then completion, against a cycle axis.
     *
     * @param os        output stream
     * @param width     character width of the time axis
     */
    void render(std::ostream &os, unsigned width = 100) const;

  private:
    bool _enabled = false;
    std::vector<AxiEvent> _events;
};

/**
 * Validates an event stream against the AXI rules the framework relies
 * on. Returns an empty string when legal, else a description of the
 * first violation. Checked rules:
 *  - every R/W beat belongs to an outstanding transaction;
 *  - bursts deliver exactly the requested number of beats, with `last`
 *    on the final beat only;
 *  - transactions on the same ID complete in request order;
 *  - B responses only after the corresponding last W beat.
 */
std::string checkAxiProtocol(const std::vector<AxiEvent> &events);

} // namespace beethoven

#endif // BEETHOVEN_AXI_TIMELINE_H
