/**
 * @file
 * AXI transaction timeline recorder — regenerates the Fig. 5 style
 * annotated timing diagrams and feeds the protocol-legality checker
 * used in tests.
 */

#ifndef BEETHOVEN_AXI_TIMELINE_H
#define BEETHOVEN_AXI_TIMELINE_H

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven
{

/** Which AXI channel an event occurred on. */
enum class AxiChannel { AR, R, AW, W, B };

const char *axiChannelName(AxiChannel c);

/** One observed channel beat. */
struct AxiEvent
{
    Cycle cycle = 0;
    AxiChannel channel = AxiChannel::AR;
    u32 id = 0;
    u64 tag = 0;
    Addr addr = 0;     ///< meaningful for AR/AW
    u32 beats = 0;     ///< burst length, meaningful for AR/AW
    bool last = false; ///< meaningful for R/W
};

/**
 * Records AXI channel activity at a memory port and renders it.
 *
 * The DRAM controller calls record() as it accepts requests and moves
 * data beats; benches render the trace as an ASCII timing diagram and
 * tests replay it through AxiProtocolChecker.
 */
class AxiTimeline
{
  public:
    using Observer = std::function<void(const AxiEvent &)>;

    void setEnabled(bool enabled) { _enabled = enabled; }
    bool enabled() const { return _enabled; }

    void
    record(const AxiEvent &e)
    {
        // Observers are live even when event storage is off: the always-
        // on protocol invariant checkers subscribe here without paying
        // the memory cost of a full recorded timeline.
        for (const Observer &obs : _observers) {
            if (obs)
                obs(e);
        }
        if (_enabled)
            _events.push_back(e);
    }

    /**
     * Subscribe to every recorded event (storage-independent).
     * @return a token for removeObserver.
     */
    std::size_t
    addObserver(Observer obs)
    {
        _observers.push_back(std::move(obs));
        return _observers.size() - 1;
    }

    /** Detach the observer registered under @p token. */
    void
    removeObserver(std::size_t token)
    {
        if (token < _observers.size())
            _observers[token] = nullptr;
    }

    const std::vector<AxiEvent> &events() const { return _events; }
    void clear() { _events.clear(); }

    /**
     * Render one row per transaction: request issue point, then data
     * beat activity, then completion, against a cycle axis.
     *
     * @param os        output stream
     * @param width     character width of the time axis
     */
    void render(std::ostream &os, unsigned width = 100) const;

  private:
    bool _enabled = false;
    std::vector<AxiEvent> _events;
    std::vector<Observer> _observers;
};

/**
 * Validates an event stream against the AXI rules the framework relies
 * on. Returns an empty string when legal, else a description of the
 * first violation. Checked rules:
 *  - every R/W beat belongs to an outstanding transaction;
 *  - bursts deliver exactly the requested number of beats, with `last`
 *    on the final beat only;
 *  - transactions on the same ID complete in request order;
 *  - B responses only after the corresponding last W beat.
 */
std::string checkAxiProtocol(const std::vector<AxiEvent> &events);

} // namespace beethoven

#endif // BEETHOVEN_AXI_TIMELINE_H
