#include "axi/timeline.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "base/log.h"

namespace beethoven
{

const char *
axiChannelName(AxiChannel c)
{
    switch (c) {
      case AxiChannel::AR: return "AR";
      case AxiChannel::R:  return "R";
      case AxiChannel::AW: return "AW";
      case AxiChannel::W:  return "W";
      case AxiChannel::B:  return "B";
    }
    return "?";
}

namespace
{

/** Per-transaction summary assembled from the raw event stream. */
struct TxnRow
{
    bool isRead = false;
    u32 id = 0;
    u64 tag = 0;
    Cycle reqCycle = 0;
    std::vector<Cycle> beatCycles;
    Cycle doneCycle = 0;
};

std::vector<TxnRow>
assembleRows(const std::vector<AxiEvent> &events)
{
    std::vector<TxnRow> rows;
    std::map<u64, std::size_t> read_rows, write_rows;
    for (const auto &e : events) {
        switch (e.channel) {
          case AxiChannel::AR: {
            TxnRow row;
            row.isRead = true;
            row.id = e.id;
            row.tag = e.tag;
            row.reqCycle = e.cycle;
            read_rows[e.tag] = rows.size();
            rows.push_back(row);
            break;
          }
          case AxiChannel::AW: {
            TxnRow row;
            row.isRead = false;
            row.id = e.id;
            row.tag = e.tag;
            row.reqCycle = e.cycle;
            write_rows[e.tag] = rows.size();
            rows.push_back(row);
            break;
          }
          case AxiChannel::R: {
            auto it = read_rows.find(e.tag);
            if (it == read_rows.end())
                break;
            rows[it->second].beatCycles.push_back(e.cycle);
            if (e.last)
                rows[it->second].doneCycle = e.cycle;
            break;
          }
          case AxiChannel::W: {
            auto it = write_rows.find(e.tag);
            if (it == write_rows.end())
                break;
            rows[it->second].beatCycles.push_back(e.cycle);
            break;
          }
          case AxiChannel::B: {
            auto it = write_rows.find(e.tag);
            if (it == write_rows.end())
                break;
            rows[it->second].doneCycle = e.cycle;
            break;
          }
        }
    }
    return rows;
}

} // namespace

void
AxiTimeline::render(std::ostream &os, unsigned width) const
{
    if (_events.empty()) {
        os << "(no AXI activity recorded)\n";
        return;
    }
    Cycle t0 = _events.front().cycle;
    Cycle t1 = t0;
    for (const auto &e : _events)
        t1 = std::max(t1, e.cycle);
    const double span = static_cast<double>(t1 - t0 + 1);
    auto col = [&](Cycle c) -> unsigned {
        return static_cast<unsigned>(
            static_cast<double>(c - t0) / span * (width - 1));
    };

    os << "cycles " << t0 << " .. " << t1
       << "  ('A' request accepted, '=' data beat, '#' completion)\n";
    for (const auto &row : assembleRows(_events)) {
        std::string line(width, ' ');
        line[col(row.reqCycle)] = 'A';
        for (Cycle c : row.beatCycles) {
            char &ch = line[col(c)];
            if (ch == ' ')
                ch = '=';
        }
        if (row.doneCycle >= row.reqCycle)
            line[col(row.doneCycle)] = '#';
        std::ostringstream label;
        label << (row.isRead ? "RD" : "WR") << " id=" << row.id
              << " tag=" << row.tag;
        os << line << " | " << label.str() << "\n";
    }
}

std::string
checkAxiProtocol(const std::vector<AxiEvent> &events)
{
    struct Outstanding
    {
        u64 tag;
        u32 beatsExpected;
        u32 beatsSeen = 0;
    };
    // Per-ID FIFOs of outstanding transactions.
    std::map<u32, std::deque<Outstanding>> reads, writes;
    // Write bursts whose data is complete but B is pending.
    std::map<u64, bool> writeDataDone;
    std::ostringstream err;

    for (const auto &e : events) {
        switch (e.channel) {
          case AxiChannel::AR:
            reads[e.id].push_back({e.tag, e.beats});
            break;
          case AxiChannel::AW:
            writes[e.id].push_back({e.tag, e.beats});
            writeDataDone[e.tag] = false;
            break;
          case AxiChannel::R: {
            auto &q = reads[e.id];
            if (q.empty()) {
                err << "R beat for id " << e.id
                    << " with no outstanding read";
                return err.str();
            }
            // Same-ID ordering: data must belong to the oldest txn.
            Outstanding &head = q.front();
            if (head.tag != e.tag) {
                err << "R beat tag " << e.tag << " on id " << e.id
                    << " violates same-ID ordering (expected tag "
                    << head.tag << ")";
                return err.str();
            }
            ++head.beatsSeen;
            const bool should_be_last = head.beatsSeen == head.beatsExpected;
            if (e.last != should_be_last) {
                err << "R last flag mismatch on tag " << e.tag << " (beat "
                    << head.beatsSeen << "/" << head.beatsExpected << ")";
                return err.str();
            }
            if (e.last)
                q.pop_front();
            break;
          }
          case AxiChannel::W: {
            // Find the oldest incomplete write burst with this tag.
            bool found = false;
            for (auto &[id, q] : writes) {
                for (auto &o : q) {
                    if (o.tag == e.tag && o.beatsSeen < o.beatsExpected) {
                        ++o.beatsSeen;
                        const bool last = o.beatsSeen == o.beatsExpected;
                        if (e.last != last) {
                            err << "W last flag mismatch on tag " << e.tag;
                            return err.str();
                        }
                        if (last)
                            writeDataDone[e.tag] = true;
                        found = true;
                        break;
                    }
                }
                if (found)
                    break;
            }
            if (!found) {
                err << "W beat with tag " << e.tag
                    << " matches no outstanding write";
                return err.str();
            }
            break;
          }
          case AxiChannel::B: {
            auto &q = writes[e.id];
            if (q.empty()) {
                err << "B response for id " << e.id
                    << " with no outstanding write";
                return err.str();
            }
            if (q.front().tag != e.tag) {
                err << "B response tag " << e.tag << " on id " << e.id
                    << " violates same-ID ordering";
                return err.str();
            }
            auto it = writeDataDone.find(e.tag);
            if (it == writeDataDone.end() || !it->second) {
                err << "B response before final W beat on tag " << e.tag;
                return err.str();
            }
            q.pop_front();
            writeDataDone.erase(it);
            break;
          }
        }
    }
    return "";
}

} // namespace beethoven
