#include "verify/fuzz.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "accel/machsuite/gemm.h"
#include "base/json.h"
#include "base/log.h"
#include "baselines/machsuite_golden.h"
#include "power/power.h"
#include "runtime/fpga_handle.h"
#include "sim/graph_record.h"
#include "verify/golden.h"
#include "verify/invariants.h"

namespace beethoven::verify
{

const char *
failKindName(FailKind k)
{
    switch (k) {
      case FailKind::None:       return "none";
      case FailKind::BuildError: return "build-error";
      case FailKind::Violation:  return "violation";
      case FailKind::Hang:       return "hang";
      case FailKind::Mismatch:   return "mismatch";
      case FailKind::Divergence: return "divergence";
    }
    return "?";
}

// --- Execution --------------------------------------------------------

namespace
{

struct PendingResponse
{
    response_handle<u64> handle;
    std::string label;
};

/** Allocate, seed, golden-register and dispatch one traffic op. */
void
launchOp(const FuzzCase &c, std::size_t op_idx, fpga_handle_t &handle,
         GoldenMemory &golden, std::vector<remote_ptr> &keep_alive,
         std::vector<PendingResponse> &pending)
{
    const FuzzOp &op = c.ops[op_idx];
    if (op.system >= c.systems.size())
        fatal("fuzz op %zu targets system %u of %zu", op_idx, op.system,
              c.systems.size());
    const FuzzSystem &fs = c.systems[op.system];
    const std::string sys_name = fuzzSystemName(op.system);
    const std::string label = "op" + std::to_string(op_idx) + "." +
                              fuzzKindName(fs.kind);
    Rng rng(op.dataSeed);

    switch (fs.kind) {
      case FuzzKind::VecAdd: {
        const unsigned n = op.size;
        remote_ptr buf = handle.malloc(std::size_t(n) * 4);
        const u32 addend = static_cast<u32>(rng.next());
        u32 *vals = buf.as<u32>();
        std::vector<u8> expect(std::size_t(n) * 4);
        for (unsigned i = 0; i < n; ++i) {
            vals[i] = static_cast<u32>(rng.next());
            const u32 e = vals[i] + addend;
            std::memcpy(&expect[std::size_t(i) * 4], &e, 4);
        }
        handle.copy_to_fpga(buf);
        golden.expect(buf, std::move(expect), label);
        keep_alive.push_back(buf);
        pending.push_back(
            {handle.invoke(sys_name, "my_accel", op.core,
                           {addend, buf.getFpgaAddr(), n}),
             label});
        break;
      }
      case FuzzKind::Memcpy:
      case FuzzKind::SpadLoop: {
        const u64 len = fs.kind == FuzzKind::Memcpy
                            ? u64(op.size) * fs.chan.dataBytes
                            : u64(op.size) * 4;
        remote_ptr src = handle.malloc(len);
        remote_ptr dst = handle.malloc(len);
        u8 *s = src.getHostAddr();
        std::vector<u8> expect(len);
        for (u64 i = 0; i < len; ++i) {
            s[i] = static_cast<u8>(rng.next());
            expect[i] = s[i];
        }
        handle.copy_to_fpga(src);
        handle.copy_to_fpga(dst); // defined (zero) initial contents
        golden.expect(src, expect, label + ".src"); // source untouched
        golden.expect(dst, std::move(expect), label + ".dst");
        keep_alive.push_back(src);
        keep_alive.push_back(dst);
        if (fs.kind == FuzzKind::Memcpy) {
            pending.push_back(
                {handle.invoke(sys_name, "do_memcpy", op.core,
                               {src.getFpgaAddr(), dst.getFpgaAddr(),
                                len}),
                 label});
        } else {
            pending.push_back(
                {handle.invoke(sys_name, "spad_copy", op.core,
                               {src.getFpgaAddr(), dst.getFpgaAddr(),
                                op.size}),
                 label});
        }
        break;
      }
      case FuzzKind::Gemm: {
        const unsigned n = op.size * machsuite::GemmCore::lanes;
        std::vector<i32> a(std::size_t(n) * n), bt(std::size_t(n) * n);
        for (auto &v : a)
            v = static_cast<i32>(rng.nextRange(0, 2000)) - 1000;
        for (auto &v : bt)
            v = static_cast<i32>(rng.nextRange(0, 2000)) - 1000;
        const std::size_t bytes = std::size_t(n) * n * sizeof(i32);
        remote_ptr a_mem = handle.malloc(bytes);
        remote_ptr bt_mem = handle.malloc(bytes);
        remote_ptr c_mem = handle.malloc(bytes);
        std::memcpy(a_mem.getHostAddr(), a.data(), bytes);
        std::memcpy(bt_mem.getHostAddr(), bt.data(), bytes);
        handle.copy_to_fpga(a_mem);
        handle.copy_to_fpga(bt_mem);
        handle.copy_to_fpga(c_mem);
        const std::vector<i32> c_golden = machsuite::goldenGemm(a, bt, n);
        std::vector<u8> expect(bytes);
        std::memcpy(expect.data(), c_golden.data(), bytes);
        golden.expect(c_mem, std::move(expect), label + ".c");
        keep_alive.push_back(a_mem);
        keep_alive.push_back(bt_mem);
        keep_alive.push_back(c_mem);
        pending.push_back(
            {handle.invoke(sys_name, "gemm", op.core,
                           {a_mem.getFpgaAddr(), bt_mem.getFpgaAddr(),
                            c_mem.getFpgaAddr(), n}),
             label});
        break;
      }
    }
}

/** One elaborate-run-check pass under a single kernel. */
FuzzResult
runFuzzCaseOnce(const FuzzCase &c, const FuzzOptions &opt,
                SimKernel kernel)
{
    FuzzResult res;
    std::optional<FuzzPlatform> platform;
    std::optional<AcceleratorSoc> soc;
    try {
        // Armed before elaboration so the suppressed wake lands inside
        // the SoC's own wiring; auto-disarms when it fires, and is
        // explicitly cleared afterwards in case the count overshot.
        if (c.plantWakeViolation != 0)
            plantMissingPushWake(c.plantWakeViolation);
        platform.emplace(c.platform);
        soc.emplace(buildAcceleratorConfig(c), *platform);
        plantMissingPushWake(0);
    } catch (const ConfigError &e) {
        plantMissingPushWake(0);
        res.kind = FailKind::BuildError;
        res.message = e.what();
        return res;
    }
    soc->sim().setKernel(kernel);
    if (kernel == SimKernel::Parallel)
        soc->sim().setParallelThreads(opt.parallelThreads);
    if (c.plantLostWake != 0)
        soc->sim().plantLostWakes(c.plantLostWake);

    RuntimeServer server(*soc);
    fpga_handle_t handle(server);
    SocInvariants inv(*soc);
    // Energy conservation rides along with the protocol invariants:
    // the periodic check re-sums the ledger's component energies
    // against the SoC total every kInvariantPeriod cycles.
    EnergyConservationInvariant energy_inv(soc->power());
    soc->sim().registerInvariant(&energy_inv);
    if (c.plantPowerViolation)
        soc->power().plantEnergyLeak(0.5);
    soc->sim().setWatchdog(opt.watchdogCycles);

    auto finalize = [&](FuzzResult r) {
        r.cycles = soc->sim().cycle();
        r.axiEvents = inv.axiEventsSeen();
        r.responses = inv.responsesSeen();
        // The digest the differential mode compares: the entire stats
        // tree (stall accounts published) plus the final cycle.
        soc->sim().publishStallStats();
        std::ostringstream digest;
        soc->sim().stats().dumpJson(digest);
        digest << "@" << static_cast<unsigned long long>(r.cycles);
        r.statsDigest = digest.str();
        return r;
    };

    GoldenMemory golden;
    std::vector<remote_ptr> keep_alive;
    std::vector<PendingResponse> pending;
    try {
        if (c.plantViolation) {
            AxiEvent ev;
            ev.cycle = soc->sim().cycle();
            ev.channel = AxiChannel::R;
            ev.id = 0;
            ev.tag = 0xDEADBEEFULL;
            ev.last = true;
            inv.injectAxiEvent(ev);
        }
        for (std::size_t i = 0; i < c.ops.size(); ++i)
            launchOp(c, i, handle, golden, keep_alive, pending);

        while (!pending.empty()) {
            if (soc->sim().cycle() > opt.maxCycles) {
                res.kind = FailKind::Hang;
                std::ostringstream os;
                os << "cycle budget "
                   << static_cast<unsigned long long>(opt.maxCycles)
                   << " exceeded with " << pending.size()
                   << " responses outstanding";
                res.message = os.str();
                return finalize(res);
            }
            bool collected = false;
            for (auto it = pending.begin(); it != pending.end();) {
                if (auto v = it->handle.try_get()) {
                    if (*v != 0) {
                        res.kind = FailKind::Mismatch;
                        std::ostringstream os;
                        os << it->label << ": response payload " << *v
                           << ", golden model says 0";
                        res.message = os.str();
                        return finalize(res);
                    }
                    it = pending.erase(it);
                    collected = true;
                } else {
                    ++it;
                }
            }
            if (!collected)
                soc->sim().run(64);
        }

        inv.checkFinal();
        const std::string d = golden.diff(handle);
        if (!d.empty()) {
            res.kind = FailKind::Mismatch;
            res.message = d;
        }
    } catch (const ConfigError &e) {
        res.message = e.what();
        const std::string &msg = res.message;
        if (msg.find("invariant violation") != std::string::npos)
            res.kind = FailKind::Violation;
        else if (msg.find("hang") != std::string::npos ||
                 msg.find("timed out") != std::string::npos)
            res.kind = FailKind::Hang;
        else
            res.kind = FailKind::Violation;
    }
    return finalize(res);
}

/** Index of the first byte where @p a and @p b differ. */
std::size_t
firstDiff(const std::string &a, const std::string &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
}

} // namespace

FuzzResult
runFuzzCase(const FuzzCase &c, const FuzzOptions &opt)
{
    if (!opt.differential)
        return runFuzzCaseOnce(c, opt, opt.kernel);

    // Differential mode: the tick kernel is the reference semantics;
    // the event and parallel kernels are the optimizations under
    // test. Any observable difference against the reference — outcome
    // kind, final cycle, or a single byte of the stats digest — is a
    // Divergence.
    const FuzzResult tick = runFuzzCaseOnce(c, opt, SimKernel::Tick);
    struct Candidate
    {
        const char *name;
        SimKernel kernel;
    };
    static const Candidate candidates[] = {
        {"event", SimKernel::Event},
        {"parallel", SimKernel::Parallel},
    };
    for (const Candidate &cand : candidates) {
        const FuzzResult got = runFuzzCaseOnce(c, opt, cand.kernel);
        if (tick.kind == got.kind && tick.cycles == got.cycles &&
            tick.statsDigest == got.statsDigest)
            continue;

        FuzzResult res = got;
        res.kind = FailKind::Divergence;
        std::ostringstream os;
        os << "tick/" << cand.name << " kernels diverged:";
        if (tick.kind != got.kind) {
            os << " kind " << failKindName(tick.kind) << " vs "
               << failKindName(got.kind);
        }
        if (tick.cycles != got.cycles) {
            os << " cycles "
               << static_cast<unsigned long long>(tick.cycles) << " vs "
               << static_cast<unsigned long long>(got.cycles);
        }
        if (tick.statsDigest != got.statsDigest) {
            const std::size_t at =
                firstDiff(tick.statsDigest, got.statsDigest);
            os << " stats digest first differs at byte " << at;
            const std::string ctx =
                tick.statsDigest.substr(at > 40 ? at - 40 : 0, 80);
            os << " (tick context: ..." << ctx << "...)";
        }
        if (!tick.message.empty() || !got.message.empty()) {
            os << "; tick: "
               << (tick.message.empty() ? "ok" : tick.message)
               << "; " << cand.name << ": "
               << (got.message.empty() ? "ok" : got.message);
        }
        res.message = os.str();
        return res;
    }
    return tick;
}

// --- Shrinking --------------------------------------------------------

FuzzCase
shrink(FuzzCase c, const FuzzOptions &opt, FailKind kind,
       unsigned max_attempts, unsigned *attempts_out)
{
    unsigned attempts = 0;
    bool changed = true;

    // Accept @p cand iff it actually differs and reproduces the same
    // failure kind. The no-op guard matters: passes that normalize
    // toward defaults would otherwise "accept" an unchanged case every
    // round and spin until the attempt budget runs out.
    auto try_accept = [&](const FuzzCase &cand) {
        if (fuzzCaseToJson(cand) == fuzzCaseToJson(c))
            return false;
        if (attempts >= max_attempts)
            return false;
        ++attempts;
        if (runFuzzCase(cand, opt).kind != kind)
            return false;
        c = cand;
        changed = true;
        return true;
    };

    while (changed && attempts < max_attempts) {
        changed = false;

        // 1. Truncate traffic: halves first, then single ops.
        while (!c.ops.empty()) {
            FuzzCase cand = c;
            cand.ops.resize(c.ops.size() / 2);
            if (!try_accept(cand))
                break;
        }
        for (std::size_t i = 0; i < c.ops.size();) {
            FuzzCase cand = c;
            cand.ops.erase(cand.ops.begin() +
                           static_cast<std::ptrdiff_t>(i));
            if (!try_accept(cand))
                ++i;
        }

        // 2. Halve per-op workload sizes.
        for (std::size_t i = 0; i < c.ops.size(); ++i) {
            while (c.ops[i].size > 1) {
                FuzzCase cand = c;
                cand.ops[i].size = c.ops[i].size / 2;
                if (!try_accept(cand))
                    break;
            }
        }

        // 3. Drop whole systems (rewiring op indices).
        for (std::size_t s = 0; c.systems.size() > 1 &&
                                s < c.systems.size();) {
            FuzzCase cand = c;
            cand.systems.erase(cand.systems.begin() +
                               static_cast<std::ptrdiff_t>(s));
            cand.ops.clear();
            for (FuzzOp op : c.ops) {
                if (op.system == s)
                    continue;
                if (op.system > s)
                    --op.system;
                cand.ops.push_back(op);
            }
            if (!try_accept(cand))
                ++s;
        }

        // 4. Halve core counts.
        for (std::size_t s = 0; s < c.systems.size(); ++s) {
            while (c.systems[s].nCores > 1) {
                FuzzCase cand = c;
                cand.systems[s].nCores = c.systems[s].nCores / 2;
                for (FuzzOp &op : cand.ops) {
                    if (op.system == s)
                        op.core %= cand.systems[s].nCores;
                }
                if (!try_accept(cand))
                    break;
            }
        }

        // 5. Simplify channel / scratchpad knobs toward the trivial
        //    configuration.
        for (std::size_t s = 0; s < c.systems.size(); ++s) {
            const FuzzSystem &fs = c.systems[s];
            if (fs.chan.maxInflight != 1 || fs.chan.useTlp) {
                FuzzCase cand = c;
                cand.systems[s].chan.maxInflight = 1;
                cand.systems[s].chan.useTlp = false;
                try_accept(cand);
            }
            if (c.systems[s].chan.burstBeats > 4) {
                FuzzCase cand = c;
                cand.systems[s].chan.burstBeats = 4;
                try_accept(cand);
            }
            if (fs.kind == FuzzKind::Memcpy &&
                c.systems[s].chan.dataBytes != 64) {
                FuzzCase cand = c;
                cand.systems[s].chan.dataBytes = 64;
                try_accept(cand);
            }
            if (fs.kind == FuzzKind::SpadLoop) {
                unsigned max_words = 1;
                for (const FuzzOp &op : c.ops) {
                    if (op.system == s)
                        max_words = std::max(max_words, op.size);
                }
                if (c.systems[s].spadRows > 64 && max_words <= 64) {
                    FuzzCase cand = c;
                    cand.systems[s].spadRows = 64;
                    try_accept(cand);
                }
                if (c.systems[s].spadLatency != 1) {
                    FuzzCase cand = c;
                    cand.systems[s].spadLatency = 1;
                    try_accept(cand);
                }
            }
        }

        // 6. Flatten the platform, wholesale first, then per-group.
        {
            FuzzCase cand = c;
            cand.platform = FuzzPlatformKnobs{};
            if (!try_accept(cand)) {
                cand = c;
                cand.platform.nSlrs = 1;
                try_accept(cand);
                cand = c;
                cand.platform.nocFanout = 4;
                cand.platform.nocCrossingLatency = 4;
                cand.platform.nocQueueDepth = 2;
                try_accept(cand);
                cand = c;
                cand.platform.tRCD = 4;
                cand.platform.tRP = 4;
                cand.platform.tRAS = 8;
                cand.platform.tCAS = 4;
                cand.platform.tSwitch = 3;
                cand.platform.nBankGroups = 4;
                cand.platform.banksPerGroup = 4;
                try_accept(cand);
                cand = c;
                cand.platform.mmioReadCycles = 2;
                cand.platform.mmioWriteCycles = 1;
                try_accept(cand);
            }
        }
    }

    if (attempts_out != nullptr)
        *attempts_out = attempts;
    return c;
}

// --- Serialization ----------------------------------------------------

namespace
{

/** u64 round-trips as a decimal string: JSON numbers are doubles. */
std::string
u64Str(u64 v)
{
    return std::to_string(v);
}

const JsonValue &
member(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        fatal("fuzz repro JSON: missing key '%s'", key);
    return *v;
}

unsigned
asUnsigned(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (!v.isNumber())
        fatal("fuzz repro JSON: '%s' is not a number", key);
    return static_cast<unsigned>(v.number);
}

bool
asBool(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (!v.isBool())
        fatal("fuzz repro JSON: '%s' is not a bool", key);
    return v.boolean;
}

u64
asU64String(const JsonValue &obj, const char *key)
{
    const JsonValue &v = member(obj, key);
    if (!v.isString())
        fatal("fuzz repro JSON: '%s' is not a string-encoded u64", key);
    return std::strtoull(v.string.c_str(), nullptr, 10);
}

FuzzKind
kindFromName(const std::string &name)
{
    for (int k = 0; k < 4; ++k) {
        if (name == fuzzKindName(static_cast<FuzzKind>(k)))
            return static_cast<FuzzKind>(k);
    }
    fatal("fuzz repro JSON: unknown system kind '%s'", name.c_str());
}

} // namespace

std::string
fuzzCaseToJson(const FuzzCase &c)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": \"" << u64Str(c.seed) << "\",\n";
    os << "  \"plant_violation\": "
       << (c.plantViolation ? "true" : "false") << ",\n";
    os << "  \"plant_lint_violation\": "
       << (c.plantLintViolation ? "true" : "false") << ",\n";
    os << "  \"plant_power_violation\": "
       << (c.plantPowerViolation ? "true" : "false") << ",\n";
    os << "  \"plant_lost_wake\": \"" << u64Str(c.plantLostWake)
       << "\",\n";
    os << "  \"plant_wake_violation\": \""
       << u64Str(c.plantWakeViolation) << "\",\n";
    const FuzzPlatformKnobs &p = c.platform;
    os << "  \"platform\": {\"n_slrs\": " << p.nSlrs
       << ", \"noc_fanout\": " << p.nocFanout
       << ", \"noc_crossing_latency\": " << p.nocCrossingLatency
       << ", \"noc_queue_depth\": " << p.nocQueueDepth
       << ", \"t_rcd\": " << p.tRCD << ", \"t_rp\": " << p.tRP
       << ", \"t_ras\": " << p.tRAS << ", \"t_cas\": " << p.tCAS
       << ", \"t_switch\": " << p.tSwitch
       << ", \"n_bank_groups\": " << p.nBankGroups
       << ", \"banks_per_group\": " << p.banksPerGroup
       << ", \"mmio_read_cycles\": " << p.mmioReadCycles
       << ", \"mmio_write_cycles\": " << p.mmioWriteCycles << "},\n";
    os << "  \"systems\": [";
    for (std::size_t i = 0; i < c.systems.size(); ++i) {
        const FuzzSystem &s = c.systems[i];
        if (i != 0)
            os << ",";
        os << "\n    {\"kind\": \"" << fuzzKindName(s.kind)
           << "\", \"n_cores\": " << s.nCores
           << ", \"data_bytes\": " << s.chan.dataBytes
           << ", \"burst_beats\": " << s.chan.burstBeats
           << ", \"max_inflight\": " << s.chan.maxInflight
           << ", \"use_tlp\": " << (s.chan.useTlp ? "true" : "false")
           << ", \"spad_rows\": " << s.spadRows
           << ", \"spad_latency\": " << s.spadLatency << "}";
    }
    os << "\n  ],\n";
    os << "  \"ops\": [";
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
        const FuzzOp &op = c.ops[i];
        if (i != 0)
            os << ",";
        os << "\n    {\"system\": " << op.system
           << ", \"core\": " << op.core << ", \"data_seed\": \""
           << u64Str(op.dataSeed) << "\", \"size\": " << op.size << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

FuzzCase
fuzzCaseFromJson(const std::string &text)
{
    const JsonValue root = parseJson(text);
    if (!root.isObject())
        fatal("fuzz repro JSON: top level is not an object");

    FuzzCase c;
    c.seed = asU64String(root, "seed");
    c.plantViolation = asBool(root, "plant_violation");
    // Optional for compatibility with repro files written before the
    // composition linter existed.
    if (const JsonValue *v = root.find("plant_lint_violation"))
        c.plantLintViolation = v->isBool() && v->boolean;
    // Optional likewise (predates the power ledger).
    if (const JsonValue *v = root.find("plant_power_violation"))
        c.plantPowerViolation = v->isBool() && v->boolean;
    // Optional likewise (predates the event kernel).
    if (const JsonValue *v = root.find("plant_lost_wake")) {
        if (v->isString())
            c.plantLostWake =
                std::strtoull(v->string.c_str(), nullptr, 10);
    }
    // Optional likewise (predates the static analyzer).
    if (const JsonValue *v = root.find("plant_wake_violation")) {
        if (v->isString())
            c.plantWakeViolation =
                std::strtoull(v->string.c_str(), nullptr, 10);
    }

    const JsonValue &p = member(root, "platform");
    c.platform.nSlrs = asUnsigned(p, "n_slrs");
    c.platform.nocFanout = asUnsigned(p, "noc_fanout");
    c.platform.nocCrossingLatency = asUnsigned(p, "noc_crossing_latency");
    c.platform.nocQueueDepth = asUnsigned(p, "noc_queue_depth");
    c.platform.tRCD = asUnsigned(p, "t_rcd");
    c.platform.tRP = asUnsigned(p, "t_rp");
    c.platform.tRAS = asUnsigned(p, "t_ras");
    c.platform.tCAS = asUnsigned(p, "t_cas");
    c.platform.tSwitch = asUnsigned(p, "t_switch");
    c.platform.nBankGroups = asUnsigned(p, "n_bank_groups");
    c.platform.banksPerGroup = asUnsigned(p, "banks_per_group");
    c.platform.mmioReadCycles = asUnsigned(p, "mmio_read_cycles");
    c.platform.mmioWriteCycles = asUnsigned(p, "mmio_write_cycles");

    const JsonValue &systems = member(root, "systems");
    if (!systems.isArray())
        fatal("fuzz repro JSON: 'systems' is not an array");
    for (const JsonValue &sv : systems.array) {
        FuzzSystem s;
        s.kind = kindFromName(member(sv, "kind").string);
        s.nCores = asUnsigned(sv, "n_cores");
        s.chan.dataBytes = asUnsigned(sv, "data_bytes");
        s.chan.burstBeats = asUnsigned(sv, "burst_beats");
        s.chan.maxInflight = asUnsigned(sv, "max_inflight");
        s.chan.useTlp = asBool(sv, "use_tlp");
        s.spadRows = asUnsigned(sv, "spad_rows");
        s.spadLatency = asUnsigned(sv, "spad_latency");
        c.systems.push_back(s);
    }

    const JsonValue &ops = member(root, "ops");
    if (!ops.isArray())
        fatal("fuzz repro JSON: 'ops' is not an array");
    for (const JsonValue &ov : ops.array) {
        FuzzOp op;
        op.system = asUnsigned(ov, "system");
        op.core = asUnsigned(ov, "core");
        op.dataSeed = asU64String(ov, "data_seed");
        op.size = asUnsigned(ov, "size");
        c.ops.push_back(op);
    }
    return c;
}

void
writeReproFile(const FuzzCase &c, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open repro file '%s' for writing", path.c_str());
    os << fuzzCaseToJson(c);
    if (!os.good())
        fatal("failed writing repro file '%s'", path.c_str());
}

FuzzCase
loadReproFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open repro file '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return fuzzCaseFromJson(buf.str());
}

} // namespace beethoven::verify
