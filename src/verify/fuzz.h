/**
 * @file
 * Fuzz execution, failure classification, case shrinking, and repro
 * serialization — the engine behind tools/soc_fuzz.
 *
 * One iteration: elaborate the FuzzCase onto a FuzzPlatform, attach
 * SocInvariants (live AXI/NoC/response checking) and the hang
 * watchdog, drive the traffic schedule through the real runtime
 * (fpga_handle_t), then differential-check end-state memory and
 * response payloads against the golden model. Failures are classified
 * by kind; the shrinker greedily minimizes a failing case while
 * preserving the failure kind, and repro files round-trip through
 * JSON (seeds as strings — the parser's doubles can't hold a u64).
 */

#ifndef BEETHOVEN_VERIFY_FUZZ_H
#define BEETHOVEN_VERIFY_FUZZ_H

#include <string>

#include "sim/simulator.h"
#include "verify/random_soc.h"

namespace beethoven::verify
{

/** What a fuzz iteration produced. */
enum class FailKind {
    None = 0,       ///< completed and matched golden
    BuildError,     ///< elaboration rejected the configuration
    Violation,      ///< a live invariant fired
    Hang,           ///< watchdog or max-cycles budget exceeded
    Mismatch,       ///< memory or response payload differs from golden
    Divergence,     ///< kernels disagreed (differential mode)
};

const char *failKindName(FailKind k);

struct FuzzOptions
{
    Cycle maxCycles = 2'000'000;  ///< overall per-case cycle budget
    Cycle watchdogCycles = 50'000; ///< no-progress limit
    SimKernel kernel = SimKernel::Tick; ///< kernel for the single run
    /** Run the case under all three kernels (tick as the reference,
     *  then event and parallel) and compare outcome kind, final cycle
     *  and the full stats digest; any difference is classified
     *  FailKind::Divergence (and shrinks like any other kind). */
    bool differential = false;
    /** Worker threads for the parallel-kernel runs (0 = per group). */
    unsigned parallelThreads = 2;
};

struct FuzzResult
{
    FailKind kind = FailKind::None;
    std::string message; ///< empty for FailKind::None
    Cycle cycles = 0;    ///< simulated cycles consumed
    u64 axiEvents = 0;   ///< AXI beats checked live
    u64 responses = 0;   ///< responses collected
    /** Stats-tree JSON + "@" + final cycle: the bit-identity witness
     *  the differential mode compares across kernels. */
    std::string statsDigest;
};

/** Elaborate, run, and check one case. Never throws. */
FuzzResult runFuzzCase(const FuzzCase &c, const FuzzOptions &opt);

/**
 * Greedy failing-case minimizer. Repeated passes truncate traffic,
 * halve workload sizes, drop systems, halve core counts, simplify
 * channel knobs, and flatten the platform; a candidate is accepted
 * iff it still fails with @p kind. Bounded by @p max_attempts runs.
 *
 * @param attempts_out  optional: replay-run count actually spent
 */
FuzzCase shrink(FuzzCase c, const FuzzOptions &opt, FailKind kind,
                unsigned max_attempts = 200,
                unsigned *attempts_out = nullptr);

/** Serialize a case as a self-contained JSON repro document. */
std::string fuzzCaseToJson(const FuzzCase &c);

/** Parse fuzzCaseToJson output. @throws ConfigError on bad input. */
FuzzCase fuzzCaseFromJson(const std::string &text);

/** Write/read a repro file. @throws ConfigError on IO failure. */
void writeReproFile(const FuzzCase &c, const std::string &path);
FuzzCase loadReproFile(const std::string &path);

} // namespace beethoven::verify

#endif // BEETHOVEN_VERIFY_FUZZ_H
