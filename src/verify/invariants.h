/**
 * @file
 * Always-on live correctness invariants for an elaborated SoC.
 *
 * PR-1/2 gave the framework eyes (traces, stall accounts, the hang
 * watchdog); this layer gives it teeth. SocInvariants attaches to an
 * AcceleratorSoc and checks, while the simulation runs:
 *
 *  - AXI protocol legality at the DRAM port (incremental port of
 *    checkAxiProtocol — per-ID ordering, burst beat counts, last
 *    flags, B-after-W);
 *  - no AXI-ID leaks: every bus ID stays inside the ID-space the
 *    elaborator allocated to read/write endpoints;
 *  - one-response-per-command accounting at the MMIO front-end
 *    (responses never outrun xd-flagged command beats);
 *  - NoC flit conservation: command/response beats buffered in the
 *    fabric never exceed what has been injected and not yet drained;
 *  - final quiescence (checkFinal): no outstanding AXI transactions,
 *    empty NoC trees, and every expected response delivered.
 *
 * On violation it dumps stall/in-flight diagnostics via the watchdog
 * dumpers and throws ConfigError with cycle context.
 */

#ifndef BEETHOVEN_VERIFY_INVARIANTS_H
#define BEETHOVEN_VERIFY_INVARIANTS_H

#include <cstddef>
#include <deque>
#include <map>
#include <string>

#include "axi/timeline.h"
#include "base/types.h"
#include "sim/simulator.h"

namespace beethoven
{

class AcceleratorSoc;
struct RoccCommand;
struct RoccResponse;

/**
 * Incremental AXI protocol checker: the streaming equivalent of
 * checkAxiProtocol (axi/timeline.h), fed one event at a time so
 * violations surface at the cycle they occur instead of post-mortem.
 */
class LiveAxiChecker
{
  public:
    /**
     * Bound the legal ID space (0 = unchecked). IDs at or above the
     * bound are reported as leaks — they would alias another
     * endpoint's transactions on real hardware.
     */
    void
    setIdBounds(u32 read_ids, u32 write_ids)
    {
        _readIdBound = read_ids;
        _writeIdBound = write_ids;
    }

    /**
     * Feed the next event. @return empty string if still legal, else
     * a description of the violation (checker state is then stale;
     * callers are expected to abort).
     */
    std::string observe(const AxiEvent &e);

    /** True when no read or write transaction is outstanding. */
    bool quiescent() const;

    std::size_t outstandingReads() const;
    std::size_t outstandingWrites() const;
    u64 eventsSeen() const { return _eventsSeen; }

  private:
    struct Outstanding
    {
        u64 tag;
        u32 beatsExpected;
        u32 beatsSeen = 0;
    };

    // Per-ID FIFOs of outstanding transactions (same model as the
    // post-hoc checker).
    std::map<u32, std::deque<Outstanding>> _reads, _writes;
    // Write bursts whose data is complete but whose B is pending.
    std::map<u64, bool> _writeDataDone;
    u32 _readIdBound = 0, _writeIdBound = 0;
    u64 _eventsSeen = 0;
};

/**
 * The composite live invariant for one SoC. Construction subscribes
 * to the DRAM timeline and the MMIO command/response hooks and
 * registers with the SoC's Simulator; destruction detaches cleanly.
 */
class SocInvariants : public Invariant
{
  public:
    explicit SocInvariants(AcceleratorSoc &soc);
    ~SocInvariants() override;

    SocInvariants(const SocInvariants &) = delete;
    SocInvariants &operator=(const SocInvariants &) = delete;

    // Invariant interface: periodic cross-checks (response ledger
    // consistency, NoC occupancy sanity).
    void check(Cycle cycle) override;
    const char *invariantName() const override { return "soc-invariants"; }

    /**
     * End-of-workload quiescence check. Call after every response has
     * been collected: asserts no outstanding AXI transactions, empty
     * NoC fabric trees, and a balanced command/response ledger.
     */
    void checkFinal();

    u64 commandsSeen() const { return _cmdBeatsSeen; }
    u64 expectedResponses() const { return _xdSeen; }
    u64 responsesSeen() const { return _respsSeen; }
    u64 axiEventsSeen() const { return _axi.eventsSeen(); }

    /**
     * Test-only hook: inject a synthetic AXI event into the live
     * checker as if the DRAM controller had recorded it. Used by the
     * fuzz harness's planted-violation fixture to prove the
     * catch/shrink/replay loop works end to end.
     */
    void injectAxiEvent(const AxiEvent &e) { onAxiEvent(e); }

  private:
    void onAxiEvent(const AxiEvent &e);
    void onCommand(const RoccCommand &cmd);
    void onResponse(const RoccResponse &resp);

    /** Dump diagnostics and throw ConfigError with cycle context. */
    [[noreturn]] void violation(const std::string &what);

    AcceleratorSoc &_soc;
    LiveAxiChecker _axi;
    std::size_t _timelineToken = 0;

    /**
     * Response ledger: per routing key (systemId<<16 | coreId<<5 | rd),
     * xd-flagged command beats seen minus responses seen. A negative
     * balance means a response arrived that no command asked for.
     */
    std::map<u64, i64> _ledger;
    u64 _cmdBeatsSeen = 0;
    u64 _xdSeen = 0;
    u64 _respsSeen = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_VERIFY_INVARIANTS_H
