#include "verify/golden.h"

#include <sstream>

namespace beethoven::verify
{

std::string
GoldenMemory::diff(fpga_handle_t &handle)
{
    for (Region &r : _regions) {
        handle.copy_from_fpga(r.ptr);
        const u8 *got = r.ptr.getHostAddr();
        const std::size_t n = r.expectBytes.size();
        for (std::size_t i = 0; i < n; ++i) {
            if (got[i] == r.expectBytes[i])
                continue;
            std::ostringstream os;
            os << r.label << ": byte " << i << " of " << n << " is 0x"
               << std::hex << unsigned(got[i]) << ", golden model says 0x"
               << unsigned(r.expectBytes[i]);
            return os.str();
        }
    }
    return "";
}

} // namespace beethoven::verify
