/**
 * @file
 * Randomized SoC composition for the fuzz harness.
 *
 * A FuzzCase is a fully serializable description of one fuzz
 * iteration: platform shape (SLRs, NoC, DRAM timing/geometry, MMIO
 * costs), a list of accelerator systems with their composition knobs
 * (core counts, channel widths/depths, scratchpad shapes), and a
 * seeded traffic schedule. RandomSocBuilder samples legal cases from
 * a seeded Rng; buildAcceleratorConfig/FuzzPlatform turn a case back
 * into an elaborable design, so a case replays bit-identically from
 * its serialized form.
 */

#ifndef BEETHOVEN_VERIFY_RANDOM_SOC_H
#define BEETHOVEN_VERIFY_RANDOM_SOC_H

#include <string>
#include <vector>

#include "base/rng.h"
#include "core/config.h"
#include "platform/sim_platform.h"

namespace beethoven::verify
{

/** Which kernel a fuzzed system instantiates. */
enum class FuzzKind { VecAdd = 0, Memcpy = 1, SpadLoop = 2, Gemm = 3 };

const char *fuzzKindName(FuzzKind k);

/** Reader/writer channel knobs (Memcpy and SpadLoop systems). */
struct FuzzChannelKnobs
{
    unsigned dataBytes = 64;
    unsigned burstBeats = 16;
    unsigned maxInflight = 4;
    bool useTlp = true;
};

/** One randomized accelerator system. */
struct FuzzSystem
{
    FuzzKind kind = FuzzKind::VecAdd;
    unsigned nCores = 1;
    FuzzChannelKnobs chan;     ///< Memcpy / SpadLoop only
    unsigned spadRows = 256;   ///< SpadLoop only
    unsigned spadLatency = 1;  ///< SpadLoop only
};

/** One command in the traffic schedule. */
struct FuzzOp
{
    unsigned system = 0; ///< index into FuzzCase::systems
    unsigned core = 0;
    u64 dataSeed = 1;    ///< seeds the operand data
    /**
     * Workload size in kind-specific units: VecAdd elements, Memcpy
     * words of chan.dataBytes, SpadLoop 32-bit words, Gemm multiples
     * of GemmCore::lanes. Unit-based sizes stay legal under halving,
     * which keeps the shrinker simple.
     */
    unsigned size = 16;
};

/** Platform-shape knobs the fuzzer sweeps. */
struct FuzzPlatformKnobs
{
    unsigned nSlrs = 1;
    unsigned nocFanout = 4;
    unsigned nocCrossingLatency = 4;
    unsigned nocQueueDepth = 2;
    unsigned tRCD = 4, tRP = 4, tRAS = 8, tCAS = 4, tSwitch = 3;
    unsigned nBankGroups = 4, banksPerGroup = 4;
    unsigned mmioReadCycles = 2, mmioWriteCycles = 1;
};

/** One self-contained fuzz iteration (serializable, see fuzz.h). */
struct FuzzCase
{
    u64 seed = 0; ///< generation seed (provenance metadata)
    FuzzPlatformKnobs platform;
    std::vector<FuzzSystem> systems;
    std::vector<FuzzOp> ops;
    /** Test-only: inject a stray AXI beat at run start to prove the
     *  catch/shrink/replay loop end to end. */
    bool plantViolation = false;
    /** Test-only: append a deliberately defective system (duplicate
     *  name, zero cores, no constructor) so the composition linter's
     *  catch path is provable end to end from a replayable case. */
    bool plantLintViolation = false;
    /** Test-only: plant a phantom energy leak in the SoC's power
     *  ledger so the energy-conservation invariant's catch path is
     *  provable end to end from a replayable case. */
    bool plantPowerViolation = false;
    /** Test-only: drop every Nth event-kernel wake schedule (0 = off)
     *  so the differential harness's lost-wake catch path is provable
     *  end to end from a replayable case. Only meaningful under
     *  --differential: the tick kernel never schedules wakes. */
    u64 plantLostWake = 0;
    /** Test-only: suppress the Nth setWakeOnPush arming during
     *  elaboration (0 = off) so the static analyzer's catch path
     *  (BTH100) is provable end to end from a replayable case. The
     *  consumer declaration is still recorded — the planted bug is a
     *  missing arm, the same class --plant-lost-wake injects
     *  dynamically. */
    u64 plantWakeViolation = 0;
};

/** The simulation platform reshaped by a FuzzCase's knobs. */
class FuzzPlatform : public SimulationPlatform
{
  public:
    explicit FuzzPlatform(const FuzzPlatformKnobs &knobs)
        : _knobs(knobs)
    {}

    std::string name() const override { return "Fuzz"; }

    std::vector<SlrDescriptor> slrs() const override;
    NocParams nocParams() const override;
    DramTiming dramTiming() const override;
    DramGeometry dramGeometry() const override;
    unsigned mmioReadCycles() const override
    {
        return _knobs.mmioReadCycles;
    }
    unsigned mmioWriteCycles() const override
    {
        return _knobs.mmioWriteCycles;
    }

  private:
    FuzzPlatformKnobs _knobs;
};

/** Unique per-case system name ("fuzz0", "fuzz1", ...). */
std::string fuzzSystemName(unsigned idx);

/** Command name a FuzzKind's system exposes. */
const char *fuzzCommandName(FuzzKind k);

/** Elaborable config for @p c (throws ConfigError on illegal cases). */
AcceleratorConfig buildAcceleratorConfig(const FuzzCase &c);

/**
 * Samples legal SoC compositions. Identical seeds produce identical
 * cases; traffic is added separately (RandomTrafficGen, traffic.h).
 */
class RandomSocBuilder
{
  public:
    explicit RandomSocBuilder(u64 seed) : _seed(seed), _rng(seed) {}

    /** Sample the platform + system structure of one case (no ops). */
    FuzzCase sample();

  private:
    u64 _seed;
    Rng _rng;
};

} // namespace beethoven::verify

#endif // BEETHOVEN_VERIFY_RANDOM_SOC_H
