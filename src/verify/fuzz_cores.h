/**
 * @file
 * Fuzz-only accelerator cores.
 *
 * The bench kernels (vecadd, memcpy, MachSuite) exercise Readers,
 * Writers and fixed-shape Scratchpads; SpadLoopbackCore closes the
 * remaining composition gap by parameterizing the scratchpad itself
 * (row count, read latency) so the RandomSocBuilder can sweep on-chip
 * memory shapes. It copies a buffer through the scratchpad's
 * init-from-memory path and back out through a Writer, so its golden
 * model is exact: dst == src.
 */

#ifndef BEETHOVEN_VERIFY_FUZZ_CORES_H
#define BEETHOVEN_VERIFY_FUZZ_CORES_H

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven::verify
{

class SpadLoopbackCore : public AcceleratorCore
{
  public:
    /** Composition knobs the fuzzer randomizes. */
    struct Variant
    {
        unsigned spadRows = 256;  ///< scratchpad depth (32-bit rows)
        unsigned spadLatency = 1; ///< scratchpad read latency
        unsigned burstBeats = 8;
        unsigned maxInflight = 2;
        bool useTlp = true;
    };

    explicit SpadLoopbackCore(const CoreContext &ctx);

    void tick() override;

    enum Arg { argSrc = 0, argDst = 1, argWords = 2 };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                const Variant &variant,
                                                unsigned addr_bits = 34);

  private:
    enum class State { Idle, Launch, Init, Drain, WaitWriter, Respond };

    Writer &_writer;
    Scratchpad &_spad;

    State _state = State::Idle;
    DecodedCommand _cmd;
    u32 _words = 0;
    u32 _reqRow = 0;  ///< next scratchpad row requested
    u32 _respRow = 0; ///< rows already forwarded to the writer
};

} // namespace beethoven::verify

#endif // BEETHOVEN_VERIFY_FUZZ_CORES_H
