#include "verify/traffic.h"

#include <algorithm>

namespace beethoven::verify
{

void
RandomTrafficGen::generate(FuzzCase &c, unsigned max_ops)
{
    if (c.systems.empty() || max_ops == 0)
        return;
    const unsigned n_ops =
        1 + static_cast<unsigned>(_rng.nextBounded(max_ops));
    for (unsigned i = 0; i < n_ops; ++i) {
        FuzzOp op;
        op.system =
            static_cast<unsigned>(_rng.nextBounded(c.systems.size()));
        const FuzzSystem &sys = c.systems[op.system];
        op.core = static_cast<unsigned>(_rng.nextBounded(sys.nCores));
        op.dataSeed = _rng.next() | 1; // never the degenerate 0 seed
        switch (sys.kind) {
          case FuzzKind::VecAdd:
            op.size = 1 + static_cast<unsigned>(_rng.nextBounded(64));
            break;
          case FuzzKind::Memcpy:
            op.size = 1 + static_cast<unsigned>(_rng.nextBounded(32));
            break;
          case FuzzKind::SpadLoop:
            op.size = 1 + static_cast<unsigned>(_rng.nextBounded(
                              std::min(64u, sys.spadRows)));
            break;
          case FuzzKind::Gemm:
            // Units of GemmCore::lanes: n = 16 or 32 keeps the O(n^3)
            // kernel inside fuzz-iteration time budgets.
            op.size = 1 + static_cast<unsigned>(_rng.nextBounded(2));
            break;
        }
        c.ops.push_back(op);
    }
}

} // namespace beethoven::verify
