#include "verify/random_soc.h"

#include "accel/machsuite/gemm.h"
#include "accel/memcpy_core.h"
#include "accel/vecadd.h"
#include "base/log.h"
#include "verify/fuzz_cores.h"

namespace beethoven::verify
{

const char *
fuzzKindName(FuzzKind k)
{
    switch (k) {
      case FuzzKind::VecAdd:   return "vecadd";
      case FuzzKind::Memcpy:   return "memcpy";
      case FuzzKind::SpadLoop: return "spadloop";
      case FuzzKind::Gemm:     return "gemm";
    }
    return "?";
}

const char *
fuzzCommandName(FuzzKind k)
{
    switch (k) {
      case FuzzKind::VecAdd:   return "my_accel";
      case FuzzKind::Memcpy:   return "do_memcpy";
      case FuzzKind::SpadLoop: return "spad_copy";
      case FuzzKind::Gemm:     return "gemm";
    }
    return "?";
}

std::string
fuzzSystemName(unsigned idx)
{
    return "fuzz" + std::to_string(idx);
}

// --- FuzzPlatform -----------------------------------------------------

std::vector<SlrDescriptor>
FuzzPlatform::slrs() const
{
    std::vector<SlrDescriptor> out;
    for (unsigned i = 0; i < std::max(1u, _knobs.nSlrs); ++i) {
        SlrDescriptor slr;
        slr.name = "SLR" + std::to_string(i);
        slr.capacity = {400000, 3200000, 6400000, 8000, 4000, 0, 0};
        slr.hasHostInterface = i == 0;
        slr.hasMemoryInterface = i == 0;
        out.push_back(slr);
    }
    return out;
}

NocParams
FuzzPlatform::nocParams() const
{
    NocParams p;
    p.fanout = _knobs.nocFanout;
    p.slrCrossingLatency = _knobs.nocCrossingLatency;
    p.queueDepth = _knobs.nocQueueDepth;
    return p;
}

DramTiming
FuzzPlatform::dramTiming() const
{
    DramTiming t;
    t.tRCD = _knobs.tRCD;
    t.tRP = _knobs.tRP;
    t.tRAS = _knobs.tRAS;
    t.tCAS = _knobs.tCAS;
    t.tSwitch = _knobs.tSwitch;
    return t;
}

DramGeometry
FuzzPlatform::dramGeometry() const
{
    DramGeometry g;
    g.nBankGroups = _knobs.nBankGroups;
    g.banksPerGroup = _knobs.banksPerGroup;
    return g;
}

// --- Config construction ----------------------------------------------

AcceleratorConfig
buildAcceleratorConfig(const FuzzCase &c)
{
    if (c.systems.empty())
        fatal("fuzz case has no systems");
    AcceleratorConfig cfg;
    cfg.name = "FuzzSoc";
    for (std::size_t i = 0; i < c.systems.size(); ++i) {
        const FuzzSystem &fs = c.systems[i];
        AcceleratorSystemConfig sys;
        switch (fs.kind) {
          case FuzzKind::VecAdd:
            sys = VecAddCore::systemConfig(fs.nCores);
            break;
          case FuzzKind::Memcpy: {
            MemcpyCore::Variant v;
            v.dataBytes = fs.chan.dataBytes;
            v.burstBeats = fs.chan.burstBeats;
            v.maxInflight = fs.chan.maxInflight;
            v.useTlp = fs.chan.useTlp;
            sys = MemcpyCore::systemConfig(fs.nCores, v);
            break;
          }
          case FuzzKind::SpadLoop: {
            SpadLoopbackCore::Variant v;
            v.spadRows = fs.spadRows;
            v.spadLatency = fs.spadLatency;
            v.burstBeats = fs.chan.burstBeats;
            v.maxInflight = fs.chan.maxInflight;
            v.useTlp = fs.chan.useTlp;
            sys = SpadLoopbackCore::systemConfig(fs.nCores, v);
            break;
          }
          case FuzzKind::Gemm:
            sys = machsuite::GemmCore::systemConfig(fs.nCores);
            break;
        }
        // Distinct instance names let one case hold several systems of
        // the same kind; cores resolve channels within their own
        // system, so the rename is free.
        sys.name = fuzzSystemName(static_cast<unsigned>(i));
        cfg.systems.push_back(std::move(sys));
    }
    if (c.plantLintViolation) {
        // A maximally broken rider: duplicates the first system's name,
        // declares no cores, and carries no module constructor. The
        // linter must report all three defects before elaboration.
        AcceleratorSystemConfig bad;
        bad.name = fuzzSystemName(0);
        bad.nCores = 0;
        cfg.systems.push_back(std::move(bad));
    }
    return cfg;
}

// --- RandomSocBuilder -------------------------------------------------

FuzzCase
RandomSocBuilder::sample()
{
    FuzzCase c;
    c.seed = _seed;

    // Platform shape.
    c.platform.nSlrs = 1 + static_cast<unsigned>(_rng.nextBounded(2));
    c.platform.nocFanout =
        2 + static_cast<unsigned>(_rng.nextBounded(3));
    c.platform.nocCrossingLatency =
        1 + static_cast<unsigned>(_rng.nextBounded(6));
    c.platform.nocQueueDepth =
        1 + static_cast<unsigned>(_rng.nextBounded(4));
    c.platform.tRCD = 2 + static_cast<unsigned>(_rng.nextBounded(7));
    c.platform.tRP = 2 + static_cast<unsigned>(_rng.nextBounded(7));
    c.platform.tRAS = 4 + static_cast<unsigned>(_rng.nextBounded(13));
    c.platform.tCAS = 2 + static_cast<unsigned>(_rng.nextBounded(7));
    c.platform.tSwitch = 1 + static_cast<unsigned>(_rng.nextBounded(6));
    c.platform.nBankGroups = _rng.nextBounded(2) ? 4 : 2;
    c.platform.banksPerGroup = _rng.nextBounded(2) ? 4 : 2;
    c.platform.mmioReadCycles =
        1 + static_cast<unsigned>(_rng.nextBounded(4));
    c.platform.mmioWriteCycles =
        1 + static_cast<unsigned>(_rng.nextBounded(3));

    // System list.
    const unsigned n_systems =
        1 + static_cast<unsigned>(_rng.nextBounded(3));
    for (unsigned s = 0; s < n_systems; ++s) {
        FuzzSystem fs;
        fs.kind = static_cast<FuzzKind>(_rng.nextBounded(4));
        switch (fs.kind) {
          case FuzzKind::VecAdd:
            fs.nCores = 1 + static_cast<unsigned>(_rng.nextBounded(4));
            break;
          case FuzzKind::Memcpy: {
            fs.nCores = 1 + static_cast<unsigned>(_rng.nextBounded(3));
            static const unsigned widths[] = {16, 32, 64};
            static const unsigned bursts[] = {4, 8, 16, 32};
            static const unsigned inflight[] = {1, 2, 4, 8};
            fs.chan.dataBytes = widths[_rng.nextBounded(3)];
            fs.chan.burstBeats = bursts[_rng.nextBounded(4)];
            fs.chan.maxInflight = inflight[_rng.nextBounded(4)];
            fs.chan.useTlp = _rng.nextBounded(2) != 0;
            break;
          }
          case FuzzKind::SpadLoop: {
            fs.nCores = 1 + static_cast<unsigned>(_rng.nextBounded(3));
            static const unsigned rows[] = {64, 128, 256, 512};
            static const unsigned bursts[] = {2, 4, 8};
            static const unsigned inflight[] = {1, 2, 4};
            fs.spadRows = rows[_rng.nextBounded(4)];
            fs.spadLatency =
                1 + static_cast<unsigned>(_rng.nextBounded(3));
            fs.chan.dataBytes = 4;
            fs.chan.burstBeats = bursts[_rng.nextBounded(3)];
            fs.chan.maxInflight = inflight[_rng.nextBounded(3)];
            fs.chan.useTlp = _rng.nextBounded(2) != 0;
            break;
          }
          case FuzzKind::Gemm:
            fs.nCores = 1 + static_cast<unsigned>(_rng.nextBounded(2));
            break;
        }
        c.systems.push_back(fs);
    }
    return c;
}

} // namespace beethoven::verify
