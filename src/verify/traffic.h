/**
 * @file
 * Seeded traffic generation for fuzz cases: fills FuzzCase::ops with
 * commands targeting the sampled systems. Sizes are drawn in
 * kind-specific units (see FuzzOp::size) so every sampled op is legal
 * by construction and stays legal while the shrinker halves it.
 */

#ifndef BEETHOVEN_VERIFY_TRAFFIC_H
#define BEETHOVEN_VERIFY_TRAFFIC_H

#include "base/rng.h"
#include "verify/random_soc.h"

namespace beethoven::verify
{

class RandomTrafficGen
{
  public:
    explicit RandomTrafficGen(u64 seed) : _rng(seed) {}

    /**
     * Append between 1 and @p max_ops seeded commands to @p c,
     * spread across its systems and cores.
     */
    void generate(FuzzCase &c, unsigned max_ops = 8);

  private:
    Rng _rng;
};

} // namespace beethoven::verify

#endif // BEETHOVEN_VERIFY_TRAFFIC_H
