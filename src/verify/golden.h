/**
 * @file
 * Golden end-state reference model for the fuzz harness.
 *
 * Before traffic is dispatched, the runner computes every buffer's
 * expected final contents host-side (reusing the src/baselines golden
 * kernels where one exists — goldenGemm for the GeMM systems) and
 * registers them here. After the workload quiesces, diff() copies
 * each region back from device memory and reports the first byte
 * mismatch with context.
 */

#ifndef BEETHOVEN_VERIFY_GOLDEN_H
#define BEETHOVEN_VERIFY_GOLDEN_H

#include <string>
#include <vector>

#include "base/types.h"
#include "runtime/fpga_handle.h"
#include "runtime/remote_ptr.h"

namespace beethoven::verify
{

class GoldenMemory
{
  public:
    /** Register the expected end-state bytes of one device region. */
    void
    expect(const remote_ptr &ptr, std::vector<u8> bytes,
           std::string label)
    {
        _regions.push_back({ptr, std::move(bytes), std::move(label)});
    }

    std::size_t regions() const { return _regions.size(); }

    /**
     * DMA every registered region back and compare byte-for-byte.
     * @return empty string when all regions match, else a description
     *         of the first mismatch (label, offset, got/want).
     */
    std::string diff(fpga_handle_t &handle);

  private:
    struct Region
    {
        remote_ptr ptr;
        std::vector<u8> expectBytes;
        std::string label;
    };
    std::vector<Region> _regions;
};

} // namespace beethoven::verify

#endif // BEETHOVEN_VERIFY_GOLDEN_H
