#include "verify/invariants.h"

#include <iostream>
#include <sstream>

#include "base/log.h"
#include "cmd/rocc.h"
#include "core/soc.h"

namespace beethoven
{

namespace
{

u64
routingKey(u32 system_id, u32 core_id, u32 rd)
{
    return (u64(system_id) << 16) | (u64(core_id) << 5) | rd;
}

} // namespace

// --- LiveAxiChecker ---------------------------------------------------

std::string
LiveAxiChecker::observe(const AxiEvent &e)
{
    ++_eventsSeen;
    std::ostringstream err;

    // ID-leak screen: transactions must use IDs the elaborator
    // actually handed out.
    const bool is_read =
        e.channel == AxiChannel::AR || e.channel == AxiChannel::R;
    const bool is_write = !is_read;
    if (is_read && _readIdBound != 0 && e.id >= _readIdBound) {
        err << axiChannelName(e.channel) << " uses read id " << e.id
            << " outside the allocated space [0, " << _readIdBound << ")";
        return err.str();
    }
    if (is_write && _writeIdBound != 0 && e.id >= _writeIdBound &&
        e.channel != AxiChannel::W) {
        // W beats are tag-matched, not ID-matched, but AW and B carry
        // real bus IDs.
        err << axiChannelName(e.channel) << " uses write id " << e.id
            << " outside the allocated space [0, " << _writeIdBound << ")";
        return err.str();
    }

    switch (e.channel) {
      case AxiChannel::AR:
        _reads[e.id].push_back({e.tag, e.beats});
        break;
      case AxiChannel::AW:
        _writes[e.id].push_back({e.tag, e.beats});
        _writeDataDone[e.tag] = false;
        break;
      case AxiChannel::R: {
        auto &q = _reads[e.id];
        if (q.empty()) {
            err << "R beat for id " << e.id << " with no outstanding read";
            return err.str();
        }
        Outstanding &head = q.front();
        if (head.tag != e.tag) {
            err << "R beat tag " << e.tag << " on id " << e.id
                << " violates same-ID ordering (expected tag " << head.tag
                << ")";
            return err.str();
        }
        ++head.beatsSeen;
        const bool should_be_last = head.beatsSeen == head.beatsExpected;
        if (e.last != should_be_last) {
            err << "R last flag mismatch on tag " << e.tag << " (beat "
                << head.beatsSeen << "/" << head.beatsExpected << ")";
            return err.str();
        }
        if (e.last)
            q.pop_front();
        break;
      }
      case AxiChannel::W: {
        bool found = false;
        for (auto &[id, q] : _writes) {
            for (auto &o : q) {
                if (o.tag == e.tag && o.beatsSeen < o.beatsExpected) {
                    ++o.beatsSeen;
                    const bool last = o.beatsSeen == o.beatsExpected;
                    if (e.last != last) {
                        err << "W last flag mismatch on tag " << e.tag;
                        return err.str();
                    }
                    if (last)
                        _writeDataDone[e.tag] = true;
                    found = true;
                    break;
                }
            }
            if (found)
                break;
        }
        if (!found) {
            err << "W beat with tag " << e.tag
                << " matches no outstanding write";
            return err.str();
        }
        break;
      }
      case AxiChannel::B: {
        auto &q = _writes[e.id];
        if (q.empty()) {
            err << "B response for id " << e.id
                << " with no outstanding write";
            return err.str();
        }
        if (q.front().tag != e.tag) {
            err << "B response tag " << e.tag << " on id " << e.id
                << " violates same-ID ordering";
            return err.str();
        }
        auto it = _writeDataDone.find(e.tag);
        if (it == _writeDataDone.end() || !it->second) {
            err << "B response before final W beat on tag " << e.tag;
            return err.str();
        }
        q.pop_front();
        _writeDataDone.erase(it);
        break;
      }
    }
    return "";
}

std::size_t
LiveAxiChecker::outstandingReads() const
{
    std::size_t n = 0;
    for (const auto &[id, q] : _reads)
        n += q.size();
    return n;
}

std::size_t
LiveAxiChecker::outstandingWrites() const
{
    std::size_t n = 0;
    for (const auto &[id, q] : _writes)
        n += q.size();
    return n;
}

bool
LiveAxiChecker::quiescent() const
{
    return outstandingReads() == 0 && outstandingWrites() == 0;
}

// --- SocInvariants ----------------------------------------------------

SocInvariants::SocInvariants(AcceleratorSoc &soc) : _soc(soc)
{
    _axi.setIdBounds(soc.readIdsInUse(), soc.writeIdsInUse());
    _timelineToken = soc.dram().timeline().addObserver(
        [this](const AxiEvent &e) { onAxiEvent(e); });
    soc.mmio().onCommand(
        [this](const RoccCommand &cmd) { onCommand(cmd); });
    soc.mmio().onResponse(
        [this](const RoccResponse &resp) { onResponse(resp); });
    soc.sim().registerInvariant(this);
}

SocInvariants::~SocInvariants()
{
    _soc.dram().timeline().removeObserver(_timelineToken);
    _soc.mmio().onCommand(nullptr);
    _soc.mmio().onResponse(nullptr);
    _soc.sim().unregisterInvariant(this);
}

void
SocInvariants::violation(const std::string &what)
{
    const Cycle cycle = _soc.sim().cycle();
    std::cerr << "=== invariant violation at cycle "
              << static_cast<unsigned long long>(cycle) << ": " << what
              << " ===\n";
    _soc.sim().dumpHangDiagnostics(std::cerr);
    fatal("invariant violation at cycle %llu: %s",
          static_cast<unsigned long long>(cycle), what.c_str());
}

void
SocInvariants::onAxiEvent(const AxiEvent &e)
{
    const std::string err = _axi.observe(e);
    if (!err.empty())
        violation("AXI protocol: " + err);
}

void
SocInvariants::onCommand(const RoccCommand &cmd)
{
    ++_cmdBeatsSeen;
    if (!cmd.xd())
        return;
    ++_xdSeen;
    ++_ledger[routingKey(cmd.systemId(), cmd.coreId(), cmd.rd())];
}

void
SocInvariants::onResponse(const RoccResponse &resp)
{
    ++_respsSeen;
    const u64 key = routingKey(resp.systemId, resp.coreId, resp.rd);
    auto it = _ledger.find(key);
    if (it == _ledger.end() || it->second <= 0) {
        std::ostringstream what;
        what << "response for system " << resp.systemId << " core "
             << resp.coreId << " rd " << resp.rd
             << " with no matching xd command beat";
        violation(what.str());
    }
    if (--it->second == 0)
        _ledger.erase(it);
}

void
SocInvariants::check(Cycle)
{
    // Event-time hooks enforce the per-event rules; this periodic pass
    // cross-checks the cumulative ledgers for drift.
    if (_respsSeen > _xdSeen) {
        std::ostringstream what;
        what << "response count " << _respsSeen
             << " exceeds xd command beats " << _xdSeen;
        violation(what.str());
    }
    for (const auto &[key, balance] : _ledger) {
        if (balance < 0) {
            std::ostringstream what;
            what << "negative response balance " << balance
                 << " for routing key 0x" << std::hex << key;
            violation(what.str());
        }
    }
}

void
SocInvariants::checkFinal()
{
    check(_soc.sim().cycle());
    if (!_axi.quiescent()) {
        std::ostringstream what;
        what << "AXI not quiescent at end of workload: "
             << _axi.outstandingReads() << " reads / "
             << _axi.outstandingWrites() << " writes outstanding";
        violation(what.str());
    }
    const std::size_t occ = _soc.nocOccupancy();
    if (occ != 0) {
        std::ostringstream what;
        what << "NoC fabric holds " << occ
             << " flits at end of workload (flit conservation)";
        violation(what.str());
    }
    if (!_ledger.empty()) {
        std::ostringstream what;
        what << _ledger.size()
             << " routing keys still await responses at end of workload";
        violation(what.str());
    }
}

} // namespace beethoven
