#include "verify/fuzz_cores.h"

namespace beethoven::verify
{

SpadLoopbackCore::SpadLoopbackCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _writer(getWriterModule("loop_out")),
      _spad(getScratchpad("loop_spad"))
{}

AcceleratorSystemConfig
SpadLoopbackCore::systemConfig(unsigned n_cores, const Variant &variant,
                               unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "SpadLoopbackSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<SpadLoopbackCore>(ctx);
    };

    WriteChannelConfig wr;
    wr.name = "loop_out";
    wr.dataBytes = 4;
    wr.burstBeats = variant.burstBeats;
    wr.maxInflight = variant.maxInflight;
    wr.useTlp = variant.useTlp;
    sys.writeChannels.push_back(wr);

    ScratchpadConfig sp;
    sp.name = "loop_spad";
    sp.dataWidthBits = 32;
    sp.nDatas = variant.spadRows;
    sp.nPorts = 1;
    sp.latency = variant.spadLatency;
    sp.supportsInit = true;
    sys.scratchpads.push_back(sp);

    sys.commands.push_back(CommandSpec(
        "spad_copy",
        {CommandField::address("src", addr_bits),
         CommandField::address("dst", addr_bits),
         CommandField::uint("n_words", 16)},
        /*resp_bits=*/0));

    // Control FSM plus a row counter pair; the memory dominates.
    sys.kernelResources.lut = 400;
    sys.kernelResources.ff = 500;
    sys.kernelResources.clb = 70;
    return sys;
}

void
SpadLoopbackCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _words = static_cast<u32>(_cmd.args[argWords]);
        beethoven_assert(_words > 0 &&
                             _words <= _spad.params().nDatas,
                         "spad_copy: n_words=%u exceeds scratchpad "
                         "depth %u",
                         _words, _spad.params().nDatas);
        // Hold the decoded command in Launch until both ports accept
        // it — polling again in Idle would drop it (the lesson of
        // MemcpyCore's Launch state).
        _state = State::Launch;
        [[fallthrough]];
      }
      case State::Launch: {
        if (!_spad.initPort().canPush() || !_writer.cmdPort().canPush())
            return;
        _spad.initPort().push({_cmd.args[argSrc], 0, _words});
        _writer.cmdPort().push(
            {_cmd.args[argDst], u64(_words) * sizeof(u32)});
        _reqRow = 0;
        _respRow = 0;
        _state = State::Init;
        return;
      }
      case State::Init: {
        if (_spad.initDonePort().canPop()) {
            _spad.initDonePort().pop();
            _state = State::Drain;
        }
        return;
      }
      case State::Drain: {
        if (_reqRow < _words && _spad.reqPort(0).canPush()) {
            SpadRequest req;
            req.row = _reqRow;
            _spad.reqPort(0).push(req);
            ++_reqRow;
        }
        if (_spad.respPort(0).canPop() && _writer.dataPort().canPush()) {
            SpadResponse resp = _spad.respPort(0).pop();
            StreamWord w;
            w.data = resp.data;
            _writer.dataPort().push(std::move(w));
            if (++_respRow == _words)
                _state = State::WaitWriter;
        }
        return;
      }
      case State::WaitWriter: {
        if (_writer.donePort().canPop()) {
            _writer.donePort().pop();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

} // namespace beethoven::verify
