/**
 * @file
 * Device-topology-aware tree networks.
 *
 * Beethoven "constructs a subnetwork for endpoints on the same SLR and
 * then connects these subnetworks with appropriate buffering to account
 * for the high cross-SLR delays. Each subnetwork is itself a tree
 * structure where the internal nodes are buffers." (Section II-B.)
 *
 * MuxTree aggregates many producer endpoints toward one consumer (the
 * memory controller's AR/W ports, the host's response port); DemuxTree
 * distributes one producer's flits to many endpoints (R/B data return,
 * command delivery). Every internal node moves at most one flit per
 * cycle, so bandwidth contention and tree depth latency are emergent
 * rather than scripted. Fan-out and crossing latency are platform
 * elaboration knobs (Section II-B, "Platform Development").
 */

#ifndef BEETHOVEN_NOC_TREE_H
#define BEETHOVEN_NOC_TREE_H

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/log.h"
#include "base/stats.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

/** Elaboration knobs for tree networks. */
struct NocParams
{
    unsigned fanout = 4;              ///< max children per tree node
    unsigned slrCrossingLatency = 4;  ///< extra buffering on crossings
    std::size_t queueDepth = 2;       ///< per-link queue depth
};

/** Default lock policy: every flit arbitrates independently. */
template <typename F>
struct NoLock
{
    unsigned operator()(const F &) const { return 0; }
};

/**
 * Round-robin arbiter moving one flit per cycle from its inputs to a
 * single output, with optional burst locking: when the lock policy
 * returns N > 0 for a forwarded flit, the next N flits are taken from
 * the same input (used to keep AXI write bursts contiguous).
 */
template <typename F, typename Lock = NoLock<F>>
class MuxNode : public Module
{
  public:
    MuxNode(Simulator &sim, std::string name, TimedQueue<F> *out,
            Lock lock = Lock{})
        : Module(sim, std::move(name)), _out(out), _lock(std::move(lock)),
          _stall(sim, Module::name())
    {
        declareRole("noc-mux");
        declareSleepable();
        _out->setWakeOnPop(this);
    }

    void
    addInput(TimedQueue<F> *in)
    {
        in->setWakeOnPush(this);
        _inputs.push_back(in);
    }

    std::size_t numInputs() const { return _inputs.size(); }

    void
    tick() override
    {
        if (!_out->canPush()) {
            // Backpressured: the link below us is the bottleneck iff we
            // actually had a flit to forward.
            bool pending = false;
            if (_lockRemaining > 0) {
                pending = _inputs[_lockedInput]->canPop();
            } else {
                for (TimedQueue<F> *in : _inputs) {
                    if (in->canPop()) {
                        pending = true;
                        break;
                    }
                }
            }
            settle(pending ? StallClass::StallDownstream
                           : StallClass::Idle);
            return;
        }
        if (_lockRemaining > 0) {
            TimedQueue<F> *in = _inputs[_lockedInput];
            if (in->canPop()) {
                _out->push(in->pop());
                --_lockRemaining;
                ++_flits;
                _stall.account(StallClass::Busy);
            } else {
                // Mid-burst valid-wait on the locked input.
                settle(StallClass::StallUpstream);
            }
            return;
        }
        const std::size_t n = _inputs.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = (_rr + i) % n;
            TimedQueue<F> *in = _inputs[j];
            if (!in->canPop())
                continue;
            F flit = in->pop();
            const unsigned lock_beats = _lock(flit);
            _out->push(std::move(flit));
            ++_flits;
            if (lock_beats > 0) {
                _lockRemaining = lock_beats;
                _lockedInput = j;
            } else {
                _rr = j + 1;
            }
            _stall.account(StallClass::Busy);
            return;
        }
        settle(StallClass::Idle);
    }

    /** Flits this node has forwarded (local to the node's shard). */
    double flits() const { return _flits; }

  private:
    /**
     * Non-forwarding cycle: every way out of this state is a queue
     * event on a wired input or the output, so quiesce until one fires.
     */
    void
    settle(StallClass c)
    {
        _stall.account(c);
        sleepWith(_stall, c);
    }

    std::vector<TimedQueue<F> *> _inputs;
    TimedQueue<F> *_out;
    Lock _lock;
    /** Node-local forwarded-flit count; the tree folds node counts
     *  into its published scalar at stat publication, so no counter
     *  is ever written from two execution groups. */
    double _flits = 0.0;
    StallAccount _stall;
    std::size_t _rr = 0;
    unsigned _lockRemaining = 0;
    std::size_t _lockedInput = 0;
};

/**
 * Routes one input stream to many outputs, one flit per cycle, by a
 * routing key (global endpoint index) computed from each flit.
 */
template <typename F>
class DemuxNode : public Module
{
  public:
    using KeyFn = std::function<std::size_t(const F &)>;

    DemuxNode(Simulator &sim, std::string name, TimedQueue<F> *in,
              KeyFn key)
        : Module(sim, std::move(name)), _in(in), _key(std::move(key)),
          _stall(sim, Module::name())
    {
        declareRole("noc-demux");
        declareSleepable();
        _in->setWakeOnPush(this);
    }

    /** Declare that endpoint @p endpoint is reached through @p out. */
    void
    addRoute(std::size_t endpoint, TimedQueue<F> *out)
    {
        out->setWakeOnPop(this);
        _routes[endpoint] = out;
    }

    void
    tick() override
    {
        if (!_in->canPop()) {
            _stall.account(StallClass::Idle);
            sleepWith(_stall, StallClass::Idle);
            return;
        }
        const std::size_t key = _key(_in->front());
        auto it = _routes.find(key);
        beethoven_assert(it != _routes.end(),
                         "no route for endpoint %zu at %s", key,
                         name().c_str());
        if (it->second->canPush()) {
            it->second->push(_in->pop());
            ++_flits;
            _stall.account(StallClass::Busy);
        } else {
            _stall.account(StallClass::StallDownstream);
            sleepWith(_stall, StallClass::StallDownstream);
        }
    }

    /** Flits this node has forwarded (local to the node's shard). */
    double flits() const { return _flits; }

  private:
    TimedQueue<F> *_in;
    KeyFn _key;
    /** Node-local forwarded-flit count; folded at stat publication. */
    double _flits = 0.0;
    StallAccount _stall;
    std::map<std::size_t, TimedQueue<F> *> _routes;
};

/** Moves one flit per cycle between two queues (a register slice). */
template <typename F>
class QueuePump : public Module
{
  public:
    QueuePump(Simulator &sim, std::string name, TimedQueue<F> *src,
              TimedQueue<F> *dst)
        : Module(sim, std::move(name)), _src(src), _dst(dst),
          _stall(sim, Module::name())
    {
        declareRole("pump");
        declareSleepable();
        _src->setWakeOnPush(this);
        _dst->setWakeOnPop(this);
    }

    void
    tick() override
    {
        if (_src->canPop() && _dst->canPush()) {
            _dst->push(_src->pop());
            _stall.account(StallClass::Busy);
        } else if (_src->canPop()) {
            _stall.account(StallClass::StallDownstream);
            sleepWith(_stall, StallClass::StallDownstream);
        } else {
            _stall.account(StallClass::Idle);
            sleepWith(_stall, StallClass::Idle);
        }
    }

  private:
    TimedQueue<F> *_src;
    TimedQueue<F> *_dst;
    StallAccount _stall;
};

/** Construction summary, used for interconnect resource estimation. */
struct TreeStats
{
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t slrCrossings = 0;
};

/**
 * A many-to-one aggregation tree with per-SLR subtrees.
 *
 * Producers push into endpointPort(i); flits pop out of the consumer
 * queue passed at construction.
 */
template <typename F, typename Lock = NoLock<F>>
class MuxTree
{
  public:
    /**
     * @param endpoint_slr  SLR index of each endpoint, in endpoint order
     * @param root_slr      SLR where the consumer (e.g. DDR port) lives
     * @param out           consumer queue the tree root feeds
     */
    MuxTree(Simulator &sim, const std::string &name,
            const std::vector<unsigned> &endpoint_slr, unsigned root_slr,
            const NocParams &params, TimedQueue<F> *out,
            Lock lock = Lock{})
    {
        beethoven_assert(!endpoint_slr.empty(),
                         "MuxTree %s with no endpoints", name.c_str());
        _endpointQueues.resize(endpoint_slr.size());
        _flits = &sim.stats().groupByPath(name).scalar("flits");

        // Group endpoints by SLR.
        std::map<unsigned, std::vector<std::size_t>> by_slr;
        for (std::size_t i = 0; i < endpoint_slr.size(); ++i)
            by_slr[endpoint_slr[i]].push_back(i);

        auto *root = makeNode(sim, name + ".root", out, lock, root_slr,
                              /*is_root=*/true);
        for (auto &[slr, endpoints] : by_slr) {
            // The SLR subtree feeds the root through a link that models
            // the SLR-crossing buffers when slr != root_slr. Crossing
            // buffers are pipelined register chains, so the link must
            // hold at least `latency` flits in flight or it would
            // throttle bandwidth to depth/latency.
            const unsigned link_latency =
                slr == root_slr ? 1 : params.slrCrossingLatency;
            auto *link = makeQueue(
                sim, name + ".slr" + std::to_string(slr) + ".link",
                std::max<std::size_t>(params.queueDepth,
                                      link_latency + 1),
                link_latency);
            if (slr != root_slr)
                ++_stats.slrCrossings;
            root->addInput(link);
            buildSubtree(sim, name + ".slr" + std::to_string(slr),
                         endpoints, params, link, lock, slr);
        }
        // Fold node-local counters into the published scalar whenever
        // stats are emitted; exact because the locals hold integers.
        sim.addStatFolder([this] { _flits->set(flits()); });
        registerFlitCounterState(sim, name);
    }

    /** The queue endpoint @p idx pushes its flits into. */
    TimedQueue<F> &
    endpointPort(std::size_t idx)
    {
        beethoven_assert(idx < _endpointQueues.size(),
                         "endpoint index %zu out of range", idx);
        return *_endpointQueues[idx];
    }

    /** Cumulative node-hops forwarded through this tree. */
    double
    flits() const
    {
        double total = 0.0;
        for (const auto &n : _nodes)
            total += n->flits();
        return total;
    }

    const TreeStats &stats() const { return _stats; }

    /** Flits currently buffered in the tree's internal links. */
    std::size_t
    occupancy() const
    {
        std::size_t total = 0;
        for (const auto &q : _queues)
            total += q->occupancy();
        return total;
    }

    /** Visit each internal link as (name, current occupancy). */
    void
    visitLinkOccupancy(
        const std::function<void(const std::string &, std::size_t)> &fn)
        const
    {
        for (std::size_t i = 0; i < _queues.size(); ++i)
            fn(_linkNames[i], _queues[i]->occupancy());
    }

    /**
     * Visit each internal node as (module, SLR, is_root). The root
     * lives on the consumer's SLR; the shard-readiness audit uses this
     * to place tree nodes in the candidate partition.
     */
    void
    visitNodes(const std::function<void(Module &, unsigned, bool)> &fn)
        const
    {
        for (const NodeInfo &info : _nodeInfos)
            fn(*info.module, info.slr, info.isRoot);
    }

  private:
    struct NodeInfo
    {
        Module *module;
        unsigned slr;
        bool isRoot;
    };

    /** Note the tree-wide flits counter as cross-node shared state. */
    void
    registerFlitCounterState(Simulator &sim, const std::string &name)
    {
        SimGraphRecord::SharedState st;
        st.name = name + ".flits";
        st.kind = "stat";
        st.site = std::source_location::current();
        for (const NodeInfo &info : _nodeInfos)
            st.accessors.push_back(info.module);
        st.resolution =
            "nodes increment node-local counters; a stat folder sums "
            "them into the published scalar at stat publication";
        sim.graphRecord().addSharedState(std::move(st));
    }

    MuxNode<F, Lock> *
    makeNode(Simulator &sim, const std::string &name, TimedQueue<F> *out,
             const Lock &lock, unsigned slr, bool is_root)
    {
        _nodes.push_back(std::make_unique<MuxNode<F, Lock>>(
            sim, name, out, lock));
        _nodeInfos.push_back(NodeInfo{_nodes.back().get(), slr, is_root});
        ++_stats.nodes;
        return _nodes.back().get();
    }

    TimedQueue<F> *
    makeQueue(Simulator &sim, const std::string &name, std::size_t depth,
              unsigned latency)
    {
        _queues.push_back(
            std::make_unique<TimedQueue<F>>(sim, depth, latency));
        _linkNames.push_back(name);
        ++_stats.links;
        return _queues.back().get();
    }

    /** Build a fanout-bounded subtree over @p endpoints feeding @p out. */
    void
    buildSubtree(Simulator &sim, const std::string &name,
                 const std::vector<std::size_t> &endpoints,
                 const NocParams &params, TimedQueue<F> *out,
                 const Lock &lock, unsigned slr)
    {
        auto *node = makeNode(sim, name, out, lock, slr,
                              /*is_root=*/false);
        if (endpoints.size() <= params.fanout) {
            for (std::size_t e : endpoints) {
                auto *q = makeQueue(
                    sim, name + ".ep" + std::to_string(e),
                    params.queueDepth, 1);
                node->addInput(q);
                _endpointQueues[e] = q;
            }
            return;
        }
        // Split endpoints into fanout groups, each a child subtree.
        const std::size_t groups = params.fanout;
        const std::size_t per =
            (endpoints.size() + groups - 1) / groups;
        for (std::size_t g = 0; g * per < endpoints.size(); ++g) {
            std::vector<std::size_t> sub(
                endpoints.begin() + g * per,
                endpoints.begin() +
                    std::min(endpoints.size(), (g + 1) * per));
            auto *q = makeQueue(
                sim, name + "." + std::to_string(g) + ".link",
                params.queueDepth, 1);
            node->addInput(q);
            buildSubtree(sim, name + "." + std::to_string(g), sub,
                         params, q, lock, slr);
        }
    }

    std::vector<std::unique_ptr<MuxNode<F, Lock>>> _nodes;
    std::vector<NodeInfo> _nodeInfos; ///< parallel to _nodes
    std::vector<std::unique_ptr<TimedQueue<F>>> _queues;
    std::vector<std::string> _linkNames; ///< parallel to _queues
    std::vector<TimedQueue<F> *> _endpointQueues;
    StatScalar *_flits = nullptr;
    TreeStats _stats;
};

/**
 * A one-to-many distribution tree with per-SLR subtrees.
 *
 * The producer pushes into rootPort(); endpoint @p i pops from
 * endpointPort(i). Flits are routed by the key function, which must
 * return the global endpoint index.
 */
template <typename F>
class DemuxTree
{
  public:
    using KeyFn = std::function<std::size_t(const F &)>;

    DemuxTree(Simulator &sim, const std::string &name,
              const std::vector<unsigned> &endpoint_slr,
              unsigned root_slr, const NocParams &params, KeyFn key)
        : _key(std::move(key))
    {
        beethoven_assert(!endpoint_slr.empty(),
                         "DemuxTree %s with no endpoints", name.c_str());
        _endpointQueues.resize(endpoint_slr.size());
        _flits = &sim.stats().groupByPath(name).scalar("flits");
        _rootQueue = makeQueue(sim, name + ".rootq", params.queueDepth, 1);

        std::map<unsigned, std::vector<std::size_t>> by_slr;
        for (std::size_t i = 0; i < endpoint_slr.size(); ++i)
            by_slr[endpoint_slr[i]].push_back(i);

        auto *root = makeNode(sim, name + ".root", _rootQueue, root_slr,
                              /*is_root=*/true);
        for (auto &[slr, endpoints] : by_slr) {
            const unsigned link_latency =
                slr == root_slr ? 1 : params.slrCrossingLatency;
            // Pipelined crossing: depth must cover the latency.
            auto *link = makeQueue(
                sim, name + ".slr" + std::to_string(slr) + ".link",
                std::max<std::size_t>(params.queueDepth,
                                      link_latency + 1),
                link_latency);
            if (slr != root_slr)
                ++_stats.slrCrossings;
            for (std::size_t e : endpoints)
                root->addRoute(e, link);
            buildSubtree(sim, name + ".slr" + std::to_string(slr),
                         endpoints, params, link, slr);
        }
        // Fold node-local counters into the published scalar whenever
        // stats are emitted; exact because the locals hold integers.
        sim.addStatFolder([this] { _flits->set(flits()); });
        registerFlitCounterState(sim, name);
    }

    TimedQueue<F> &rootPort() { return *_rootQueue; }

    TimedQueue<F> &
    endpointPort(std::size_t idx)
    {
        beethoven_assert(idx < _endpointQueues.size(),
                         "endpoint index %zu out of range", idx);
        return *_endpointQueues[idx];
    }

    /** Cumulative node-hops forwarded through this tree. */
    double
    flits() const
    {
        double total = 0.0;
        for (const auto &n : _nodes)
            total += n->flits();
        return total;
    }

    const TreeStats &stats() const { return _stats; }

    /** Flits currently buffered in the tree's internal links. */
    std::size_t
    occupancy() const
    {
        std::size_t total = 0;
        for (const auto &q : _queues)
            total += q->occupancy();
        return total;
    }

    /** Visit each internal link as (name, current occupancy). */
    void
    visitLinkOccupancy(
        const std::function<void(const std::string &, std::size_t)> &fn)
        const
    {
        for (std::size_t i = 0; i < _queues.size(); ++i)
            fn(_linkNames[i], _queues[i]->occupancy());
    }

    /** Visit each internal node as (module, SLR, is_root). */
    void
    visitNodes(const std::function<void(Module &, unsigned, bool)> &fn)
        const
    {
        for (const NodeInfo &info : _nodeInfos)
            fn(*info.module, info.slr, info.isRoot);
    }

  private:
    struct NodeInfo
    {
        Module *module;
        unsigned slr;
        bool isRoot;
    };

    /** Note the tree-wide flits counter as cross-node shared state. */
    void
    registerFlitCounterState(Simulator &sim, const std::string &name)
    {
        SimGraphRecord::SharedState st;
        st.name = name + ".flits";
        st.kind = "stat";
        st.site = std::source_location::current();
        for (const NodeInfo &info : _nodeInfos)
            st.accessors.push_back(info.module);
        st.resolution =
            "nodes increment node-local counters; a stat folder sums "
            "them into the published scalar at stat publication";
        sim.graphRecord().addSharedState(std::move(st));
    }

    DemuxNode<F> *
    makeNode(Simulator &sim, const std::string &name, TimedQueue<F> *in,
             unsigned slr, bool is_root)
    {
        _nodes.push_back(
            std::make_unique<DemuxNode<F>>(sim, name, in, _key));
        _nodeInfos.push_back(NodeInfo{_nodes.back().get(), slr, is_root});
        ++_stats.nodes;
        return _nodes.back().get();
    }

    TimedQueue<F> *
    makeQueue(Simulator &sim, const std::string &name, std::size_t depth,
              unsigned latency)
    {
        _queues.push_back(
            std::make_unique<TimedQueue<F>>(sim, depth, latency));
        _linkNames.push_back(name);
        ++_stats.links;
        return _queues.back().get();
    }

    void
    buildSubtree(Simulator &sim, const std::string &name,
                 const std::vector<std::size_t> &endpoints,
                 const NocParams &params, TimedQueue<F> *in, unsigned slr)
    {
        auto *node = makeNode(sim, name, in, slr, /*is_root=*/false);
        if (endpoints.size() <= params.fanout) {
            for (std::size_t e : endpoints) {
                auto *q = makeQueue(
                    sim, name + ".ep" + std::to_string(e),
                    params.queueDepth, 1);
                node->addRoute(e, q);
                _endpointQueues[e] = q;
            }
            return;
        }
        const std::size_t groups = params.fanout;
        const std::size_t per =
            (endpoints.size() + groups - 1) / groups;
        for (std::size_t g = 0; g * per < endpoints.size(); ++g) {
            std::vector<std::size_t> sub(
                endpoints.begin() + g * per,
                endpoints.begin() +
                    std::min(endpoints.size(), (g + 1) * per));
            auto *q = makeQueue(
                sim, name + "." + std::to_string(g) + ".link",
                params.queueDepth, 1);
            for (std::size_t e : sub)
                node->addRoute(e, q);
            buildSubtree(sim, name + "." + std::to_string(g), sub,
                         params, q, slr);
        }
    }

    KeyFn _key;
    TimedQueue<F> *_rootQueue = nullptr;
    std::vector<std::unique_ptr<DemuxNode<F>>> _nodes;
    std::vector<NodeInfo> _nodeInfos; ///< parallel to _nodes
    std::vector<std::unique_ptr<TimedQueue<F>>> _queues;
    std::vector<std::string> _linkNames; ///< parallel to _queues
    std::vector<TimedQueue<F> *> _endpointQueues;
    StatScalar *_flits = nullptr;
    TreeStats _stats;
};

} // namespace beethoven

#endif // BEETHOVEN_NOC_TREE_H
