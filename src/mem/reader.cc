#include "mem/reader.h"

#include <algorithm>

#include "base/bits.h"
#include "base/log.h"
#include "trace/trace.h"

namespace beethoven
{

Reader::Reader(Simulator &sim, std::string name,
               const ReaderParams &params, const AxiConfig &bus,
               u32 id_base, TimedQueue<ReadRequest> *ar_out,
               TimedQueue<ReadBeat> *r_in)
    : Module(sim, std::move(name)),
      _params(params),
      _bus(bus),
      _idBase(id_base),
      _arOut(ar_out),
      _rIn(r_in),
      _cmdQ(sim, params.cmdQueueDepth),
      _dataQ(sim, params.dataQueueDepth),
      _stall(sim, Module::name())
{
    beethoven_assert(params.dataBytes > 0, "reader port width 0");
    beethoven_assert(params.burstBeats >= 1 &&
                         params.burstBeats <= bus.maxBurstBeats,
                     "reader burst length %u exceeds bus limit %u",
                     params.burstBeats, bus.maxBurstBeats);
    StatGroup &g = sim.stats().group(Module::name());
    _statBytesRead = &g.scalar("bytesRead");
    _statTxns = &g.scalar("transactions");
    _streamCycles = &g.histogram("streamCycles");
    _streamCycles->configure(64, 64.0);
    declareRole("reader");
    declareSleepable();
    // Event-kernel wiring: every condition a blocked tick waits on is
    // a queue event on one of these four ports.
    _cmdQ.setWakeOnPush(this);
    _dataQ.setWakeOnPop(this);
    _arOut->setWakeOnPop(this);
    _rIn->setWakeOnPush(this);
}

bool
Reader::idle() const
{
    return !_active && _cmdQ.occupancy() == 0;
}

void
Reader::tick()
{
    bool did = false;
    if (!_active)
        did |= startNextCommand();
    if (issueRequests())
        did = true;
    if (receiveBeats())
        did = true;
    if (drainToCore())
        did = true;
    if (did) {
        _stall.account(StallClass::Busy);
        return;
    }
    StallClass c = StallClass::StallMem;
    if (!_active) {
        // Command queued but not yet visible counts as valid-wait.
        c = _cmdQ.occupancy() > 0 ? StallClass::StallUpstream
                                  : StallClass::StallCmd;
    } else if (!_dataQ.canPush() ||
               (_reqBytesLeft > 0 && !_arOut->canPush())) {
        c = StallClass::StallDownstream;
    }
    _stall.account(c);
    sleepWith(_stall, c);
}

bool
Reader::startNextCommand()
{
    if (!_cmdQ.canPop())
        return false;
    const StreamCommand cmd = _cmdQ.pop();
    if (cmd.lenBytes == 0)
        return true; // zero-length streams complete immediately
    if (cmd.addr % _params.dataBytes != 0 ||
        cmd.lenBytes % _params.dataBytes != 0) {
        fatal("reader %s: stream [0x%llx, +%llu) not aligned to the "
              "%u-byte port width",
              name().c_str(),
              static_cast<unsigned long long>(cmd.addr),
              static_cast<unsigned long long>(cmd.lenBytes),
              _params.dataBytes);
    }
    _active = true;
    _reqAddr = cmd.addr;
    _reqBytesLeft = cmd.lenBytes;
    _drainBytesLeft = cmd.lenBytes;
    _streamStart = sim().cycle();
    _streamBytes = cmd.lenBytes;
    return true;
}

bool
Reader::issueRequests()
{
    if (!_active || _reqBytesLeft == 0 || !_arOut->canPush())
        return false;
    if (_txns.size() >= _params.maxInflight)
        return false;

    // Prefetch-buffer capacity: beats held on chip across all inflight
    // transactions. Reserved at issue, released as the core drains.
    const std::size_t buffer_beats =
        static_cast<std::size_t>(_params.maxInflight) *
        _params.burstBeats;

    const Addr beat_addr = (_reqAddr / _bus.dataBytes) * _bus.dataBytes;
    const u64 offset = _reqAddr - beat_addr;
    const u64 max_bytes =
        u64(_params.burstBeats) * _bus.dataBytes - offset;
    const u64 txn_bytes = std::min<u64>(_reqBytesLeft, max_bytes);
    const u32 beats = static_cast<u32>(
        divCeil(offset + txn_bytes, _bus.dataBytes));

    if (_reservedBeats + beats > buffer_beats)
        return false;

    ReadRequest req;
    req.id = _idBase +
             static_cast<u32>(_params.useTlp
                                  ? _txnSeq % _params.maxInflight
                                  : 0);
    req.addr = beat_addr;
    req.beats = beats;
    req.tag = nextGlobalTag();
    _arOut->push(req);

    Txn txn;
    txn.tag = req.tag;
    txn.beats = beats;
    txn.startByte = static_cast<u32>(offset);
    txn.validBytes = txn_bytes;
    txn.bytes.reserve(static_cast<std::size_t>(beats) * _bus.dataBytes);
    _txns.push_back(std::move(txn));
    _reservedBeats += beats;

    _reqAddr += txn_bytes;
    _reqBytesLeft -= txn_bytes;
    ++_txnSeq;
    ++*_statTxns;
    return true;
}

bool
Reader::receiveBeats()
{
    if (!_rIn->canPop())
        return false;
    ReadBeat beat = _rIn->pop();
    for (auto &txn : _txns) {
        if (txn.tag == beat.tag) {
            txn.bytes.insert(txn.bytes.end(), beat.data.begin(),
                             beat.data.end());
            return true;
        }
    }
    panic("reader %s received beat for unknown tag %llu", name().c_str(),
          static_cast<unsigned long long>(beat.tag));
    return false;
}

bool
Reader::drainToCore()
{
    if (!_dataQ.canPush())
        return false;
    // Pull bytes from the front (oldest-address) transaction into the
    // width-converter stage until one port word is complete.
    while (_wordStage.size() < _params.dataBytes) {
        if (_txns.empty())
            return false;
        Txn &txn = _txns.front();
        const u64 avail_end =
            std::min<u64>(txn.bytes.size() > txn.startByte
                              ? txn.bytes.size() - txn.startByte
                              : 0,
                          txn.validBytes);
        if (txn.drained >= avail_end)
            return false; // waiting on more beats for the front txn
        const u64 want = _params.dataBytes - _wordStage.size();
        const u64 take = std::min<u64>(want, avail_end - txn.drained);
        const u8 *src = txn.bytes.data() + txn.startByte + txn.drained;
        _wordStage.insert(_wordStage.end(), src, src + take);
        txn.drained += take;
        if (txn.drained == txn.validBytes &&
            txn.bytes.size() ==
                static_cast<std::size_t>(txn.beats) * _bus.dataBytes) {
            _reservedBeats -= txn.beats;
            _txns.pop_front();
        }
    }

    StreamWord word;
    word.data = std::move(_wordStage);
    _wordStage.clear();
    _dataQ.push(std::move(word));
    *_statBytesRead += _params.dataBytes;
    _drainBytesLeft -= _params.dataBytes;
    if (_drainBytesLeft == 0) {
        _active = false;
        const Cycle now = sim().cycle();
        _streamCycles->sample(static_cast<double>(now - _streamStart));
        if (TraceSink *ts = sim().trace()) {
            ts->span("mem", "read-stream", name(), _streamStart, now,
                     {{"bytes", _streamBytes}});
        }
    }
    return true;
}

} // namespace beethoven
