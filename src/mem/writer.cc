#include "mem/writer.h"

#include <algorithm>

#include "base/bits.h"
#include "base/log.h"
#include "trace/trace.h"

namespace beethoven
{

Writer::Writer(Simulator &sim, std::string name,
               const WriterParams &params, const AxiConfig &bus,
               u32 id_base, TimedQueue<WriteFlit> *w_out,
               TimedQueue<WriteResponse> *b_in)
    : Module(sim, std::move(name)),
      _params(params),
      _bus(bus),
      _idBase(id_base),
      _wOut(w_out),
      _bIn(b_in),
      _cmdQ(sim, params.cmdQueueDepth),
      _dataQ(sim, params.dataQueueDepth),
      _doneQ(sim, params.doneQueueDepth),
      _stall(sim, Module::name())
{
    beethoven_assert(params.dataBytes > 0, "writer port width 0");
    beethoven_assert(params.burstBeats >= 1 &&
                         params.burstBeats <= bus.maxBurstBeats,
                     "writer burst length %u exceeds bus limit %u",
                     params.burstBeats, bus.maxBurstBeats);
    StatGroup &g = sim.stats().group(Module::name());
    _statBytesWritten = &g.scalar("bytesWritten");
    _statTxns = &g.scalar("transactions");
    _streamCycles = &g.histogram("streamCycles");
    _streamCycles->configure(64, 64.0);
    declareRole("writer");
    declareSleepable();
    // Event-kernel wiring: every condition a blocked tick waits on is
    // a queue event on one of these five ports.
    _cmdQ.setWakeOnPush(this);
    _dataQ.setWakeOnPush(this);
    _doneQ.setWakeOnPop(this);
    _wOut->setWakeOnPop(this);
    _bIn->setWakeOnPush(this);
}

bool
Writer::idle() const
{
    return !_active && _cmdQ.occupancy() == 0;
}

void
Writer::tick()
{
    bool did = false;
    if (!_active)
        did |= startNextCommand();
    if (acceptWords())
        did = true;
    if (emitFlits())
        did = true;
    if (receiveResponses())
        did = true;
    // Deliver the completion token once every burst has been acked.
    const bool done_ready = _active && _bytesLeft == 0 &&
                            _bytesAcked == _cmdLen && !_open.valid;
    if (done_ready && _doneQ.canPush()) {
        _doneQ.push(StreamDone{_cmdLen});
        _active = false;
        did = true;
        const Cycle now = sim().cycle();
        _streamCycles->sample(static_cast<double>(now - _streamStart));
        if (TraceSink *ts = sim().trace()) {
            ts->span("mem", "write-stream", name(), _streamStart, now,
                     {{"bytes", _cmdLen}});
        }
    }
    if (did) {
        _stall.account(StallClass::Busy);
        return;
    }
    StallClass c = StallClass::StallMem;
    if (!_active) {
        c = _cmdQ.occupancy() > 0 ? StallClass::StallUpstream
                                  : StallClass::StallCmd;
    } else if (done_ready || (_open.valid && !_wOut->canPush())) {
        // Done token or W channel backpressured.
        c = StallClass::StallDownstream;
    } else if (_stagedTotal < _cmdLen && !_dataQ.canPop()) {
        c = StallClass::StallUpstream;
    }
    _stall.account(c);
    sleepWith(_stall, c);
}

bool
Writer::startNextCommand()
{
    if (!_cmdQ.canPop())
        return false;
    const StreamCommand cmd = _cmdQ.pop();
    if (cmd.lenBytes == 0) {
        // A zero-length stream still completes (with an empty token).
        _active = true;
        _cursor = cmd.addr;
        _bytesLeft = 0;
        _bytesAcked = 0;
        _cmdLen = 0;
        _streamStart = sim().cycle();
        return true;
    }
    if (cmd.addr % _params.dataBytes != 0 ||
        cmd.lenBytes % _params.dataBytes != 0) {
        fatal("writer %s: stream [0x%llx, +%llu) not aligned to the "
              "%u-byte port width",
              name().c_str(),
              static_cast<unsigned long long>(cmd.addr),
              static_cast<unsigned long long>(cmd.lenBytes),
              _params.dataBytes);
    }
    _active = true;
    _cursor = cmd.addr;
    _bytesLeft = cmd.lenBytes;
    _bytesAcked = 0;
    _cmdLen = cmd.lenBytes;
    _stagedTotal = 0;
    _streamStart = sim().cycle();
    beethoven_assert(_stage.empty(),
                     "writer %s: stage residue across commands",
                     name().c_str());
    return true;
}

bool
Writer::acceptWords()
{
    // Accept only the current command's bytes; anything further on the
    // port belongs to the next command and must wait (otherwise bytes
    // of back-to-back commands would interleave in the stage).
    if (!_active || _stagedTotal >= _cmdLen || !_dataQ.canPop())
        return false;
    // One port word per cycle (the port is dataBytes wide).
    StreamWord w = _dataQ.pop();
    beethoven_assert(w.data.size() == _params.dataBytes,
                     "writer %s received %zu-byte word on %u-byte port",
                     name().c_str(), w.data.size(), _params.dataBytes);
    _stage.insert(_stage.end(), w.data.begin(), w.data.end());
    _stagedTotal += w.data.size();
    return true;
}

bool
Writer::emitFlits()
{
    bool did = false;
    if (!_active && !_open.valid)
        return false;

    // Open a new burst when the previous one has fully left and the
    // stage holds the burst's bytes (hardware writers gate the AW on
    // having the data to avoid stalling the shared W channel).
    if (!_open.valid && _bytesLeft > 0 &&
        _outstanding.size() < _params.maxInflight) {
        const Addr beat_addr = (_cursor / _bus.dataBytes) * _bus.dataBytes;
        const u64 offset = _cursor - beat_addr;
        const u64 max_bytes =
            u64(_params.burstBeats) * _bus.dataBytes - offset;
        const u64 txn_bytes = std::min<u64>(_bytesLeft, max_bytes);
        if (_stage.size() < txn_bytes)
            return false; // keep staging words from the core
        const u32 beats = static_cast<u32>(
            divCeil(offset + txn_bytes, _bus.dataBytes));

        _open.valid = true;
        _open.headerSent = false;
        _open.nextBeat = 0;
        _open.header.id =
            _idBase + static_cast<u32>(_params.useTlp
                                           ? _txnSeq % _params.maxInflight
                                           : 0);
        _open.header.addr = beat_addr;
        _open.header.beats = beats;
        _open.header.tag = nextGlobalTag();
        _open.beats.assign(beats, WriteBeat{});
        for (u32 b = 0; b < beats; ++b) {
            WriteBeat &beat = _open.beats[b];
            beat.data.assign(_bus.dataBytes, 0);
            beat.strb.assign(_bus.dataBytes, false);
            beat.last = b + 1 == beats;
            const u64 beat_lo = u64(b) * _bus.dataBytes;
            const u64 beat_hi = beat_lo + _bus.dataBytes;
            const u64 valid_lo = std::max<u64>(beat_lo, offset);
            const u64 valid_hi =
                std::min<u64>(beat_hi, offset + txn_bytes);
            for (u64 i = valid_lo; i < valid_hi; ++i) {
                beat.data[i - beat_lo] = _stage[i - offset];
                beat.strb[i - beat_lo] = true;
            }
        }
        _stage.erase(_stage.begin(),
                     _stage.begin() + static_cast<long>(txn_bytes));
        _outstanding.emplace_back(_open.header.tag, txn_bytes);
        _cursor += txn_bytes;
        _bytesLeft -= txn_bytes;
        ++_txnSeq;
        ++*_statTxns;
        did = true;
    }

    if (!_open.valid || !_wOut->canPush())
        return did;

    WriteFlit flit;
    if (!_open.headerSent) {
        flit.hasHeader = true;
        flit.header = _open.header;
        _open.headerSent = true;
    }
    flit.beat = std::move(_open.beats[_open.nextBeat]);
    ++_open.nextBeat;
    *_statBytesWritten += _bus.dataBytes;
    _wOut->push(std::move(flit));
    if (_open.nextBeat == _open.beats.size()) {
        _open.valid = false;
        _open.beats.clear();
    }
    return true;
}

bool
Writer::receiveResponses()
{
    if (!_bIn->canPop())
        return false;
    const WriteResponse resp = _bIn->pop();
    for (auto it = _outstanding.begin(); it != _outstanding.end(); ++it) {
        if (it->first == resp.tag) {
            _bytesAcked += it->second;
            _outstanding.erase(it);
            return true;
        }
    }
    panic("writer %s received B for unknown tag %llu", name().c_str(),
          static_cast<unsigned long long>(resp.tag));
    return false;
}

} // namespace beethoven
