/**
 * @file
 * Scratchpad — Beethoven-managed on-chip memory (Section II-B).
 *
 * "The Scratchpad abstraction is an on-chip memory of the specified
 * size with an initialization routine that uses a Reader to fill the
 * scratchpad with operands from memory."
 *
 * The scratchpad exposes request/response port pairs with configurable
 * read latency, an init command channel that streams rows in from
 * external memory through an internal Reader, and optional
 * intra-core write ports that other cores' IntraCoreMemoryPortOut
 * endpoints feed (Appendix A's IntraCoreMemoryPortIn).
 */

#ifndef BEETHOVEN_MEM_SCRATCHPAD_H
#define BEETHOVEN_MEM_SCRATCHPAD_H

#include <memory>
#include <string>
#include <vector>

#include "mem/reader.h"
#include "mem/stream_types.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

/** User-visible Scratchpad parameters (the ScratchpadConfig knobs). */
struct ScratchpadParams
{
    unsigned dataWidthBits = 32; ///< row width
    unsigned nDatas = 1024;      ///< number of rows
    unsigned nPorts = 1;         ///< request/response port pairs
    unsigned latency = 1;        ///< read latency in cycles
    bool supportsInit = true;    ///< include the init-from-memory path
    std::size_t portQueueDepth = 4;

    unsigned rowBytes() const { return (dataWidthBits + 7) / 8; }
};

/** A port request: read row, or write row with data. */
struct SpadRequest
{
    u32 row = 0;
    bool write = false;
    std::vector<u8> data; ///< rowBytes when write
};

/** A read response. */
struct SpadResponse
{
    u32 row = 0;
    std::vector<u8> data;
};

/** Init command: fill rows [rowOffset, rowOffset+rows) from memAddr. */
struct SpadInitCommand
{
    Addr memAddr = 0;
    u32 rowOffset = 0;
    u32 rows = 0;
};

class Scratchpad : public Module
{
  public:
    /**
     * @param init_reader  internal Reader for the init path (may be
     *                     nullptr when supportsInit is false); owned by
     *                     the caller (elaboration), one per scratchpad
     */
    Scratchpad(Simulator &sim, std::string name,
               const ScratchpadParams &params, Reader *init_reader);

    /** Port @p idx request/response queues. */
    TimedQueue<SpadRequest> &reqPort(unsigned idx);
    TimedQueue<SpadResponse> &respPort(unsigned idx);

    /** Init channel (valid only when supportsInit). */
    TimedQueue<SpadInitCommand> &initPort();
    TimedQueue<StreamDone> &initDonePort();

    /** Add an intra-core write port (returns its queue). */
    TimedQueue<SpadRequest> &addIntraCoreWritePort();

    /** Functional access for testing and host-side checking. */
    std::vector<u8> peek(u32 row) const;
    void poke(u32 row, const std::vector<u8> &data);
    u64 peekUint(u32 row) const;
    void pokeUint(u32 row, u64 value);

    const ScratchpadParams &params() const { return _params; }

    /**
     * Cumulative timed row accesses (port reads/writes, intra-core
     * writes, init-row fills). Functional peek/poke are not counted —
     * they model host/test access, not switching activity.
     */
    u64 accesses() const { return _accesses; }

    void tick() override;

  private:
    bool serveInit();

    ScratchpadParams _params;
    Reader *_initReader;

    std::vector<u8> _storage; ///< nDatas * rowBytes

    std::vector<std::unique_ptr<TimedQueue<SpadRequest>>> _reqPorts;
    std::vector<std::unique_ptr<TimedQueue<SpadResponse>>> _respPorts;
    std::vector<std::unique_ptr<TimedQueue<SpadRequest>>> _intraPorts;

    std::unique_ptr<TimedQueue<SpadInitCommand>> _initQ;
    std::unique_ptr<TimedQueue<StreamDone>> _initDoneQ;

    bool _initActive = false;
    u32 _initRow = 0;
    u32 _initRowsLeft = 0;
    u64 _accesses = 0;
    StallAccount _stall;
};

} // namespace beethoven

#endif // BEETHOVEN_MEM_SCRATCHPAD_H
