/**
 * @file
 * Strided memory access primitives.
 *
 * Section II-B: "While other communication primitives exist (e.g.,
 * strided memory access, networking), Beethoven's implementation does
 * not preclude their addition" — this is that addition. A
 * StridedReader/StridedWriter sequences a 2D access pattern (nRows
 * rows of rowBytes, strideBytes apart) over an ordinary Reader/Writer,
 * so cores can stream matrix tiles, image windows, or interleaved
 * records without owning the address arithmetic.
 */

#ifndef BEETHOVEN_MEM_STRIDED_H
#define BEETHOVEN_MEM_STRIDED_H

#include "mem/reader.h"
#include "mem/writer.h"

namespace beethoven
{

/** A 2D stream: nRows rows of rowBytes, each strideBytes apart. */
struct StridedCommand
{
    Addr base = 0;
    u64 rowBytes = 0;
    u64 strideBytes = 0;
    u32 nRows = 0;

    u64 totalBytes() const { return u64(nRows) * rowBytes; }
};

/**
 * Sequences strided row reads over an inner Reader. Data emerges in
 * row order on the inner reader's data port.
 */
class StridedReader : public Module
{
  public:
    StridedReader(Simulator &sim, std::string name, Reader &inner);

    TimedQueue<StridedCommand> &cmdPort() { return _cmdQ; }

    /** The stream of row bytes, in row order. */
    TimedQueue<StreamWord> &dataPort() { return _inner.dataPort(); }

    /** True when no strided command is active or queued. */
    bool idle() const;

    void tick() override;

  private:
    Reader &_inner;
    TimedQueue<StridedCommand> _cmdQ;
    bool _active = false;
    StridedCommand _cmd;
    u32 _rowsIssued = 0;
};

/**
 * Sequences strided row writes over an inner Writer; emits a single
 * completion token once every row has been acknowledged.
 */
class StridedWriter : public Module
{
  public:
    StridedWriter(Simulator &sim, std::string name, Writer &inner);

    TimedQueue<StridedCommand> &cmdPort() { return _cmdQ; }
    TimedQueue<StreamWord> &dataPort() { return _inner.dataPort(); }
    TimedQueue<StreamDone> &donePort() { return _doneQ; }

    bool idle() const;

    void tick() override;

  private:
    Writer &_inner;
    TimedQueue<StridedCommand> _cmdQ;
    TimedQueue<StreamDone> _doneQ;
    bool _active = false;
    StridedCommand _cmd;
    u32 _rowsIssued = 0;
    u32 _rowsDone = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_MEM_STRIDED_H
