/**
 * @file
 * Core-facing memory-stream flit types shared by Readers and Writers.
 */

#ifndef BEETHOVEN_MEM_STREAM_TYPES_H
#define BEETHOVEN_MEM_STREAM_TYPES_H

#include <vector>

#include "base/types.h"

namespace beethoven
{

/**
 * A stream request issued by an accelerator core to a Reader/Writer:
 * "stream lenBytes starting at addr". Mirrors the RequestChannel of
 * the paper's getReaderModule()/getWriterModule() accessors.
 */
struct StreamCommand
{
    Addr addr = 0;
    u64 lenBytes = 0;
};

/** One port-width word moving between a core and a Reader/Writer. */
struct StreamWord
{
    std::vector<u8> data;

    /** Little-endian value view of the first min(8, size) bytes. */
    u64
    toUint() const
    {
        u64 v = 0;
        const std::size_t n = data.size() < 8 ? data.size() : 8;
        for (std::size_t i = 0; i < n; ++i)
            v |= u64(data[i]) << (8 * i);
        return v;
    }

    static StreamWord
    fromUint(u64 v, unsigned nbytes)
    {
        StreamWord w;
        w.data.resize(nbytes);
        for (unsigned i = 0; i < nbytes && i < 8; ++i)
            w.data[i] = static_cast<u8>(v >> (8 * i));
        return w;
    }
};

/** Completion token emitted by a Writer when a command fully lands. */
struct StreamDone
{
    u64 bytesWritten = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_MEM_STREAM_TYPES_H
