#include "mem/resource_model.h"

namespace beethoven
{

namespace
{
// CLBs on UltraScale+ hold 8 LUTs / 16 FFs, but placement never packs
// them fully; Table II shows roughly one CLB per 6-7 LUTs in practice.
constexpr double lutsPerClb = 6.6;

ResourceVec
fromLogic(double lut, double ff)
{
    ResourceVec r;
    r.lut = lut;
    r.ff = ff;
    r.clb = lut / lutsPerClb;
    return r;
}
} // namespace

ResourceVec
readerLogicResources(const ReaderParams &params, const AxiConfig &bus)
{
    // AR generation + reorder tracking + width conversion. Width
    // conversion dominates when the port is wide; tracking grows with
    // the number of inflight transactions.
    const double conv = 6.0 * (params.dataBytes + bus.dataBytes);
    const double track = 180.0 * params.maxInflight;
    const double base = 700.0;
    return fromLogic(base + conv + track,
                     1.15 * (base + conv + track));
}

MemoryRequest
readerBufferRequest(const ReaderParams &params, const AxiConfig &bus)
{
    MemoryRequest req;
    req.widthBits = bus.dataBytes * 8;
    req.depth = params.maxInflight * params.burstBeats;
    req.readPorts = 1;
    return req;
}

ResourceVec
writerLogicResources(const WriterParams &params, const AxiConfig &bus)
{
    const double conv = 6.0 * (params.dataBytes + bus.dataBytes);
    const double track = 140.0 * params.maxInflight;
    const double base = 520.0;
    return fromLogic(base + conv + track,
                     1.2 * (base + conv + track));
}

MemoryRequest
writerBufferRequest(const WriterParams &params, const AxiConfig &bus)
{
    MemoryRequest req;
    req.widthBits = bus.dataBytes * 8;
    // The stage only needs one burst plus slack.
    req.depth = 2 * params.burstBeats;
    req.readPorts = 1;
    return req;
}

ResourceVec
scratchpadControlResources(const ScratchpadParams &params)
{
    // Address decode, per-port muxing and the init sequencer.
    const double per_port = 40.0 + params.dataWidthBits * 0.8;
    const double init = params.supportsInit ? 120.0 : 0.0;
    const double lut = per_port * params.nPorts + init;
    return fromLogic(lut, lut * 1.1);
}

ResourceVec
nocNodeResources(unsigned flit_bytes, unsigned fanin)
{
    // A round-robin arbiter + register slice per node.
    const double lut = 30.0 + 2.2 * flit_bytes * 8 * 0.25 +
                       12.0 * fanin;
    const double ff = flit_bytes * 8 + 16.0;
    return fromLogic(lut, ff);
}

ResourceVec
treeResources(const TreeStats &stats, unsigned flit_bytes,
              unsigned fanout)
{
    ResourceVec total = nocNodeResources(flit_bytes, fanout) *
                        static_cast<double>(stats.nodes);
    // Each link is a register slice; SLR crossings are deeper.
    ResourceVec link = fromLogic(8.0, flit_bytes * 8.0);
    total += link * static_cast<double>(stats.links);
    total += link * static_cast<double>(3 * stats.slrCrossings);
    return total;
}

ResourceVec
mmioFrontendResources()
{
    return fromLogic(900.0, 1300.0);
}

} // namespace beethoven
