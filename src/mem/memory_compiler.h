/**
 * @file
 * The on-chip memory compiler.
 *
 * "Beethoven provides a memory compiler-like utility that cascades and
 * banks the SRAM cells available in the technology library to produce
 * the memory requested by the developer." (Section II-D.) The same
 * machinery backs the FPGA path, where the cell library describes the
 * width/depth shapes of BRAM36 and URAM blocks; elaboration chooses
 * *which* cell family to target using the per-SLR 80 %-utilization
 * spill rule (Section II-B, "Scratchpads and On-Chip Memory").
 */

#ifndef BEETHOVEN_MEM_MEMORY_COMPILER_H
#define BEETHOVEN_MEM_MEMORY_COMPILER_H

#include <string>
#include <vector>

#include "base/types.h"
#include "floorplan/resources.h"

namespace beethoven
{

/** The cell family a compiled memory maps onto. */
enum class MemoryCellKind { Bram, Uram, AsicSram };

const char *memoryCellKindName(MemoryCellKind kind);

/** One configurable shape of a physical memory cell. */
struct MemoryCellShape
{
    std::string name;
    MemoryCellKind kind = MemoryCellKind::Bram;
    unsigned widthBits = 0;
    unsigned depth = 0;
    unsigned maxPorts = 2;  ///< native port count of the cell
    double blocks = 1.0;    ///< resource blocks consumed per instance
    double areaUm2 = 0.0;   ///< ASIC only
};

/** A technology's available memory cells. */
struct MemoryCellLibrary
{
    std::vector<MemoryCellShape> shapes;

    /** Xilinx UltraScale+ BRAM36 + URAM shapes. */
    static MemoryCellLibrary ultrascalePlus();

    /** A representative ASAP7-style SRAM macro set. */
    static MemoryCellLibrary asap7();

    /** Shapes restricted to one cell family. */
    std::vector<MemoryCellShape> shapesOf(MemoryCellKind kind) const;
};

/** Result of compiling one logical memory. */
struct CompiledMemory
{
    MemoryCellShape cell;
    unsigned cellsWide = 0;  ///< cascaded for width
    unsigned cellsDeep = 0;  ///< banked for depth
    unsigned replicas = 1;   ///< copies for extra read ports
    ResourceVec resources;

    unsigned totalCells() const { return cellsWide * cellsDeep * replicas; }
};

/**
 * Compile a logical (widthBits x depth, nReadPorts) memory onto the
 * best-fitting shape of the requested cell family.
 *
 * Selection minimizes total blocks consumed, breaking ties toward the
 * least wasted bit capacity. Memories needing more read ports than the
 * cell provides are replicated (a standard FPGA/ASIC technique).
 *
 * @throws ConfigError if the library has no shapes of @p kind.
 */
CompiledMemory compileMemory(const MemoryCellLibrary &lib,
                             MemoryCellKind kind, unsigned width_bits,
                             unsigned depth, unsigned n_read_ports = 1);

} // namespace beethoven

#endif // BEETHOVEN_MEM_MEMORY_COMPILER_H
