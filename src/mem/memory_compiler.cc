#include "mem/memory_compiler.h"

#include <algorithm>
#include <limits>

#include "base/bits.h"
#include "base/log.h"

namespace beethoven
{

const char *
memoryCellKindName(MemoryCellKind kind)
{
    switch (kind) {
      case MemoryCellKind::Bram: return "BRAM";
      case MemoryCellKind::Uram: return "URAM";
      case MemoryCellKind::AsicSram: return "SRAM";
    }
    return "?";
}

MemoryCellLibrary
MemoryCellLibrary::ultrascalePlus()
{
    MemoryCellLibrary lib;
    // BRAM36 shapes (UltraScale+ RAMB36E2 width/depth configurations).
    // A BRAM36 can also act as two independent BRAM18s, modeled as the
    // 0.5-block shapes.
    const struct { unsigned w, d; double blocks; } bram_shapes[] = {
        {72, 512, 1.0},  {36, 1024, 1.0}, {18, 2048, 1.0},
        {9, 4096, 1.0},  {4, 8192, 1.0},  {2, 16384, 1.0},
        {1, 32768, 1.0}, {36, 512, 0.5},  {18, 1024, 0.5},
        {9, 2048, 0.5},
    };
    for (const auto &s : bram_shapes) {
        lib.shapes.push_back({"RAMB36_" + std::to_string(s.w) + "x" +
                                  std::to_string(s.d),
                              MemoryCellKind::Bram, s.w, s.d, 2,
                              s.blocks, 0.0});
    }
    // URAM288: fixed 72 x 4096.
    lib.shapes.push_back(
        {"URAM288_72x4096", MemoryCellKind::Uram, 72, 4096, 2, 1.0, 0.0});
    return lib;
}

MemoryCellLibrary
MemoryCellLibrary::asap7()
{
    MemoryCellLibrary lib;
    // Representative compiled-SRAM macro shapes for a 7 nm predictive
    // PDK (widths/depths follow common memory-compiler offerings).
    const struct { unsigned w, d; double area; } shapes[] = {
        {32, 256, 580.0},   {32, 512, 1010.0},  {64, 256, 1080.0},
        {64, 512, 1900.0},  {128, 256, 2100.0}, {128, 512, 3700.0},
        {64, 1024, 3500.0}, {32, 1024, 1850.0},
    };
    for (const auto &s : shapes) {
        lib.shapes.push_back({"SRAM_" + std::to_string(s.w) + "x" +
                                  std::to_string(s.d),
                              MemoryCellKind::AsicSram, s.w, s.d, 1, 1.0,
                              s.area});
    }
    return lib;
}

std::vector<MemoryCellShape>
MemoryCellLibrary::shapesOf(MemoryCellKind kind) const
{
    std::vector<MemoryCellShape> out;
    for (const auto &s : shapes) {
        if (s.kind == kind)
            out.push_back(s);
    }
    return out;
}

CompiledMemory
compileMemory(const MemoryCellLibrary &lib, MemoryCellKind kind,
              unsigned width_bits, unsigned depth, unsigned n_read_ports)
{
    if (width_bits == 0 || depth == 0)
        fatal("memory compile request with zero width (%u) or depth (%u)",
              width_bits, depth);
    const auto shapes = lib.shapesOf(kind);
    if (shapes.empty())
        fatal("technology library has no %s cells",
              memoryCellKindName(kind));

    const u64 logical_bits = u64(width_bits) * depth;
    bool have_best = false;
    CompiledMemory best;
    double best_blocks = std::numeric_limits<double>::max();
    u64 best_waste = 0;

    for (const auto &shape : shapes) {
        const unsigned wide = static_cast<unsigned>(
            divCeil(width_bits, shape.widthBits));
        const unsigned deep =
            static_cast<unsigned>(divCeil(depth, shape.depth));
        const unsigned replicas =
            static_cast<unsigned>(divCeil(std::max(1u, n_read_ports),
                                          shape.maxPorts));
        const unsigned cells = wide * deep * replicas;
        const double blocks = cells * shape.blocks;
        const u64 capacity =
            u64(shape.widthBits) * shape.depth * wide * deep;
        const u64 waste = capacity - std::min(capacity, logical_bits);
        if (!have_best || blocks < best_blocks ||
            (blocks == best_blocks && waste < best_waste)) {
            have_best = true;
            best_blocks = blocks;
            best_waste = waste;
            best.cell = shape;
            best.cellsWide = wide;
            best.cellsDeep = deep;
            best.replicas = replicas;
        }
    }

    ResourceVec res;
    const double total_blocks = best_blocks;
    switch (kind) {
      case MemoryCellKind::Bram:
        res.bram = total_blocks;
        break;
      case MemoryCellKind::Uram:
        res.uram = total_blocks;
        break;
      case MemoryCellKind::AsicSram:
        res.sramMacros = total_blocks;
        res.areaUm2 = best.totalCells() * best.cell.areaUm2;
        break;
    }
    // Banking/cascade glue: address decode + output muxing.
    const unsigned banks = best.cellsDeep;
    if (banks > 1) {
        res.lut += width_bits * (banks - 1) * 0.5; // output mux
        res.ff += width_bits * 0.25;
    }
    best.resources = res;
    return best;
}

} // namespace beethoven
