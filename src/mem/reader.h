/**
 * @file
 * Reader — Beethoven's streaming read primitive (Section II-B).
 *
 * "Readers maximize data throughput by prefetching data and launching
 * parallel read operations to external memory. Readers use on-chip
 * memory to store prefetched data internally."
 *
 * A Reader accepts StreamCommands from its core, splits them into AXI
 * read bursts, keeps several bursts in flight, and — when TLP is
 * enabled — rotates the bursts across distinct AXI IDs so the memory
 * controller may complete them out of order. Returned beats land in a
 * per-transaction reorder buffer and are drained to the core *in
 * address order* through a width converter sized to the configured
 * port width.
 */

#ifndef BEETHOVEN_MEM_READER_H
#define BEETHOVEN_MEM_READER_H

#include <deque>
#include <string>
#include <vector>

#include "axi/axi_types.h"
#include "mem/stream_types.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

/** User-visible Reader parameters (the ReadChannelConfig knobs). */
struct ReaderParams
{
    unsigned dataBytes = 4;   ///< core-facing port width
    unsigned burstBeats = 64; ///< AXI beats per transaction
    unsigned maxInflight = 4; ///< concurrent outstanding transactions
    bool useTlp = true;       ///< distinct AXI IDs per transaction
    std::size_t cmdQueueDepth = 2;
    std::size_t dataQueueDepth = 8; ///< port-side word queue
};

class Reader : public Module
{
  public:
    /**
     * @param bus      AXI parameters of the memory fabric
     * @param id_base  first AXI ID owned by this reader (fabric grant)
     * @param ar_out   fabric endpoint for read requests
     * @param r_in     fabric endpoint returning this reader's beats
     */
    Reader(Simulator &sim, std::string name, const ReaderParams &params,
           const AxiConfig &bus, u32 id_base,
           TimedQueue<ReadRequest> *ar_out, TimedQueue<ReadBeat> *r_in);

    /** Core-side ports. */
    TimedQueue<StreamCommand> &cmdPort() { return _cmdQ; }
    TimedQueue<StreamWord> &dataPort() { return _dataQ; }

    /** True when no command is active or queued. */
    bool idle() const;

    const ReaderParams &params() const { return _params; }

    /** Number of AXI IDs this reader occupies. */
    u32 numIds() const { return _params.useTlp ? _params.maxInflight : 1; }

    /** Cumulative stream bytes delivered to the core. */
    double bytesRead() const { return _statBytesRead->value(); }

    void tick() override;

  private:
    struct Txn
    {
        u64 tag = 0;
        u32 beats = 0;
        u32 startByte = 0;  ///< first valid byte within the burst
        u64 validBytes = 0; ///< bytes of this burst belonging to stream
        std::vector<u8> bytes; ///< received data, in burst order
        u64 drained = 0;       ///< valid bytes already sent to the core
    };

    // Each sub-step reports whether it did work (for stall accounting).
    bool startNextCommand();
    bool issueRequests();
    bool receiveBeats();
    bool drainToCore();

    ReaderParams _params;
    AxiConfig _bus;
    u32 _idBase;

    TimedQueue<ReadRequest> *_arOut;
    TimedQueue<ReadBeat> *_rIn;
    TimedQueue<StreamCommand> _cmdQ;
    TimedQueue<StreamWord> _dataQ;

    bool _active = false;
    Addr _reqAddr = 0;     ///< next stream byte to request
    u64 _reqBytesLeft = 0; ///< stream bytes not yet requested
    u64 _drainBytesLeft = 0;
    u64 _txnSeq = 0;
    Cycle _streamStart = 0; ///< cycle the active command began
    u64 _streamBytes = 0;   ///< length of the active command

    std::deque<Txn> _txns;      ///< in issue (= address) order
    std::size_t _reservedBeats = 0;
    std::vector<u8> _wordStage; ///< width-converter staging bytes

    StatScalar *_statBytesRead;
    StatScalar *_statTxns;
    StatHistogram *_streamCycles; ///< per-command start -> drain done
    StallAccount _stall;
};

} // namespace beethoven

#endif // BEETHOVEN_MEM_READER_H
