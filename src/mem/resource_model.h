/**
 * @file
 * Resource estimation for Beethoven-generated logic.
 *
 * Estimates are calibrated against the per-module utilization the
 * paper reports in Table II (a 23-core A3 design on a VU9P): a Reader
 * costs ~600 CLBs / 2.3K LUTs / 2.6K FFs plus its prefetch memory, and
 * the whole interconnect lands near 17% of the device CLBs for 92
 * memory interfaces. The memory blocks themselves (BRAM/URAM/SRAM) are
 * computed exactly by the memory compiler, not estimated here.
 */

#ifndef BEETHOVEN_MEM_RESOURCE_MODEL_H
#define BEETHOVEN_MEM_RESOURCE_MODEL_H

#include "axi/axi_types.h"
#include "floorplan/resources.h"
#include "mem/reader.h"
#include "mem/scratchpad.h"
#include "mem/writer.h"
#include "noc/tree.h"

namespace beethoven
{

/** Control/datapath logic of a Reader (excluding its prefetch RAM). */
ResourceVec readerLogicResources(const ReaderParams &params,
                                 const AxiConfig &bus);

/** Prefetch buffer geometry of a Reader (for the memory compiler). */
struct MemoryRequest
{
    unsigned widthBits = 0;
    unsigned depth = 0;
    unsigned readPorts = 1;
};
MemoryRequest readerBufferRequest(const ReaderParams &params,
                                  const AxiConfig &bus);

/** Control/datapath logic of a Writer (excluding its stage RAM). */
ResourceVec writerLogicResources(const WriterParams &params,
                                 const AxiConfig &bus);
MemoryRequest writerBufferRequest(const WriterParams &params,
                                  const AxiConfig &bus);

/** Port muxing / init sequencing around a Scratchpad's cells. */
ResourceVec scratchpadControlResources(const ScratchpadParams &params);

/** One fabric node moving flits of @p flit_bytes per cycle. */
ResourceVec nocNodeResources(unsigned flit_bytes, unsigned fanin);

/** Whole-tree estimate from construction stats. */
ResourceVec treeResources(const TreeStats &stats, unsigned flit_bytes,
                          unsigned fanout);

/** The MMIO command/response front-end. */
ResourceVec mmioFrontendResources();

} // namespace beethoven

#endif // BEETHOVEN_MEM_RESOURCE_MODEL_H
