#include "mem/scratchpad.h"

#include <algorithm>
#include <cstring>

#include "base/log.h"

namespace beethoven
{

Scratchpad::Scratchpad(Simulator &sim, std::string name,
                       const ScratchpadParams &params, Reader *init_reader)
    : Module(sim, std::move(name)),
      _params(params),
      _initReader(init_reader),
      _storage(static_cast<std::size_t>(params.nDatas) *
                   params.rowBytes(),
               0),
      _stall(sim, Module::name())
{
    beethoven_assert(params.nPorts >= 1, "scratchpad with zero ports");
    declareRole("scratchpad");
    declareSleepable();
    if (params.supportsInit) {
        beethoven_assert(init_reader != nullptr,
                         "scratchpad %s supports init but has no reader",
                         Module::name().c_str());
        beethoven_assert(
            init_reader->params().dataBytes == params.rowBytes(),
            "init reader port width %u != scratchpad row bytes %u",
            init_reader->params().dataBytes, params.rowBytes());
        _initQ = std::make_unique<TimedQueue<SpadInitCommand>>(sim, 2);
        _initDoneQ = std::make_unique<TimedQueue<StreamDone>>(sim, 2);
        // Event-kernel wiring: init commands and the init reader's
        // returned rows both wake a quiescent scratchpad.
        _initQ->setWakeOnPush(this);
        _initDoneQ->setWakeOnPop(this);
        init_reader->dataPort().setWakeOnPush(this);
        init_reader->cmdPort().setWakeOnPop(this);
    }
    for (unsigned p = 0; p < params.nPorts; ++p) {
        _reqPorts.push_back(std::make_unique<TimedQueue<SpadRequest>>(
            sim, params.portQueueDepth));
        _respPorts.push_back(std::make_unique<TimedQueue<SpadResponse>>(
            sim, params.portQueueDepth + params.latency,
            std::max(1u, params.latency)));
        _reqPorts.back()->setWakeOnPush(this);
        _respPorts.back()->setWakeOnPop(this);
    }
}

TimedQueue<SpadRequest> &
Scratchpad::reqPort(unsigned idx)
{
    beethoven_assert(idx < _reqPorts.size(), "port %u out of range", idx);
    return *_reqPorts[idx];
}

TimedQueue<SpadResponse> &
Scratchpad::respPort(unsigned idx)
{
    beethoven_assert(idx < _respPorts.size(), "port %u out of range",
                     idx);
    return *_respPorts[idx];
}

TimedQueue<SpadInitCommand> &
Scratchpad::initPort()
{
    beethoven_assert(_initQ != nullptr, "scratchpad %s has no init path",
                     name().c_str());
    return *_initQ;
}

TimedQueue<StreamDone> &
Scratchpad::initDonePort()
{
    beethoven_assert(_initDoneQ != nullptr,
                     "scratchpad %s has no init path", name().c_str());
    return *_initDoneQ;
}

TimedQueue<SpadRequest> &
Scratchpad::addIntraCoreWritePort()
{
    _intraPorts.push_back(
        std::make_unique<TimedQueue<SpadRequest>>(sim(), 4));
    _intraPorts.back()->setWakeOnPush(this);
    return *_intraPorts.back();
}

std::vector<u8>
Scratchpad::peek(u32 row) const
{
    beethoven_assert(row < _params.nDatas, "peek row %u out of range",
                     row);
    const std::size_t rb = _params.rowBytes();
    const u8 *base = _storage.data() + std::size_t(row) * rb;
    return std::vector<u8>(base, base + rb);
}

void
Scratchpad::poke(u32 row, const std::vector<u8> &data)
{
    beethoven_assert(row < _params.nDatas, "poke row %u out of range",
                     row);
    const std::size_t rb = _params.rowBytes();
    beethoven_assert(data.size() == rb,
                     "poke data size %zu != row bytes %zu", data.size(),
                     rb);
    std::memcpy(_storage.data() + std::size_t(row) * rb, data.data(), rb);
}

u64
Scratchpad::peekUint(u32 row) const
{
    const auto bytes = peek(row);
    u64 v = 0;
    for (std::size_t i = 0; i < bytes.size() && i < 8; ++i)
        v |= u64(bytes[i]) << (8 * i);
    return v;
}

void
Scratchpad::pokeUint(u32 row, u64 value)
{
    std::vector<u8> bytes(_params.rowBytes(), 0);
    for (std::size_t i = 0; i < bytes.size() && i < 8; ++i)
        bytes[i] = static_cast<u8>(value >> (8 * i));
    poke(row, bytes);
}

void
Scratchpad::tick()
{
    bool did = false;
    bool read_blocked = false;
    // Serve each request/response port pair (one access per port).
    for (unsigned p = 0; p < _params.nPorts; ++p) {
        auto &req_q = *_reqPorts[p];
        auto &resp_q = *_respPorts[p];
        if (!req_q.canPop())
            continue;
        const SpadRequest &req = req_q.front();
        if (req.write) {
            SpadRequest w = req_q.pop();
            poke(w.row, w.data);
            ++_accesses;
            did = true;
        } else if (resp_q.canPush()) {
            SpadRequest r = req_q.pop();
            SpadResponse resp;
            resp.row = r.row;
            resp.data = peek(r.row);
            resp_q.push(std::move(resp));
            ++_accesses;
            did = true;
        } else {
            read_blocked = true;
        }
    }

    // Intra-core write ports are write-only.
    for (auto &port : _intraPorts) {
        if (port->canPop()) {
            SpadRequest w = port->pop();
            beethoven_assert(w.write,
                             "read request on intra-core write port");
            poke(w.row, w.data);
            ++_accesses;
            did = true;
        }
    }

    if (serveInit())
        did = true;

    if (did) {
        _stall.account(StallClass::Busy);
        return;
    }
    // Blocked or idle: every way forward is a port push, a response
    // drain, or the init reader returning rows — all wired wakes.
    StallClass c = StallClass::Idle;
    if (read_blocked)
        c = StallClass::StallDownstream;
    else if (_initActive)
        c = StallClass::StallMem;
    _stall.account(c);
    sleepWith(_stall, c);
}

bool
Scratchpad::serveInit()
{
    if (!_params.supportsInit)
        return false;
    bool did = false;

    if (!_initActive && _initQ->canPop()) {
        const SpadInitCommand cmd = _initQ->pop();
        beethoven_assert(u64(cmd.rowOffset) + cmd.rows <= _params.nDatas,
                         "init range [%u, +%u) exceeds %u rows",
                         cmd.rowOffset, cmd.rows, _params.nDatas);
        if (cmd.rows == 0) {
            if (_initDoneQ->canPush())
                _initDoneQ->push(StreamDone{0});
            return true;
        }
        did = true;
        _initActive = true;
        _initRow = cmd.rowOffset;
        _initRowsLeft = cmd.rows;
        StreamCommand rc;
        rc.addr = cmd.memAddr;
        rc.lenBytes = u64(cmd.rows) * _params.rowBytes();
        beethoven_assert(_initReader->cmdPort().canPush(),
                         "init reader command queue full");
        _initReader->cmdPort().push(rc);
    }

    if (_initActive && _initReader->dataPort().canPop()) {
        StreamWord w = _initReader->dataPort().pop();
        poke(_initRow, w.data);
        ++_accesses;
        ++_initRow;
        --_initRowsLeft;
        did = true;
        if (_initRowsLeft == 0) {
            _initActive = false;
            if (_initDoneQ->canPush())
                _initDoneQ->push(StreamDone{0});
            else
                warn("scratchpad %s init-done token dropped",
                     name().c_str());
        }
    }
    return did;
}

} // namespace beethoven
