#include "mem/strided.h"

#include "base/log.h"

namespace beethoven
{

StridedReader::StridedReader(Simulator &sim, std::string name,
                             Reader &inner)
    : Module(sim, std::move(name)), _inner(inner), _cmdQ(sim, 2)
{}

bool
StridedReader::idle() const
{
    return !_active && _cmdQ.occupancy() == 0 && _inner.idle();
}

void
StridedReader::tick()
{
    if (!_active && _cmdQ.canPop()) {
        _cmd = _cmdQ.pop();
        if (_cmd.nRows == 0 || _cmd.rowBytes == 0)
            return; // empty pattern: nothing to stream
        if (_cmd.strideBytes < _cmd.rowBytes) {
            fatal("strided reader %s: stride %llu smaller than row "
                  "%llu (rows would overlap)",
                  name().c_str(),
                  static_cast<unsigned long long>(_cmd.strideBytes),
                  static_cast<unsigned long long>(_cmd.rowBytes));
        }
        _active = true;
        _rowsIssued = 0;
    }
    if (_active && _rowsIssued < _cmd.nRows &&
        _inner.cmdPort().canPush()) {
        _inner.cmdPort().push(
            {_cmd.base + u64(_rowsIssued) * _cmd.strideBytes,
             _cmd.rowBytes});
        if (++_rowsIssued == _cmd.nRows)
            _active = false;
    }
}

StridedWriter::StridedWriter(Simulator &sim, std::string name,
                             Writer &inner)
    : Module(sim, std::move(name)),
      _inner(inner),
      _cmdQ(sim, 2),
      _doneQ(sim, 2)
{}

bool
StridedWriter::idle() const
{
    return !_active && _cmdQ.occupancy() == 0 && _inner.idle();
}

void
StridedWriter::tick()
{
    if (!_active && _cmdQ.canPop()) {
        _cmd = _cmdQ.pop();
        if (_cmd.nRows == 0 || _cmd.rowBytes == 0) {
            if (_doneQ.canPush())
                _doneQ.push(StreamDone{0});
            return;
        }
        if (_cmd.strideBytes < _cmd.rowBytes) {
            fatal("strided writer %s: stride %llu smaller than row "
                  "%llu (rows would overlap)",
                  name().c_str(),
                  static_cast<unsigned long long>(_cmd.strideBytes),
                  static_cast<unsigned long long>(_cmd.rowBytes));
        }
        _active = true;
        _rowsIssued = 0;
        _rowsDone = 0;
    }
    if (!_active)
        return;
    if (_rowsIssued < _cmd.nRows && _inner.cmdPort().canPush()) {
        _inner.cmdPort().push(
            {_cmd.base + u64(_rowsIssued) * _cmd.strideBytes,
             _cmd.rowBytes});
        ++_rowsIssued;
    }
    if (_inner.donePort().canPop()) {
        _inner.donePort().pop();
        ++_rowsDone;
    }
    if (_rowsDone == _cmd.nRows && _doneQ.canPush()) {
        _doneQ.push(StreamDone{_cmd.totalBytes()});
        _active = false;
    }
}

} // namespace beethoven
