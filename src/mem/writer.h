/**
 * @file
 * Writer — Beethoven's streaming write primitive (Section II-B).
 *
 * Accepts StreamCommands and port-width data words from the core,
 * packs the words into bus-width beats, and emits AXI write bursts
 * (rotating across AXI IDs when TLP is enabled, so the controller can
 * retire them out of order). A completion token is delivered on the
 * done port once every burst of a command has been acknowledged.
 */

#ifndef BEETHOVEN_MEM_WRITER_H
#define BEETHOVEN_MEM_WRITER_H

#include <deque>
#include <string>
#include <vector>

#include "axi/axi_types.h"
#include "mem/stream_types.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

/** User-visible Writer parameters (the WriteChannelConfig knobs). */
struct WriterParams
{
    unsigned dataBytes = 4;   ///< core-facing port width
    unsigned burstBeats = 64; ///< AXI beats per transaction
    unsigned maxInflight = 4; ///< concurrent outstanding bursts
    bool useTlp = true;
    std::size_t cmdQueueDepth = 2;
    std::size_t dataQueueDepth = 8;
    std::size_t doneQueueDepth = 2;
};

class Writer : public Module
{
  public:
    Writer(Simulator &sim, std::string name, const WriterParams &params,
           const AxiConfig &bus, u32 id_base,
           TimedQueue<WriteFlit> *w_out,
           TimedQueue<WriteResponse> *b_in);

    /** Core-side ports. */
    TimedQueue<StreamCommand> &cmdPort() { return _cmdQ; }
    TimedQueue<StreamWord> &dataPort() { return _dataQ; }
    TimedQueue<StreamDone> &donePort() { return _doneQ; }

    bool idle() const;

    const WriterParams &params() const { return _params; }
    u32 numIds() const { return _params.useTlp ? _params.maxInflight : 1; }

    /** Cumulative stream bytes accepted from the core. */
    double bytesWritten() const { return _statBytesWritten->value(); }

    void tick() override;

  private:
    // Each sub-step reports whether it did work (for stall accounting).
    bool startNextCommand();
    bool acceptWords();
    bool emitFlits();
    bool receiveResponses();

    WriterParams _params;
    AxiConfig _bus;
    u32 _idBase;

    TimedQueue<WriteFlit> *_wOut;
    TimedQueue<WriteResponse> *_bIn;
    TimedQueue<StreamCommand> _cmdQ;
    TimedQueue<StreamWord> _dataQ;
    TimedQueue<StreamDone> _doneQ;

    bool _active = false;
    Addr _cursor = 0;       ///< next stream byte to cover with a burst
    u64 _bytesLeft = 0;     ///< stream bytes not yet packed into bursts
    u64 _bytesAcked = 0;    ///< burst bytes acknowledged (B received)
    u64 _cmdLen = 0;
    u64 _stagedTotal = 0;   ///< bytes of this command accepted so far
    u64 _txnSeq = 0;
    Cycle _streamStart = 0; ///< cycle the active command began

    std::vector<u8> _stage; ///< bytes received from the core, in order

    /** A burst being streamed onto the W channel. */
    struct OpenBurst
    {
        bool valid = false;
        WriteRequest header;
        std::vector<WriteBeat> beats;
        std::size_t nextBeat = 0;
        bool headerSent = false;
    };
    OpenBurst _open;

    /** Outstanding burst sizes keyed by tag (for byte accounting). */
    std::deque<std::pair<u64, u64>> _outstanding; ///< (tag, bytes)

    StatScalar *_statBytesWritten;
    StatScalar *_statTxns;
    StatHistogram *_streamCycles; ///< per-command start -> done token
    StallAccount _stall;
};

} // namespace beethoven

#endif // BEETHOVEN_MEM_WRITER_H
