/**
 * @file
 * Wake-contract and livelock rules (the "graph" layer, BTH100–BTH106).
 *
 * These rules prove the event kernel's wake/sleep contract over the
 * SimGraph IR: a module that declares it may sleep must be provably
 * re-armable by some wake source, wake wiring must point at the module
 * that actually consumes the queue, and no chain of armed wakes may
 * form a zero-latency (same-cycle) cycle. The lost-wake bugs the
 * differential fuzz harness catches dynamically (--plant-lost-wake)
 * become elaboration-time diagnostics here.
 */

#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "lint/lint.h"

namespace beethoven
{
namespace analysis
{

namespace
{

using lint::DiagnosticReport;

std::string
moduleRef(const SimGraph &g, int idx)
{
    if (idx == kNoIndex)
        return "<none>";
    return g.modules[idx].name;
}

/** BTH100: sleepable consumer of a queue with no armed push-wake. */
void
rulePushWakeSoundness(const SimGraph &g,
                      const lint::CompositionModel *,
                      DiagnosticReport &rep)
{
    for (const GraphEdge &e : g.edges) {
        if (e.consumer == kNoIndex || e.pushWakeArmed)
            continue;
        const GraphModule &m = g.modules[e.consumer];
        if (!m.sleepable)
            continue;
        auto &d = rep.add("BTH100", m.name,
                          "queue at " + e.site +
                              " feeds sleepable module '" + m.name +
                              "' (sleep declared at " + m.sleepSite +
                              ") but no push-wake is armed");
        d.note = "a push while the consumer sleeps is a lost wake: the "
                 "consumer never observes the entry and the "
                 "simulation hangs or diverges from the tick kernel";
        d.fixit = "arm setWakeOnPush(consumer) where the queue is "
                  "wired (consumer declared at " +
                  e.consumerSite + ")";
    }
}

/** BTH101: push-wake armed at a module that is not the consumer. */
void
rulePushWakeTarget(const SimGraph &g, const lint::CompositionModel *,
                   DiagnosticReport &rep)
{
    for (const GraphEdge &e : g.edges) {
        if (!e.pushWakeArmed || e.consumer == kNoIndex ||
            e.pushWakeTarget == kNoIndex ||
            e.pushWakeTarget == e.consumer)
            continue;
        auto &d = rep.add(
            "BTH101", moduleRef(g, e.consumer),
            "queue at " + e.site + " declares consumer '" +
                moduleRef(g, e.consumer) +
                "' but its push-wake is armed at '" +
                moduleRef(g, e.pushWakeTarget) + "'");
        d.note = "the consumer sleeps through pushes while an "
                 "unrelated module takes spurious wakes";
    }
}

/** BTH102: sleepable module with no reachable wake source at all. */
void
ruleWakeReachability(const SimGraph &g, const lint::CompositionModel *,
                     DiagnosticReport &rep)
{
    for (std::size_t i = 0; i < g.modules.size(); ++i) {
        const GraphModule &m = g.modules[i];
        if (!m.sleepable || m.selfWake)
            continue;
        bool reachable = false;
        for (const GraphEdge &e : g.edges) {
            if ((e.pushWakeArmed &&
                 e.pushWakeTarget == static_cast<int>(i)) ||
                (e.popWakeArmed &&
                 e.producer == static_cast<int>(i))) {
                reachable = true;
                break;
            }
        }
        if (reachable)
            continue;
        auto &d = rep.add("BTH102", m.name,
                          "module '" + m.name +
                              "' may sleep (declared at " + m.sleepSite +
                              ") but no queue wake or self-wake can "
                              "ever reach it");
        d.note = "first sleep is permanent: the module leaves the "
                 "active set and nothing re-arms it";
        d.fixit = "wire setWakeOnPush/setWakeOnPop on a port it waits "
                  "on, or declareSelfWake() and arm requestWakeAt";
    }
}

/** BTH103: self-wake declared on a module that never sleeps. */
void
ruleSelfWakePairing(const SimGraph &g, const lint::CompositionModel *,
                    DiagnosticReport &rep)
{
    for (const GraphModule &m : g.modules) {
        if (!m.selfWake || m.sleepable)
            continue;
        auto &d = rep.add("BTH103", m.name,
                          "module '" + m.name +
                              "' declares self-wake (at " +
                              m.selfWakeSite +
                              ") but never declares a sleep site");
        d.note = "requestWakeAt on an always-awake module is dead "
                 "arming; either the sleep declaration is missing "
                 "(analyzer blind spot) or the self-arm is stale";
    }
}

/**
 * BTH104: cycles of armed push-wakes through zero-latency queues. A
 * wake delivered in the same cycle it was armed can re-trigger its own
 * cause, so such a cycle livelocks the event kernel inside one cycle.
 * Real TimedQueues assert latency >= 1; this guards hand-built graphs
 * and any future zero-latency (combinational) channel.
 */
void
ruleZeroLatencyCycles(const SimGraph &g, const lint::CompositionModel *,
                      DiagnosticReport &rep)
{
    const std::size_t n = g.modules.size();
    std::vector<std::vector<int>> adj(n);
    for (const GraphEdge &e : g.edges) {
        if (e.pushWakeArmed && e.latency == 0 &&
            e.producer != kNoIndex && e.pushWakeTarget != kNoIndex)
            adj[e.producer].push_back(e.pushWakeTarget);
    }

    // Iterative colored DFS; each back edge closes one reported cycle.
    std::vector<int> color(n, 0); // 0 white, 1 on stack, 2 done
    std::vector<int> stack, pos(n, -1);
    for (std::size_t root = 0; root < n; ++root) {
        if (color[root] != 0)
            continue;
        std::vector<std::pair<int, std::size_t>> work;
        work.push_back({static_cast<int>(root), 0});
        color[root] = 1;
        pos[root] = 0;
        stack.assign(1, static_cast<int>(root));
        while (!work.empty()) {
            auto &[u, next] = work.back();
            if (next < adj[u].size()) {
                const int v = adj[u][next++];
                if (color[v] == 1) {
                    std::string path;
                    for (std::size_t k = pos[v]; k < stack.size(); ++k)
                        path += g.modules[stack[k]].name + " -> ";
                    path += g.modules[v].name;
                    auto &d = rep.add(
                        "BTH104", g.modules[v].name,
                        "zero-latency wake cycle: " + path);
                    d.note = "every hop is an armed push-wake through "
                             "a latency-0 queue, so the cycle spins "
                             "without the simulated clock advancing";
                } else if (color[v] == 0) {
                    color[v] = 1;
                    pos[v] = static_cast<int>(stack.size());
                    stack.push_back(v);
                    work.push_back({v, 0});
                }
            } else {
                color[u] = 2;
                stack.pop_back();
                work.pop_back();
            }
        }
    }
}

/** BTH105: one module on both wake ends of the same queue. */
void
ruleSelfWakeLoop(const SimGraph &g, const lint::CompositionModel *,
                 DiagnosticReport &rep)
{
    for (const GraphEdge &e : g.edges) {
        if (!e.pushWakeArmed || e.producer == kNoIndex ||
            e.pushWakeTarget != e.producer)
            continue;
        auto &d = rep.add(
            "BTH105", moduleRef(g, e.producer),
            "module '" + moduleRef(g, e.producer) +
                "' produces the queue at " + e.site +
                " and is also its push-wake target");
        d.note = "a producer waking itself on its own pushes keeps "
                 "itself artificially awake; usually the wake should "
                 "point at the consumer";
    }
}

/** BTH106: module census vs. what the composition model implies. */
void
ruleCensus(const SimGraph &g, const lint::CompositionModel *model,
           DiagnosticReport &rep)
{
    if (model == nullptr)
        return; // hand-built graph: no composition to compare against
    const GraphShape want = predictGraphShape(*model);
    GraphShape have;
    have.drams = have.mmios = have.probes = 0;
    for (const GraphModule &m : g.modules) {
        if (m.role == "core")
            ++have.cores;
        else if (m.role == "reader")
            ++have.readers;
        else if (m.role == "writer")
            ++have.writers;
        else if (m.role == "scratchpad")
            ++have.scratchpads;
        else if (m.role == "bridge")
            ++have.bridges;
        else if (m.role == "pump")
            ++have.pumps;
        else if (m.role == "dram")
            ++have.drams;
        else if (m.role == "mmio")
            ++have.mmios;
        else if (m.role == "probe")
            ++have.probes;
    }
    const struct
    {
        const char *role;
        u64 want, have;
    } counts[] = {
        {"core", want.cores, have.cores},
        {"reader", want.readers, have.readers},
        {"writer", want.writers, have.writers},
        {"scratchpad", want.scratchpads, have.scratchpads},
        {"bridge", want.bridges, have.bridges},
        {"pump", want.pumps, have.pumps},
        {"dram", want.drams, have.drams},
        {"mmio", want.mmios, have.mmios},
        {"probe", want.probes, have.probes},
    };
    for (const auto &c : counts) {
        if (c.want == c.have)
            continue;
        auto &d = rep.add(
            "BTH106", c.role,
            "composition model implies " + std::to_string(c.want) +
                " '" + c.role + "' module(s) but the elaborated graph "
                "has " + std::to_string(c.have));
        d.note = "analyzer and elaboration have skewed: one of them "
                 "is not seeing the composition the other built";
    }
}

} // namespace

const std::vector<GraphRuleEntry> &
graphRules()
{
    static const std::vector<GraphRuleEntry> rules = {
        {"push-wake-soundness", "graph", rulePushWakeSoundness},
        {"push-wake-target", "graph", rulePushWakeTarget},
        {"wake-reachability", "graph", ruleWakeReachability},
        {"self-wake-pairing", "graph", ruleSelfWakePairing},
        {"zero-latency-cycles", "graph", ruleZeroLatencyCycles},
        {"self-wake-loop", "graph", ruleSelfWakeLoop},
        {"module-census", "graph", ruleCensus},
    };
    return rules;
}

} // namespace analysis
} // namespace beethoven
