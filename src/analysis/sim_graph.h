/**
 * @file
 * SimGraph — the immutable module/queue connectivity IR the static
 * analyzer rules run over (DESIGN.md §5d).
 *
 * Lowered from a Simulator's SimGraphRecord after elaboration: modules
 * become index-addressed nodes, every TimedQueue becomes a directed
 * edge carrying its wake wiring, and shard assignments plus shared-
 * state registrations ride along. Plain structs with no back-pointers
 * into the simulator, so rules (and tests) can also build graphs by
 * hand.
 */

#ifndef BEETHOVEN_ANALYSIS_SIM_GRAPH_H
#define BEETHOVEN_ANALYSIS_SIM_GRAPH_H

#include <string>
#include <vector>

#include "base/types.h"
#include "sim/graph_record.h"

namespace beethoven
{

class Simulator;

namespace analysis
{

constexpr int kNoIndex = -1;
constexpr int kNoShard = -1;

/**
 * A provenance site in the IR. Lowering stores the raw file/line pair
 * (zero allocation — the constructor-tail gate builds a SimGraph per
 * elaboration), while hand-built test graphs assign pre-formatted
 * strings; str() renders either form only when a diagnostic or report
 * actually needs the text.
 */
class Site
{
  public:
    Site() = default;
    Site(SourceSite raw) : _raw(raw) {}
    Site(std::string pre) : _pre(std::move(pre)) {}
    Site(const char *pre) : _pre(pre) {}

    std::string str() const { return _pre.empty() ? _raw.str() : _pre; }
    bool empty() const { return _pre.empty() && _raw.file == nullptr; }

  private:
    SourceSite _raw;
    std::string _pre;
};

/** Convenience for message building: "prefix" + site. */
inline std::string
operator+(const std::string &lhs, const Site &rhs)
{
    return lhs + rhs.str();
}

struct GraphModule
{
    std::string name;
    std::string role = "module";
    bool sleepable = false;
    Site sleepSite;
    bool selfWake = false;
    Site selfWakeSite;
    int shard = kNoShard;
};

/** One TimedQueue: producer -> consumer with its wake wiring. */
struct GraphEdge
{
    Site site; ///< queue construction site (file:line)
    std::size_t capacity = 0;
    unsigned latency = 0;
    int consumer = kNoIndex;      ///< declared consumer module
    Site consumerSite;
    bool pushWakeArmed = false;
    int pushWakeTarget = kNoIndex;
    int producer = kNoIndex;      ///< declared producer / pop-wake target
    Site producerSite;
    bool popWakeArmed = false;
};

/** Mutable state reachable from more than one module. */
struct GraphSharedState
{
    std::string name;
    std::string kind; ///< stat | trace | power | dram-map | sim
    Site site; ///< registration site (file:line)
    std::vector<int> accessors;   ///< module indices that touch it
    std::vector<int> extraShards; ///< shards that pull without a module
    bool spansAllShards = false;
    /** How the hazard is discharged under the parallel kernel
     *  ("" = unresolved; downgrades BTH110 to a BTH113 note). */
    std::string resolution;
};

struct GraphShard
{
    int id = kNoShard;
    std::string name;
};

struct SimGraph
{
    std::vector<GraphModule> modules;
    std::vector<GraphEdge> edges;
    std::vector<GraphSharedState> sharedStates;
    std::vector<GraphShard> shards;
};

/** Lower @p sim's registration record into the analyzer IR. */
SimGraph buildSimGraph(const Simulator &sim);

} // namespace analysis
} // namespace beethoven

#endif // BEETHOVEN_ANALYSIS_SIM_GRAPH_H
