#include "analysis/sim_graph.h"

#include <unordered_map>

#include "sim/simulator.h"

namespace beethoven
{
namespace analysis
{

SimGraph
buildSimGraph(const Simulator &sim)
{
    const SimGraphRecord &rec = sim.graphRecord();
    SimGraph g;

    std::unordered_map<const Module *, int> index;
    g.modules.reserve(rec.modules().size());
    for (const SimGraphRecord::ModuleInfo &info : rec.modules()) {
        index.emplace(info.module, static_cast<int>(g.modules.size()));
        GraphModule m;
        m.name = info.module->name();
        m.role = info.role;
        m.sleepable = info.sleepable;
        m.sleepSite = info.sleepSite;
        m.selfWake = info.selfWake;
        m.selfWakeSite = info.selfWakeSite;
        m.shard = info.shard;
        g.modules.push_back(std::move(m));
    }

    auto lookup = [&index](const Module *m) {
        if (m == nullptr)
            return kNoIndex;
        auto it = index.find(m);
        return it == index.end() ? kNoIndex : it->second;
    };

    g.edges.reserve(rec.edges().size());
    for (const SimGraphRecord::QueueEdge &e : rec.edges()) {
        GraphEdge edge;
        edge.site = e.site;
        edge.capacity = e.capacity;
        edge.latency = e.latency;
        edge.consumer = lookup(e.consumer);
        edge.consumerSite = e.consumerSite;
        edge.pushWakeArmed = e.pushWakeArmed;
        edge.pushWakeTarget = lookup(e.pushWakeTarget);
        edge.producer = lookup(e.producer);
        edge.producerSite = e.producerSite;
        edge.popWakeArmed = e.popWakeArmed;
        g.edges.push_back(std::move(edge));
    }

    g.sharedStates.reserve(rec.sharedStates().size());
    for (const SimGraphRecord::SharedState &s : rec.sharedStates()) {
        GraphSharedState st;
        st.name = s.name;
        st.kind = s.kind;
        st.site = s.site;
        for (Module *m : s.accessors) {
            const int idx = lookup(m);
            if (idx != kNoIndex)
                st.accessors.push_back(idx);
        }
        st.extraShards = s.extraShards;
        st.spansAllShards = s.spansAllShards;
        st.resolution = s.resolution;
        g.sharedStates.push_back(std::move(st));
    }

    g.shards.reserve(rec.shards().size());
    for (const SimGraphRecord::Shard &s : rec.shards())
        g.shards.push_back(GraphShard{s.id, s.name});

    return g;
}

} // namespace analysis
} // namespace beethoven
