#include "analysis/analyze.h"

#include <map>
#include <set>
#include <sstream>

#include "core/soc.h"
#include "lint/lint.h"

namespace beethoven
{
namespace analysis
{

namespace
{

/// Deferral latch for AcceleratorSoc's constructor-tail validation.
bool g_deferSocGraphValidation = false;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

std::string
shardName(const SimGraph &g, int id)
{
    for (const GraphShard &s : g.shards) {
        if (s.id == id)
            return s.name;
    }
    return "shard" + std::to_string(id);
}

/** Shards @p st is reachable from: accessor homes plus pull shards. */
std::set<int>
stateShards(const SimGraph &g, const GraphSharedState &st)
{
    std::set<int> shards;
    if (st.spansAllShards) {
        for (const GraphShard &s : g.shards)
            shards.insert(s.id);
        return shards;
    }
    for (int a : st.accessors) {
        if (g.modules[a].shard != kNoShard)
            shards.insert(g.modules[a].shard);
    }
    for (int s : st.extraShards)
        shards.insert(s);
    return shards;
}

} // namespace

void
setDeferSocGraphValidation(bool defer)
{
    g_deferSocGraphValidation = defer;
}

bool
socGraphValidationDeferred()
{
    return g_deferSocGraphValidation;
}

std::vector<GraphRuleEntry>
analysisRules()
{
    std::vector<GraphRuleEntry> all;
    for (const GraphRuleEntry &r : graphRules())
        all.push_back(r);
    for (const GraphRuleEntry &r : shardRules())
        all.push_back(r);
    return all;
}

lint::DiagnosticReport
analyzeGraph(const SimGraph &g, const lint::CompositionModel *model)
{
    lint::DiagnosticReport rep;
    for (const GraphRuleEntry &rule : analysisRules())
        rule.fn(g, model, rep);
    return rep;
}

lint::DiagnosticReport
analyzeSoc(const AcceleratorSoc &soc)
{
    const SimGraph g = buildSimGraph(soc.sim());
    const lint::CompositionModel model =
        lint::buildCompositionModel(soc.config(), soc.platform());
    return analyzeGraph(g, &model);
}

GraphShape
predictGraphShape(const lint::CompositionModel &model)
{
    GraphShape shape;
    shape.readers = model.readEndpoints;
    shape.writers = model.writeEndpoints;
    for (const auto &sys : model.config->systems) {
        shape.cores += sys.nCores;
        shape.scratchpads +=
            u64(sys.nCores) *
            (sys.scratchpads.size() + sys.intraMemoryIns.size());
        for (const auto &pout : sys.intraMemoryOuts)
            shape.bridges += u64(sys.nCores) * pout.nChannels;
    }
    // The command pump always exists; the r/b return pumps only when
    // the matching memory fabric was built at all.
    shape.pumps = 1 + (model.readEndpoints > 0 ? 1 : 0) +
                  (model.writeEndpoints > 0 ? 1 : 0);
    return shape;
}

std::string
shardReportJson(const SimGraph &g)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"beethoven-shard-report-1\",\n";

    // Candidate partition.
    os << "  \"shards\": [";
    for (std::size_t i = 0; i < g.shards.size(); ++i) {
        std::size_t members = 0;
        for (const GraphModule &m : g.modules)
            members += m.shard == g.shards[i].id ? 1 : 0;
        os << (i == 0 ? "\n" : ",\n") << "    {\"id\": "
           << g.shards[i].id << ", \"name\": \""
           << jsonEscape(g.shards[i].name) << "\", \"modules\": "
           << members << "}";
    }
    os << "\n  ],\n";

    std::size_t uncovered = 0;
    for (const GraphModule &m : g.modules)
        uncovered += m.shard == kNoShard ? 1 : 0;
    os << "  \"uncovered_modules\": " << uncovered << ",\n";

    // Every piece of mutable state reachable from >1 shard — the
    // work-list for the parallel-sharding PR, with provenance.
    os << "  \"cross_shard_state\": [";
    bool first = true;
    for (const GraphSharedState &st : g.sharedStates) {
        const std::set<int> shards = stateShards(g, st);
        if (shards.size() <= 1)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"name\": \"" << jsonEscape(st.name)
           << "\", \"kind\": \"" << jsonEscape(st.kind)
           << "\", \"site\": \"" << jsonEscape(st.site.str())
           << "\", \"accessors\": " << st.accessors.size()
           << ", \"spans_all\": "
           << (st.spansAllShards ? "true" : "false") << ", \"shards\": [";
        bool sfirst = true;
        for (int s : shards) {
            os << (sfirst ? "" : ", ") << "\""
               << jsonEscape(shardName(g, s)) << "\"";
            sfirst = false;
        }
        os << "]}";
    }
    os << (first ? "" : "\n  ") << "],\n";

    // Queue edges crossing the partition: the future inter-shard
    // message channels, aggregated per ordered shard pair.
    std::map<std::pair<int, int>, std::size_t> crossings;
    for (const GraphEdge &e : g.edges) {
        if (e.producer == kNoIndex || e.consumer == kNoIndex)
            continue;
        const int ps = g.modules[e.producer].shard;
        const int cs = g.modules[e.consumer].shard;
        if (ps == kNoShard || cs == kNoShard || ps == cs)
            continue;
        ++crossings[{ps, cs}];
    }
    os << "  \"crossing_edges\": [";
    first = true;
    for (const auto &[pair, count] : crossings) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"from\": \"" << jsonEscape(shardName(g, pair.first))
           << "\", \"to\": \"" << jsonEscape(shardName(g, pair.second))
           << "\", \"edges\": " << count << "}";
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

} // namespace analysis
} // namespace beethoven
