/**
 * @file
 * The simulation-graph static analyzer (DESIGN.md §5d).
 *
 * Extends the PR 4 composition linter from *configuration* legality to
 * *simulation-graph* legality: rules over the SimGraph IR prove the
 * event kernel's wake/sleep contract (BTH10x) and audit the candidate
 * shard partition for the parallel kernel (BTH11x) before a single
 * cycle runs. Diagnostics reuse the lint Diagnostic/DiagnosticReport
 * machinery and the stable-code registry; all violations are reported
 * in one pass.
 */

#ifndef BEETHOVEN_ANALYSIS_ANALYZE_H
#define BEETHOVEN_ANALYSIS_ANALYZE_H

#include <string>
#include <vector>

#include "analysis/sim_graph.h"
#include "base/types.h"
#include "lint/diagnostic.h"

namespace beethoven
{

class AcceleratorSoc;

namespace lint
{
struct CompositionModel;
}

namespace analysis
{

/**
 * One analyzer rule. Mirrors lint::LintRuleEntry so the two rule
 * families stay structurally interchangeable; @p model is null when no
 * composition model is available (hand-built graphs in tests), in
 * which case model-dependent rules (the census) skip themselves.
 */
struct GraphRuleEntry
{
    const char *name;
    const char *layer; ///< "graph" | "shard"
    void (*fn)(const SimGraph &g, const lint::CompositionModel *model,
               lint::DiagnosticReport &rep);
};

/** Wake-contract and livelock rules (BTH100..BTH106). */
const std::vector<GraphRuleEntry> &graphRules();

/** Shard-readiness rules (BTH110..BTH112). */
const std::vector<GraphRuleEntry> &shardRules();

/** All analyzer rules, graph layer first. */
std::vector<GraphRuleEntry> analysisRules();

/** Run every analyzer rule over @p g. */
lint::DiagnosticReport analyzeGraph(
    const SimGraph &g, const lint::CompositionModel *model = nullptr);

/**
 * Lower @p soc's simulator record and analyze it against its own
 * composition model (enables the BTH106 census).
 */
lint::DiagnosticReport analyzeSoc(const AcceleratorSoc &soc);

/**
 * Placement-independent module census the composition model implies:
 * what elaboration must have built, by role. NoC node counts are
 * placement-dependent and deliberately excluded.
 */
struct GraphShape
{
    u64 cores = 0;
    u64 readers = 0;
    u64 writers = 0;
    u64 scratchpads = 0;
    u64 bridges = 0;
    u64 pumps = 0;
    u64 drams = 1;
    u64 mmios = 1;
    u64 probes = 1;
};

GraphShape predictGraphShape(const lint::CompositionModel &model);

/**
 * The machine-readable shard-readiness report: the candidate
 * partition, every cross-shard shared-state site with file:line
 * provenance, and the shard-crossing queue census — the work-list for
 * the parallel-sharding PR.
 */
std::string shardReportJson(const SimGraph &g);

/**
 * When deferred, AcceleratorSoc's constructor-tail graph validation
 * records nothing and does not throw; tools and tests that want the
 * DiagnosticReport (or that plant violations on purpose) defer it and
 * call analyzeSoc() themselves.
 */
void setDeferSocGraphValidation(bool defer);
bool socGraphValidationDeferred();

/** RAII defer scope (exception-safe disarm). */
class ScopedDeferGraphValidation
{
  public:
    ScopedDeferGraphValidation() { setDeferSocGraphValidation(true); }
    ~ScopedDeferGraphValidation() { setDeferSocGraphValidation(false); }

    ScopedDeferGraphValidation(const ScopedDeferGraphValidation &) =
        delete;
    ScopedDeferGraphValidation &
    operator=(const ScopedDeferGraphValidation &) = delete;
};

} // namespace analysis
} // namespace beethoven

#endif // BEETHOVEN_ANALYSIS_ANALYZE_H
