/**
 * @file
 * Shard-readiness rules (the "shard" layer, BTH110–BTH113).
 *
 * The SoC stamps a candidate partition into the graph record — host,
 * one shard per SLR, and memory, split at the NoC/AXI boundaries the
 * way Sniper parallelizes multicore simulation — and these rules audit
 * what stands in the way of running the shards on separate threads:
 * mutable state reachable from more than one shard, and modules the
 * partition does not cover. Findings are warnings/notes, never errors
 * for the serial kernels; the parallel kernel (src/sim/parallel.cc)
 * independently refuses to elaborate while any BTH110 warning or
 * BTH112 gap stands, so driving this audit clean is what unlocks
 * --sim-kernel=parallel. A shared state whose registration carries a
 * resolution (SimGraphRecord::resolveSharedState) is discharged: it
 * reports as a BTH113 note recording the mechanism instead of a
 * BTH110 warning.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "lint/lint.h"

namespace beethoven
{
namespace analysis
{

namespace
{

using lint::DiagnosticReport;

std::string
shardName(const SimGraph &g, int id)
{
    for (const GraphShard &s : g.shards) {
        if (s.id == id)
            return s.name;
    }
    return "shard" + std::to_string(id);
}

/** BTH110: mutable state reachable from more than one shard. */
void
ruleCrossShardState(const SimGraph &g, const lint::CompositionModel *,
                    DiagnosticReport &rep)
{
    if (g.shards.size() < 2)
        return; // no candidate partition to audit
    for (const GraphSharedState &st : g.sharedStates) {
        std::set<int> shards;
        if (st.spansAllShards) {
            for (const GraphShard &s : g.shards)
                shards.insert(s.id);
        } else {
            for (int a : st.accessors) {
                if (g.modules[a].shard != kNoShard)
                    shards.insert(g.modules[a].shard);
            }
            for (int s : st.extraShards)
                shards.insert(s);
        }
        if (shards.size() <= 1)
            continue;
        std::string names;
        for (int s : shards)
            names += (names.empty() ? "" : ", ") + shardName(g, s);
        if (!st.resolution.empty()) {
            auto &d = rep.add("BTH113", st.name,
                              st.kind + " state '" + st.name +
                                  "' (registered at " + st.site +
                                  ") spans shards {" + names +
                                  "} — resolved");
            d.note = st.resolution;
            continue;
        }
        auto &d = rep.add("BTH110", st.name,
                          st.kind + " state '" + st.name +
                              "' (registered at " + st.site +
                              ") is reachable from shards {" + names +
                              "}");
        d.note = "under a threaded kernel every access becomes a data "
                 "race; shard it, replicate-and-reduce it, or fence "
                 "it behind the owning shard — then record the "
                 "mechanism with SimGraphRecord::resolveSharedState";
    }
}

/** BTH111: queue edges crossing the partition, per shard pair. */
void
ruleCrossingEdges(const SimGraph &g, const lint::CompositionModel *,
                  DiagnosticReport &rep)
{
    if (g.shards.size() < 2)
        return;
    std::map<std::pair<int, int>, std::size_t> crossings;
    for (const GraphEdge &e : g.edges) {
        if (e.producer == kNoIndex || e.consumer == kNoIndex)
            continue;
        const int ps = g.modules[e.producer].shard;
        const int cs = g.modules[e.consumer].shard;
        if (ps == kNoShard || cs == kNoShard || ps == cs)
            continue;
        ++crossings[{ps, cs}];
    }
    for (const auto &[pair, count] : crossings) {
        auto &d = rep.add(
            "BTH111",
            shardName(g, pair.first) + "->" + shardName(g, pair.second),
            std::to_string(count) + " queue edge(s) cross from shard '" +
                shardName(g, pair.first) + "' to shard '" +
                shardName(g, pair.second) + "'");
        d.note = "these queues become the inter-shard message "
                 "channels; their wake hooks must turn into "
                 "cross-thread notifications";
    }
}

/** BTH112: modules the candidate partition does not cover. */
void
rulePartitionCoverage(const SimGraph &g, const lint::CompositionModel *,
                      DiagnosticReport &rep)
{
    if (g.shards.size() < 2)
        return;
    for (const GraphModule &m : g.modules) {
        if (m.shard != kNoShard)
            continue;
        auto &d = rep.add("BTH112", m.name,
                          "module '" + m.name + "' (role '" + m.role +
                              "') is not assigned to any shard");
        d.note = "an unassigned module has no owning thread in the "
                 "sharded kernel; extend the partition in "
                 "AcceleratorSoc::assignShards";
    }
}

} // namespace

const std::vector<GraphRuleEntry> &
shardRules()
{
    static const std::vector<GraphRuleEntry> rules = {
        {"cross-shard-state", "shard", ruleCrossShardState},
        {"crossing-edges", "shard", ruleCrossingEdges},
        {"partition-coverage", "shard", rulePartitionCoverage},
    };
    return rules;
}

} // namespace analysis
} // namespace beethoven
