/**
 * @file
 * Elaboration-time composition linter.
 *
 * lintComposition() statically analyzes an *unbuilt* AcceleratorConfig
 * against a Platform — no Simulator, no module construction — and
 * returns every composition defect it can prove, as structured
 * diagnostics (lint/diagnostic.h). AcceleratorSoc elaboration runs it
 * first and fails with the full report when any error-severity finding
 * exists, so an invalid composition reports all of its violations in
 * one build failure instead of first-error-wins.
 *
 * Rules are organized by layer (config, memory, axi, noc, placement),
 * each layer a rules_<layer>.cc translation unit contributing a named
 * rule table. Rules share a precomputed CompositionModel: the resolved
 * view of the config (platform defaults applied, AXI IDs counted, core
 * logic estimated) that real elaboration would act on. To add a rule:
 * register its code in lint/diagnostic.cc, append a LintRuleEntry to
 * the appropriate layer table, and add a positive + negative case to
 * tests/lint_test.cc (DESIGN.md §5c).
 */

#ifndef BEETHOVEN_LINT_LINT_H
#define BEETHOVEN_LINT_LINT_H

#include <string>
#include <vector>

#include "core/config.h"
#include "lint/diagnostic.h"
#include "mem/memory_compiler.h"
#include "platform/platform.h"

namespace beethoven::lint
{

/**
 * One read or write stream endpoint class after knob resolution:
 * a (system, channel) pair covering `endpoints` identical endpoints
 * (nChannels x nCores, or nCores for scratchpad-init readers).
 */
struct ResolvedStream
{
    bool isWriter = false;
    bool isSpadInit = false;
    std::size_t systemIdx = 0;
    std::string channel;
    u64 endpoints = 0;      ///< total endpoint count across cores
    unsigned dataBytes = 0; ///< core-facing port width
    unsigned burstBeats = 0;
    unsigned maxInflight = 0;
    bool useTlp = true;
    u64 idsPerEndpoint = 0; ///< AXI IDs one endpoint occupies
};

/**
 * The resolved, pre-elaboration view of a composition that lint rules
 * reason over. Building the model never throws: degenerate values
 * (zero widths, out-of-range indices) are carried through for rules to
 * flag rather than crash on.
 */
struct CompositionModel
{
    const AcceleratorConfig *config = nullptr;
    const Platform *platform = nullptr;

    AxiConfig bus;
    std::vector<SlrDescriptor> slrs;
    NocParams noc;
    unsigned hostSlr = 0;
    unsigned memorySlr = 0;
    double memoryDerate = 1.0;
    MemoryCellLibrary cellLib;
    MemoryCellKind preferredKind = MemoryCellKind::Bram;

    std::vector<ResolvedStream> streams;
    u64 readIdsRequired = 0;  ///< AXI read ID space the design demands
    u64 writeIdsRequired = 0;
    u64 readEndpoints = 0;
    u64 writeEndpoints = 0;

    /** Per-system, per-core generated + kernel logic estimate. */
    std::vector<ResourceVec> systemCoreLogic;
};

/** Resolve @p config against @p platform. Never throws. */
CompositionModel buildCompositionModel(const AcceleratorConfig &config,
                                       const Platform &platform);

/** One registered lint rule. */
struct LintRuleEntry
{
    const char *name;  ///< short kebab-case rule name
    const char *layer; ///< config | memory | axi | noc | placement
    void (*fn)(const CompositionModel &, DiagnosticReport &);
};

/** Per-layer rule tables (defined in rules_<layer>.cc). */
const std::vector<LintRuleEntry> &configLintRules();
const std::vector<LintRuleEntry> &memoryLintRules();
const std::vector<LintRuleEntry> &axiLintRules();
const std::vector<LintRuleEntry> &nocLintRules();
const std::vector<LintRuleEntry> &placementLintRules();

/** Every registered rule, in layer order. */
std::vector<LintRuleEntry> lintRules();

/** Run every rule over @p config / @p platform. Never throws. */
DiagnosticReport lintComposition(const AcceleratorConfig &config,
                                 const Platform &platform);

/** "systems[i]" (+ ".name" when the system is named). */
std::string systemPath(const CompositionModel &m, std::size_t idx);

} // namespace beethoven::lint

#endif // BEETHOVEN_LINT_LINT_H
