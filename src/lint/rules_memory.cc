/**
 * @file
 * Memory-layer lint rules (BTH020-BTH023): width convertibility between
 * core-facing channels and the platform DRAM bus, on-chip memory
 * geometry, and the 80 %-spill-rule feasibility of a core's compiled
 * memory footprint against per-SLR capacity.
 */

#include <algorithm>

#include "base/log.h"
#include "lint/lint.h"
#include "mem/resource_model.h"

namespace beethoven::lint
{

namespace
{

std::string
streamPath(const CompositionModel &m, const ResolvedStream &st)
{
    return systemPath(m, st.systemIdx) + "." + st.channel;
}

void
ruleWidthConvertibility(const CompositionModel &m, DiagnosticReport &rep)
{
    for (const ResolvedStream &st : m.streams) {
        if (st.dataBytes == 0) {
            rep.add("BTH020", streamPath(m, st),
                    "channel declares a zero-byte data width");
            continue;
        }
        // The fabric converts widths by splitting or packing beats;
        // that requires an integral ratio in one direction. A 64-byte
        // channel on a 16-byte bus is fine (4 bus beats per channel
        // beat) — a 24-byte channel on a 16-byte bus is not.
        const unsigned wide = std::max(st.dataBytes, m.bus.dataBytes);
        const unsigned narrow = std::min(st.dataBytes, m.bus.dataBytes);
        if (narrow == 0 || wide % narrow != 0) {
            rep.add("BTH020", streamPath(m, st),
                    "channel width of " + std::to_string(st.dataBytes) +
                        " bytes is not convertible to the " +
                        std::to_string(m.bus.dataBytes) +
                        "-byte DRAM bus")
                .fixit = "use a power-of-two multiple or divisor of "
                         "the bus width";
        }
    }
}

void
ruleMemoryGeometry(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        const std::string base = systemPath(m, s);
        for (const auto &sp : sys.scratchpads) {
            if (sp.dataWidthBits == 0 || sp.nDatas == 0 ||
                sp.nPorts == 0) {
                rep.add("BTH021", base + "." + sp.name,
                        "scratchpad geometry " +
                            std::to_string(sp.dataWidthBits) + "b x " +
                            std::to_string(sp.nDatas) + " with " +
                            std::to_string(sp.nPorts) +
                            " ports is zero-sized");
            }
        }
        for (const auto &pin : sys.intraMemoryIns) {
            if (pin.dataWidthBits == 0 || pin.nDatas == 0) {
                rep.add("BTH021", base + "." + pin.name,
                        "intra-core memory geometry " +
                            std::to_string(pin.dataWidthBits) + "b x " +
                            std::to_string(pin.nDatas) +
                            " is zero-sized");
            }
        }
    }
}

void
ruleBurstLimit(const CompositionModel &m, DiagnosticReport &rep)
{
    for (const ResolvedStream &st : m.streams) {
        if (st.burstBeats == 0) {
            rep.add("BTH023", streamPath(m, st),
                    "resolved burst length of zero beats");
        } else if (st.burstBeats > m.bus.maxBurstBeats) {
            rep.add("BTH023", streamPath(m, st),
                    "burst of " + std::to_string(st.burstBeats) +
                        " beats exceeds the bus limit of " +
                        std::to_string(m.bus.maxBurstBeats))
                .fixit = "lower burstBeats or leave it zero to take "
                         "the platform default";
        }
    }
}

/**
 * Memory-block fields of @p r against a family capacity budget,
 * mirroring Floorplanner::utilizationAfter's derated view.
 */
bool
memoryFits(const ResourceVec &r, const SlrDescriptor &slr,
           MemoryCellKind kind, double derate)
{
    const ResourceVec avail = slr.available();
    switch (kind) {
      case MemoryCellKind::Bram:
        return r.bram <= avail.bram * derate;
      case MemoryCellKind::Uram:
        return r.uram <= avail.uram * derate;
      case MemoryCellKind::AsicSram:
        return r.sramMacros <= avail.sramMacros * derate;
    }
    return false;
}

void
ruleScratchpadCapacity(const CompositionModel &m, DiagnosticReport &rep)
{
    // One core's compiled memory footprint (scratchpads, prefetch and
    // stage buffers, intra-core RAMs) must fit the derated memory
    // capacity of at least one SLR in at least one cell family, or the
    // spill rule (Section II-B) has nowhere left to spill.
    const MemoryCellKind pref = m.preferredKind;
    const MemoryCellKind alt = pref == MemoryCellKind::Bram
                                   ? MemoryCellKind::Uram
                                   : MemoryCellKind::Bram;
    const bool have_alt = pref != MemoryCellKind::AsicSram &&
                          !m.cellLib.shapesOf(alt).empty();

    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        ResourceVec pref_demand, alt_demand;
        std::string worst;
        double worst_blocks = 0.0;
        bool compiled_any = false;

        auto account = [&](const std::string &name, unsigned width_bits,
                           unsigned depth, unsigned ports) {
            if (width_bits == 0 || depth == 0 || ports == 0)
                return; // BTH021's problem; nothing to compile
            try {
                const CompiledMemory p = compileMemory(
                    m.cellLib, pref, width_bits, depth, ports);
                pref_demand += p.resources;
                if (have_alt) {
                    alt_demand += compileMemory(m.cellLib, alt,
                                                width_bits, depth, ports)
                                      .resources;
                }
                compiled_any = true;
                const double blocks = p.resources.bram +
                                      p.resources.uram +
                                      p.resources.sramMacros;
                if (blocks > worst_blocks) {
                    worst_blocks = blocks;
                    worst = name;
                }
            } catch (const ConfigError &) {
                // No shapes of this family in the library; the memory
                // compiler will report it during elaboration.
            }
        };

        for (const auto &sp : sys.scratchpads)
            account(sp.name, sp.dataWidthBits, sp.nDatas, sp.nPorts);
        for (const auto &pin : sys.intraMemoryIns) {
            account(pin.name, pin.dataWidthBits, pin.nDatas,
                    std::max(1u, pin.nChannels));
        }
        for (const ResolvedStream &st : m.streams) {
            if (st.systemIdx != s || st.dataBytes == 0 ||
                st.burstBeats == 0 || st.burstBeats > m.bus.maxBurstBeats)
                continue; // skip streams BTH020/BTH023 already flagged
            ReaderParams rp;
            rp.dataBytes = st.dataBytes;
            rp.burstBeats = st.burstBeats;
            rp.maxInflight = st.maxInflight;
            rp.useTlp = st.useTlp;
            const MemoryRequest req =
                st.isWriter ? writerBufferRequest(
                                  WriterParams{rp.dataBytes,
                                               rp.burstBeats,
                                               rp.maxInflight, rp.useTlp},
                                  m.bus)
                            : readerBufferRequest(rp, m.bus);
            account(st.channel + (st.isWriter ? " stage buffer"
                                              : " prefetch buffer"),
                    req.widthBits, req.depth, req.readPorts);
        }

        if (!compiled_any)
            continue;
        bool fits = false;
        for (const SlrDescriptor &slr : m.slrs) {
            if (memoryFits(pref_demand, slr, pref, m.memoryDerate) ||
                (have_alt &&
                 memoryFits(alt_demand, slr, alt, m.memoryDerate))) {
                fits = true;
                break;
            }
        }
        if (!fits) {
            rep.add("BTH022", systemPath(m, s),
                    "per-core on-chip memory demand (" +
                        std::to_string(pref_demand.bram +
                                       pref_demand.uram +
                                       pref_demand.sramMacros) +
                        " " +
                        std::string(memoryCellKindName(pref)) +
                        "-equivalent blocks) exceeds the derated "
                        "capacity of every SLR")
                .note = "largest single memory: '" + worst + "'";
        }
    }
}

} // namespace

const std::vector<LintRuleEntry> &
memoryLintRules()
{
    static const std::vector<LintRuleEntry> rules = {
        {"width-convertibility", "memory", ruleWidthConvertibility},
        {"memory-geometry", "memory", ruleMemoryGeometry},
        {"burst-limit", "memory", ruleBurstLimit},
        {"scratchpad-capacity", "memory", ruleScratchpadCapacity},
    };
    return rules;
}

} // namespace beethoven::lint
