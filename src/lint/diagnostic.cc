#include "lint/diagnostic.h"

#include <algorithm>
#include <sstream>

#include "base/log.h"

namespace beethoven::lint
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "?";
}

const std::vector<DiagnosticCodeInfo> &
diagnosticRegistry()
{
    // The authoritative code list. Codes are grouped by layer in
    // blocks of ten; never renumber a shipped code — retire it and
    // allocate the next free number instead (DESIGN.md §5c).
    static const std::vector<DiagnosticCodeInfo> registry = {
        // --- config layer ------------------------------------------
        {"BTH001", "config", Severity::Error,
         "accelerator config declares no systems"},
        {"BTH002", "config", Severity::Error,
         "system with an empty name"},
        {"BTH003", "config", Severity::Error,
         "duplicate system name"},
        {"BTH004", "config", Severity::Error,
         "system declares zero cores"},
        {"BTH005", "config", Severity::Error,
         "RoCC routing space exceeded (systems, cores or commands)"},
        {"BTH006", "config", Severity::Error,
         "system has no module constructor"},
        {"BTH007", "config", Severity::Error,
         "memory channel declares zero channels"},
        {"BTH008", "config", Severity::Error,
         "duplicate read/write channel name within a system"},
        {"BTH009", "config", Severity::Error,
         "duplicate on-chip memory name within a system"},
        {"BTH010", "config", Severity::Error,
         "intra-core port targets an unknown system or port"},
        {"BTH011", "config", Severity::Error,
         "point-to-point intra-core port core-count mismatch"},
        {"BTH012", "config", Severity::Error,
         "generated-binding collision (duplicate or invalid command "
         "name)"},
        {"BTH013", "config", Severity::Warning,
         "platform power model is the uncalibrated default"},
        // --- memory layer ------------------------------------------
        {"BTH020", "memory", Severity::Error,
         "channel width not convertible to the DRAM bus width"},
        {"BTH021", "memory", Severity::Error,
         "zero-sized on-chip memory geometry"},
        {"BTH022", "memory", Severity::Error,
         "scratchpad demand exceeds per-SLR on-chip memory capacity"},
        {"BTH023", "memory", Severity::Error,
         "burst length exceeds the bus burst limit"},
        // --- axi layer ---------------------------------------------
        {"BTH030", "axi", Severity::Error,
         "AXI ID demand exceeds the platform ID space"},
        {"BTH031", "axi", Severity::Warning,
         "in-flight demand oversubscribes the DRAM controller"},
        {"BTH032", "axi", Severity::Warning,
         "maxInflight > 1 with TLP disabled serializes on one AXI ID"},
        // --- noc layer ---------------------------------------------
        {"BTH040", "noc", Severity::Error,
         "NoC root SLR index out of range (disconnected tree)"},
        {"BTH041", "noc", Severity::Warning,
         "SLR-crossing buffer depth below the crossing latency"},
        {"BTH042", "noc", Severity::Warning,
         "aggregate stream demand oversubscribes the fabric root "
         "link"},
        // --- placement layer ---------------------------------------
        {"BTH050", "placement", Severity::Error,
         "core logic estimate does not fit on any SLR"},
        {"BTH051", "placement", Severity::Error,
         "aggregate core logic exceeds total device capacity"},
        // --- graph layer (simulation-graph analyzer, §5d) ----------
        {"BTH100", "graph", Severity::Error,
         "sleepable consumer without an armed push-wake"},
        {"BTH101", "graph", Severity::Error,
         "push-wake armed to a module other than the declared "
         "consumer"},
        {"BTH102", "graph", Severity::Error,
         "sleepable module with no reachable wake source"},
        {"BTH103", "graph", Severity::Error,
         "self-wake declared without a sleep site"},
        {"BTH104", "graph", Severity::Error,
         "zero-latency wake cycle (same-cycle livelock)"},
        {"BTH105", "graph", Severity::Warning,
         "self-wake loop: module is both producer and consumer of a "
         "wake-armed queue"},
        {"BTH106", "graph", Severity::Error,
         "module census disagrees with the composition model"},
        // --- shard layer (shard-readiness audit, §5d) --------------
        {"BTH110", "shard", Severity::Warning,
         "mutable state reachable from more than one shard"},
        {"BTH111", "shard", Severity::Note,
         "queue edges cross a shard boundary"},
        {"BTH112", "shard", Severity::Warning,
         "module not covered by the shard partition"},
        {"BTH113", "shard", Severity::Note,
         "cross-shard state resolved for the parallel kernel"},
    };
    return registry;
}

const DiagnosticCodeInfo *
findDiagnosticCode(const std::string &code)
{
    for (const DiagnosticCodeInfo &info : diagnosticRegistry()) {
        if (code == info.code)
            return &info;
    }
    return nullptr;
}

Diagnostic &
DiagnosticReport::add(const std::string &code, std::string path,
                      std::string message)
{
    const DiagnosticCodeInfo *info = findDiagnosticCode(code);
    beethoven_assert(info != nullptr,
                     "lint rule emitted unregistered code '%s'",
                     code.c_str());
    Diagnostic d;
    d.code = code;
    d.severity = info->severity;
    d.path = std::move(path);
    d.message = std::move(message);
    _diags.push_back(std::move(d));
    return _diags.back();
}

std::size_t
DiagnosticReport::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(_diags.begin(), _diags.end(), [](const auto &d) {
            return d.severity == Severity::Error;
        }));
}

std::size_t
DiagnosticReport::warningCount() const
{
    return static_cast<std::size_t>(
        std::count_if(_diags.begin(), _diags.end(), [](const auto &d) {
            return d.severity == Severity::Warning;
        }));
}

std::vector<std::string>
DiagnosticReport::codes() const
{
    std::vector<std::string> out;
    for (const Diagnostic &d : _diags) {
        if (std::find(out.begin(), out.end(), d.code) == out.end())
            out.push_back(d.code);
    }
    return out;
}

bool
DiagnosticReport::has(const std::string &code) const
{
    return std::any_of(_diags.begin(), _diags.end(),
                       [&](const auto &d) { return d.code == code; });
}

std::string
DiagnosticReport::format() const
{
    std::ostringstream os;
    for (const Diagnostic &d : _diags) {
        os << severityName(d.severity) << "[" << d.code << "] ";
        if (!d.path.empty())
            os << d.path << ": ";
        os << d.message << "\n";
        if (!d.note.empty())
            os << "  note: " << d.note << "\n";
        if (!d.fixit.empty())
            os << "  fixit: " << d.fixit << "\n";
    }
    return os.str();
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
DiagnosticReport::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"errors\": " << errorCount()
       << ",\n  \"warnings\": " << warningCount()
       << ",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < _diags.size(); ++i) {
        const Diagnostic &d = _diags[i];
        if (i != 0)
            os << ",";
        os << "\n    {\"code\": \"" << d.code << "\", \"severity\": \""
           << severityName(d.severity) << "\", \"path\": \""
           << jsonEscape(d.path) << "\", \"message\": \""
           << jsonEscape(d.message) << "\", \"note\": \""
           << jsonEscape(d.note) << "\", \"fixit\": \""
           << jsonEscape(d.fixit) << "\"}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace beethoven::lint
