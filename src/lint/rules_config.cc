/**
 * @file
 * Config-layer lint rules (BTH001-BTH012): structural defects of the
 * AcceleratorConfig itself — naming, routing-space limits, channel and
 * memory declarations, intra-core port wiring, and collisions that
 * would break the generated C++ bindings (src/bindgen).
 */

#include <algorithm>
#include <cctype>
#include <set>

#include "cmd/rocc.h"
#include "lint/lint.h"

namespace beethoven::lint
{

namespace
{

void
ruleSystemList(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    if (systems.empty()) {
        rep.add("BTH001", "systems",
                "accelerator config declares no systems")
            .fixit = "add at least one AcceleratorSystemConfig";
        return;
    }
    if (systems.size() > RoccCommand::maxSystems) {
        rep.add("BTH005", "systems",
                std::to_string(systems.size()) +
                    " systems exceed the " +
                    std::to_string(RoccCommand::maxSystems) +
                    "-system RoCC routing space")
            .note = "the RoCC instruction word carries a 4-bit system "
                    "ID";
    }
    std::set<std::string> seen;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        if (sys.name.empty())
            rep.add("BTH002", systemPath(m, s),
                    "system with an empty name");
        else if (!seen.insert(sys.name).second)
            rep.add("BTH003", systemPath(m, s),
                    "duplicate system name '" + sys.name + "'")
                .fixit = "rename one of the systems";
    }
}

void
rulePerSystemShape(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        const std::string path = systemPath(m, s);
        if (sys.nCores == 0)
            rep.add("BTH004", path, "system declares zero cores");
        if (sys.nCores > RoccCommand::maxCores) {
            rep.add("BTH005", path,
                    std::to_string(sys.nCores) +
                        " cores exceed the " +
                        std::to_string(RoccCommand::maxCores) +
                        "-core RoCC routing space");
        }
        if (sys.commands.size() > RoccCommand::maxCommands) {
            rep.add("BTH005", path,
                    std::to_string(sys.commands.size()) +
                        " commands exceed the " +
                        std::to_string(RoccCommand::maxCommands) +
                        "-command space");
        }
        if (!sys.moduleConstructor)
            rep.add("BTH006", path, "system has no module constructor");
    }
}

void
ruleChannelDeclarations(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        const std::string path = systemPath(m, s);
        std::set<std::string> ch;
        for (const auto &r : sys.readChannels) {
            if (r.nChannels == 0)
                rep.add("BTH007", path + "." + r.name,
                        "read channel '" + r.name +
                            "' declares zero channels");
            if (!ch.insert("r:" + r.name).second)
                rep.add("BTH008", path + "." + r.name,
                        "duplicate read channel '" + r.name + "'");
        }
        for (const auto &w : sys.writeChannels) {
            if (w.nChannels == 0)
                rep.add("BTH007", path + "." + w.name,
                        "write channel '" + w.name +
                            "' declares zero channels");
            if (!ch.insert("w:" + w.name).second)
                rep.add("BTH008", path + "." + w.name,
                        "duplicate write channel '" + w.name + "'");
        }
        std::set<std::string> mems;
        for (const auto &sp : sys.scratchpads) {
            if (!mems.insert(sp.name).second)
                rep.add("BTH009", path + "." + sp.name,
                        "duplicate scratchpad '" + sp.name + "'");
        }
        for (const auto &pin : sys.intraMemoryIns) {
            if (!mems.insert(pin.name).second)
                rep.add("BTH009", path + "." + pin.name,
                        "intra-core memory '" + pin.name +
                            "' collides with another on-chip memory");
        }
    }
}

void
ruleIntraCoreWiring(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        for (const auto &pout : sys.intraMemoryOuts) {
            const std::string path =
                systemPath(m, s) + "." + pout.name;
            const auto *target =
                [&]() -> const AcceleratorSystemConfig * {
                for (const auto &t : systems) {
                    if (t.name == pout.toSystem)
                        return &t;
                }
                return nullptr;
            }();
            if (target == nullptr) {
                rep.add("BTH010", path,
                        "intra-core out '" + pout.name +
                            "' targets unknown system '" +
                            pout.toSystem + "'");
                continue;
            }
            const auto pin_it = std::find_if(
                target->intraMemoryIns.begin(),
                target->intraMemoryIns.end(), [&](const auto &pin) {
                    return pin.name == pout.toMemoryPort;
                });
            if (pin_it == target->intraMemoryIns.end()) {
                rep.add("BTH010", path,
                        "intra-core out '" + pout.name +
                            "' targets missing port '" +
                            pout.toMemoryPort + "' in system " +
                            pout.toSystem);
                continue;
            }
            if (pin_it->commDeg == CommunicationDegree::PointToPoint &&
                sys.nCores != target->nCores) {
                rep.add("BTH011", path,
                        "point-to-point port: source has " +
                            std::to_string(sys.nCores) +
                            " cores but target " + pout.toSystem +
                            " has " + std::to_string(target->nCores))
                    .fixit = "match the core counts or declare the "
                             "port Broadcast";
            }
        }
    }
}

bool
isValidIdentifier(const std::string &name)
{
    if (name.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(name[0])) &&
        name[0] != '_')
        return false;
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    // Keywords that would break the generated function/argument
    // declarations (a pragmatic subset; bindgen emits C++17).
    static const std::set<std::string> keywords = {
        "auto",   "bool",   "break",    "case",   "char",  "class",
        "const",  "delete", "do",       "double", "else",  "enum",
        "false",  "float",  "for",      "if",     "int",   "long",
        "new",    "public", "return",   "short",  "signed","sizeof",
        "static", "struct", "switch",   "this",   "true",  "typedef",
        "union",  "unsigned", "using",  "void",   "while",
    };
    return keywords.find(name) == keywords.end();
}

void
ruleBindgenCollisions(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const auto &sys = systems[s];
        const std::string path = systemPath(m, s);
        std::set<std::string> cmd_names;
        for (const auto &cmd : sys.commands) {
            if (!isValidIdentifier(cmd.name())) {
                rep.add("BTH012", path + "." + cmd.name(),
                        "command name '" + cmd.name() +
                            "' is not a valid C++ identifier")
                    .note = "bindgen emits one function per command "
                            "(Fig. 3b); this name cannot compile";
                continue;
            }
            if (!cmd_names.insert(cmd.name()).second) {
                rep.add("BTH012", path + "." + cmd.name(),
                        "duplicate command name '" + cmd.name() +
                            "' collides in the generated bindings");
            }
            std::set<std::string> fields;
            for (const auto &f : cmd.fields()) {
                if (!isValidIdentifier(f.name) ||
                    !fields.insert(f.name).second) {
                    rep.add("BTH012",
                            path + "." + cmd.name() + "." + f.name,
                            "command field '" + f.name +
                                "' is a duplicate or invalid "
                                "argument name");
                }
            }
        }
    }
}

void
rulePowerModelCalibration(const CompositionModel &m,
                          DiagnosticReport &rep)
{
    if (m.platform == nullptr)
        return;
    if (m.platform->powerModel().calibrated)
        return;
    rep.add("BTH013", "platform." + m.platform->name(),
            "platform power model is the uncalibrated default: power "
            "and energy telemetry will use generic coefficients")
        .note = "override Platform::powerModel() with calibrated "
                "static rates and per-event energies, and set "
                "PowerModel::calibrated";
}

} // namespace

const std::vector<LintRuleEntry> &
configLintRules()
{
    static const std::vector<LintRuleEntry> rules = {
        {"system-list", "config", ruleSystemList},
        {"per-system-shape", "config", rulePerSystemShape},
        {"channel-declarations", "config", ruleChannelDeclarations},
        {"intra-core-wiring", "config", ruleIntraCoreWiring},
        {"bindgen-collisions", "config", ruleBindgenCollisions},
        {"power-model-calibration", "config", rulePowerModelCalibration},
    };
    return rules;
}

} // namespace beethoven::lint
