/**
 * @file
 * Placement-layer lint rules (BTH050-BTH051): can the floorplanner
 * possibly succeed? Rule BTH050 mirrors Floorplanner::placeCore's
 * fitsWithin test for a single core on an otherwise empty device;
 * BTH051 totals every system's cores against the whole device. Both
 * are necessary conditions — the greedy placer can still fail later
 * from fragmentation or memory mapping, which checkFit() reports — but
 * failing either here proves no floorplan exists, with the worst
 * offender named instead of a bare overflow.
 */

#include <algorithm>

#include "lint/lint.h"

namespace beethoven::lint
{

namespace
{

void
ruleCoreFitsSomewhere(const CompositionModel &m, DiagnosticReport &rep)
{
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size() &&
                            s < m.systemCoreLogic.size();
         ++s) {
        const ResourceVec &est = m.systemCoreLogic[s];
        const bool fits = std::any_of(
            m.slrs.begin(), m.slrs.end(), [&](const SlrDescriptor &slr) {
                return est.fitsWithin(slr.available());
            });
        if (!fits) {
            rep.add("BTH050", systemPath(m, s),
                    "one core needs {lut=" + std::to_string(u64(est.lut)) +
                        " ff=" + std::to_string(u64(est.ff)) +
                        " clb=" + std::to_string(u64(est.clb)) +
                        "} and fits on no SLR of this device")
                .note = "kernel estimate plus generated "
                        "reader/writer/scratchpad control logic";
        }
    }
}

void
ruleAggregateBudget(const CompositionModel &m, DiagnosticReport &rep)
{
    ResourceVec total_avail;
    for (const SlrDescriptor &slr : m.slrs)
        total_avail += slr.available();

    ResourceVec demand;
    std::size_t worst = 0;
    double worst_lut = -1.0;
    const auto &systems = m.config->systems;
    for (std::size_t s = 0; s < systems.size() &&
                            s < m.systemCoreLogic.size();
         ++s) {
        const ResourceVec sys_total =
            m.systemCoreLogic[s] *
            static_cast<double>(systems[s].nCores);
        demand += sys_total;
        if (sys_total.lut > worst_lut) {
            worst_lut = sys_total.lut;
            worst = s;
        }
    }
    if (!systems.empty() && !demand.fitsWithin(total_avail)) {
        rep.add("BTH051", "placement",
                "aggregate core logic {lut=" +
                    std::to_string(u64(demand.lut)) +
                    " ff=" + std::to_string(u64(demand.ff)) +
                    " clb=" + std::to_string(u64(demand.clb)) +
                    "} exceeds the whole-device budget {lut=" +
                    std::to_string(u64(total_avail.lut)) +
                    " ff=" + std::to_string(u64(total_avail.ff)) +
                    " clb=" + std::to_string(u64(total_avail.clb)) + "}")
            .note = "worst offender: " + systemPath(m, worst) + " (" +
                    std::to_string(u64(worst_lut)) + " LUTs across " +
                    std::to_string(systems[worst].nCores) + " cores)";
    }
}

} // namespace

const std::vector<LintRuleEntry> &
placementLintRules()
{
    static const std::vector<LintRuleEntry> rules = {
        {"core-fits-somewhere", "placement", ruleCoreFitsSomewhere},
        {"aggregate-budget", "placement", ruleAggregateBudget},
    };
    return rules;
}

} // namespace beethoven::lint
