/**
 * @file
 * Structured composition diagnostics.
 *
 * Every finding the elaboration-time linter (lint/lint.h) can produce
 * is identified by a stable code ("BTH012") drawn from a central
 * registry. A DiagnosticReport collects *all* findings of a lint pass
 * instead of throwing on the first, so one failed build reports every
 * composition defect at once — the BeethovenBuild promise of Fig. 3a:
 * composition errors surface at build time, not after hours of
 * simulation.
 */

#ifndef BEETHOVEN_LINT_DIAGNOSTIC_H
#define BEETHOVEN_LINT_DIAGNOSTIC_H

#include <cstddef>
#include <string>
#include <vector>

namespace beethoven::lint
{

enum class Severity { Note, Warning, Error };

const char *severityName(Severity s);

/** One linter finding, addressed by a stable diagnostic code. */
struct Diagnostic
{
    std::string code;    ///< registry code, e.g. "BTH020"
    Severity severity = Severity::Error;
    std::string path;    ///< config location, e.g. "systems[1].src"
    std::string message; ///< one-line statement of the defect
    std::string note;    ///< optional: why this is a problem
    std::string fixit;   ///< optional: suggested configuration change
};

/**
 * Registry entry for one diagnostic code. The registry is the
 * authoritative list of everything the linter can say; soc_lint
 * --list-codes prints it and tests enforce that emitted codes are
 * registered.
 */
struct DiagnosticCodeInfo
{
    const char *code;
    const char *layer; ///< config | memory | axi | noc | placement
                       ///< | graph | shard (BTH1xx, src/analysis/)
    Severity severity; ///< severity this code is emitted with
    const char *summary;
};

/** All registered diagnostic codes, in code order. */
const std::vector<DiagnosticCodeInfo> &diagnosticRegistry();

/** Look up one code. @return nullptr when unregistered. */
const DiagnosticCodeInfo *findDiagnosticCode(const std::string &code);

/**
 * Collector for lint findings. add() stamps severity from the
 * registry, so a rule cannot emit an unregistered or wrongly-graded
 * code.
 */
class DiagnosticReport
{
  public:
    /**
     * Append a finding. @p code must be registered (panics otherwise
     * — an unregistered code is a Beethoven bug, not user error).
     * @return the new diagnostic, for attaching note/fixit text.
     */
    Diagnostic &add(const std::string &code, std::string path,
                    std::string message);

    const std::vector<Diagnostic> &diagnostics() const { return _diags; }

    bool empty() const { return _diags.empty(); }
    std::size_t errorCount() const;
    std::size_t warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }

    /** Codes present in this report, deduplicated, in emission order. */
    std::vector<std::string> codes() const;

    /** True if any finding carries @p code. */
    bool has(const std::string &code) const;

    /**
     * Human-readable multi-line rendering:
     *
     *   error[BTH003] systems[1]: duplicate system name 'X'
     *     note: ...
     *     fixit: ...
     */
    std::string format() const;

    /** Machine-readable rendering (soc_lint --json). */
    std::string toJson() const;

  private:
    std::vector<Diagnostic> _diags;
};

} // namespace beethoven::lint

#endif // BEETHOVEN_LINT_DIAGNOSTIC_H
