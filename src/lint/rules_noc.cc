/**
 * @file
 * NoC-layer lint rules (BTH040-BTH042): tree-fabric reachability and
 * throughput. The command and memory fabrics are trees rooted at the
 * host / memory SLR (Section II-C); a root index outside the device or
 * a zero-capacity link parameterization leaves endpoints unreachable,
 * and under-buffered SLR crossings or an oversubscribed root link cap
 * sustained throughput well below what the cores demand.
 */

#include "lint/lint.h"

namespace beethoven::lint
{

namespace
{

void
ruleTreeConnectivity(const CompositionModel &m, DiagnosticReport &rep)
{
    const std::size_t n_slrs = m.slrs.size();
    if (m.hostSlr >= n_slrs) {
        rep.add("BTH040", "platform.hostSlr",
                "command-fabric root SLR " + std::to_string(m.hostSlr) +
                    " is outside the " + std::to_string(n_slrs) +
                    "-SLR device: every core is disconnected from the "
                    "host");
    }
    if (m.memorySlr >= n_slrs) {
        rep.add("BTH040", "platform.memorySlr",
                "memory-fabric root SLR " +
                    std::to_string(m.memorySlr) +
                    " is outside the " + std::to_string(n_slrs) +
                    "-SLR device: every endpoint is disconnected from "
                    "DRAM");
    }
    if (m.noc.fanout == 0) {
        rep.add("BTH040", "platform.noc.fanout",
                "tree fanout of zero cannot connect any endpoint to "
                "the root");
    }
    if (m.noc.queueDepth == 0) {
        rep.add("BTH040", "platform.noc.queueDepth",
                "zero-depth link queues cannot carry flits: the "
                "fabric is connected but dead");
    }
}

void
ruleCrossingBuffering(const CompositionModel &m, DiagnosticReport &rep)
{
    if (m.slrs.size() < 2 || m.noc.queueDepth == 0)
        return;
    if (m.noc.queueDepth < m.noc.slrCrossingLatency) {
        rep.add("BTH041", "platform.noc",
                "link queue depth " + std::to_string(m.noc.queueDepth) +
                    " is below the SLR-crossing latency of " +
                    std::to_string(m.noc.slrCrossingLatency) +
                    " cycles: crossings cannot sustain one flit per "
                    "cycle")
            .fixit = "raise nocParams().queueDepth to at least the "
                     "crossing latency";
    }
}

void
ruleRootLinkOversubscription(const CompositionModel &m,
                             DiagnosticReport &rep)
{
    // Peak demand if every endpoint streamed a beat per cycle. The
    // root link moves one bus beat per cycle; past a 4x derated
    // oversubscription the tree is the bottleneck by construction.
    if (m.bus.dataBytes == 0)
        return; // degenerate platform; BTH020 already fired per stream
    double demand_bytes = 0;
    for (const ResolvedStream &st : m.streams)
        demand_bytes += double(st.endpoints) * st.dataBytes;
    const double capacity =
        4.0 * double(m.bus.dataBytes) * m.memoryDerate;
    if (demand_bytes > capacity) {
        rep.add("BTH042", "noc.root",
                "aggregate stream demand of " +
                    std::to_string(u64(demand_bytes)) +
                    " bytes/cycle oversubscribes the " +
                    std::to_string(m.bus.dataBytes) +
                    "-byte root link (soft budget " +
                    std::to_string(u64(capacity)) + ")")
            .note = "endpoints will stall on fabric arbitration long "
                    "before DRAM saturates";
    }
}

} // namespace

const std::vector<LintRuleEntry> &
nocLintRules()
{
    static const std::vector<LintRuleEntry> rules = {
        {"tree-connectivity", "noc", ruleTreeConnectivity},
        {"crossing-buffering", "noc", ruleCrossingBuffering},
        {"root-link-oversubscription", "noc",
         ruleRootLinkOversubscription},
    };
    return rules;
}

} // namespace beethoven::lint
