/**
 * @file
 * AXI-layer lint rules (BTH030-BTH032): transaction-ID budgeting.
 *
 * Each TLP-mode endpoint owns maxInflight contiguous AXI IDs (one
 * otherwise), allocated separately for the read and write directions
 * (Section II-C); the platform's idBits bound both ID spaces. Rules
 * here flag hard exhaustion and two soft anti-patterns: demanding far
 * more concurrency than the DRAM controller can overlap, and paying
 * for in-flight depth that a non-TLP endpoint can never use.
 */

#include "lint/lint.h"

namespace beethoven::lint
{

namespace
{

void
ruleIdExhaustion(const CompositionModel &m, DiagnosticReport &rep)
{
    const u64 ids = m.bus.numIds();
    if (m.readIdsRequired > ids) {
        rep.add("BTH030", "memory.read",
                "design needs " + std::to_string(m.readIdsRequired) +
                    " read AXI IDs but the platform provides " +
                    std::to_string(ids))
            .fixit = "reduce cores/channels, lower maxInflight, or "
                     "disable TLP on low-throughput channels";
    }
    if (m.writeIdsRequired > ids) {
        rep.add("BTH030", "memory.write",
                "design needs " + std::to_string(m.writeIdsRequired) +
                    " write AXI IDs but the platform provides " +
                    std::to_string(ids))
            .fixit = "reduce cores/channels, lower maxInflight, or "
                     "disable TLP on low-throughput channels";
    }
}

void
ruleControllerOversubscription(const CompositionModel &m,
                               DiagnosticReport &rep)
{
    // The controller overlaps transactions across DRAM banks; beyond
    // a small multiple of the bank count, extra in-flight depth only
    // buys queueing, not bandwidth.
    const u64 banks = m.platform->dramGeometry().numBanks();
    const u64 budget = banks * 8;
    const u64 demand = m.readIdsRequired + m.writeIdsRequired;
    if (banks > 0 && demand > budget) {
        rep.add("BTH031", "memory",
                "aggregate in-flight demand of " +
                    std::to_string(demand) +
                    " transactions oversubscribes the " +
                    std::to_string(banks) +
                    "-bank DRAM controller (soft budget " +
                    std::to_string(budget) + ")")
            .note = "throughput saturates at the controller; extra "
                    "depth adds latency, not bandwidth";
    }
}

void
ruleInflightWithoutTlp(const CompositionModel &m, DiagnosticReport &rep)
{
    for (const ResolvedStream &st : m.streams) {
        if (!st.useTlp && st.maxInflight > 1) {
            rep.add("BTH032",
                    systemPath(m, st.systemIdx) + "." + st.channel,
                    "maxInflight=" + std::to_string(st.maxInflight) +
                        " with TLP disabled: all transactions share "
                        "one AXI ID and complete in order")
                .fixit = "enable useTlp to claim distinct IDs, or "
                         "drop maxInflight to 1";
        }
    }
}

} // namespace

const std::vector<LintRuleEntry> &
axiLintRules()
{
    static const std::vector<LintRuleEntry> rules = {
        {"id-exhaustion", "axi", ruleIdExhaustion},
        {"controller-oversubscription", "axi",
         ruleControllerOversubscription},
        {"inflight-without-tlp", "axi", ruleInflightWithoutTlp},
    };
    return rules;
}

} // namespace beethoven::lint
