#include "lint/lint.h"

#include "core/elab_params.h"

namespace beethoven::lint
{

std::string
systemPath(const CompositionModel &m, std::size_t idx)
{
    std::string p = "systems[" + std::to_string(idx) + "]";
    if (idx < m.config->systems.size() &&
        !m.config->systems[idx].name.empty()) {
        p += " ('" + m.config->systems[idx].name + "')";
    }
    return p;
}

CompositionModel
buildCompositionModel(const AcceleratorConfig &config,
                      const Platform &platform)
{
    CompositionModel m;
    m.config = &config;
    m.platform = &platform;
    m.bus = platform.memoryConfig();
    m.slrs = platform.slrs();
    m.noc = platform.nocParams();
    m.hostSlr = platform.hostSlr();
    m.memorySlr = platform.memorySlr();
    m.memoryDerate = platform.memoryCongestionDerate();
    m.cellLib = platform.cellLibrary();
    m.preferredKind = platform.preferredMemoryKind();

    for (std::size_t s = 0; s < config.systems.size(); ++s) {
        const AcceleratorSystemConfig &sys = config.systems[s];
        for (const auto &rc : sys.readChannels) {
            const ReaderParams p = resolveReaderParams(rc, platform);
            ResolvedStream st;
            st.systemIdx = s;
            st.channel = rc.name;
            st.endpoints = u64(rc.nChannels) * sys.nCores;
            st.dataBytes = p.dataBytes;
            st.burstBeats = p.burstBeats;
            st.maxInflight = p.maxInflight;
            st.useTlp = p.useTlp;
            st.idsPerEndpoint = p.useTlp ? p.maxInflight : 1;
            m.streams.push_back(std::move(st));
        }
        for (const auto &sp : sys.scratchpads) {
            if (!sp.supportsInit)
                continue;
            const ReaderParams p = spadInitReaderParams(sp, platform);
            ResolvedStream st;
            st.isSpadInit = true;
            st.systemIdx = s;
            st.channel = sp.name;
            st.endpoints = sys.nCores;
            st.dataBytes = p.dataBytes;
            st.burstBeats = p.burstBeats;
            st.maxInflight = p.maxInflight;
            st.useTlp = p.useTlp;
            st.idsPerEndpoint = p.useTlp ? p.maxInflight : 1;
            m.streams.push_back(std::move(st));
        }
        for (const auto &wc : sys.writeChannels) {
            const WriterParams p = resolveWriterParams(wc, platform);
            ResolvedStream st;
            st.isWriter = true;
            st.systemIdx = s;
            st.channel = wc.name;
            st.endpoints = u64(wc.nChannels) * sys.nCores;
            st.dataBytes = p.dataBytes;
            st.burstBeats = p.burstBeats;
            st.maxInflight = p.maxInflight;
            st.useTlp = p.useTlp;
            st.idsPerEndpoint = p.useTlp ? p.maxInflight : 1;
            m.streams.push_back(std::move(st));
        }
        m.systemCoreLogic.push_back(
            estimateCoreLogic(sys, platform, m.bus));
    }

    for (const ResolvedStream &st : m.streams) {
        if (st.isWriter) {
            m.writeEndpoints += st.endpoints;
            m.writeIdsRequired += st.endpoints * st.idsPerEndpoint;
        } else {
            m.readEndpoints += st.endpoints;
            m.readIdsRequired += st.endpoints * st.idsPerEndpoint;
        }
    }
    return m;
}

std::vector<LintRuleEntry>
lintRules()
{
    std::vector<LintRuleEntry> all;
    for (const auto *table :
         {&configLintRules(), &memoryLintRules(), &axiLintRules(),
          &nocLintRules(), &placementLintRules()}) {
        all.insert(all.end(), table->begin(), table->end());
    }
    return all;
}

DiagnosticReport
lintComposition(const AcceleratorConfig &config,
                const Platform &platform)
{
    const CompositionModel model =
        buildCompositionModel(config, platform);
    DiagnosticReport report;
    for (const LintRuleEntry &rule : lintRules())
        rule.fn(model, report);
    return report;
}

} // namespace beethoven::lint
