/**
 * @file
 * Activity-driven power and energy telemetry (DESIGN.md §4f).
 *
 * Three pieces, layered on the existing observability attachments:
 *
 *  - PowerLedger: the elaborated SoC's energy decomposition. Each
 *    component carries a static-watts share of the PowerModel's
 *    resource-proportional estimate plus a pull closure returning its
 *    cumulative dynamic energy in picojoules (activity counters the
 *    modules already maintain, scaled by the platform's per-event
 *    coefficients). By construction the SoC total is the ordered sum
 *    of the component energies, so conservation is exact (==), not
 *    approximate — tests assert on it bit-for-bit.
 *
 *  - PowerMeter: a Simulator attachment (like TraceSink/HostProfiler)
 *    that samples the ledger every windowCycles, emits "power"
 *    counter-tracks into a Chrome trace, tracks per-component peaks,
 *    and snapshots labeled runs into a beethoven-power-1 report.
 *    It writes nothing into the simulator's stats tree, so the stats
 *    digest is bit-identical with or without a meter attached.
 *
 *  - EnergyConservationInvariant: a live Simulator::Invariant that
 *    re-sums the component energies against the ledger total at every
 *    periodic check (the soc_fuzz energy-conservation oracle).
 */

#ifndef BEETHOVEN_POWER_POWER_H
#define BEETHOVEN_POWER_POWER_H

#include <functional>
#include <string>
#include <vector>

#include "base/types.h"
#include "power/power_json.h"
#include "sim/simulator.h"

namespace beethoven
{

class TraceSink;

/**
 * The per-component energy decomposition of one elaborated SoC.
 * Built by AcceleratorSoc::buildPowerLedger(); read (never written)
 * by PowerMeter and EnergyConservationInvariant.
 */
class PowerLedger
{
  public:
    /** One energy-bearing component of the SoC. */
    struct Component
    {
        std::string name;
        unsigned slr = 0;
        double staticWatts = 0.0;
        /** Cumulative dynamic energy so far, picojoules. */
        std::function<double()> dynamicPj;
    };

    PowerLedger(double clock_mhz, unsigned n_slrs)
        : _clockMhz(clock_mhz), _nSlrs(n_slrs)
    {
    }

    void add(std::string name, unsigned slr, double static_watts,
             std::function<double()> dynamic_pj)
    {
        _components.push_back(
            {std::move(name), slr, static_watts, std::move(dynamic_pj)});
    }

    std::size_t numComponents() const { return _components.size(); }
    const Component &component(std::size_t i) const
    {
        return _components[i];
    }

    double clockMhz() const { return _clockMhz; }
    unsigned numSlrs() const { return _nSlrs; }

    /** Wall-clock seconds @p cycle corresponds to at this clock. */
    double seconds(Cycle cycle) const
    {
        return static_cast<double>(cycle) / (_clockMhz * 1e6);
    }

    /** Energy component @p i has consumed through @p cycle, joules. */
    double componentJoules(std::size_t i, Cycle cycle) const
    {
        const Component &c = _components[i];
        return c.staticWatts * seconds(cycle) +
               c.dynamicPj() * 1e-12;
    }

    /**
     * SoC energy through @p cycle: the ordered sum of the component
     * energies (identical iteration order to a caller summing
     * componentJoules 0..n-1, so conservation holds exactly), plus any
     * planted leak.
     */
    double totalJoules(Cycle cycle) const
    {
        double j = 0.0;
        for (std::size_t i = 0; i < _components.size(); ++i)
            j += componentJoules(i, cycle);
        return j + _leakJoules;
    }

    /** Sum of the components' static watts (the zero-activity floor). */
    double staticWatts() const
    {
        double w = 0.0;
        for (const Component &c : _components)
            w += c.staticWatts;
        return w;
    }

    /**
     * Fault injection for the fuzz oracle: add phantom joules to the
     * SoC total only, breaking component-to-total conservation so the
     * EnergyConservationInvariant must fire.
     */
    void plantEnergyLeak(double joules) { _leakJoules += joules; }
    double plantedLeakJoules() const { return _leakJoules; }

  private:
    double _clockMhz;
    unsigned _nSlrs;
    std::vector<Component> _components;
    double _leakJoules = 0.0;
};

/**
 * Simulator attachment that samples a PowerLedger into power traces
 * and a beethoven-power-1 report. Null-guarded like the other
 * attachments: with no meter attached, step() pays one pointer check.
 */
class PowerMeter
{
  public:
    /** @p window_cycles: cycles between samples (the overhead knob). */
    explicit PowerMeter(Cycle window_cycles = 1024)
        : _windowCycles(window_cycles == 0 ? 1 : window_cycles)
    {
    }

    /** Sink for "power" counter-tracks (not owned); nullptr = none. */
    void attachTrace(TraceSink *sink) { _trace = sink; }

    Cycle windowCycles() const { return _windowCycles; }

    /**
     * Called by Simulator::step() after the cycle advances. Samples
     * the attached ledger every windowCycles; no-op (and cheap) when
     * the simulator has no ledger.
     */
    void onCycle(Simulator &sim);

    /**
     * Start a new accounting interval: energy accrued before this
     * call is excluded from the next recordRun. Use it to scope a run
     * record to a measured phase (e.g. Table III's attend batch,
     * excluding matrix-load DMA), matching the cycle window the
     * throughput numbers are computed over.
     */
    void markRunStart(Simulator &sim);

    /**
     * Snapshot the simulator's ledger into a labeled run record
     * covering the interval since the last markRunStart (or since the
     * ledger was first seen), then start the next interval here.
     * @p ops = 0 means the bench reports no operation count.
     */
    void recordRun(Simulator &sim, const std::string &label,
                   double ops = 0.0);

    /** Add an analytic reference row (e.g. Table III's GPU). */
    void addReference(const std::string &label, double watts,
                      double ops_per_sec);

    const PowerReport &report() const { return _report; }
    const std::vector<PowerRunRecord> &runs() const
    {
        return _report.runs;
    }

  private:
    void resetWindow(const PowerLedger *ledger, Cycle cycle);

    Cycle _windowCycles;
    TraceSink *_trace = nullptr;
    PowerReport _report;

    // Sampling state for the current ledger.
    const PowerLedger *_ledger = nullptr;
    Cycle _lastSampleCycle = 0;
    std::vector<double> _lastJoules; ///< per component, at last sample
    std::vector<double> _peakWatts;  ///< per component, max window avg
    double _lastTotalJoules = 0.0;
    double _peakTotalWatts = 0.0;

    // Run-interval baseline (markRunStart / recordRun).
    Cycle _runStartCycle = 0;
    std::vector<double> _runStartJoules; ///< per component, at mark
    double _runStartTotalJoules = 0.0;
};

/**
 * Live oracle: the sum of per-component energies must equal the
 * ledger's SoC total. Exact by construction; the tolerance only
 * absorbs the non-associativity of an independent summation order.
 * A planted leak (PowerLedger::plantEnergyLeak) must trip it.
 */
class EnergyConservationInvariant : public Invariant
{
  public:
    explicit EnergyConservationInvariant(const PowerLedger &ledger)
        : _ledger(ledger)
    {
    }

    void check(Cycle cycle) override;

    const char *invariantName() const override
    {
        return "energy-conservation";
    }

  private:
    const PowerLedger &_ledger;
};

} // namespace beethoven

#endif // BEETHOVEN_POWER_POWER_H
