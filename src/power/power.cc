#include "power/power.h"

#include <cmath>

#include "base/log.h"
#include "trace/trace.h"

namespace beethoven
{

void
PowerMeter::resetWindow(const PowerLedger *ledger, Cycle cycle)
{
    _ledger = ledger;
    _lastSampleCycle = cycle;
    _lastJoules.assign(ledger->numComponents(), 0.0);
    _peakWatts.assign(ledger->numComponents(), 0.0);
    for (std::size_t i = 0; i < ledger->numComponents(); ++i)
        _lastJoules[i] = ledger->componentJoules(i, cycle);
    _lastTotalJoules = ledger->totalJoules(cycle);
    _peakTotalWatts = 0.0;
    _runStartCycle = cycle;
    _runStartJoules = _lastJoules;
    _runStartTotalJoules = _lastTotalJoules;
    _report.windowCycles = static_cast<double>(_windowCycles);
}

void
PowerMeter::markRunStart(Simulator &sim)
{
    const PowerLedger *ledger = sim.powerLedger();
    if (ledger == nullptr)
        return;
    if (ledger != _ledger) {
        resetWindow(ledger, sim.cycle());
        return;
    }
    const Cycle cycle = sim.cycle();
    _runStartCycle = cycle;
    _runStartJoules.resize(ledger->numComponents());
    for (std::size_t i = 0; i < ledger->numComponents(); ++i)
        _runStartJoules[i] = ledger->componentJoules(i, cycle);
    _runStartTotalJoules = ledger->totalJoules(cycle);
}

void
PowerMeter::onCycle(Simulator &sim)
{
    const PowerLedger *ledger = sim.powerLedger();
    if (ledger == nullptr)
        return;
    if (ledger != _ledger)
        resetWindow(ledger, sim.cycle());
    const Cycle cycle = sim.cycle();
    if (cycle - _lastSampleCycle < _windowCycles)
        return;
    const double dt =
        ledger->seconds(cycle) - ledger->seconds(_lastSampleCycle);
    if (dt <= 0.0) {
        _lastSampleCycle = cycle;
        return;
    }
    for (std::size_t i = 0; i < ledger->numComponents(); ++i) {
        const double j = ledger->componentJoules(i, cycle);
        const double w = (j - _lastJoules[i]) / dt;
        _lastJoules[i] = j;
        if (w > _peakWatts[i])
            _peakWatts[i] = w;
        if (_trace != nullptr)
            _trace->counter("power",
                            "power/" + ledger->component(i).name, cycle,
                            w);
    }
    const double tj = ledger->totalJoules(cycle);
    const double tw = (tj - _lastTotalJoules) / dt;
    _lastTotalJoules = tj;
    if (tw > _peakTotalWatts)
        _peakTotalWatts = tw;
    if (_trace != nullptr)
        _trace->counter("power", "power/soc", cycle, tw);
    _lastSampleCycle = cycle;
}

void
PowerMeter::recordRun(Simulator &sim, const std::string &label,
                      double ops)
{
    const PowerLedger *ledger = sim.powerLedger();
    if (ledger == nullptr)
        return;
    if (ledger != _ledger)
        resetWindow(ledger, 0);
    const Cycle cycle = sim.cycle();
    const Cycle run_cycles = cycle - _runStartCycle;
    const double secs =
        ledger->seconds(cycle) - ledger->seconds(_runStartCycle);

    PowerRunRecord r;
    r.label = label;
    r.clockMhz = ledger->clockMhz();
    r.cycles = static_cast<double>(run_cycles);
    r.joules = ledger->totalJoules(cycle) - _runStartTotalJoules;
    r.avgWatts = secs > 0.0 ? r.joules / secs : 0.0;
    r.staticWatts = ledger->staticWatts();
    r.ops = ops;
    r.slrWatts.assign(ledger->numSlrs(), 0.0);

    double peak = _peakTotalWatts;
    for (std::size_t i = 0; i < ledger->numComponents(); ++i) {
        const PowerLedger::Component &c = ledger->component(i);
        PowerComponentRecord cr;
        cr.name = c.name;
        cr.slr = c.slr;
        cr.joules = ledger->componentJoules(i, cycle) -
                    (i < _runStartJoules.size() ? _runStartJoules[i]
                                                : 0.0);
        cr.avgWatts = secs > 0.0 ? cr.joules / secs : 0.0;
        cr.peakWatts =
            i < _peakWatts.size() ? _peakWatts[i] : 0.0;
        if (cr.slr < r.slrWatts.size())
            r.slrWatts[cr.slr] += cr.avgWatts;
        r.components.push_back(std::move(cr));
    }
    // Before the first full sampling window the tracked peak is still
    // zero; the run average is the best lower bound available.
    if (peak < r.avgWatts)
        peak = r.avgWatts;
    r.peakWatts = peak;
    _report.runs.push_back(std::move(r));

    // The next labeled run accounts from here.
    _runStartCycle = cycle;
    if (_runStartJoules.size() != ledger->numComponents())
        _runStartJoules.resize(ledger->numComponents());
    for (std::size_t i = 0; i < ledger->numComponents(); ++i)
        _runStartJoules[i] = ledger->componentJoules(i, cycle);
    _runStartTotalJoules = ledger->totalJoules(cycle);
}

void
PowerMeter::addReference(const std::string &label, double watts,
                         double ops_per_sec)
{
    PowerRunRecord r;
    r.label = label;
    r.reference = true;
    r.avgWatts = watts;
    r.opsPerSec = ops_per_sec;
    _report.runs.push_back(std::move(r));
}

void
EnergyConservationInvariant::check(Cycle cycle)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < _ledger.numComponents(); ++i)
        sum += _ledger.componentJoules(i, cycle);
    const double total = _ledger.totalJoules(cycle);
    const double tol = 1e-6 * std::abs(total) + 1e-9;
    if (std::abs(total - sum) > tol) {
        fatal("invariant violation [energy-conservation]: component "
              "energies sum to %.12g J but the SoC total is %.12g J "
              "at cycle %llu (delta %.3g J)",
              sum, total, static_cast<unsigned long long>(cycle),
              total - sum);
    }
}

} // namespace beethoven
