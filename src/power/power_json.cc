#include "power/power_json.h"

#include <iomanip>

#include "base/json.h"
#include "base/log.h"
#include "perf/bench_json.h" // jsonEscape

namespace beethoven
{

const PowerRunRecord *
PowerReport::find(const std::string &label) const
{
    for (const PowerRunRecord &r : runs)
        if (r.label == label)
            return &r;
    return nullptr;
}

double
PowerReport::totalJoules() const
{
    double j = 0.0;
    for (const PowerRunRecord &r : runs)
        if (!r.reference)
            j += r.joules;
    return j;
}

double
PowerReport::summaryAvgWatts() const
{
    double j = 0.0, s = 0.0;
    for (const PowerRunRecord &r : runs) {
        if (r.reference)
            continue;
        j += r.joules;
        s += r.seconds();
    }
    return s > 0.0 ? j / s : 0.0;
}

double
PowerReport::summaryEnergyPerOpUj() const
{
    double e = 0.0;
    for (const PowerRunRecord &r : runs)
        if (!r.reference && r.ops > 0.0)
            e = r.energyPerOpUj();
    return e;
}

void
writePowerReportJson(std::ostream &os, const PowerReport &report)
{
    // Full precision: the round-trip (write -> parse) must preserve
    // the conservation identities the tests assert on.
    os << std::setprecision(17);
    os << "{\"schema\":\"" << PowerReport::kSchema
       << "\",\"window_cycles\":" << report.windowCycles
       << ",\n\"summary\":{\"total_joules\":" << report.totalJoules()
       << ",\"avg_watts\":" << report.summaryAvgWatts();
    if (report.summaryEnergyPerOpUj() > 0.0)
        os << ",\"energy_per_op_uj\":" << report.summaryEnergyPerOpUj();
    os << "},\n\"runs\":[";
    bool first = true;
    for (const PowerRunRecord &r : report.runs) {
        if (!first)
            os << ",";
        first = false;
        os << "\n {\"label\":\"" << jsonEscape(r.label)
           << "\",\"reference\":" << (r.reference ? "true" : "false");
        if (r.reference) {
            os << ",\"avg_watts\":" << r.avgWatts
               << ",\"ops_per_sec\":" << r.opsPerSec
               << ",\"energy_per_op_uj\":" << r.energyPerOpUj() << "}";
            continue;
        }
        os << ",\"clock_mhz\":" << r.clockMhz
           << ",\"cycles\":" << r.cycles << ",\"joules\":" << r.joules
           << ",\"avg_watts\":" << r.avgWatts
           << ",\"peak_watts\":" << r.peakWatts
           << ",\"static_watts\":" << r.staticWatts;
        if (r.ops > 0.0)
            os << ",\"ops\":" << r.ops
               << ",\"energy_per_op_uj\":" << r.energyPerOpUj();
        os << ",\"slr_watts\":[";
        for (std::size_t i = 0; i < r.slrWatts.size(); ++i)
            os << (i != 0 ? "," : "") << r.slrWatts[i];
        os << "],\"components\":[";
        bool cfirst = true;
        for (const PowerComponentRecord &c : r.components) {
            if (!cfirst)
                os << ",";
            cfirst = false;
            os << "\n  {\"name\":\"" << jsonEscape(c.name)
               << "\",\"slr\":" << c.slr << ",\"joules\":" << c.joules
               << ",\"avg_watts\":" << c.avgWatts
               << ",\"peak_watts\":" << c.peakWatts << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
}

namespace
{

double
requireNumber(const JsonValue &obj, const char *key, const char *where)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        fatal("power json: missing or non-numeric \"%s\" in %s", key,
              where);
    return v->number;
}

double
numberOr(const JsonValue &obj, const char *key, double fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

} // namespace

PowerReport
parsePowerReport(const JsonValue &v)
{
    if (!v.isObject())
        fatal("power json: top level is not an object");
    const JsonValue *schema = v.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != PowerReport::kSchema)
        fatal("power json: missing or unsupported schema marker "
              "(expected \"%s\")",
              PowerReport::kSchema);

    PowerReport report;
    report.windowCycles = numberOr(v, "window_cycles", 1024.0);

    const JsonValue *runs = v.find("runs");
    if (runs == nullptr || !runs->isArray())
        fatal("power json: missing \"runs\" array");
    for (const JsonValue &rv : runs->array) {
        if (!rv.isObject())
            fatal("power json: run entry is not an object");
        PowerRunRecord r;
        const JsonValue *label = rv.find("label");
        if (label == nullptr || !label->isString())
            fatal("power json: run entry without a string \"label\"");
        r.label = label->string;
        const char *where = r.label.c_str();
        if (const JsonValue *ref = rv.find("reference");
            ref != nullptr && ref->isBool())
            r.reference = ref->boolean;
        r.avgWatts = requireNumber(rv, "avg_watts", where);
        if (r.reference) {
            r.opsPerSec = requireNumber(rv, "ops_per_sec", where);
            report.runs.push_back(std::move(r));
            continue;
        }
        r.clockMhz = requireNumber(rv, "clock_mhz", where);
        r.cycles = requireNumber(rv, "cycles", where);
        r.joules = requireNumber(rv, "joules", where);
        r.peakWatts = requireNumber(rv, "peak_watts", where);
        r.staticWatts = requireNumber(rv, "static_watts", where);
        r.ops = numberOr(rv, "ops", 0.0);
        if (const JsonValue *sw = rv.find("slr_watts");
            sw != nullptr && sw->isArray()) {
            for (const JsonValue &s : sw->array)
                r.slrWatts.push_back(s.isNumber() ? s.number : 0.0);
        }
        if (const JsonValue *comps = rv.find("components");
            comps != nullptr && comps->isArray()) {
            for (const JsonValue &cv : comps->array) {
                if (!cv.isObject())
                    fatal("power json: component entry in %s is not an "
                          "object",
                          where);
                PowerComponentRecord c;
                const JsonValue *n = cv.find("name");
                if (n == nullptr || !n->isString())
                    fatal("power json: component without a name in %s",
                          where);
                c.name = n->string;
                c.slr =
                    static_cast<unsigned>(numberOr(cv, "slr", 0.0));
                c.joules = requireNumber(cv, "joules", where);
                c.avgWatts = requireNumber(cv, "avg_watts", where);
                c.peakWatts = numberOr(cv, "peak_watts", 0.0);
                r.components.push_back(std::move(c));
            }
        }
        report.runs.push_back(std::move(r));
    }
    return report;
}

} // namespace beethoven
