/**
 * @file
 * The beethoven-power-1 stats-JSON schema (DESIGN.md §4f).
 *
 * One file records the power/energy telemetry of one bench process:
 * per labeled run, the cycle count, total joules, average/peak watts,
 * the static floor, the per-component and per-SLR breakdown, and —
 * for benches that report operation counts — energy-per-op. Analytic
 * reference rows (e.g. Table III's GPU numbers) carry a `reference`
 * marker plus their published watts and throughput, so efficiency
 * ratios against them are computable from the file alone.
 *
 * bench/common/bench_cli writes these via --power-json;
 * tools/power_report renders them; tools/soc_perf folds the summary
 * block into BENCH_<label>.json. The parser accepts exactly schema
 * "beethoven-power-1" and throws ConfigError on anything else.
 */

#ifndef BEETHOVEN_POWER_POWER_JSON_H
#define BEETHOVEN_POWER_POWER_JSON_H

#include <ostream>
#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven
{

struct JsonValue;

/** One component's share of a run's energy. */
struct PowerComponentRecord
{
    std::string name;
    unsigned slr = 0;
    double joules = 0.0;
    double avgWatts = 0.0;
    double peakWatts = 0.0;
};

/** One labeled run (or analytic reference point). */
struct PowerRunRecord
{
    std::string label;
    bool reference = false; ///< published numbers, not simulated

    // Measured runs.
    double clockMhz = 0.0;
    double cycles = 0.0;
    double joules = 0.0;
    double avgWatts = 0.0;
    double peakWatts = 0.0;
    double staticWatts = 0.0;
    double ops = 0.0; ///< 0 = the bench reported no operation count
    std::vector<double> slrWatts; ///< avg watts per SLR index
    std::vector<PowerComponentRecord> components;

    // Reference rows.
    double opsPerSec = 0.0;

    double
    seconds() const
    {
        return clockMhz > 0.0 ? cycles / (clockMhz * 1e6) : 0.0;
    }

    /** Microjoules per operation; 0 when no ops were reported. */
    double
    energyPerOpUj() const
    {
        if (reference)
            return opsPerSec > 0.0 ? avgWatts / opsPerSec * 1e6 : 0.0;
        return ops > 0.0 ? joules / ops * 1e6 : 0.0;
    }
};

struct PowerReport
{
    static constexpr const char *kSchema = "beethoven-power-1";

    double windowCycles = 1024.0; ///< meter sampling window
    std::vector<PowerRunRecord> runs;

    /** Run for @p label, or nullptr. */
    const PowerRunRecord *find(const std::string &label) const;

    /** Joules over all measured (non-reference) runs. */
    double totalJoules() const;

    /** Energy-weighted average watts over measured runs. */
    double summaryAvgWatts() const;

    /** energyPerOpUj of the last measured run reporting ops; 0 if none. */
    double summaryEnergyPerOpUj() const;
};

void writePowerReportJson(std::ostream &os, const PowerReport &report);

/**
 * Parse a power report from already-parsed JSON.
 * @throws ConfigError when the schema marker or required keys are
 *         missing or mistyped.
 */
PowerReport parsePowerReport(const JsonValue &v);

} // namespace beethoven

#endif // BEETHOVEN_POWER_POWER_JSON_H
