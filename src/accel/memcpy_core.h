/**
 * @file
 * Memory-Copy (MemCpy) microbenchmark Core (Section III-A).
 *
 * "We implement a basic memory access kernel, Memory-Copy (MemCpy) ...
 * because it isolates the reader and writer abstractions from
 * externalities."
 *
 * The Beethoven implementation is exactly the 23-line pattern the
 * paper describes: one Reader, one Writer, a command carrying (src,
 * dst, len), and a word-per-cycle copy loop. Burst length, inflight
 * depth and TLP come from the channel configuration, so the Fig. 4
 * variants (Beethoven / Beethoven No-TLP / 16-beat) are pure config
 * changes — the core logic is untouched, which is the point.
 */

#ifndef BEETHOVEN_ACCEL_MEMCPY_CORE_H
#define BEETHOVEN_ACCEL_MEMCPY_CORE_H

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven
{

class MemcpyCore : public AcceleratorCore
{
  public:
    explicit MemcpyCore(const CoreContext &ctx);

    void tick() override;

    enum Arg { argSrc = 0, argDst = 1, argLenBytes = 2 };

    /** Variant knobs for the Fig. 4 sweep. */
    struct Variant
    {
        unsigned dataBytes = 64;  ///< port width (bus width by default)
        unsigned burstBeats = 16; ///< paper: smaller txns across IDs
        unsigned maxInflight = 4;
        bool useTlp = true;
    };

    static AcceleratorSystemConfig systemConfig(
        unsigned n_cores, const Variant &variant,
        unsigned addr_bits = 34);

    /** Device-side cycles of the most recent copy (kernel time,
     *  excluding host dispatch), for the Fig. 4 bandwidth plots. */
    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

  private:
    enum class State { Idle, Launch, Streaming, WaitWriter, Respond };

    Reader &_reader;
    Writer &_writer;

    State _state = State::Idle;
    u64 _wordsLeft = 0;
    DecodedCommand _cmd;
    /** Launch operands held while the reader/writer cmd ports are
     *  full. Without this holding state a command accepted in Idle
     *  would be dropped when the ports can't take it that cycle. */
    Addr _pendingSrc = 0;
    Addr _pendingDst = 0;
    u64 _pendingLen = 0;
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
};

} // namespace beethoven

#endif // BEETHOVEN_ACCEL_MEMCPY_CORE_H
