/**
 * @file
 * A3 approximate attention accelerator core (Section III-C, Fig. 7).
 *
 * "The A3 design comprises three coarse-grained stages: vector dot
 * product, exponentiation/softmax, and a final output computation."
 * The key and value matrices are stationary in init-loaded
 * Scratchpads; queries stream in through a Reader and attention
 * outputs stream back through a Writer.
 *
 * Stage structure (BERT parameterization: 64-dim embeddings, 320
 * keys/values, 1-byte fixed-point operands with wider intermediates):
 *
 *   S1  score[k] = dot(query, key[k])      — 64 int8 MAC lanes,
 *       one key row per cycle; tracks the extremum for the first
 *       *global reduction* (softmax normalization), so scores stage
 *       in a FIFO until the reduction completes;
 *   S2  w[k] = expLUT(max - score[k])      — one exponent per cycle;
 *       accumulates sum(w), the second global reduction, staging the
 *       weights in a second FIFO;
 *   S3  out[d] = (sum_k w[k]*value[k][d]) / sum(w) — one value row
 *       per cycle, 64 parallel multiply-accumulates, then a
 *       reciprocal-multiply normalization and int8 quantization.
 *
 * The three stages run concurrently on different queries (S1 uses the
 * key scratchpad, S3 the value scratchpad), so steady-state throughput
 * is one query per ~n_keys cycles — the multi-core scaling the
 * original A3 authors proposed but never integrated, which Beethoven
 * makes a configuration change.
 */

#ifndef BEETHOVEN_ACCEL_A3_A3_CORE_H
#define BEETHOVEN_ACCEL_A3_A3_CORE_H

#include <array>
#include <deque>
#include <vector>

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven::a3
{

/** BERT-shaped parameterization used throughout the case study. */
struct A3Params
{
    static constexpr unsigned dim = 64;      ///< embedding dimension
    static constexpr unsigned maxKeys = 320; ///< sentences (keys/values)
    static constexpr unsigned expShift = 2;  ///< LUT index granularity
    static constexpr unsigned lutEntries = 256;
};

/** The fixed-point exp lookup table shared by core and golden model. */
const std::array<u16, A3Params::lutEntries> &expTable();

class A3Core : public AcceleratorCore
{
  public:
    explicit A3Core(const CoreContext &ctx);

    void tick() override;

    /** Command 0: load the stationary key/value matrices. */
    enum LoadArg { argKeys = 0, argValues = 1, argNKeys = 2 };
    /** Command 1: stream n queries and write attention outputs. */
    enum AttendArg { argQuery = 0, argOut = 1, argNQueries = 2 };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

    /** Per-stage busy-cycle counters (for the Fig. 7 bench). */
    Cycle stage1Busy() const { return _s1Busy; }
    Cycle stage2Busy() const { return _s2Busy; }
    Cycle stage3Busy() const { return _s3Busy; }

  private:
    struct ScoredQuery
    {
        std::array<i32, A3Params::maxKeys> scores;
        i32 maxScore = 0;
    };
    struct WeightedQuery
    {
        std::array<u16, A3Params::maxKeys> weights;
        u32 weightSum = 0;
    };

    void tickStage1();
    void tickStage2();
    void tickStage3();

    Scratchpad &_keys;
    Scratchpad &_values;
    Reader &_queryReader;
    Writer &_outWriter;

    // Configuration state.
    unsigned _nKeys = 0;
    bool _matricesLoaded = false;
    bool _loadPending = false;
    bool _respLoadPending = false;
    unsigned _keysLoaded = 0;
    unsigned _valuesLoaded = 0;
    DecodedCommand _loadCmd;

    // Attend-command state.
    bool _attending = false;
    DecodedCommand _attendCmd;
    unsigned _nQueries = 0;
    unsigned _queriesStarted = 0; ///< entered stage 1
    unsigned _queriesDone = 0;    ///< written by stage 3
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
    bool _respPending = false;

    // Stage 1 state.
    bool _s1Active = false;
    std::array<i8, A3Params::dim> _s1Query{};
    ScoredQuery _s1Work;
    unsigned _s1Req = 0;
    unsigned _s1Resp = 0;
    std::deque<ScoredQuery> _scoreFifo; ///< S1 -> S2 (depth 2)

    // Stage 2 state.
    bool _s2Active = false;
    ScoredQuery _s2In;
    WeightedQuery _s2Work;
    unsigned _s2Idx = 0;
    std::deque<WeightedQuery> _weightFifo; ///< S2 -> S3 (depth 2)

    // Stage 3 state.
    bool _s3Active = false;
    WeightedQuery _s3In;
    std::array<i64, A3Params::dim> _s3Acc{};
    unsigned _s3Req = 0;
    unsigned _s3Resp = 0;
    unsigned _s3DivideCountdown = 0;

    Cycle _s1Busy = 0;
    Cycle _s2Busy = 0;
    Cycle _s3Busy = 0;
};

} // namespace beethoven::a3

#endif // BEETHOVEN_ACCEL_A3_A3_CORE_H
