#include "accel/a3/a3_core.h"

#include <cmath>
#include <cstring>

namespace beethoven::a3
{

const std::array<u16, A3Params::lutEntries> &
expTable()
{
    static const auto table = [] {
        std::array<u16, A3Params::lutEntries> t{};
        for (unsigned i = 0; i < A3Params::lutEntries; ++i) {
            const double x =
                double(i << A3Params::expShift) / 32.0;
            t[i] = static_cast<u16>(
                std::lround(65535.0 * std::exp(-x)));
        }
        return t;
    }();
    return table;
}

A3Core::A3Core(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _keys(getScratchpad("keys")),
      _values(getScratchpad("values")),
      _queryReader(getReaderModule("query")),
      _outWriter(getWriterModule("out"))
{}

AcceleratorSystemConfig
A3Core::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "A3System";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<A3Core>(ctx);
    };
    for (const char *name : {"keys", "values"}) {
        ScratchpadConfig sp;
        sp.name = name;
        sp.dataWidthBits = A3Params::dim * 8;
        sp.nDatas = A3Params::maxKeys;
        sp.supportsInit = true;
        sys.scratchpads.push_back(sp);
    }
    sys.readChannels.push_back({"query", /*dataBytes=*/64});
    sys.writeChannels.push_back({"out", /*dataBytes=*/64});
    sys.commands.push_back(CommandSpec(
        "load_matrices",
        {CommandField::address("keys_addr", addr_bits),
         CommandField::address("values_addr", addr_bits),
         CommandField::uint("n_keys", 16)},
        /*resp_bits=*/0));
    sys.commands.push_back(CommandSpec(
        "attend",
        {CommandField::address("query_addr", addr_bits),
         CommandField::address("out_addr", addr_bits),
         CommandField::uint("n_queries", 24)},
        /*resp_bits=*/0));
    // Table II, "Kernel" row: the 64-lane dot-product tree, exponent
    // unit, 64 weighted accumulators and the two staging FIFOs.
    sys.kernelResources.lut = 16900;
    sys.kernelResources.ff = 8200;
    sys.kernelResources.clb = 3000;
    sys.kernelResources.bram = 1; // score/weight FIFOs
    return sys;
}

void
A3Core::tick()
{
    // Accept commands.
    if (auto cmd = pollCommand()) {
        if (cmd->commandId == 0) {
            _loadCmd = *cmd;
            _nKeys = static_cast<unsigned>(cmd->args[argNKeys]);
            beethoven_assert(_nKeys >= 1 && _nKeys <= A3Params::maxKeys,
                             "a3: n_keys=%u out of range", _nKeys);
            beethoven_assert(_keys.initPort().canPush() &&
                                 _values.initPort().canPush(),
                             "a3: init ports busy during load");
            _keys.initPort().push({cmd->args[argKeys], 0, _nKeys});
            _values.initPort().push({cmd->args[argValues], 0, _nKeys});
            _matricesLoaded = false;
            _loadPending = true;
        } else {
            beethoven_assert(!_attending,
                             "a3: attend while a batch is in flight");
            _attendCmd = *cmd;
            _nQueries =
                static_cast<unsigned>(cmd->args[argNQueries]);
            _attending = _nQueries > 0;
            _respPending = _nQueries == 0;
            _queriesStarted = 0;
            _queriesDone = 0;
            _lastStart = sim().cycle();
            if (_attending) {
                beethoven_assert(
                    _queryReader.cmdPort().canPush() &&
                        _outWriter.cmdPort().canPush(),
                    "a3: stream ports busy during attend");
                _queryReader.cmdPort().push(
                    {_attendCmd.args[argQuery], u64(_nQueries) * 64});
                _outWriter.cmdPort().push(
                    {_attendCmd.args[argOut], u64(_nQueries) * 64});
            }
        }
    }

    // Matrix load completion (both scratchpad inits).
    if (_loadPending) {
        unsigned done = 0;
        if (_keys.initDonePort().canPop()) {
            _keys.initDonePort().pop();
            ++_keysLoaded;
        }
        if (_values.initDonePort().canPop()) {
            _values.initDonePort().pop();
            ++_valuesLoaded;
        }
        done = _keysLoaded + _valuesLoaded;
        if (done == 2) {
            _keysLoaded = 0;
            _valuesLoaded = 0;
            _matricesLoaded = true;
            _loadPending = false;
            if (respond(_loadCmd)) {
                // Acknowledged immediately; if the channel were full
                // the response would be retried below.
            } else {
                _respLoadPending = true;
            }
        }
    }
    if (_respLoadPending && respond(_loadCmd))
        _respLoadPending = false;

    if (_attending && _matricesLoaded) {
        tickStage3();
        tickStage2();
        tickStage1();
    }

    // Batch completion: all outputs accepted by the memory system.
    if (_attending && _queriesDone == _nQueries &&
        _outWriter.donePort().canPop()) {
        _outWriter.donePort().pop();
        _lastEnd = sim().cycle();
        _attending = false;
        _respPending = true;
    }
    if (_respPending && respond(_attendCmd))
        _respPending = false;
}

void
A3Core::tickStage1()
{
    bool busy = false;
    // Start a new query when the previous one has fully drained into
    // the score FIFO.
    if (!_s1Active && _queriesStarted < _nQueries &&
        _scoreFifo.size() < 2 && _queryReader.dataPort().canPop()) {
        StreamWord w = _queryReader.dataPort().pop();
        std::memcpy(_s1Query.data(), w.data.data(), A3Params::dim);
        _s1Work = ScoredQuery{};
        _s1Req = 0;
        _s1Resp = 0;
        _s1Active = true;
        ++_queriesStarted;
        busy = true;
    }
    if (_s1Active) {
        // Pipelined key-row reads: one row per cycle through port 0.
        if (_s1Req < _nKeys && _keys.reqPort(0).canPush()) {
            SpadRequest req;
            req.row = _s1Req++;
            _keys.reqPort(0).push(req);
            busy = true;
        }
        if (_s1Resp < _nKeys && _keys.respPort(0).canPop()) {
            const SpadResponse resp = _keys.respPort(0).pop();
            const i8 *row =
                reinterpret_cast<const i8 *>(resp.data.data());
            i32 acc = 0;
            for (unsigned d = 0; d < A3Params::dim; ++d)
                acc += i32(_s1Query[d]) * i32(row[d]);
            _s1Work.scores[_s1Resp] = acc;
            // First global reduction: the extremum for softmax
            // normalization.
            if (_s1Resp == 0 || acc > _s1Work.maxScore)
                _s1Work.maxScore = acc;
            ++_s1Resp;
            busy = true;
            if (_s1Resp == _nKeys) {
                _scoreFifo.push_back(_s1Work);
                _s1Active = false;
            }
        }
    }
    if (busy)
        ++_s1Busy;
}

void
A3Core::tickStage2()
{
    bool busy = false;
    if (!_s2Active && !_scoreFifo.empty() && _weightFifo.size() < 2) {
        _s2In = _scoreFifo.front();
        _scoreFifo.pop_front();
        _s2Work = WeightedQuery{};
        _s2Idx = 0;
        _s2Active = true;
        busy = true;
    }
    if (_s2Active && _s2Idx < _nKeys) {
        // One exponent per cycle via the lookup table; the running sum
        // is the second global reduction.
        const i32 d = _s2In.maxScore - _s2In.scores[_s2Idx];
        const unsigned idx =
            std::min<u32>(static_cast<u32>(d) >> A3Params::expShift,
                          A3Params::lutEntries - 1);
        const u16 w = expTable()[idx];
        _s2Work.weights[_s2Idx] = w;
        _s2Work.weightSum += w;
        ++_s2Idx;
        busy = true;
        if (_s2Idx == _nKeys) {
            _weightFifo.push_back(_s2Work);
            _s2Active = false;
        }
    }
    if (busy)
        ++_s2Busy;
}

void
A3Core::tickStage3()
{
    bool busy = false;
    if (!_s3Active && !_weightFifo.empty()) {
        _s3In = _weightFifo.front();
        _weightFifo.pop_front();
        _s3Acc.fill(0);
        _s3Req = 0;
        _s3Resp = 0;
        _s3DivideCountdown = 0;
        _s3Active = true;
        busy = true;
    }
    if (_s3Active) {
        if (_s3Req < _nKeys && _values.reqPort(0).canPush()) {
            SpadRequest req;
            req.row = _s3Req++;
            _values.reqPort(0).push(req);
            busy = true;
        }
        if (_s3Resp < _nKeys && _values.respPort(0).canPop()) {
            const SpadResponse resp = _values.respPort(0).pop();
            const i8 *row =
                reinterpret_cast<const i8 *>(resp.data.data());
            const i64 w = _s3In.weights[_s3Resp];
            for (unsigned d = 0; d < A3Params::dim; ++d)
                _s3Acc[d] += w * i64(row[d]);
            ++_s3Resp;
            busy = true;
            if (_s3Resp == _nKeys)
                _s3DivideCountdown = 4; // reciprocal-multiply latency
        }
        if (_s3Resp == _nKeys && _s3DivideCountdown > 0) {
            busy = true;
            if (--_s3DivideCountdown == 0 &&
                _outWriter.dataPort().canPush()) {
                StreamWord out;
                out.data.resize(A3Params::dim);
                const i64 sum = std::max<i64>(_s3In.weightSum, 1);
                for (unsigned d = 0; d < A3Params::dim; ++d) {
                    i64 v = _s3Acc[d] / sum;
                    if (v > 127)
                        v = 127;
                    if (v < -128)
                        v = -128;
                    out.data[d] = static_cast<u8>(static_cast<i8>(v));
                }
                _outWriter.dataPort().push(std::move(out));
                ++_queriesDone;
                _s3Active = false;
            } else if (_s3DivideCountdown == 0) {
                _s3DivideCountdown = 1; // retry the push next cycle
            }
        }
    }
    if (busy)
        ++_s3Busy;
}

} // namespace beethoven::a3
