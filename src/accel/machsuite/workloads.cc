#include "accel/machsuite/workloads.h"

namespace beethoven::machsuite
{

const char *
parallelismName(Parallelism p)
{
    switch (p) {
      case Parallelism::None: return "None";
      case Parallelism::Medium: return "Medium";
      case Parallelism::High: return "High";
    }
    return "?";
}

const std::vector<Workload> &
table1Workloads()
{
    static const std::vector<Workload> workloads = {
        {"GeMM", "Blocked dense matrix multiply",
         "O(N^3) matrix multiply", "N = 256", Parallelism::High, 256, 0},
        {"NW", "Needleman-Wunsch global sequence alignment",
         "O(N^2) string alignment", "N = 256", Parallelism::None, 256,
         0},
        {"Stencil2D", "3x3 convolution stencil over a 2D grid",
         "2D stencil pattern", "N = 256", Parallelism::Medium, 256, 0},
        {"Stencil3D", "7-point stencil over a 3D volume",
         "3D stencil pattern", "N = 32", Parallelism::High, 32, 0},
        {"MD-KNN",
         "N-Body molecular dynamics, k-nearest-neighbors force pass",
         "N-Body problem using k-nearest neighbors approx.",
         "N = 1024, K = 32", Parallelism::High, 1024, 32},
    };
    return workloads;
}

} // namespace beethoven::machsuite
