#include "accel/machsuite/stencil.h"

#include "baselines/machsuite_golden.h"

namespace beethoven::machsuite
{

namespace
{

i32
wordToI32(const std::vector<u8> &bytes)
{
    u32 v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= u32(bytes[i]) << (8 * i);
    return static_cast<i32>(v);
}

} // namespace

// --- Stencil2D ------------------------------------------------------

Stencil2dCore::Stencil2dCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _grid(getScratchpad("grid")),
      _outWriter(getWriterModule("out"))
{}

AcceleratorSystemConfig
Stencil2dCore::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "Stencil2dSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<Stencil2dCore>(ctx);
    };
    ScratchpadConfig grid;
    grid.name = "grid";
    grid.dataWidthBits = 32;
    grid.nDatas = maxDim * maxDim;
    grid.supportsInit = true;
    sys.scratchpads.push_back(grid);
    sys.writeChannels.push_back({"out", /*dataBytes=*/4});
    sys.commands.push_back(CommandSpec(
        "stencil2d",
        {CommandField::address("in_addr", addr_bits),
         CommandField::address("out_addr", addr_bits),
         CommandField::uint("rows", 16),
         CommandField::uint("cols", 16)},
        /*resp_bits=*/0));
    sys.kernelResources.lut = 4200;
    sys.kernelResources.ff = 5200;
    sys.kernelResources.clb = 700;
    return sys;
}

void
Stencil2dCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _lastStart = sim().cycle();
        _rows = static_cast<unsigned>(cmd->args[argRows]);
        _cols = static_cast<unsigned>(cmd->args[argCols]);
        beethoven_assert(_rows >= 3 && _cols >= 3 &&
                             _rows * _cols <= maxDim * maxDim,
                         "stencil2d: bad dimensions %ux%u", _rows,
                         _cols);
        if (!_grid.initPort().canPush() ||
            !_outWriter.cmdPort().canPush()) {
            return;
        }
        _grid.initPort().push({_cmd.args[argIn], 0, _rows * _cols});
        _outWriter.cmdPort().push(
            {_cmd.args[argOut], u64(_rows) * _cols * sizeof(i32)});
        _state = State::Load;
        return;
      }
      case State::Load: {
        if (_grid.initDonePort().canPop()) {
            _grid.initDonePort().pop();
            _r = 0;
            _c = 0;
            _tap = 0;
            _tapResp = 0;
            _acc = 0;
            _state = State::Point;
        }
        return;
      }
      case State::Point: {
        const bool interior = _r >= 1 && _r + 1 < _rows && _c >= 1 &&
                              _c + 1 < _cols;
        const unsigned n_taps = interior ? 9 : 1;
        if (_tap < n_taps && _grid.reqPort(0).canPush()) {
            SpadRequest req;
            if (interior) {
                const unsigned dr = _tap / 3, dc = _tap % 3;
                req.row = (_r + dr - 1) * _cols + (_c + dc - 1);
            } else {
                req.row = _r * _cols + _c;
            }
            _grid.reqPort(0).push(req);
            ++_tap;
        }
        if (_tapResp < n_taps && _grid.respPort(0).canPop()) {
            const i32 v = wordToI32(_grid.respPort(0).pop().data);
            _acc += interior ? i64(stencil2dCoeffs[_tapResp]) * v
                             : i64(v);
            ++_tapResp;
        }
        if (_tapResp == n_taps &&
            _outWriter.dataPort().canPush()) {
            _outWriter.dataPort().push(StreamWord::fromUint(
                static_cast<u32>(static_cast<i32>(_acc)), 4));
            _acc = 0;
            _tap = 0;
            _tapResp = 0;
            if (++_c == _cols) {
                _c = 0;
                if (++_r == _rows)
                    _state = State::WaitWriter;
            }
        }
        return;
      }
      case State::WaitWriter: {
        if (_outWriter.donePort().canPop()) {
            _outWriter.donePort().pop();
            _lastEnd = sim().cycle();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

// --- Stencil3D ------------------------------------------------------

Stencil3dCore::Stencil3dCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _grid(getScratchpad("volume")),
      _outWriter(getWriterModule("out"))
{}

AcceleratorSystemConfig
Stencil3dCore::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "Stencil3dSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<Stencil3dCore>(ctx);
    };
    ScratchpadConfig vol;
    vol.name = "volume";
    vol.dataWidthBits = 32;
    vol.nDatas = maxDim * maxDim * maxDim;
    vol.supportsInit = true;
    sys.scratchpads.push_back(vol);
    sys.writeChannels.push_back({"out", /*dataBytes=*/4});
    sys.commands.push_back(CommandSpec(
        "stencil3d",
        {CommandField::address("in_addr", addr_bits),
         CommandField::address("out_addr", addr_bits),
         CommandField::uint("n", 16)},
        /*resp_bits=*/0));
    sys.kernelResources.lut = 4600;
    sys.kernelResources.ff = 5600;
    sys.kernelResources.clb = 760;
    return sys;
}

void
Stencil3dCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _lastStart = sim().cycle();
        _n = static_cast<unsigned>(cmd->args[argN]);
        beethoven_assert(_n >= 3 && _n <= maxDim,
                         "stencil3d: n=%u out of range", _n);
        if (!_grid.initPort().canPush() ||
            !_outWriter.cmdPort().canPush()) {
            return;
        }
        _grid.initPort().push({_cmd.args[argIn], 0, _n * _n * _n});
        _outWriter.cmdPort().push(
            {_cmd.args[argOut], u64(_n) * _n * _n * sizeof(i32)});
        _state = State::Load;
        return;
      }
      case State::Load: {
        if (_grid.initDonePort().canPop()) {
            _grid.initDonePort().pop();
            _x = _y = _z = 0;
            _tap = 0;
            _tapResp = 0;
            _acc = 0;
            _state = State::Point;
        }
        return;
      }
      case State::Point: {
        const bool interior = _x >= 1 && _x + 1 < _n && _y >= 1 &&
                              _y + 1 < _n && _z >= 1 && _z + 1 < _n;
        const unsigned n_taps = interior ? 7 : 1;
        auto row_of = [&](unsigned x, unsigned y, unsigned z) {
            return (z * _n + y) * _n + x;
        };
        if (_tap < n_taps && _grid.reqPort(0).canPush()) {
            SpadRequest req;
            if (interior) {
                // Tap order: center, -x, +x, -y, +y, -z, +z.
                static const int dx[7] = {0, -1, 1, 0, 0, 0, 0};
                static const int dy[7] = {0, 0, 0, -1, 1, 0, 0};
                static const int dz[7] = {0, 0, 0, 0, 0, -1, 1};
                req.row = row_of(_x + dx[_tap], _y + dy[_tap],
                                 _z + dz[_tap]);
            } else {
                req.row = row_of(_x, _y, _z);
            }
            _grid.reqPort(0).push(req);
            ++_tap;
        }
        if (_tapResp < n_taps && _grid.respPort(0).canPop()) {
            const i32 v = wordToI32(_grid.respPort(0).pop().data);
            if (!interior)
                _acc += v;
            else if (_tapResp == 0)
                _acc += i64(stencil3dC0) * v;
            else
                _acc += i64(stencil3dC1) * v;
            ++_tapResp;
        }
        if (_tapResp == n_taps &&
            _outWriter.dataPort().canPush()) {
            _outWriter.dataPort().push(StreamWord::fromUint(
                static_cast<u32>(static_cast<i32>(_acc)), 4));
            _acc = 0;
            _tap = 0;
            _tapResp = 0;
            if (++_x == _n) {
                _x = 0;
                if (++_y == _n) {
                    _y = 0;
                    if (++_z == _n)
                        _state = State::WaitWriter;
                }
            }
        }
        return;
      }
      case State::WaitWriter: {
        if (_outWriter.donePort().canPop()) {
            _outWriter.donePort().pop();
            _lastEnd = sim().cycle();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

} // namespace beethoven::machsuite
