#include "accel/machsuite/md_knn.h"

#include <cstring>

namespace beethoven::machsuite
{

namespace
{

void
unpackPosition(const std::vector<u8> &row, double &x, double &y,
               double &z)
{
    std::memcpy(&x, row.data(), 8);
    std::memcpy(&y, row.data() + 8, 8);
    std::memcpy(&z, row.data() + 16, 8);
}

} // namespace

MdKnnCore::MdKnnCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _pos(getScratchpad("pos")),
      _nlReader(getReaderModule("nl")),
      _forceWriter(getWriterModule("force"))
{}

AcceleratorSystemConfig
MdKnnCore::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "MdKnnSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<MdKnnCore>(ctx);
    };
    ScratchpadConfig pos;
    pos.name = "pos";
    pos.dataWidthBits = 256; // x, y, z doubles + padding
    pos.nDatas = maxAtoms;
    pos.supportsInit = true;
    sys.scratchpads.push_back(pos);
    sys.readChannels.push_back({"nl", /*dataBytes=*/4});
    sys.writeChannels.push_back({"force", /*dataBytes=*/32});
    sys.commands.push_back(CommandSpec(
        "md_knn",
        {CommandField::address("pos_addr", addr_bits),
         CommandField::address("nl_addr", addr_bits),
         CommandField::address("force_addr", addr_bits),
         CommandField::uint("n", 16), CommandField::uint("k", 8)},
        /*resp_bits=*/0));
    // One double-precision LJ datapath (mul/add/divide chain): the
    // paper's MD-KNN cores are LUT-limited on the VU9P.
    sys.kernelResources.lut = 46000;
    sys.kernelResources.ff = 38000;
    sys.kernelResources.clb = 7600;
    return sys;
}

void
MdKnnCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _lastStart = sim().cycle();
        _n = static_cast<unsigned>(cmd->args[argN]);
        _k = static_cast<unsigned>(cmd->args[argK]);
        beethoven_assert(_n >= 1 && _n <= maxAtoms && _k >= 1,
                         "md-knn: bad n=%u k=%u", _n, _k);
        if (!_pos.initPort().canPush() ||
            !_nlReader.cmdPort().canPush() ||
            !_forceWriter.cmdPort().canPush()) {
            return;
        }
        _pos.initPort().push({_cmd.args[argPos], 0, _n});
        _nlReader.cmdPort().push(
            {_cmd.args[argNeighbors], u64(_n) * _k * sizeof(i32)});
        _forceWriter.cmdPort().push({_cmd.args[argForce], u64(_n) * 32});
        _state = State::Load;
        return;
      }
      case State::Load: {
        if (_pos.initDonePort().canPop()) {
            _pos.initDonePort().pop();
            _atom = 0;
            _reqSent = false;
            _state = State::AtomStart;
        }
        return;
      }
      case State::AtomStart: {
        // Fetch this atom's own position.
        if (!_reqSent) {
            if (_pos.reqPort(0).canPush()) {
                SpadRequest req;
                req.row = _atom;
                _pos.reqPort(0).push(req);
                _reqSent = true;
            }
            return;
        }
        if (_pos.respPort(0).canPop()) {
            unpackPosition(_pos.respPort(0).pop().data, _xi, _yi, _zi);
            _fx = _fy = _fz = 0.0;
            _neighbor = 0;
            _reqSent = false;
            _state = State::NeighborFetch;
        }
        return;
      }
      case State::NeighborFetch: {
        // Pop the next neighbor index and request its position.
        if (!_reqSent) {
            if (_nlReader.dataPort().canPop() &&
                _pos.reqPort(0).canPush()) {
                const u32 nb = static_cast<u32>(
                    _nlReader.dataPort().pop().toUint());
                beethoven_assert(nb < _n,
                                 "md-knn: neighbor index %u out of "
                                 "range",
                                 nb);
                SpadRequest req;
                req.row = nb;
                _pos.reqPort(0).push(req);
                _reqSent = true;
            }
            return;
        }
        if (_pos.respPort(0).canPop()) {
            unpackPosition(_pos.respPort(0).pop().data, _nx, _ny, _nz);
            _reqSent = false;
            _fpCountdown = fpLatency;
            _state = State::NeighborCompute;
        }
        return;
      }
      case State::NeighborCompute: {
        // A single sequential LJ datapath: charge its latency, then
        // commit the accumulation (same arithmetic as the golden
        // model, in the same order).
        if (--_fpCountdown > 0)
            return;
        const double dx = _xi - _nx;
        const double dy = _yi - _ny;
        const double dz = _zi - _nz;
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double r2inv = 1.0 / r2;
        const double r6inv = r2inv * r2inv * r2inv;
        const double potential = r6inv * (1.5 * r6inv - 2.0);
        const double f = r2inv * potential;
        _fx += f * dx;
        _fy += f * dy;
        _fz += f * dz;
        if (++_neighbor < _k) {
            _state = State::NeighborFetch;
        } else {
            _state = State::WriteForce;
        }
        return;
      }
      case State::WriteForce: {
        if (!_forceWriter.dataPort().canPush())
            return;
        StreamWord w;
        w.data.assign(32, 0);
        std::memcpy(w.data.data(), &_fx, 8);
        std::memcpy(w.data.data() + 8, &_fy, 8);
        std::memcpy(w.data.data() + 16, &_fz, 8);
        _forceWriter.dataPort().push(std::move(w));
        if (++_atom < _n) {
            _reqSent = false;
            _state = State::AtomStart;
        } else {
            _state = State::WaitWriter;
        }
        return;
      }
      case State::WaitWriter: {
        if (_forceWriter.donePort().canPop()) {
            _forceWriter.donePort().pop();
            _lastEnd = sim().cycle();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

} // namespace beethoven::machsuite
