#include "accel/machsuite/nw.h"

#include <algorithm>

#include "baselines/machsuite_golden.h"

namespace beethoven::machsuite
{

NwCore::NwCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _seqs(getScratchpad("seqs")),
      _traceback(getScratchpad("tb")),
      _outWriter(getWriterModule("out"))
{}

AcceleratorSystemConfig
NwCore::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "NwSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<NwCore>(ctx);
    };
    ScratchpadConfig seqs;
    seqs.name = "seqs";
    seqs.dataWidthBits = 8;
    seqs.nDatas = 2 * maxN;
    seqs.supportsInit = true;
    sys.scratchpads.push_back(seqs);
    ScratchpadConfig tb;
    tb.name = "tb";
    tb.dataWidthBits = 2 * maxN; // one packed direction row
    tb.nDatas = maxN;
    tb.supportsInit = false;
    sys.scratchpads.push_back(tb);
    sys.writeChannels.push_back({"out", /*dataBytes=*/4});
    sys.commands.push_back(CommandSpec(
        "nw",
        {CommandField::address("seqa_addr", addr_bits),
         CommandField::address("seqb_addr", addr_bits),
         CommandField::address("out_addr", addr_bits),
         CommandField::uint("n", 16)},
        /*resp_bits=*/0));
    // The DP row register file plus a one-cycle max tree.
    sys.kernelResources.lut = 6500;
    sys.kernelResources.ff = 9500;
    sys.kernelResources.clb = 1100;
    return sys;
}

void
NwCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _lastStart = sim().cycle();
        _n = static_cast<unsigned>(cmd->args[argN]);
        beethoven_assert(_n >= 1 && _n <= maxN, "nw: n=%u out of range",
                         _n);
        if (!_seqs.initPort().canPush() ||
            !_outWriter.cmdPort().canPush()) {
            return;
        }
        _seqs.initPort().push({_cmd.args[argSeqA], 0, _n});
        _outWriter.cmdPort().push(
            {_cmd.args[argOut], u64(_n + 1) * sizeof(i32)});
        _state = State::LoadSeqA;
        return;
      }
      case State::LoadSeqA: {
        if (!_seqs.initDonePort().canPop())
            return;
        _seqs.initDonePort().pop();
        if (!_seqs.initPort().canPush())
            return;
        _seqs.initPort().push({_cmd.args[argSeqB], maxN, _n});
        _state = State::LoadSeqB;
        return;
      }
      case State::LoadSeqB: {
        if (!_seqs.initDonePort().canPop())
            return;
        _seqs.initDonePort().pop();
        // First DP row: gap penalties.
        for (unsigned j = 0; j <= _n; ++j)
            _rowBuf[j] = static_cast<i32>(j) * nwGapScore;
        _i = 1;
        _aCharValid = false;
        _state = State::RowStart;
        return;
      }
      case State::RowStart: {
        // Fetch seqA[i-1] through the scratchpad port.
        if (!_aCharValid) {
            if (_seqs.respPort(0).canPop()) {
                _aChar = _seqs.respPort(0).pop().data[0];
                _aCharValid = true;
                _aReqSent = false;
            } else if (!_aReqSent && _seqs.reqPort(0).canPush()) {
                SpadRequest req;
                req.row = _i - 1;
                _seqs.reqPort(0).push(req);
                _aReqSent = true;
            }
            return;
        }
        _diag = _rowBuf[0];
        _rowBuf[0] = static_cast<i32>(_i) * nwGapScore;
        _j = 1;
        _reqJ = 1;
        _state = State::Cell;
        return;
      }
      case State::Cell: {
        // Pipelined II=1 inner loop: request seqB[reqJ-1] while the
        // max tree consumes the previous response.
        if (_reqJ <= _n && _seqs.reqPort(0).canPush()) {
            SpadRequest req;
            req.row = maxN + _reqJ - 1;
            _seqs.reqPort(0).push(req);
            ++_reqJ;
        }
        if (_j <= _n && _seqs.respPort(0).canPop()) {
            const u8 b_char = _seqs.respPort(0).front().data[0];
            const i32 sub =
                _aChar == b_char ? nwMatchScore : nwMismatchScore;
            const i32 diag_score = _diag + sub;
            const i32 up = _rowBuf[_j] + nwGapScore;
            const i32 left = _rowBuf[_j - 1] + nwGapScore;
            const i32 best =
                std::max(diag_score, std::max(up, left));
            _seqs.respPort(0).pop();
            // Traceback direction: 0 = diag, 1 = up, 2 = left.
            u8 dir = 0;
            if (best == up && best != diag_score)
                dir = 1;
            else if (best == left && best != diag_score && best != up)
                dir = 2;
            _tbRow[_j - 1] = dir;
            _diag = _rowBuf[_j];
            _rowBuf[_j] = best;
            ++_j;
        }
        if (_j > _n) {
            // Pack and store this row's directions.
            if (!_traceback.reqPort(0).canPush())
                return;
            SpadRequest w;
            w.row = _i - 1;
            w.write = true;
            w.data.assign((2 * maxN + 7) / 8, 0);
            for (unsigned c = 0; c < _n; ++c)
                w.data[c / 4] |= _tbRow[c] << (2 * (c % 4));
            _traceback.reqPort(0).push(std::move(w));
            if (++_i <= _n) {
                _aCharValid = false;
                _state = State::RowStart;
            } else {
                _outIdx = 0;
                _state = State::WriteOut;
            }
        }
        return;
      }
      case State::WriteOut: {
        if (_outIdx <= _n && _outWriter.dataPort().canPush()) {
            _outWriter.dataPort().push(StreamWord::fromUint(
                static_cast<u32>(_rowBuf[_outIdx]), 4));
            ++_outIdx;
        }
        if (_outIdx > _n)
            _state = State::WaitWriter;
        return;
      }
      case State::WaitWriter: {
        if (_outWriter.donePort().canPop()) {
            _outWriter.donePort().pop();
            _lastEnd = sim().cycle();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

} // namespace beethoven::machsuite
