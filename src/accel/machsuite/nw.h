/**
 * @file
 * NW — MachSuite Needleman-Wunsch global alignment (Table I, N = 256).
 *
 * The algorithm's loop-carried dependencies make it unparallelizable
 * with pragmas (Section III-B: "NW has loop-carry dependencies, making
 * the loops unparallelizable ... Our implementation achieved 2x higher
 * throughput over the other baselines, even for a single core").
 *
 * The Beethoven core sustains one DP cell per cycle (II=1): both
 * sequences sit in an init-loaded scratchpad, the previous DP row
 * lives in a register file, and the per-cell max tree is a single
 * cycle of logic — exactly the kind of dependency-chain scheduling an
 * HLS compiler struggles to reach (it conservatively schedules the
 * chain at II=3). The final DP row is written back through a Writer,
 * and per-cell traceback directions are packed into a scratchpad the
 * way a full aligner would consume them.
 */

#ifndef BEETHOVEN_ACCEL_MACHSUITE_NW_H
#define BEETHOVEN_ACCEL_MACHSUITE_NW_H

#include <array>

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven::machsuite
{

class NwCore : public AcceleratorCore
{
  public:
    static constexpr unsigned maxN = 256;

    explicit NwCore(const CoreContext &ctx);

    void tick() override;

    enum Arg { argSeqA = 0, argSeqB = 1, argOut = 2, argN = 3 };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

  private:
    enum class State {
        Idle,
        LoadSeqA,
        LoadSeqB,
        RowStart,
        Cell,
        WriteOut,
        WaitWriter,
        Respond
    };

    Scratchpad &_seqs; ///< seqA in rows [0,n), seqB in rows [n, 2n)
    Scratchpad &_traceback;
    Writer &_outWriter;

    State _state = State::Idle;
    DecodedCommand _cmd;
    unsigned _n = 0;
    unsigned _i = 0; ///< DP row
    unsigned _j = 0; ///< DP column (1-based during Cell)
    u8 _aChar = 0;
    bool _aCharValid = false;
    bool _aReqSent = false;
    unsigned _reqJ = 0; ///< next seqB row requested
    i32 _diag = 0;      ///< prev[j-1] before cur[j-1] overwrote it
    std::array<i32, maxN + 1> _rowBuf{}; ///< prev/current DP row
    std::array<u8, maxN> _tbRow{};       ///< 2-bit directions, packed
    unsigned _outIdx = 0;
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
};

} // namespace beethoven::machsuite

#endif // BEETHOVEN_ACCEL_MACHSUITE_NW_H
