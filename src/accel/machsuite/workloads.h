/**
 * @file
 * MachSuite workload registry (Table I): the five benchmarks the paper
 * selects, their asymptotic complexity, evaluated data sizes and the
 * degree of loop parallelism the algorithm offers.
 */

#ifndef BEETHOVEN_ACCEL_MACHSUITE_WORKLOADS_H
#define BEETHOVEN_ACCEL_MACHSUITE_WORKLOADS_H

#include <string>
#include <vector>

#include "base/types.h"

namespace beethoven::machsuite
{

enum class Parallelism { None, Medium, High };

const char *parallelismName(Parallelism p);

struct Workload
{
    std::string name;
    std::string description;
    std::string complexity; ///< e.g. "O(N^3) matrix multiply"
    std::string dataSize;   ///< e.g. "N = 256"
    Parallelism parallelism;
    /** Problem size used in the paper's evaluation. */
    unsigned n = 0;
    unsigned k = 0; ///< secondary parameter (MD-KNN's K)
};

/** The Table I selection, in the paper's order. */
const std::vector<Workload> &table1Workloads();

} // namespace beethoven::machsuite

#endif // BEETHOVEN_ACCEL_MACHSUITE_WORKLOADS_H
