/**
 * @file
 * GeMM — MachSuite O(N^3) matrix multiply (Table I, N = 256).
 *
 * The paper's "medium-effort implementation ... parallelizes the outer
 * and middle loop bodies by a parameterizable amount, identical to the
 * loop parallelism factors in Vitis HLS or Spatial."
 *
 * Structure: B^T is loaded once into a Beethoven Scratchpad through
 * the init-from-memory path; A streams through a Reader row by row
 * into a register file; a P-lane int32 MAC array consumes one
 * scratchpad row (P operands) per cycle, emitting one C element every
 * N/P cycles through a Writer.
 */

#ifndef BEETHOVEN_ACCEL_MACHSUITE_GEMM_H
#define BEETHOVEN_ACCEL_MACHSUITE_GEMM_H

#include <array>

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven::machsuite
{

class GemmCore : public AcceleratorCore
{
  public:
    /** MAC lanes (the paper's parameterizable unroll factor). */
    static constexpr unsigned lanes = 16;
    static constexpr unsigned maxN = 256;

    explicit GemmCore(const CoreContext &ctx);

    void tick() override;

    enum Arg { argA = 0, argBt = 1, argC = 2, argN = 3 };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

  private:
    enum class State {
        Idle,
        LoadB,
        LoadARow,
        Compute,
        DrainRow,
        WaitWriter,
        Respond
    };

    Reader &_aReader;
    Writer &_cWriter;
    Scratchpad &_bMat;

    State _state = State::Idle;
    DecodedCommand _cmd;
    unsigned _n = 0;
    unsigned _row = 0;       ///< current output row (i)
    unsigned _aBeats = 0;    ///< beats of the current A row received
    unsigned _reqWord = 0;   ///< next B^T scratchpad row requested
    unsigned _respWord = 0;  ///< next B^T scratchpad row consumed
    i64 _acc = 0;
    std::array<i32, maxN> _aRow{};
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
};

} // namespace beethoven::machsuite

#endif // BEETHOVEN_ACCEL_MACHSUITE_GEMM_H
