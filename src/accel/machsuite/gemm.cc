#include "accel/machsuite/gemm.h"

#include <cstring>

namespace beethoven::machsuite
{

GemmCore::GemmCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _aReader(getReaderModule("a_in")),
      _cWriter(getWriterModule("c_out")),
      _bMat(getScratchpad("bmat"))
{}

AcceleratorSystemConfig
GemmCore::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "GemmSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<GemmCore>(ctx);
    };
    sys.readChannels.push_back({"a_in", /*dataBytes=*/64});
    sys.writeChannels.push_back({"c_out", /*dataBytes=*/4});
    ScratchpadConfig bmat;
    bmat.name = "bmat";
    bmat.dataWidthBits = lanes * 32;
    bmat.nDatas = maxN * maxN / lanes;
    bmat.nPorts = 1;
    bmat.latency = 1;
    bmat.supportsInit = true;
    sys.scratchpads.push_back(bmat);
    sys.commands.push_back(CommandSpec(
        "gemm",
        {CommandField::address("a_addr", addr_bits),
         CommandField::address("bt_addr", addr_bits),
         CommandField::address("c_addr", addr_bits),
         CommandField::uint("n", 16)},
        /*resp_bits=*/0));
    // Synthesis estimate for 16 int32 MAC lanes, the 256-entry A-row
    // register file, and the control FSM (the paper's GeMM cores are
    // LUT-limited on the VU9P).
    sys.kernelResources.lut = 52000;
    sys.kernelResources.ff = 34000;
    sys.kernelResources.clb = 8600;
    return sys;
}

void
GemmCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _lastStart = sim().cycle();
        _n = static_cast<unsigned>(cmd->args[argN]);
        beethoven_assert(_n >= lanes && _n <= maxN && _n % lanes == 0,
                         "gemm: n=%u must be a multiple of %u in "
                         "[%u, %u]",
                         _n, lanes, lanes, maxN);
        // Load B^T through the scratchpad's init-from-memory path and
        // kick off both streams.
        if (!_bMat.initPort().canPush() ||
            !_aReader.cmdPort().canPush() ||
            !_cWriter.cmdPort().canPush()) {
            return;
        }
        _bMat.initPort().push(
            {_cmd.args[argBt], 0, _n * _n / lanes});
        _aReader.cmdPort().push(
            {_cmd.args[argA], u64(_n) * _n * sizeof(i32)});
        _cWriter.cmdPort().push(
            {_cmd.args[argC], u64(_n) * _n * sizeof(i32)});
        _row = 0;
        _state = State::LoadB;
        return;
      }
      case State::LoadB: {
        if (_bMat.initDonePort().canPop()) {
            _bMat.initDonePort().pop();
            _aBeats = 0;
            _state = State::LoadARow;
        }
        return;
      }
      case State::LoadARow: {
        // One 64-byte beat (16 operands) per cycle into the register
        // file.
        if (!_aReader.dataPort().canPop())
            return;
        StreamWord w = _aReader.dataPort().pop();
        std::memcpy(&_aRow[_aBeats * lanes], w.data.data(),
                    lanes * sizeof(i32));
        if (++_aBeats == _n / lanes) {
            _reqWord = 0;
            _respWord = 0;
            _acc = 0;
            _state = State::Compute;
        }
        return;
      }
      case State::Compute: {
        const unsigned total_words = _n * (_n / lanes);
        // Pipelined scratchpad reads: issue the next request while the
        // MAC array consumes the previous response.
        if (_reqWord < total_words && _bMat.reqPort(0).canPush()) {
            SpadRequest req;
            req.row = _reqWord;
            req.write = false;
            _bMat.reqPort(0).push(req);
            ++_reqWord;
        }
        if (_respWord < total_words && _bMat.respPort(0).canPop()) {
            // A C element completes every n/lanes responses; make sure
            // there is room to emit it before consuming.
            const unsigned k16 = _respWord % (_n / lanes);
            const bool completes = k16 + 1 == _n / lanes;
            if (completes && !_cWriter.dataPort().canPush())
                return;
            SpadResponse resp = _bMat.respPort(0).pop();
            const i32 *b =
                reinterpret_cast<const i32 *>(resp.data.data());
            i64 acc = _acc;
            for (unsigned l = 0; l < lanes; ++l)
                acc += i64(_aRow[k16 * lanes + l]) * b[l];
            _acc = acc;
            ++_respWord;
            if (completes) {
                _cWriter.dataPort().push(StreamWord::fromUint(
                    static_cast<u32>(static_cast<i32>(_acc)), 4));
                _acc = 0;
            }
            if (_respWord == total_words)
                _state = State::DrainRow;
        }
        return;
      }
      case State::DrainRow: {
        // All responses for this row consumed; advance to the next
        // output row (the A stream continues) or finish.
        if (++_row < _n) {
            _aBeats = 0;
            _state = State::LoadARow;
        } else {
            _state = State::WaitWriter;
        }
        return;
      }
      case State::WaitWriter: {
        if (_cWriter.donePort().canPop()) {
            _cWriter.donePort().pop();
            _lastEnd = sim().cycle();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

} // namespace beethoven::machsuite
