/**
 * @file
 * MD-KNN — MachSuite molecular-dynamics k-nearest-neighbor force pass
 * (Table I, N = 1024, K = 32).
 *
 * Low-effort Beethoven implementation: atom positions are loaded into
 * an init Scratchpad (one 32-byte row per atom: x, y, z doubles), the
 * neighbor list streams through a Reader, and a single sequential
 * double-precision Lennard-Jones datapath evaluates one neighbor
 * interaction every ~10 cycles. Accumulated forces stream out through
 * a Writer, one row per atom.
 */

#ifndef BEETHOVEN_ACCEL_MACHSUITE_MD_KNN_H
#define BEETHOVEN_ACCEL_MACHSUITE_MD_KNN_H

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven::machsuite
{

class MdKnnCore : public AcceleratorCore
{
  public:
    static constexpr unsigned maxAtoms = 1024;
    /** Sequential FP datapath latency per interaction (cycles). */
    static constexpr unsigned fpLatency = 8;

    explicit MdKnnCore(const CoreContext &ctx);

    void tick() override;

    enum Arg {
        argPos = 0,
        argNeighbors = 1,
        argForce = 2,
        argN = 3,
        argK = 4
    };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

  private:
    enum class State {
        Idle,
        Load,
        AtomStart,
        NeighborFetch,
        NeighborCompute,
        WriteForce,
        WaitWriter,
        Respond
    };

    Scratchpad &_pos;
    Reader &_nlReader;
    Writer &_forceWriter;

    State _state = State::Idle;
    DecodedCommand _cmd;
    unsigned _n = 0;
    unsigned _k = 0;
    unsigned _atom = 0;
    unsigned _neighbor = 0;
    bool _reqSent = false;
    unsigned _fpCountdown = 0;
    double _xi = 0, _yi = 0, _zi = 0;
    double _fx = 0, _fy = 0, _fz = 0;
    double _nx = 0, _ny = 0, _nz = 0; ///< fetched neighbor position
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
};

} // namespace beethoven::machsuite

#endif // BEETHOVEN_ACCEL_MACHSUITE_MD_KNN_H
