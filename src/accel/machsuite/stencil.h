/**
 * @file
 * Stencil2D / Stencil3D — MachSuite stencil kernels (Table I).
 *
 * Both are the paper's *low-effort* Beethoven implementations: the
 * whole grid is pulled into an init-loaded Scratchpad, each output
 * point is produced by sequential single-port scratchpad reads of its
 * neighborhood (no unrolled MAC array), and results stream out through
 * a Writer. "These low-effort implementations do not take advantage of
 * loop parallelism in the kernel" (Section III-B).
 */

#ifndef BEETHOVEN_ACCEL_MACHSUITE_STENCIL_H
#define BEETHOVEN_ACCEL_MACHSUITE_STENCIL_H

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven::machsuite
{

/** 3x3 coefficient stencil over a 2D int32 grid (borders copied). */
class Stencil2dCore : public AcceleratorCore
{
  public:
    static constexpr unsigned maxDim = 256;

    explicit Stencil2dCore(const CoreContext &ctx);

    void tick() override;

    enum Arg { argIn = 0, argOut = 1, argRows = 2, argCols = 3 };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

  private:
    enum class State { Idle, Load, Point, WaitWriter, Respond };

    Scratchpad &_grid;
    Writer &_outWriter;

    State _state = State::Idle;
    DecodedCommand _cmd;
    unsigned _rows = 0;
    unsigned _cols = 0;
    unsigned _r = 0;
    unsigned _c = 0;
    unsigned _tap = 0;     ///< next neighborhood read to request
    unsigned _tapResp = 0; ///< next neighborhood response to consume
    i64 _acc = 0;
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
};

/** 7-point stencil over a 3D int32 volume (boundary cells copied). */
class Stencil3dCore : public AcceleratorCore
{
  public:
    static constexpr unsigned maxDim = 32;

    explicit Stencil3dCore(const CoreContext &ctx);

    void tick() override;

    enum Arg { argIn = 0, argOut = 1, argN = 2 };

    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

    Cycle lastKernelCycles() const { return _lastEnd - _lastStart; }

  private:
    enum class State { Idle, Load, Point, WaitWriter, Respond };

    Scratchpad &_grid;
    Writer &_outWriter;

    State _state = State::Idle;
    DecodedCommand _cmd;
    unsigned _n = 0;
    unsigned _x = 0, _y = 0, _z = 0;
    unsigned _tap = 0;
    unsigned _tapResp = 0;
    i64 _acc = 0;
    Cycle _lastStart = 0;
    Cycle _lastEnd = 0;
};

} // namespace beethoven::machsuite

#endif // BEETHOVEN_ACCEL_MACHSUITE_STENCIL_H
