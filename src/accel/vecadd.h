/**
 * @file
 * The paper's running example (Fig. 2): a vector-addition Core using
 * one Reader and one Writer. Streams 32-bit elements from memory, adds
 * a command-supplied addend, and writes the results back in place.
 */

#ifndef BEETHOVEN_ACCEL_VECADD_H
#define BEETHOVEN_ACCEL_VECADD_H

#include "core/accelerator_core.h"
#include "core/soc.h"

namespace beethoven
{

class VecAddCore : public AcceleratorCore
{
  public:
    explicit VecAddCore(const CoreContext &ctx);

    void tick() override;

    /** Field order of the my_accel command. */
    enum Arg { argAddend = 0, argVecAddr = 1, argNumEles = 2 };

    /** Build the Fig. 3a configuration for @p n_cores cores. */
    static AcceleratorSystemConfig systemConfig(unsigned n_cores,
                                                unsigned addr_bits = 34);

  private:
    enum class State { Idle, Streaming, WaitWriter, Respond };

    Reader &_reader;
    Writer &_writer;

    State _state = State::Idle;
    u32 _addend = 0;
    u64 _wordsLeft = 0;
    DecodedCommand _cmd;
};

} // namespace beethoven

#endif // BEETHOVEN_ACCEL_VECADD_H
