#include "accel/vecadd.h"

namespace beethoven
{

VecAddCore::VecAddCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _reader(getReaderModule("vec_in")),
      _writer(getWriterModule("vec_out"))
{}

AcceleratorSystemConfig
VecAddCore::systemConfig(unsigned n_cores, unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "MyAcceleratorSystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<VecAddCore>(ctx);
    };
    sys.readChannels.push_back({"vec_in", /*dataBytes=*/4});
    sys.writeChannels.push_back({"vec_out", /*dataBytes=*/4});
    sys.commands.push_back(CommandSpec(
        "my_accel",
        {CommandField::uint("addend", 32),
         CommandField::address("vec_addr", addr_bits),
         CommandField::uint("n_eles", 20)},
        /*resp_bits=*/0));
    // A one-adder datapath plus control.
    sys.kernelResources.lut = 350;
    sys.kernelResources.ff = 420;
    sys.kernelResources.clb = 60;
    return sys;
}

void
VecAddCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd)
            return;
        _cmd = *cmd;
        _addend = static_cast<u32>(cmd->args[argAddend]);
        const Addr addr = cmd->args[argVecAddr];
        const u64 n = cmd->args[argNumEles];
        _wordsLeft = n;
        if (n == 0) {
            _state = State::Respond;
            return;
        }
        // Fig. 2: both streams are launched from the request fields.
        if (_reader.cmdPort().canPush() && _writer.cmdPort().canPush()) {
            const u64 len_bytes = n * 4; // Cat(n_eles, 0.U(2.W))
            _reader.cmdPort().push({addr, len_bytes});
            _writer.cmdPort().push({addr, len_bytes});
            _state = State::Streaming;
        }
        return;
      }
      case State::Streaming: {
        // One 32-bit element per cycle: add and write back.
        if (_reader.dataPort().canPop() &&
            _writer.dataPort().canPush()) {
            StreamWord w = _reader.dataPort().pop();
            const u32 v = static_cast<u32>(w.toUint()) + _addend;
            _writer.dataPort().push(StreamWord::fromUint(v, 4));
            if (--_wordsLeft == 0)
                _state = State::WaitWriter;
        }
        return;
      }
      case State::WaitWriter: {
        if (_writer.donePort().canPop()) {
            _writer.donePort().pop();
            _state = State::Respond;
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd))
            _state = State::Idle;
        return;
      }
    }
}

} // namespace beethoven
