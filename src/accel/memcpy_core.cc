#include "accel/memcpy_core.h"

namespace beethoven
{

MemcpyCore::MemcpyCore(const CoreContext &ctx)
    : AcceleratorCore(ctx),
      _reader(getReaderModule("src")),
      _writer(getWriterModule("dst"))
{}

AcceleratorSystemConfig
MemcpyCore::systemConfig(unsigned n_cores, const Variant &variant,
                         unsigned addr_bits)
{
    AcceleratorSystemConfig sys;
    sys.name = "MemcpySystem";
    sys.nCores = n_cores;
    sys.moduleConstructor = [](const CoreContext &ctx) {
        return std::make_unique<MemcpyCore>(ctx);
    };
    ReadChannelConfig rc;
    rc.name = "src";
    rc.dataBytes = variant.dataBytes;
    rc.burstBeats = variant.burstBeats;
    rc.maxInflight = variant.maxInflight;
    rc.useTlp = variant.useTlp;
    sys.readChannels.push_back(rc);
    WriteChannelConfig wc;
    wc.name = "dst";
    wc.dataBytes = variant.dataBytes;
    wc.burstBeats = variant.burstBeats;
    wc.maxInflight = variant.maxInflight;
    wc.useTlp = variant.useTlp;
    sys.writeChannels.push_back(wc);
    sys.commands.push_back(CommandSpec(
        "do_memcpy",
        {CommandField::address("src", addr_bits),
         CommandField::address("dst", addr_bits),
         CommandField::uint("len_bytes", 32)},
        /*resp_bits=*/0));
    sys.kernelResources.lut = 180;
    sys.kernelResources.ff = 240;
    sys.kernelResources.clb = 35;
    return sys;
}

void
MemcpyCore::tick()
{
    switch (_state) {
      case State::Idle: {
        auto cmd = pollCommand();
        if (!cmd) {
            accountCycle(StallClass::StallCmd);
            return;
        }
        _cmd = *cmd;
        _lastStart = sim().cycle();
        const u64 len = cmd->args[argLenBytes];
        if (len == 0) {
            _lastEnd = _lastStart;
            _state = State::Respond;
            accountCycle(StallClass::Busy);
            return;
        }
        _pendingSrc = cmd->args[argSrc];
        _pendingDst = cmd->args[argDst];
        _pendingLen = len;
        _wordsLeft = len / _reader.params().dataBytes;
        _state = State::Launch;
        [[fallthrough]]; // try to launch in the accept cycle
      }
      case State::Launch: {
        if (_reader.cmdPort().canPush() && _writer.cmdPort().canPush()) {
            _reader.cmdPort().push({_pendingSrc, _pendingLen});
            _writer.cmdPort().push({_pendingDst, _pendingLen});
            _state = State::Streaming;
            accountCycle(StallClass::Busy);
        } else {
            accountCycle(StallClass::StallDownstream);
        }
        return;
      }
      case State::Streaming: {
        if (_reader.dataPort().canPop() &&
            _writer.dataPort().canPush()) {
            _writer.dataPort().push(_reader.dataPort().pop());
            if (--_wordsLeft == 0)
                _state = State::WaitWriter;
            accountCycle(StallClass::Busy);
        } else if (!_reader.dataPort().canPop()) {
            accountCycle(StallClass::StallUpstream);
        } else {
            accountCycle(StallClass::StallDownstream);
        }
        return;
      }
      case State::WaitWriter: {
        if (_writer.donePort().canPop()) {
            _writer.donePort().pop();
            _lastEnd = sim().cycle();
            _state = State::Respond;
            accountCycle(StallClass::Busy);
        } else {
            accountCycle(StallClass::StallMem);
        }
        return;
      }
      case State::Respond: {
        if (respond(_cmd)) {
            _state = State::Idle;
            accountCycle(StallClass::Busy);
        } else {
            accountCycle(StallClass::StallDownstream);
        }
        return;
      }
    }
}

} // namespace beethoven
