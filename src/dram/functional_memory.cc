#include "dram/functional_memory.h"

#include <cstring>

#include "base/log.h"

namespace beethoven
{

FunctionalMemory::Page &
FunctionalMemory::pageFor(Addr addr)
{
    const u64 pn = addr / pageBytes;
    auto it = _pages.find(pn);
    if (it == _pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = _pages.emplace(pn, std::move(page)).first;
    }
    return *it->second;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForIfPresent(Addr addr) const
{
    auto it = _pages.find(addr / pageBytes);
    return it == _pages.end() ? nullptr : it->second.get();
}

void
FunctionalMemory::read(Addr addr, std::size_t len, u8 *dst) const
{
    while (len > 0) {
        const std::size_t off = addr % pageBytes;
        const std::size_t chunk = std::min(len, pageBytes - off);
        if (const Page *p = pageForIfPresent(addr))
            std::memcpy(dst, p->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        addr += chunk;
        dst += chunk;
        len -= chunk;
    }
}

void
FunctionalMemory::write(Addr addr, std::size_t len, const u8 *src)
{
    while (len > 0) {
        const std::size_t off = addr % pageBytes;
        const std::size_t chunk = std::min(len, pageBytes - off);
        std::memcpy(pageFor(addr).data() + off, src, chunk);
        addr += chunk;
        src += chunk;
        len -= chunk;
    }
}

void
FunctionalMemory::writeMasked(Addr addr, const std::vector<u8> &data,
                              const std::vector<bool> &strb)
{
    if (strb.empty()) {
        write(addr, data.size(), data.data());
        return;
    }
    beethoven_assert(strb.size() == data.size(),
                     "strobe width %zu != data width %zu", strb.size(),
                     data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (strb[i])
            write(addr + i, 1, &data[i]);
    }
}

} // namespace beethoven
