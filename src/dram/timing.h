/**
 * @file
 * DRAM device timing parameters, expressed in memory-controller clock
 * cycles (the paper's platforms run the DDR controller at 250 MHz).
 *
 * The defaults approximate a single-rank DDR4-2400 channel behind a
 * 64-byte-per-beat AXI port: the data bus moves one 64 B column's worth
 * of data per controller cycle at peak (16 GB/s), and bank/row timing
 * is scaled from the DDR4 datasheet values at a 4 ns controller cycle.
 */

#ifndef BEETHOVEN_DRAM_TIMING_H
#define BEETHOVEN_DRAM_TIMING_H

#include "base/types.h"

namespace beethoven
{

struct DramTiming
{
    unsigned tRCD = 4;    ///< ACT -> column command
    unsigned tRP = 4;     ///< PRE -> ACT
    unsigned tRAS = 8;    ///< ACT -> PRE (minimum row-open time)
    unsigned tCAS = 4;    ///< column read -> first data
    unsigned tRRD = 1;    ///< ACT -> ACT, different banks
    unsigned tFAW = 6;    ///< window for at most four ACTs
    unsigned tSwitch = 3; ///< data-bus read<->write turnaround penalty
    unsigned tREFI = 1950; ///< all-bank refresh interval (7.8 us)
    unsigned tRFC = 88;    ///< refresh cycle time (~350 ns)

    /** Construct the default DDR4-2400-at-250MHz preset. */
    static DramTiming ddr4_2400() { return DramTiming{}; }

    /** A slow LPDDR-ish preset for the embedded (Kria) platform. */
    static DramTiming
    lpddr4_embedded()
    {
        DramTiming t;
        t.tRCD = 6;
        t.tRP = 6;
        t.tRAS = 12;
        t.tCAS = 6;
        t.tRRD = 2;
        t.tFAW = 10;
        t.tSwitch = 4;
        return t;
    }
};

/** DRAM channel geometry (address interleaving description). */
struct DramGeometry
{
    unsigned nBankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowBytesPerBank = 8192; ///< bytes of one open row, per bank
    unsigned interleaveBytes = 64;   ///< consecutive-beat bank rotation

    unsigned numBanks() const { return nBankGroups * banksPerGroup; }

    /** Column capacity of a row in interleave units. */
    unsigned
    columnsPerRow() const
    {
        return rowBytesPerBank / interleaveBytes;
    }
};

/** Decoded DRAM coordinates of one bus beat. */
struct DramCoord
{
    unsigned bank = 0; ///< global bank index
    u64 row = 0;
    unsigned column = 0;
};

/**
 * Map a byte address to DRAM coordinates.
 *
 * Consecutive bus beats rotate across all banks (bank bits directly
 * above the beat offset) so that streaming accesses exploit bank-level
 * parallelism; row bits sit at the top so each bank's open row covers a
 * large contiguous span.
 */
inline DramCoord
mapAddress(const DramGeometry &g, Addr addr)
{
    const u64 beat = addr / g.interleaveBytes;
    DramCoord c;
    c.bank = static_cast<unsigned>(beat % g.numBanks());
    const u64 per_bank = beat / g.numBanks();
    c.column = static_cast<unsigned>(per_bank % g.columnsPerRow());
    c.row = per_bank / g.columnsPerRow();
    return c;
}

} // namespace beethoven

#endif // BEETHOVEN_DRAM_TIMING_H
