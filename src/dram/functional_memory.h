/**
 * @file
 * Sparse functional backing store for the accelerator-visible memory
 * space. Shared between the DRAM controller (beat reads/writes) and the
 * host runtime's DMA engine (bulk copies).
 */

#ifndef BEETHOVEN_DRAM_FUNCTIONAL_MEMORY_H
#define BEETHOVEN_DRAM_FUNCTIONAL_MEMORY_H

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace beethoven
{

/** Byte-addressable sparse memory with 4 KiB allocation granularity. */
class FunctionalMemory
{
  public:
    static constexpr std::size_t pageBytes = 4096;

    /** Read @p len bytes at @p addr into @p dst. Unwritten bytes are 0. */
    void read(Addr addr, std::size_t len, u8 *dst) const;

    /** Write @p len bytes from @p src at @p addr. */
    void write(Addr addr, std::size_t len, const u8 *src);

    /** Write with a per-byte strobe (empty strobe = all bytes). */
    void writeMasked(Addr addr, const std::vector<u8> &data,
                     const std::vector<bool> &strb);

    /** Convenience typed accessors (native endianness). */
    template <typename T>
    T
    readValue(Addr addr) const
    {
        T v{};
        read(addr, sizeof(T), reinterpret_cast<u8 *>(&v));
        return v;
    }

    template <typename T>
    void
    writeValue(Addr addr, const T &v)
    {
        write(addr, sizeof(T), reinterpret_cast<const u8 *>(&v));
    }

    /** Number of pages currently materialized (for tests). */
    std::size_t numPages() const { return _pages.size(); }

  private:
    using Page = std::array<u8, pageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForIfPresent(Addr addr) const;

    std::unordered_map<u64, std::unique_ptr<Page>> _pages;
};

} // namespace beethoven

#endif // BEETHOVEN_DRAM_FUNCTIONAL_MEMORY_H
