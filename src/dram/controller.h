/**
 * @file
 * Cycle-level DRAM memory controller with an AXI4-style front-end.
 *
 * Substitutes for the Xilinx DDR controller + DRAMSim3 stack the paper
 * simulates against (Section II-D). The behaviours the evaluation
 * depends on are modeled directly:
 *
 *  - FR-FCFS column scheduling over banks/bank groups with open-row
 *    state, tRCD/tRP/tRAS/tCAS/tRRD/tFAW constraints;
 *  - a shared bidirectional data bus with a read<->write turnaround
 *    penalty, so long bursts amortize direction switches;
 *  - AXI same-ID ordering: only the *oldest* transaction of each AXI ID
 *    is eligible for scheduling, so single-ID request streams serialize
 *    (the HLS behaviour in Figs. 4/5) while multi-ID streams overlap
 *    (Beethoven's transaction-level parallelism).
 */

#ifndef BEETHOVEN_DRAM_CONTROLLER_H
#define BEETHOVEN_DRAM_CONTROLLER_H

#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "axi/axi_types.h"
#include "axi/timeline.h"
#include "dram/functional_memory.h"
#include "dram/timing.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "trace/stall.h"

namespace beethoven
{

class DramController : public Module
{
  public:
    struct Config
    {
        AxiConfig axi;
        DramTiming timing = DramTiming::ddr4_2400();
        DramGeometry geometry;
        unsigned maxOutstandingReads = 64;
        unsigned maxOutstandingWrites = 64;
        std::size_t portDepth = 8; ///< depth of the AXI port queues
        /** Column commands of one transaction visible to the scheduler
         *  at once (the controller's command-queue lookahead). */
        unsigned schedulerWindow = 16;
        /** Write-drain watermark: buffered write beats that trigger a
         *  switch into write-drain mode. Batching writes amortizes the
         *  bus turnaround penalty, as real controllers do. */
        unsigned writeDrainHighWatermark = 48;
        /**
         * Same-ID reorder-slot recycle: cycles after a transaction
         * retires before the *next transaction on the same AXI ID*
         * may be scheduled. Models the response-reorder bookkeeping of
         * real controllers, which cannot pipeline dependent same-ID
         * transactions back to back — the mechanism behind the
         * paper's "latency of memory operations grew tremendously for
         * the HLS memcpy kernel" (Section III-A). Distinct-ID streams
         * (Beethoven's TLP) never pay it.
         */
        unsigned sameIdRecycleCycles = 20;
    };

    DramController(Simulator &sim, std::string name, const Config &cfg,
                   FunctionalMemory &mem);

    /** AXI slave ports (producers push AR/W flits, pop R/B flits). */
    TimedQueue<ReadRequest> &arPort() { return _arIn; }
    TimedQueue<WriteFlit> &wPort() { return _wIn; }
    TimedQueue<ReadBeat> &rPort() { return _rOut; }
    TimedQueue<WriteResponse> &bPort() { return _bOut; }

    AxiTimeline &timeline() { return _timeline; }
    const Config &config() const { return _cfg; }

    /** Total data beats moved (reads + writes), for utilization stats. */
    u64 beatsServed() const { return _beatsServed; }

    /** Cumulative column commands issued (reads + writes). */
    double
    columnOps() const
    {
        return _statColReads->value() + _statColWrites->value();
    }

    /** Cumulative row activates (row misses open a row). */
    double activates() const { return _statRowMisses->value(); }

    /** Cumulative refresh windows entered. */
    double refreshes() const { return _statRefreshes->value(); }

    /** Dump all in-flight transactions (for hang diagnostics). */
    void dumpInFlight(std::ostream &os) const;

    void tick() override;

  private:
    struct ReadTxn
    {
        u64 seq = 0; ///< controller arrival order (FCFS age)
        u64 tag = 0;
        u32 id = 0;
        Cycle acceptedAt = 0; ///< AR accept, for latency spans
        Addr addr = 0;
        u32 beats = 0;
        u32 beatsIssued = 0; ///< count of issued column commands
        u32 firstUnissued = 0;
        u32 beatsSent = 0;
        std::vector<bool> issued;              ///< per-beat issue flag
        std::vector<Cycle> beatReadyAt;        ///< 0 = not yet issued
        std::vector<std::vector<u8>> beatData; ///< captured at issue
        std::vector<DramCoord> beatCoord;      ///< mapped once at accept
    };

    struct WriteTxn
    {
        u64 seq = 0;
        u64 tag = 0;
        u32 id = 0;
        Cycle acceptedAt = 0; ///< AW accept, for latency spans
        Addr addr = 0;
        u32 beats = 0;
        u32 beatsReceived = 0;
        u32 beatsIssued = 0;
        u32 firstUnissued = 0;
        std::vector<bool> issued;
        std::vector<WriteBeat> data;
        std::vector<DramCoord> beatCoord; ///< mapped once at accept
    };

    struct BankState
    {
        bool open = false;
        u64 row = 0;
        Cycle actReadyAt = 0;
        Cycle colReadyAt = 0;
        Cycle preReadyAt = 0;
    };

    /** A schedulable (head-of-ID) beat awaiting a column command. */
    struct Candidate
    {
        bool isWrite = false;
        u64 txnKey = 0; ///< tag-keyed map lookup
        u64 seq = 0;
        u32 beatIdx = 0;
        Addr beatAddr = 0;
        DramCoord coord;
    };

    /** Outcome of an output-side service attempt. */
    enum class ServiceResult
    {
        None,   ///< nothing to send
        Done,   ///< sent a beat / response
        Blocked ///< had something to send but the port was full
    };

    bool acceptRequests();
    bool scheduleColumn();
    bool scheduleRowCommands();
    ServiceResult sendReadData();
    ServiceResult sendWriteResponses();

    /** Recompute _writeDrainMode from candidate existence per side. */
    void updateDrainMode();
    /** One pass over the schedulable-beat set computing everything the
     *  schedulers need (best ready row hit per direction, oldest
     *  candidate per bank, per-bank row-hit flags) without
     *  materializing the candidate list. */
    void scanCandidates();

    /** Classify the cycle and update the per-AXI-ID wait counters. */
    void accountCycle(bool did, ServiceResult rd, ServiceResult wr,
                      bool in_refresh);
    void trackIdWaits(bool col_issued);
    StatScalar &idWaitScalar(bool is_write, u32 id, const char *kind);

    Config _cfg;
    FunctionalMemory &_mem;

    TimedQueue<ReadRequest> _arIn;
    TimedQueue<WriteFlit> _wIn;
    TimedQueue<ReadBeat> _rOut;
    TimedQueue<WriteResponse> _bOut;

    /** In-flight transactions keyed by tag. Hash maps: the hot path
     *  only ever looks tags up (several times per in-flight cycle);
     *  ordered iteration is never needed — per-ID order lives in
     *  _readOrder/_writeOrder, and dumpInFlight sorts for display. */
    std::unordered_map<u64, ReadTxn> _reads;
    std::unordered_map<u64, WriteTxn> _writes;
    std::map<u32, std::deque<u64>> _readOrder;  ///< per-ID tag FIFOs
    std::map<u32, std::deque<u64>> _writeOrder;
    std::map<u32, Cycle> _readIdReadyAt;  ///< same-ID recycle gates
    std::map<u32, Cycle> _writeIdReadyAt;
    u64 _fillingWrite = 0;  ///< tag of write currently receiving W beats
    bool _hasFilling = false;
    /** Buffered-but-unissued write beats across all transactions,
     *  maintained incrementally (== sum of beatsReceived-beatsIssued)
     *  so the per-cycle drain-watermark check is O(1). */
    u64 _pendingWriteBeats = 0;

    std::vector<BankState> _banks;
    /** scanCandidates() products, reused across tick()s so the
     *  scheduler hot path is allocation-free (this module ticks every
     *  in-flight cycle and dominates host time on streaming benches).
     *  _oldestPerBank/_bankHasHit are indexed by bank; _bankValid
     *  gates stale _oldestPerBank entries. */
    std::vector<Candidate> _oldestPerBank;
    std::vector<u8> _bankValid;
    std::vector<u8> _bankHasHit;
    std::vector<const Candidate *> _rowOrdered;
    Candidate _bestRead;  ///< oldest ready row-hit read, if any
    Candidate _bestWrite; ///< oldest ready row-hit write, if any
    bool _hasBestRead = false;
    bool _hasBestWrite = false;
    std::deque<Cycle> _recentActs; ///< for tFAW
    Cycle _nextActAt = 0;          ///< for tRRD
    Cycle _lastColAt = 0;
    bool _lastColWasWrite = false;
    bool _anyColIssued = false;
    u32 _lastColId = 0; ///< AXI ID served by the last column command

    u64 _seqCounter = 0;
    u64 _beatsServed = 0;
    u32 _rrReadId = 0;
    bool _writeDrainMode = false;
    Cycle _nextRefreshAt = 0;
    Cycle _refreshUntil = 0;

    AxiTimeline _timeline;

    StatScalar *_statRowHits;
    StatScalar *_statRowMisses;
    StatScalar *_statColReads;
    StatScalar *_statColWrites;
    StatScalar *_statTurnarounds;
    StatScalar *_statRefreshes;
    StatHistogram *_readLatency;  ///< AR accept -> last R beat
    StatHistogram *_writeLatency; ///< AW accept -> B response

    StallAccount _stall;
    /** Per-AXI-ID stall split, keyed by (isWrite, id): cycles the ID's
     *  head transaction waited on the same-ID reorder slot (queueWait)
     *  vs. on bank timing / bus arbitration (bankWait). */
    std::map<std::pair<bool, u32>, std::pair<StatScalar *, StatScalar *>>
        _idWaits;
};

} // namespace beethoven

#endif // BEETHOVEN_DRAM_CONTROLLER_H
