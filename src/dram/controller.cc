#include "dram/controller.h"

#include <algorithm>
#include <ostream>

#include "base/log.h"
#include "trace/trace.h"

namespace beethoven
{

DramController::DramController(Simulator &sim, std::string name,
                               const Config &cfg, FunctionalMemory &mem)
    : Module(sim, std::move(name)),
      _cfg(cfg),
      _mem(mem),
      _arIn(sim, cfg.portDepth),
      _wIn(sim, cfg.portDepth),
      _rOut(sim, cfg.portDepth),
      _bOut(sim, cfg.portDepth),
      _banks(cfg.geometry.numBanks()),
      _stall(sim, Module::name())
{
    StatGroup &g = sim.stats().group(Module::name());
    _statRowHits = &g.scalar("rowHits");
    _statRowMisses = &g.scalar("rowMisses");
    _statColReads = &g.scalar("colReads");
    _statColWrites = &g.scalar("colWrites");
    _statTurnarounds = &g.scalar("turnarounds");
    _statRefreshes = &g.scalar("refreshes");
    _readLatency = &g.histogram("readLatency");
    _readLatency->configure(64, 16.0);
    _writeLatency = &g.histogram("writeLatency");
    _writeLatency->configure(64, 16.0);
    _nextRefreshAt = cfg.timing.tREFI;
    declareRole("dram");
    declareSleepable();
    declareSelfWake();
    // Event-kernel wiring: new requests and drained output ports wake
    // the controller; refresh timing is self-armed at sleep.
    _arIn.setWakeOnPush(this);
    _wIn.setWakeOnPush(this);
    _rOut.setWakeOnPop(this);
    _bOut.setWakeOnPop(this);
}

void
DramController::tick()
{
    bool did = acceptRequests();
    // All-bank refresh: every tREFI the banks precharge and the device
    // is unavailable for tRFC. Requests keep queueing meanwhile.
    const Cycle now = sim().cycle();
    if (now >= _nextRefreshAt) {
        for (BankState &bank : _banks) {
            bank.open = false;
            bank.actReadyAt = std::max(bank.actReadyAt,
                                       now + _cfg.timing.tRFC);
        }
        _refreshUntil = now + _cfg.timing.tRFC;
        _nextRefreshAt = now + _cfg.timing.tREFI;
        ++*_statRefreshes;
    }
    if (now < _refreshUntil) {
        const ServiceResult rd = sendReadData(); // data may still drain
        const ServiceResult wr = sendWriteResponses();
        if (rd == ServiceResult::Done || wr == ServiceResult::Done)
            did = true;
        accountCycle(did, rd, wr, /*in_refresh=*/true);
        return;
    }
    const bool col = scheduleColumn();
    if (scheduleRowCommands())
        did = true;
    const ServiceResult rd = sendReadData();
    const ServiceResult wr = sendWriteResponses();
    if (col || rd == ServiceResult::Done || wr == ServiceResult::Done)
        did = true;
    trackIdWaits(col);
    accountCycle(did, rd, wr, /*in_refresh=*/false);
}

bool
DramController::acceptRequests()
{
    const Cycle now = sim().cycle();
    bool did = false;

    if (_arIn.canPop() && _reads.size() < _cfg.maxOutstandingReads) {
        ReadRequest req = _arIn.pop();
        beethoven_assert(req.beats >= 1 &&
                             req.beats <= _cfg.axi.maxBurstBeats,
                         "illegal read burst length %u", req.beats);
        ReadTxn txn;
        txn.seq = _seqCounter++;
        txn.tag = req.tag;
        txn.id = req.id;
        txn.acceptedAt = now;
        txn.addr = req.addr;
        txn.beats = req.beats;
        txn.issued.assign(req.beats, false);
        txn.beatReadyAt.assign(req.beats, 0);
        txn.beatData.resize(req.beats);
        txn.beatCoord.resize(req.beats);
        for (u32 b = 0; b < req.beats; ++b) {
            txn.beatCoord[b] = mapAddress(
                _cfg.geometry,
                req.addr + static_cast<Addr>(b) * _cfg.axi.dataBytes);
        }
        _readOrder[req.id].push_back(req.tag);
        _reads.emplace(req.tag, std::move(txn));
        _timeline.record({now, AxiChannel::AR, req.id, req.tag, req.addr,
                          req.beats, false});
        did = true;
    }

    if (_wIn.canPop()) {
        const WriteFlit &flit = _wIn.front();
        if (flit.hasHeader) {
            if (_writes.size() >= _cfg.maxOutstandingWrites)
                return did; // stall the W channel until a slot frees
            WriteFlit f = _wIn.pop();
            WriteTxn txn;
            txn.seq = _seqCounter++;
            txn.tag = f.header.tag;
            txn.id = f.header.id;
            txn.acceptedAt = now;
            txn.addr = f.header.addr;
            txn.beats = f.header.beats;
            txn.issued.assign(f.header.beats, false);
            txn.beatCoord.resize(f.header.beats);
            for (u32 b = 0; b < f.header.beats; ++b) {
                txn.beatCoord[b] = mapAddress(
                    _cfg.geometry, f.header.addr +
                                       static_cast<Addr>(b) *
                                           _cfg.axi.dataBytes);
            }
            _timeline.record({now, AxiChannel::AW, txn.id, txn.tag,
                              txn.addr, txn.beats, false});
            // The header flit carries the first data beat.
            _timeline.record({now, AxiChannel::W, txn.id, txn.tag, 0, 0,
                              f.beat.last});
            txn.data.push_back(std::move(f.beat));
            txn.beatsReceived = 1;
            ++_pendingWriteBeats;
            const u64 tag = txn.tag;
            const bool complete = txn.data.back().last;
            beethoven_assert(!complete || txn.beats == 1,
                             "write burst ended after 1/%u beats",
                             txn.beats);
            _writeOrder[txn.id].push_back(tag);
            _writes.emplace(tag, std::move(txn));
            _fillingWrite = tag;
            _hasFilling = !complete;
            did = true;
        } else {
            beethoven_assert(_hasFilling,
                             "W data beat with no open write burst");
            WriteFlit f = _wIn.pop();
            WriteTxn &txn = _writes.at(_fillingWrite);
            _timeline.record({now, AxiChannel::W, txn.id, txn.tag, 0, 0,
                              f.beat.last});
            const bool last = f.beat.last;
            txn.data.push_back(std::move(f.beat));
            ++txn.beatsReceived;
            ++_pendingWriteBeats;
            did = true;
            if (last) {
                beethoven_assert(txn.beatsReceived == txn.beats,
                                 "write burst ended after %u/%u beats",
                                 txn.beatsReceived, txn.beats);
                _hasFilling = false;
            }
        }
    }
    return did;
}

void
DramController::updateDrainMode()
{
    // Write-drain mode switching (watermark policy): service reads
    // until enough write beats have buffered up (or no reads remain),
    // then drain writes as a batch. This amortizes bus turnarounds the
    // way real DDR controllers do. Candidate existence per direction
    // is O(IDs): the head transaction's firstUnissued beat is exposed
    // iff the ID's reorder slot is open (and the window is nonzero).
    const Cycle now = sim().cycle();
    bool reads_exist = false;
    bool writes_exist = false;
    if (_cfg.schedulerWindow != 0) {
        for (const auto &[id, q] : _readOrder) {
            if (q.empty())
                continue;
            auto gate = _readIdReadyAt.find(id);
            if (gate != _readIdReadyAt.end() && now < gate->second)
                continue;
            const ReadTxn &txn = _reads.at(q.front());
            if (txn.firstUnissued < txn.beats) {
                reads_exist = true;
                break;
            }
        }
        for (const auto &[id, q] : _writeOrder) {
            if (q.empty())
                continue;
            auto gate = _writeIdReadyAt.find(id);
            if (gate != _writeIdReadyAt.end() && now < gate->second)
                continue;
            const WriteTxn &txn = _writes.at(q.front());
            if (txn.firstUnissued < txn.beatsReceived) {
                writes_exist = true;
                break;
            }
        }
    }
    if (_writeDrainMode) {
        if (!writes_exist)
            _writeDrainMode = false;
    } else {
        if (_pendingWriteBeats >= _cfg.writeDrainHighWatermark ||
            (!reads_exist && writes_exist)) {
            _writeDrainMode = true;
        }
    }
}

void
DramController::scanCandidates()
{
    // AXI same-ID ordering: only the oldest transaction on each ID may
    // occupy the scheduler. This is the serialization that penalizes
    // single-ID streams (Fig. 5's HLS kernel). Within that head
    // transaction, up to schedulerWindow unissued beats are visible at
    // once (the command-queue lookahead of a real controller), which
    // lets the scheduler batch row activations and bus directions.
    //
    // Everything the column and row schedulers need is computed in
    // this one pass. Iteration order (reads by ascending ID, beats in
    // order, then writes) matches the old materialized candidate list,
    // so all first-wins tie-breaks are preserved bit-for-bit.
    const Cycle now = sim().cycle();
    _hasBestRead = false;
    _hasBestWrite = false;
    _bankValid.assign(_banks.size(), 0);
    _bankHasHit.assign(_banks.size(), 0);
    if (_oldestPerBank.size() != _banks.size())
        _oldestPerBank.resize(_banks.size());

    auto consider = [&](const Candidate &c) {
        // Oldest candidate per bank (drain direction preferred, then
        // age) — steers row commands.
        Candidate &slot = _oldestPerBank[c.coord.bank];
        if (_bankValid[c.coord.bank] == 0) {
            slot = c;
            _bankValid[c.coord.bank] = 1;
        } else {
            const bool c_on = c.isWrite == _writeDrainMode;
            const bool cur_on = slot.isWrite == _writeDrainMode;
            if ((c_on && !cur_on) || (c_on == cur_on && c.seq < slot.seq))
                slot = c;
        }
        const BankState &bank = _banks[c.coord.bank];
        const bool row_hit = bank.open && bank.row == c.coord.row;
        // Banks with a pending row hit in the drain direction must not
        // be precharged out from under it.
        if (row_hit && c.isWrite == _writeDrainMode)
            _bankHasHit[c.coord.bank] = 1;
        // Ready row hits feed the column pick (FR-FCFS, oldest first).
        if (!row_hit || now < bank.colReadyAt)
            return;
        // Bus turnaround: switching direction costs tSwitch idle
        // cycles.
        if (_anyColIssued && c.isWrite != _lastColWasWrite &&
            now < _lastColAt + _cfg.timing.tSwitch) {
            return;
        }
        if (c.isWrite) {
            if (!_hasBestWrite || c.seq < _bestWrite.seq) {
                _bestWrite = c;
                _hasBestWrite = true;
            }
        } else {
            if (!_hasBestRead || c.seq < _bestRead.seq) {
                _bestRead = c;
                _hasBestRead = true;
            }
        }
    };

    for (const auto &[id, q] : _readOrder) {
        if (q.empty())
            continue;
        auto gate = _readIdReadyAt.find(id);
        if (gate != _readIdReadyAt.end() && now < gate->second)
            continue; // reorder slot for this ID is still recycling
        const ReadTxn &txn = _reads.at(q.front());
        unsigned exposed = 0;
        Candidate c;
        c.isWrite = false;
        c.txnKey = txn.tag;
        c.seq = txn.seq;
        for (u32 b = txn.firstUnissued;
             b < txn.beats && exposed < _cfg.schedulerWindow; ++b) {
            if (txn.issued[b])
                continue;
            c.beatIdx = b;
            c.beatAddr =
                txn.addr + static_cast<Addr>(b) * _cfg.axi.dataBytes;
            c.coord = txn.beatCoord[b];
            consider(c);
            ++exposed;
        }
    }
    for (const auto &[id, q] : _writeOrder) {
        if (q.empty())
            continue;
        auto gate = _writeIdReadyAt.find(id);
        if (gate != _writeIdReadyAt.end() && now < gate->second)
            continue;
        const WriteTxn &txn = _writes.at(q.front());
        unsigned exposed = 0;
        Candidate c;
        c.isWrite = true;
        c.txnKey = txn.tag;
        c.seq = txn.seq;
        for (u32 b = txn.firstUnissued;
             b < txn.beatsReceived && exposed < _cfg.schedulerWindow;
             ++b) {
            if (txn.issued[b])
                continue;
            c.beatIdx = b;
            c.beatAddr =
                txn.addr + static_cast<Addr>(b) * _cfg.axi.dataBytes;
            c.coord = txn.beatCoord[b];
            consider(c);
            ++exposed;
        }
    }
}

bool
DramController::scheduleColumn()
{
    const Cycle now = sim().cycle();
    if (_anyColIssued && now <= _lastColAt) {
        // Data bus already used this cycle; the row scheduler still
        // needs this cycle's candidate view (drain mode unchanged).
        scanCandidates();
        return false;
    }

    updateDrainMode();
    scanCandidates();

    // Serve the drain direction; if it has nothing ready this cycle,
    // fall back to the other direction rather than idling the data
    // bus (work-conserving, as real controllers are).
    const Candidate *best = nullptr;
    if (_writeDrainMode)
        best = _hasBestWrite ? &_bestWrite
                             : (_hasBestRead ? &_bestRead : nullptr);
    else
        best = _hasBestRead ? &_bestRead
                            : (_hasBestWrite ? &_bestWrite : nullptr);
    if (best == nullptr)
        return false;
    const Candidate chosen = *best;

    BankState &bank = _banks[chosen.coord.bank];
    bank.colReadyAt = now + 1;
    bank.preReadyAt = std::max(bank.preReadyAt, now + 2);
    if (_anyColIssued && chosen.isWrite != _lastColWasWrite)
        ++*_statTurnarounds;
    _lastColAt = now;
    _lastColWasWrite = chosen.isWrite;
    _anyColIssued = true;
    ++*_statRowHits;
    ++_beatsServed;

    if (chosen.isWrite) {
        WriteTxn &txn = _writes.at(chosen.txnKey);
        _lastColId = txn.id;
        const WriteBeat &beat = txn.data[chosen.beatIdx];
        _mem.writeMasked(chosen.beatAddr, beat.data, beat.strb);
        txn.issued[chosen.beatIdx] = true;
        ++txn.beatsIssued;
        --_pendingWriteBeats;
        while (txn.firstUnissued < txn.beats &&
               txn.issued[txn.firstUnissued]) {
            ++txn.firstUnissued;
        }
        ++*_statColWrites;
    } else {
        ReadTxn &txn = _reads.at(chosen.txnKey);
        _lastColId = txn.id;
        txn.beatReadyAt[chosen.beatIdx] = now + _cfg.timing.tCAS;
        auto &data = txn.beatData[chosen.beatIdx];
        data.resize(_cfg.axi.dataBytes);
        _mem.read(chosen.beatAddr, data.size(), data.data());
        txn.issued[chosen.beatIdx] = true;
        ++txn.beatsIssued;
        while (txn.firstUnissued < txn.beats &&
               txn.issued[txn.firstUnissued]) {
            ++txn.firstUnissued;
        }
        ++*_statColReads;
    }
    return true;
}

bool
DramController::scheduleRowCommands()
{
    const Cycle now = sim().cycle();
    // scanCandidates() (run by scheduleColumn this cycle) left the
    // per-bank products: for each bank, only the oldest waiting
    // candidate may steer row state — this prevents younger requests
    // from closing a row an older request is about to use. Banks that
    // still have a pending row-hit candidate *in the active drain
    // direction* (_bankHasHit) should not be precharged out from under
    // it; off-direction hits cannot issue until the mode flips, so
    // they must not be allowed to pin rows — that would deadlock
    // against the drain policy. (The column issue earlier this cycle
    // only touches colReadyAt/preReadyAt, never open/row, so these
    // flags are unaffected by it.)
    //
    // One row command (ACT or PRE) per cycle: prepare banks for the
    // current drain direction first, oldest request first.
    std::vector<const Candidate *> &ordered = _rowOrdered;
    ordered.clear();
    for (std::size_t b = 0; b < _banks.size(); ++b) {
        if (_bankValid[b] != 0)
            ordered.push_back(&_oldestPerBank[b]);
    }
    const bool drain_writes = _writeDrainMode;
    std::sort(ordered.begin(), ordered.end(),
              [drain_writes](const Candidate *a, const Candidate *b) {
                  const bool a_on = a->isWrite == drain_writes;
                  const bool b_on = b->isWrite == drain_writes;
                  if (a_on != b_on)
                      return a_on;
                  return a->seq < b->seq;
              });

    for (const Candidate *c : ordered) {
        BankState &bank = _banks[c->coord.bank];
        if (bank.open && bank.row == c->coord.row)
            continue; // already a row hit; nothing to do
        if (bank.open) {
            if (_bankHasHit[c->coord.bank] != 0)
                continue; // let the open row drain first (see above)
            if (now >= bank.preReadyAt) {
                bank.open = false;
                bank.actReadyAt = std::max(bank.actReadyAt,
                                           now + _cfg.timing.tRP);
                ++*_statRowMisses;
                return true;
            }
            continue;
        }
        // Activation constraints: per-bank tRP done, global tRRD, tFAW.
        if (now < bank.actReadyAt || now < _nextActAt)
            continue;
        while (!_recentActs.empty() &&
               _recentActs.front() + _cfg.timing.tFAW <= now) {
            _recentActs.pop_front();
        }
        if (_recentActs.size() >= 4)
            continue;
        bank.open = true;
        bank.row = c->coord.row;
        bank.colReadyAt = now + _cfg.timing.tRCD;
        bank.preReadyAt = now + _cfg.timing.tRAS;
        _nextActAt = now + _cfg.timing.tRRD;
        _recentActs.push_back(now);
        return true;
    }
    return false;
}

DramController::ServiceResult
DramController::sendReadData()
{
    const Cycle now = sim().cycle();
    if (_readOrder.empty())
        return ServiceResult::None;
    if (!_rOut.canPush()) {
        // Anything ready to go? Then the port is the bottleneck.
        for (const auto &[id, q] : _readOrder) {
            if (q.empty())
                continue;
            const ReadTxn &txn = _reads.at(q.front());
            if (txn.beatsSent < txn.beats &&
                txn.beatReadyAt[txn.beatsSent] != 0 &&
                now >= txn.beatReadyAt[txn.beatsSent]) {
                return ServiceResult::Blocked;
            }
        }
        return ServiceResult::None;
    }
    // Round-robin across IDs; within an ID only the head transaction's
    // in-order next beat may be sent (AXI burst + same-ID ordering).
    auto start = _readOrder.lower_bound(_rrReadId);
    if (start == _readOrder.end())
        start = _readOrder.begin();
    auto it = start;
    do {
        auto &q = it->second;
        if (!q.empty()) {
            ReadTxn &txn = _reads.at(q.front());
            if (txn.beatsSent < txn.beats &&
                txn.beatReadyAt[txn.beatsSent] != 0 &&
                now >= txn.beatReadyAt[txn.beatsSent]) {
                ReadBeat beat;
                beat.id = txn.id;
                beat.tag = txn.tag;
                beat.last = txn.beatsSent + 1 == txn.beats;
                beat.data = std::move(txn.beatData[txn.beatsSent]);
                _timeline.record({now, AxiChannel::R, beat.id, beat.tag,
                                  0, 0, beat.last});
                ++txn.beatsSent;
                const bool done = beat.last;
                _rOut.push(std::move(beat));
                _rrReadId = it->first + 1;
                if (done) {
                    _readLatency->sample(
                        static_cast<double>(now - txn.acceptedAt));
                    if (TraceSink *ts = sim().trace()) {
                        ts->span("axi", "rd",
                                 name() + ".rd.id" +
                                     std::to_string(txn.id),
                                 txn.acceptedAt, now,
                                 {{"addr", txn.addr},
                                  {"beats", txn.beats},
                                  {"id", txn.id}});
                    }
                    q.pop_front();
                    _reads.erase(txn.tag);
                    // A successor already queued behind the head was
                    // held back by the same-ID ordering dependence and
                    // pays the reorder-slot recycle; a fresh request
                    // arriving later starts with a clean slot.
                    if (!q.empty()) {
                        _readIdReadyAt[it->first] =
                            now + _cfg.sameIdRecycleCycles;
                    } else {
                        _readOrder.erase(it);
                    }
                }
                return ServiceResult::Done;
            }
        }
        ++it;
        if (it == _readOrder.end())
            it = _readOrder.begin();
    } while (it != start);
    return ServiceResult::None;
}

DramController::ServiceResult
DramController::sendWriteResponses()
{
    const Cycle now = sim().cycle();
    if (!_bOut.canPush()) {
        for (const auto &[id, q] : _writeOrder) {
            if (q.empty())
                continue;
            const WriteTxn &txn = _writes.at(q.front());
            if (txn.beatsReceived == txn.beats &&
                txn.beatsIssued == txn.beats) {
                return ServiceResult::Blocked;
            }
        }
        return ServiceResult::None;
    }
    for (auto it = _writeOrder.begin(); it != _writeOrder.end(); ++it) {
        auto &q = it->second;
        if (q.empty())
            continue;
        WriteTxn &txn = _writes.at(q.front());
        if (txn.beatsReceived == txn.beats &&
            txn.beatsIssued == txn.beats) {
            WriteResponse resp;
            resp.id = txn.id;
            resp.tag = txn.tag;
            _timeline.record({now, AxiChannel::B, resp.id, resp.tag, 0, 0,
                              false});
            _bOut.push(resp);
            _writeLatency->sample(
                static_cast<double>(now - txn.acceptedAt));
            if (TraceSink *ts = sim().trace()) {
                ts->span("axi", "wr",
                         name() + ".wr.id" + std::to_string(txn.id),
                         txn.acceptedAt, now,
                         {{"addr", txn.addr},
                          {"beats", txn.beats},
                          {"id", txn.id}});
            }
            q.pop_front();
            _writes.erase(txn.tag);
            if (!q.empty())
                _writeIdReadyAt[it->first] =
                    now + _cfg.sameIdRecycleCycles;
            else
                _writeOrder.erase(it);
            return ServiceResult::Done;
        }
    }
    return ServiceResult::None;
}

StatScalar &
DramController::idWaitScalar(bool is_write, u32 id, const char *kind)
{
    auto key = std::make_pair(is_write, id);
    auto it = _idWaits.find(key);
    if (it == _idWaits.end()) {
        StatGroup &g = sim()
                           .stats()
                           .group(name())
                           .group("ids")
                           .group((is_write ? "wr" : "rd") +
                                  std::to_string(id));
        it = _idWaits
                 .emplace(key, std::make_pair(&g.scalar("queueWait"),
                                              &g.scalar("bankWait")))
                 .first;
    }
    return *(kind[0] == 'q' ? it->second.first : it->second.second);
}

void
DramController::trackIdWaits(bool col_issued)
{
    // For every AXI ID with a pending head transaction that did not get
    // a column command this cycle, attribute the wait: same-ID
    // reorder-slot recycle (queueWait) vs. bank timing / arbitration
    // (bankWait). This is the per-ID split behind the fig5 latency gap.
    const Cycle now = sim().cycle();
    for (const auto &[id, q] : _readOrder) {
        if (q.empty())
            continue;
        if (col_issued && !_lastColWasWrite && _lastColId == id)
            continue;
        auto gate = _readIdReadyAt.find(id);
        if (gate != _readIdReadyAt.end() && now < gate->second) {
            ++idWaitScalar(false, id, "queueWait");
            continue;
        }
        const ReadTxn &txn = _reads.at(q.front());
        if (txn.firstUnissued < txn.beats)
            ++idWaitScalar(false, id, "bankWait");
    }
    for (const auto &[id, q] : _writeOrder) {
        if (q.empty())
            continue;
        if (col_issued && _lastColWasWrite && _lastColId == id)
            continue;
        auto gate = _writeIdReadyAt.find(id);
        if (gate != _writeIdReadyAt.end() && now < gate->second) {
            ++idWaitScalar(true, id, "queueWait");
            continue;
        }
        const WriteTxn &txn = _writes.at(q.front());
        if (txn.firstUnissued < txn.beatsReceived)
            ++idWaitScalar(true, id, "bankWait");
    }
}

void
DramController::accountCycle(bool did, ServiceResult rd, ServiceResult wr,
                             bool in_refresh)
{
    if (did) {
        _stall.account(StallClass::Busy);
        return;
    }
    if (rd == ServiceResult::Blocked || wr == ServiceResult::Blocked) {
        _stall.account(StallClass::StallDownstream);
        return;
    }
    if (_reads.empty() && _writes.empty() && !_arIn.canPop() &&
        !_wIn.canPop()) {
        _stall.account(StallClass::Idle);
        // Fully drained: no transaction state, no per-ID wait tracking,
        // nothing poppable. The only autonomous future event is the
        // refresh window, so arm it and quiesce; new AR/W pushes wake
        // us earlier. The controller must NOT sleep in any other state:
        // trackIdWaits and bank timing mutate digest-visible stats
        // every cycle transactions are in flight.
        requestWakeAt(_nextRefreshAt);
        sleepWith(_stall, StallClass::Idle);
        return;
    }
    if (in_refresh) {
        _stall.account(StallClass::StallMem);
        return;
    }
    if (_reads.empty() && !_writes.empty() && _hasFilling) {
        // Only writes in flight and a burst is mid-fill: waiting on the
        // producer to deliver W beats.
        _stall.account(StallClass::StallUpstream);
        return;
    }
    // Bank timing, recycle gates, turnaround — the device itself.
    _stall.account(StallClass::StallMem);
}

void
DramController::dumpInFlight(std::ostream &os) const
{
    const Cycle now = sim().cycle();
    os << name() << " in-flight: " << _reads.size() << " reads, "
       << _writes.size() << " writes\n";
    // Tag order for stable diagnostics (the maps are unordered).
    std::vector<u64> tags;
    for (const auto &[tag, txn] : _reads)
        tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    for (u64 tag : tags) {
        const ReadTxn &txn = _reads.at(tag);
        os << "  rd tag=" << tag << " id=" << txn.id << " addr=0x"
           << std::hex << txn.addr << std::dec << " beats=" << txn.beats
           << " issued=" << txn.beatsIssued << " sent=" << txn.beatsSent
           << " age=" << (now - txn.acceptedAt) << "\n";
    }
    tags.clear();
    for (const auto &[tag, txn] : _writes)
        tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    for (u64 tag : tags) {
        const WriteTxn &txn = _writes.at(tag);
        os << "  wr tag=" << tag << " id=" << txn.id << " addr=0x"
           << std::hex << txn.addr << std::dec << " beats=" << txn.beats
           << " received=" << txn.beatsReceived
           << " issued=" << txn.beatsIssued
           << " age=" << (now - txn.acceptedAt) << "\n";
    }
}

} // namespace beethoven
