/**
 * @file
 * C++ binding generation (Fig. 3b).
 *
 * "Beethoven takes developer-defined custom command format for a core
 * and generates a C++ library with the custom command arguments
 * instead of forcing the developer to perform this mapping
 * themselves."
 *
 * generateBindingsHeader() emits the namespace-per-System stub header
 * (function per command, typed arguments, response_handle return);
 * generateBindingsSource() emits the packing implementation, which
 * routes through the same fpga_handle_t::invoke() path the dynamic API
 * uses — so "the same software testbench can be used across systems
 * where the instrumentation or device details are different": address
 * widths and field layouts live in the CommandSpec, not the testbench.
 */

#ifndef BEETHOVEN_BINDGEN_BINDGEN_H
#define BEETHOVEN_BINDGEN_BINDGEN_H

#include <string>

#include "core/config.h"

namespace beethoven
{

/** The C++ argument type used for a command field. */
std::string fieldArgType(const CommandField &field);

/** Emit the generated header text for one System's commands. */
std::string generateBindingsHeader(const AcceleratorSystemConfig &sys);

/** Emit the generated implementation text for one System's commands. */
std::string generateBindingsSource(const AcceleratorSystemConfig &sys,
                                   const std::string &header_name);

/** Emit header + source for every System of an accelerator config. */
struct GeneratedBindings
{
    std::string headerName;
    std::string header;
    std::string sourceName;
    std::string source;
};
GeneratedBindings generateBindings(const AcceleratorConfig &config);

} // namespace beethoven

#endif // BEETHOVEN_BINDGEN_BINDGEN_H
