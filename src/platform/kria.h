/**
 * @file
 * Kria KV260 platform: an embedded Zynq UltraScale+ (XCK26) where the
 * FPGA fabric shares the host's address space and reads/writes are
 * kept coherent via AXI-ACE (Section II-C, "Embedded Platforms").
 */

#ifndef BEETHOVEN_PLATFORM_KRIA_H
#define BEETHOVEN_PLATFORM_KRIA_H

#include "platform/platform.h"

namespace beethoven
{

class KriaPlatform : public Platform
{
  public:
    std::string name() const override { return "Kria"; }

    bool sharedAddressSpace() const override { return true; }

    double clockMHz() const override { return 125.0; }

    AxiConfig
    memoryConfig() const override
    {
        AxiConfig cfg;
        cfg.addrBits = 40;
        cfg.dataBytes = 16; // 128-bit HP port
        cfg.idBits = 6;
        cfg.maxBurstBeats = 64;
        return cfg;
    }

    DramTiming
    dramTiming() const override
    {
        return DramTiming::lpddr4_embedded();
    }

    DramGeometry
    dramGeometry() const override
    {
        DramGeometry g;
        g.nBankGroups = 2;
        g.banksPerGroup = 4;
        g.rowBytesPerBank = 4096;
        g.interleaveBytes = 16;
        return g;
    }

    u64 memoryCapacityBytes() const override { return u64(4) << 30; }

    std::vector<SlrDescriptor>
    slrs() const override
    {
        SlrDescriptor slr;
        slr.name = "SLR0";
        // XCK26: ~117K LUTs, 234K FFs, 144 BRAM36, 64 URAM.
        slr.capacity = {14616, 117120, 234240, 144, 64, 0, 0};
        slr.shellFootprint = {1200, 9000, 12000, 8, 0, 0, 0};
        slr.hasHostInterface = true;
        slr.hasMemoryInterface = true;
        return {slr};
    }

    MemoryCellLibrary
    cellLibrary() const override
    {
        return MemoryCellLibrary::ultrascalePlus();
    }

    // On-die MMIO: tens of nanoseconds.
    unsigned mmioReadCycles() const override { return 12; }
    unsigned mmioWriteCycles() const override { return 6; }

    // Shared address space: "DMA" is a cache-maintenance-scale cost.
    double dmaBandwidthBytesPerCycle() const override { return 128.0; }

    unsigned defaultBurstBeats() const override { return 32; }

    PowerModel
    powerModel() const override
    {
        PowerModel p;
        p.staticWatts = 0.8;
        // Same 16 nm fabric as F1 at half the clock; LPDDR4 column
        // energy is lower than discrete DDR4, and on-die MMIO is
        // nearly free compared to PCIe transactions.
        p.coreOpPj = 6.0;
        p.spadAccessPj = 2.5;
        p.dramColumnPj = 8.0;
        p.dramActivatePj = 45.0;
        p.nocFlitHopPj = 1.2;
        p.mmioTxnPj = 4.0;
        p.calibrated = true;
        return p;
    }
};

} // namespace beethoven

#endif // BEETHOVEN_PLATFORM_KRIA_H
