/**
 * @file
 * Simulation platform (Section II-D): the debugging/performance-
 * prediction target. Mirrors the F1 memory system (DRAM model
 * included, as the paper integrates DRAMSim3) but exposes a single
 * SLR and near-zero host access costs so functional tests run fast.
 */

#ifndef BEETHOVEN_PLATFORM_SIM_PLATFORM_H
#define BEETHOVEN_PLATFORM_SIM_PLATFORM_H

#include "platform/platform.h"

namespace beethoven
{

class SimulationPlatform : public Platform
{
  public:
    std::string name() const override { return "Simulation"; }

    double clockMHz() const override { return 250.0; }

    AxiConfig
    memoryConfig() const override
    {
        AxiConfig cfg;
        cfg.addrBits = 34;
        cfg.dataBytes = 64;
        cfg.idBits = 8;
        cfg.maxBurstBeats = 64;
        return cfg;
    }

    DramTiming dramTiming() const override
    {
        return DramTiming::ddr4_2400();
    }

    u64 memoryCapacityBytes() const override { return u64(16) << 30; }

    std::vector<SlrDescriptor>
    slrs() const override
    {
        SlrDescriptor slr;
        slr.name = "SLR0";
        // Generously sized: simulation should never be capacity-bound.
        slr.capacity = {400000, 3200000, 6400000, 8000, 4000, 0, 0};
        slr.hasHostInterface = true;
        slr.hasMemoryInterface = true;
        return {slr};
    }

    MemoryCellLibrary
    cellLibrary() const override
    {
        return MemoryCellLibrary::ultrascalePlus();
    }

    unsigned mmioReadCycles() const override { return 2; }
    unsigned mmioWriteCycles() const override { return 1; }

    double dmaBandwidthBytesPerCycle() const override { return 1024.0; }

    PowerModel
    powerModel() const override
    {
        // F1 fabric coefficients (the memory system mirrors F1), so
        // functional/fuzz runs against this platform are power-
        // calibrated and lint BTH013 stays quiet for them.
        PowerModel p;
        p.staticWatts = 2.0;
        p.calibrated = true;
        return p;
    }
};

} // namespace beethoven

#endif // BEETHOVEN_PLATFORM_SIM_PLATFORM_H
