/**
 * @file
 * Platform development interface (Section II-B, "Platform
 * Development").
 *
 * "To add support for a new platform in Beethoven, it is only
 * necessary to provide details for three things": ASIC/FPGA kind,
 * external memory space and protocol parameters, and host-accelerator
 * communication information. Optional additions cover multi-die
 * information, Reader/Writer performance knobs, and network
 * elaboration knobs — all of which appear below as virtual methods
 * with sensible defaults.
 */

#ifndef BEETHOVEN_PLATFORM_PLATFORM_H
#define BEETHOVEN_PLATFORM_PLATFORM_H

#include <string>
#include <vector>

#include "axi/axi_types.h"
#include "dram/timing.h"
#include "floorplan/resources.h"
#include "mem/memory_compiler.h"
#include "noc/tree.h"

namespace beethoven
{

/** One die (Super Logic Region) of the target device. */
struct SlrDescriptor
{
    std::string name;
    ResourceVec capacity;
    ResourceVec shellFootprint; ///< consumed by the platform shell
    bool hasHostInterface = false;
    bool hasMemoryInterface = false;

    ResourceVec
    available() const
    {
        ResourceVec a = capacity;
        a.clb -= shellFootprint.clb;
        a.lut -= shellFootprint.lut;
        a.ff -= shellFootprint.ff;
        a.bram -= shellFootprint.bram;
        a.uram -= shellFootprint.uram;
        return a;
    }
};

/** Resource-based power estimation (calibrated per platform). */
struct PowerModel
{
    double staticWatts = 2.0;
    double lutWatts = 10e-6;
    double ffWatts = 4e-6;
    double bramWatts = 7e-3;
    double uramWatts = 8e-3;

    double
    watts(const ResourceVec &r) const
    {
        return staticWatts + r.lut * lutWatts + r.ff * ffWatts +
               r.bram * bramWatts + r.uram * uramWatts;
    }
};

class Platform
{
  public:
    virtual ~Platform() = default;

    virtual std::string name() const = 0;

    /** ASIC targets skip FPGA-specific elaboration choices. */
    virtual bool isAsic() const { return false; }

    /** Embedded platforms share one address space with the host. */
    virtual bool sharedAddressSpace() const { return false; }

    virtual double clockMHz() const = 0;

    /** External memory protocol parameters. */
    virtual AxiConfig memoryConfig() const = 0;
    virtual DramTiming dramTiming() const = 0;
    virtual DramGeometry dramGeometry() const { return DramGeometry{}; }
    virtual u64 memoryCapacityBytes() const = 0;

    /** Multi-die information (optional; single die by default). */
    virtual std::vector<SlrDescriptor> slrs() const = 0;
    virtual unsigned hostSlr() const { return 0; }
    virtual unsigned memorySlr() const { return 0; }

    /** Network elaboration knobs. */
    virtual NocParams nocParams() const { return NocParams{}; }

    /**
     * Fraction of an SLR's memory blocks that are realistically
     * routable before congestion sets in. The 80 % spill rule applies
     * against derated availability — the Section III-C experience
     * ("congestion we perceived due to BRAM overutilization") at well
     * under nominal capacity.
     */
    virtual double memoryCongestionDerate() const { return 1.0; }

    /** On-chip memory technology. */
    virtual MemoryCellLibrary cellLibrary() const = 0;
    /** Preferred cell family before the 80 % spill rule applies. */
    virtual MemoryCellKind
    preferredMemoryKind() const
    {
        return isAsic() ? MemoryCellKind::AsicSram : MemoryCellKind::Bram;
    }

    /** Host-accelerator communication costs, in accelerator cycles. */
    virtual unsigned mmioReadCycles() const = 0;
    virtual unsigned mmioWriteCycles() const = 0;

    /** Host<->device bulk copy bandwidth (bytes per accel. cycle). */
    virtual double dmaBandwidthBytesPerCycle() const = 0;

    /** Reader/Writer internal performance knobs (platform tuning). */
    virtual unsigned defaultBurstBeats() const { return 64; }
    virtual unsigned defaultMaxInflight() const { return 4; }

    virtual PowerModel powerModel() const { return PowerModel{}; }
};

} // namespace beethoven

#endif // BEETHOVEN_PLATFORM_PLATFORM_H
