/**
 * @file
 * Platform development interface (Section II-B, "Platform
 * Development").
 *
 * "To add support for a new platform in Beethoven, it is only
 * necessary to provide details for three things": ASIC/FPGA kind,
 * external memory space and protocol parameters, and host-accelerator
 * communication information. Optional additions cover multi-die
 * information, Reader/Writer performance knobs, and network
 * elaboration knobs — all of which appear below as virtual methods
 * with sensible defaults.
 */

#ifndef BEETHOVEN_PLATFORM_PLATFORM_H
#define BEETHOVEN_PLATFORM_PLATFORM_H

#include <string>
#include <vector>

#include "axi/axi_types.h"
#include "dram/timing.h"
#include "floorplan/resources.h"
#include "mem/memory_compiler.h"
#include "noc/tree.h"

namespace beethoven
{

/** One die (Super Logic Region) of the target device. */
struct SlrDescriptor
{
    std::string name;
    ResourceVec capacity;
    ResourceVec shellFootprint; ///< consumed by the platform shell
    bool hasHostInterface = false;
    bool hasMemoryInterface = false;

    ResourceVec
    available() const
    {
        ResourceVec a = capacity;
        a.clb -= shellFootprint.clb;
        a.lut -= shellFootprint.lut;
        a.ff -= shellFootprint.ff;
        a.bram -= shellFootprint.bram;
        a.uram -= shellFootprint.uram;
        return a;
    }
};

/**
 * Resource-based power estimation (calibrated per platform).
 *
 * Two layers share one struct. The *static* layer (staticWatts plus
 * the per-resource watt rates) is the paper's Table III calibration:
 * watts(design) of the fig8/table2 composition reproduces the ~24 W
 * design point and every bench prints it unchanged. The *dynamic*
 * layer adds per-event energy coefficients (picojoules per occurrence)
 * consumed by src/power/ to turn the activity counters the trace/stall
 * subsystem already maintains into measured power/energy telemetry.
 * The coefficients are deliberately small relative to the static
 * share, so measured energy/op ratios stay shape-preserving against
 * the static model (DESIGN.md §4f).
 *
 * Platforms that override powerModel() set `calibrated`; the default
 * PowerModel{} is generic and lint code BTH013 warns (non-blocking)
 * when a composition is elaborated against it.
 */
struct PowerModel
{
    double staticWatts = 2.0;
    double lutWatts = 10e-6;
    double ffWatts = 4e-6;
    double bramWatts = 7e-3;
    double uramWatts = 8e-3;

    /** Dynamic energy per event, picojoules. */
    double coreOpPj = 6.0;       ///< one busy core cycle
    double spadAccessPj = 2.5;   ///< one scratchpad row access
    double dramColumnPj = 18.0;  ///< one DRAM column read/write
    double dramActivatePj = 90.0;///< one DRAM row activate
    double nocFlitHopPj = 1.2;   ///< one flit traversing one tree node
    double mmioTxnPj = 40.0;     ///< one MMIO command or response

    /** True when a platform supplied calibrated numbers. */
    bool calibrated = false;

    double
    watts(const ResourceVec &r) const
    {
        return staticWatts + r.lut * lutWatts + r.ff * ffWatts +
               r.bram * bramWatts + r.uram * uramWatts;
    }

    /** Resource-proportional watts without the static baseline. */
    double
    dynamicResourceWatts(const ResourceVec &r) const
    {
        return r.lut * lutWatts + r.ff * ffWatts + r.bram * bramWatts +
               r.uram * uramWatts;
    }
};

class Platform
{
  public:
    virtual ~Platform() = default;

    virtual std::string name() const = 0;

    /** ASIC targets skip FPGA-specific elaboration choices. */
    virtual bool isAsic() const { return false; }

    /** Embedded platforms share one address space with the host. */
    virtual bool sharedAddressSpace() const { return false; }

    virtual double clockMHz() const = 0;

    /** External memory protocol parameters. */
    virtual AxiConfig memoryConfig() const = 0;
    virtual DramTiming dramTiming() const = 0;
    virtual DramGeometry dramGeometry() const { return DramGeometry{}; }
    virtual u64 memoryCapacityBytes() const = 0;

    /** Multi-die information (optional; single die by default). */
    virtual std::vector<SlrDescriptor> slrs() const = 0;
    virtual unsigned hostSlr() const { return 0; }
    virtual unsigned memorySlr() const { return 0; }

    /** Network elaboration knobs. */
    virtual NocParams nocParams() const { return NocParams{}; }

    /**
     * Fraction of an SLR's memory blocks that are realistically
     * routable before congestion sets in. The 80 % spill rule applies
     * against derated availability — the Section III-C experience
     * ("congestion we perceived due to BRAM overutilization") at well
     * under nominal capacity.
     */
    virtual double memoryCongestionDerate() const { return 1.0; }

    /** On-chip memory technology. */
    virtual MemoryCellLibrary cellLibrary() const = 0;
    /** Preferred cell family before the 80 % spill rule applies. */
    virtual MemoryCellKind
    preferredMemoryKind() const
    {
        return isAsic() ? MemoryCellKind::AsicSram : MemoryCellKind::Bram;
    }

    /** Host-accelerator communication costs, in accelerator cycles. */
    virtual unsigned mmioReadCycles() const = 0;
    virtual unsigned mmioWriteCycles() const = 0;

    /** Host<->device bulk copy bandwidth (bytes per accel. cycle). */
    virtual double dmaBandwidthBytesPerCycle() const = 0;

    /** Reader/Writer internal performance knobs (platform tuning). */
    virtual unsigned defaultBurstBeats() const { return 64; }
    virtual unsigned defaultMaxInflight() const { return 4; }

    virtual PowerModel powerModel() const { return PowerModel{}; }
};

} // namespace beethoven

#endif // BEETHOVEN_PLATFORM_PLATFORM_H
