#include "platform/aws_f1.h"

namespace beethoven
{

std::vector<SlrDescriptor>
AwsF1Platform::slrs() const
{
    // Xilinx VU9P: three SLRs, each roughly one third of the device
    // (1,182K LUTs / 2,364K FFs / ~148K CLBs / 2,160 BRAM36 / 960 URAM
    // total). The AWS F1 shell occupies parts of SLR0 and SLR1, which
    // is why the paper adds per-SLR core-placement affinity
    // (Section III-C: "the shell consumed significant resources only
    // on SLR0/1").
    SlrDescriptor slr0;
    slr0.name = "SLR0";
    slr0.capacity = {49260, 394080, 788160, 720, 320, 0, 0};
    slr0.shellFootprint = {20000, 105000, 130000, 110, 20, 0, 0};
    slr0.hasHostInterface = true;

    SlrDescriptor slr1;
    slr1.name = "SLR1";
    slr1.capacity = {49260, 394080, 788160, 720, 320, 0, 0};
    slr1.shellFootprint = {8000, 45000, 60000, 40, 12, 0, 0};
    slr1.hasMemoryInterface = true;

    SlrDescriptor slr2;
    slr2.name = "SLR2";
    slr2.capacity = {49260, 394080, 788160, 720, 320, 0, 0};
    slr2.shellFootprint = {0, 0, 0, 0, 0, 0, 0};

    return {slr0, slr1, slr2};
}

} // namespace beethoven
