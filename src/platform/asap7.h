/**
 * @file
 * ASAP7 ASIC platform (Section II-D, "ASIC Platforms"): a ChipKIT-style
 * test-chip target using a 7 nm predictive PDK. The memory compiler
 * cascades/banks SRAM macros; host communication goes through an
 * on-chip microcontroller, so MMIO costs are single-digit cycles.
 */

#ifndef BEETHOVEN_PLATFORM_ASAP7_H
#define BEETHOVEN_PLATFORM_ASAP7_H

#include "platform/platform.h"

namespace beethoven
{

class Asap7Platform : public Platform
{
  public:
    std::string name() const override { return "ASAP7"; }

    bool isAsic() const override { return true; }
    bool sharedAddressSpace() const override { return true; }

    double clockMHz() const override { return 1000.0; }

    AxiConfig
    memoryConfig() const override
    {
        AxiConfig cfg;
        cfg.addrBits = 32;
        cfg.dataBytes = 32;
        cfg.idBits = 6;
        cfg.maxBurstBeats = 64;
        return cfg;
    }

    DramTiming
    dramTiming() const override
    {
        // At a 1 GHz core clock the same DDR4 part takes ~4x the
        // controller cycles per DRAM operation.
        DramTiming t;
        t.tRCD = 16;
        t.tRP = 16;
        t.tRAS = 32;
        t.tCAS = 16;
        t.tRRD = 4;
        t.tFAW = 24;
        t.tSwitch = 8;
        return t;
    }

    u64 memoryCapacityBytes() const override { return u64(2) << 30; }

    std::vector<SlrDescriptor>
    slrs() const override
    {
        // A single die. "Capacity" bounds area rather than LUTs; the
        // LUT/FF columns are interpreted as NAND2-equivalent gates.
        SlrDescriptor die;
        die.name = "DIE0";
        die.capacity = {0, 5.0e6, 5.0e6, 0, 0, 4096, 25.0e6};
        die.capacity.clb = 1.0e6;
        die.hasHostInterface = true;
        die.hasMemoryInterface = true;
        return {die};
    }

    MemoryCellLibrary
    cellLibrary() const override
    {
        return MemoryCellLibrary::asap7();
    }

    unsigned mmioReadCycles() const override { return 4; }
    unsigned mmioWriteCycles() const override { return 2; }

    double dmaBandwidthBytesPerCycle() const override { return 32.0; }

    PowerModel
    powerModel() const override
    {
        PowerModel p;
        p.staticWatts = 0.1;
        p.lutWatts = 0.4e-6; // per gate-equivalent at 1 GHz
        p.ffWatts = 0.2e-6;
        // 7 nm standard cells switch roughly an order of magnitude
        // cheaper than the FPGA fabric equivalents.
        p.coreOpPj = 0.6;
        p.spadAccessPj = 0.3;
        p.dramColumnPj = 18.0; // same DDR4 part as the FPGA targets
        p.dramActivatePj = 90.0;
        p.nocFlitHopPj = 0.15;
        p.mmioTxnPj = 2.0;
        p.calibrated = true;
        return p;
    }
};

} // namespace beethoven

#endif // BEETHOVEN_PLATFORM_ASAP7_H
