/**
 * @file
 * AWS F1 platform: a discrete, PCIe-mounted Xilinx Alveo U200 (VU9P)
 * with three SLRs — the paper's primary evaluation target.
 */

#ifndef BEETHOVEN_PLATFORM_AWS_F1_H
#define BEETHOVEN_PLATFORM_AWS_F1_H

#include "platform/platform.h"

namespace beethoven
{

class AwsF1Platform : public Platform
{
  public:
    std::string name() const override { return "AWSF1"; }

    double clockMHz() const override { return _clockMHz; }
    void setClockMHz(double mhz) { _clockMHz = mhz; }

    AxiConfig
    memoryConfig() const override
    {
        AxiConfig cfg;
        cfg.addrBits = 34;
        cfg.dataBytes = 64;
        cfg.idBits = 10;
        cfg.maxBurstBeats = 64;
        return cfg;
    }

    DramTiming dramTiming() const override
    {
        return DramTiming::ddr4_2400();
    }

    u64 memoryCapacityBytes() const override { return u64(16) << 30; }

    std::vector<SlrDescriptor> slrs() const override;

    unsigned hostSlr() const override { return 0; }
    unsigned memorySlr() const override { return 1; }

    NocParams
    nocParams() const override
    {
        NocParams p;
        p.fanout = 4;
        p.slrCrossingLatency = 4;
        p.queueDepth = 2;
        return p;
    }

    MemoryCellLibrary
    cellLibrary() const override
    {
        return MemoryCellLibrary::ultrascalePlus();
    }

    // BRAM/URAM columns on the VU9P congest well before nominal
    // capacity (Section III-C), so the spill rule sees roughly half
    // the blocks as usable per SLR.
    double memoryCongestionDerate() const override { return 0.5; }

    // PCIe MMIO: ~500 ns reads, ~250 ns writes at 250 MHz.
    unsigned mmioReadCycles() const override { return 125; }
    unsigned mmioWriteCycles() const override { return 62; }

    // PCIe gen3 x16 DMA ~12 GB/s = 48 B per 250 MHz cycle.
    double dmaBandwidthBytesPerCycle() const override { return 48.0; }

    PowerModel
    powerModel() const override
    {
        PowerModel p;
        p.staticWatts = 3.0;
        // Dynamic coefficients sized for 16 nm UltraScale+ at 250 MHz;
        // kept small against the resource-static share so the Table
        // III shape is preserved (DESIGN.md §4f).
        p.coreOpPj = 6.0;
        p.spadAccessPj = 2.5;
        p.dramColumnPj = 18.0;
        p.dramActivatePj = 90.0;
        p.nocFlitHopPj = 1.2;
        p.mmioTxnPj = 40.0;
        p.calibrated = true;
        return p;
    }

  private:
    double _clockMHz = 250.0;
};

} // namespace beethoven

#endif // BEETHOVEN_PLATFORM_AWS_F1_H
