#include "baselines/attention_sw.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "accel/a3/a3_core.h"
#include "base/log.h"
#include "base/rng.h"

namespace beethoven::a3
{

std::vector<i8>
goldenAttention(const std::vector<i8> &keys,
                const std::vector<i8> &values,
                const std::vector<i8> &query, unsigned n_keys,
                unsigned dim)
{
    beethoven_assert(keys.size() == std::size_t(n_keys) * dim &&
                         values.size() == std::size_t(n_keys) * dim &&
                         query.size() == dim,
                     "attention operand size mismatch");
    // Stage 1: scores + extremum.
    std::vector<i32> scores(n_keys);
    i32 max_score = 0;
    for (unsigned k = 0; k < n_keys; ++k) {
        i32 acc = 0;
        for (unsigned d = 0; d < dim; ++d)
            acc += i32(query[d]) * i32(keys[k * dim + d]);
        scores[k] = acc;
        if (k == 0 || acc > max_score)
            max_score = acc;
    }
    // Stage 2: LUT exponentiation + weight sum.
    std::vector<u16> weights(n_keys);
    u32 weight_sum = 0;
    for (unsigned k = 0; k < n_keys; ++k) {
        const i32 d = max_score - scores[k];
        const unsigned idx =
            std::min<u32>(static_cast<u32>(d) >> A3Params::expShift,
                          A3Params::lutEntries - 1);
        weights[k] = expTable()[idx];
        weight_sum += weights[k];
    }
    // Stage 3: weighted value sum, normalization, quantization.
    std::vector<i8> out(dim);
    const i64 sum = std::max<i64>(weight_sum, 1);
    for (unsigned d = 0; d < dim; ++d) {
        i64 acc = 0;
        for (unsigned k = 0; k < n_keys; ++k)
            acc += i64(weights[k]) * i64(values[k * dim + d]);
        i64 v = acc / sum;
        v = std::clamp<i64>(v, -128, 127);
        out[d] = static_cast<i8>(v);
    }
    return out;
}

void
softwareAttentionF32(const float *query, const float *keys,
                     const float *values, float *out, unsigned n_keys,
                     unsigned dim)
{
    std::vector<float> scores(n_keys);
    float max_score = -1e30f;
    for (unsigned k = 0; k < n_keys; ++k) {
        float acc = 0.0f;
        for (unsigned d = 0; d < dim; ++d)
            acc += query[d] * keys[k * dim + d];
        scores[k] = acc;
        max_score = std::max(max_score, acc);
    }
    float sum = 0.0f;
    for (unsigned k = 0; k < n_keys; ++k) {
        scores[k] = std::exp(scores[k] - max_score);
        sum += scores[k];
    }
    const float inv = 1.0f / sum;
    for (unsigned d = 0; d < dim; ++d)
        out[d] = 0.0f;
    for (unsigned k = 0; k < n_keys; ++k) {
        const float w = scores[k] * inv;
        for (unsigned d = 0; d < dim; ++d)
            out[d] += w * values[k * dim + d];
    }
}

double
measureCpuAttentionOpsPerSecond(unsigned n_keys, unsigned dim,
                                double min_seconds)
{
    Rng rng(2024);
    std::vector<float> keys(std::size_t(n_keys) * dim);
    std::vector<float> values(std::size_t(n_keys) * dim);
    std::vector<float> query(dim), out(dim);
    for (auto &v : keys)
        v = static_cast<float>(rng.nextDouble()) - 0.5f;
    for (auto &v : values)
        v = static_cast<float>(rng.nextDouble()) - 0.5f;
    for (auto &v : query)
        v = static_cast<float>(rng.nextDouble()) - 0.5f;

    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    std::size_t ops = 0;
    volatile float sink = 0.0f;
    for (;;) {
        for (unsigned rep = 0; rep < 64; ++rep) {
            softwareAttentionF32(query.data(), keys.data(),
                                 values.data(), out.data(), n_keys,
                                 dim);
            sink = sink + out[0];
            ++ops;
        }
        const double elapsed =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        if (elapsed >= min_seconds)
            return static_cast<double>(ops) / elapsed;
    }
}

} // namespace beethoven::a3
