#include "baselines/machsuite_golden.h"

#include <algorithm>

#include "base/log.h"

namespace beethoven::machsuite
{

std::vector<i32>
goldenGemm(const std::vector<i32> &a, const std::vector<i32> &bt,
           unsigned n)
{
    beethoven_assert(a.size() == std::size_t(n) * n &&
                         bt.size() == std::size_t(n) * n,
                     "gemm operand size mismatch");
    std::vector<i32> c(std::size_t(n) * n, 0);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            i32 acc = 0;
            for (unsigned kk = 0; kk < n; ++kk)
                acc += a[i * n + kk] * bt[j * n + kk];
            c[i * n + j] = acc;
        }
    }
    return c;
}

std::vector<i32>
goldenNw(const std::vector<u8> &seq_a, const std::vector<u8> &seq_b,
         unsigned n)
{
    beethoven_assert(seq_a.size() >= n && seq_b.size() >= n,
                     "nw sequence too short");
    std::vector<i32> prev(n + 1), cur(n + 1);
    for (unsigned j = 0; j <= n; ++j)
        prev[j] = static_cast<i32>(j) * nwGapScore;
    for (unsigned i = 1; i <= n; ++i) {
        cur[0] = static_cast<i32>(i) * nwGapScore;
        for (unsigned j = 1; j <= n; ++j) {
            const i32 sub = seq_a[i - 1] == seq_b[j - 1]
                                ? nwMatchScore
                                : nwMismatchScore;
            const i32 diag = prev[j - 1] + sub;
            const i32 up = prev[j] + nwGapScore;
            const i32 left = cur[j - 1] + nwGapScore;
            cur[j] = std::max(diag, std::max(up, left));
        }
        std::swap(prev, cur);
    }
    return prev;
}

const i32 stencil2dCoeffs[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};

std::vector<i32>
goldenStencil2d(const std::vector<i32> &in, unsigned rows, unsigned cols)
{
    beethoven_assert(in.size() == std::size_t(rows) * cols,
                     "stencil2d input size mismatch");
    std::vector<i32> out(in);
    for (unsigned r = 1; r + 1 < rows; ++r) {
        for (unsigned c = 1; c + 1 < cols; ++c) {
            i32 acc = 0;
            for (unsigned dr = 0; dr < 3; ++dr) {
                for (unsigned dc = 0; dc < 3; ++dc) {
                    acc += stencil2dCoeffs[dr * 3 + dc] *
                           in[(r + dr - 1) * cols + (c + dc - 1)];
                }
            }
            out[r * cols + c] = acc;
        }
    }
    return out;
}

std::vector<i32>
goldenStencil3d(const std::vector<i32> &in, unsigned n)
{
    beethoven_assert(in.size() == std::size_t(n) * n * n,
                     "stencil3d input size mismatch");
    std::vector<i32> out(in);
    auto at = [&](unsigned x, unsigned y, unsigned z) {
        return in[(std::size_t(z) * n + y) * n + x];
    };
    for (unsigned z = 1; z + 1 < n; ++z) {
        for (unsigned y = 1; y + 1 < n; ++y) {
            for (unsigned x = 1; x + 1 < n; ++x) {
                const i32 sum = at(x - 1, y, z) + at(x + 1, y, z) +
                                at(x, y - 1, z) + at(x, y + 1, z) +
                                at(x, y, z - 1) + at(x, y, z + 1);
                out[(std::size_t(z) * n + y) * n + x] =
                    stencil3dC0 * at(x, y, z) + stencil3dC1 * sum;
            }
        }
    }
    return out;
}

std::vector<double>
goldenMdKnn(const std::vector<double> &pos,
            const std::vector<i32> &neighbors, unsigned n, unsigned k)
{
    beethoven_assert(pos.size() == std::size_t(3) * n &&
                         neighbors.size() == std::size_t(n) * k,
                     "md-knn input size mismatch");
    std::vector<double> force(std::size_t(3) * n, 0.0);
    for (unsigned i = 0; i < n; ++i) {
        const double xi = pos[3 * i];
        const double yi = pos[3 * i + 1];
        const double zi = pos[3 * i + 2];
        double fx = 0.0, fy = 0.0, fz = 0.0;
        for (unsigned j = 0; j < k; ++j) {
            const u32 nb = static_cast<u32>(neighbors[i * k + j]);
            const double dx = xi - pos[3 * nb];
            const double dy = yi - pos[3 * nb + 1];
            const double dz = zi - pos[3 * nb + 2];
            const double r2 = dx * dx + dy * dy + dz * dz;
            const double r2inv = 1.0 / r2;
            const double r6inv = r2inv * r2inv * r2inv;
            const double potential = r6inv * (1.5 * r6inv - 2.0);
            const double f = r2inv * potential;
            fx += f * dx;
            fy += f * dy;
            fz += f * dz;
        }
        force[3 * i] = fx;
        force[3 * i + 1] = fy;
        force[3 * i + 2] = fz;
    }
    return force;
}

} // namespace beethoven::machsuite
